(* Call-shape pass: arity/shape checks for calls into the builtin and
   vocabulary surface, plus the Policy registration protocol.

   All checks are syntactic and conservative: they only fire on direct
   calls through an untouched global name ([Math.pow(...)], [new
   Policy()]).  The moment a script re-binds a vocabulary global or
   patches one of its members, every check routed through that name is
   suppressed — the static model no longer describes the runtime
   object. *)

open Nk_script

let arity_range min max =
  match (min, max) with
  | n, Some m when n = m -> string_of_int n
  | n, Some m -> Printf.sprintf "%d..%d" n m
  | n, None -> Printf.sprintf "at least %d" n

let check_arity diags ~what ~strict ~min ~max nargs pos =
  let bad = nargs < min || match max with Some m -> nargs > m | None -> false in
  if bad then
    diags :=
      Diagnostic.make
        (if strict then Diagnostic.Error else Diagnostic.Warning)
        "bad-arity" pos "%s expects %s argument%s, got %d" what
        (arity_range min max)
        (if arity_range min max = "1" then "" else "s")
        nargs
      :: !diags

let suggest_member ns m =
  let lower = String.lowercase_ascii m in
  List.find_opt
    (fun candidate -> String.lowercase_ascii candidate = lower)
    (Globals.member_names ns)

(* A call through [ns.m] where [ns] is an untouched vocabulary global. *)
let check_ns_call model diags ns m nargs pos =
  match Globals.member ns m with
  | Some (Globals.Fn { min; max; strict }) ->
    check_arity diags ~what:(Printf.sprintf "%s.%s" ns m) ~strict ~min ~max nargs
      pos
  | Some (Globals.Ctor { min; max }) ->
    check_arity diags
      ~what:(Printf.sprintf "%s.%s" ns m)
      ~strict:false ~min ~max nargs pos
  | Some (Globals.Const | Globals.Ns _) ->
    diags :=
      Diagnostic.error "not-a-function" pos "'%s.%s' is not a function" ns m
      :: !diags
  | None ->
    if not (Model.member_mutated model ns m) then
      let hint =
        match suggest_member ns m with
        | Some c -> Printf.sprintf " (did you mean '%s'?)" c
        | None -> ""
      in
      diags :=
        Diagnostic.error "unknown-method" pos "'%s' has no method '%s'%s" ns m
          hint
        :: !diags

let check_calls (model : Model.t) diags =
  Model.iter_stmts
    (fun _ -> ())
    (fun (e : Ast.expr) ->
      match e.Ast.desc with
      | Ast.Call
          ({ Ast.desc = Ast.Member ({ Ast.desc = Ast.Ident ns; _ }, m); _ }, args)
        when Globals.member ns m <> None
             || (match Globals.find ns with Some (Globals.Ns _) -> true | _ -> false)
        ->
        (* [register] on a policy variable etc. is not routed here: [ns]
           must itself be a namespace global. *)
        if Model.global_untouched model ns then
          check_ns_call model diags ns m (List.length args) e.Ast.pos
      | Ast.Call ({ Ast.desc = Ast.Ident f; _ }, args)
        when Model.global_untouched model f -> (
        match Globals.find f with
        | Some (Globals.Fn { min; max; strict }) ->
          check_arity diags ~what:f ~strict ~min ~max (List.length args)
            e.Ast.pos
        | Some (Globals.Ns _) ->
          diags :=
            Diagnostic.error "not-a-function" e.Ast.pos "'%s' is not a function"
              f
            :: !diags
        | Some (Globals.Ctor _) | Some Globals.Const | None -> ())
      | Ast.New ({ Ast.desc = Ast.Ident f; _ }, args)
        when Model.global_untouched model f -> (
        match Globals.find f with
        | Some (Globals.Ctor { min; max }) ->
          check_arity diags ~what:(Printf.sprintf "new %s" f) ~strict:false ~min
            ~max (List.length args) e.Ast.pos
        | Some (Globals.Fn { min; max; strict }) ->
          (* [new] over a native falls back to a plain call. *)
          check_arity diags ~what:(Printf.sprintf "new %s" f) ~strict ~min ~max
            (List.length args) e.Ast.pos
        | Some (Globals.Ns _) | Some Globals.Const ->
          diags :=
            Diagnostic.error "not-a-constructor" e.Ast.pos
              "'%s' is not a constructor" f
            :: !diags
        | None -> ())
      | _ -> ())
    model.Model.program

(* --- Policy registration shape -------------------------------------- *)

let policy_fields =
  [ "url"; "client"; "method"; "headers"; "onRequest"; "onResponse"; "nextStages" ]

let handler_fields = [ "onRequest"; "onResponse" ]

let predicate_fields = [ "url"; "client"; "method"; "nextStages" ]

let rec literal_kind (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.String _ -> Some `Str
  | Ast.Number _ -> Some `Num
  | Ast.Bool _ -> Some `Bool
  | Ast.Null | Ast.Undefined -> Some `Nullish
  | Ast.Array_lit els -> Some (`Arr (List.filter_map literal_kind els))
  | Ast.Object_lit fields ->
    Some (`Obj (List.map (fun (k, v) -> (k, literal_kind v)) fields))
  | Ast.Func _ -> Some `Fn
  | _ -> None  (* dynamic: not checkable *)

let check_policy diags (p : Model.policy_info) =
  List.iter
    (fun (field, value, pos) ->
      if not (List.mem field policy_fields) then begin
        let hint =
          match
            List.find_opt
              (fun c ->
                String.lowercase_ascii c = String.lowercase_ascii field)
              policy_fields
          with
          | Some c -> Printf.sprintf " (did you mean '%s'?)" c
          | None -> ""
        in
        diags :=
          Diagnostic.warning "unknown-policy-field" pos
            "policy field '%s' is not recognized%s" field hint
          :: !diags
      end
      else if List.mem field handler_fields then begin
        match literal_kind value with
        | Some `Fn | Some `Nullish | None -> ()
        | Some _ ->
          diags :=
            Diagnostic.error "bad-policy-field" pos
              "policy field '%s' must be a function" field
            :: !diags
      end
      else if List.mem field predicate_fields then begin
        match literal_kind value with
        | Some `Str | Some `Nullish | None -> ()
        | Some (`Arr kinds) ->
          if
            List.exists (function `Str -> false | _ -> true) kinds
          then
            diags :=
              Diagnostic.error "bad-policy-field" pos
                "policy field '%s' must be a string or an array of strings"
                field
              :: !diags
        | Some _ ->
          diags :=
            Diagnostic.error "bad-policy-field" pos
              "policy field '%s' must be a string or an array of strings" field
            :: !diags
      end
      else begin
        (* headers: an object of header-name -> regex-string. *)
        match literal_kind value with
        | Some (`Obj fields) ->
          if
            List.exists
              (fun (_, k) ->
                match k with Some `Str | None -> false | Some _ -> true)
              fields
          then
            diags :=
              Diagnostic.error "bad-policy-field" pos
                "policy field 'headers' values must be regex strings"
              :: !diags
        | Some `Nullish | None -> ()
        | Some _ ->
          diags :=
            Diagnostic.error "bad-policy-field" pos
              "policy field 'headers' must be an object of header regexes"
            :: !diags
      end;
      (* Handlers are invoked with zero arguments. *)
      match (List.mem field handler_fields, value.Ast.desc) with
      | true, Ast.Func (param :: _, _) ->
        diags :=
          Diagnostic.warning "handler-params" pos
            "%s handler is invoked with no arguments; parameter '%s' will be undefined"
            field param
          :: !diags
      | _ -> ())
    p.Model.fields;
  if not p.Model.registered then
    diags :=
      Diagnostic.warning "unregistered-policy" p.Model.decl_pos
        "policy '%s' is never registered" p.Model.var_name
      :: !diags

let check (model : Model.t) : Diagnostic.t list =
  let diags = ref [] in
  check_calls model diags;
  List.iter (check_policy diags) model.Model.policies;
  List.rev !diags
