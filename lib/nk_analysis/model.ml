(* Shared program facts computed once per analysis and consumed by the
   individual passes: generic AST walkers, the set of names the script
   assigns or shadows (used to suppress vocabulary checks on mutated
   globals), toplevel named functions (the cost pass's call graph), and
   the Policy-registration protocol ([var p = new Policy(); p.f = ...;
   p.register()]) reconstructed syntactically. *)

open Nk_script

(* --- generic walkers ----------------------------------------------- *)

(* Depth-first visit of every statement ([fs]) and expression ([fe]).
   [enter_funcs] controls whether [Func]/[Sfunc] bodies are descended
   into — passes that reason per-execution-context (scope, cost) recurse
   themselves and use [enter_funcs:false]. *)
let rec iter_expr ?(enter_funcs = true) ?(fs = fun (_ : Ast.stmt) -> ()) fe
    (e : Ast.expr) =
  fe e;
  let go = iter_expr ~enter_funcs ~fs fe in
  match e.Ast.desc with
  | Ast.Number _ | Ast.String _ | Ast.Bool _ | Ast.Null | Ast.Undefined
  | Ast.Ident _ | Ast.This ->
    ()
  | Ast.Array_lit els -> List.iter go els
  | Ast.Object_lit fields -> List.iter (fun (_, v) -> go v) fields
  | Ast.Func (_, body) -> if enter_funcs then iter_stmts ~enter_funcs fs fe body
  | Ast.Member (obj, _) -> go obj
  | Ast.Index (obj, idx) ->
    go obj;
    go idx
  | Ast.Call (callee, args) ->
    go callee;
    List.iter go args
  | Ast.New (callee, args) ->
    go callee;
    List.iter go args
  | Ast.Assign (lv, _, rhs) ->
    iter_lvalue ~enter_funcs ~fs fe lv;
    go rhs
  | Ast.Unop (_, x) -> go x
  | Ast.Binop (_, a, b) | Ast.Logical (_, a, b) ->
    go a;
    go b
  | Ast.Cond (c, t, e') ->
    go c;
    go t;
    go e'
  | Ast.Incr (_, lv) | Ast.Decr (_, lv) -> iter_lvalue ~enter_funcs ~fs fe lv
  | Ast.Delete (obj, _) -> go obj

and iter_lvalue ?(enter_funcs = true) ?(fs = fun (_ : Ast.stmt) -> ()) fe =
  function
  | Ast.Lident _ -> ()
  | Ast.Lmember (obj, _) -> iter_expr ~enter_funcs ~fs fe obj
  | Ast.Lindex (obj, idx) ->
    iter_expr ~enter_funcs ~fs fe obj;
    iter_expr ~enter_funcs ~fs fe idx

and iter_stmt ?(enter_funcs = true) fs fe (s : Ast.stmt) =
  fs s;
  let goe = iter_expr ~enter_funcs ~fs fe in
  let gos = iter_stmts ~enter_funcs fs fe in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> goe e
  | Ast.Svar bindings -> List.iter (fun (_, init) -> Option.iter goe init) bindings
  | Ast.Sif (c, t, e) ->
    goe c;
    gos t;
    gos e
  | Ast.Swhile (c, body) ->
    goe c;
    gos body
  | Ast.Sdo_while (body, c) ->
    gos body;
    goe c
  | Ast.Sfor (init, cond, step, body) ->
    Option.iter (iter_stmt ~enter_funcs fs fe) init;
    Option.iter goe cond;
    Option.iter goe step;
    gos body
  | Ast.Sfor_in (_, subject, body) ->
    goe subject;
    gos body
  | Ast.Sreturn v -> Option.iter goe v
  | Ast.Sbreak | Ast.Scontinue -> ()
  | Ast.Sfunc (_, _, body) -> if enter_funcs then gos body
  | Ast.Sblock body -> gos body
  | Ast.Sthrow e -> goe e
  | Ast.Stry (body, _, handler) ->
    gos body;
    gos handler

and iter_stmts ?(enter_funcs = true) fs fe stmts =
  List.iter (iter_stmt ~enter_funcs fs fe) stmts

(* --- policy protocol ------------------------------------------------ *)

type policy_info = {
  var_name : string;
  decl_pos : Ast.pos;
  mutable fields : (string * Ast.expr * Ast.pos) list;  (* assignment order *)
  mutable registered : bool;
}

type t = {
  program : Ast.program;
  (* Toplevel [function f(..){..}] and [var f = function(..){..}]: the
     resolvable call graph for the cost pass. *)
  named_funcs : (string, string list * Ast.stmt list * Ast.pos) Hashtbl.t;
  (* Lident targets of Assign/Incr/Decr anywhere (these create globals
     at runtime when no binding exists). *)
  assigned_names : (string, unit) Hashtbl.t;
  (* [var]/for-in declared names anywhere in the program: a read outside
     the must-set of such a name races its declaration rather than being
     definitely unbound, so it demotes to a warning. *)
  declared_vars : (string, unit) Hashtbl.t;
  (* "ns.member" (and "ns.*" for computed writes) the script mutates:
     suppresses unknown-method/arity checks on patched vocabulary. *)
  mutated_members : (string, unit) Hashtbl.t;
  (* Vocabulary globals the script re-declares or re-binds: suppresses
     call-shape checks routed through them. *)
  shadowed_globals : (string, unit) Hashtbl.t;
  policies : policy_info list;
}

let is_policy_new (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.New ({ Ast.desc = Ast.Ident "Policy"; _ }, _) -> true
  | _ -> false

let build (program : Ast.program) : t =
  let named_funcs = Hashtbl.create 16 in
  let assigned_names = Hashtbl.create 16 in
  let declared_vars = Hashtbl.create 16 in
  let mutated_members = Hashtbl.create 16 in
  let shadowed_globals = Hashtbl.create 16 in
  let policies_rev = ref [] in
  let find_policy name =
    List.find_opt (fun p -> p.var_name = name) !policies_rev
  in
  let add_policy name pos =
    if find_policy name = None then
      policies_rev := { var_name = name; decl_pos = pos; fields = []; registered = false } :: !policies_rev
  in
  let shadow name = if Globals.is_global name then Hashtbl.replace shadowed_globals name () in
  let record_lident_write name =
    Hashtbl.replace assigned_names name ();
    shadow name
  in
  let on_expr (e : Ast.expr) =
    match e.Ast.desc with
    | Ast.Assign (lv, _, rhs) -> (
      (match lv with
       | Ast.Lident name ->
         record_lident_write name;
         if is_policy_new rhs then add_policy name e.Ast.pos
       | Ast.Lmember ({ Ast.desc = Ast.Ident obj; _ }, field) -> (
         Hashtbl.replace mutated_members (obj ^ "." ^ field) ();
         match find_policy obj with
         | Some p -> p.fields <- p.fields @ [ (field, rhs, e.Ast.pos) ]
         | None -> ())
       | Ast.Lindex ({ Ast.desc = Ast.Ident obj; _ }, _) ->
         Hashtbl.replace mutated_members (obj ^ ".*") ()
       | _ -> ()))
    | Ast.Incr (_, Ast.Lident name) | Ast.Decr (_, Ast.Lident name) ->
      record_lident_write name
    | Ast.Call ({ Ast.desc = Ast.Member ({ Ast.desc = Ast.Ident obj; _ }, "register"); _ }, _) -> (
      match find_policy obj with
      | Some p -> p.registered <- true
      | None -> ())
    | Ast.Func (params, _) -> List.iter shadow params
    | Ast.Delete ({ Ast.desc = Ast.Ident obj; _ }, field) ->
      Hashtbl.replace mutated_members (obj ^ "." ^ field) ()
    | _ -> ()
  in
  let on_stmt (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Ast.Svar bindings ->
      List.iter
        (fun (name, init) ->
          shadow name;
          Hashtbl.replace declared_vars name ();
          match init with
          | Some e when is_policy_new e -> add_policy name s.Ast.spos
          | _ -> ())
        bindings
    | Ast.Sfunc (name, params, _) ->
      shadow name;
      List.iter shadow params
    | Ast.Sfor_in (name, _, _) ->
      shadow name;
      Hashtbl.replace declared_vars name ()
    | Ast.Stry (_, name, _) -> shadow name
    | _ -> ()
  in
  iter_stmts on_stmt on_expr program;
  (* Toplevel call graph: direct Sfunc plus [var f = function]. *)
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.sdesc with
      | Ast.Sfunc (name, params, body) ->
        Hashtbl.replace named_funcs name (params, body, s.Ast.spos)
      | Ast.Svar bindings ->
        List.iter
          (fun (name, init) ->
            match init with
            | Some { Ast.desc = Ast.Func (params, body); pos } ->
              (* Only if never re-assigned elsewhere. *)
              if not (Hashtbl.mem assigned_names name) then
                Hashtbl.replace named_funcs name (params, body, pos)
            | _ -> ())
          bindings
      | _ -> ())
    program;
  {
    program;
    named_funcs;
    assigned_names;
    declared_vars;
    mutated_members;
    shadowed_globals;
    policies = List.rev !policies_rev;
  }

let member_mutated t ns field =
  Hashtbl.mem t.mutated_members (ns ^ "." ^ field)
  || Hashtbl.mem t.mutated_members (ns ^ ".*")

let global_untouched t name =
  not (Hashtbl.mem t.shadowed_globals name)
