(* Facade for the static analyzer: run the four passes over a parsed
   program (or source text) and cache the resulting report alongside the
   SHA-256-keyed compile cache, so admission-time linting of the
   recurring wall/site scripts costs one table lookup per stage build. *)

type report = {
  diagnostics : Diagnostic.t list;  (** sorted by position, then severity *)
  costs : Cost.item list;  (** per-handler/per-function cost bounds *)
}

let errors r = Diagnostic.count Diagnostic.Error r.diagnostics

let warnings r = Diagnostic.count Diagnostic.Warning r.diagnostics

let clean r = errors r = 0

let analyze (program : Nk_script.Ast.program) : report =
  let model = Model.build program in
  let scope_diags = Scope.check model in
  let shape_diags = Callshape.check model in
  let costs, cost_diags = Cost.analyze model in
  let taint_diags = Taint.check model in
  let diagnostics =
    List.sort Diagnostic.compare
      (scope_diags @ shape_diags @ cost_diags @ taint_diags)
  in
  { diagnostics; costs }

(* A source that does not even parse gets a one-diagnostic report: the
   caller decides whether that is fatal (strict node) or left for the
   compile path to surface (permissive). *)
let analyze_program_source source : report =
  match Nk_script.Parser.parse source with
  | program -> analyze program
  | exception Nk_script.Parser.Parse_error (msg, pos) ->
    {
      diagnostics =
        [ Diagnostic.error "parse-error" pos "parse error: %s" msg ];
      costs = [];
    }
  | exception Nk_script.Lexer.Lex_error (msg, pos) ->
    {
      diagnostics = [ Diagnostic.error "parse-error" pos "lex error: %s" msg ];
      costs = [];
    }

(* --- the report cache ----------------------------------------------- *)

type cache_stats = { hits : int; misses : int; entries : int }

let cache : (string, report) Hashtbl.t = Hashtbl.create 64

let cache_hits = ref 0

let cache_misses = ref 0

let max_cache_entries = 1024

let cache_stats () =
  { hits = !cache_hits; misses = !cache_misses; entries = Hashtbl.length cache }

let cache_clear () =
  Hashtbl.reset cache;
  cache_hits := 0;
  cache_misses := 0

let analyze_source ?on_cache source : report =
  let key = Nk_crypto.Sha256.digest source in
  match Hashtbl.find_opt cache key with
  | Some r ->
    incr cache_hits;
    (match on_cache with Some f -> f `Hit | None -> ());
    r
  | None ->
    incr cache_misses;
    (match on_cache with Some f -> f `Miss | None -> ());
    let r = analyze_program_source source in
    if Hashtbl.length cache >= max_cache_entries then Hashtbl.reset cache;
    Hashtbl.replace cache key r;
    r
