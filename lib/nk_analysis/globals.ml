(* The analyzer's model of the ambient environment a stage script runs
   in: the language builtins ([Builtins.install]) plus the Na Kika
   vocabulary ([Nk_vocab.Platform_v.install_all] + the per-request
   [Request]/[Response] objects + [Policy] from the policy bridge).

   Shapes record just enough structure for the scope and call-shape
   passes: which names exist, which members a namespace object has, and
   the argument count each callable accepts.  [strict] marks natives
   that raise a script error on an arity mismatch (so the diagnostic is
   an Error); lenient natives coerce missing args to [undefined] and the
   mismatch is only a Warning. *)

type shape =
  | Fn of { min : int; max : int option; strict : bool }
  | Ctor of { min : int; max : int option }  (** usable with [new] *)
  | Ns of (string * shape) list  (** namespace object with fixed members *)
  | Const  (** plain data member/global *)

let fn ?(strict = false) min max = Fn { min; max; strict }

let fn1 = fn 1 (Some 1)

let math_shape =
  Ns
    [
      ("floor", fn1); ("ceil", fn1); ("round", fn1); ("abs", fn1);
      ("sqrt", fn1); ("log", fn1); ("exp", fn1);
      ("pow", fn 2 (Some 2));
      ("min", fn 0 None); ("max", fn 0 None);
      ("random", fn 0 (Some 0));
      ("PI", Const); ("E", Const);
    ]

(* Per-request objects installed by Http_v for each handler run. *)
let request_shape =
  Ns
    [
      ("url", Const); ("host", Const); ("path", Const); ("method", Const);
      ("clientIP", Const);
      ("header", fn1); ("setHeader", fn 2 (Some 2));
      ("setUrl", fn1); ("setMethod", fn1);
      ("cookie", fn1); ("query", fn1);
      ("terminate", fn 0 (Some 1)); ("redirect", fn1);
      ("respond", fn 3 (Some 3));
    ]

let response_shape =
  Ns
    [
      ("status", Const); ("contentType", Const); ("contentLength", Const);
      ("read", fn 0 (Some 0)); ("rewind", fn 0 (Some 0));
      ("write", fn1); ("getHeader", fn1);
      ("setHeader", fn 2 (Some 2)); ("setStatus", fn1);
    ]

let table : (string * shape) list =
  [
    (* --- language builtins (Builtins.install) --- *)
    ("Math", math_shape);
    ("String", fn1); ("Number", fn1); ("Boolean", fn1);
    ("parseInt", fn1); ("parseFloat", fn1); ("isNaN", fn1);
    (* ByteArray raises on more than one argument. *)
    ("ByteArray", fn ~strict:true 0 (Some 1));
    (* --- platform vocabulary (Platform_v) --- *)
    ( "System",
      Ns
        [
          ("isLocal", fn1); ("time", fn 0 (Some 0)); ("site", Const);
          ("congestion", fn1); ("log", fn1);
        ] );
    ("Cache", Ns [ ("lookup", fn1); ("store", fn 3 (Some 4)) ]);
    ( "HardState",
      Ns
        [
          ("get", fn1); ("put", fn 2 (Some 2)); ("remove", fn1);
          ("keys", fn 0 (Some 1));
        ] );
    ("Messages", Ns [ ("publish", fn 2 (Some 2)) ]);
    ("Crypto", Ns [ ("sha256", fn1); ("hmac", fn 2 (Some 2)) ]);
    ("Log", Ns [ ("enable", fn1) ]);
    ("fetchResource", fn 1 (Some 3));
    ("evalScript", fn1);
    (* --- media/data vocabularies --- *)
    ( "ImageTransformer",
      Ns
        [
          ("type", fn1);
          (* dimensions reads only its first arg but the shipped
             examples pass (body, type); accept both. *)
          ("dimensions", fn 1 (Some 2));
          ("transform", fn 5 (Some 5)); ("mimeType", fn1);
        ] );
    ( "MovieTranscoder",
      Ns
        [
          ("info", fn1); ("duration", fn1); ("bitrate", fn1);
          ("transcode", fn 1 (Some 4));
        ] );
    ( "Xml",
      Ns
        [
          ("parse", fn1); ("serialize", fn1); ("text", fn1);
          ("findAll", fn 2 (Some 2)); ("toHtml", fn 2 (Some 2));
          ("escape", fn1);
        ] );
    ( "Regex",
      Ns
        [
          ("test", fn 2 (Some 2)); ("find", fn 2 (Some 2));
          ("replace", fn 3 (Some 3)); ("split", fn 2 (Some 2));
        ] );
    ("JSON", Ns [ ("stringify", fn1); ("parse", fn1) ]);
    (* --- policy bridge --- *)
    ("Policy", Ctor { min = 0; max = Some 0 });
    ("Request", request_shape);
    ("Response", response_shape);
  ]

let find name = List.assoc_opt name table

let is_global name = List.mem_assoc name table

let member ns m =
  match find ns with Some (Ns members) -> List.assoc_opt m members | _ -> None

let member_names ns =
  match find ns with Some (Ns members) -> List.map fst members | _ -> []
