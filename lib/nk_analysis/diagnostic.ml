(* Structured, position-carrying lint diagnostics.

   Every pass in the analyzer reports through this one type so that the
   CLI, the node's admission gate, and the tests all consume the same
   shape.  Severities follow the usual compiler convention:

   - [Error]: the script will (or is overwhelmingly likely to) fail at
     runtime — strict-mode nodes refuse to build a stage from it.
   - [Warning]: suspicious but runnable; permissive nodes only count it.
   - [Info]: advisory (e.g. an unbounded-cost note for a streaming
     handler); never affects admission or CLI exit codes. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** stable kebab-case code, e.g. ["undefined-var"] *)
  pos : Nk_script.Ast.pos;
  message : string;
}

let make severity code (pos : Nk_script.Ast.pos) fmt =
  Printf.ksprintf (fun message -> { severity; code; pos; message }) fmt

let error code pos fmt = make Error code pos fmt

let warning code pos fmt = make Warning code pos fmt

let info code pos fmt = make Info code pos fmt

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Source order first, then severity, then code: a deterministic listing
   that reads top-to-bottom like the script. *)
let compare a b =
  let c = Stdlib.compare (a.pos.Nk_script.Ast.line, a.pos.Nk_script.Ast.col)
            (b.pos.Nk_script.Ast.line, b.pos.Nk_script.Ast.col) in
  if c <> 0 then c
  else
    let c = Stdlib.compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c else Stdlib.compare (a.code, a.message) (b.code, b.message)

let to_string d =
  Printf.sprintf "%d:%d: %s[%s]: %s" d.pos.Nk_script.Ast.line
    d.pos.Nk_script.Ast.col (severity_label d.severity) d.code d.message

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

(* The one JSON shape for diagnostics, shared by every CLI surface
   ([nakika lint --json], [nakika plan --json]) so consumers parse a
   single schema no matter which analyzer produced the finding. *)
let to_json d =
  Nk_vocab.Json.Obj
    [
      ("severity", Nk_vocab.Json.Str (severity_label d.severity));
      ("code", Nk_vocab.Json.Str d.code);
      ("line", Nk_vocab.Json.Num (float_of_int d.pos.Nk_script.Ast.line));
      ("col", Nk_vocab.Json.Num (float_of_int d.pos.Nk_script.Ast.col));
      ("message", Nk_vocab.Json.Str d.message);
    ]
