(* Taint pass: the static complement of the paper's policy walls.  A
   value read from a sensitive request field (Cookie / Authorization
   headers, cookies) must not flow into a response body/header, an
   outbound fetch, shared state, or the message bus — a handler doing
   that exfiltrates per-user credentials to other clients or third
   parties.

   The analysis is a name-based flow-insensitive fixpoint: variables
   assigned any expression derived from a source (or from an already
   tainted variable) become tainted, program-wide, until the set stops
   growing.  Derivation is syntactic closure: concatenation, member and
   index access, method calls on tainted receivers, calls with tainted
   arguments — anything a string transformation would preserve.  Sinks
   are checked afterwards; each tainted argument reaching a sink yields
   one Warning.  Warnings, not Errors: walls and redaction logic the
   analyzer cannot see (e.g. hashing the cookie) are legitimate, so the
   lint flags the flow for review rather than rejecting the script. *)

open Nk_script

let sensitive_headers = [ "cookie"; "authorization"; "proxy-authorization" ]

(* [Request.header("Cookie")], [Request.cookie("sid")]. *)
let source_of (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Call
      ( { Ast.desc = Ast.Member ({ Ast.desc = Ast.Ident "Request"; _ }, "header"); _ },
        [ { Ast.desc = Ast.String h; _ } ] )
    when List.mem (String.lowercase_ascii h) sensitive_headers ->
    Some (Printf.sprintf "Request.header(\"%s\")" h)
  | Ast.Call
      ({ Ast.desc = Ast.Member ({ Ast.desc = Ast.Ident "Request"; _ }, "cookie"); _ }, _)
    ->
    Some "Request.cookie(...)"
  | _ -> None

let sinks =
  [
    (("Response", "write"), "Response.write");
    (("Response", "setHeader"), "Response.setHeader");
    (("Request", "setHeader"), "Request.setHeader");
    (("Request", "setUrl"), "Request.setUrl");
    (("Request", "respond"), "Request.respond");
    (("Request", "redirect"), "Request.redirect");
    (("Cache", "store"), "Cache.store");
    (("HardState", "put"), "HardState.put");
    (("Messages", "publish"), "Messages.publish");
  ]

(* Is [e] (or any subexpression that contributes to its value) derived
   from a source or a tainted variable? *)
let rec tainted tvars (e : Ast.expr) : string option =
  match source_of e with
  | Some s -> Some s
  | None -> (
    match e.Ast.desc with
    | Ast.Ident name -> Hashtbl.find_opt tvars name
    | Ast.Member (obj, _) | Ast.Delete (obj, _) -> tainted tvars obj
    | Ast.Index (obj, idx) -> first tvars [ obj; idx ]
    | Ast.Call (callee, args) | Ast.New (callee, args) ->
      first tvars (callee :: args)
    | Ast.Assign (lv, _, rhs) -> (
      match tainted tvars rhs with
      | Some s -> Some s
      | None -> (
        match lv with
        | Ast.Lident _ -> None
        | Ast.Lmember (obj, _) -> tainted tvars obj
        | Ast.Lindex (obj, idx) -> first tvars [ obj; idx ]))
    | Ast.Unop (_, x) -> tainted tvars x
    | Ast.Binop (_, a, b) | Ast.Logical (_, a, b) -> first tvars [ a; b ]
    | Ast.Cond (c, t, e') -> first tvars [ c; t; e' ]
    | Ast.Array_lit els -> first tvars els
    | Ast.Object_lit fields -> first tvars (List.map snd fields)
    | Ast.Incr (_, (Ast.Lmember (obj, _))) | Ast.Decr (_, (Ast.Lmember (obj, _))) ->
      tainted tvars obj
    | _ -> None)

and first tvars = function
  | [] -> None
  | e :: rest -> ( match tainted tvars e with Some s -> Some s | None -> first tvars rest)

let check (model : Model.t) : Diagnostic.t list =
  let tvars : (string, string) Hashtbl.t = Hashtbl.create 8 in
  (* Fixpoint over variable assignments (program-wide, including inside
     function bodies). *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 16 do
    changed := false;
    incr rounds;
    let bind name e =
      if not (Hashtbl.mem tvars name) then
        match tainted tvars e with
        | Some src ->
          Hashtbl.replace tvars name src;
          changed := true
        | None -> ()
    in
    Model.iter_stmts
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Svar bindings ->
          List.iter (fun (n, init) -> Option.iter (bind n) init) bindings
        | Ast.Sfor_in (n, subject, _) ->
          (* Enumerating a tainted container taints the keys/elements
             conservatively. *)
          if Hashtbl.mem tvars n then ()
          else (
            match tainted tvars subject with
            | Some src ->
              Hashtbl.replace tvars n src;
              changed := true
            | None -> ())
        | _ -> ())
      (fun (e : Ast.expr) ->
        match e.Ast.desc with
        | Ast.Assign (Ast.Lident n, _, rhs) -> bind n rhs
        | _ -> ())
      model.Model.program
  done;
  let diags = ref [] in
  let warn pos src sink =
    diags :=
      Diagnostic.warning "taint-flow" pos
        "value derived from %s flows into %s" src sink
      :: !diags
  in
  (* Sensitive values reaching vocabulary sinks. *)
  Model.iter_stmts
    (fun _ -> ())
    (fun (e : Ast.expr) ->
      match e.Ast.desc with
      | Ast.Call
          ({ Ast.desc = Ast.Member ({ Ast.desc = Ast.Ident ns; _ }, m); _ }, args)
        -> (
        match List.assoc_opt (ns, m) sinks with
        | Some sink_name -> (
          match first tvars args with
          | Some src -> warn e.Ast.pos src sink_name
          | None -> ())
        | None -> ())
      | Ast.Call ({ Ast.desc = Ast.Ident "fetchResource"; _ }, args) -> (
        match first tvars args with
        | Some src -> warn e.Ast.pos src "fetchResource"
        | None -> ())
      | _ -> ())
    model.Model.program;
  (* A tainted value returned from a handler becomes the response. *)
  List.iter
    (fun (p : Model.policy_info) ->
      List.iter
        (fun (field, (value : Ast.expr), _) ->
          match (field, value.Ast.desc) with
          | ("onRequest" | "onResponse"), Ast.Func (_, body) ->
            (* Direct returns only: returns of nested closures are not
               the handler's result. *)
            List.iter
              (Model.iter_stmt ~enter_funcs:false
                 (fun (s : Ast.stmt) ->
                   match s.Ast.sdesc with
                   | Ast.Sreturn (Some r) -> (
                     match tainted tvars r with
                     | Some src ->
                       warn s.Ast.spos src
                         (Printf.sprintf "the %s handler's returned response"
                            field)
                     | None -> ())
                   | _ -> ())
                 (fun _ -> ()))
              body
          | _ -> ())
        p.Model.fields)
    model.Model.policies;
  List.rev !diags
