(* Cost pass: a conservative per-handler upper bound on the fuel and
   allocation events a handler invocation can charge, mirroring the
   charge sites shared by [Interp] and [Compile] (1 fuel per expression
   evaluation, 1 per statement, 4 per function application).  Allocs
   count allocation *events* (literals, closures, [new], possible string
   concatenation, native-call results), not bytes.

   The estimate is [Bounded {fuel; allocs}] only when every reachable
   loop has a constant trip count and every call resolves statically to
   a native or to a named function with a bounded body (recursion is
   detected with an in-progress set over the resolvable call graph —
   a cycle anywhere makes every function on it [Unbounded]).  Two
   deliberate assumptions keep the domain useful: method calls on
   non-vocabulary receivers (string/array/bytes methods) are treated as
   native-constant, and native vocabulary calls count as constant even
   when, like [fetchResource], they suspend on I/O — the bound covers
   the *script's* fuel/heap charges, which is what the resource monitor
   meters. *)

open Nk_script

type bound =
  | Bounded of { fuel : int; allocs : int }
  | Unbounded of { reason : string; pos : Ast.pos }

type item = { name : string; pos : Ast.pos; bound : bound }

let cap = 1_000_000_000

let sat x = if x < 0 || x > cap then cap else x

let sat_add a b = sat (a + b)

let sat_mul a b = if a = 0 || b = 0 then 0 else if a > cap / b then cap else a * b

let bounded fuel allocs = Bounded { fuel = sat fuel; allocs = sat allocs }

let ( +? ) a b =
  match (a, b) with
  | Bounded x, Bounded y ->
    Bounded { fuel = sat_add x.fuel y.fuel; allocs = sat_add x.allocs y.allocs }
  | (Unbounded _ as u), _ | _, (Unbounded _ as u) -> u

let max_bound a b =
  match (a, b) with
  | Bounded x, Bounded y ->
    Bounded { fuel = max x.fuel y.fuel; allocs = max x.allocs y.allocs }
  | (Unbounded _ as u), _ | _, (Unbounded _ as u) -> u

let scale n b =
  match b with
  | Bounded x -> Bounded { fuel = sat_mul n x.fuel; allocs = sat_mul n x.allocs }
  | u -> u

let unbounded reason pos = Unbounded { reason; pos }

(* Does [body] write the loop variable [name]? *)
let writes_var name body =
  let found = ref false in
  let check_lv = function Ast.Lident n when n = name -> found := true | _ -> () in
  List.iter
    (Model.iter_stmt ~enter_funcs:true
       (fun _ -> ())
       (fun (e : Ast.expr) ->
         match e.Ast.desc with
         | Ast.Assign (lv, _, _) | Ast.Incr (_, lv) | Ast.Decr (_, lv) ->
           check_lv lv
         | _ -> ()))
    body;
  !found

(* Constant trip count of [for (var i = k0; i < k1; i++/i += ks)]. *)
let const_for_trips init cond step body =
  let init_var =
    match init with
    | Some { Ast.sdesc = Ast.Svar [ (i, Some { Ast.desc = Ast.Number k0; _ }) ]; _ } ->
      Some (i, k0)
    | Some
        {
          Ast.sdesc =
            Ast.Sexpr
              {
                Ast.desc =
                  Ast.Assign (Ast.Lident i, None, { Ast.desc = Ast.Number k0; _ });
                _;
              };
          _;
        } ->
      Some (i, k0)
    | _ -> None
  in
  match (init_var, cond, step) with
  | ( Some (i, k0),
      Some
        {
          Ast.desc =
            Ast.Binop
              ( ((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge) as op),
                { Ast.desc = Ast.Ident ci; _ },
                { Ast.desc = Ast.Number k1; _ } );
          _;
        },
      Some stepe )
    when ci = i && not (writes_var i body) -> (
    let delta =
      match stepe.Ast.desc with
      | Ast.Incr (_, Ast.Lident si) when si = i -> Some 1.0
      | Ast.Decr (_, Ast.Lident si) when si = i -> Some (-1.0)
      | Ast.Assign (Ast.Lident si, Some Ast.Add, { Ast.desc = Ast.Number k; _ })
        when si = i ->
        Some k
      | Ast.Assign (Ast.Lident si, Some Ast.Sub, { Ast.desc = Ast.Number k; _ })
        when si = i ->
        Some (-.k)
      | _ -> None
    in
    match delta with
    | None -> None
    | Some d ->
      let span =
        match op with
        | Ast.Lt -> if d > 0.0 then Some (ceil ((k1 -. k0) /. d)) else None
        | Ast.Le -> if d > 0.0 then Some (floor ((k1 -. k0) /. d) +. 1.0) else None
        | Ast.Gt -> if d < 0.0 then Some (ceil ((k1 -. k0) /. d)) else None
        | Ast.Ge -> if d < 0.0 then Some (floor ((k1 -. k0) /. d) +. 1.0) else None
        | _ -> None
      in
      Option.map
        (fun t ->
          if t <= 0.0 then 0
          else if t >= float_of_int cap then cap
          else int_of_float t)
        span)
  | _ -> None

(* [env]: statically resolvable named functions, innermost first.
   [visiting]: names on the current resolution path (cycle = recursion).
   [memo]: per-analysis cache for toplevel functions. *)
type cx = {
  env : (string * (string list * Ast.stmt list)) list;
  visiting : string list;
  (* Memo keyed by physical body identity (names can shadow). *)
  memo : (Ast.stmt list * bound) list ref;
}

let rec cost_expr cx (e : Ast.expr) : bound =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Number _ | Ast.String _ | Ast.Bool _ | Ast.Null | Ast.Undefined
  | Ast.Ident _ | Ast.This ->
    bounded 1 0
  | Ast.Array_lit els ->
    List.fold_left (fun b x -> b +? cost_expr cx x) (bounded 1 1) els
  | Ast.Object_lit fields ->
    List.fold_left (fun b (_, v) -> b +? cost_expr cx v) (bounded 1 1) fields
  | Ast.Func _ -> bounded 1 1 (* closure creation; the body costs at calls *)
  | Ast.Member (obj, _) -> bounded 1 0 +? cost_expr cx obj
  | Ast.Index (obj, idx) -> bounded 1 0 +? cost_expr cx obj +? cost_expr cx idx
  | Ast.Call (callee, args) ->
    let args_cost =
      List.fold_left (fun b a -> b +? cost_expr cx a) (bounded 0 0) args
    in
    args_cost +? cost_callee cx callee pos
  | Ast.New (callee, args) ->
    let args_cost =
      List.fold_left (fun b a -> b +? cost_expr cx a) (bounded 0 1) args
    in
    args_cost +? cost_callee cx callee pos
  | Ast.Assign (lv, _, rhs) -> bounded 1 0 +? cost_lvalue cx lv +? cost_expr cx rhs
  | Ast.Unop (_, x) -> bounded 1 0 +? cost_expr cx x
  | Ast.Binop (Ast.Add, a, b) ->
    (* [+] may concatenate strings: one allocation event. *)
    bounded 1 1 +? cost_expr cx a +? cost_expr cx b
  | Ast.Binop (_, a, b) -> bounded 1 0 +? cost_expr cx a +? cost_expr cx b
  | Ast.Logical (_, a, b) ->
    (* Upper bound: both operands. *)
    bounded 1 0 +? cost_expr cx a +? cost_expr cx b
  | Ast.Cond (c, t, e') ->
    bounded 1 0 +? cost_expr cx c +? max_bound (cost_expr cx t) (cost_expr cx e')
  | Ast.Incr (_, lv) | Ast.Decr (_, lv) -> bounded 1 0 +? cost_lvalue cx lv
  | Ast.Delete (obj, _) -> bounded 1 0 +? cost_expr cx obj

and cost_lvalue cx = function
  | Ast.Lident _ -> bounded 0 0
  | Ast.Lmember (obj, _) -> cost_expr cx obj
  | Ast.Lindex (obj, idx) -> cost_expr cx obj +? cost_expr cx idx

(* Cost of evaluating the callee and running the application itself
   (apply charges 4 fuel; native results count one alloc event). *)
and cost_callee cx (callee : Ast.expr) pos : bound =
  match callee.Ast.desc with
  | Ast.Ident "evalScript" ->
    unbounded "evalScript executes dynamically generated code" pos
  | Ast.Ident f -> (
    match List.assoc_opt f cx.env with
    | Some (_, body) -> bounded 5 0 +? cost_named cx f body
    | None ->
      if Globals.is_global f then bounded 5 1
      else unbounded (Printf.sprintf "call through dynamic binding '%s'" f) pos)
  | Ast.Member (obj, _) ->
    (* Vocabulary/namespace natives and builtin string/array/bytes
       methods: constant.  (A user closure stored on an object would
       evade this; direct-call handlers are the supported idiom.) *)
    bounded 6 1 +? cost_expr cx obj
  | Ast.Func (_, body) -> bounded 5 1 +? cost_body cx body
  | _ -> unbounded "call through a computed callee" pos

and cost_named cx name body : bound =
  if List.mem name cx.visiting then
    unbounded
      (Printf.sprintf "recursion involving '%s'" name)
      (match body with s :: _ -> s.Ast.spos | [] -> { Ast.line = 0; col = 0 })
  else
    match List.find_opt (fun (b, _) -> b == body) !(cx.memo) with
    | Some (_, b) -> b
    | None ->
      let b = cost_body { cx with visiting = name :: cx.visiting } body in
      if cx.visiting = [] then cx.memo := (body, b) :: !(cx.memo);
      b

and cost_body cx body : bound =
  (* Extend the environment with this body's own hoisted functions. *)
  let env =
    List.fold_left
      (fun env (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Sfunc (n, ps, b) -> (n, (ps, b)) :: env
        | _ -> env)
      cx.env body
  in
  cost_stmts { cx with env } body

and cost_stmts cx stmts =
  List.fold_left (fun b s -> b +? cost_stmt cx s) (bounded 0 0) stmts

and cost_stmt cx (s : Ast.stmt) : bound =
  let pos = s.Ast.spos in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> bounded 1 0 +? cost_expr cx e
  | Ast.Svar bindings ->
    List.fold_left
      (fun b (_, init) ->
        match init with Some e -> b +? cost_expr cx e | None -> b)
      (bounded 1 0) bindings
  | Ast.Sif (c, t, e) ->
    bounded 1 0 +? cost_expr cx c +? max_bound (cost_stmts cx t) (cost_stmts cx e)
  | Ast.Swhile _ -> unbounded "while loop with non-constant bound" pos
  | Ast.Sdo_while _ -> unbounded "do-while loop with non-constant bound" pos
  | Ast.Sfor (init, cond, step, body) -> (
    match const_for_trips init cond step body with
    | Some trips ->
      let init_cost =
        match init with Some i -> cost_stmt cx i | None -> bounded 0 0
      in
      let cond_cost =
        match cond with Some c -> cost_expr cx c | None -> bounded 0 0
      in
      let step_cost =
        match step with Some e -> cost_expr cx e | None -> bounded 0 0
      in
      bounded 1 0 +? init_cost
      +? scale (trips + 1) cond_cost
      +? scale trips (cost_stmts cx body +? step_cost)
    | None -> unbounded "for loop with non-constant bounds" pos)
  | Ast.Sfor_in (_, subject, body) -> (
    let trips =
      match subject.Ast.desc with
      | Ast.Array_lit els -> Some (List.length els)
      | Ast.Object_lit fields -> Some (List.length fields)
      | _ -> None
    in
    match trips with
    | Some n -> bounded 1 0 +? cost_expr cx subject +? scale n (cost_stmts cx body)
    | None -> unbounded "for-in over a dynamic subject" pos)
  | Ast.Sreturn v ->
    bounded 1 0
    +? (match v with Some e -> cost_expr cx e | None -> bounded 0 0)
  | Ast.Sbreak | Ast.Scontinue -> bounded 1 0
  | Ast.Sfunc _ -> bounded 1 1
  | Ast.Sblock body -> bounded 1 0 +? cost_stmts cx body
  | Ast.Sthrow e -> bounded 1 0 +? cost_expr cx e
  | Ast.Stry (body, _, handler) ->
    (* Upper bound: both the protected body and the handler. *)
    bounded 1 0 +? cost_stmts cx body +? cost_stmts cx handler

let analyze (model : Model.t) : item list * Diagnostic.t list =
  let env =
    Hashtbl.fold
      (fun name (params, body, _) acc -> (name, (params, body)) :: acc)
      model.Model.named_funcs []
  in
  let cx = { env; visiting = []; memo = ref [] } in
  let items = ref [] in
  (* Toplevel named functions (declarations and un-reassigned
     [var f = function] bindings) in source order; each item covers one
     invocation: the 4-fuel application charge plus the body. *)
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.sdesc with
      | Ast.Sfunc (name, _, body) ->
        items :=
          { name; pos = s.Ast.spos; bound = bounded 4 0 +? cost_named cx name body }
          :: !items
      | Ast.Svar bindings ->
        List.iter
          (fun (name, init) ->
            match init with
            | Some { Ast.desc = Ast.Func (_, body); _ }
              when Hashtbl.mem model.Model.named_funcs name ->
              items :=
                {
                  name;
                  pos = s.Ast.spos;
                  bound = bounded 4 0 +? cost_named cx name body;
                }
                :: !items
            | _ -> ())
          bindings
      | _ -> ())
    model.Model.program;
  (* Policy handlers: invocation (4 fuel) + body. *)
  List.iter
    (fun (p : Model.policy_info) ->
      List.iter
        (fun (field, (value : Ast.expr), pos) ->
          match (field, value.Ast.desc) with
          | ("onRequest" | "onResponse"), Ast.Func (_, body) ->
            items :=
              {
                name = Printf.sprintf "%s.%s" p.Model.var_name field;
                pos;
                bound = bounded 4 0 +? cost_body cx body;
              }
              :: !items
          | _ -> ())
        p.Model.fields)
    model.Model.policies;
  let items = List.rev !items in
  let diags =
    List.filter_map
      (fun it ->
        match it.bound with
        | Unbounded { reason; pos } ->
          Some
            (Diagnostic.info "cost-unbounded" pos
               "execution cost of '%s' is unbounded: %s" it.name reason)
        | Bounded _ -> None)
      items
  in
  (items, diags)
