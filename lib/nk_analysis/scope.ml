(* Scope/resolution pass: a must-bound dataflow analysis over the AST
   that mirrors the interpreter's environment semantics exactly.

   The interpreter's bindings are monotone — [declare] and global-
   creating assignment only ever add names, nothing unbinds — so "the
   set of names definitely bound when control reaches this point" is a
   plain flat set threaded through the program in evaluation order.
   Reading an identifier outside that set (and outside the installed
   builtins/vocabulary) raises ["'x' is not defined"] at runtime; we
   report it here, at admission time, with the right position.

   Soundness notes (these match [Interp] case by case):
   - [Interp.run] hoists direct toplevel [function f] declarations into
     the globals before executing anything, and [exec_body] does the
     same per statement list on entry: hoisted names join the must-set
     at list entry.
   - A function body only runs at some call.  Its entry set is the
     must-set at closure creation (the captured frames are mutated in
     place, so later additions stay visible) plus its parameters and
     own hoisted functions, plus the "first-call refinement" [s_refine]:
     everything the toplevel prefix before the first call-containing
     statement definitely binds, since no function body can execute
     before the first toplevel call.
   - Assignment to a plain identifier never raises — a missing binding
     silently creates a global — so [x = e] and [x++] add [x].
   - Conditional constructs join by intersection; loop bodies/steps may
     run zero times and contribute nothing to the out-set.

   Severity: a read outside the must-set is an Error ("undefined-var")
   unless the name is assigned *somewhere* in the program (assignments
   create globals, so the read races the assignment rather than being
   definitely wrong) — that demotes to a Warning ("use-before-assign").
   A read that the must-set covers via an outer binding while a local
   [var] of the same name has not executed yet gets a Warning
   ("use-before-decl"): legal, but almost always a hoisting surprise. *)

open Nk_script
module S = Set.Make (String)

type binding_kind = Param | Var | Func_decl | Catch | Loop

type fctx = {
  (* [var]-declared names of this function body (not nested functions):
     the temporal-shadowing candidates. *)
  local_vars : S.t;
  (* Subset declared somewhere control may have skipped or already
     visited (an [if]/loop/[try] body): for these, "not in the must-set"
     only means *may* be undefined, never *definitely*. *)
  conditional_vars : S.t;
  mutable declared : S.t;  (* subset whose declaration has executed *)
  uses : (string, unit) Hashtbl.t;
  mutable bindings : (string * Ast.pos * binding_kind) list;
  toplevel : bool;
}

type st = {
  model : Model.t;
  diags : Diagnostic.t list ref;
  s_refine : S.t;
  (* Use-tables of every enclosing function, innermost first: reads in
     nested closures count as uses of enclosing bindings. *)
  mutable sinks : (string, unit) Hashtbl.t list;
  (* Names declared anywhere in enclosing scopes: suppresses the
     assign-builtin warning when the global is deliberately shadowed. *)
  mutable lexical : S.t;
  mutable in_for_init : bool;
  silent : bool;
}

let emit st d = if not st.silent then st.diags := d :: !(st.diags)

let hoisted_names stmts =
  List.fold_left
    (fun acc (s : Ast.stmt) ->
      match s.Ast.sdesc with Ast.Sfunc (n, _, _) -> S.add n acc | _ -> acc)
    S.empty stmts

(* [var] and for-in names of one function body, nested functions
   excluded. *)
let collect_local_vars body =
  let acc = ref S.empty in
  Model.iter_stmts ~enter_funcs:false
    (fun (s : Ast.stmt) ->
      match s.Ast.sdesc with
      | Ast.Svar bs -> List.iter (fun (n, _) -> acc := S.add n !acc) bs
      | Ast.Sfor_in (n, _, _) -> acc := S.add n !acc
      | _ -> ())
    (fun _ -> ())
    body;
  !acc

let stmt_contains_call s =
  let found = ref false in
  Model.iter_stmt ~enter_funcs:false
    (fun _ -> ())
    (fun (e : Ast.expr) ->
      match e.Ast.desc with Ast.Call _ | Ast.New _ -> found := true | _ -> ())
    s;
  !found

(* Declarations reached only through a branch, loop or protected block:
   direct children of the list (and of bare blocks, which always run)
   are straight-line; everything nested deeper is conditional. A [for]'s
   init clause runs unconditionally once the [for] is reached, so it
   stays straight-line; the loop body does not. *)
let conditional_vars stmts =
  let acc = ref S.empty in
  let collect body =
    Model.iter_stmts ~enter_funcs:false
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Svar bs -> List.iter (fun (n, _) -> acc := S.add n !acc) bs
        | Ast.Sfor_in (n, _, _) -> acc := S.add n !acc
        | _ -> ())
      (fun _ -> ())
      body
  in
  let rec direct stmts =
    List.iter
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Sblock b -> direct b
        | Ast.Sif (_, t, e) ->
          collect t;
          collect e
        | Ast.Swhile (_, b) | Ast.Sdo_while (b, _) -> collect b
        | Ast.Sfor (_, _, _, b) | Ast.Sfor_in (_, _, b) -> collect b
        | Ast.Stry (b, _, h) ->
          (* A throw can cut the protected body short. *)
          collect b;
          collect h
        | _ -> ())
      stmts
  in
  direct stmts;
  !acc

let fresh_fctx ~local_vars ?(conditional_vars = S.empty) ~toplevel () =
  {
    local_vars;
    conditional_vars;
    declared = S.empty;
    uses = Hashtbl.create 8;
    bindings = [];
    toplevel;
  }

let record_use st name =
  List.iter (fun tbl -> Hashtbl.replace tbl name ()) st.sinks

let classify_ident st fctx must name pos =
  record_use st name;
  if S.mem name must then begin
    if
      (not fctx.toplevel)
      && S.mem name fctx.local_vars
      && not (S.mem name fctx.declared)
    then
      emit st
        (Diagnostic.warning "use-before-decl" pos
           "'%s' is read before its 'var' declaration executes; the read resolves to an outer or global binding"
           name)
  end
  else if Globals.is_global name then ()
  else if
    fctx.toplevel
    && S.mem name fctx.local_vars
    && not (S.mem name fctx.conditional_vars)
  then
    (* Every declaration of the name is a straight-line toplevel
       statement, so "not in the must-set" is exact: the read is
       sequenced before the [var] and definitely raises if reached. *)
    emit st
      (Diagnostic.error "undefined-var" pos
         "'%s' is read before its 'var' declaration executes" name)
  else if Hashtbl.mem st.model.Model.assigned_names name then
    emit st
      (Diagnostic.warning "use-before-assign" pos
         "'%s' may be read before it is first assigned" name)
  else if Hashtbl.mem st.model.Model.declared_vars name then
    emit st
      (Diagnostic.warning "use-before-decl" pos
         "'%s' may be read before its 'var' declaration executes" name)
  else emit st (Diagnostic.error "undefined-var" pos "'%s' is not defined" name)

let declare_binding st fctx name pos kind =
  (match kind with
   | Var | Param | Func_decl ->
     if
       (not st.in_for_init)
       && List.exists
            (fun (n, _, k) -> n = name && k <> Catch && k <> Loop)
            fctx.bindings
     then
       emit st
         (Diagnostic.warning "duplicate-decl" pos "'%s' is declared more than once"
            name)
   | Catch | Loop -> ());
  if Globals.is_global name then
    emit st
      (Diagnostic.warning "shadow-builtin" pos
         "declaration of '%s' shadows a built-in or vocabulary global" name);
  fctx.bindings <- (name, pos, kind) :: fctx.bindings;
  fctx.declared <- S.add name fctx.declared

let assign_ident st name pos must =
  if Globals.is_global name && not (S.mem name st.lexical) then
    emit st
      (Diagnostic.warning "assign-builtin" pos
         "assignment overwrites the built-in or vocabulary global '%s'" name);
  S.add name must

(* --- the walk ------------------------------------------------------- *)

let rec check_expr st fctx must (e : Ast.expr) : S.t =
  let pos = e.Ast.pos in
  match e.Ast.desc with
  | Ast.Number _ | Ast.String _ | Ast.Bool _ | Ast.Null | Ast.Undefined
  | Ast.This ->
    must
  | Ast.Ident name ->
    classify_ident st fctx must name pos;
    must
  | Ast.Array_lit els -> List.fold_left (check_expr st fctx) must els
  | Ast.Object_lit fields ->
    List.fold_left (fun m (_, v) -> check_expr st fctx m v) must fields
  | Ast.Func (params, body) ->
    check_function st ~creation_must:must ~params ~body ~pos;
    must
  | Ast.Member (obj, _) -> check_expr st fctx must obj
  | Ast.Index (obj, idx) ->
    let m = check_expr st fctx must obj in
    check_expr st fctx m idx
  | Ast.Call (callee, args) | Ast.New (callee, args) ->
    let m = check_expr st fctx must callee in
    List.fold_left (check_expr st fctx) m args
  | Ast.Assign (lv, _, rhs) -> (
    (* RHS first, then the compound read / index subexpressions, then
       the write — the interpreter's order. *)
    let m = check_expr st fctx must rhs in
    match lv with
    | Ast.Lident name -> assign_ident st name pos m
    | Ast.Lmember (obj, _) -> check_expr st fctx m obj
    | Ast.Lindex (obj, idx) ->
      let m = check_expr st fctx m obj in
      check_expr st fctx m idx)
  | Ast.Unop (_, x) -> check_expr st fctx must x
  | Ast.Binop (_, a, b) ->
    let m = check_expr st fctx must a in
    check_expr st fctx m b
  | Ast.Logical (_, a, b) ->
    let m = check_expr st fctx must a in
    (* The right operand may be skipped: check it, drop its additions. *)
    ignore (check_expr st fctx m b);
    m
  | Ast.Cond (c, t, e') ->
    let mc = check_expr st fctx must c in
    let mt = check_expr st fctx mc t in
    let me = check_expr st fctx mc e' in
    S.inter mt me
  | Ast.Incr (_, lv) | Ast.Decr (_, lv) -> (
    match lv with
    | Ast.Lident name -> assign_ident st name pos must
    | Ast.Lmember (obj, _) -> check_expr st fctx must obj
    | Ast.Lindex (obj, idx) ->
      let m = check_expr st fctx must obj in
      check_expr st fctx m idx)
  | Ast.Delete (obj, _) -> check_expr st fctx must obj

and check_stmt st fctx must (s : Ast.stmt) : S.t =
  let pos = s.Ast.spos in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> check_expr st fctx must e
  | Ast.Svar bindings ->
    List.fold_left
      (fun must (name, init) ->
        let must =
          match init with Some e -> check_expr st fctx must e | None -> must
        in
        declare_binding st fctx name pos Var;
        S.add name must)
      must bindings
  | Ast.Sif (c, t, e) ->
    let mc = check_expr st fctx must c in
    let mt = check_stmts st fctx mc t in
    let me = check_stmts st fctx mc e in
    S.union mc (S.inter mt me)
  | Ast.Swhile (c, body) ->
    let mc = check_expr st fctx must c in
    ignore (check_stmts st fctx mc body);
    mc
  | Ast.Sdo_while (body, c) ->
    (* [break] can skip the condition, so only the entry set survives. *)
    let mb = check_stmts st fctx must body in
    ignore (check_expr st fctx mb c);
    must
  | Ast.Sfor (init, cond, step, body) ->
    let m1 =
      match init with
      | Some i ->
        st.in_for_init <- true;
        let m = check_stmt st fctx must i in
        st.in_for_init <- false;
        m
      | None -> must
    in
    let m2 = match cond with Some c -> check_expr st fctx m1 c | None -> m1 in
    ignore (check_stmts st fctx m2 body);
    (match step with Some e -> ignore (check_expr st fctx m2 e) | None -> ());
    m2
  | Ast.Sfor_in (name, subject, body) ->
    let ms = check_expr st fctx must subject in
    (* The loop variable is declared unconditionally, before the subject
       is even checked for enumerability. *)
    declare_binding st fctx name pos Loop;
    let m0 = S.add name ms in
    ignore (check_stmts st fctx m0 body);
    m0
  | Ast.Sreturn v ->
    (match v with Some e -> ignore (check_expr st fctx must e) | None -> ());
    must
  | Ast.Sbreak | Ast.Scontinue -> must
  | Ast.Sfunc _ ->
    (* Declared at list entry and analyzed by [check_stmts]. *)
    must
  | Ast.Sblock body ->
    (* No new scope: [var]s inside persist in the enclosing frame. *)
    check_stmts st fctx must body
  | Ast.Sthrow e ->
    ignore (check_expr st fctx must e);
    must
  | Ast.Stry (body, name, handler) ->
    ignore (check_stmts st fctx must body);
    declare_binding st fctx name pos Catch;
    ignore (check_stmts st fctx (S.add name must) handler);
    must

and check_stmts st fctx must (stmts : Ast.stmt list) : S.t =
  let entry = S.union must (hoisted_names stmts) in
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.sdesc with
      | Ast.Sfunc (name, params, body) ->
        declare_binding st fctx name s.Ast.spos Func_decl;
        (* The closure exists from list entry on, so a call may reach the
           body before any later statement of this list runs: only the
           entry set is guaranteed. *)
        check_function st ~creation_must:entry ~params ~body ~pos:s.Ast.spos
      | _ -> ())
    stmts;
  List.fold_left (check_stmt st fctx) entry stmts

and check_function st ~creation_must ~params ~body ~pos =
  if st.silent then ()
  else begin
    let local_vars = collect_local_vars body in
    let fctx = fresh_fctx ~local_vars ~toplevel:false () in
    let saved_sinks = st.sinks and saved_lexical = st.lexical in
    st.sinks <- fctx.uses :: st.sinks;
    st.lexical <-
      S.union st.lexical (S.union local_vars (S.of_list params));
    List.iter (fun p -> declare_binding st fctx p pos Param) params;
    let entry =
      List.fold_left
        (fun m p -> S.add p m)
        (S.union creation_must st.s_refine)
        params
    in
    ignore (check_stmts st fctx entry body);
    st.sinks <- saved_sinks;
    st.lexical <- saved_lexical;
    (* Unused locals/params: reads recorded into this function's use
       table (including reads from nested closures) clear the flag. *)
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (name, bpos, kind) ->
        match kind with
        | (Param | Var) when not (Hashtbl.mem seen name) ->
          Hashtbl.replace seen name ();
          if not (Hashtbl.mem fctx.uses name) then
            emit st
              (Diagnostic.warning "unused-binding" bpos "%s '%s' is never read"
                 (if kind = Param then "parameter" else "variable")
                 name)
        | _ -> ())
      (List.rev fctx.bindings)
  end

(* The first-call refinement: the must-additions of the toplevel prefix
   up to (excluding) the first statement that contains a call — no
   function body can execute earlier, so every function entry also
   inherits these. *)
let compute_refinement model (program : Ast.program) =
  let st =
    {
      model;
      diags = ref [];
      s_refine = S.empty;
      sinks = [];
      lexical = S.empty;
      in_for_init = false;
      silent = true;
    }
  in
  let fctx = fresh_fctx ~local_vars:S.empty ~toplevel:true () in
  let rec go must = function
    | [] -> must
    | s :: _ when stmt_contains_call s -> must
    | s :: rest -> go (check_stmt st fctx must s) rest
  in
  go (hoisted_names program) program

let check (model : Model.t) : Diagnostic.t list =
  let program = model.Model.program in
  let s_refine = compute_refinement model program in
  let top_vars = collect_local_vars program in
  let fctx = fresh_fctx ~local_vars:top_vars ~conditional_vars:(conditional_vars program) ~toplevel:true () in
  let st =
    {
      model;
      diags = ref [];
      s_refine;
      sinks = [ fctx.uses ];
      lexical = S.union top_vars (hoisted_names program);
      in_for_init = false;
      silent = false;
    }
  in
  ignore (check_stmts st fctx S.empty program);
  List.rev !(st.diags)
