open Nk_script.Value

let arg i args = match List.nth_opt args i with Some v -> v | None -> Vundefined

let body_string = function
  | Vbytes b ->
    (* Zero-copy read view: the decoder only reads the string within
       this native call, and nothing can mutate the Vbytes while the
       call runs, so a full-length buffer can be frozen in place. *)
    if Bytes.length b.data = b.blen then Bytes.unsafe_to_string b.data
    else Bytes.sub_string b.data 0 b.blen
  | v -> to_string v

let format_of_type_string s =
  match String.lowercase_ascii s with
  | "raw" | "nki" -> Some Image.Raw
  | "rle" | "jpeg" | "gif" | "png" -> Some Image.Rle
  | _ -> None

let install ctx =
  let o = new_obj () in
  (* Transcoding is pixel-proportional CPU; charge it as fuel. *)
  let charge_pixels n = Nk_script.Interp.consume_fuel ctx (n / 8) in
  obj_set o "type"
    (native "type" (fun _ args ->
         match Image.format_of_mime (to_string (arg 0 args)) with
         | Some Image.Raw -> Vstr "raw"
         | Some Image.Rle -> Vstr "rle"
         | None -> Vnull));
  obj_set o "dimensions"
    (native "dimensions" (fun _ args ->
         match Image.dimensions (body_string (arg 0 args)) with
         | Some (w, h) ->
           let dim = new_obj () in
           obj_set dim "x" (Vnum (float_of_int w));
           obj_set dim "y" (Vnum (float_of_int h));
           Vobj dim
         | None -> error "dimensions: not an NKI image"));
  obj_set o "transform"
    (native "transform" (fun _ args ->
         let data = body_string (arg 0 args) in
         let to_type =
           match format_of_type_string (to_string (arg 2 args)) with
           | Some f -> f
           | None -> error "transform: unknown target type %s" (to_string (arg 2 args))
         in
         let width = max 1 (to_int (arg 3 args)) in
         let height = max 1 (to_int (arg 4 args)) in
         match Image.decode data with
         | Error e -> error "transform: %s" e
         | Ok (img, _) ->
           charge_pixels ((img.Image.width * img.Image.height) + (width * height));
           let scaled = Image.scale img ~width ~height in
           (* [encode_bytes] hands over a fresh buffer; adopt it as the
              Vbytes payload instead of stringifying and re-copying. *)
           Vbytes (bytes_of_bytes (Image.encode_bytes scaled to_type))));
  obj_set o "mimeType"
    (native "mimeType" (fun _ args ->
         match format_of_type_string (to_string (arg 0 args)) with
         | Some f -> Vstr (Image.mime_of_format f)
         | None -> Vnull));
  Nk_script.Interp.define_global ctx "ImageTransformer" (Vobj o)
