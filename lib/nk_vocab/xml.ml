type node = Element of string * (string * string) list * node list | Text of string

(* Append [s] to [buf], escaping markup characters. Unescaped spans are
   copied with a single [add_substring] per span rather than char by
   char. *)
let escape_into buf s =
  let n = String.length s in
  let start = ref 0 in
  for i = 0 to n - 1 do
    match String.unsafe_get s i with
    | ('<' | '>' | '&' | '"' | '\'') as c ->
      Buffer.add_substring buf s !start (i - !start);
      Buffer.add_string buf
        (match c with
         | '<' -> "&lt;"
         | '>' -> "&gt;"
         | '&' -> "&amp;"
         | '"' -> "&quot;"
         | _ -> "&apos;");
      start := i + 1
    | _ -> ()
  done;
  Buffer.add_substring buf s !start (n - !start)

let needs_escape s =
  let n = String.length s in
  let rec go i =
    i < n
    &&
    match String.unsafe_get s i with
    | '<' | '>' | '&' | '"' | '\'' -> true
    | _ -> go (i + 1)
  in
  go 0

let escape s =
  (* Most text nodes contain no markup characters: return the input
     itself rather than round-tripping through a Buffer. *)
  if not (needs_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    escape_into buf s;
    Buffer.contents buf
  end

let unescape_slow s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      let entity_end = try Some (String.index_from s i ';') with Not_found -> None in
      match entity_end with
      | Some j when j - i <= 6 ->
        let name = String.sub s (i + 1) (j - i - 1) in
        let repl =
          match name with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "quot" -> "\""
          | "apos" -> "'"
          | _ -> "&" ^ name ^ ";"
        in
        Buffer.add_string buf repl;
        go (j + 1)
      | _ ->
        Buffer.add_char buf '&';
        go (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

let unescape s =
  (* No ampersand, no entities: the common case for element text. *)
  match String.index_opt s '&' with None -> s | Some _ -> unescape_slow s

exception Xml_error of string

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

(* The scanning loops below index the source directly instead of going
   through [peek]: [Some c] allocates, and these loops run once per
   character of the document. *)
let skip_spaces st =
  let src = st.src in
  let n = String.length src in
  while st.pos < n && is_space (String.unsafe_get src st.pos) do
    st.pos <- st.pos + 1
  done

(* Allocation-free equivalent of [String.trim s <> ""] (same character
   set as [String.trim], which also strips form feeds). *)
let has_non_space s =
  let n = String.length s in
  let rec go i =
    i < n
    &&
    match String.unsafe_get s i with
    | ' ' | '\t' | '\n' | '\r' | '\012' -> go (i + 1)
    | _ -> true
  in
  go 0

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-'
  || c = '_' || c = ':' || c = '.'

let read_name st =
  let src = st.src in
  let n = String.length src in
  let start = st.pos in
  while st.pos < n && is_name_char (String.unsafe_get src st.pos) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then raise (Xml_error (Printf.sprintf "expected name at %d" st.pos));
  String.sub st.src start (st.pos - start)

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> raise (Xml_error (Printf.sprintf "expected '%c' at %d" c st.pos))

let skip_until st marker =
  match Nk_util.Strutil.index_sub st.src ~sub:marker ~start:st.pos with
  | Some i -> st.pos <- i + String.length marker
  | None -> raise (Xml_error ("unterminated " ^ marker))

let read_attributes st =
  let attrs = ref [] in
  let continue = ref true in
  while !continue do
    skip_spaces st;
    match peek st with
    | Some c when is_name_char c ->
      let name = read_name st in
      skip_spaces st;
      expect st '=';
      skip_spaces st;
      let quote =
        match peek st with
        | Some (('"' | '\'') as q) ->
          st.pos <- st.pos + 1;
          q
        | _ -> raise (Xml_error "expected quoted attribute value")
      in
      let start = st.pos in
      let n = String.length st.src in
      while st.pos < n && String.unsafe_get st.src st.pos <> quote do
        st.pos <- st.pos + 1
      done;
      expect st quote;
      attrs := (name, unescape (String.sub st.src start (st.pos - 1 - start))) :: !attrs
    | _ -> continue := false
  done;
  List.rev !attrs

let rec parse_element st =
  expect st '<';
  let name = read_name st in
  let attrs = read_attributes st in
  skip_spaces st;
  match peek st with
  | Some '/' ->
    st.pos <- st.pos + 1;
    expect st '>';
    Element (name, attrs, [])
  | Some '>' ->
    st.pos <- st.pos + 1;
    let children = parse_children st name in
    Element (name, attrs, children)
  | _ -> raise (Xml_error (Printf.sprintf "malformed tag <%s> at %d" name st.pos))

and parse_children st parent =
  let children = ref [] in
  let rec go () =
    match peek st with
    | None -> raise (Xml_error (Printf.sprintf "unterminated element <%s>" parent))
    | Some '<' ->
      if st.pos + 1 < String.length st.src then begin
        match st.src.[st.pos + 1] with
        | '/' ->
          st.pos <- st.pos + 2;
          let name = read_name st in
          skip_spaces st;
          expect st '>';
          if name <> parent then
            raise (Xml_error (Printf.sprintf "mismatched </%s>, expected </%s>" name parent))
        | '!' ->
          if st.pos + 3 < String.length st.src && String.sub st.src st.pos 4 = "<!--" then
            skip_until st "-->"
          else if
            st.pos + 8 < String.length st.src && String.sub st.src st.pos 9 = "<![CDATA["
          then begin
            (* CDATA: verbatim text, no entity processing *)
            let start = st.pos + 9 in
            skip_until st "]]>";
            let text = String.sub st.src start (st.pos - 3 - start) in
            if text <> "" then children := Text text :: !children
          end
          else skip_until st ">";
          go ()
        | '?' ->
          skip_until st "?>";
          go ()
        | _ ->
          children := parse_element st :: !children;
          go ()
      end
      else raise (Xml_error "stray '<' at end of input")
    | Some _ ->
      let start = st.pos in
      let n = String.length st.src in
      while st.pos < n && String.unsafe_get st.src st.pos <> '<' do
        st.pos <- st.pos + 1
      done;
      let text = unescape (String.sub st.src start (st.pos - start)) in
      if has_non_space text then children := Text text :: !children;
      go ()
  in
  go ();
  List.rev !children

let parse src =
  let st = { src; pos = 0 } in
  try
    skip_spaces st;
    (* leading declaration / comments *)
    let rec skip_prolog () =
      if st.pos + 1 < String.length src && src.[st.pos] = '<' then
        match src.[st.pos + 1] with
        | '?' ->
          skip_until st "?>";
          skip_spaces st;
          skip_prolog ()
        | '!' ->
          if st.pos + 3 < String.length src && String.sub src st.pos 4 = "<!--" then begin
            skip_until st "-->";
            skip_spaces st;
            skip_prolog ()
          end
          else begin
            skip_until st ">";
            skip_spaces st;
            skip_prolog ()
          end
        | _ -> ()
    in
    skip_prolog ();
    let root = parse_element st in
    skip_spaces st;
    if st.pos <> String.length src then Error "trailing content after root element"
    else Ok root
  with Xml_error msg -> Error msg

let parse_exn src =
  match parse src with Ok n -> n | Error e -> invalid_arg ("Xml.parse_exn: " ^ e)

(* One buffer threads the whole tree: the old per-node
   Printf/String.concat construction allocated an intermediate string
   per element per level. *)
let rec serialize_into buf = function
  | Text t -> escape_into buf t
  | Element (name, attrs, children) ->
    Buffer.add_char buf '<';
    Buffer.add_string buf name;
    List.iter
      (fun (k, v) ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape_into buf v;
        Buffer.add_char buf '"')
      attrs;
    if children = [] then Buffer.add_string buf "/>"
    else begin
      Buffer.add_char buf '>';
      List.iter (serialize_into buf) children;
      Buffer.add_string buf "</";
      Buffer.add_string buf name;
      Buffer.add_char buf '>'
    end

let serialize node =
  let buf = Buffer.create 256 in
  serialize_into buf node;
  Buffer.contents buf

let rec text_content = function
  | Text t -> t
  | Element (_, _, children) -> String.concat "" (List.map text_content children)

let find_all node tag =
  let rec go acc node =
    match node with
    | Text _ -> acc
    | Element (name, _, children) ->
      let acc = if name = tag then node :: acc else acc in
      List.fold_left go acc children
  in
  List.rev (go [] node)

type rule = { tag : string; html_tag : string; html_class : string option }

type stylesheet = rule list

let rec transform sheet node =
  match node with
  | Text _ -> node
  | Element (name, _attrs, children) ->
    let children = List.map (transform sheet) children in
    (match List.find_opt (fun r -> r.tag = name) sheet with
     | Some rule ->
       let attrs = match rule.html_class with Some c -> [ ("class", c) ] | None -> [] in
       Element (rule.html_tag, attrs, children)
     | None -> Element ("div", [ ("class", name) ], children))

let to_html sheet node =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<html><body>";
  serialize_into buf (transform sheet node);
  Buffer.add_string buf "</body></html>";
  Buffer.contents buf
