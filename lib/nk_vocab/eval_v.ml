open Nk_script.Value

let install ctx =
  Nk_script.Interp.define_global ctx "evalScript"
    (native "evalScript" (fun _ args ->
         let code = match args with v :: _ -> to_string v | [] -> "" in
         try Nk_script.Compile.run_string ctx code with
         | Nk_script.Parser.Parse_error (msg, _) -> error "evalScript: parse error: %s" msg
         | Nk_script.Lexer.Lex_error (msg, _) -> error "evalScript: lex error: %s" msg))
