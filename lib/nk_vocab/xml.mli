(** XML parsing, serialization, and the small template-rule transform
    used to render SIMM-style XML content to HTML (§5.2: personalized
    content "is represented as XML and, before being returned to the
    client, rendered as HTML by an XSL stylesheet"). *)

type node = Element of string * (string * string) list * node list | Text of string

val parse : string -> (node, string) result
(** A single root element; supports attributes, nested elements, text,
    comments, XML declarations, and the five standard entities. *)

val parse_exn : string -> node

val serialize : node -> string

val serialize_into : Buffer.t -> node -> unit
(** As {!serialize}, appending into a caller-owned buffer — a renderer
    that wraps the tree (e.g. {!to_html}) builds the whole page in one
    buffer instead of concatenating per-node strings. *)

val text_content : node -> string
(** Concatenated text of the subtree. *)

val find_all : node -> string -> node list
(** All descendant elements (and the node itself) with the given tag. *)

type rule = { tag : string; html_tag : string; html_class : string option }
(** One template rule: rewrite elements named [tag] into [html_tag]
    (optionally with a class), recursively transforming children. *)

type stylesheet = rule list

val transform : stylesheet -> node -> node
(** Apply rules top-down; unmatched elements become [<div>]s keeping
    their tag name as the class. Text passes through. *)

val to_html : stylesheet -> node -> string
(** [serialize (transform sheet doc)] wrapped in an [<html><body>]
    shell. *)

val escape : string -> string
(** Entity-escape markup characters. Returns the input itself (no
    copy) when nothing needs escaping. *)
