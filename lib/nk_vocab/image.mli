(** NKI — the synthetic raster format behind the image-transformer
    vocabulary.

    The paper transcodes GIF/JPEG/PNG with libjpeg-style codecs; the
    reproduction replaces those with a tiny self-contained format that
    still does real byte-level work, so Fig. 2's handler exercises the
    same code path: parse header, read dimensions, scale pixels,
    re-encode, rewrite Content-Type/Content-Length.

    Wire layout: magic "NKI1", 2-byte big-endian width, 2-byte
    big-endian height, 1 format byte (0 = raw 8-bit grayscale,
    1 = RLE-compressed — our "jpeg"), then the payload. *)

type format = Raw | Rle

type t = { width : int; height : int; pixels : Bytes.t (* row-major, width*height *) }

val synthesize : width:int -> height:int -> seed:int -> t
(** A deterministic test-pattern image (gradient + seed noise). *)

val encode : t -> format -> string

val encode_bytes : t -> format -> Bytes.t
(** As {!encode}, but returns the freshly built buffer itself so a
    caller that wants mutable bytes (e.g. the script engine's [Vbytes])
    can take ownership without a copy. The buffer is exact-size and
    never aliased by this module. *)

val decode : string -> (t * format, string) result
(** Wire bytes -> image. RLE payloads are decompressed directly into
    the exact-size pixel buffer (no intermediate buffer or copy). *)

val dimensions : string -> (int * int) option
(** Header-only peek, as [ImageTransformer.dimensions] does. *)

val scale : t -> width:int -> height:int -> t
(** Nearest-neighbor resampling. Raises [Invalid_argument] on
    non-positive targets. *)

val format_of_mime : string -> format option
(** "image/nki" -> Raw, "image/jpeg" | "image/nki-rle" -> Rle. *)

val mime_of_format : format -> string

val rle_compress : string -> string
(** Run-length encoding: (count, byte) pairs. Exposed for tests. *)

val rle_decompress : string -> (string, string) result
