type format = Raw | Rle

type t = { width : int; height : int; pixels : Bytes.t }

let magic = "NKI1"

let synthesize ~width ~height ~seed =
  if width <= 0 || height <= 0 then invalid_arg "Image.synthesize: non-positive dimensions";
  let pixels = Bytes.create (width * height) in
  let rng = Nk_util.Prng.create seed in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      (* Smooth gradient with occasional noise: compresses well under
         RLE but not trivially. *)
      let base = (x * 255 / width) + (y * 255 / height) in
      let v = if Nk_util.Prng.int rng 16 = 0 then Nk_util.Prng.int rng 256 else base / 2 in
      Bytes.set pixels ((y * width) + x) (Char.chr (v land 0xFF))
    done
  done;
  { width; height; pixels }

(* RLE straight out of a pixel buffer into a caller-provided scratch
   buffer (worst case 2*n: every pixel its own run). Returns the number
   of bytes written. Shared by [encode_bytes] and the string-based
   [rle_compress]; byte-for-byte the same output as the original
   Buffer-based encoder. *)
let rle_compress_into (px : Bytes.t) ~len (out : Bytes.t) : int =
  let i = ref 0 in
  let o = ref 0 in
  while !i < len do
    let c = Bytes.unsafe_get px !i in
    let run = ref 1 in
    while !i + !run < len && Bytes.unsafe_get px (!i + !run) = c && !run < 255 do
      incr run
    done;
    Bytes.unsafe_set out !o (Char.unsafe_chr !run);
    Bytes.unsafe_set out (!o + 1) c;
    o := !o + 2;
    i := !i + !run
  done;
  !o

let rle_compress s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  let o = rle_compress_into (Bytes.unsafe_of_string s) ~len:n out in
  Bytes.sub_string out 0 o

(* Decompress [src] (from [pos] to the end) directly into [dst],
   filling runs in place — no intermediate buffer, no copy. Error
   detection matches the original decompress-then-check sequence
   exactly: odd payloads and zero runs are reported in scan order, and
   a payload that would overflow [dst] keeps scanning (without writing)
   so a later zero run still wins over the size mismatch, as it did
   when decompression ran to completion first. *)
exception Rle_error of string

(* Each byte value replicated across an int64, so a short run can be
   written as one 8-byte store instead of a data-dependent number of
   byte stores (run lengths in real images are effectively random, so
   a per-run branch or fill-loop mispredicts constantly). *)
let rle_words =
  Array.init 256 (fun c -> Int64.mul (Int64.of_int c) 0x0101010101010101L)

let rle_decompress_into ~src ~pos (dst : Bytes.t) : (unit, string) result =
  let n = String.length src in
  if (n - pos) mod 2 <> 0 then Error "RLE payload has odd length"
  else begin
    let cap = Bytes.length dst in
    let out = ref 0 in
    let i = ref pos in
    try
      while !i < n do
        let run = Char.code (String.unsafe_get src !i) in
        let c = String.unsafe_get src (!i + 1) in
        let o = !out in
        if run >= 1 && run <= 8 && o + 8 <= cap then
          (* One unconditional splat covers any run up to 8; the
             overshoot stays in bounds and is overwritten by the next
             run (or lies beyond the final [out], where only the size
             check looks). *)
          Bytes.set_int64_le dst o (Array.unsafe_get rle_words (Char.code c))
        else if run = 0 then raise (Rle_error "zero-length RLE run")
        else if o + run > cap then begin
          let j = ref (!i + 2) in
          let zero = ref false in
          while (not !zero) && !j < n do
            if Char.code (String.unsafe_get src !j) = 0 then zero := true
            else j := !j + 2
          done;
          raise
            (Rle_error
               (if !zero then "zero-length RLE run" else "RLE payload size mismatch"))
        end
        else Bytes.unsafe_fill dst o run c;
        out := !out + run;
        i := !i + 2
      done;
      if !out <> cap then Error "RLE payload size mismatch" else Ok ()
    with Rle_error e -> Error e
  end

let rle_decompress s =
  if String.length s mod 2 <> 0 then Error "RLE payload has odd length"
  else begin
    let buf = Buffer.create (String.length s * 2) in
    let rec go i =
      if i >= String.length s then Ok (Buffer.contents buf)
      else begin
        let run = Char.code s.[i] in
        if run = 0 then Error "zero-length RLE run"
        else begin
          for _ = 1 to run do
            Buffer.add_char buf s.[i + 1]
          done;
          go (i + 2)
        end
      end
    in
    go 0
  end

let set_header (out : Bytes.t) t format =
  Bytes.blit_string magic 0 out 0 4;
  Bytes.unsafe_set out 4 (Char.chr ((t.width lsr 8) land 0xFF));
  Bytes.unsafe_set out 5 (Char.chr (t.width land 0xFF));
  Bytes.unsafe_set out 6 (Char.chr ((t.height lsr 8) land 0xFF));
  Bytes.unsafe_set out 7 (Char.chr (t.height land 0xFF));
  Bytes.unsafe_set out 8 (match format with Raw -> '\x00' | Rle -> '\x01')

let encode_bytes t format =
  let n = Bytes.length t.pixels in
  match format with
  | Raw ->
    let out = Bytes.create (9 + n) in
    set_header out t format;
    Bytes.blit t.pixels 0 out 9 n;
    out
  | Rle ->
    let scratch = Bytes.create (2 * n) in
    let o = rle_compress_into t.pixels ~len:n scratch in
    let out = Bytes.create (9 + o) in
    set_header out t format;
    Bytes.blit scratch 0 out 9 o;
    out

let encode t format =
  (* [encode_bytes] hands over a fresh buffer nothing else references;
     freezing it in place saves the copy on multi-hundred-KB images. *)
  Bytes.unsafe_to_string (encode_bytes t format)

let dimensions s =
  if String.length s >= 9 && String.sub s 0 4 = magic then
    let w = (Char.code s.[4] lsl 8) lor Char.code s.[5] in
    let h = (Char.code s.[6] lsl 8) lor Char.code s.[7] in
    Some (w, h)
  else None

let decode s =
  if String.length s < 9 then Error "truncated NKI image"
  else if String.sub s 0 4 <> magic then Error "bad NKI magic"
  else begin
    let w = (Char.code s.[4] lsl 8) lor Char.code s.[5] in
    let h = (Char.code s.[6] lsl 8) lor Char.code s.[7] in
    if w <= 0 || h <= 0 then Error "bad NKI dimensions"
    else begin
      let plen = String.length s - 9 in
      match s.[8] with
      | '\x00' ->
        if plen <> w * h then Error "raw payload size mismatch"
        else begin
          (* One blit from the wire bytes into the pixel buffer — the
             old String.sub payload copy is gone. *)
          let pixels = Bytes.create plen in
          Bytes.blit_string s 9 pixels 0 plen;
          Ok ({ width = w; height = h; pixels }, Raw)
        end
      | '\x01' -> (
        (* Decompress runs straight into the exact-size pixel buffer:
           no Buffer growth, no intermediate string, no final copy. *)
        let pixels = Bytes.create (w * h) in
        match rle_decompress_into ~src:s ~pos:9 pixels with
        | Error e -> Error e
        | Ok () -> Ok ({ width = w; height = h; pixels }, Rle))
      | c -> Error (Printf.sprintf "unknown NKI format byte %d" (Char.code c))
    end
  end

let scale t ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Image.scale: non-positive dimensions";
  let pixels = Bytes.create (width * height) in
  (* The source column for a given x is the same on every row; resolve
     the divisions once into a map instead of once per pixel. *)
  let sxs = Array.make width 0 in
  for x = 0 to width - 1 do
    Array.unsafe_set sxs x (x * t.width / width)
  done;
  let src = t.pixels in
  for y = 0 to height - 1 do
    let srow = y * t.height / height * t.width in
    let drow = y * width in
    for x = 0 to width - 1 do
      Bytes.unsafe_set pixels (drow + x)
        (Bytes.unsafe_get src (srow + Array.unsafe_get sxs x))
    done
  done;
  { width; height; pixels }

let format_of_mime mime =
  match String.lowercase_ascii (String.trim mime) with
  | "image/nki" -> Some Raw
  | "image/jpeg" | "image/nki-rle" | "image/gif" | "image/png" -> Some Rle
  | _ -> None

let mime_of_format = function Raw -> "image/nki" | Rle -> "image/jpeg"
