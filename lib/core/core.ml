(** Na Kika: secure service execution and composition in an open
    edge-side computing network (Grimm et al., NSDI 2006) — OCaml
    reproduction.

    This module is the public facade: one alias per subsystem. The
    paper's primary contribution lives in [Policy] (predicate-selected
    event handlers), [Pipeline] (the scripting pipeline of Fig. 4) and
    [Resource] (congestion-based resource control, Fig. 6); everything
    else is the substrate those run on.

    Quick start (see also [examples/quickstart.ml]):
    {[
      let cluster = Core.Node.Cluster.create () in
      let origin = Core.Node.Cluster.add_origin cluster ~name:"www.example.edu" () in
      Core.Node.Origin.set_static origin ~path:"/index.html" "<html>hi</html>";
      Core.Node.Origin.set_static origin ~path:"/nakika.js"
        ~content_type:"text/javascript" "...site script...";
      let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
      ignore proxy;
      let client = Core.Node.Cluster.add_client cluster ~name:"client" in
      Core.Node.Cluster.fetch cluster ~client
        (Core.Http.Message.request "http://www.example.edu.nakika.net/index.html")
        (fun resp -> Format.printf "%d@." resp.Core.Http.Message.status);
      Core.Node.Cluster.run cluster
    ]} *)

module Util = Nk_util
(** PRNG, heaps, statistics, EWMA, cothreads. *)

module Crypto = Nk_crypto
(** SHA-256 and HMAC-SHA256. *)

module Regex = Nk_regex
(** The backtracking regular-expression engine. *)

module Http = Nk_http
(** HTTP messages, URLs, caching semantics, wire codec. *)

module Script = Nk_script
(** NKScript: the sandboxed JavaScript-like interpreter. *)

module Analysis = Nk_analysis
(** nk_lint: admission-time static analysis of NKScript (scope,
    call shapes, cost bounds, taint). *)

module Vocab = Nk_vocab
(** Vocabularies: Request/Response, ImageTransformer, Xml, Regex,
    System, Cache, HardState, Crypto, fetchResource. *)

module Policy = Nk_policy
(** Policy objects, predicates and the decision-tree matcher. *)

module Pipeline = Nk_pipeline
(** The scripting pipeline (Fig. 4), walls, Na Kika Pages, ESI. *)

module Cache = Nk_cache
(** The expiration-based proxy cache and memo caches. *)

module Resource = Nk_resource
(** Congestion-based resource accounting and control (Fig. 6). *)

module Overlay = Nk_overlay
(** The structured overlay: ring, DHT soft state, DNS redirection. *)

module Diffusion = Nk_diffusion
(** Proactive computation diffusion (C3PO): pressure signal, neighbor
    table, offload policy, and the hash-addressed migration protocol. *)

module Replication = Nk_replication
(** Hard state: per-site stores, reliable messaging, replication. *)

module Integrity = Nk_integrity
(** Content integrity headers and probabilistic verification (§6). *)

module Sim = Nk_sim
(** The deterministic discrete-event network simulator. *)

module Faults = Nk_faults
(** Seeded, deterministic fault-injection plans (drops, partitions,
    crashes, failing origins) for chaos testing. *)

module Telemetry = Nk_telemetry
(** Metrics registry, request tracing, structured events, profiling. *)

module Node = Nk_node
(** The Na Kika node runtime, origin servers, and cluster builder. *)

module Workload = Nk_workload
(** Workload generators for every experiment in §5. *)

module Provision = Nk_provision
(** The declarative capacity-plan language: parse, statically verify
    (feasibility, ordering, units, shadowing) and lower plans to
    [Node.Config] values plus per-site fair-share and quarantine
    parameters. *)

let version = "1.0.0"
