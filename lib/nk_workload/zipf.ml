(* Zipf-distributed rank sampling in O(1) per draw via the Walker/Vose
   alias method. Planet-scale crowds are skewed: rank r is requested
   proportionally to r^-s, so a handful of URLs carry most of the
   traffic and become the hotspots the overlay must replicate.
   Construction is O(universe); sampling costs one uniform index, one
   uniform float and one comparison, so a 10^6-request crowd over a
   10^5-URL universe is cheap and, because every draw consumes exactly
   two PRNG outputs, bit-deterministic under a fixed seed. *)

type t = {
  s : float;
  universe : int;
  prob : float array; (* per-slot acceptance probability, in [0,1] *)
  alias : int array; (* slot to fall back to when the coin rejects *)
  pmf : float array; (* normalized rank probabilities, for tests *)
}

let create ~s ~universe =
  if universe <= 0 then invalid_arg "Zipf.create: universe must be positive";
  if s < 0. then invalid_arg "Zipf.create: skew must be non-negative";
  let n = universe in
  let weights = Array.init n (fun i -> (float_of_int (i + 1)) ** -.s) in
  let total = Array.fold_left ( +. ) 0. weights in
  let pmf = Array.map (fun w -> w /. total) weights in
  (* Vose's stable alias construction: scale each probability by n,
     split slots into under- and over-full, and repeatedly pair one of
     each so every slot ends up holding its own probability plus the
     overflow of exactly one alias. *)
  let scaled = Array.map (fun p -> p *. float_of_int n) pmf in
  let prob = Array.make n 1.0 in
  let alias = Array.init n (fun i -> i) in
  let small = Queue.create () and large = Queue.create () in
  Array.iteri
    (fun i p -> if p < 1.0 then Queue.add i small else Queue.add i large)
    scaled;
  while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
    let s_i = Queue.pop small and l_i = Queue.pop large in
    prob.(s_i) <- scaled.(s_i);
    alias.(s_i) <- l_i;
    scaled.(l_i) <- scaled.(l_i) +. scaled.(s_i) -. 1.0;
    if scaled.(l_i) < 1.0 then Queue.add l_i small else Queue.add l_i large
  done;
  (* Leftovers are 1.0 up to rounding; both queues drain to prob = 1. *)
  Queue.iter (fun i -> prob.(i) <- 1.0) small;
  Queue.iter (fun i -> prob.(i) <- 1.0) large;
  { s; universe = n; prob; alias; pmf }

let skew t = t.s

let universe t = t.universe

let prob t rank =
  if rank < 0 || rank >= t.universe then invalid_arg "Zipf.prob: rank out of range";
  t.pmf.(rank)

(* Alias-table internals exposed read-only so property tests can check
   the total-probability invariant without re-deriving the build. *)
let table t = (Array.copy t.prob, Array.copy t.alias)

let sample t rng =
  let i = Nk_util.Prng.int rng t.universe in
  let u = Nk_util.Prng.float rng 1.0 in
  if u < t.prob.(i) then i else t.alias.(i)

let url t rng ~site =
  let rank = sample t rng in
  Printf.sprintf "http://%s/zipf/%d.html" site rank
