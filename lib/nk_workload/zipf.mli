(** Zipf-distributed request popularity with O(1) sampling.

    Planet-scale web demand is skewed: the r-th most popular URL draws
    traffic proportional to [r^-s] (s around 0.7-1.0 in trace studies,
    and the KoordeDHT cache-workload exemplar defaults to 0.9). The
    sampler precomputes a Walker/Vose alias table, so each draw costs
    two PRNG outputs and one comparison — fast enough for 10^6-request
    crowds and bit-deterministic under a fixed seed. *)

type t

val create : s:float -> universe:int -> t
(** [create ~s ~universe] builds the alias table for ranks
    [0 .. universe-1] with skew [s] (0 = uniform). O(universe) time
    and space. Raises [Invalid_argument] when [universe <= 0] or
    [s < 0]. *)

val sample : t -> Nk_util.Prng.t -> int
(** A rank in [0 .. universe-1]; rank [r] appears with probability
    proportional to [(r+1)^-s]. Consumes exactly two PRNG outputs per
    draw, so streams are reproducible from the seed. *)

val url : t -> Nk_util.Prng.t -> site:string -> string
(** A sampled URL [http://site/zipf/<rank>.html] — the shape the
    workload drivers and scale benches request. *)

val prob : t -> int -> float
(** Exact normalized probability of a rank (for tests). *)

val skew : t -> float

val universe : t -> int

val table : t -> float array * int array
(** Copies of the alias table's (acceptance probabilities, alias
    indices) — exposed so property tests can verify the construction
    invariant: the implied per-rank mass matches {!prob}. *)
