(** Load generators.

    [closed_loop] models the paper's load-generating clients: each
    issues a request, waits for the response, optionally thinks, and
    repeats until the deadline ("accessing the same page in a tight
    loop", §5.1). [replay] issues a request schedule open-loop, used
    for the accelerated SIMM access-log replay (§5.2). *)

val closed_loop :
  Nk_node.Cluster.t ->
  client:Nk_sim.Net.host ->
  ?proxy:Nk_node.Node.t ->
  ?timeout:float ->
  ?think:float ->
  until:float ->
  make_request:(int -> Nk_http.Message.request) ->
  on_response:(int -> Nk_http.Message.request -> Nk_http.Message.response -> float -> unit) ->
  unit ->
  unit
(** [make_request i] builds the [i]-th request (0-based);
    [on_response i req resp elapsed] sees the client-perceived latency
    in simulated seconds. [timeout] passes through to
    {!Nk_node.Cluster.fetch}: with it, a lost request resolves to a
    synthesized 504 instead of stalling the loop — required when
    running under a fault plan. *)

val replay :
  Nk_node.Cluster.t ->
  client:Nk_sim.Net.host ->
  ?proxy:Nk_node.Node.t ->
  ?timeout:float ->
  events:(float * Nk_http.Message.request) list ->
  on_response:(Nk_http.Message.request -> Nk_http.Message.response -> float -> unit) ->
  unit ->
  unit
(** Each event fires at its offset from now, without waiting for
    earlier responses. *)
