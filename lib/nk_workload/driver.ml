let closed_loop cluster ~client ?proxy ?timeout ?(think = 0.0) ~until ~make_request
    ~on_response () =
  let sim = Nk_node.Cluster.sim cluster in
  let rec iteration i =
    if Nk_sim.Sim.now sim < until then begin
      let req = make_request i in
      let started = Nk_sim.Sim.now sim in
      Nk_node.Cluster.fetch cluster ~client ?proxy ?timeout req (fun resp ->
          let elapsed = Nk_sim.Sim.now sim -. started in
          on_response i req resp elapsed;
          if think > 0.0 then Nk_sim.Sim.schedule sim ~delay:think (fun () -> iteration (i + 1))
          else iteration (i + 1))
    end
  in
  iteration 0

let replay cluster ~client ?proxy ?timeout ~events ~on_response () =
  let sim = Nk_node.Cluster.sim cluster in
  List.iter
    (fun (offset, req) ->
      Nk_sim.Sim.schedule sim ~delay:offset (fun () ->
          let started = Nk_sim.Sim.now sim in
          Nk_node.Cluster.fetch cluster ~client ?proxy ?timeout req (fun resp ->
              on_response req resp (Nk_sim.Sim.now sim -. started))))
    events
