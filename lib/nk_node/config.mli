(** Node configuration, including the CPU cost model.

    The cost constants translate the work our OCaml implementation does
    into simulated CPU seconds on the reference machine (the paper's
    2.8 GHz Pentium 4). They are set from the per-operation costs the
    paper reports in §5.1 — e.g. 1.5 ms to create a scripting context,
    3 µs to reuse one, 4 µs for a cached decision tree, < 38 µs per
    predicate evaluation — so the micro-benchmarks reproduce Table 2's
    shape. *)

type costs = {
  proxy_base : float; (** per-request proxy handling (cache code path) *)
  cache_hit : float; (** retrieving a resource from the cache (1.1 ms) *)
  context_create : float; (** fresh scripting context (1.5 ms) *)
  context_reuse : float; (** reusing a pooled context (3 us) *)
  tree_cached : float; (** cached decision tree retrieval (4 us) *)
  parse_base : float; (** parsing+executing an empty script (0.08 ms) *)
  parse_per_byte : float; (** additional parse+exec cost per script byte *)
  predicate_eval : float; (** one stage's predicate evaluation (< 38 us) *)
  handler_per_fuel : float; (** event-handler CPU per interpreter fuel unit *)
  handler_invoke : float; (** fixed cost of invoking one event handler *)
  heap_cpu_per_byte : float; (** GC/paging pressure: CPU charged per byte of
                                 script heap a pipeline allocates *)
  concurrency_cpu : float; (** per-request CPU added per concurrently active
                               request (unmanaged-overload degradation) *)
  dht_per_hop : float; (** per overlay routing hop *)
}

type t = {
  enable_pipeline : bool; (** false: a plain Apache-style proxy (baseline) *)
  enable_dht : bool;
  enable_resource_controls : bool;
  cache_bytes : int;
  script_max_fuel : int;
  script_max_heap : int;
  script_ttl : float; (** freshness lifetime assumed for stage scripts
                          lacking explicit expiry *)
  negative_ttl : float; (** remember sites without [nakika.js] this long *)
  dht_ttl : float; (** cooperative-cache announcement lifetime *)
  control_interval : float; (** CONTROL period (Fig. 6) *)
  control_timeout : float; (** WAIT(TIMEOUT) before the kill decision *)
  termination_penalty : float; (** base quarantine window: seconds a
                                   terminated site's requests are refused
                                   before it may run scripts again; doubles
                                   per repeat offense up to [quarantine_max] *)
  cpu_congestion_backlog : float; (** CPU backlog (s) counting as congested *)
  memory_congestion_bytes : float; (** script heap per interval counting as congested *)
  bandwidth_congestion_bytes : float; (** body bytes per interval counting as congested *)
  local_clients : string list; (** CIDR blocks considered local (System.isLocal) *)
  integrity_key : string option; (** verify X-Content-SHA256/X-Signature on
                                     peer-served content with this publisher
                                     key (§6); [None] disables verification *)
  misbehaving : bool; (** a §6 threat model node: falsifies cached content
                          it serves to peers *)
  lint_mode : [ `Off | `Permissive | `Strict ];
      (** admission-time static analysis of fetched scripts: [`Strict]
          refuses stages with error-severity diagnostics, [`Permissive]
          (the default) only exports [script.lint.*] metrics, [`Off]
          skips analysis *)
  enable_tracing : bool; (** record a per-request span tree in the node's
                             {!Nk_telemetry.Tracer} (on by default) *)
  trace_capacity : int; (** completed traces retained in the ring buffer *)
  origin_timeout : float; (** give up on an origin fetch after this many
                              seconds and enter stale-if-error degradation *)
  peer_timeout : float; (** give up on one cooperative-cache peer fetch
                            after this long and try the next candidate *)
  request_deadline : float;
      (** per-request deadline budget minted at admission and
          propagated on every internal hop via the X-NaKika-Deadline
          header; hops run under [min (per-hop timeout) remaining] and
          receivers shed work whose budget is below their queue-delay
          estimate. 0 — the default — mints nothing (budgets stamped
          by upstream nodes are still honored) *)
  enable_hedging : bool;
      (** race a backup replica fetch against a cooperative-cache peer
          fetch that has outlived the upstream's p95 latency; first
          response wins (default false) *)
  hedge_rate : float;
      (** hedge token-bucket refill per primary fetch — the bound on
          hedge overhead as a fraction of fetch load (default 0.05) *)
  retry_budget_ratio : float;
      (** per-success refill of the per-upstream retry budgets gating
          retry paths; 0 — the default — disables budgeted retries *)
  stale_if_error : float; (** serve a stale cached copy on origin
                              failure if it expired at most this many
                              seconds ago (RFC 2616 stale-if-error);
                              0 disables degradation *)
  anti_entropy_interval : float; (** period of hard-state anti-entropy
                                     re-broadcast; 0 disables it *)
  enable_admission : bool; (** CoDel-style admission control and load
                               shedding at the front door *)
  admission_target : float; (** queueing-delay target (s); delay above it
                                for a full interval triggers shedding *)
  admission_interval : float; (** detection interval for the delay target *)
  admission_capacity : int; (** hard bound on concurrently admitted
                                requests, with per-site fair shares *)
  breaker_failures : int; (** consecutive upstream failures tripping a
                              circuit breaker open *)
  breaker_error_rate : float; (** windowed error rate that also trips it *)
  breaker_window : float; (** error-rate observation window (s) *)
  breaker_cooldown : float; (** initial open-state cooldown before the
                                half-open probe *)
  breaker_max_cooldown : float; (** backoff doubling cap *)
  quarantine_max : float; (** cap on the escalating per-site ban window
                              (the base is [termination_penalty]) *)
  quarantine_decay : float; (** seconds of good behaviour that erase one
                                quarantine strike *)
  health_report_interval : float; (** period of load reports to the
                                      redirector; 0 disables them *)
  enable_diffusion : bool; (** proactive computation diffusion (C3PO):
                               offload pipeline executions to
                               lower-pressure neighbors before admission
                               control starts shedding *)
  diffusion_low_water : float; (** pressure below which a node never
                                   offloads (proactive threshold; the
                                   signal crosses 0.5 at the admission
                                   delay target) *)
  diffusion_high_water : float; (** pressure at or above which a node
                                    refuses incoming offloads *)
  diffusion_fanout : int; (** max lower-pressure neighbors considered
                              per offload decision *)
  diffusion_offload_timeout : float; (** seconds to wait for an offload
                                         reply before falling back to
                                         local execution *)
  diffusion_fetch_timeout : float; (** receiver's bound on fetching a
                                       script from the origin after a
                                       compile-cache hash miss *)
  diffusion_staleness : float; (** neighbor pressure reports older than
                                   this are ignored; also the
                                   redirector's load-report staleness
                                   bound *)
  enable_hotspots : bool;
      (** hotspot detection + Coral-style sloppy replication on the
          cluster's shared DHT index (default false). The first
          hotspot-enabled proxy added to a cluster configures the
          shared DHT with the knobs below. *)
  hotspot_threshold : float; (** decayed request rate (req/s) at which a
                                 DHT key counts as hot and gets sloppy
                                 replicas *)
  hotspot_replicas : int; (** sloppy copies placed per hot key *)
  hotspot_ttl : float; (** seconds before a sloppy placement expires and
                           the ring reconverges *)
  hotspot_halflife : float; (** decay halflife of the per-key
                                request-rate estimator *)
  program_registry_dir : string option;
      (** directory for the persistent program registry (marshalled
          parsed scripts keyed by body SHA-256); [None] (default)
          disables it. Process-wide: the first node configured with a
          directory enables it for every node in the process. *)
  site_shares : (string * float) list;
      (** ordered [(pattern, fraction)] guaranteed admission-queue
          slices per site, lowered from a provisioning plan's
          [site "..." {share >= N%}] rules; patterns are exact hosts,
          ["*"], or ["*.suffix"], first match wins. Empty (default):
          active sites split the queue evenly. *)
  site_quarantine : (string * float * float) list;
      (** ordered [(pattern, base, max)] per-site quarantine ban-window
          overrides ([site "..." {quarantine base .. max ..}]) *)
  site_fuel : (string * int) list;
      (** ordered [(pattern, fuel)] per-site per-request fuel caps
          (each effective cap is [min script_max_fuel cap]) *)
  site_heap : (string * int) list;
      (** ordered [(pattern, bytes)] per-site script-heap caps *)
  plan_hash : string option;
      (** SHA-256 (hex) of the provisioning-plan text this config was
          lowered from; [None] for hand-built configs *)
  costs : costs;
  seed : int;
}

val default_costs : costs

val default : t

val plain_proxy : t
(** The micro-benchmarks' "Proxy" baseline: no pipeline, no DHT, no
    resource controls. *)

val validate : t -> string list
(** The config checker core: every finding is a human-readable
    description of a value that is wrong under any interpretation —
    inverted orderings ([diffusion_low_water >= diffusion_high_water],
    [breaker_cooldown > breaker_max_cooldown],
    [termination_penalty > quarantine_max]), non-positive capacities,
    negative timeouts, and per-site share tables that oversubscribe or
    round to zero slots. [[]] means the config is accepted.
    {!Node.create} refuses configs with findings, and the provisioning
    compiler ([Nk_provision]) runs the same checks over every config it
    lowers — verification and rejection share one core. *)
