type static_resource = {
  content_type : string;
  max_age : int;
  status : int;
  body : string;
  etag : string;
  modified : float; (* installation time *)
}

type dynamic_route = {
  prefix : string;
  cpu : float;
  handler : Nk_http.Message.request -> Nk_http.Message.response;
}

type t = {
  net : Nk_sim.Net.t;
  sim : Nk_sim.Sim.t;
  static_cpu : float;
  sign_key : string option;
  origin_host : Nk_sim.Net.host;
  statics : (string, static_resource) Hashtbl.t;
  mutable dynamics : dynamic_route list; (* sorted by prefix length, longest first *)
  mutable requests : int;
  mutable bytes : int;
}

let host t = t.origin_host

let freshness_headers t resource =
  let common =
    [
      ("Date", Nk_http.Http_date.format (Nk_sim.Sim.now t.sim));
      ("ETag", resource.etag);
      ("Last-Modified", Nk_http.Http_date.format resource.modified);
    ]
  in
  if resource.max_age > 0 then
    ("Cache-Control", Printf.sprintf "max-age=%d" resource.max_age) :: common
  else ("Cache-Control", "no-store") :: common

let static_response t resource =
  let headers = ("Content-Type", resource.content_type) :: freshness_headers t resource in
  let resp = Nk_http.Message.response ~status:resource.status ~headers ~body:resource.body () in
  (match t.sign_key with
   | Some key when resource.max_age > 0 ->
     (* §6: integrity requires absolute expiration; replace the relative
        max-age with a signed absolute Expires. *)
     Nk_http.Message.remove_resp_header resp "Cache-Control";
     Nk_http.Message.set_resp_header resp "Expires"
       (Nk_http.Http_date.format (resource.modified +. float_of_int resource.max_age));
     (match Nk_integrity.Integrity.sign ~key resp with
      | Ok () -> ()
      | Error _ -> ())
   | _ -> ());
  resp

(* RFC 2616 conditional GET: a matching validator yields 304 with
   refreshed freshness headers and no body. *)
let not_modified t resource =
  Nk_http.Message.response ~status:304 ~headers:(freshness_headers t resource) ()

let conditional_match (req : Nk_http.Message.request) resource =
  match Nk_http.Message.req_header req "If-None-Match" with
  | Some tag -> tag = resource.etag
  | None -> (
    match
      Option.bind (Nk_http.Message.req_header req "If-Modified-Since") Nk_http.Http_date.parse
    with
    | Some since -> resource.modified <= since
    | None -> false)

let handle t (req : Nk_http.Message.request) k =
  t.requests <- t.requests + 1;
  let path = req.Nk_http.Message.url.Nk_http.Url.path in
  let respond resp =
    t.bytes <- t.bytes + Nk_http.Message.content_length resp;
    k resp
  in
  (* The fault plan can make this origin fail outright or slow down for
     a window; a failing origin still charges its base CPU (it answers,
     just with errors). *)
  let state =
    match Nk_sim.Net.faults t.net with
    | None -> `Ok
    | Some plan ->
      Nk_faults.Plan.origin_state plan ~now:(Nk_sim.Sim.now t.sim)
        ~host:(Nk_sim.Net.host_name t.origin_host)
  in
  let slowdown = match state with `Slow f -> f | `Ok | `Fail _ -> 1.0 in
  match state with
  | `Fail status ->
    Nk_sim.Net.cpu_run t.net t.origin_host ~seconds:t.static_cpu (fun () ->
        respond (Nk_http.Message.error_response status))
  | `Ok | `Slow _ -> (
    match Hashtbl.find_opt t.statics path with
    | Some resource ->
      Nk_sim.Net.cpu_run t.net t.origin_host ~seconds:(t.static_cpu *. slowdown) (fun () ->
          if conditional_match req resource then respond (not_modified t resource)
          else respond (static_response t resource))
    | None -> (
      match
        List.find_opt (fun r -> Nk_util.Strutil.starts_with ~prefix:r.prefix path) t.dynamics
      with
      | Some route ->
        Nk_sim.Net.cpu_run t.net t.origin_host ~seconds:(route.cpu *. slowdown) (fun () ->
            respond (route.handler req))
      | None -> respond (Nk_http.Message.error_response 404)))

let create ~web ~host ?(extra_hostnames = []) ?(static_cpu = 0.0009) ?sign_key () =
  let t =
    {
      net = Nk_sim.Httpd.net web;
      sim = Nk_sim.Httpd.sim web;
      static_cpu;
      sign_key;
      origin_host = host;
      statics = Hashtbl.create 16;
      dynamics = [];
      requests = 0;
      bytes = 0;
    }
  in
  Nk_sim.Httpd.serve web ~host
    ~hostnames:(Nk_sim.Net.host_name host :: extra_hostnames)
    (fun req k -> handle t req k);
  t

let set_static t ~path ?(content_type = "text/html") ?(max_age = 300) ?(status = 200) body =
  Hashtbl.replace t.statics path
    {
      content_type;
      max_age;
      status;
      body;
      etag = Printf.sprintf "\"%s\"" (String.sub (Nk_crypto.Sha256.digest_hex body) 0 16);
      modified = Nk_sim.Sim.now t.sim;
    }

let remove t ~path = Hashtbl.remove t.statics path

let set_dynamic t ~prefix ~cpu handler =
  let dynamics = { prefix; cpu; handler } :: List.filter (fun r -> r.prefix <> prefix) t.dynamics in
  t.dynamics <-
    List.sort (fun a b -> compare (String.length b.prefix) (String.length a.prefix)) dynamics

let request_count t = t.requests

let bytes_served t = t.bytes
