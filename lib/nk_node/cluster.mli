(** Deployment builder: a simulated Na Kika network in a few calls.

    A cluster owns the simulator, the network, the simulated web, the
    overlay DHT, the messaging bus, the DNS redirector, and the
    [nakika.net] origin that hosts the administrative-control scripts
    at their well-known locations. Experiments add proxies, content
    origins, and client hosts, then drive the simulator. *)

type t

val create :
  ?seed:int ->
  ?default_latency:float ->
  ?default_bandwidth:float ->
  ?client_wall:string ->
  ?server_wall:string ->
  ?faults:Nk_faults.Plan.t ->
  unit ->
  t
(** Walls default to the permissive Admin-configuration scripts.
    [faults] installs a fault-injection plan: the network consults it
    for drops/partitions/latency spikes and host crashes, DHT reads
    skip crashed replicas, and origins consult it for fail/slow
    windows. *)

val sim : t -> Nk_sim.Sim.t
val net : t -> Nk_sim.Net.t
val web : t -> Nk_sim.Httpd.t
val dht : t -> Nk_overlay.Dht.t
val bus : t -> Nk_replication.Message_bus.t
val redirector : t -> Nk_overlay.Redirector.t
val nakika_origin : t -> Origin.t
(** Override walls at runtime with [Origin.set_static] — cached copies
    on the nodes expire per the scripts' Cache-Control, exactly how the
    paper ships policy updates (§3.2). *)

val add_proxy : t -> name:string -> ?cpu_speed:float -> ?config:Config.t -> unit -> Node.t
val proxies : t -> Node.t list

val add_origin : t -> name:string -> ?cpu_speed:float -> ?sign_key:string -> unit -> Origin.t
(** With [sign_key], the origin publishes §6 integrity headers on its
    cacheable static content. *)

val add_client : t -> name:string -> Nk_sim.Net.host
(** A host that issues requests (load generators attach here). *)

val connect : t -> Nk_sim.Net.host -> Nk_sim.Net.host -> latency:float -> bandwidth:float -> unit

val pick_proxy : t -> client:Nk_sim.Net.host -> Node.t option
(** DNS redirection: the nearest live proxy (with a small spread for
    load balancing, weighted by the headroom each node reports). *)

val fetch :
  t ->
  client:Nk_sim.Net.host ->
  ?proxy:Node.t ->
  ?timeout:float ->
  Nk_http.Message.request ->
  (Nk_http.Message.response -> unit) ->
  unit
(** Issue a request through a proxy (redirector-chosen when omitted);
    falls back to direct origin fetch when no proxies exist. With
    [timeout], the callback receives a synthesized 504 after that many
    seconds if no response arrived — under fault injection this is what
    guarantees every client gets an answer. *)

val run : ?until:float -> t -> unit
