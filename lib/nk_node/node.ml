type stage_entry = {
  stage : Nk_pipeline.Stage.t;
  site : string;
  hash : string;
      (* SHA-256 of the script source — the name an offload envelope
         ships instead of the body; "" for stages not built from a
         fetched source *)
}

(* Proactive computation diffusion (C3PO): the neighbor pressure table
   fed by the cluster's load-report gossip, plus the offload protocol
   instance (envelope codec, pending table, reply matching). *)
type diffusion = {
  neighbors : Nk_diffusion.Neighbors.t;
  offload : Nk_diffusion.Offload.t;
}

type t = {
  web : Nk_sim.Httpd.t;
  net : Nk_sim.Net.t;
  sim : Nk_sim.Sim.t;
  host : Nk_sim.Net.host;
  dht : Nk_overlay.Dht.t option;
  bus : Nk_replication.Message_bus.t option;
  cfg : Config.t;
  rng : Nk_util.Prng.t;
  cache : Nk_cache.Http_cache.t;
  stage_cache : stage_entry Nk_cache.Memo_cache.t;
  negative : unit Nk_cache.Memo_cache.t;
  accounting : Nk_resource.Accounting.t;
  mutable monitor : Nk_resource.Monitor.t option;
  throttles : (Nk_resource.Resource.t, (string, float) Hashtbl.t) Hashtbl.t;
  (* per resource: site -> reject probability *)
  quarantine : Nk_resource.Quarantine.t;
  (* terminated sites serve escalating, decaying ban windows *)
  admission : Nk_resource.Admission.t option;
  diffusion : diffusion option;
  breakers : (string, Nk_resource.Breaker.t) Hashtbl.t;
  (* per upstream ("origin:<site>" / "peer:<node>" / "offload:<node>")
     circuit breaker *)
  hedge : Nk_resource.Hedge.t option;
  (* hedged-replica-fetch governor; None = hedging disabled *)
  retry_budget : Nk_resource.Retry_budget.t option;
  (* per-upstream budgeted retries; None = pre-existing retry behavior *)
  store : Nk_replication.Store.t;
  replicas : (string, Nk_replication.Replication.node) Hashtbl.t; (* per site *)
  log_urls : (string, string) Hashtbl.t; (* site -> posting URL *)
  log_entries : (string, string list ref) Hashtbl.t;
  trace : Nk_sim.Trace.t;
  metrics : Nk_telemetry.Metrics.t; (* shared with [trace] (facade) *)
  tracer : Nk_telemetry.Tracer.t;
  events : Nk_telemetry.Events.t;
  mutable active_span : Nk_telemetry.Tracer.span option;
  (* The request span of the pipeline currently on the CPU: hosted
     scripts' own fetches (hostcall closures are per-stage, not
     per-request) parent their spans here. Best effort: a pipeline
     suspended on a sub-fetch can interleave with another request. *)
  mutable active_deadline : Nk_resource.Deadline.t option;
  (* Same discipline for the deadline budget of the request on the
     CPU, so hosted scripts' own fetches run under it too. *)
  local_cidrs : Nk_http.Ip.cidr list;
  mutable terminated : string list;
  mutable in_flight : int;
  (* congestion windows *)
  mutable mem_window : float;
  mutable bw_window : float;
  mutable window_start : float;
}

let host t = t.host

let name t = Nk_sim.Net.host_name t.host

let config t = t.cfg

let trace t = t.trace

let metrics t = t.metrics

let tracer t = t.tracer

let events t = t.events

let cache t = t.cache

let accounting t = t.accounting

let monitor t = t.monitor

let quarantine t = t.quarantine

let admission t = t.admission

let terminated_sites t = t.terminated

let stage_cache_entries t = Nk_cache.Memo_cache.size t.stage_cache

let now t = Nk_sim.Sim.now t.sim

let peer_header = "X-NK-Peer"

(* --- tracing helpers ------------------------------------------------ *)

(* Spans are threaded as [span option]: [None] (tracing disabled, or a
   path with no request context) makes every helper a no-op. *)

let in_span t ?parent name attrs f =
  match parent with
  | None -> f None
  | Some p ->
    Nk_telemetry.Tracer.with_span t.tracer ~parent:p ~attrs name (fun s -> f (Some s))

let set_attr span key value =
  match span with Some s -> Nk_telemetry.Tracer.set_attr s key value | None -> ()

let start_request_span t name (req : Nk_http.Message.request) =
  if not t.cfg.Config.enable_tracing then None
  else
    Some
      (Nk_telemetry.Tracer.start_trace t.tracer name
         ~attrs:
           [
             ("url", Nk_http.Url.to_string req.Nk_http.Message.url);
             ("site", Nk_http.Url.site req.Nk_http.Message.url);
           ])

let finish_span t span =
  match span with Some s -> Nk_telemetry.Tracer.finish t.tracer s | None -> ()

(* --- CPU charging (suspends the current cothread) ------------------ *)

let charge_cpu t seconds =
  if seconds > 0.0 then
    Nk_util.Cothread.await (fun k -> Nk_sim.Net.cpu_run t.net t.host ~seconds (fun () -> k ()))

(* CPU that the request consumes without delaying its own response
   (connection bookkeeping, filter teardown): it occupies the CPU and
   thus limits throughput, but overlaps this request's network time. *)
let charge_cpu_background t seconds =
  if seconds > 0.0 then Nk_sim.Net.cpu_run t.net t.host ~seconds (fun () -> ())

(* --- overload resilience --------------------------------------------- *)

(* One breaker per upstream, created lazily on first use and keyed
   ["origin:<site>"] / ["peer:<node>"]. *)
let breaker_for t key =
  match Hashtbl.find_opt t.breakers key with
  | Some b -> b
  | None ->
    let b =
      Nk_resource.Breaker.create ~name:key
        ~failure_threshold:t.cfg.Config.breaker_failures
        ~error_rate:t.cfg.Config.breaker_error_rate ~window:t.cfg.Config.breaker_window
        ~cooldown:t.cfg.Config.breaker_cooldown
        ~max_cooldown:t.cfg.Config.breaker_max_cooldown
        ~clock:(fun () -> now t)
        ~metrics:t.metrics ()
    in
    Hashtbl.add t.breakers key b;
    b

type health = {
  queue_delay : float;
  shed_rate : float;
  shedding : bool;
  open_breakers : string list;
  quarantined : string list;
}

let health t =
  {
    queue_delay = Nk_sim.Net.cpu_backlog t.net t.host;
    shed_rate =
      (match t.admission with Some a -> Nk_resource.Admission.shed_rate a | None -> 0.0);
    shedding =
      (match t.admission with Some a -> Nk_resource.Admission.shedding a | None -> false);
    open_breakers =
      Hashtbl.fold
        (fun key b acc ->
          if Nk_resource.Breaker.state b <> Nk_resource.Breaker.Closed then key :: acc
          else acc)
        t.breakers []
      |> List.sort compare;
    quarantined = List.map fst (Nk_resource.Quarantine.active t.quarantine);
  }

(* Liveness epoch under fault injection: bumped by every crash/restart
   of this host. Offload envelopes and neighbor observations are
   guarded by it, so nothing from a pre-crash epoch can act. *)
let incarnation t =
  match Nk_sim.Net.faults t.net with
  | Some plan -> Nk_faults.Plan.incarnation plan ~now:(now t) (name t)
  | None -> 0

(* The scalar load signal diffusion decisions run on: admission queue
   delay (CPU backlog), shed rate, and admission-queue occupancy,
   combined so that any one saturating input saturates the whole
   signal. Crosses 0.5 exactly at the admission delay target — the
   diffusion low water sits below that, which is what makes diffusion
   proactive rather than a shedding echo. *)
let pressure t =
  let shed_rate, queue_frac =
    match t.admission with
    | Some adm ->
      ( Nk_resource.Admission.shed_rate adm,
        float_of_int (Nk_resource.Admission.queue_length adm)
        /. float_of_int (max 1 t.cfg.Config.admission_capacity) )
    | None -> (0.0, 0.0)
  in
  Nk_diffusion.Pressure.compute ~target:t.cfg.Config.admission_target
    ~queue_delay:(Nk_sim.Net.cpu_backlog t.net t.host)
    ~shed_rate ~queue_frac

let observe_neighbor t ~name:peer ~pressure ~incarnation ~distance =
  match t.diffusion with
  | None -> ()
  | Some d ->
    if peer <> name t then
      Nk_diffusion.Neighbors.observe d.neighbors ~name:peer ~incarnation ~pressure
        ~distance ~now:(now t)

let neighbor_pressures t =
  match t.diffusion with
  | None -> []
  | Some d ->
    List.map
      (fun (i : Nk_diffusion.Neighbors.info) -> (i.Nk_diffusion.Neighbors.name, i.pressure))
      (Nk_diffusion.Neighbors.all d.neighbors)

let retry_after_response ?(status = 503) seconds =
  let resp = Nk_http.Message.error_response status in
  Nk_http.Message.set_resp_header resp "Retry-After"
    (string_of_int (max 1 (int_of_float (Float.ceil seconds))));
  resp

(* --- tail tolerance: deadline budgets ------------------------------- *)

(* Every internal hop runs under the smaller of its per-hop timeout and
   the request's remaining budget: waiting longer than the client will
   is capacity spent on an answer nobody reads. *)
let hop_timeout t deadline timeout =
  match deadline with
  | None -> timeout
  | Some d -> Nk_resource.Deadline.clamp d ~now:(now t) timeout

(* An expired (or unservable-in-time) budget: count where it died and
   answer an immediate machine-readable 504 — the only useful thing
   left to do with the request is to say so quickly. *)
let deadline_expired_response t ~at =
  Nk_telemetry.Metrics.incr t.metrics ~labels:[ ("at", at) ] "deadline.expired";
  Nk_sim.Trace.incr t.trace "deadline-expired";
  Nk_resource.Deadline.expired_response ~reason:("deadline-" ^ at) ()

(* --- the content handler: cache + DHT + origin --------------------- *)

let cache_key (req : Nk_http.Message.request) =
  Nk_http.Method_.to_string req.Nk_http.Message.meth
  ^ " "
  ^ Nk_http.Url.to_string req.Nk_http.Message.url

(* Fetch with a deadline, resolving to [None] on timeout. Under fault
   injection the response may never arrive (dropped on the wire, server
   crashed); the timer is a daemon event so pending timeouts never keep
   the simulation alive, and [Cothread.await] ignores whichever of the
   two resumes loses the race. *)
let await_fetch_opt t ~via ~timeout req =
  Nk_util.Cothread.await (fun k ->
      Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:timeout (fun () -> k None);
      let deliver resp = k (Some resp) in
      match via with
      | Some host -> Nk_sim.Httpd.fetch_via t.web ~from:t.host ~via:host req deliver
      | None -> Nk_sim.Httpd.fetch t.web ~from:t.host req deliver)

let insert_if_cacheable t req resp =
  if Nk_http.Message.cacheable req resp then begin
    let expiry = Nk_http.Message.response_expiry ~now:(now t) resp in
    Nk_cache.Http_cache.insert t.cache ~now:(now t) ~key:(cache_key req) ~expiry resp;
    match (expiry, t.dht) with
    | Some expiry, Some dht when t.cfg.Config.enable_dht ->
      let ttl = Float.min t.cfg.Config.dht_ttl (expiry -. now t) in
      if ttl > 0.0 then
        ignore
          (Nk_overlay.Dht.put dht ~now:(now t) ~from:(name t) ~key:(cache_key req)
             ~value:(name t) ~ttl)
    | _ -> ()
  end

(* --- tail tolerance: hedged replica fetches -------------------------- *)

(* The hedge delay for peer fetches: the upstream's observed p95 (the
   [fetch.latency] histogram this node records while hedging is
   enabled), bounded by the hop timeout; a quarter of the timeout
   stands in until the histogram has seen enough samples. *)
let hedge_delay t ~timeout =
  Float.min timeout
    (Nk_resource.Hedge.delay
       ?histogram:
         (Nk_telemetry.Metrics.histogram t.metrics
            ~labels:[ ("upstream", "peer") ]
            "fetch.latency")
       ~fallback:(timeout /. 4.0) ())

(* Race a cooperative-cache peer fetch against one hedged backup
   replica. The primary is fetched immediately; if it has not answered
   after [delay] and the governor grants a token, the same request goes
   to [backup] and whichever response arrives first wins — the loser's
   callback is discarded by the [resolved] latch here, and across
   crashes by the net layer's incarnation guard (a response from a
   pre-crash epoch never reaches us at all). Returns the winning
   response ([None] when nothing answered inside [timeout]) plus the
   name of the peer that served it.

   Breaker accounting: the caller accounts the *winning* arm from the
   verified outcome, exactly as on the unhedged path. A losing primary
   is accounted here — success/failure by status when its response
   straggles in, failure at [timeout] when it never answers — so a
   hedge win can neither mask a dead peer nor strand a half-open probe
   slot. A losing backup was never acquired through its breaker and is
   left alone; its late response only counts [hedge.cancelled]. *)
let hedged_peer_fetch t ~hedge ~primary:(peer, peer_host) ~backup ~delay ~timeout
    ~deadline req =
  Nk_util.Cothread.await (fun resume ->
      let resolved = ref false in
      let primary_done = ref false in
      let winner = ref "" in
      let finish server resp =
        if not !resolved then begin
          resolved := true;
          winner := server;
          resume (resp, server)
        end
      in
      let settle_primary outcome =
        if not !primary_done then begin
          primary_done := true;
          if !resolved && !winner <> peer then begin
            let b = breaker_for t ("peer:" ^ peer) in
            match outcome with
            | `Ok -> Nk_resource.Breaker.success b
            | `Failed -> Nk_resource.Breaker.failure b
          end
        end
      in
      Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:timeout (fun () ->
          settle_primary `Failed;
          finish peer None);
      let started = now t in
      Nk_sim.Httpd.fetch_via t.web ~from:t.host ~via:peer_host req (fun r ->
          Nk_telemetry.Metrics.observe t.metrics
            ~labels:[ ("upstream", "peer") ]
            "fetch.latency"
            (now t -. started);
          settle_primary (if r.Nk_http.Message.status >= 500 then `Failed else `Ok);
          finish peer (Some r));
      match backup with
      | None -> ()
      | Some (backup_name, backup_host) ->
        if delay < timeout then
          Nk_sim.Sim.schedule t.sim ~daemon:true ~delay (fun () ->
              if (not !resolved) && Nk_resource.Hedge.try_hedge hedge then begin
                let breq = Nk_http.Message.copy_request req in
                (match deadline with
                 | Some d -> Nk_resource.Deadline.stamp d ~now:(now t) breq
                 | None -> ());
                Nk_sim.Httpd.fetch_via t.web ~from:t.host ~via:backup_host breq
                  (fun r ->
                    if !resolved then Nk_resource.Hedge.cancelled hedge
                    else Nk_resource.Hedge.won hedge;
                    finish backup_name (Some r))
              end))

(* Fetch content for [req]: proxy cache, then cooperative cache, then
   origin. Runs inside a cothread. [span] is the request span child
   spans attach to. [deadline] is the request's remaining budget: every
   hop below runs under [min per-hop-timeout remaining]. *)
let content_fetch t ?(allow_peers = true) ?span ?deadline
    (req : Nk_http.Message.request) =
  let key = cache_key req in
  let cached =
    in_span t ?parent:span "cache-lookup" [] (fun sp ->
        let hit = Nk_cache.Http_cache.lookup t.cache ~now:(now t) ~key in
        set_attr sp "hit" (string_of_bool (hit <> None));
        (match hit with
         | Some _ -> charge_cpu t t.cfg.Config.costs.Config.cache_hit
         | None -> ());
        hit)
  in
  match cached with
  | Some resp -> resp
  | None -> (
    let from_origin () =
      match deadline with
      | Some d when Nk_resource.Deadline.expired d ~now:(now t) ->
        deadline_expired_response t ~at:"origin"
      | _ ->
      in_span t ?parent:span "origin-fetch" [] (fun osp ->
          (* A stale copy with a validator turns the refetch into a
             conditional GET; a 304 refreshes the entry without moving the
             body again (RFC 2616 revalidation under the web's
             expiration-based consistency model). *)
          let stale = Nk_cache.Http_cache.lookup_stale t.cache ~key in
          let validator =
            match stale with
            | Some old -> (
              match Nk_http.Message.resp_header old "ETag" with
              | Some etag -> Some (("If-None-Match", etag), old)
              | None -> (
                match Nk_http.Message.resp_header old "Last-Modified" with
                | Some lm -> Some (("If-Modified-Since", lm), old)
                | None -> None))
            | None -> None
          in
          let req, validator =
            match validator with
            | Some ((name, value), old) ->
              let creq = Nk_http.Message.copy_request req in
              Nk_http.Message.set_req_header creq name value;
              (creq, Some old)
            | None -> (req, None)
          in
          let do_fetch sp =
            let resp =
              await_fetch_opt t ~via:None
                ~timeout:(hop_timeout t deadline t.cfg.Config.origin_timeout)
                req
            in
            Nk_sim.Trace.incr t.trace "origin-fetches";
            set_attr sp "status"
              (match resp with
               | Some r -> string_of_int r.Nk_http.Message.status
               | None -> "timeout");
            resp
          in
          (* A tripped breaker short-circuits the fetch entirely: the
             dead origin costs one probe per cooldown, not one
             [origin_timeout] per request. The short-circuited request
             still degrades to a stale copy when one exists. *)
          let origin_key = "origin:" ^ Nk_http.Url.site req.Nk_http.Message.url in
          let breaker = breaker_for t origin_key in
          let resp, short_circuit =
            match Nk_resource.Breaker.acquire breaker with
            | `Reject retry ->
              Nk_sim.Trace.incr t.trace "breaker-short-circuits";
              set_attr osp "breaker" "open";
              (None, Some retry)
            | `Proceed ->
              let attempt () =
                match validator with
                | None -> do_fetch osp
                | Some _ ->
                  in_span t ?parent:osp "revalidation" [] (fun rsp ->
                      let resp = do_fetch rsp in
                      set_attr rsp "not-modified"
                        (string_of_bool
                           (match resp with
                            | Some r -> r.Nk_http.Message.status = 304
                            | None -> false));
                      resp)
              in
              let resp = attempt () in
              (* One budgeted retry: a transient origin failure (timeout,
                 5xx) gets a second attempt only while the upstream's
                 retry budget — refilled by its own successes — grants a
                 token and the request's deadline still has time left. *)
              let failed =
                match resp with
                | None -> true
                | Some r -> r.Nk_http.Message.status >= 500
              in
              let resp =
                match t.retry_budget with
                | Some rb
                  when failed
                       && (match deadline with
                           | Some d -> not (Nk_resource.Deadline.expired d ~now:(now t))
                           | None -> true)
                       && Nk_resource.Retry_budget.try_retry rb ~upstream:origin_key ->
                  Nk_telemetry.Metrics.incr t.metrics
                    ~labels:[ ("upstream", origin_key) ]
                    "retry.attempts";
                  set_attr osp "retried" "true";
                  attempt ()
                | _ -> resp
              in
              (match resp with
               | None -> Nk_resource.Breaker.failure breaker
               | Some r when r.Nk_http.Message.status >= 500 ->
                 Nk_resource.Breaker.failure breaker
               | Some _ ->
                 Nk_resource.Breaker.success breaker;
                 (match t.retry_budget with
                  | Some rb -> Nk_resource.Retry_budget.success rb ~upstream:origin_key
                  | None -> ()));
              (resp, None)
          in
          (* Stale-if-error (RFC 2616 §13.1.5 spirit): when the origin
             times out or answers with a server error, a cached copy
             that expired no more than [stale_if_error] seconds ago is
             better than failing the client. The [X-NaKika-Stale]
             header carries the staleness in seconds so clients and
             tests can tell degraded responses apart. *)
          let degrade () =
            if t.cfg.Config.stale_if_error <= 0.0 then None
            else
              match Nk_cache.Http_cache.lookup_stale_entry t.cache ~key with
              | Some (old, expiry)
                when Nk_http.Status.is_success old.Nk_http.Message.status
                     && now t -. expiry <= t.cfg.Config.stale_if_error ->
                let age = Float.max 0.0 (now t -. expiry) in
                Nk_http.Message.set_resp_header old "X-NaKika-Stale"
                  (string_of_int (int_of_float age));
                Nk_telemetry.Metrics.incr t.metrics "cache.stale_served";
                Nk_sim.Trace.incr t.trace "stale-served";
                set_attr osp "stale" "true";
                Some old
              | _ -> None
          in
          match resp with
          | None -> (
            match degrade () with
            | Some old -> old
            | None -> (
              match short_circuit with
              (* No stale fallback and an open breaker: fail fast with a
                 retry hint instead of pretending we waited. *)
              | Some retry -> retry_after_response retry
              | None -> Nk_http.Message.error_response 504))
          | Some resp when resp.Nk_http.Message.status >= 500 -> (
            match degrade () with
            | Some old -> old
            | None -> resp)
          | Some resp -> (
            match (resp.Nk_http.Message.status, validator) with
            | 304, Some old ->
              Nk_sim.Trace.incr t.trace "revalidations";
              (match Nk_http.Message.response_expiry ~now:(now t) resp with
               | Some expiry -> Nk_cache.Http_cache.refresh t.cache ~key ~expiry
               | None -> Nk_cache.Http_cache.remove t.cache ~key);
              old
            | _ ->
              insert_if_cacheable t req resp;
              resp))
    in
    match t.dht with
    | Some dht when t.cfg.Config.enable_dht && allow_peers ->
      let result =
        in_span t ?parent:span "dht-lookup" [] (fun sp ->
            let result = Nk_overlay.Dht.get dht ~now:(now t) ~from:(name t) ~key in
            charge_cpu t
              (float_of_int (max 1 result.Nk_overlay.Dht.hops)
              *. t.cfg.Config.costs.Config.dht_per_hop);
            set_attr sp "hops" (string_of_int result.Nk_overlay.Dht.hops);
            set_attr sp "values" (string_of_int (List.length result.Nk_overlay.Dht.values));
            result)
      in
      let peers =
        List.filter (fun peer -> peer <> name t) result.Nk_overlay.Dht.values
      in
      (* Try up to two announced peers, each under [peer_timeout] (and
         the request's remaining budget); a peer that times out, fails,
         or serves tampered content falls through to the next candidate
         and finally to the origin. *)
      let rec try_peers budget candidates =
        match candidates with
        | _
          when (match deadline with
                | Some d -> Nk_resource.Deadline.expired d ~now:(now t)
                | None -> false) ->
          (* No budget left for a peer hop; [from_origin] answers the
             machine-readable 504. *)
          from_origin ()
        | [] -> from_origin ()
        | _ when budget = 0 -> from_origin ()
        | peer :: rest -> (
          let peer_breaker = breaker_for t ("peer:" ^ peer) in
          match Nk_resource.Breaker.acquire peer_breaker with
          | `Reject _ ->
            (* A peer behind an open breaker is skipped outright — and
               without consuming the budget, so one dead peer doesn't
               halve our cooperative-cache reach. *)
            Nk_sim.Trace.incr t.trace "breaker-short-circuits";
            try_peers budget rest
          | `Proceed -> (
          match Nk_sim.Httpd.resolve t.web peer with
          | None ->
            (* Release the (possibly half-open probe) slot we claimed. *)
            Nk_resource.Breaker.failure peer_breaker;
            from_origin ()
          | Some peer_host ->
            Nk_sim.Trace.incr t.trace "dht-hits";
            let peer_resp, served_by =
              in_span t ?parent:span "peer-fetch" [ ("peer", peer) ] (fun psp ->
                  let peer_req = Nk_http.Message.copy_request req in
                  Nk_http.Message.set_req_header peer_req peer_header "1";
                  (match deadline with
                   | Some d -> Nk_resource.Deadline.stamp d ~now:(now t) peer_req
                   | None -> ());
                  let timeout = hop_timeout t deadline t.cfg.Config.peer_timeout in
                  let raw, served_by =
                    match t.hedge with
                    | None ->
                      (await_fetch_opt t ~via:(Some peer_host) ~timeout peer_req, peer)
                    | Some hedge ->
                      (* The backup is the next live replica: the
                         remaining announced holders first, then the
                         key's ring replica set ([Ring.successors]). *)
                      Nk_resource.Hedge.note_primary hedge;
                      let backup =
                        rest @ Nk_overlay.Dht.replica_names dht ~key
                        |> List.find_opt (fun c -> c <> peer && c <> name t)
                        |> fun c ->
                        Option.bind c (fun c ->
                            Option.map
                              (fun h -> (c, h))
                              (Nk_sim.Httpd.resolve t.web c))
                      in
                      let delay = hedge_delay t ~timeout in
                      set_attr psp "hedge_delay" (Printf.sprintf "%.4f" delay);
                      let resp, server =
                        hedged_peer_fetch t ~hedge ~primary:(peer, peer_host)
                          ~backup ~delay ~timeout ~deadline peer_req
                      in
                      if server <> peer then set_attr psp "hedge_winner" server;
                      (resp, server)
                  in
                  match raw with
                  | None ->
                    set_attr psp "timeout" "true";
                    (None, served_by)
                  | Some resp ->
                    let verified =
                      match t.cfg.Config.integrity_key with
                      | None -> true
                      | Some key ->
                        (* Peer-served content comes from an untrusted node:
                           check the §6 integrity headers and fall back to the
                           origin on any violation. Content that never carried
                           integrity headers is unprotected (a producer opt-in);
                           stripping attacks are the probabilistic verifier's
                           job, not this check's. *)
                        in_span t ?parent:psp "integrity-verify" [] (fun vsp ->
                            match Nk_integrity.Integrity.verify ~key ~now:(now t) resp with
                            | Ok () ->
                              set_attr vsp "result" "ok";
                              true
                            | Error Nk_integrity.Integrity.Missing_headers ->
                              Nk_sim.Trace.incr t.trace "integrity-unverified";
                              set_attr vsp "result" "unverified";
                              true
                            | Error violation ->
                              Nk_sim.Trace.incr t.trace "integrity-violations";
                              set_attr vsp "result" "violation";
                              Logs.warn (fun m ->
                                  m "[%s] integrity violation from %s: %s" (name t) peer
                                    (Nk_integrity.Integrity.violation_to_string violation));
                              false)
                    in
                    set_attr psp "verified" (string_of_bool verified);
                    if verified && Nk_http.Status.is_success resp.Nk_http.Message.status
                    then (Some resp, served_by)
                    else (None, served_by))
            in
            (* Accounting goes to the arm that actually served (the
               hedged backup may have won); on the unhedged path
               [served_by = peer] and this is the pre-existing
               behavior, breaker object included. *)
            (match peer_resp with
             | Some resp ->
               Nk_resource.Breaker.success (breaker_for t ("peer:" ^ served_by));
               (match t.retry_budget with
                | Some rb -> Nk_resource.Retry_budget.success rb ~upstream:"peer"
                | None -> ());
               Nk_sim.Trace.incr t.trace "peer-fetches";
               insert_if_cacheable t req resp;
               resp
             | None ->
               Nk_resource.Breaker.failure (breaker_for t ("peer:" ^ served_by));
               (* Trying the next candidate is a retry of the upstream
                  class: under a retry budget it must find a token, or
                  the chain collapses straight to the origin. *)
               (match (t.retry_budget, rest) with
                | Some rb, _ :: _ when budget > 1 ->
                  if Nk_resource.Retry_budget.try_retry rb ~upstream:"peer" then
                    try_peers (budget - 1) rest
                  else from_origin ()
                | _ -> try_peers (budget - 1) rest))))
      in
      try_peers 2 peers
    | _ -> from_origin ())

(* --- host capabilities handed to vocabularies ----------------------- *)

let replica t site =
  match (Hashtbl.find_opt t.replicas site, t.bus) with
  | Some r, _ -> Some r
  | None, Some bus ->
    let r =
      Nk_replication.Replication.attach ~bus ~name:(name t) ~host:t.host ~store:t.store ~site
        Nk_replication.Replication.Optimistic
    in
    (* Re-converge after partitions that outlast the bus's retry budget:
       periodically re-broadcast everything this replica knows. *)
    if t.cfg.Config.anti_entropy_interval > 0.0 then
      Nk_replication.Replication.start_anti_entropy r
        ~interval:t.cfg.Config.anti_entropy_interval ();
    Hashtbl.add t.replicas site r;
    Some r
  | None, None -> None

(* Emission control (§3.2): hosted scripts' own web accesses pass the
   server-side administrative wall before leaving the node. The wall
   stage is loaded through the regular cached path; [load_wall] is tied
   in after stage loading is defined. *)
let emission_check t (req : Nk_http.Message.request) ~load_wall =
  match load_wall t with
  | None -> None
  | Some stage -> (
    match Nk_pipeline.Stage.select stage req with
    | None -> None
    | Some policy -> (
      match policy.Nk_policy.Policy.on_request with
      | None -> None
      | Some handler -> (
        match
          Nk_pipeline.Pipeline.run_handler stage ~this_request:req ~response:None handler
        with
        | Ok (Some denial) ->
          Nk_sim.Trace.incr t.trace "emission-denials";
          Some denial
        | Ok None -> None
        | Error _ -> Some (Nk_http.Message.error_response 500))))

let hostcall t ~site ~load_wall : Nk_vocab.Hostcall.t =
  let vocab_key key = Printf.sprintf "vocab:%s:%s" site key in
  {
    Nk_vocab.Hostcall.now = (fun () -> now t);
    site;
    fetch =
      (fun req ->
        (* Hostcall closures are per-stage, not per-request: parent the
           script's own fetch at whatever request span currently owns
           the CPU (best effort under cothread interleaving). *)
        let resp =
          in_span t ?parent:t.active_span "script-fetch" [ ("site", site) ] (fun sp ->
              match emission_check t req ~load_wall with
              | Some denial ->
                set_attr sp "denied" "true";
                denial
              | None -> content_fetch t ?span:sp ?deadline:t.active_deadline req)
        in
        let bytes = float_of_int (Nk_http.Message.content_length resp) in
        Nk_resource.Accounting.charge t.accounting ~site Nk_resource.Resource.Bandwidth bytes;
        t.bw_window <- t.bw_window +. bytes;
        resp);
    cache_lookup =
      (fun key -> Nk_cache.Http_cache.lookup t.cache ~now:(now t) ~key:(vocab_key key));
    cache_store =
      (fun ~key ~ttl resp ->
        Nk_cache.Http_cache.insert t.cache ~now:(now t) ~key:(vocab_key key)
          ~expiry:(Some (now t +. ttl)) resp);
    log = (fun msg -> Logs.debug (fun m -> m "[%s/%s] %s" (name t) site msg));
    is_local =
      (fun ip_str ->
        match Nk_http.Ip.of_string ip_str with
        | Error _ -> false
        | Ok ip -> List.exists (fun cidr -> Nk_http.Ip.cidr_contains cidr ip) t.local_cidrs);
    congestion =
      (fun resource_name ->
        let resource =
          List.find_opt
            (fun r -> Nk_resource.Resource.to_string r = resource_name)
            Nk_resource.Resource.all
        in
        match resource with
        | Some r -> Nk_resource.Accounting.usage t.accounting ~site r
        | None -> 0.0);
    hard_state_get =
      (fun ~key ->
        match replica t site with
        | Some r -> Nk_replication.Replication.read r ~key
        | None -> Nk_replication.Store.get t.store ~site ~key);
    hard_state_put =
      (fun ~key value ->
        match replica t site with
        | Some r -> Nk_replication.Replication.update r ~key ~value
        | None -> Nk_replication.Store.put t.store ~site ~key value);
    hard_state_delete =
      (fun ~key ->
        match replica t site with
        | Some r -> Nk_replication.Replication.delete r ~key
        | None -> Nk_replication.Store.delete t.store ~site ~key);
    hard_state_keys =
      (fun ~prefix ->
        match replica t site with
        | Some r -> Nk_replication.Replication.keys r ~prefix
        | None -> Nk_replication.Store.keys t.store ~site ~prefix);
    publish =
      (fun ~topic payload ->
        match t.bus with
        | Some bus -> Nk_replication.Message_bus.publish bus ~from:(name t) ~topic ~payload
        | None -> ());
    enable_access_log = (fun ~url -> Hashtbl.replace t.log_urls site url);
  }

(* --- stage loading: fetch, evaluate, cache --------------------------- *)

let site_of_stage_url url =
  match Nk_http.Url.parse url with
  | Ok u -> Nk_http.Url.site u
  | Error _ -> "unknown"

(* Per-site sandbox caps lowered from a provisioning plan
   ([site "..." { fuel <= N; heap <= N }]): the effective limit is the
   global cap tightened by the first matching site rule. *)
let site_limit overrides ~site ~global =
  match
    List.find_map
      (fun (pattern, v) -> if Nk_resource.Shares.matches ~pattern site then Some v else None)
      overrides
  with
  | Some v -> min global v
  | None -> global

let site_max_fuel t ~site =
  site_limit t.cfg.Config.site_fuel ~site ~global:t.cfg.Config.script_max_fuel

let site_max_heap t ~site =
  site_limit t.cfg.Config.site_heap ~site ~global:t.cfg.Config.script_max_heap

let rec build_stage t ?span ~url ~source () =
  let site = site_of_stage_url url in
  (* Join the site's replication group up front so updates published
     before this node's first hard-state access still arrive. *)
  ignore (replica t site);
  (* The administrative stages themselves are exempt from emission
     control (they *are* the control, and routing them through it would
     recurse). *)
  let load_wall t =
    if url = Nk_pipeline.Pipeline.well_known_server_wall then None
    else load_stage t Nk_pipeline.Pipeline.well_known_server_wall
  in
  let host = hostcall t ~site ~load_wall in
  (* Whether this script body was already compiled (by this or any other
     simulated node in the process) or cost a fresh parse+compile. *)
  let on_compile_cache outcome =
    let labels = [ ("site", site) ] in
    match outcome with
    | `Hit -> Nk_telemetry.Metrics.incr t.metrics ~labels "script.compile_cache.hits"
    | `Miss -> Nk_telemetry.Metrics.incr t.metrics ~labels "script.compile_cache.misses"
  in
  (* Admission-time lint: analyze the fetched source (report cached by
     SHA-256 process-wide), export the diagnostic counts, and under
     strict mode refuse the stage before any script code runs.  A
     refusal flows into the caller's negative cache like any other
     script error. *)
  let lint_gate =
    match t.cfg.Config.lint_mode with
    | `Off -> Ok ()
    | (`Permissive | `Strict) as mode ->
      in_span t ?parent:span "script.lint" [ ("stage", url) ] (fun sp ->
          let report = Nk_analysis.Analysis.analyze_source source in
          let errors = Nk_analysis.Analysis.errors report in
          let warnings = Nk_analysis.Analysis.warnings report in
          set_attr sp "errors" (string_of_int errors);
          set_attr sp "warnings" (string_of_int warnings);
          let labels = [ ("site", site) ] in
          if errors > 0 then
            Nk_telemetry.Metrics.incr t.metrics ~labels ~by:errors
              "script.lint.errors";
          if warnings > 0 then
            Nk_telemetry.Metrics.incr t.metrics ~labels ~by:warnings
              "script.lint.warnings";
          if mode = `Strict && errors > 0 then begin
            set_attr sp "rejected" "true";
            let first =
              List.find
                (fun (d : Nk_analysis.Diagnostic.t) ->
                  d.Nk_analysis.Diagnostic.severity = Nk_analysis.Diagnostic.Error)
                report.Nk_analysis.Analysis.diagnostics
            in
            Error
              (Printf.sprintf "%s: rejected by lint: %d error(s), first: %s" url
                 errors
                 (Nk_analysis.Diagnostic.to_string first))
          end
          else Ok ())
  in
  match
    match lint_gate with
    | Error _ as e -> e
    | Ok () ->
      in_span t ?parent:span "script.compile" [ ("stage", url) ] (fun _ ->
          Nk_pipeline.Stage.of_script ~url ~host ~max_fuel:(site_max_fuel t ~site)
            ~max_heap_bytes:(site_max_heap t ~site) ~seed:t.cfg.Config.seed
            ~on_compile_cache ~lint:`Off ~source ())
  with
  | Ok stage ->
    (* Context reuse reports the previous pipeline's consumption: fold
       it into the per-site fuel/heap histograms. *)
    Nk_script.Interp.set_usage_observer (Nk_pipeline.Stage.context stage)
      (fun ~fuel ~heap ->
        let labels = [ ("site", site) ] in
        if fuel > 0 then
          Nk_telemetry.Metrics.observe t.metrics ~labels "script.fuel" (float_of_int fuel);
        if heap > 0 then
          Nk_telemetry.Metrics.observe t.metrics ~labels "script.heap" (float_of_int heap));
    Ok stage
  | Error _ as e -> e

and load_stage t ?span url =
  match Nk_cache.Memo_cache.find t.stage_cache ~now:(now t) url with
  | Some entry ->
    charge_cpu t
      (t.cfg.Config.costs.Config.tree_cached +. t.cfg.Config.costs.Config.context_reuse);
    (* Context reuse resets the usage counters (§4); like the prototype,
       a pipeline suspended mid-request shares the stage context, so the
       reset is best effort. *)
    Nk_script.Interp.reset_usage (Nk_pipeline.Stage.context entry.stage);
    Some entry.stage
  | None -> (
    match Nk_cache.Memo_cache.find t.negative ~now:(now t) url with
    | Some () -> None
    | None -> (
      match Nk_http.Url.parse url with
      | Error _ -> None
      | Ok _ ->
        in_span t ?parent:span "load-stage" [ ("stage", url) ] (fun sp ->
        let req = Nk_http.Message.request url in
        (* Deliberately not under the request's deadline budget: a tight
           budget expiring a script fetch would negative-cache the site
           for [negative_ttl], degrading every later request. *)
        let resp = content_fetch t ?span:sp req in
        if not (Nk_http.Status.is_success resp.Nk_http.Message.status) then begin
          (* Remember that this site publishes no script (§4). *)
          Nk_cache.Memo_cache.put t.negative ~key:url
            ~expiry:(now t +. t.cfg.Config.negative_ttl) ();
          None
        end
        else begin
          let source = Nk_http.Body.to_string resp.Nk_http.Message.resp_body in
          let costs = t.cfg.Config.costs in
          charge_cpu t
            (costs.Config.context_create +. costs.Config.parse_base
            +. (costs.Config.parse_per_byte *. float_of_int (String.length source)));
          match build_stage t ?span:sp ~url ~source () with
          | Ok stage ->
            let expiry =
              match Nk_http.Message.response_expiry ~now:(now t) resp with
              | Some e -> e
              | None -> now t +. t.cfg.Config.script_ttl
            in
            Nk_cache.Memo_cache.put t.stage_cache ~key:url ~expiry
              {
                stage;
                site = site_of_stage_url url;
                hash = Nk_crypto.Sha256.digest source;
              };
            Some stage
          | Error msg ->
            Nk_sim.Trace.incr t.trace "script-errors";
            Logs.warn (fun m -> m "[%s] stage %s failed: %s" (name t) url msg);
            Nk_cache.Memo_cache.put t.negative ~key:url
              ~expiry:(now t +. t.cfg.Config.negative_ttl) ();
            None
        end)))

let warm_stage t ~url ~site ~source =
  match build_stage t ~url ~source () with
  | Ok stage ->
    Nk_cache.Memo_cache.put t.stage_cache ~key:url ~expiry:(now t +. t.cfg.Config.script_ttl)
      { stage; site; hash = Nk_crypto.Sha256.digest source }
  | Error msg -> invalid_arg (Printf.sprintf "warm_stage %s: %s" url msg)

(* Install a stage straight from a compiled program (the diffusion
   receiver's path: the offload envelope named the script by SHA-256 and
   the compile cache still holds it — no source, no parse, no lint; the
   node that compiled it linted it). *)
let install_stage_from_program t ~url ~site ~hash program =
  ignore (replica t site);
  let load_wall t =
    if url = Nk_pipeline.Pipeline.well_known_server_wall then None
    else load_stage t Nk_pipeline.Pipeline.well_known_server_wall
  in
  let host = hostcall t ~site ~load_wall in
  charge_cpu t t.cfg.Config.costs.Config.context_create;
  match
    Nk_pipeline.Stage.of_program ~url ~host ~max_fuel:(site_max_fuel t ~site)
      ~max_heap_bytes:(site_max_heap t ~site) ~seed:t.cfg.Config.seed program
  with
  | Ok stage ->
    Nk_script.Interp.set_usage_observer (Nk_pipeline.Stage.context stage)
      (fun ~fuel ~heap ->
        let labels = [ ("site", site) ] in
        if fuel > 0 then
          Nk_telemetry.Metrics.observe t.metrics ~labels "script.fuel" (float_of_int fuel);
        if heap > 0 then
          Nk_telemetry.Metrics.observe t.metrics ~labels "script.heap" (float_of_int heap));
    Nk_cache.Memo_cache.put t.stage_cache ~key:url
      ~expiry:(now t +. t.cfg.Config.script_ttl)
      { stage; site; hash };
    true
  | Error msg ->
    Nk_sim.Trace.incr t.trace "script-errors";
    Logs.warn (fun m -> m "[%s] offloaded stage %s failed: %s" (name t) url msg);
    Nk_cache.Memo_cache.put t.negative ~key:url
      ~expiry:(now t +. t.cfg.Config.negative_ttl) ();
    false

let invalidate_stage t ~url = Nk_cache.Memo_cache.remove t.stage_cache url

(* --- request processing ---------------------------------------------- *)

let throttle_fraction t site =
  Hashtbl.fold
    (fun _resource table acc ->
      match Hashtbl.find_opt table site with Some f -> Float.max acc f | None -> acc)
    t.throttles 0.0

let resource_throttles t resource =
  match Hashtbl.find_opt t.throttles resource with
  | Some table -> table
  | None ->
    let table = Hashtbl.create 8 in
    Hashtbl.add t.throttles resource table;
    table

let access_log t ~site ~(req : Nk_http.Message.request) ~(resp : Nk_http.Message.response) =
  if Hashtbl.mem t.log_urls site then begin
    let entry =
      Printf.sprintf "%.3f %s %s %d" (now t)
        (Nk_http.Ip.to_string req.Nk_http.Message.client.Nk_http.Ip.ip)
        (Nk_http.Url.to_string req.Nk_http.Message.url)
        resp.Nk_http.Message.status
    in
    match Hashtbl.find_opt t.log_entries site with
    | Some r -> r := entry :: !r
    | None -> Hashtbl.add t.log_entries site (ref [ entry ])
  end

let account t ~site ~cpu ~heap ~bytes ~elapsed =
  let charge = Nk_resource.Accounting.charge t.accounting ~site in
  charge Nk_resource.Resource.Cpu cpu;
  charge Nk_resource.Resource.Memory heap;
  charge Nk_resource.Resource.Bandwidth bytes;
  charge Nk_resource.Resource.Running_time elapsed;
  charge Nk_resource.Resource.Bytes_transferred bytes;
  t.mem_window <- t.mem_window +. heap;
  t.bw_window <- t.bw_window +. bytes

(* Process one client request inside a cothread; returns the response
   plus the interpreter fuel and heap the pipeline consumed (offload
   replies ship those, so a remote execution stays accountable). *)
let process t ?span ?deadline (req : Nk_http.Message.request) =
  let started = now t in
  let site = Nk_http.Url.site req.Nk_http.Message.url in
  let costs = t.cfg.Config.costs in
  t.in_flight <- t.in_flight + 1;
  let concurrency = float_of_int t.in_flight *. costs.Config.concurrency_cpu in
  (match deadline with
   | Some d ->
     set_attr span "deadline_remaining"
       (Printf.sprintf "%.4f" (Nk_resource.Deadline.remaining d ~now:(now t)))
   | None -> ());
  (* Expose this request's span to the hostcall closures while the
     pipeline runs (best effort: restored even on exceptions, but a
     suspended pipeline's sub-fetches may interleave). The deadline
     budget rides the same way so scripts' own fetches run under it. *)
  let saved = t.active_span in
  let saved_deadline = t.active_deadline in
  t.active_span <- span;
  t.active_deadline <- deadline;
  let response, fuel, heap, handlers =
    Fun.protect
      ~finally:(fun () ->
        t.active_span <- saved;
        t.active_deadline <- saved_deadline)
      (fun () ->
        if not t.cfg.Config.enable_pipeline then
          (content_fetch t ?span ?deadline req, 0, 0, 0)
        else begin
          let telemetry =
            match span with Some s -> Some (t.tracer, s) | None -> None
          in
          let outcome =
            Nk_pipeline.Pipeline.execute
              ~load_stage:(fun url ->
                let stage = load_stage t ?span url in
                (match stage with
                 | Some _ -> charge_cpu t costs.Config.predicate_eval
                 | None -> ());
                stage)
              ~fetch:(fun req -> content_fetch t ?span ?deadline req)
              ?telemetry req
          in
          (match outcome.Nk_pipeline.Pipeline.source with
           | Nk_pipeline.Pipeline.From_failure Nk_pipeline.Pipeline.Killed ->
             Nk_sim.Trace.incr t.trace "dropped-termination";
             set_attr span "source" "killed"
           | Nk_pipeline.Pipeline.From_failure _ ->
             Nk_sim.Trace.incr t.trace "script-errors";
             set_attr span "source" "failure"
           | Nk_pipeline.Pipeline.From_script stage_url ->
             set_attr span "source" ("script:" ^ stage_url)
           | Nk_pipeline.Pipeline.From_origin -> set_attr span "source" "origin");
          ( outcome.Nk_pipeline.Pipeline.response,
            outcome.Nk_pipeline.Pipeline.fuel,
            outcome.Nk_pipeline.Pipeline.heap,
            outcome.Nk_pipeline.Pipeline.handlers_run )
        end)
  in
  (* Handler CPU: engine crossings, interpreter fuel, and allocation
     (GC/paging) pressure. *)
  let handler_cpu =
    (float_of_int fuel *. costs.Config.handler_per_fuel)
    +. (float_of_int heap *. costs.Config.heap_cpu_per_byte)
  in
  let crossing_cpu = float_of_int handlers *. costs.Config.handler_invoke in
  charge_cpu t handler_cpu;
  (* Bookkeeping, engine crossings and concurrency (scheduling/paging)
     pressure occupy the CPU — limiting capacity — but overlap this
     request's network time rather than delaying its response. *)
  charge_cpu_background t (costs.Config.proxy_base +. concurrency +. crossing_cpu);
  t.in_flight <- t.in_flight - 1;
  let elapsed = now t -. started in
  let bytes = float_of_int (Nk_http.Message.content_length response) in
  account t ~site
    ~cpu:(costs.Config.proxy_base +. concurrency +. handler_cpu +. crossing_cpu)
    ~heap:(float_of_int heap) ~bytes ~elapsed;
  access_log t ~site ~req ~resp:response;
  Nk_sim.Trace.add t.trace "latency" elapsed;
  let labels = [ ("site", site) ] in
  Nk_telemetry.Metrics.incr t.metrics ~labels "site.requests";
  Nk_telemetry.Metrics.observe t.metrics ~labels "site.latency" elapsed;
  (response, fuel, heap)

(* --- computation diffusion (C3PO over the health plane) --------------- *)

let site_script_url site = Printf.sprintf "http://%s/nakika.js" site

(* The name of the work this site's requests would run, offloadable only
   once known locally: [Some hash] when the stage is cached (a previous
   request warmed it), [Some ""] when the site is known to publish no
   script (walls-only pipeline), [None] when we have never looked — the
   first request must execute here and warm the caches. *)
let offload_hash t site =
  let url = site_script_url site in
  match Nk_cache.Memo_cache.find t.stage_cache ~now:(now t) url with
  | Some entry -> Some entry.hash
  | None -> (
    match Nk_cache.Memo_cache.find t.negative ~now:(now t) url with
    | Some () -> Some ""
    | None -> None)

(* Decide whether this request should diffuse. Entirely inert when
   diffusion is disabled — no rng draws, no metrics — so a disabled node
   behaves bit-identically to one built before diffusion existed. *)
let offload_plan t ~site =
  match t.diffusion with
  | None -> None
  | Some d -> (
    let p = pressure t in
    if p < t.cfg.Config.diffusion_low_water then None
    else
      match offload_hash t site with
      | None -> None
      | Some script_hash -> (
        let candidates =
          Nk_diffusion.Neighbors.candidates d.neighbors ~now:(now t)
            ~staleness:t.cfg.Config.diffusion_staleness
            ~fanout:t.cfg.Config.diffusion_fanout
        in
        match
          Nk_diffusion.Policy.decide ~pressure:p
            ~low_water:t.cfg.Config.diffusion_low_water ~candidates
        with
        | Nk_diffusion.Policy.Local -> None
        | Nk_diffusion.Policy.Offload eligible -> (
          match Nk_diffusion.Policy.pick ~rng:t.rng eligible with
          | None -> None
          | Some target -> Some (d, p, script_hash, target))))

(* Ship the request to [target]; any failure — open breaker, rejection,
   timeout — falls back to [fallback] (the normal local admission path),
   so diffusion can never lose a request, only decline to help. *)
let attempt_offload t ~site ~plan:(d, p, script_hash, target) ?deadline req k ~fallback =
  let target_name = target.Nk_diffusion.Neighbors.name in
  let fall_back reason =
    Nk_telemetry.Metrics.incr t.metrics ~labels:[ ("reason", reason) ]
      "diffusion.fallbacks";
    fallback ()
  in
  let breaker = breaker_for t ("offload:" ^ target_name) in
  match Nk_resource.Breaker.acquire breaker with
  | `Reject _ ->
    Nk_sim.Trace.incr t.trace "breaker-short-circuits";
    fall_back "breaker-open"
  | `Proceed ->
    let span = start_request_span t "request" req in
    set_attr span "pressure" (Printf.sprintf "%.3f" p);
    let ospan =
      match span with
      | None -> None
      | Some s ->
        Some
          (Nk_telemetry.Tracer.start_span t.tracer ~parent:s
             ~attrs:[ ("target", target_name) ]
             "offload")
    in
    let range =
      Option.bind (Nk_http.Message.req_header req "Range") Nk_http.Range.parse
    in
    (* The envelope ships the request's headers, so stamping the
       remaining budget here propagates it to the offload target; the
       reply timeout shrinks to the budget for the same reason the
       per-hop fetch timeouts do. *)
    (match deadline with
     | Some d -> Nk_resource.Deadline.stamp d ~now:(now t) req
     | None -> ());
    Nk_diffusion.Offload.send d.offload ~target:target_name
      ~target_incarnation:target.Nk_diffusion.Neighbors.incarnation ~site ~script_hash
      ~timeout:(hop_timeout t deadline t.cfg.Config.diffusion_offload_timeout)
      ~request:req
      ~on_done:(fun outcome ->
        match outcome with
        | Some (Nk_diffusion.Offload.Executed { response; fuel = _; heap = _ }) ->
          Nk_resource.Breaker.success breaker;
          Nk_telemetry.Metrics.incr t.metrics
            ~labels:[ ("target", target_name) ]
            "diffusion.offloads";
          Nk_sim.Trace.incr t.trace "responses";
          (match range with
           | Some r ->
             if Nk_http.Range.apply r response then
               Nk_sim.Trace.incr t.trace "range-responses"
           | None -> ());
          set_attr ospan "outcome" "executed";
          (match ospan with Some s -> Nk_telemetry.Tracer.finish t.tracer s | None -> ());
          set_attr span "status" (string_of_int response.Nk_http.Message.status);
          set_attr span "source" ("offload:" ^ target_name);
          finish_span t span;
          k response
        | Some (Nk_diffusion.Offload.Rejected reason) ->
          (* The target answered: it is alive, just unwilling. Not a
             breaker failure — tripping on a loaded-but-healthy neighbor
             would blind us to it for a whole cooldown. *)
          Nk_resource.Breaker.success breaker;
          set_attr ospan "outcome" ("rejected:" ^ reason);
          (match ospan with Some s -> Nk_telemetry.Tracer.finish t.tracer s | None -> ());
          set_attr span "source" "offload-fallback";
          finish_span t span;
          fall_back "rejected"
        | None ->
          Nk_resource.Breaker.failure breaker;
          set_attr ospan "outcome" "timeout";
          (match ospan with Some s -> Nk_telemetry.Tracer.finish t.tracer s | None -> ());
          set_attr span "source" "offload-fallback";
          finish_span t span;
          fall_back "timeout")

(* Receiver side: resolve the shipped hash to a runnable stage before
   the pipeline goes looking for a script. Runs inside the request's
   cothread (the hash-miss path awaits a bounded origin fetch). *)
let resolve_offload_stage t (env : Nk_diffusion.Offload.request_envelope) =
  let site = env.Nk_diffusion.Offload.site in
  let url = site_script_url site in
  let hash = env.Nk_diffusion.Offload.script_hash in
  if hash = "" then begin
    (* The sender knows the site publishes no script; spare the pipeline
       the origin probe it would otherwise pay to learn the same. *)
    if
      Nk_cache.Memo_cache.find t.stage_cache ~now:(now t) url = None
      && Nk_cache.Memo_cache.find t.negative ~now:(now t) url = None
    then
      Nk_cache.Memo_cache.put t.negative ~key:url
        ~expiry:(now t +. t.cfg.Config.negative_ttl) ()
  end
  else if Nk_cache.Memo_cache.find t.stage_cache ~now:(now t) url <> None then ()
  else
    let registry_hits_before = (Nk_script.Registry.stats ()).Nk_script.Registry.hits in
    match Nk_script.Compile.find_cached_by_hash hash with
    | Some program ->
      (* [find_cached_by_hash] falls through to the persistent registry:
         if its hit counter moved, this program was rescued from disk
         rather than found in memory — an origin fetch avoided. *)
      if (Nk_script.Registry.stats ()).Nk_script.Registry.hits > registry_hits_before
      then Nk_telemetry.Metrics.incr t.metrics "diffusion.registry_rescues";
      ignore (install_stage_from_program t ~url ~site ~hash program)
    | None ->
      (* Hash miss: the program fell out of the (LRU-bounded) compile
         cache, or was never compiled in this process. Fetch the script
         from the origin under its own — short — deadline and warm the
         HTTP cache so the pipeline's stage load finds it without paying
         [origin_timeout]. *)
      Nk_telemetry.Metrics.incr t.metrics "diffusion.hash_misses";
      let req = Nk_http.Message.request url in
      (match
         await_fetch_opt t ~via:None ~timeout:t.cfg.Config.diffusion_fetch_timeout req
       with
       | Some resp when Nk_http.Status.is_success resp.Nk_http.Message.status ->
         insert_if_cacheable t req resp
       | _ -> ())

let handle_offload_request t d ~payload =
  match Nk_diffusion.Offload.decode_request_envelope payload with
  | Error msg ->
    Logs.debug (fun m -> m "[%s] undecodable offload request: %s" (name t) msg)
  | Ok env ->
    let site = env.Nk_diffusion.Offload.site in
    let reject reason =
      Nk_telemetry.Metrics.incr t.metrics ~labels:[ ("reason", reason) ]
        "diffusion.rejects";
      Nk_diffusion.Offload.reply d.offload ~to_:env (Nk_diffusion.Offload.Rejected reason)
    in
    (* The sender addressed an incarnation of us that no longer exists:
       whatever it believed about our load died with it. *)
    if env.Nk_diffusion.Offload.target_incarnation <> incarnation t then
      reject "incarnation"
    else if Nk_resource.Quarantine.is_banned t.quarantine ~site then
      reject "banned-site"
    else if pressure t >= t.cfg.Config.diffusion_high_water then reject "pressure"
    else begin
      let req = env.Nk_diffusion.Offload.request in
      (* Receiver-side deadline shed: a budget smaller than our current
         queue-delay estimate cannot be served in time — rejecting now
         lets the sender fall back (its local queue may be shorter)
         instead of computing an answer nobody will wait for. *)
      let deadline = Nk_resource.Deadline.of_request ~now:(now t) req in
      let doomed =
        match deadline with
        | Some d ->
          Nk_resource.Deadline.remaining d ~now:(now t)
          <= Nk_sim.Net.cpu_backlog t.net t.host
        | None -> false
      in
      if doomed then begin
        Nk_telemetry.Metrics.incr t.metrics ~labels:[ ("at", "offload") ]
          "deadline.expired";
        reject
          (match deadline with
           | Some d when Nk_resource.Deadline.expired d ~now:(now t) ->
             "deadline-expired"
           | _ -> "deadline-queue")
      end
      else begin
      let verdict =
        match t.admission with
        | None -> Nk_resource.Admission.Admitted
        | Some adm ->
          Nk_resource.Admission.offer adm ~site
            ~queue_delay:(Nk_sim.Net.cpu_backlog t.net t.host)
      in
      match verdict with
      | Nk_resource.Admission.Shed { reason; _ } -> reject ("admission-" ^ reason)
      | Nk_resource.Admission.Admitted ->
        let release () =
          match t.admission with
          | Some adm -> Nk_resource.Admission.release adm ~site
          | None -> ()
        in
        let span = start_request_span t "offload-request" req in
        set_attr span "origin" env.Nk_diffusion.Offload.origin_node;
        Nk_util.Cothread.spawn
          (fun () ->
            resolve_offload_stage t env;
            process t ?span ?deadline req)
          ~on_done:(fun (resp, fuel, heap) ->
            release ();
            Nk_sim.Trace.incr t.trace "responses";
            set_attr span "status" (string_of_int resp.Nk_http.Message.status);
            finish_span t span;
            Nk_diffusion.Offload.reply d.offload ~to_:env
              (Nk_diffusion.Offload.Executed { response = resp; fuel; heap }))
          ~on_error:(fun exn ->
            release ();
            Nk_sim.Trace.incr t.trace "script-errors";
            Logs.warn (fun m ->
                m "[%s] offloaded pipeline error: %s" (name t) (Printexc.to_string exn));
            set_attr span "error" (Printexc.to_string exn);
            finish_span t span;
            reject "error")
      end
    end

let handle t (req : Nk_http.Message.request) k =
  Nk_sim.Trace.incr t.trace "requests";
  (* Peer requests serve straight from cache/origin: no pipeline, no
     further DHT consultation (avoids routing loops). *)
  if Nk_http.Message.req_header req peer_header <> None then begin
    (* Receiver-side deadline shed, mirroring the offload target's: a
       peer request whose carried budget is below our queue-delay
       estimate (or already spent) gets its 504 now, freeing the
       requester to try its next candidate within the budget. *)
    let deadline = Nk_resource.Deadline.of_request ~now:(now t) req in
    let doomed =
      match deadline with
      | Some d ->
        Nk_resource.Deadline.remaining d ~now:(now t)
        <= Nk_sim.Net.cpu_backlog t.net t.host
      | None -> false
    in
    if doomed then begin
      Nk_sim.Trace.incr t.trace "responses";
      k
        (deadline_expired_response t
           ~at:
             (match deadline with
              | Some d when Nk_resource.Deadline.expired d ~now:(now t) -> "peer"
              | _ -> "peer-queue"))
    end
    else begin
    let span = start_request_span t "peer-request" req in
    Nk_util.Cothread.spawn
      (fun () -> content_fetch t ~allow_peers:false ?span ?deadline req)
      ~on_done:(fun resp ->
        Nk_sim.Trace.incr t.trace "responses";
        if t.cfg.Config.misbehaving then
          (* The §6 threat: a node that arbitrarily modifies cached
             content before serving it to its peers. *)
          Nk_http.Message.set_body resp
            (Nk_util.Strutil.replace_all
               (Nk_http.Body.to_string resp.Nk_http.Message.resp_body)
               ~sub:"content" ~by:"FALSIFIED");
        set_attr span "status" (string_of_int resp.Nk_http.Message.status);
        finish_span t span;
        k resp)
      ~on_error:(fun _ ->
        set_attr span "error" "true";
        finish_span t span;
        k (Nk_http.Message.error_response 500))
    end
  end
  else begin
    (* Strip the .nakika.net suffix clients use to reach us (§3). *)
    (match Nk_http.Url.of_nakika req.Nk_http.Message.url with
     | Some origin -> req.Nk_http.Message.url <- origin
     | None -> ());
    let site = Nk_http.Url.site req.Nk_http.Message.url in
    let fraction = throttle_fraction t site in
    (* A rejected request still gets a (one-span) trace: admission
       decisions are part of "where did this request's time go?". With
       [retry_after], the 503 tells the client when trying again might
       actually succeed. *)
    let reject ?retry_after outcome =
      let span = start_request_span t "request" req in
      set_attr span "outcome" outcome;
      set_attr span "status" "503";
      finish_span t span;
      k
        (match retry_after with
         | Some s -> retry_after_response s
         | None -> Nk_http.Message.error_response 503)
    in
    if Nk_resource.Quarantine.is_banned t.quarantine ~site then begin
      Nk_sim.Trace.incr t.trace "dropped-termination";
      reject ~retry_after:(Nk_resource.Quarantine.remaining t.quarantine ~site) "banned-site"
    end
    else if
      t.cfg.Config.enable_resource_controls && fraction > 0.0
      && Nk_util.Prng.float t.rng 1.0 < fraction
    then begin
      Nk_sim.Trace.incr t.trace "rejected-throttle";
      reject "rejected-throttle"
    end
    else begin
      (* Tail tolerance: the request's deadline budget — minted here
         from [request_deadline], or carried in from an upstream
         Na Kika node, whichever is tighter. [None] (the default
         config, no header) leaves every downstream path exactly as it
         was before deadlines existed. *)
      let deadline =
        Nk_resource.Deadline.admit ~now:(now t) ~budget:t.cfg.Config.request_deadline req
      in
      let local () =
        (* Front-door admission control: the host's CPU backlog is the
           queueing delay a newly admitted request would see. *)
        let verdict =
          match t.admission with
          | None -> Nk_resource.Admission.Admitted
          | Some adm ->
            Nk_resource.Admission.offer adm ~site
              ~queue_delay:(Nk_sim.Net.cpu_backlog t.net t.host)
        in
        match verdict with
        | Nk_resource.Admission.Shed { retry_after; reason } ->
          Nk_sim.Trace.incr t.trace "admission-sheds";
          reject ~retry_after ("admission-" ^ reason)
        | Nk_resource.Admission.Admitted ->
          let release () =
            match t.admission with
            | Some adm -> Nk_resource.Admission.release adm ~site
            | None -> ()
          in
          (* §3.1: a Range request is processed on the entire instance (the
             pipeline may transcode it); the requested slice is cut out only
             for the final client response. *)
          let range =
            Option.bind (Nk_http.Message.req_header req "Range") Nk_http.Range.parse
          in
          let span = start_request_span t "request" req in
          Nk_util.Cothread.spawn
            (fun () -> process t ?span ?deadline req)
            ~on_done:(fun (resp, _fuel, _heap) ->
              release ();
              Nk_sim.Trace.incr t.trace "responses";
              (match range with
               | Some r -> if Nk_http.Range.apply r resp then Nk_sim.Trace.incr t.trace "range-responses"
               | None -> ());
              set_attr span "status" (string_of_int resp.Nk_http.Message.status);
              finish_span t span;
              k resp)
            ~on_error:(fun exn ->
              release ();
              Nk_sim.Trace.incr t.trace "script-errors";
              Logs.warn (fun m -> m "[%s] pipeline error: %s" (name t) (Printexc.to_string exn));
              set_attr span "error" (Printexc.to_string exn);
              finish_span t span;
              k (Nk_http.Message.error_response 500))
      in
      match deadline with
      | Some d when Nk_resource.Deadline.expired d ~now:(now t) ->
        (* Zero-remaining admission: the budget was spent before we
           could do anything — answer the 504 without taking a queue
           slot or consulting the diffusion plan. *)
        let span = start_request_span t "request" req in
        set_attr span "outcome" "deadline-admission";
        set_attr span "status" "504";
        finish_span t span;
        k (deadline_expired_response t ~at:"admission")
      | _ -> (
        (* Proactive diffusion sits after quarantine/throttle but before
           admission: an offloaded request never takes a local queue slot,
           which is exactly the relief a pressured node needs. *)
        match offload_plan t ~site with
        | None -> local ()
        | Some plan -> attempt_offload t ~site ~plan ?deadline req k ~fallback:local)
    end
  end

(* --- congestion control (Fig. 6 scheduling) --------------------------- *)

let window_rate t value =
  let dt = now t -. t.window_start in
  if dt <= 0.0 then 0.0 else value /. dt

let reset_window t =
  t.mem_window <- 0.0;
  t.bw_window <- 0.0;
  t.window_start <- now t

(* The final (post-timeout) check uses a higher bar: termination is for
   congestion that throttling demonstrably cannot clear, not for a node
   hovering at its capacity. *)
let is_congested t ~final resource =
  let scale = if final then 3.0 else 1.0 in
  match resource with
  | Nk_resource.Resource.Cpu ->
    Nk_sim.Net.cpu_backlog t.net t.host > scale *. t.cfg.Config.cpu_congestion_backlog
  | Nk_resource.Resource.Memory ->
    window_rate t t.mem_window
    >= scale *. t.cfg.Config.memory_congestion_bytes /. t.cfg.Config.control_interval
  | Nk_resource.Resource.Bandwidth ->
    window_rate t t.bw_window
    >= scale *. t.cfg.Config.bandwidth_congestion_bytes /. t.cfg.Config.control_interval
  | Nk_resource.Resource.Running_time | Nk_resource.Resource.Bytes_transferred -> false

let terminate_site t ~site =
  t.terminated <- site :: t.terminated;
  (* Kill the scripting contexts of every cached stage owned by the
     site; in-flight pipelines die at their next evaluation step. *)
  List.iter
    (fun url ->
      match Nk_cache.Memo_cache.find t.stage_cache ~now:(now t) url with
      | Some entry when entry.site = site ->
        Nk_script.Interp.kill (Nk_pipeline.Stage.context entry.stage);
        Nk_cache.Memo_cache.remove t.stage_cache url
      | _ -> ())
    [ Printf.sprintf "http://%s/nakika.js" site ];
  (* Refuse the site's requests for an escalating (but decaying) ban
     window — repeat offenders wait longer, reformed ones recover. *)
  ignore (Nk_resource.Quarantine.punish t.quarantine ~site)

let start_monitor t =
  let accounting = t.accounting in
  let monitor =
    Nk_resource.Monitor.create ~accounting
      ~is_congested:(fun ~final r -> is_congested t ~final r)
      ~throttle:(fun ~site ~fraction ~resource ->
        (* [fraction] is the site's contribution to congestion; scale it
           by the congestion severity so a single active site is not
           blocked outright when the node is only slightly over. *)
        let severity =
          let backlog = Nk_sim.Net.cpu_backlog t.net t.host in
          let cpu_sev =
            if backlog <= t.cfg.Config.cpu_congestion_backlog then 0.0
            else 1.0 -. (t.cfg.Config.cpu_congestion_backlog /. backlog)
          in
          let mem_rate = window_rate t t.mem_window in
          let mem_limit = t.cfg.Config.memory_congestion_bytes /. t.cfg.Config.control_interval in
          let mem_sev = if mem_rate <= mem_limit then 0.0 else 1.0 -. (mem_limit /. mem_rate) in
          Float.min 0.95 (Float.max cpu_sev mem_sev)
        in
        let table = resource_throttles t resource in
        let existing =
          match Hashtbl.find_opt table site with Some f -> f | None -> 0.0
        in
        Hashtbl.replace table site (Float.max existing (fraction *. severity)))
      ~unthrottle:(fun resource -> Hashtbl.reset (resource_throttles t resource))
      ~terminate:(fun ~site -> terminate_site t ~site)
      ~events:t.events ~metrics:t.metrics ()
  in
  t.monitor <- Some monitor;
  let rec cycle () =
    List.iter (fun r -> ignore (Nk_resource.Monitor.begin_control monitor r)) Nk_resource.Resource.all;
    reset_window t;
    Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:t.cfg.Config.control_timeout (fun () ->
        List.iter
          (fun r -> ignore (Nk_resource.Monitor.finish_control monitor r))
          Nk_resource.Resource.all;
        reset_window t;
        Nk_sim.Sim.schedule t.sim ~daemon:true
          ~delay:(Float.max 0.05 (t.cfg.Config.control_interval -. t.cfg.Config.control_timeout))
          cycle)
  in
  Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:t.cfg.Config.control_interval cycle

(* --- access-log posting (§3.3) ---------------------------------------- *)

(* Soft-state maintenance: DHT announcements are TTL'd ([dht_ttl]),
   typically shorter than cached entries' lifetimes; re-announce fresh
   cache contents so cooperative caching keeps finding them (Coral-style
   refresh). *)
let start_reannouncer t dht =
  let period = Float.max 5.0 (t.cfg.Config.dht_ttl /. 2.0) in
  let rec cycle () =
    Nk_cache.Http_cache.fold_fresh t.cache ~now:(now t) ~init:()
      ~f:(fun () key expiry ->
        let ttl = Float.min t.cfg.Config.dht_ttl (expiry -. now t) in
        if ttl > 0.0 then
          ignore (Nk_overlay.Dht.put dht ~now:(now t) ~from:(name t) ~key ~value:(name t) ~ttl));
    Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:period cycle
  in
  Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:period cycle

(* Expired sloppy placements otherwise die only lazily, on the next
   lookup of their own key: a crowd that moves on leaves its copies
   pinned on the holders until someone asks again. Sweeping on half
   the placement TTL makes reconvergence a property of the clock, not
   of lookup luck. Idempotent, so every hotspot-enabled node may run
   one against the shared index. *)
let start_dht_sweeper t dht =
  let period = Float.max 1.0 (t.cfg.Config.hotspot_ttl /. 2.0) in
  let rec cycle () =
    Nk_overlay.Dht.sweep dht ~now:(now t);
    Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:period cycle
  in
  Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:period cycle

let start_log_poster t =
  let rec cycle () =
    Hashtbl.iter
      (fun site url ->
        match Hashtbl.find_opt t.log_entries site with
        | Some entries when !entries <> [] ->
          let body = String.concat "\n" (List.rev !entries) in
          entries := [];
          let req = Nk_http.Message.request ~meth:Nk_http.Method_.POST ~body url in
          Nk_sim.Httpd.fetch t.web ~from:t.host req (fun _ ->
              Nk_sim.Trace.incr t.trace "log-posts")
        | _ -> ())
      t.log_urls;
    Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:30.0 cycle
  in
  Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:30.0 cycle

(* Publish the node's own load view as gauges every report interval, so
   [nakika stats --health] and merged benchmark registries can show
   per-node overload state without poking node internals. *)
let start_health_gauges t =
  let period = t.cfg.Config.health_report_interval in
  if period > 0.0 then begin
    let was_down = ref false in
    let rec cycle () =
      let down = Nk_sim.Net.host_down t.net t.host in
      (* Requests admitted before a crash died with the host: their
         queue slots must not haunt admission after restart. *)
      if !was_down && not down then
        Option.iter Nk_resource.Admission.reset t.admission;
      was_down := down;
      if not down then begin
        let h = health t in
        let set = Nk_telemetry.Metrics.set_gauge t.metrics in
        set "health.queue_delay" h.queue_delay;
        set "health.shed_rate" h.shed_rate;
        set "health.open_breakers" (float_of_int (List.length h.open_breakers));
        set "health.quarantined_sites" (float_of_int (List.length h.quarantined));
        match t.diffusion with
        | Some _ -> set "diffusion.pressure" (pressure t)
        | None -> ()
      end;
      Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:period cycle
    in
    Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:period cycle
  end

let create ~web ~host ?dht ?bus ?(config = Config.default) () =
  let net = Nk_sim.Httpd.net web in
  let sim = Nk_sim.Net.sim net in
  let clock () = Nk_sim.Sim.now sim in
  let metrics = Nk_telemetry.Metrics.create () in
  let node_name = Nk_sim.Net.host_name host in
  (* Startup validation with the same checker core the provisioning
     verifier runs: a node never silently accepts inverted waters, a
     non-positive admission capacity, or an oversubscribed share table
     — it refuses to construct. *)
  (match Config.validate config with
  | [] -> ()
  | problems ->
    invalid_arg
      (Printf.sprintf "Node.create %s: invalid config: %s" node_name
         (String.concat "; " problems)));
  (* The registry is process-wide (like the compile cache it extends);
     a node configured with a directory enables it, a node with the
     default [None] leaves whatever is already configured alone. *)
  (match config.Config.program_registry_dir with
  | Some dir ->
    Nk_script.Registry.set_dir (Some dir);
    let loaded = Nk_script.Compile.preload_registry () in
    if loaded > 0 then
      Logs.debug (fun m ->
          m "[%s] program registry: preloaded %d compiled program(s)" node_name loaded)
  | None -> ());
  let diffusion =
    match bus with
    | Some b when config.Config.enable_diffusion ->
      let incarnation () =
        match Nk_sim.Net.faults net with
        | Some plan -> Nk_faults.Plan.incarnation plan ~now:(clock ()) node_name
        | None -> 0
      in
      Some
        {
          neighbors = Nk_diffusion.Neighbors.create ();
          offload =
            Nk_diffusion.Offload.create ~name:node_name ~incarnation ~clock
              (* Non-daemon: a pending offload's timeout is the fallback
                 guarantee, so it must fire even when the target's crash
                 has left no other events (a daemon timer would let the
                 simulation drain and strand the request). *)
              ~schedule:(fun delay k -> Nk_sim.Sim.schedule sim ~delay k)
              ~publish:(fun ~topic ~payload ->
                Nk_replication.Message_bus.publish b ~from:node_name ~topic ~payload)
              ~metrics ();
        }
    | _ -> None
  in
  let t =
    {
      web;
      net;
      sim;
      host;
      dht;
      bus;
      cfg = config;
      rng = Nk_util.Prng.create (config.Config.seed + String.length (Nk_sim.Net.host_name host));
      cache = Nk_cache.Http_cache.create ~max_bytes:config.Config.cache_bytes ();
      stage_cache = Nk_cache.Memo_cache.create ();
      negative = Nk_cache.Memo_cache.create ();
      accounting = Nk_resource.Accounting.create ();
      monitor = None;
      throttles = Hashtbl.create 4;
      quarantine =
        Nk_resource.Quarantine.create ~base:config.Config.termination_penalty
          ~max_window:config.Config.quarantine_max ~decay:config.Config.quarantine_decay
          ~site_params:config.Config.site_quarantine ~clock ~metrics ();
      admission =
        (if config.Config.enable_admission then
           Some
             (Nk_resource.Admission.create ~target:config.Config.admission_target
                ~interval:config.Config.admission_interval
                ~capacity:config.Config.admission_capacity
                ~shares:(Nk_resource.Shares.create config.Config.site_shares)
                ~clock ~metrics ())
         else None);
      diffusion;
      breakers = Hashtbl.create 8;
      hedge =
        (if config.Config.enable_hedging then
           Some (Nk_resource.Hedge.create ~rate:config.Config.hedge_rate ~metrics ())
         else None);
      retry_budget =
        (if config.Config.retry_budget_ratio > 0.0 then
           Some
             (Nk_resource.Retry_budget.create ~ratio:config.Config.retry_budget_ratio
                ~metrics ())
         else None);
      store = Nk_replication.Store.create ();
      replicas = Hashtbl.create 4;
      log_urls = Hashtbl.create 4;
      log_entries = Hashtbl.create 4;
      trace = Nk_sim.Trace.create ~registry:metrics ();
      metrics;
      tracer = Nk_telemetry.Tracer.create ~capacity:config.Config.trace_capacity ~clock ();
      events = Nk_telemetry.Events.create ~clock ();
      active_span = None;
      active_deadline = None;
      local_cidrs =
        List.filter_map
          (fun s -> Result.to_option (Nk_http.Ip.cidr_of_string s))
          config.Config.local_clients;
      terminated = [];
      in_flight = 0;
      mem_window = 0.0;
      bw_window = 0.0;
      window_start = Nk_sim.Sim.now sim;
    }
  in
  Nk_cache.Http_cache.set_metrics t.cache metrics;
  Nk_sim.Httpd.serve web ~host ~hostnames:[ Nk_sim.Net.host_name host ] (fun req k ->
      handle t req k);
  (match dht with
   | Some dht when config.Config.enable_dht ->
     ignore (Nk_overlay.Dht.join dht (name t));
     start_reannouncer t dht;
     if config.Config.enable_hotspots then start_dht_sweeper t dht
   | _ -> ());
  if config.Config.enable_resource_controls then start_monitor t;
  (* The offload protocol rides the bus: each node owns a request topic
     (work addressed to it) and a reply topic (answers to work it
     shipped). Point-to-point semantics over pub/sub, with the bus's
     acked-retry reliability for free. *)
  (match (t.diffusion, bus) with
   | Some d, Some b ->
     Nk_replication.Message_bus.attach b ~name:node_name ~host;
     Nk_replication.Message_bus.subscribe b ~name:node_name
       ~topic:(Nk_diffusion.Offload.reply_topic node_name)
       ~handler:(fun ~payload ~from:_ ->
         Nk_diffusion.Offload.handle_reply d.offload ~payload);
     Nk_replication.Message_bus.subscribe b ~name:node_name
       ~topic:(Nk_diffusion.Offload.request_topic node_name)
       ~handler:(fun ~payload ~from:_ -> handle_offload_request t d ~payload)
   | _ -> ());
  start_log_poster t;
  start_health_gauges t;
  t
