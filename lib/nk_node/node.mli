(** A Na Kika edge node: the proxy runtime of §4.

    One node ties together the proxy cache, the scripting pipeline with
    its stage/decision-tree caches and context accounting, cooperative
    caching through the DHT, hard state, access logging, and the
    congestion-based resource monitor. The node attaches to a simulated
    host and serves HTTP through {!Nk_sim.Httpd}; clients reach it with
    [Httpd.fetch_via] after DNS redirection.

    A node configured with [Config.plain_proxy] degenerates into the
    micro-benchmarks' baseline Apache-style proxy. *)

type t

val create :
  web:Nk_sim.Httpd.t ->
  host:Nk_sim.Net.host ->
  ?dht:Nk_overlay.Dht.t ->
  ?bus:Nk_replication.Message_bus.t ->
  ?config:Config.t ->
  unit ->
  t
(** Registers the node as the HTTP server on [host] (hostname =
    [Net.host_name host]) and, when given a DHT, joins the overlay. *)

val host : t -> Nk_sim.Net.host

val name : t -> string

val config : t -> Config.t

val trace : t -> Nk_sim.Trace.t
(** Counters: ["requests"], ["responses"], ["rejected-throttle"],
    ["dropped-termination"], ["script-errors"], ["origin-fetches"],
    ["peer-fetches"], ["dht-hits"]; samples: ["latency"] (per-request
    service time at this node). *)

val metrics : t -> Nk_telemetry.Metrics.t
(** The node's registry. Shared with {!trace} (the facade feeds it), the
    proxy cache, and the resource monitor; per-site instruments carry a
    [("site", _)] label ("site.requests", "site.latency", "script.fuel",
    "script.heap", "monitor.throttles", "monitor.terminations"). *)

val tracer : t -> Nk_telemetry.Tracer.t
(** Per-request span trees (ring buffer of [Config.trace_capacity]
    completed traces; disabled when [Config.enable_tracing] is false). *)

val events : t -> Nk_telemetry.Events.t
(** Structured resource-control decisions: one ["throttle"] /
    ["terminate"] event per monitor action, with site and resource
    attributes. *)

val cache : t -> Nk_cache.Http_cache.t

val accounting : t -> Nk_resource.Accounting.t

val monitor : t -> Nk_resource.Monitor.t option

val quarantine : t -> Nk_resource.Quarantine.t
(** The escalating ban windows of terminated sites. *)

val admission : t -> Nk_resource.Admission.t option
(** Front-door admission controller ([None] when
    [Config.enable_admission] is off). *)

type health = {
  queue_delay : float;  (** current CPU backlog in seconds *)
  shed_rate : float;  (** fraction of recent arrivals shed *)
  shedding : bool;  (** admission currently in the shedding state *)
  open_breakers : string list;  (** breakers not in the closed state *)
  quarantined : string list;  (** sites currently serving a ban *)
}

val health : t -> health
(** The node's own overload view — what it publishes to the redirector
    and exports as [health.*] gauges every
    [Config.health_report_interval]. *)

val pressure : t -> float
(** The scalar diffusion load signal in [0, 1]: queueing delay, shed
    rate and admission-queue occupancy combined (monotone in each;
    crosses 0.5 at the admission delay target). Meaningful whether or
    not diffusion is enabled. *)

val incarnation : t -> int
(** Current liveness epoch under fault injection (0 without a fault
    plan). *)

val observe_neighbor :
  t -> name:string -> pressure:float -> incarnation:int -> distance:float -> unit
(** Feed one neighbor load observation into the diffusion pressure
    table (the cluster calls this from its load-report cycle).
    Incarnation-guarded; self-observations and calls on a
    diffusion-disabled node are no-ops. *)

val neighbor_pressures : t -> (string * float) list
(** Snapshot of the neighbor pressure table, name-sorted ([] when
    diffusion is disabled). *)

val terminated_sites : t -> string list
(** Sites whose pipelines the monitor has terminated (most recent
    first; a site may appear more than once). *)

val stage_cache_entries : t -> int

val warm_stage : t -> url:string -> site:string -> source:string -> unit
(** Pre-install a stage script (used by tests and benches to skip the
    fetch path). The script's decision tree is cached under [url]. *)

val invalidate_stage : t -> url:string -> unit
