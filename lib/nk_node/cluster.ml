type t = {
  sim : Nk_sim.Sim.t;
  net : Nk_sim.Net.t;
  web : Nk_sim.Httpd.t;
  dht : Nk_overlay.Dht.t;
  bus : Nk_replication.Message_bus.t;
  redirector : Nk_overlay.Redirector.t;
  nakika_origin : Origin.t;
  rng : Nk_util.Prng.t;
  mutable proxies : Node.t list;
  (* Host-name index over [proxies]: [pick_proxy] resolves the
     redirector's choice per request, and a linear scan over 1000
     proxies per request dominated planet-scale runs. *)
  by_name : (string, Node.t) Hashtbl.t;
}

let sim t = t.sim
let net t = t.net
let web t = t.web
let dht t = t.dht
let bus t = t.bus
let redirector t = t.redirector
let nakika_origin t = t.nakika_origin
let proxies t = List.rev t.proxies

let create ?(seed = 11) ?default_latency ?default_bandwidth ?client_wall ?server_wall
    ?faults () =
  let sim = Nk_sim.Sim.create ~seed () in
  let net = Nk_sim.Net.create sim ?default_latency ?default_bandwidth () in
  (match faults with
   | None -> ()
   | Some plan -> Nk_sim.Net.set_faults net plan);
  let web = Nk_sim.Httpd.create net in
  let dht = Nk_overlay.Dht.create () in
  (* DHT reads skip replicas the fault plan has crashed. *)
  (match faults with
   | None -> ()
   | Some plan ->
     Nk_overlay.Dht.set_liveness dht (fun name ->
         not (Nk_faults.Plan.is_down plan ~now:(Nk_sim.Sim.now sim) name)));
  let bus = Nk_replication.Message_bus.create ~seed:(seed * 17) net in
  let redirector = Nk_overlay.Redirector.create net in
  let wall_host = Nk_sim.Net.add_host net ~name:"nakika.net" () in
  let nakika_origin = Origin.create ~web ~host:wall_host () in
  let client_wall = Option.value client_wall ~default:Nk_pipeline.Walls.default_client_wall in
  let server_wall = Option.value server_wall ~default:Nk_pipeline.Walls.default_server_wall in
  Origin.set_static nakika_origin ~path:"/clientwall.js" ~content_type:"text/javascript"
    ~max_age:300 client_wall;
  Origin.set_static nakika_origin ~path:"/serverwall.js" ~content_type:"text/javascript"
    ~max_age:300 server_wall;
  Origin.set_static nakika_origin ~path:"/nkp.js" ~content_type:"text/javascript" ~max_age:300
    Nk_pipeline.Nkp.script;
  Origin.set_static nakika_origin ~path:"/esi.js" ~content_type:"text/javascript" ~max_age:300
    Nk_pipeline.Esi.script;
  {
    sim;
    net;
    web;
    dht;
    bus;
    redirector;
    nakika_origin;
    rng = Nk_util.Prng.create (seed * 31);
    proxies = [];
    by_name = Hashtbl.create 64;
  }

(* Periodic load reports to the redirector: queueing delay, shed rate,
   and the liveness incarnation (so a report from before a crash can't
   shadow the restarted node's view). A crashed node reports nothing —
   the redirector's own [host_down] filter covers the gap. *)
let start_health_reports t node =
  let period = (Node.config node).Config.health_report_interval in
  if period > 0.0 then begin
    let host = Node.host node in
    let name = Nk_sim.Net.host_name host in
    let rec cycle () =
      if not (Nk_sim.Net.host_down t.net host) then begin
        let h = Node.health node in
        let incarnation =
          match Nk_sim.Net.faults t.net with
          | Some plan ->
            Nk_faults.Plan.incarnation plan ~now:(Nk_sim.Sim.now t.sim) name
          | None -> 0
        in
        Nk_overlay.Redirector.report t.redirector ~host:name ~incarnation
          ~queue_delay:h.Node.queue_delay ~shed_rate:h.Node.shed_rate ();
        (* The same report, as diffusion gossip: every other proxy
           learns this node's pressure (and how far away it is), which
           is the whole neighbor table the offload policy runs on — no
           separate protocol, the health plane carries it. Gated on
           the sender's diffusion flag: a diffusion-off node never
           accepts offloads, so broadcasting its pressure is pure
           overhead — and at 1000 proxies this loop is the difference
           between O(n) and O(n^2) work per report interval. *)
        if (Node.config node).Config.enable_diffusion then begin
          let p = Node.pressure node in
          List.iter
            (fun other ->
              if Nk_sim.Net.host_name (Node.host other) <> name then
                Node.observe_neighbor other ~name ~pressure:p ~incarnation
                  ~distance:
                    (Nk_sim.Net.transfer_time_estimate t.net ~src:(Node.host other)
                       ~dst:host ~size:1024))
            t.proxies
        end
      end;
      Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:period cycle
    in
    Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:period cycle
  end

let add_proxy t ~name ?(cpu_speed = 1.0) ?config () =
  let host = Nk_sim.Net.add_host t.net ~name ~cpu_speed () in
  let node = Node.create ~web:t.web ~host ~dht:t.dht ~bus:t.bus ?config () in
  (* Diffusion deployments also bound how long the redirector trusts a
     load report: a silent node must stop attracting clients just as it
     stops attracting offloads. Gated on the flag so a diffusion-free
     cluster keeps its exact pre-diffusion redirect behavior. *)
  let cfg = Node.config node in
  if cfg.Config.enable_diffusion then
    Nk_overlay.Redirector.set_staleness t.redirector cfg.Config.diffusion_staleness;
  (* Same pattern for hotspot replication: the first hotspot-enabled
     proxy configures the cluster's shared DHT index. Gated on the
     flag so hotspot-free clusters keep their exact prior behavior. *)
  if cfg.Config.enable_hotspots then
    Nk_overlay.Dht.set_hotspots t.dht ~halflife:cfg.Config.hotspot_halflife
      ~threshold:cfg.Config.hotspot_threshold ~replicas:cfg.Config.hotspot_replicas
      ~ttl:cfg.Config.hotspot_ttl ();
  Nk_overlay.Redirector.add_proxy t.redirector host;
  t.proxies <- node :: t.proxies;
  Hashtbl.replace t.by_name name node;
  start_health_reports t node;
  node

let add_origin t ~name ?(cpu_speed = 1.0) ?sign_key () =
  let host = Nk_sim.Net.add_host t.net ~name ~cpu_speed () in
  Origin.create ~web:t.web ~host ?sign_key ()

let add_client t ~name = Nk_sim.Net.add_host t.net ~name ()

let connect t a b ~latency ~bandwidth = Nk_sim.Net.connect t.net a b ~latency ~bandwidth

let pick_proxy t ~client =
  match Nk_overlay.Redirector.pick t.redirector ~spread:2 ~rng:t.rng ~client () with
  | None -> None
  | Some host -> Hashtbl.find_opt t.by_name (Nk_sim.Net.host_name host)

let fetch t ~client ?proxy ?timeout req k =
  let proxy = match proxy with Some p -> Some p | None -> pick_proxy t ~client in
  let k =
    match timeout with
    | None -> k
    | Some timeout ->
      (* Client-side deadline: under fault injection the request or its
         response may be dropped outright, and the client must still
         get an explicit failure (no hung requests). Daemon timer, and
         a [resolved] latch so whichever outcome loses the race is
         discarded. *)
      let resolved = ref false in
      Nk_sim.Sim.schedule t.sim ~daemon:true ~delay:timeout (fun () ->
          if not !resolved then begin
            resolved := true;
            (* Machine-readable like the admission/quarantine 503s:
               the reason header distinguishes "the client gave up"
               from an origin 504, and Retry-After says when trying
               again might actually fit in the same patience. *)
            k
              (Nk_resource.Deadline.expired_response ~retry_after:timeout
                 ~reason:"client-timeout" ())
          end);
      fun resp ->
        if not !resolved then begin
          resolved := true;
          k resp
        end
  in
  match proxy with
  | Some node -> Nk_sim.Httpd.fetch_via t.web ~from:client ~via:(Node.host node) req k
  | None -> Nk_sim.Httpd.fetch t.web ~from:client req k

let run ?until t = Nk_sim.Sim.run ?until t.sim
