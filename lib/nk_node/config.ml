type costs = {
  proxy_base : float;
  cache_hit : float;
  context_create : float;
  context_reuse : float;
  tree_cached : float;
  parse_base : float;
  parse_per_byte : float;
  predicate_eval : float;
  handler_per_fuel : float;
  handler_invoke : float;
  heap_cpu_per_byte : float;
  concurrency_cpu : float;
  dht_per_hop : float;
}

type t = {
  enable_pipeline : bool;
  enable_dht : bool;
  enable_resource_controls : bool;
  cache_bytes : int;
  script_max_fuel : int;
  script_max_heap : int;
  script_ttl : float;
  negative_ttl : float;
  dht_ttl : float;
  control_interval : float;
  control_timeout : float;
  termination_penalty : float;
  cpu_congestion_backlog : float;
  memory_congestion_bytes : float;
  bandwidth_congestion_bytes : float;
  local_clients : string list;
  integrity_key : string option;
  misbehaving : bool;
  (* Admission-time static analysis of fetched scripts: [`Strict]
     refuses stages whose script has error-severity lint diagnostics,
     [`Permissive] only exports the counts, [`Off] skips analysis. *)
  lint_mode : [ `Off | `Permissive | `Strict ];
  enable_tracing : bool;
  trace_capacity : int;
  origin_timeout : float;
  peer_timeout : float;
  stale_if_error : float;
  anti_entropy_interval : float;
  enable_admission : bool;
  admission_target : float;
  admission_interval : float;
  admission_capacity : int;
  breaker_failures : int;
  breaker_error_rate : float;
  breaker_window : float;
  breaker_cooldown : float;
  breaker_max_cooldown : float;
  quarantine_max : float;
  quarantine_decay : float;
  health_report_interval : float;
  enable_diffusion : bool;
  diffusion_low_water : float;
  diffusion_high_water : float;
  diffusion_fanout : int;
  diffusion_offload_timeout : float;
  diffusion_fetch_timeout : float;
  diffusion_staleness : float;
  (* Directory for the persistent program registry (marshalled ASTs
     keyed by script-body SHA-256). [None] — the default — leaves the
     registry disabled: no disk I/O, behavior identical to builds
     without it. *)
  program_registry_dir : string option;
  costs : costs;
  seed : int;
}

let default_costs =
  {
    (* A plain proxy tops out at 603 rps on the reference machine
       (§5.1), i.e. ~1.66 ms of CPU per request: proxy handling plus
       cache retrieval (1.1 ms). *)
    proxy_base = 0.0007;
    cache_hit = 0.0008;
    context_create = 0.0015;
    context_reuse = 0.000003;
    tree_cached = 0.000004;
    parse_base = 0.00008;
    (* Large wall/site scripts take up to ~17.8 ms to parse+execute;
       our scripts are a few hundred bytes to a few KB. *)
    parse_per_byte = 0.0000012;
    predicate_eval = 0.000038;
    (* Match-1 runs at 294 rps => ~3.4 ms/request; the gap to proxy_base
       is filled by the two wall stages + site stage (predicate evals,
       context touches) and the handler fuel. *)
    handler_per_fuel = 0.0000003;
    (* Crossing into the scripting engine and back per event handler;
       with two walls and the Match-1 site stage this fills the gap
       between 603 rps (Proxy) and 294 rps (Match-1). *)
    handler_invoke = 0.0004;
    (* A memory bomb that allocates the full 64 MiB sandbox heap costs
       ~2 s of paging pressure on the 1 GB reference machine. *)
    heap_cpu_per_byte = 1e-8;
    (* Unmanaged overload (no admission control) degrades throughput:
       every concurrent request adds scheduling/paging pressure. *)
    concurrency_cpu = 0.00001;
    dht_per_hop = 0.0008;
  }

let default =
  {
    enable_pipeline = true;
    enable_dht = true;
    enable_resource_controls = true;
    cache_bytes = 256 * 1024 * 1024;
    script_max_fuel = 5_000_000;
    script_max_heap = 64 * 1024 * 1024;
    script_ttl = 300.0;
    negative_ttl = 60.0;
    dht_ttl = 300.0;
    control_interval = 1.0;
    control_timeout = 0.5;
    termination_penalty = 30.0;
    cpu_congestion_backlog = 0.08;
    memory_congestion_bytes = 128.0 *. 1024.0 *. 1024.0;
    bandwidth_congestion_bytes = 50.0 *. 1024.0 *. 1024.0;
    local_clients = [];
    integrity_key = None;
    misbehaving = false;
    lint_mode = `Permissive;
    enable_tracing = true;
    trace_capacity = 256;
    origin_timeout = 10.0;
    peer_timeout = 3.0;
    stale_if_error = 900.0;
    anti_entropy_interval = 30.0;
    enable_admission = true;
    (* Well above cpu_congestion_backlog: the Fig. 6 monitor handles
       resource hogs; admission control only kicks in when the host is
       drowning in sheer request volume. *)
    admission_target = 0.5;
    admission_interval = 0.5;
    admission_capacity = 64;
    breaker_failures = 3;
    breaker_error_rate = 0.5;
    breaker_window = 10.0;
    breaker_cooldown = 5.0;
    breaker_max_cooldown = 60.0;
    quarantine_max = 240.0;
    quarantine_decay = 60.0;
    health_report_interval = 1.0;
    enable_diffusion = false;
    (* Proactive: well below the 0.5 crossing the pressure signal hits
       at the admission delay target, so diffusion starts moving work
       before admission control starts shedding it. *)
    diffusion_low_water = 0.3;
    diffusion_high_water = 0.8;
    diffusion_fanout = 3;
    diffusion_offload_timeout = 3.0;
    diffusion_fetch_timeout = 2.0;
    diffusion_staleness = 3.0;
    program_registry_dir = None;
    costs = default_costs;
    seed = 7;
  }

let plain_proxy =
  {
    default with
    enable_pipeline = false;
    enable_dht = false;
    enable_resource_controls = false;
    enable_admission = false;
  }
