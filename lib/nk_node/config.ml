type costs = {
  proxy_base : float;
  cache_hit : float;
  context_create : float;
  context_reuse : float;
  tree_cached : float;
  parse_base : float;
  parse_per_byte : float;
  predicate_eval : float;
  handler_per_fuel : float;
  handler_invoke : float;
  heap_cpu_per_byte : float;
  concurrency_cpu : float;
  dht_per_hop : float;
}

type t = {
  enable_pipeline : bool;
  enable_dht : bool;
  enable_resource_controls : bool;
  cache_bytes : int;
  script_max_fuel : int;
  script_max_heap : int;
  script_ttl : float;
  negative_ttl : float;
  dht_ttl : float;
  control_interval : float;
  control_timeout : float;
  termination_penalty : float;
  cpu_congestion_backlog : float;
  memory_congestion_bytes : float;
  bandwidth_congestion_bytes : float;
  local_clients : string list;
  integrity_key : string option;
  misbehaving : bool;
  (* Admission-time static analysis of fetched scripts: [`Strict]
     refuses stages whose script has error-severity lint diagnostics,
     [`Permissive] only exports the counts, [`Off] skips analysis. *)
  lint_mode : [ `Off | `Permissive | `Strict ];
  enable_tracing : bool;
  trace_capacity : int;
  origin_timeout : float;
  peer_timeout : float;
  (* Tail tolerance. [request_deadline] mints a per-request budget at
     admission, propagated on every internal hop via the
     X-NaKika-Deadline header; 0 — the default — mints nothing, and a
     node still honors budgets stamped by upstream nodes.
     [enable_hedging] races a backup replica fetch against a peer
     fetch that has outlived the upstream's p95, governed by a token
     bucket refilled at [hedge_rate] per primary fetch (so hedges are
     bounded to that fraction of fetch load). [retry_budget_ratio] is
     the per-success refill of the per-upstream retry budgets; 0 — the
     default — disables budgeted retries and keeps the pre-existing
     retry behavior bit-identical. *)
  request_deadline : float;
  enable_hedging : bool;
  hedge_rate : float;
  retry_budget_ratio : float;
  stale_if_error : float;
  anti_entropy_interval : float;
  enable_admission : bool;
  admission_target : float;
  admission_interval : float;
  admission_capacity : int;
  breaker_failures : int;
  breaker_error_rate : float;
  breaker_window : float;
  breaker_cooldown : float;
  breaker_max_cooldown : float;
  quarantine_max : float;
  quarantine_decay : float;
  health_report_interval : float;
  enable_diffusion : bool;
  diffusion_low_water : float;
  diffusion_high_water : float;
  diffusion_fanout : int;
  diffusion_offload_timeout : float;
  diffusion_fetch_timeout : float;
  diffusion_staleness : float;
  (* Hotspot detection + Coral-style sloppy replication on the shared
     DHT index: keys whose decayed request rate crosses
     [hotspot_threshold] req/s get their announcements replicated onto
     [hotspot_replicas] nodes along the lookup funnel for
     [hotspot_ttl] seconds. Off by default so small-cluster behavior
     is unchanged. *)
  enable_hotspots : bool;
  hotspot_threshold : float;
  hotspot_replicas : int;
  hotspot_ttl : float;
  hotspot_halflife : float;
  (* Directory for the persistent program registry (marshalled ASTs
     keyed by script-body SHA-256). [None] — the default — leaves the
     registry disabled: no disk I/O, behavior identical to builds
     without it. *)
  program_registry_dir : string option;
  (* Per-site parameters lowered from a provisioning plan
     (lib/nk_provision). Each list is ordered: patterns ("host", "*",
     "*.suffix") resolve first-match, the order the plan declared them
     in. Empty lists — the default — leave behavior identical to a
     plan-free node. *)
  site_shares : (string * float) list;
      (* (pattern, fraction of admission_capacity) guaranteed slices *)
  site_quarantine : (string * float * float) list;
      (* (pattern, base, max) ban-window overrides *)
  site_fuel : (string * int) list; (* (pattern, per-request fuel cap) *)
  site_heap : (string * int) list; (* (pattern, script-heap cap, bytes) *)
  plan_hash : string option;
  (* SHA-256 (hex) of the plan text this config was lowered from; None
     for hand-built configs. Surfaced by [nakika stats --health]. *)
  costs : costs;
  seed : int;
}

let default_costs =
  {
    (* A plain proxy tops out at 603 rps on the reference machine
       (§5.1), i.e. ~1.66 ms of CPU per request: proxy handling plus
       cache retrieval (1.1 ms). *)
    proxy_base = 0.0007;
    cache_hit = 0.0008;
    context_create = 0.0015;
    context_reuse = 0.000003;
    tree_cached = 0.000004;
    parse_base = 0.00008;
    (* Large wall/site scripts take up to ~17.8 ms to parse+execute;
       our scripts are a few hundred bytes to a few KB. *)
    parse_per_byte = 0.0000012;
    predicate_eval = 0.000038;
    (* Match-1 runs at 294 rps => ~3.4 ms/request; the gap to proxy_base
       is filled by the two wall stages + site stage (predicate evals,
       context touches) and the handler fuel. *)
    handler_per_fuel = 0.0000003;
    (* Crossing into the scripting engine and back per event handler;
       with two walls and the Match-1 site stage this fills the gap
       between 603 rps (Proxy) and 294 rps (Match-1). *)
    handler_invoke = 0.0004;
    (* A memory bomb that allocates the full 64 MiB sandbox heap costs
       ~2 s of paging pressure on the 1 GB reference machine. *)
    heap_cpu_per_byte = 1e-8;
    (* Unmanaged overload (no admission control) degrades throughput:
       every concurrent request adds scheduling/paging pressure. *)
    concurrency_cpu = 0.00001;
    dht_per_hop = 0.0008;
  }

let default =
  {
    enable_pipeline = true;
    enable_dht = true;
    enable_resource_controls = true;
    cache_bytes = 256 * 1024 * 1024;
    script_max_fuel = 5_000_000;
    script_max_heap = 64 * 1024 * 1024;
    script_ttl = 300.0;
    negative_ttl = 60.0;
    dht_ttl = 300.0;
    control_interval = 1.0;
    control_timeout = 0.5;
    termination_penalty = 30.0;
    cpu_congestion_backlog = 0.08;
    memory_congestion_bytes = 128.0 *. 1024.0 *. 1024.0;
    bandwidth_congestion_bytes = 50.0 *. 1024.0 *. 1024.0;
    local_clients = [];
    integrity_key = None;
    misbehaving = false;
    lint_mode = `Permissive;
    enable_tracing = true;
    trace_capacity = 256;
    origin_timeout = 10.0;
    peer_timeout = 3.0;
    request_deadline = 0.0;
    enable_hedging = false;
    hedge_rate = 0.05;
    retry_budget_ratio = 0.0;
    stale_if_error = 900.0;
    anti_entropy_interval = 30.0;
    enable_admission = true;
    (* Well above cpu_congestion_backlog: the Fig. 6 monitor handles
       resource hogs; admission control only kicks in when the host is
       drowning in sheer request volume. *)
    admission_target = 0.5;
    admission_interval = 0.5;
    admission_capacity = 64;
    breaker_failures = 3;
    breaker_error_rate = 0.5;
    breaker_window = 10.0;
    breaker_cooldown = 5.0;
    breaker_max_cooldown = 60.0;
    quarantine_max = 240.0;
    quarantine_decay = 60.0;
    health_report_interval = 1.0;
    enable_diffusion = false;
    (* Proactive: well below the 0.5 crossing the pressure signal hits
       at the admission delay target, so diffusion starts moving work
       before admission control starts shedding it. *)
    diffusion_low_water = 0.3;
    diffusion_high_water = 0.8;
    diffusion_fanout = 3;
    diffusion_offload_timeout = 3.0;
    diffusion_fetch_timeout = 2.0;
    diffusion_staleness = 3.0;
    enable_hotspots = false;
    hotspot_threshold = 10.0;
    hotspot_replicas = 3;
    hotspot_ttl = 30.0;
    hotspot_halflife = 10.0;
    program_registry_dir = None;
    site_shares = [];
    site_quarantine = [];
    site_fuel = [];
    site_heap = [];
    plan_hash = None;
    costs = default_costs;
    seed = 7;
  }

let plain_proxy =
  {
    default with
    enable_pipeline = false;
    enable_dht = false;
    enable_resource_controls = false;
    enable_admission = false;
  }

(* The config checker core. Node construction refuses configs with
   findings, and the provisioning compiler (lib/nk_provision) runs the
   same function over every config it lowers — a plan that verifies can
   never produce a config a node would reject, because rejection and
   verification are literally the same checks.

   Checks are deliberately limited to values that are wrong under any
   interpretation (inverted orderings, non-positive capacities, negative
   timeouts); documented sentinel values (e.g. [stale_if_error = 0]
   disables degradation) stay legal. *)
let validate t =
  let problems = ref [] in
  let reject fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  let positive name v = if v <= 0.0 then reject "%s must be positive (got %g)" name v in
  let non_negative name v = if v < 0.0 then reject "%s must not be negative (got %g)" name v in
  if t.admission_capacity <= 0 then
    reject "admission_capacity must be positive (got %d)" t.admission_capacity;
  positive "admission_target" t.admission_target;
  positive "admission_interval" t.admission_interval;
  if t.script_max_fuel <= 0 then
    reject "script_max_fuel must be positive (got %d)" t.script_max_fuel;
  if t.script_max_heap <= 0 then
    reject "script_max_heap must be positive (got %d)" t.script_max_heap;
  if t.cache_bytes < 0 then reject "cache_bytes must not be negative (got %d)" t.cache_bytes;
  positive "origin_timeout" t.origin_timeout;
  positive "peer_timeout" t.peer_timeout;
  non_negative "request_deadline" t.request_deadline;
  if t.hedge_rate <= 0.0 || t.hedge_rate > 1.0 then
    reject "hedge_rate must be in (0, 1] (got %g)" t.hedge_rate;
  if t.retry_budget_ratio < 0.0 || t.retry_budget_ratio > 1.0 then
    reject "retry_budget_ratio must be in [0, 1] (got %g)" t.retry_budget_ratio;
  positive "control_interval" t.control_interval;
  non_negative "control_timeout" t.control_timeout;
  positive "script_ttl" t.script_ttl;
  non_negative "negative_ttl" t.negative_ttl;
  positive "dht_ttl" t.dht_ttl;
  non_negative "stale_if_error" t.stale_if_error;
  non_negative "anti_entropy_interval" t.anti_entropy_interval;
  non_negative "health_report_interval" t.health_report_interval;
  positive "termination_penalty" t.termination_penalty;
  positive "quarantine_max" t.quarantine_max;
  if t.termination_penalty > t.quarantine_max then
    reject "termination_penalty (%g) exceeds quarantine_max (%g)" t.termination_penalty
      t.quarantine_max;
  if t.breaker_failures <= 0 then
    reject "breaker_failures must be positive (got %d)" t.breaker_failures;
  if t.breaker_error_rate <= 0.0 || t.breaker_error_rate > 1.0 then
    reject "breaker_error_rate must be in (0, 1] (got %g)" t.breaker_error_rate;
  positive "breaker_window" t.breaker_window;
  positive "breaker_cooldown" t.breaker_cooldown;
  if t.breaker_cooldown > t.breaker_max_cooldown then
    reject "breaker_cooldown (%g) exceeds breaker_max_cooldown (%g)" t.breaker_cooldown
      t.breaker_max_cooldown;
  non_negative "diffusion_low_water" t.diffusion_low_water;
  if t.diffusion_low_water >= t.diffusion_high_water then
    reject "diffusion_low_water (%g) must be below diffusion_high_water (%g)"
      t.diffusion_low_water t.diffusion_high_water;
  if t.diffusion_high_water > 1.0 then
    reject "diffusion_high_water must be at most 1 (got %g)" t.diffusion_high_water;
  if t.diffusion_fanout <= 0 then
    reject "diffusion_fanout must be positive (got %d)" t.diffusion_fanout;
  positive "diffusion_offload_timeout" t.diffusion_offload_timeout;
  positive "diffusion_fetch_timeout" t.diffusion_fetch_timeout;
  positive "diffusion_staleness" t.diffusion_staleness;
  positive "hotspot_threshold" t.hotspot_threshold;
  if t.hotspot_replicas <= 0 then
    reject "hotspot_replicas must be positive (got %d)" t.hotspot_replicas;
  positive "hotspot_ttl" t.hotspot_ttl;
  positive "hotspot_halflife" t.hotspot_halflife;
  let share_total = ref 0.0 in
  List.iter
    (fun (pattern, f) ->
      if pattern = "" then reject "site_shares: empty site pattern";
      if f <= 0.0 || f > 1.0 then
        reject "site_shares[%s]: share must be in (0, 1] (got %g)" pattern f
      else begin
        share_total := !share_total +. f;
        if f *. float_of_int t.admission_capacity < 0.5 then
          reject "site_shares[%s]: share %g%% of capacity %d rounds to zero slots" pattern
            (100.0 *. f) t.admission_capacity
      end)
    t.site_shares;
  if !share_total > 1.0 +. 1e-9 then
    reject "site_shares: declared shares sum to %g%% of capacity (over 100%%)"
      (100.0 *. !share_total);
  List.iter
    (fun (pattern, base, max_window) ->
      if pattern = "" then reject "site_quarantine: empty site pattern";
      if base <= 0.0 then
        reject "site_quarantine[%s]: base window must be positive (got %g)" pattern base;
      if base > max_window then
        reject "site_quarantine[%s]: base window (%g) exceeds max (%g)" pattern base
          max_window)
    t.site_quarantine;
  List.iter
    (fun (pattern, fuel) ->
      if fuel <= 0 then reject "site_fuel[%s]: fuel cap must be positive (got %d)" pattern fuel)
    t.site_fuel;
  List.iter
    (fun (pattern, heap) ->
      if heap <= 0 then reject "site_heap[%s]: heap cap must be positive (got %d)" pattern heap)
    t.site_heap;
  List.rev !problems
