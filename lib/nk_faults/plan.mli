(** Deterministic fault-injection plans.

    A {!t} is a declarative schedule of network and host failures that the
    simulator consults at delivery time: per-link drop probability, latency
    spikes, bidirectional partitions with scheduled heal times, host
    crash/restart windows, and slow or failing origin servers.

    The plan owns a splittable PRNG ({!Nk_util.Prng}) seeded at creation,
    so the same seed and the same sequence of queries reproduce the exact
    same fault schedule — no wall clock, no global randomness. Hosts are
    identified by their simulator host {e names}, and all times are
    absolute simulation times, which keeps this library independent of
    [nk_sim] (it sits below it in the dependency order).

    Probabilistic rules ([drop_link], [spike_link]) consume PRNG draws
    only when a matching rule exists, so adding unrelated rules does not
    perturb the fate of other links. *)

type t

val create : ?seed:int -> unit -> t
(** Fresh, empty plan. Default seed 7. *)

val seed : t -> int

(** {1 Scheduling faults} *)

val drop_link :
  t -> ?src:string -> ?dst:string -> probability:float -> unit -> unit
(** Every message on a matching directed link is dropped with the given
    probability. Omitting [src] ([dst]) matches any source (destination).
    Multiple matching rules combine: the message is dropped if any rule
    fires. *)

val spike_link :
  t -> ?src:string -> ?dst:string -> probability:float -> extra:float -> unit -> unit
(** With the given probability, a message on a matching link suffers
    [extra] seconds of additional one-way latency. *)

val partition : t -> a:string list -> b:string list -> at:float -> heal:float -> unit
(** Between times [at] (inclusive) and [heal] (exclusive), all traffic
    between any host in [a] and any host in [b] — both directions — is
    dropped deterministically. *)

val crash : t -> host:string -> at:float -> ?restart:float -> unit -> unit
(** The host is down from [at] (inclusive) until [restart] (exclusive);
    omitting [restart] means it never comes back. Crashing clears the
    host's CPU queue, and callbacks captured before the crash must not
    fire after restart (the host's {!incarnation} changes). *)

val fail_origin :
  t -> host:string -> at:float -> until:float -> ?status:int -> unit -> unit
(** The origin server on [host] answers every request with an error
    (default status 503) between [at] and [until]. *)

val slow_origin : t -> host:string -> at:float -> until:float -> factor:float -> unit
(** The origin server's CPU cost per request is multiplied by [factor]
    between [at] and [until]. *)

(** {1 Queries (called by the simulator)} *)

val link_fate : t -> now:float -> src:string -> dst:string -> [ `Deliver of float | `Drop ]
(** Fate of one message sent now from [src] to [dst]: [`Drop], or
    [`Deliver extra] with [extra >= 0.] seconds of added latency.
    Messages to a down destination are delivered (and discarded at the
    receiver by the epoch guard) rather than dropped here, so in-flight
    semantics stay with the simulator. *)

val is_down : t -> now:float -> string -> bool
(** Is the host inside a crash window at [now]? *)

val incarnation : t -> now:float -> string -> int
(** Number of crashes of this host with [at <= now]. A callback captured
    at incarnation [i] must not run once the incarnation has advanced. *)

val restart_time : t -> now:float -> string -> float option
(** If the host is down at [now], the absolute time it restarts
    ([None] if it never does). *)

val crash_times : t -> (string * float) list
(** All scheduled [(host, at)] crash instants, for the simulator to turn
    into crash events (CPU-queue clearing). *)

val origin_state : t -> now:float -> host:string -> [ `Ok | `Fail of int | `Slow of float ]
(** What the origin server on [host] should do with a request at [now]. *)

val describe : t -> string
(** One-line human summary of the schedule (rule counts), for logs. *)
