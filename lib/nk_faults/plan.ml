type link_rule = {
  src : string option;
  dst : string option;
  probability : float;
  extra : float; (* 0. for pure drops *)
  kind : [ `Drop | `Spike ];
}

type partition_rule = { a : string list; b : string list; at : float; heal : float }

type crash_rule = { chost : string; cat : float; restart : float option }

type origin_rule = {
  ohost : string;
  oat : float;
  ountil : float;
  action : [ `Fail of int | `Slow of float ];
}

type t = {
  plan_seed : int;
  rng : Nk_util.Prng.t;
  mutable links : link_rule list;
  mutable partitions : partition_rule list;
  mutable crashes : crash_rule list;
  mutable origins : origin_rule list;
}

let create ?(seed = 7) () =
  {
    plan_seed = seed;
    rng = Nk_util.Prng.create seed;
    links = [];
    partitions = [];
    crashes = [];
    origins = [];
  }

let seed t = t.plan_seed

let drop_link t ?src ?dst ~probability () =
  t.links <- { src; dst; probability; extra = 0.; kind = `Drop } :: t.links

let spike_link t ?src ?dst ~probability ~extra () =
  t.links <- { src; dst; probability; extra; kind = `Spike } :: t.links

let partition t ~a ~b ~at ~heal = t.partitions <- { a; b; at; heal } :: t.partitions

let crash t ~host ~at ?restart () =
  t.crashes <- { chost = host; cat = at; restart } :: t.crashes

let fail_origin t ~host ~at ~until ?(status = 503) () =
  t.origins <- { ohost = host; oat = at; ountil = until; action = `Fail status } :: t.origins

let slow_origin t ~host ~at ~until ~factor =
  t.origins <- { ohost = host; oat = at; ountil = until; action = `Slow factor } :: t.origins

let matches opt name = match opt with None -> true | Some n -> String.equal n name

let partitioned t ~now ~src ~dst =
  List.exists
    (fun p ->
      now >= p.at && now < p.heal
      &&
      let src_a = List.mem src p.a and src_b = List.mem src p.b in
      let dst_a = List.mem dst p.a and dst_b = List.mem dst p.b in
      (src_a && dst_b) || (src_b && dst_a))
    t.partitions

let link_fate t ~now ~src ~dst =
  if partitioned t ~now ~src ~dst then `Drop
  else
    (* Draw from the PRNG once per matching probabilistic rule — and only
       then — so unrelated rules never shift each other's streams. *)
    let rec fate extra = function
      | [] -> `Deliver extra
      | r :: rest ->
          if matches r.src src && matches r.dst dst && r.probability > 0. then
            let hit = Nk_util.Prng.float t.rng 1.0 < r.probability in
            match r.kind with
            | `Drop -> if hit then `Drop else fate extra rest
            | `Spike -> fate (if hit then extra +. r.extra else extra) rest
          else fate extra rest
    in
    fate 0. (List.rev t.links)

let is_down t ~now host =
  List.exists
    (fun c ->
      String.equal c.chost host && now >= c.cat
      && match c.restart with None -> true | Some r -> now < r)
    t.crashes

let incarnation t ~now host =
  List.fold_left
    (fun n c -> if String.equal c.chost host && c.cat <= now then n + 1 else n)
    0 t.crashes

let restart_time t ~now host =
  List.fold_left
    (fun acc c ->
      if
        String.equal c.chost host && now >= c.cat
        && match c.restart with None -> true | Some r -> now < r
      then
        match (c.restart, acc) with
        | None, _ -> acc
        | Some r, None -> Some r
        | Some r, Some prev -> Some (Float.max r prev)
      else acc)
    None t.crashes

let crash_times t = List.rev_map (fun c -> (c.chost, c.cat)) t.crashes

let origin_state t ~now ~host =
  let rec find = function
    | [] -> `Ok
    | r :: rest ->
        if String.equal r.ohost host && now >= r.oat && now < r.ountil then
          (r.action :> [ `Ok | `Fail of int | `Slow of float ])
        else find rest
  in
  find (List.rev t.origins)

let describe t =
  Printf.sprintf
    "fault plan seed=%d: %d link rule(s), %d partition(s), %d crash(es), %d origin rule(s)"
    t.plan_seed (List.length t.links) (List.length t.partitions) (List.length t.crashes)
    (List.length t.origins)
