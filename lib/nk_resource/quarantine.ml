type entry = {
  mutable strikes : int;
  mutable expiry : float;
  mutable anchor : float; (* decay bookkeeping: strikes shrink per full
                             [decay] period elapsed after [anchor] *)
}

type t = {
  base : float;
  max_window : float;
  decay : float;
  site_params : (string * (float * float)) list;
  (* ordered (pattern, (base, max)) overrides from a provisioning plan;
     first match wins, like the admission share table *)
  clock : unit -> float;
  metrics : Nk_telemetry.Metrics.t option;
  sites : (string, entry) Hashtbl.t;
  mutable bans : int;
}

let create ?(base = 30.0) ?(max_window = 240.0) ?(decay = 60.0) ?(site_params = []) ~clock
    ?metrics () =
  {
    base;
    max_window;
    decay;
    site_params =
      List.map (fun (pattern, base, max_window) -> (pattern, (base, max_window))) site_params;
    clock;
    metrics;
    sites = Hashtbl.create 8;
    bans = 0;
  }

let params t ~site =
  match
    List.find_map
      (fun (pattern, p) -> if Shares.matches ~pattern site then Some p else None)
      t.site_params
  with
  | Some p -> p
  | None -> (t.base, t.max_window)

let decay_strikes t e now =
  if t.decay > 0.0 && e.strikes > 0 && now > e.anchor then begin
    let periods = int_of_float ((now -. e.anchor) /. t.decay) in
    if periods > 0 then begin
      e.strikes <- max 0 (e.strikes - periods);
      e.anchor <- e.anchor +. (float_of_int periods *. t.decay)
    end
  end

let punish t ~site =
  let now = t.clock () in
  let e =
    match Hashtbl.find_opt t.sites site with
    | Some e -> e
    | None ->
      let e = { strikes = 0; expiry = 0.0; anchor = now } in
      Hashtbl.add t.sites site e;
      e
  in
  decay_strikes t e now;
  let base, max_window = params t ~site in
  let window = Float.min max_window (base *. (2.0 ** float_of_int e.strikes)) in
  e.strikes <- e.strikes + 1;
  e.expiry <- now +. window;
  (* Good behaviour only starts counting once the ban has expired. *)
  e.anchor <- e.expiry;
  t.bans <- t.bans + 1;
  (match t.metrics with
   | Some m ->
     Nk_telemetry.Metrics.incr m ~labels:[ ("site", site) ] "quarantine.bans";
     Nk_telemetry.Metrics.observe m "quarantine.window" window
   | None -> ());
  window

let is_banned t ~site =
  match Hashtbl.find_opt t.sites site with
  | None -> false
  | Some e -> t.clock () < e.expiry

let remaining t ~site =
  match Hashtbl.find_opt t.sites site with
  | None -> 0.0
  | Some e -> Float.max 0.0 (e.expiry -. t.clock ())

let strikes t ~site =
  match Hashtbl.find_opt t.sites site with
  | None -> 0
  | Some e ->
    decay_strikes t e (t.clock ());
    e.strikes

let active t =
  let now = t.clock () in
  Hashtbl.fold
    (fun site e acc -> if now < e.expiry then (site, e.expiry) :: acc else acc)
    t.sites []
  |> List.sort compare

let bans t = t.bans

let forgive t ~site = Hashtbl.remove t.sites site
