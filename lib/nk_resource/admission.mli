(** Admission control and load shedding.

    Under sustained overload, queueing requests unboundedly makes every
    client pay a timeout; shedding early with a cheap [503 Retry-After]
    keeps the node's goodput at its capacity and bounds queueing delay
    (C3PO's proactive computation-congestion control, CoDel's
    delay-not-length signal).

    The controller watches the queueing delay the caller measures at
    each arrival (for a Na Kika node, the host's CPU backlog):

    - delay above [target] for a full [interval] flips the node into a
      {e shedding} state; the first arrival that sees delay back below
      the target flips it out (hysteresis, so bursts don't shed).
    - while shedding, new arrivals are rejected with a [Retry-After]
      estimate of when the backlog will have drained.
    - independently, the queue is bounded at [capacity] concurrent
      admitted requests, with per-site fair shares: once the queue is
      half full, a site holding more than its fair slice is shed even
      if the node is not yet in delay overload — one hot site cannot
      starve the rest. By default a site's slice is
      [capacity / active sites]; with a {!Shares} table (lowered from a
      provisioning plan) declared sites get their reserved fraction of
      capacity and undeclared sites split the unreserved remainder.
      When shares are declared, slice enforcement is sticky: after the
      queue fills it keeps binding for one [interval] even if the queue
      momentarily drains, so synchronized completion batches cannot let
      a greedy site refill past its declared slice.

    Every decision is exported ([admission.sheds] counter labeled by
    site and reason, [admission.queue_delay] histogram). The clock is
    injected so the controller runs on simulated time. *)

type t

type verdict = Admitted | Shed of { retry_after : float; reason : string }

val create :
  ?target:float ->
  ?interval:float ->
  ?capacity:int ->
  ?rate_window:float ->
  ?shares:Shares.t ->
  clock:(unit -> float) ->
  ?metrics:Nk_telemetry.Metrics.t ->
  unit ->
  t
(** Defaults: 0.5 s delay target, 0.5 s detection interval, 64-slot
    queue, 5 s shed-rate reporting window, no declared shares (every
    active site splits the queue evenly). *)

val fair_share : t -> site:string -> int
(** The slice of [capacity] the controller currently guarantees [site]
    under contention (exposed for tests and [nakika plan explain]). *)

val offer : t -> site:string -> queue_delay:float -> verdict
(** Decide one arrival. On [Admitted] the request occupies a queue slot
    until the caller invokes {!release}; [Shed] carries the reason
    ([overload], [queue-full], [fair-share]) and a retry hint in
    seconds. *)

val release : t -> site:string -> unit
(** The admitted request finished (any outcome); frees its slot. *)

val reset : t -> unit
(** Drop all occupancy and shedding state (the host crashed: admitted
    requests died with it and must not haunt the queue after restart). *)

val queue_length : t -> int

val site_occupancy : t -> site:string -> int

val shedding : t -> bool
(** Is the controller currently in the delay-overload shedding state? *)

val sheds : t -> int

val admits : t -> int

val shed_rate : t -> float
(** Fraction of arrivals shed over the current reporting window (falls
    back to the last completed window when the current one is empty) —
    the load signal nodes publish to the redirector. *)
