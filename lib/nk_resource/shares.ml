type t = (string * float) list (* ordered: first match wins *)

let create entries = entries

let empty = []

let is_empty t = t = []

let matches ~pattern site =
  pattern = "*" || pattern = site
  || String.length pattern > 2
     && String.length site > String.length pattern - 2
     && String.sub pattern 0 2 = "*."
     &&
     (* "*.suffix" covers any host strictly under ".suffix". *)
     let suffix = String.sub pattern 1 (String.length pattern - 1) in
     String.sub site (String.length site - String.length suffix) (String.length suffix)
     = suffix

let fraction t ~site =
  List.find_map (fun (pattern, f) -> if matches ~pattern site then Some f else None) t

let reserved t = List.fold_left (fun acc (_, f) -> acc +. f) 0.0 t

let to_list t = t
