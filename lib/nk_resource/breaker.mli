(** Circuit breakers for upstream fetches.

    A dead upstream (origin server, cooperative-cache peer) should cost
    one probe per recovery window, not a full timeout per request. The
    breaker watches the outcomes the caller reports and walks the
    classic three-state machine:

    - {b closed}: requests flow; consecutive failures (or a windowed
      error rate over a minimum sample count) trip it open.
    - {b open}: requests are rejected immediately with the time left
      until the next probe; the caller degrades (stale-if-error, 503
      Retry-After) instead of waiting for a timeout.
    - {b half-open}: after the cooldown, exactly one probe is admitted.
      Success closes the breaker and resets the backoff; failure
      re-opens it with a doubled (capped) cooldown.

    Time comes from an injected clock so breakers run on the simulated
    clock and in unit tests alike. With [metrics], every trip and probe
    is counted (["breaker.opens"], ["breaker.probes"]) labeled by the
    upstream name. *)

type t

type state = Closed | Open | Half_open

val create :
  name:string ->
  ?failure_threshold:int ->
  ?error_rate:float ->
  ?min_samples:int ->
  ?window:float ->
  ?cooldown:float ->
  ?max_cooldown:float ->
  clock:(unit -> float) ->
  ?metrics:Nk_telemetry.Metrics.t ->
  unit ->
  t
(** [name] identifies the upstream in metrics labels. Defaults: trip
    after 3 consecutive failures, or a 50% error rate over >= 8 samples
    in a 10 s window; 5 s cooldown doubling up to 60 s. *)

val acquire : t -> [ `Proceed | `Reject of float ]
(** Ask to send one request. [`Reject retry] means the breaker is open;
    [retry] is the seconds until the next probe window. [`Proceed] from
    a half-open breaker claims the single probe slot — the caller must
    report {!success} or {!failure} for the state machine to advance. *)

val success : t -> unit

val failure : t -> unit

val state : t -> state

val state_to_string : state -> string

val name : t -> string

val opens : t -> int
(** Times the breaker tripped open (including probe failures). *)

val probes : t -> int
(** Half-open probe slots granted. *)
