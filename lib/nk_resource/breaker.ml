type state = Closed | Open | Half_open

type t = {
  name : string;
  failure_threshold : int;
  error_rate : float;
  min_samples : int;
  window : float;
  cooldown : float;
  max_cooldown : float;
  clock : unit -> float;
  metrics : Nk_telemetry.Metrics.t option;
  mutable state : state;
  mutable consecutive : int;
  mutable window_start : float;
  mutable window_successes : int;
  mutable window_failures : int;
  mutable open_until : float;
  mutable next_cooldown : float;
  mutable probing : bool;
  mutable opens : int;
  mutable probes : int;
}

let create ~name ?(failure_threshold = 3) ?(error_rate = 0.5) ?(min_samples = 8)
    ?(window = 10.0) ?(cooldown = 5.0) ?(max_cooldown = 60.0) ~clock ?metrics () =
  {
    name;
    failure_threshold;
    error_rate;
    min_samples;
    window;
    cooldown;
    max_cooldown;
    clock;
    metrics;
    state = Closed;
    consecutive = 0;
    window_start = clock ();
    window_successes = 0;
    window_failures = 0;
    open_until = 0.0;
    next_cooldown = cooldown;
    probing = false;
    opens = 0;
    probes = 0;
  }

let name t = t.name

let state t = t.state

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let opens t = t.opens

let probes t = t.probes

let incr_metric t counter =
  match t.metrics with
  | Some m -> Nk_telemetry.Metrics.incr m ~labels:[ ("upstream", t.name) ] counter
  | None -> ()

let roll_window t now =
  if now -. t.window_start >= t.window then begin
    t.window_start <- now;
    t.window_successes <- 0;
    t.window_failures <- 0
  end

(* Open with the current backoff, then double it (capped); a successful
   probe resets the backoff to the base cooldown. *)
let trip t now =
  t.state <- Open;
  t.probing <- false;
  t.opens <- t.opens + 1;
  t.open_until <- now +. t.next_cooldown;
  t.next_cooldown <- Float.min t.max_cooldown (t.next_cooldown *. 2.0);
  incr_metric t "breaker.opens"

let acquire t =
  let now = t.clock () in
  match t.state with
  | Closed -> `Proceed
  | Open ->
    if now >= t.open_until then begin
      (* The cooldown elapsed: half-open, admit exactly one probe. *)
      t.state <- Half_open;
      t.probing <- true;
      t.probes <- t.probes + 1;
      incr_metric t "breaker.probes";
      `Proceed
    end
    else `Reject (t.open_until -. now)
  | Half_open ->
    if t.probing then `Reject t.cooldown
    else begin
      t.probing <- true;
      t.probes <- t.probes + 1;
      incr_metric t "breaker.probes";
      `Proceed
    end

let success t =
  let now = t.clock () in
  roll_window t now;
  t.window_successes <- t.window_successes + 1;
  match t.state with
  | Closed -> t.consecutive <- 0
  | Half_open | Open ->
    (* The probe came back healthy — or a request admitted before the
       trip did, which is just as good a signal. Close and forgive the
       accumulated backoff. *)
    t.state <- Closed;
    t.consecutive <- 0;
    t.probing <- false;
    t.next_cooldown <- t.cooldown

let failure t =
  let now = t.clock () in
  roll_window t now;
  t.window_failures <- t.window_failures + 1;
  match t.state with
  | Closed ->
    t.consecutive <- t.consecutive + 1;
    let samples = t.window_successes + t.window_failures in
    let rate = float_of_int t.window_failures /. float_of_int (max 1 samples) in
    if
      t.consecutive >= t.failure_threshold
      || (samples >= t.min_samples && rate >= t.error_rate)
    then trip t now
  | Half_open ->
    (* The probe failed: back to open with a doubled window. *)
    trip t now
  | Open -> () (* late failure from a request admitted before the trip *)
