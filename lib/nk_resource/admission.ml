type verdict = Admitted | Shed of { retry_after : float; reason : string }

type t = {
  target : float;
  interval : float;
  capacity : int;
  rate_window : float;
  shares : Shares.t;
  clock : unit -> float;
  metrics : Nk_telemetry.Metrics.t option;
  occupancy : (string, int ref) Hashtbl.t;
  mutable total : int;
  mutable above_since : float option;
  mutable shedding_ : bool;
  mutable sheds : int;
  mutable admits : int;
  mutable window_start : float;
  mutable window_arrivals : int;
  mutable window_sheds : int;
  mutable last_shed_rate : float;
  (* Shares are enforced with hysteresis: once the queue fills (or a
     capacity shed fires), declared slices keep binding for a full
     control interval even if the queue momentarily drains. Without
     this, a batch of synchronized completions would let a greedy site
     grab slots past its slice during the refill — and hold them. *)
  mutable contended_until : float;
}

let create ?(target = 0.5) ?(interval = 0.5) ?(capacity = 64) ?(rate_window = 5.0)
    ?(shares = Shares.empty) ~clock ?metrics () =
  {
    target;
    interval;
    capacity;
    rate_window;
    shares;
    clock;
    metrics;
    occupancy = Hashtbl.create 8;
    total = 0;
    above_since = None;
    shedding_ = false;
    sheds = 0;
    admits = 0;
    window_start = clock ();
    window_arrivals = 0;
    window_sheds = 0;
    last_shed_rate = 0.0;
    contended_until = 0.0;
  }

let queue_length t = t.total

let sheds t = t.sheds

let admits t = t.admits

let shedding t = t.shedding_

let site_occupancy t ~site =
  match Hashtbl.find_opt t.occupancy site with Some r -> !r | None -> 0

let roll_rate_window t now =
  if now -. t.window_start >= t.rate_window then begin
    t.last_shed_rate <-
      (if t.window_arrivals = 0 then 0.0
       else float_of_int t.window_sheds /. float_of_int t.window_arrivals);
    t.window_start <- now;
    t.window_arrivals <- 0;
    t.window_sheds <- 0
  end

let shed_rate t =
  roll_rate_window t (t.clock ());
  if t.window_arrivals > 0 then
    float_of_int t.window_sheds /. float_of_int t.window_arrivals
  else t.last_shed_rate

(* Each site's fair slice of the queue. Without a share table it is
   [capacity / active sites] (sites with requests currently queued, the
   arriving one included). With one — a provisioning plan lowered into
   [Shares] — a declared site gets its reserved fraction of capacity
   whether or not it is busy, and undeclared sites split whatever the
   declarations leave unreserved. *)
let fair_share t ~site =
  let declared = Shares.fraction t.shares ~site in
  match declared with
  | Some f ->
    max 1 (int_of_float ((f *. float_of_int t.capacity) +. 0.5))
  | None ->
    let unreserved =
      if Shares.is_empty t.shares then float_of_int t.capacity
      else
        Float.max 0.0 (float_of_int t.capacity *. (1.0 -. Shares.reserved t.shares))
    in
    let active_undeclared =
      Hashtbl.fold
        (fun s r acc ->
          if !r > 0 && s <> site && Shares.fraction t.shares ~site:s = None then acc + 1
          else acc)
        t.occupancy 0
      + 1
    in
    max 1 (int_of_float unreserved / active_undeclared)

let slot t site =
  match Hashtbl.find_opt t.occupancy site with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.occupancy site r;
    r

let offer t ~site ~queue_delay =
  let now = t.clock () in
  roll_rate_window t now;
  t.window_arrivals <- t.window_arrivals + 1;
  (match t.metrics with
   | Some m -> Nk_telemetry.Metrics.observe m "admission.queue_delay" queue_delay
   | None -> ());
  (* CoDel-style detection: transient bursts above the target are fine;
     only delay that stays above it for a full interval flips the node
     into shedding, and the first dip back below the target flips it
     out. *)
  if queue_delay < t.target then begin
    t.above_since <- None;
    t.shedding_ <- false
  end
  else begin
    match t.above_since with
    | None -> t.above_since <- Some now
    | Some since -> if now -. since >= t.interval then t.shedding_ <- true
  end;
  let occ = slot t site in
  if t.total >= t.capacity then t.contended_until <- now +. t.interval;
  let contended =
    2 * t.total >= t.capacity
    || ((not (Shares.is_empty t.shares)) && now < t.contended_until)
  in
  let reason =
    if t.total >= t.capacity then Some "queue-full"
    else if t.shedding_ then Some "overload"
    else if contended && !occ + 1 > fair_share t ~site then
      (* The queue is contended and this site is already over its
         slice: shed it before it starves everyone else. *)
      Some "fair-share"
    else None
  in
  match reason with
  | None ->
    t.admits <- t.admits + 1;
    incr occ;
    t.total <- t.total + 1;
    Admitted
  | Some reason ->
    t.sheds <- t.sheds + 1;
    t.window_sheds <- t.window_sheds + 1;
    (match t.metrics with
     | Some m ->
       Nk_telemetry.Metrics.incr m
         ~labels:[ ("site", site); ("reason", reason) ]
         "admission.sheds"
     | None -> ());
    (* Tell the client when the backlog should have drained back to the
       target — cheap for us, actionable for it. *)
    let retry_after = Float.max t.interval (queue_delay -. t.target) in
    Shed { retry_after; reason }

let reset t =
  Hashtbl.reset t.occupancy;
  t.total <- 0;
  t.above_since <- None;
  t.shedding_ <- false

let release t ~site =
  (match Hashtbl.find_opt t.occupancy site with
   | Some r when !r > 0 -> decr r
   | _ -> ());
  if t.total > 0 then t.total <- t.total - 1
