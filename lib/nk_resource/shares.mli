(** The per-site capacity-share table a provisioning plan compiles
    into.

    A plan rule like [site "video.example" { share >= 30% }] becomes an
    ordered [(pattern, fraction)] entry here; {!Admission} consults the
    table to size each site's guaranteed slice of the admission queue.
    Declared sites keep their reservation whether or not they are
    currently active (that is what "guaranteed" means); undeclared
    sites split whatever the declarations leave unreserved.

    Patterns are the plan language's site patterns: an exact host name,
    ["*"] (every site), or ["*.suffix"] (any host under [suffix]).
    Resolution is first-match in declaration order — the same order the
    static verifier uses for its shadowing pass, so a rule the verifier
    calls unreachable really is unreachable here. *)

type t

val create : (string * float) list -> t
(** [create entries] builds a table from ordered [(pattern, fraction)]
    pairs, fractions in [(0, 1]]. The list order is the match order. *)

val empty : t

val is_empty : t -> bool

val matches : pattern:string -> string -> bool
(** Does [pattern] cover this site? Exact match, ["*"], or
    ["*.suffix"] suffix match (the site ["suffix"] itself is not
    covered by ["*.suffix"], only hosts under it). *)

val fraction : t -> site:string -> float option
(** The declared share for [site]: the first matching entry's
    fraction, [None] when no entry matches. *)

val reserved : t -> float
(** Sum of all declared fractions (what feasibility bounds by 1.0). *)

val to_list : t -> (string * float) list
(** The entries, in match order. *)
