(** Site quarantine with escalation and recovery.

    §3.2 promises that penalized sites can "recover from past
    penalization"; a permanent termination list breaks that contract.
    Instead, each offense bans the site for an escalating window —
    [base * 2^strikes], capped at [max_window] — and the strike count
    decays by one for every full [decay] period the site behaves after
    its ban expires. A site that misbehaved once is serving again after
    one base window and back to a clean slate shortly after; a site
    that re-offends every time it returns converges to the maximum
    ban.

    Time is injected; with [metrics], every ban is counted
    (["quarantine.bans"], site-labeled) and the granted window sizes
    are recorded in the ["quarantine.window"] histogram. *)

type t

val create :
  ?base:float ->
  ?max_window:float ->
  ?decay:float ->
  ?site_params:(string * float * float) list ->
  clock:(unit -> float) ->
  ?metrics:Nk_telemetry.Metrics.t ->
  unit ->
  t
(** Defaults: 30 s base ban doubling up to 240 s; strikes decay per
    60 s of good behaviour. [decay <= 0.0] disables decay (strikes only
    ever grow). [site_params] is an ordered [(pattern, base, max)] list
    of per-site overrides lowered from a provisioning plan
    ([site "..." { quarantine base ... max ... }]); patterns resolve
    first-match via {!Shares.matches}. *)

val params : t -> site:string -> float * float
(** The (base, max) ban window the site would be given, overrides
    applied (exposed for tests and [nakika plan explain]). *)

val punish : t -> site:string -> float
(** Record an offense; returns the ban window granted (seconds). *)

val is_banned : t -> site:string -> bool

val remaining : t -> site:string -> float
(** Seconds left on the site's ban; 0 when not banned. *)

val strikes : t -> site:string -> int
(** Current (decayed) strike count. *)

val active : t -> (string * float) list
(** Currently banned sites with their absolute expiry times, sorted. *)

val bans : t -> int
(** Total offenses recorded. *)

val forgive : t -> site:string -> unit
(** Drop all state for the site (operator override). *)
