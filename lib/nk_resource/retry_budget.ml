(* Retry budgets: per-upstream token buckets that refill in proportion
   to successes, so retries are bounded by the upstream's demonstrated
   ability to answer. Under a healthy upstream almost every request
   succeeds and the occasional retry always finds a token; when the
   upstream starts failing, the refill dries up with it and the retry
   rate decays to the bucket instead of amplifying the failure — the
   circuit breakers then trip on the genuine error rate, not on a storm
   of our own making. *)

type bucket = { mutable tokens : float }

type t = {
  ratio : float; (* tokens added per observed success *)
  cap : float; (* bucket ceiling (also the initial balance) *)
  buckets : (string, bucket) Hashtbl.t; (* keyed by upstream *)
  metrics : Nk_telemetry.Metrics.t option;
}

let default_cap = 8.0

let create ~ratio ?(cap = default_cap) ?metrics () =
  if ratio <= 0.0 then invalid_arg "Retry_budget.create: ratio must be positive";
  if cap < 1.0 then invalid_arg "Retry_budget.create: cap must be at least 1";
  { ratio; cap; buckets = Hashtbl.create 8; metrics }

(* Buckets start full: a cold upstream gets the benefit of the doubt
   for its first few retries, then has to earn the rest. *)
let bucket_for t upstream =
  match Hashtbl.find_opt t.buckets upstream with
  | Some b -> b
  | None ->
    let b = { tokens = t.cap } in
    Hashtbl.add t.buckets upstream b;
    b

let success t ~upstream =
  let b = bucket_for t upstream in
  b.tokens <- Float.min t.cap (b.tokens +. t.ratio)

let tokens t ~upstream = (bucket_for t upstream).tokens

(* One retry costs one token. A refused retry is the feature working,
   not an error — but it is counted, because a high exhaustion rate is
   how an operator tells "bounded retries" from "no retries". *)
let try_retry t ~upstream =
  let b = bucket_for t upstream in
  if b.tokens >= 1.0 then begin
    b.tokens <- b.tokens -. 1.0;
    true
  end
  else begin
    (match t.metrics with
     | Some m ->
       Nk_telemetry.Metrics.incr m ~labels:[ ("upstream", upstream) ]
         "retry.budget_exhausted"
     | None -> ());
    false
  end
