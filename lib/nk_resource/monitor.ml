type t = {
  accounting : Accounting.t;
  is_congested : final:bool -> Resource.t -> bool;
  throttle : site:string -> fraction:float -> resource:Resource.t -> unit;
  unthrottle : Resource.t -> unit;
  terminate : site:string -> unit;
  pending : (Resource.t, (string * float) list) Hashtbl.t;
  (* usage-ranked sites from the begin phase, largest first *)
  mutable terminations : int;
  mutable throttle_events : int;
  events : Nk_telemetry.Events.t option;
  metrics : Nk_telemetry.Metrics.t option;
}

let create ~accounting ~is_congested ~throttle ~unthrottle ~terminate ?events ?metrics () =
  {
    accounting;
    is_congested;
    throttle;
    unthrottle;
    terminate;
    pending = Hashtbl.create 8;
    terminations = 0;
    throttle_events = 0;
    events;
    metrics;
  }

(* Every enforcement decision leaves a structured event (and a labeled
   counter) naming the offending site, so a bench or operator can audit
   exactly why traffic was refused. *)
let emit t ~counter ~event ~site ~attrs =
  (match t.metrics with
   | Some m -> Nk_telemetry.Metrics.incr m ~labels:[ ("site", site) ] counter
   | None -> ());
  match t.events with
  | Some e -> Nk_telemetry.Events.record e ~attrs:(("site", site) :: attrs) event
  | None -> ()

let begin_control t resource =
  let congested = t.is_congested ~final:false resource in
  if congested then begin
    Accounting.close_resource_interval t.accounting resource ~congested:true;
    let ranked =
      Accounting.active_sites t.accounting
      |> List.map (fun site -> (site, Accounting.usage t.accounting ~site resource))
      |> List.filter (fun (_, u) -> u > 0.0)
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    Hashtbl.replace t.pending resource ranked;
    let total = List.fold_left (fun acc (_, u) -> acc +. u) 0.0 ranked in
    let throttled =
      List.map
        (fun (site, u) ->
          let fraction = if total > 0.0 then u /. total else 0.0 in
          t.throttle ~site ~fraction ~resource;
          t.throttle_events <- t.throttle_events + 1;
          emit t ~counter:"monitor.throttles" ~event:"throttle" ~site
            ~attrs:
              [
                ("resource", Resource.to_string resource);
                ("fraction", Printf.sprintf "%.3f" fraction);
              ];
          (site, fraction))
        ranked
    in
    `Congested throttled
  end
  else begin
    (* Close the interval regardless: for renewables this folds a zero
       (consumption under no congestion never counts, and the average
       decays so past penalization is forgotten); for nonrenewables the
       actual consumption folds in. *)
    Accounting.close_resource_interval t.accounting resource ~congested:false;
    `Clear
  end

let finish_control t resource =
  let ranked = match Hashtbl.find_opt t.pending resource with Some r -> r | None -> [] in
  Hashtbl.remove t.pending resource;
  (* Restoration is as auditable as enforcement: every site throttled in
     the begin phase gets a matching [unthrottle] event when the clamp
     is lifted. *)
  let unthrottled () =
    t.unthrottle resource;
    List.iter
      (fun (site, _) ->
        emit t ~counter:"monitor.unthrottles" ~event:"unthrottle" ~site
          ~attrs:[ ("resource", Resource.to_string resource) ])
      ranked;
    `Unthrottled
  in
  if t.is_congested ~final:true resource then begin
    match ranked with
    | (site, _) :: _ ->
      t.terminate ~site;
      t.terminations <- t.terminations + 1;
      emit t ~counter:"monitor.terminations" ~event:"terminate" ~site
        ~attrs:[ ("resource", Resource.to_string resource) ];
      `Terminated site
    | [] -> unthrottled ()
  end
  else unthrottled ()

let terminations t = t.terminations

let throttle_events t = t.throttle_events
