(** Hedged-request governor (tail tolerance).

    A token bucket refilled per primary fetch at [rate] (default 5%)
    and spent one token per hedge, so backup fetches are bounded to
    that fraction of total fetch load by construction — hedging can
    never become the storm it is meant to prevent. Also computes the
    hedge delay: the upstream's p95 latency from an
    {!Nk_telemetry.Metrics.Histogram}, with a fallback until enough
    samples exist. Issue/win/cancel events land in the
    [hedge.issued] / [hedge.wins] / [hedge.cancelled] counters. *)

type t

val default_rate : float

val create :
  ?rate:float -> ?burst:float -> ?metrics:Nk_telemetry.Metrics.t -> unit -> t
(** [rate] must be in (0, 1]; [burst] defaults to [max 1 (100 * rate)]
    (5 tokens at the default rate) and is also the initial balance. *)

val note_primary : t -> unit
(** Record one primary fetch: earn [rate] tokens (capped at burst). *)

val try_hedge : t -> bool
(** Spend one token and count [hedge.issued]; [false] when the bucket
    is dry (no hedge this time). *)

val won : t -> unit
(** The backup answered first: count [hedge.wins]. *)

val cancelled : t -> unit
(** The primary answered first and the backup's (eventual) response
    was discarded: count [hedge.cancelled]. *)

val tokens : t -> float

val delay :
  ?histogram:Nk_telemetry.Metrics.Histogram.h ->
  ?min_samples:int ->
  fallback:float ->
  unit ->
  float
(** The hedge delay: p95 of the histogram when it holds at least
    [min_samples] (default 20) observations, else [fallback]. *)
