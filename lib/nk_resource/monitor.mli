(** The congestion-control loop of Fig. 6.

    For each tracked resource, CONTROL runs in two halves separated by a
    timeout that lets throttling take effect:

    - [begin_control]: when the resource is congested, fold interval
      usage into the averages, rank the active sites by usage, and
      throttle each proportionally to its contribution; when the
      resource is uncongested but nonrenewable, just fold usage.
    - [finish_control]: when congestion persists *despite* the
      throttling (the [final] congestion check), terminate the largest
      contributor's pipelines; otherwise restore normal operation.

    The caller (the Na Kika node) schedules the two halves on the
    simulated clock and supplies the enforcement callbacks. *)

type t

val create :
  accounting:Accounting.t ->
  is_congested:(final:bool -> Resource.t -> bool) ->
  throttle:(site:string -> fraction:float -> resource:Resource.t -> unit) ->
  unthrottle:(Resource.t -> unit) ->
  terminate:(site:string -> unit) ->
  ?events:Nk_telemetry.Events.t ->
  ?metrics:Nk_telemetry.Metrics.t ->
  unit ->
  t
(** With [events]/[metrics], every throttle, termination, and
    restoration decision is recorded as a structured
    ["throttle"]/["terminate"]/["unthrottle"] event carrying the
    affected site, the resource, and (for throttles) the fraction —
    plus site-labeled ["monitor.throttles"] / ["monitor.terminations"]
    / ["monitor.unthrottles"] counters. *)

val begin_control : t -> Resource.t -> [ `Congested of (string * float) list | `Clear ]
(** The list pairs each throttled site with its throttle fraction. *)

val finish_control : t -> Resource.t -> [ `Terminated of string | `Unthrottled ]

val terminations : t -> int

val throttle_events : t -> int
