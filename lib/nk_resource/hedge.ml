(* Hedged requests: when a replica fetch has outlived the upstream's
   p95, the straggler is probably a straggler — issue one backup fetch
   to the next live replica and take whichever answers first. The
   governor below is what keeps the cure from becoming the disease: a
   token bucket refilled per *primary* fetch at [rate] (5% by default)
   bounds hedges to that fraction of total fetch load by construction,
   which pairs exactly with firing at the p95 — about 5% of fetches
   ever get slow enough to want one. *)

type t = {
  rate : float; (* tokens earned per primary fetch *)
  burst : float; (* bucket ceiling *)
  mutable tokens : float;
  metrics : Nk_telemetry.Metrics.t option;
}

let default_rate = 0.05

let create ?(rate = default_rate) ?burst ?metrics () =
  if rate <= 0.0 || rate > 1.0 then invalid_arg "Hedge.create: rate must be in (0, 1]";
  let burst = match burst with Some b -> b | None -> Float.max 1.0 (rate *. 100.0) in
  if burst < 1.0 then invalid_arg "Hedge.create: burst must be at least 1";
  { rate; burst; tokens = burst; metrics }

let tokens t = t.tokens

let incr t name =
  match t.metrics with Some m -> Nk_telemetry.Metrics.incr m name | None -> ()

let note_primary t = t.tokens <- Float.min t.burst (t.tokens +. t.rate)

let try_hedge t =
  if t.tokens >= 1.0 then begin
    t.tokens <- t.tokens -. 1.0;
    incr t "hedge.issued";
    true
  end
  else false

let won t = incr t "hedge.wins"

let cancelled t = incr t "hedge.cancelled"

(* The hedge delay: the upstream's observed p95 latency, read from the
   node's fetch-latency histogram. Below [min_samples] observations the
   quantile is noise, so a [fallback] (typically a fraction of the
   per-hop timeout) stands in until the histogram has seen enough. *)
let delay ?histogram ?(min_samples = 20) ~fallback () =
  match histogram with
  | Some h
    when Nk_telemetry.Metrics.Histogram.count h >= min_samples ->
    let p95 = Nk_telemetry.Metrics.Histogram.quantile h 95.0 in
    if p95 > 0.0 then p95 else fallback
  | _ -> fallback
