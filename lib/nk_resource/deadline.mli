(** Per-request deadline budgets (tail tolerance).

    Minted once at admission from [Config.request_deadline], carried as
    an absolute expiry against the simulated clock, and propagated on
    every internal hop via the {!header} request header (remaining
    seconds at send time). Downstream hops clamp their per-hop timeouts
    to the remaining budget and shed work whose budget is below their
    queue-delay estimate — computing an answer nobody will wait for
    only steals capacity from requests that can still be saved. *)

type t

val header : string
(** ["X-NaKika-Deadline"] — remaining budget in seconds, stamped on
    outgoing internal requests. *)

val reason_header : string
(** ["X-NaKika-Timeout"] — machine-readable reason on synthesized
    504s (also used by the cluster client-timeout path). *)

val mint : now:float -> budget:float -> t

val of_request : now:float -> Nk_http.Message.request -> t option
(** Parse a carried budget from the {!header} header; [None] when the
    header is absent or malformed. A non-positive value parses to an
    already-expired budget (the receiver must still answer 504). *)

val admit : now:float -> budget:float -> Nk_http.Message.request -> t option
(** The tighter of a freshly minted budget ([budget <= 0] mints
    nothing) and any budget the request already carries; [None] when
    neither exists — the request runs deadline-free, exactly as before
    this layer existed. *)

val stamp : t -> now:float -> Nk_http.Message.request -> unit
(** Write the remaining budget into the {!header} header. *)

val remaining : t -> now:float -> float

val expired : t -> now:float -> bool

val expires : t -> float
(** The absolute expiry instant. *)

val clamp : t -> now:float -> float -> float
(** [clamp t ~now timeout] = [min timeout (max 0 remaining)] — the
    effective per-hop timeout under this budget. *)

val expired_response :
  ?retry_after:float -> reason:string -> unit -> Nk_http.Message.response
(** An immediate 504 with the reason in {!reason_header} and a
    [Retry-After] hint. *)
