(** Per-upstream retry budgets (tail tolerance).

    A token bucket per upstream key ("origin:<site>", "peer", ...):
    each observed success refills [ratio] tokens (capped), each retry
    spends one. Healthy upstreams earn their retries; failing ones see
    the budget dry up instead of a retry storm, leaving the circuit
    breakers to trip on the genuine error rate. Refused retries
    increment the [retry.budget_exhausted] counter (labeled by
    upstream). *)

type t

val default_cap : float

val create :
  ratio:float -> ?cap:float -> ?metrics:Nk_telemetry.Metrics.t -> unit -> t
(** [ratio] is the refill per success and must be positive; [cap]
    (default {!default_cap}) is the bucket ceiling and initial
    balance, at least 1. *)

val success : t -> upstream:string -> unit

val try_retry : t -> upstream:string -> bool
(** Spend one token; [false] (and a [retry.budget_exhausted] count)
    when the bucket is dry. *)

val tokens : t -> upstream:string -> float
