(* Per-request deadline budgets. A budget is minted once, at the first
   Na Kika node a request reaches (from [Config.request_deadline]), and
   from then on only shrinks: every internal hop re-derives the
   remaining budget from the simulated clock and ships it in the
   [X-NaKika-Deadline] header, so origin, peer, and offload fetches run
   under [min (per-hop timeout) remaining] and a receiver can tell that
   the client has already stopped waiting. Represented as an absolute
   expiry instant — subtraction against the clock is the whole
   decrement logic, so there is no state to update as time passes. *)

type t = { expires : float }

let header = "X-NaKika-Deadline"

let reason_header = "X-NaKika-Timeout"

let expires t = t.expires

let mint ~now ~budget = { expires = now +. budget }

let remaining t ~now = t.expires -. now

let expired t ~now = remaining t ~now <= 0.0

let clamp t ~now timeout = Float.min timeout (Float.max 0.0 (remaining t ~now))

(* The header value is the budget still remaining at send time, in
   seconds — relative, not absolute, because the nodes share no wall
   clock (the simulator's clock stands in for per-node clocks). *)
let of_request ~now (req : Nk_http.Message.request) =
  match Nk_http.Message.req_header req header with
  | None -> None
  | Some v -> (
    match float_of_string_opt (String.trim v) with
    | Some rem when Float.is_finite rem -> Some { expires = now +. rem }
    | Some _ | None -> None)

let stamp t ~now req =
  Nk_http.Message.set_req_header req header (Printf.sprintf "%.6f" (remaining t ~now))

(* Admission-time combination: the tighter of the node's own minted
   budget ([budget <= 0] disables minting) and whatever an upstream
   Na Kika node already stamped on the request. *)
let admit ~now ~budget req =
  let minted = if budget > 0.0 then Some (mint ~now ~budget) else None in
  match (minted, of_request ~now req) with
  | None, None -> None
  | (Some _ as d), None | None, (Some _ as d) -> d
  | Some a, Some b -> Some { expires = Float.min a.expires b.expires }

(* An expired budget fails fast and machine-readably: 504 with the
   shedding point in [X-NaKika-Timeout] and a Retry-After hint, the
   same shape the admission/quarantine 503 paths use. *)
let expired_response ?(retry_after = 1.0) ~reason () =
  let resp = Nk_http.Message.error_response 504 in
  Nk_http.Message.set_resp_header resp reason_header reason;
  Nk_http.Message.set_resp_header resp "Retry-After"
    (string_of_int (max 1 (int_of_float (Float.ceil retry_after))));
  resp
