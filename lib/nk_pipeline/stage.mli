(** A scripting-pipeline stage: the unit of composition (§3.1).

    A stage is produced by fetching and evaluating a script; evaluation
    registers policy objects, from which the matcher's decision tree is
    built (§4). The stage keeps the scripting context its handlers
    close over; nodes cache stages keyed by script URL until the
    script's HTTP expiration. *)

type t

val url : t -> string

val context : t -> Nk_script.Interp.ctx

val policies : t -> Nk_policy.Policy.t list

val tree : t -> Nk_policy.Decision_tree.t

val of_script :
  url:string ->
  host:Nk_vocab.Hostcall.t ->
  ?max_fuel:int ->
  ?max_heap_bytes:int ->
  ?seed:int ->
  ?on_compile_cache:([ `Hit | `Miss ] -> unit) ->
  ?lint:[ `Off | `Permissive | `Strict ] ->
  ?on_lint:(Nk_analysis.Analysis.report -> unit) ->
  source:string ->
  unit ->
  (t, string) result
(** Build a fresh context, install the platform vocabularies and the
    [Policy] constructor, evaluate the script (through
    {!Nk_script.Compile}'s program cache; [on_compile_cache] reports
    whether this source was already compiled), and compile the decision
    tree. Returns [Error] on parse or runtime failure (such a script
    publishes no policies).

    Before anything runs, the source is statically analyzed through
    {!Nk_analysis.Analysis.analyze_source} (SHA-256-cached like the
    compile cache) and the report is handed to [on_lint].  Under
    [~lint:`Strict] a report with error-severity diagnostics makes
    [of_script] return [Error] without executing the script; the
    default [`Permissive] only reports; [`Off] skips analysis. *)

val of_program :
  url:string ->
  host:Nk_vocab.Hostcall.t ->
  ?max_fuel:int ->
  ?max_heap_bytes:int ->
  ?seed:int ->
  Nk_script.Compile.program ->
  (t, string) result
(** Like {!of_script} but from an already-compiled program (resolved
    from the compile cache by SHA-256 — the diffusion receiver's path,
    where the source is not available). Skips lint: the node that
    compiled the program ran the admission-time analysis. *)

val of_policies : url:string -> ctx:Nk_script.Interp.ctx -> Nk_policy.Policy.t list -> t
(** Assemble a stage from pre-built policies (used by tests and
    OCaml-authored stages). *)

val select : t -> Nk_http.Message.request -> Nk_policy.Policy.t option
(** Closest-match policy for the request via the decision tree. *)

val acquire : t -> unit
(** Take the stage's handler lock, suspending the calling cothread
    while another pipeline is executing inside this stage's context.
    Uncontended acquisition never suspends (callable outside a
    cothread). *)

val release : t -> unit
(** Hand the lock to the next waiting pipeline, if any. *)
