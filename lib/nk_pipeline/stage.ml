type t = {
  url : string;
  ctx : Nk_script.Interp.ctx;
  policies : Nk_policy.Policy.t list;
  tree : Nk_policy.Decision_tree.t;
  (* Handlers share the stage's scripting context (its globals include
     the per-request Request/Response objects), so concurrent pipelines
     must not interleave inside it: a FIFO lock serializes handler
     execution per stage, the moral equivalent of the prototype running
     each pipeline in its own process (§4). *)
  mutable busy : bool;
  waiters : (unit -> unit) Queue.t;
}

let url t = t.url

let context t = t.ctx

let policies t = t.policies

let tree t = t.tree

let of_policies ~url ~ctx policies =
  {
    url;
    ctx;
    policies;
    tree = Nk_policy.Decision_tree.build policies;
    busy = false;
    waiters = Queue.create ();
  }

let of_script ~url ~host ?max_fuel ?max_heap_bytes ?seed ?on_compile_cache
    ?(lint = `Permissive) ?on_lint ~source () =
  (* Admission-time static analysis, cached by SHA-256 of the source
     alongside the compile cache.  [`Strict] refuses scripts with
     error-severity diagnostics before any code runs; [`Permissive]
     still analyzes (so observers see the counts) but only reports. *)
  let lint_gate =
    match lint with
    | `Off -> Ok ()
    | (`Permissive | `Strict) as mode -> (
      let report = Nk_analysis.Analysis.analyze_source source in
      (match on_lint with Some f -> f report | None -> ());
      match
        ( mode,
          List.find_opt
            (fun (d : Nk_analysis.Diagnostic.t) ->
              d.Nk_analysis.Diagnostic.severity = Nk_analysis.Diagnostic.Error)
            report.Nk_analysis.Analysis.diagnostics )
      with
      | `Strict, Some d ->
        Error
          (Printf.sprintf "%s: rejected by lint: %d error(s), first at %d:%d: [%s] %s"
             url
             (Nk_analysis.Analysis.errors report)
             d.Nk_analysis.Diagnostic.pos.Nk_script.Ast.line
             d.Nk_analysis.Diagnostic.pos.Nk_script.Ast.col
             d.Nk_analysis.Diagnostic.code d.Nk_analysis.Diagnostic.message)
      | _ -> Ok ())
  in
  match lint_gate with
  | Error _ as e -> e
  | Ok () -> (
    let ctx = Nk_script.Interp.create ?max_fuel ?max_heap_bytes () in
    Nk_vocab.Platform_v.install_all host ?seed ctx;
    Nk_vocab.Eval_v.install ctx;
    let registry = Nk_policy.Script_bridge.create_registry () in
    Nk_policy.Script_bridge.install registry ctx;
    (* Compiled path: the program is fetched from (or compiled into) the
       process-wide SHA-256-keyed cache, so many stages loading the same
       wall/site script share one compilation. *)
    match Nk_script.Compile.run_string ?on_cache:on_compile_cache ctx source with
    | _ -> Ok (of_policies ~url ~ctx (Nk_policy.Script_bridge.policies registry))
    | exception Nk_script.Value.Script_error msg -> Error (Printf.sprintf "%s: %s" url msg)
    | exception Nk_script.Parser.Parse_error (msg, pos) ->
      Error (Printf.sprintf "%s: parse error at %d:%d: %s" url pos.Nk_script.Ast.line pos.col msg)
    | exception Nk_script.Lexer.Lex_error (msg, pos) ->
      Error (Printf.sprintf "%s: lex error at %d:%d: %s" url pos.Nk_script.Ast.line pos.col msg)
    | exception Nk_script.Interp.Resource_exhausted msg ->
      Error (Printf.sprintf "%s: %s" url msg))

let of_program ~url ~host ?max_fuel ?max_heap_bytes ?seed program =
  (* Diffusion receivers resolve a script by SHA-256 against the
     compile cache and never see the source, so there is nothing to
     lint here — the node that first compiled the program already ran
     the admission-time analysis. *)
  let ctx = Nk_script.Interp.create ?max_fuel ?max_heap_bytes () in
  Nk_vocab.Platform_v.install_all host ?seed ctx;
  Nk_vocab.Eval_v.install ctx;
  let registry = Nk_policy.Script_bridge.create_registry () in
  Nk_policy.Script_bridge.install registry ctx;
  match Nk_script.Compile.run ctx program with
  | _ -> Ok (of_policies ~url ~ctx (Nk_policy.Script_bridge.policies registry))
  | exception Nk_script.Value.Script_error msg -> Error (Printf.sprintf "%s: %s" url msg)
  | exception Nk_script.Interp.Resource_exhausted msg ->
    Error (Printf.sprintf "%s: %s" url msg)

let select t req = Nk_policy.Decision_tree.find_closest t.tree req

let acquire t =
  if t.busy then
    (* Suspend this pipeline's cothread until the current holder
       releases; the release hands the lock over directly. *)
    Nk_util.Cothread.await (fun k -> Queue.add k t.waiters)
  else t.busy <- true

let release t =
  match Queue.take_opt t.waiters with
  | Some k -> k () (* stays busy; ownership passes to the waiter *)
  | None -> t.busy <- false
