type failure = Script_failure of string | Resources of string | Killed

type source = From_script of string | From_origin | From_failure of failure

type outcome = {
  response : Nk_http.Message.response;
  source : source;
  stages_matched : int;
  handlers_run : int;
  fuel : int;
  heap : int;
}

let well_known_client_wall = "http://nakika.net/clientwall.js"

let well_known_server_wall = "http://nakika.net/serverwall.js"

let site_script_url (req : Nk_http.Message.request) =
  Printf.sprintf "http://%s/nakika.js" (Nk_http.Url.site req.Nk_http.Message.url)

let default_stages req =
  [ well_known_client_wall; site_script_url req; well_known_server_wall ]

(* A handler may also *return* a response object instead of calling
   Request.respond — "the onRequest event handler ... returns either a
   request for continued processing or a response" (§3.1). *)
let value_to_response v =
  match v with
  | Nk_script.Value.Vobj o -> (
    match Nk_script.Value.obj_get o "status" with
    | Nk_script.Value.Vnum status ->
      let content_type =
        match Nk_script.Value.obj_get o "contentType" with
        | Nk_script.Value.Vstr ct -> ct
        | _ -> "text/html"
      in
      let body =
        match Nk_script.Value.obj_get o "body" with
        | Nk_script.Value.Vbytes b -> Nk_script.Value.bytes_to_string b
        | Nk_script.Value.Vundefined -> ""
        | v -> Nk_script.Value.to_string v
      in
      (* A [headers] sub-object carries arbitrary response headers;
         [contentType] stays authoritative for Content-Type. *)
      let extra_headers =
        match Nk_script.Value.obj_get o "headers" with
        | Nk_script.Value.Vobj h ->
          List.filter_map
            (fun name ->
              if String.lowercase_ascii name = "content-type" then None
              else
                match Nk_script.Value.obj_get h name with
                | Nk_script.Value.Vundefined | Nk_script.Value.Vnull -> None
                | v -> Some (name, Nk_script.Value.to_string v))
            (Nk_script.Value.obj_keys h)
        | _ -> []
      in
      Some
        (Nk_http.Message.response ~status:(int_of_float status)
           ~headers:(("Content-Type", content_type) :: extra_headers)
           ~body ())
    | _ -> None)
  | _ -> None

let run_handler stage ~this_request ~response handler =
  (* One pipeline at a time inside a stage's context: the Request and
     Response globals are per-request state, and a handler may suspend
     mid-execution on a sub-fetch. *)
  Stage.acquire stage;
  let result =
    let ctx = Stage.context stage in
    Nk_vocab.Http_v.install_request ctx this_request;
    let sink = Option.map (Nk_vocab.Http_v.install_response ctx) response in
    match Nk_script.Interp.apply ctx handler [] with
    | result ->
      (match (sink, response) with
       | Some sink, Some resp -> Nk_vocab.Http_v.apply_writes sink resp
       | _ -> ());
      Ok (value_to_response result)
    | exception Nk_vocab.Http_v.Terminate_request resp -> Ok (Some resp)
    | exception Nk_script.Value.Script_error msg -> Error (Script_failure msg)
    | exception Nk_script.Interp.Resource_exhausted msg -> Error (Resources msg)
    | exception Nk_script.Interp.Terminated -> Error Killed
  in
  Stage.release stage;
  result

let failure_response = function
  | Script_failure _ -> Nk_http.Message.error_response 500
  | Resources _ -> Nk_http.Message.error_response 503
  | Killed -> Nk_http.Message.error_response 503

let execute ~load_stage ~fetch ?initial_stages ?(max_stages = 64) ?telemetry req =
  let initial = match initial_stages with Some s -> s | None -> default_stages req in
  let fuel = ref 0 and heap = ref 0 and matched = ref 0 and handlers = ref 0 in
  let charge_stage stage before_fuel before_heap =
    let ctx = Stage.context stage in
    fuel := !fuel + (Nk_script.Interp.fuel_used ctx - before_fuel);
    heap := !heap + max 0 (Nk_script.Interp.heap_used ctx - before_heap)
  in
  (* Optional causal tracing: one "policy-match" span per stage
     selection and, per handler invocation, a "stage" span with an
     "interp" child carrying the fuel/heap the script consumed. *)
  let in_span ?parent name attrs f =
    match telemetry with
    | None -> f None
    | Some (tracer, root) ->
      let parent = match parent with Some p -> p | None -> root in
      Nk_telemetry.Tracer.with_span tracer ~parent ~attrs name (fun s -> f (Some s))
  in
  let set_attr span key value =
    match span with Some s -> Nk_telemetry.Tracer.set_attr s key value | None -> ()
  in
  let select stage =
    in_span "policy-match" [ ("stage", Stage.url stage) ] (fun span ->
        let policy = Stage.select stage req in
        set_attr span "matched" (string_of_bool (policy <> None));
        policy)
  in
  let invoke stage ~phase ~response handler =
    incr handlers;
    let ctx = Stage.context stage in
    let f0 = Nk_script.Interp.fuel_used ctx and h0 = Nk_script.Interp.heap_used ctx in
    let result =
      in_span "stage" [ ("stage", Stage.url stage); ("phase", phase) ] (fun stage_span ->
          let result =
            in_span ?parent:stage_span "interp" [] (fun interp_span ->
                let r = run_handler stage ~this_request:req ~response handler in
                set_attr interp_span "fuel"
                  (string_of_int (Nk_script.Interp.fuel_used ctx - f0));
                set_attr interp_span "heap"
                  (string_of_int (max 0 (Nk_script.Interp.heap_used ctx - h0)));
                r)
          in
          (match result with
           | Error _ -> set_attr stage_span "error" "true"
           | Ok _ -> ());
          result)
    in
    charge_stage stage f0 h0;
    result
  in
  let finish response source =
    {
      response;
      source;
      stages_matched = !matched;
      handlers_run = !handlers;
      fuel = !fuel;
      heap = !heap;
    }
  in
  (* Forward pass: schedule stages and run onRequest handlers. *)
  let backward = ref [] in
  let rec forward stages budget =
    match stages with
    | [] -> `Fetch
    | _ when budget <= 0 -> `Fail (Script_failure "stage scheduling limit exceeded")
    | stage_url :: rest -> (
      match load_stage stage_url with
      | None -> forward rest budget (* missing script: stage is skipped *)
      | Some stage -> (
        match select stage with
        | None -> forward rest budget
        | Some policy -> (
          incr matched;
          backward := (stage, policy) :: !backward;
          let next = policy.Nk_policy.Policy.next_stages in
          let continue () = forward (next @ rest) (budget - 1) in
          match policy.Nk_policy.Policy.on_request with
          | None -> continue ()
          | Some handler -> (
            match invoke stage ~phase:"onRequest" ~response:None handler with
            | Ok (Some response) -> `Respond (response, Stage.url stage)
            | Ok None -> continue ()
            | Error failure -> `Fail failure))))
  in
  match forward initial max_stages with
  | `Fail failure -> finish (failure_response failure) (From_failure failure)
  | (`Fetch | `Respond _) as fwd -> (
    let response, source =
      match fwd with
      | `Respond (response, stage_url) -> (response, From_script stage_url)
      | `Fetch -> (fetch req, From_origin)
    in
    (* Backward pass: onResponse handlers in reverse scheduling order. *)
    let rec backward_pass = function
      | [] -> finish response source
      | (stage, policy) :: rest -> (
        match policy.Nk_policy.Policy.on_response with
        | None -> backward_pass rest
        | Some handler -> (
          match invoke stage ~phase:"onResponse" ~response:(Some response) handler with
          | Ok _ -> backward_pass rest
          | Error failure -> finish (failure_response failure) (From_failure failure)))
    in
    backward_pass !backward)
