(** EXECUTE-PIPELINE (Fig. 4).

    The forward list starts as client wall, site script, server wall;
    each popped stage selects its closest-match policy, runs
    [onRequest], and may prepend dynamically scheduled stages
    ([nextStages]) or produce a response (reversing direction). If the
    forward pass completes without a response, the original resource is
    fetched; then the backward stack runs the matched [onResponse]
    handlers in reverse order. *)

type failure =
  | Script_failure of string (** runtime error in a handler *)
  | Resources of string (** fuel/heap sandbox limit *)
  | Killed (** pipeline terminated by the resource monitor *)

type source =
  | From_script of string (** a stage's onRequest produced the response *)
  | From_origin (** the content handler fetched it *)
  | From_failure of failure

type outcome = {
  response : Nk_http.Message.response;
  source : source;
  stages_matched : int; (** stages whose predicate selection found a policy *)
  handlers_run : int; (** event handlers actually invoked *)
  fuel : int; (** interpreter fuel consumed by this pipeline *)
  heap : int; (** script heap bytes allocated by this pipeline *)
}

val well_known_client_wall : string
(** "http://nakika.net/clientwall.js" *)

val well_known_server_wall : string

val site_script_url : Nk_http.Message.request -> string
(** "http://<site>/nakika.js" — the robots.txt-style per-site policy
    location. *)

val default_stages : Nk_http.Message.request -> string list
(** The three default stages in pop order: client wall, site script,
    server wall. *)

val execute :
  load_stage:(string -> Stage.t option) ->
  fetch:(Nk_http.Message.request -> Nk_http.Message.response) ->
  ?initial_stages:string list ->
  ?max_stages:int ->
  ?telemetry:Nk_telemetry.Tracer.t * Nk_telemetry.Tracer.span ->
  Nk_http.Message.request ->
  outcome
(** [load_stage] returns [None] for sites that publish no script (the
    stage is skipped); [fetch] is the content handler (proxy cache +
    origin). [max_stages] (default 64) bounds dynamic scheduling so a
    misbehaving script cannot loop the scheduler forever.

    With [telemetry = (tracer, request_span)], the pipeline records
    child spans under the request: ["policy-match"] per stage
    selection, and per handler invocation a ["stage"] span with an
    ["interp"] child whose attributes carry the fuel and heap the
    script consumed. *)

val run_handler :
  Stage.t ->
  this_request:Nk_http.Message.request ->
  response:Nk_http.Message.response option ->
  Nk_script.Value.t ->
  (Nk_http.Message.response option, failure) result
(** Run one event handler in the stage's context with the message
    globals installed; exposed for tests and the extension examples. *)
