let script =
  {|
var p = new Policy();
p.onResponse = function() {
  var ct = Response.contentType;
  var isNkp = (ct == "text/nkp");
  if (!isNkp && Request.path.indexOf(".nkp") < 0) { return; }
  var body = "";
  var chunk;
  while ((chunk = Response.read()) != null) { body += chunk; }
  var out = "";
  var i = 0;
  while (i < body.length) {
    var start = body.indexOf("<?nkp", i);
    if (start < 0) { out += body.substring(i); break; }
    out += body.substring(i, start);
    var stop = body.indexOf("?>", start);
    if (stop < 0) { break; }
    var code = body.substring(start + 5, stop);
    var result = evalScript(code);
    if (result != null && result != undefined) { out += String(result); }
    i = stop + 2;
  }
  Response.setHeader("Content-Type", "text/html");
  Response.write(out);
}
p.register();
|}

let render ctx source =
  let buf = Buffer.create (String.length source) in
  let rec go i =
    match Nk_util.Strutil.index_sub source ~sub:"<?nkp" ~start:i with
    | None -> Buffer.add_substring buf source i (String.length source - i)
    | Some start -> (
      Buffer.add_substring buf source i (start - i);
      match Nk_util.Strutil.index_sub source ~sub:"?>" ~start:(start + 5) with
      | None -> ()
      | Some stop ->
        let code = String.sub source (start + 5) (stop - start - 5) in
        (match Nk_script.Compile.run_string ctx code with
         | Nk_script.Value.Vundefined | Nk_script.Value.Vnull -> ()
         | v -> Buffer.add_string buf (Nk_script.Value.to_string v));
        go (stop + 2))
  in
  go 0;
  Buffer.contents buf
