type t = { chunks : string list; length : int }

let empty = { chunks = []; length = 0 }

let of_string s = if s = "" then empty else { chunks = [ s ]; length = String.length s }

let of_chunks cs =
  let cs = List.filter (fun c -> c <> "") cs in
  { chunks = cs; length = List.fold_left (fun n c -> n + String.length c) 0 cs }

let to_string t =
  (* Single-chunk bodies (whole responses, transcoded images) are the
     overwhelmingly common case; return the chunk itself rather than
     paying String.concat's copy. Chunks are immutable strings, so the
     alias is safe. *)
  match t.chunks with [] -> "" | [ c ] -> c | cs -> String.concat "" cs

let length t = t.length

let is_empty t = t.length = 0

let chunks t = t.chunks

let append a b =
  if a.length = 0 then b
  else if b.length = 0 then a
  else { chunks = a.chunks @ b.chunks; length = a.length + b.length }

type reader = { mutable remaining : string list; mutable offset : int }

let reader t = { remaining = t.chunks; offset = 0 }

let read r =
  match r.remaining with
  | [] -> None
  | chunk :: rest ->
    let part =
      if r.offset = 0 then chunk
      else String.sub chunk r.offset (String.length chunk - r.offset)
    in
    r.remaining <- rest;
    r.offset <- 0;
    Some part

let read_size r n =
  if n <= 0 then invalid_arg "Body.read_size: non-positive size";
  match r.remaining with
  | [] -> None
  | chunk :: rest ->
    let avail = String.length chunk - r.offset in
    if avail <= n then begin
      let part = String.sub chunk r.offset avail in
      r.remaining <- rest;
      r.offset <- 0;
      Some part
    end
    else begin
      let part = String.sub chunk r.offset n in
      r.offset <- r.offset + n;
      Some part
    end
