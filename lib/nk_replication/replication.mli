(** Script-style hard-state replication (§3.3), after Gao et al.

    Each node pairs a local {!Store} with the {!Message_bus}. An update
    is accepted at any node, applied per the site's strategy, and
    propagated; receivers resolve conflicts with a per-key version
    ordering (Lamport counter, node name as tie-break) — optimistic
    last-writer-wins — or through a caller-supplied resolver. The
    [Primary] strategy forwards updates through a primary node first,
    giving serializability. *)

type strategy =
  | Optimistic (** apply locally, propagate to all nodes *)
  | Primary of string (** route through the named node for serializability *)

type node

val attach :
  bus:Message_bus.t ->
  name:string ->
  host:Nk_sim.Net.host ->
  store:Store.t ->
  ?resolve:(key:string -> current:string option -> proposed:string -> string) ->
  site:string ->
  strategy ->
  node
(** Join the replication group for [site]. [resolve] overrides
    last-writer-wins for concurrent versions. *)

val update : node -> key:string -> value:string -> bool
(** Accept an update at this node. Under [Optimistic] (or at the
    primary itself) the write applies locally and broadcasts; false
    means the local quota refused it. Under [Primary] at a non-primary
    replica the proposal is forwarded to the primary, which serializes,
    applies and broadcasts it — the local replica converges when the
    broadcast arrives. *)

val read : node -> key:string -> string option

val delete : node -> key:string -> unit
(** Deletions replicate like writes (tombstone value). *)

val keys : node -> prefix:string -> string list
(** Live (non-tombstoned) keys at this replica, sorted. *)

val name : node -> string

val applied_updates : node -> int
(** Local + remote updates applied at this node. *)

val start_anti_entropy : node -> ?interval:float -> unit -> unit
(** Every [interval] (default 30 s) simulated seconds, re-broadcast all
    keys this replica knows at their current versions. Receivers ignore
    versions they already have, so the cycle is idempotent; it is the
    recovery path for updates the bus dead-lettered during a partition
    that outlasted the retry budget. Runs as daemon events — it never
    keeps {!Nk_sim.Sim.run} alive. *)
