(** The reliable messaging service (the JORAM stand-in, §3.3/§4).

    Topic-based publish/subscribe with exactly-once, per-sender-in-order
    delivery over the network simulator. Each subscription carries its
    own handler, so one member (a Na Kika node) can process several
    sites' update streams independently. Subscriptions are durable in
    the JORAM sense: a member that subscribes after messages were
    published receives the topic's backlog, so late-joining replicas
    converge. *)

type t

val create : Nk_sim.Net.t -> t

val attach : t -> name:string -> host:Nk_sim.Net.host -> unit
(** Join the bus (idempotent). *)

val subscribe :
  t ->
  name:string ->
  topic:string ->
  handler:(payload:string -> from:string -> unit) ->
  unit
(** Subscribe the member to a topic. The handler runs at (simulated)
    delivery time; re-subscribing replaces the handler. The topic's
    backlog is replayed to the new subscriber. Raises
    [Invalid_argument] if [name] never attached. *)

val publish : t -> from:string -> topic:string -> payload:string -> unit
(** Deliver to every *other* subscribed member, in per-sender order. *)

val delivered : t -> int
(** Total messages delivered so far (for tests and benches). *)

val metrics : t -> Nk_telemetry.Metrics.t
(** The bus's own registry: ["bus.published"] / ["bus.delivered"]
    counters and the ["bus.payload-bytes"] histogram. *)
