(** The reliable messaging service (the JORAM stand-in, §3.3/§4).

    Topic-based publish/subscribe with exactly-once, per-sender-in-order
    delivery over the network simulator. Each subscription carries its
    own handler, so one member (a Na Kika node) can process several
    sites' update streams independently. Subscriptions are durable in
    the JORAM sense: a member that subscribes after messages were
    published receives the topic's backlog, so late-joining replicas
    converge.

    Delivery is acked: every message carries an id, the receiver sends
    an ack back over the network, and an unacked message is retried with
    capped exponential backoff plus deterministic jitter. The receiver
    deduplicates by id, so handlers still run exactly once under
    retries. A message still unacked after [max_attempts] is counted as
    a dead letter and abandoned (anti-entropy re-registration is the
    recovery path). Retry timers are daemon events: they never keep
    {!Nk_sim.Sim.run} alive. *)

type t

val create :
  ?seed:int ->
  ?max_attempts:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  Nk_sim.Net.t ->
  t
(** Defaults: seed 42, 8 attempts, backoff 0.5 s doubling up to 8 s
    (about 31 s of total retry coverage — enough to ride out short
    partitions). *)

val net : t -> Nk_sim.Net.t

val attach : t -> name:string -> host:Nk_sim.Net.host -> unit
(** Join the bus (idempotent). *)

val subscribe :
  t ->
  name:string ->
  topic:string ->
  handler:(payload:string -> from:string -> unit) ->
  unit
(** Subscribe the member to a topic. The handler runs at (simulated)
    delivery time; re-subscribing replaces the handler. The topic's
    backlog is replayed to the new subscriber. Raises
    [Invalid_argument] if [name] never attached. *)

val publish : t -> from:string -> topic:string -> payload:string -> unit
(** Deliver to every *other* subscribed member, in per-sender order. *)

val delivered : t -> int
(** Total messages delivered so far (for tests and benches). *)

val dead_letters : t -> int
(** Messages abandoned after exhausting their retry budget. 0 in a
    fault-free run. *)

val metrics : t -> Nk_telemetry.Metrics.t
(** The bus's own registry: ["bus.published"] / ["bus.delivered"] /
    ["bus.retries"] / ["bus.dead_letters"] counters and the
    ["bus.payload-bytes"] histogram. *)
