type strategy = Optimistic | Primary of string

type version = { counter : int; origin : string }

let version_newer a b =
  a.counter > b.counter || (a.counter = b.counter && a.origin > b.origin)

type node = {
  bus : Message_bus.t;
  node_name : string;
  store : Store.t;
  site : string;
  strategy : strategy;
  resolve : (key:string -> current:string option -> proposed:string -> string) option;
  versions : (string, version) Hashtbl.t;
  mutable clock : int;
  mutable applied : int;
}

let tombstone = "\x00__deleted__"

let topic site = "hardstate:" ^ site

(* payload: counter \n origin \n key-length \n key \n value *)
let encode ~version ~key ~value =
  Printf.sprintf "%d\n%s\n%d\n%s%s" version.counter version.origin (String.length key) key value

let decode payload =
  match String.index_opt payload '\n' with
  | None -> None
  | Some i1 -> (
    match String.index_from_opt payload (i1 + 1) '\n' with
    | None -> None
    | Some i2 -> (
      match String.index_from_opt payload (i2 + 1) '\n' with
      | None -> None
      | Some i3 -> (
        match
          ( int_of_string_opt (String.sub payload 0 i1),
            int_of_string_opt (String.sub payload (i2 + 1) (i3 - i2 - 1)) )
        with
        | Some counter, Some key_len when i3 + 1 + key_len <= String.length payload ->
          let origin = String.sub payload (i1 + 1) (i2 - i1 - 1) in
          let key = String.sub payload (i3 + 1) key_len in
          let value =
            String.sub payload (i3 + 1 + key_len) (String.length payload - i3 - 1 - key_len)
          in
          Some ({ counter; origin }, key, value)
        | _ -> None)))

let apply_local t ~version ~key ~value =
  let stale =
    match Hashtbl.find_opt t.versions key with
    | Some current -> not (version_newer version current)
    | None -> false
  in
  if stale then true
  else begin
    t.clock <- max t.clock version.counter;
    let value =
      match t.resolve with
      | Some resolve when value <> tombstone ->
        let current =
          match Store.get t.store ~site:t.site ~key with
          | Some v when v <> tombstone -> Some v
          | _ -> None
        in
        resolve ~key ~current ~proposed:value
      | _ -> value
    in
    let ok = Store.put t.store ~site:t.site ~key value in
    if ok then begin
      Hashtbl.replace t.versions key version;
      t.applied <- t.applied + 1
    end;
    ok
  end

let proposal_topic site = "hardstate-proposals:" ^ site

let on_message t ~payload ~from:_ =
  match decode payload with
  | Some (version, key, value) -> ignore (apply_local t ~version ~key ~value)
  | None -> ()

let broadcast t ~version ~key ~value =
  Message_bus.publish t.bus ~from:t.node_name ~topic:(topic t.site)
    ~payload:(encode ~version ~key ~value)

(* Primary replica: accept a forwarded proposal, serialize it by
   assigning the authoritative version, apply, and broadcast — "the
   script accepting updates can propagate them only to the origin
   server to ensure serializability" (§3.3). *)
let on_proposal t ~payload ~from:_ =
  match decode payload with
  | Some (_proposed_version, key, value) ->
    t.clock <- t.clock + 1;
    let version = { counter = t.clock; origin = t.node_name } in
    if apply_local t ~version ~key ~value then broadcast t ~version ~key ~value
  | None -> ()

let attach ~bus ~name ~host ~store ?resolve ~site strategy =
  let t =
    {
      bus;
      node_name = name;
      store;
      site;
      strategy;
      resolve;
      versions = Hashtbl.create 32;
      clock = 0;
      applied = 0;
    }
  in
  Message_bus.attach bus ~name ~host;
  Message_bus.subscribe bus ~name ~topic:(topic site) ~handler:(fun ~payload ~from ->
      on_message t ~payload ~from);
  (match strategy with
   | Primary primary when primary = name ->
     Message_bus.subscribe bus ~name ~topic:(proposal_topic site)
       ~handler:(fun ~payload ~from -> on_proposal t ~payload ~from)
   | _ -> ());
  t

let update_value t ~key ~value =
  match t.strategy with
  | Primary primary when primary <> t.node_name ->
    (* Route through the primary: forward the proposal and apply the
       primary's broadcast when it arrives. The write is accepted (the
       proposal left this node); reads here stay eventually consistent. *)
    t.clock <- t.clock + 1;
    let version = { counter = t.clock; origin = t.node_name } in
    Message_bus.publish t.bus ~from:t.node_name ~topic:(proposal_topic t.site)
      ~payload:(encode ~version ~key ~value);
    true
  | Optimistic | Primary _ ->
    t.clock <- t.clock + 1;
    let version = { counter = t.clock; origin = t.node_name } in
    let ok = apply_local t ~version ~key ~value in
    if ok then broadcast t ~version ~key ~value;
    ok

let update t ~key ~value = update_value t ~key ~value

let read t ~key =
  match Store.get t.store ~site:t.site ~key with
  | Some v when v <> tombstone -> Some v
  | _ -> None

let delete t ~key = ignore (update_value t ~key ~value:tombstone)

let keys t ~prefix =
  Store.keys t.store ~site:t.site ~prefix
  |> List.filter (fun k -> Store.get t.store ~site:t.site ~key:k <> Some tombstone)

let name t = t.node_name

let applied_updates t = t.applied

(* Anti-entropy: periodically re-broadcast every key this replica knows,
   at its current version. Receivers that already have the version drop
   it (version-stale), so the cycle is idempotent; receivers that missed
   the original broadcast — a partition outlasting the bus's retry
   budget, a crash — converge on the next cycle after heal. *)
let start_anti_entropy t ?(interval = 30.0) () =
  let sim = Nk_sim.Net.sim (Message_bus.net t.bus) in
  let rec cycle () =
    Hashtbl.iter
      (fun key version ->
        match Store.get t.store ~site:t.site ~key with
        | Some value -> broadcast t ~version ~key ~value
        | None -> ())
      t.versions;
    Nk_sim.Sim.schedule sim ~daemon:true ~delay:interval cycle
  in
  Nk_sim.Sim.schedule sim ~daemon:true ~delay:interval cycle
