type member = {
  host : Nk_sim.Net.host;
  subscriptions : (string, payload:string -> from:string -> unit) Hashtbl.t; (* by topic *)
}

type t = {
  net : Nk_sim.Net.t;
  members : (string, member) Hashtbl.t;
  retained : (string, (string * string) list ref) Hashtbl.t;
  (* topic -> (from, payload), newest first: durable-subscription backlog *)
  mutable delivered : int;
  metrics : Nk_telemetry.Metrics.t;
}

let create net =
  { net; members = Hashtbl.create 8; retained = Hashtbl.create 8; delivered = 0;
    metrics = Nk_telemetry.Metrics.create () }

let metrics t = t.metrics

let attach t ~name ~host =
  if not (Hashtbl.mem t.members name) then
    Hashtbl.add t.members name { host; subscriptions = Hashtbl.create 4 }

let deliver t m ~from ~topic ~payload =
  match (Hashtbl.find_opt t.members from, Hashtbl.find_opt m.subscriptions topic) with
  | Some sender, Some handler ->
    let size = String.length payload + 64 in
    Nk_sim.Net.send t.net ~src:sender.host ~dst:m.host ~size (fun () ->
        t.delivered <- t.delivered + 1;
        Nk_telemetry.Metrics.incr t.metrics "bus.delivered";
        handler ~payload ~from)
  | _ -> ()

let subscribe t ~name ~topic ~handler =
  match Hashtbl.find_opt t.members name with
  | None -> invalid_arg (Printf.sprintf "Message_bus.subscribe: %s is not attached" name)
  | Some m ->
    let fresh = not (Hashtbl.mem m.subscriptions topic) in
    Hashtbl.replace m.subscriptions topic handler;
    if fresh then begin
      (* Durable subscription: replay the topic's backlog so late
         joiners converge (JORAM-style durability). *)
      match Hashtbl.find_opt t.retained topic with
      | Some backlog ->
        List.iter
          (fun (from, payload) -> if from <> name then deliver t m ~from ~topic ~payload)
          (List.rev !backlog)
      | None -> ()
    end

let publish t ~from ~topic ~payload =
  match Hashtbl.find_opt t.members from with
  | None -> invalid_arg (Printf.sprintf "Message_bus.publish: %s is not attached" from)
  | Some _ ->
    Nk_telemetry.Metrics.incr t.metrics "bus.published";
    Nk_telemetry.Metrics.observe t.metrics "bus.payload-bytes"
      (float_of_int (String.length payload));
    (match Hashtbl.find_opt t.retained topic with
     | Some backlog -> backlog := (from, payload) :: !backlog
     | None -> Hashtbl.add t.retained topic (ref [ (from, payload) ]));
    Hashtbl.iter
      (fun name m ->
        (* Per-link FIFO in Net keeps same-size messages in order, which
           gives per-sender in-order delivery. *)
        if name <> from then deliver t m ~from ~topic ~payload)
      t.members

let delivered t = t.delivered
