type member = {
  host : Nk_sim.Net.host;
  subscriptions : (string, payload:string -> from:string -> unit) Hashtbl.t; (* by topic *)
}

type pending = {
  id : int;
  p_from : string;
  p_dst : string;
  p_payload : string;
  handler : payload:string -> from:string -> unit;
  mutable attempts : int;
  mutable acked : bool;
}

let retained_cap = 128

type t = {
  net : Nk_sim.Net.t;
  members : (string, member) Hashtbl.t;
  retained : (string, (string * string) list ref) Hashtbl.t;
  (* topic -> (from, payload), newest first: durable-subscription backlog *)
  seen : (int, unit) Hashtbl.t; (* receiver-side dedup of retried messages *)
  rng : Nk_util.Prng.t; (* deterministic backoff jitter *)
  max_attempts : int;
  backoff_base : float;
  backoff_cap : float;
  mutable next_msg : int;
  mutable delivered : int;
  mutable dead_letters : int;
  metrics : Nk_telemetry.Metrics.t;
}

let create ?(seed = 42) ?(max_attempts = 8) ?(backoff_base = 0.5) ?(backoff_cap = 8.0) net
    =
  { net; members = Hashtbl.create 8; retained = Hashtbl.create 8;
    seen = Hashtbl.create 64; rng = Nk_util.Prng.create seed; max_attempts;
    backoff_base; backoff_cap; next_msg = 0; delivered = 0; dead_letters = 0;
    metrics = Nk_telemetry.Metrics.create () }

let metrics t = t.metrics

let net t = t.net

let attach t ~name ~host =
  if not (Hashtbl.mem t.members name) then
    Hashtbl.add t.members name { host; subscriptions = Hashtbl.create 4 }

(* Backoff before retry [n] (1-based): capped exponential plus up to 25%
   deterministic jitter from the bus's own PRNG, so synchronized retries
   de-correlate yet replay identically from the seed. *)
let backoff t n =
  let base = Float.min t.backoff_cap (t.backoff_base *. (2. ** float_of_int (n - 1))) in
  base +. Nk_util.Prng.float t.rng (0.25 *. base)

(* One delivery attempt: data message to the receiver, ack message back,
   and a daemon retry timer in case the ack never arrives. Either leg may
   be dropped by the fault plan; the receiver-side [seen] table keeps the
   handler exactly-once under retries. *)
let rec attempt t p =
  match (Hashtbl.find_opt t.members p.p_from, Hashtbl.find_opt t.members p.p_dst) with
  | Some sender, Some receiver ->
    p.attempts <- p.attempts + 1;
    let size = String.length p.p_payload + 64 in
    Nk_sim.Net.send t.net ~src:sender.host ~dst:receiver.host ~size (fun () ->
        if not (Hashtbl.mem t.seen p.id) then begin
          Hashtbl.add t.seen p.id ();
          t.delivered <- t.delivered + 1;
          Nk_telemetry.Metrics.incr t.metrics "bus.delivered";
          p.handler ~payload:p.p_payload ~from:p.p_from
        end;
        (* Ack even duplicate deliveries: the first ack may have been the
           lost leg. *)
        Nk_sim.Net.send t.net ~src:receiver.host ~dst:sender.host ~size:64 (fun () ->
            p.acked <- true));
    let sim = Nk_sim.Net.sim t.net in
    Nk_sim.Sim.schedule sim ~daemon:true ~delay:(backoff t p.attempts) (fun () ->
        if not p.acked then begin
          if p.attempts >= t.max_attempts then begin
            t.dead_letters <- t.dead_letters + 1;
            Nk_telemetry.Metrics.incr t.metrics "bus.dead_letters"
          end
          else begin
            Nk_telemetry.Metrics.incr t.metrics "bus.retries";
            attempt t p
          end
        end)
  | _ -> ()

let deliver t m ~name ~from ~topic ~payload =
  match (Hashtbl.find_opt t.members from, Hashtbl.find_opt m.subscriptions topic) with
  | Some _, Some handler ->
    let id = t.next_msg in
    t.next_msg <- t.next_msg + 1;
    attempt t
      { id; p_from = from; p_dst = name; p_payload = payload; handler; attempts = 0;
        acked = false }
  | _ -> ()

let subscribe t ~name ~topic ~handler =
  match Hashtbl.find_opt t.members name with
  | None -> invalid_arg (Printf.sprintf "Message_bus.subscribe: %s is not attached" name)
  | Some m ->
    let fresh = not (Hashtbl.mem m.subscriptions topic) in
    Hashtbl.replace m.subscriptions topic handler;
    if fresh then begin
      (* Durable subscription: replay the topic's backlog so late
         joiners converge (JORAM-style durability). *)
      match Hashtbl.find_opt t.retained topic with
      | Some backlog ->
        List.iter
          (fun (from, payload) ->
            if from <> name then deliver t m ~name ~from ~topic ~payload)
          (List.rev !backlog)
      | None -> ()
    end

let truncate_backlog l = if List.length l > retained_cap then List.filteri (fun i _ -> i < retained_cap) l else l

let publish t ~from ~topic ~payload =
  match Hashtbl.find_opt t.members from with
  | None -> invalid_arg (Printf.sprintf "Message_bus.publish: %s is not attached" from)
  | Some _ ->
    Nk_telemetry.Metrics.incr t.metrics "bus.published";
    Nk_telemetry.Metrics.observe t.metrics "bus.payload-bytes"
      (float_of_int (String.length payload));
    (match Hashtbl.find_opt t.retained topic with
     | Some backlog -> backlog := truncate_backlog ((from, payload) :: !backlog)
     | None -> Hashtbl.add t.retained topic (ref [ (from, payload) ]));
    Hashtbl.iter
      (fun name m ->
        (* Per-link FIFO in Net keeps same-size messages in order, which
           gives per-sender in-order delivery. *)
        if name <> from then deliver t m ~name ~from ~topic ~payload)
      t.members

let delivered t = t.delivered

let dead_letters t = t.dead_letters
