(** Experiment instrumentation: named sample collections and counters.

    Experiments record client-perceived latency, achieved bandwidth,
    rejects, drops, etc., under well-known keys; the bench harness then
    prints paper-style tables from the same trace.

    This module is a thin compatibility facade over
    {!Nk_telemetry.Metrics}: counters live in the registry directly and
    [add] feeds both the registry's log-bucketed histogram and an exact
    {!Nk_util.Stats} collection (the latter keeps percentile reports
    bit-identical to the original implementation). New code should
    record into the registry. *)

type t

val create : ?registry:Nk_telemetry.Metrics.t -> unit -> t
(** Without [registry], a private one is created. A node passes its own
    registry so facade-recorded counters and the node's native metrics
    share one namespace. *)

val registry : t -> Nk_telemetry.Metrics.t

val stats : t -> string -> Nk_util.Stats.t
(** Get-or-create the named sample collection. *)

val add : t -> string -> float -> unit

val incr : ?by:int -> t -> string -> unit

val count : t -> string -> int

val stat_names : t -> string list

val counter_names : t -> string list
