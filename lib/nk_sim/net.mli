(** Hosts, links and CPUs.

    Links carry latency plus a shared-bandwidth pipe (transfers on the
    same directed link serialize through it, which is how the 8 Mbps
    WAN-emulation cap and PlanetLab's per-project bandwidth limits are
    modeled). Each host also has a single CPU on which work items
    queue; CPU saturation is what produces the capacity results of
    §5.1. *)

type t

type host

val create : Sim.t -> ?default_latency:float -> ?default_bandwidth:float -> unit -> t
(** Defaults model a switched 100 Mbit LAN: 0.2 ms latency,
    12.5 MB/s. *)

val sim : t -> Sim.t

val metrics : t -> Nk_telemetry.Metrics.t
(** The network-layer registry: [net.dropped] (messages lost to drops or
    partitions), [net.lost-callbacks] (deliveries and CPU completions
    suppressed because their host crashed), [node.crashes]. *)

val set_faults : t -> Nk_faults.Plan.t -> unit
(** Install a fault plan. Every subsequent [send] consults it for drops,
    partitions and latency spikes; crash instants are turned into daemon
    events that clear the crashed host's CPU queue; callbacks captured
    by a host that then crashes are suppressed rather than fired after
    restart. *)

val faults : t -> Nk_faults.Plan.t option

val host_down : t -> host -> bool
(** Is the host currently inside a crash window of the installed plan?
    Always false without a plan. *)

val add_host : t -> name:string -> ?cpu_speed:float -> unit -> host
(** [cpu_speed] scales CPU work: 1.0 = reference machine (the paper's
    2.8 GHz Pentium 4). *)

val host_name : host -> string

val connect : t -> host -> host -> latency:float -> bandwidth:float -> unit
(** Set symmetric link parameters between two hosts (overrides the
    defaults for that pair). *)

val set_egress_limit : t -> host -> float -> unit
(** Cap the host's total outbound bandwidth (bytes/second): all
    transfers leaving the host additionally serialize through one
    shared pipe. Models an origin server's uplink or a PlanetLab
    node's per-project bandwidth cap. *)

val send : t -> src:host -> dst:host -> size:int -> (unit -> unit) -> unit
(** Deliver [size] bytes from [src] to [dst]; the callback fires at
    delivery time (latency + queueing through the shared pipe). *)

val transfer_time_estimate : t -> src:host -> dst:host -> size:int -> float
(** Latency + size/bandwidth ignoring current queueing; used by the
    redirector's proximity metric. *)

val cpu_run : t -> host -> seconds:float -> (unit -> unit) -> unit
(** Queue [seconds] of CPU work on the host; callback when it
    completes. [seconds] is divided by the host's [cpu_speed]. *)

val cpu_backlog : t -> host -> float
(** Seconds of queued CPU work not yet finished (0 when idle); the
    resource monitor reads this as the CPU congestion signal. *)

val bytes_sent : t -> host -> int
(** Total bytes this host has put on the wire; feeds bandwidth
    accounting. *)
