type host = { id : int; name : string; cpu_speed : float }

type link_state = { mutable busy_until : float }

type link_params = { latency : float; bandwidth : float }

type t = {
  sim : Sim.t;
  default : link_params;
  links : (int * int, link_params) Hashtbl.t;
  pipes : (int * int, link_state) Hashtbl.t;
  cpus : (int, link_state) Hashtbl.t;
  sent : (int, int ref) Hashtbl.t;
  egress : (int, float * link_state) Hashtbl.t; (* bandwidth cap + shared pipe *)
  byname : (string, host) Hashtbl.t;
  metrics : Nk_telemetry.Metrics.t;
  mutable faults : Nk_faults.Plan.t option;
  mutable next_id : int;
}

let create sim ?(default_latency = 0.0002) ?(default_bandwidth = 12_500_000.0) () =
  {
    sim;
    default = { latency = default_latency; bandwidth = default_bandwidth };
    links = Hashtbl.create 16;
    pipes = Hashtbl.create 16;
    cpus = Hashtbl.create 16;
    sent = Hashtbl.create 16;
    egress = Hashtbl.create 4;
    byname = Hashtbl.create 16;
    metrics = Nk_telemetry.Metrics.create ();
    faults = None;
    next_id = 0;
  }

let sim t = t.sim

let metrics t = t.metrics

let add_host t ~name ?(cpu_speed = 1.0) () =
  let host = { id = t.next_id; name; cpu_speed } in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.cpus host.id { busy_until = 0.0 };
  Hashtbl.replace t.sent host.id (ref 0);
  Hashtbl.replace t.byname host.name host;
  host

let host_name h = h.name

let faults t = t.faults

let host_down t host =
  match t.faults with
  | None -> false
  | Some plan -> Nk_faults.Plan.is_down plan ~now:(Sim.now t.sim) host.name

let set_faults t plan =
  t.faults <- Some plan;
  (* A crash clears the host's CPU queue: everything queued or running is
     lost, and the backlog signal drops to zero until new work arrives
     after restart. Daemon events so fault plans never keep [run] alive. *)
  List.iter
    (fun (name, at) ->
      Sim.schedule_at t.sim ~daemon:true at (fun () ->
          Nk_telemetry.Metrics.incr t.metrics "node.crashes";
          match Hashtbl.find_opt t.byname name with
          | None -> ()
          | Some host ->
            let cpu = Hashtbl.find t.cpus host.id in
            cpu.busy_until <- Sim.now t.sim))
    (Nk_faults.Plan.crash_times plan)

let connect t a b ~latency ~bandwidth =
  let params = { latency; bandwidth } in
  Hashtbl.replace t.links (a.id, b.id) params;
  Hashtbl.replace t.links (b.id, a.id) params

let params t src dst =
  match Hashtbl.find_opt t.links (src.id, dst.id) with
  | Some p -> p
  | None -> t.default

let pipe t src dst =
  let key = (src.id, dst.id) in
  match Hashtbl.find_opt t.pipes key with
  | Some s -> s
  | None ->
    let s = { busy_until = 0.0 } in
    Hashtbl.add t.pipes key s;
    s

let set_egress_limit t host bandwidth =
  Hashtbl.replace t.egress host.id (bandwidth, { busy_until = 0.0 })

(* Wrap a callback that logically executes on [host]: if the host has
   crashed since it was captured (incarnation advanced) or is down when
   it would fire, it is suppressed. The state the callback closes over
   died with the host. *)
let guard t host k =
  match t.faults with
  | None -> k
  | Some plan ->
    let epoch = Nk_faults.Plan.incarnation plan ~now:(Sim.now t.sim) host.name in
    fun () ->
      let now = Sim.now t.sim in
      if
        Nk_faults.Plan.is_down plan ~now host.name
        || Nk_faults.Plan.incarnation plan ~now host.name <> epoch
      then Nk_telemetry.Metrics.incr t.metrics "net.lost-callbacks"
      else k ()

let send t ~src ~dst ~size k =
  let fate =
    match t.faults with
    | None -> `Deliver 0.0
    | Some plan ->
      let now = Sim.now t.sim in
      if Nk_faults.Plan.is_down plan ~now src.name then `Drop
      else if src.id = dst.id then `Deliver 0.0
      else Nk_faults.Plan.link_fate plan ~now ~src:src.name ~dst:dst.name
  in
  match fate with
  | `Drop -> Nk_telemetry.Metrics.incr t.metrics "net.dropped"
  | `Deliver extra ->
    let k = guard t dst k in
    if src.id = dst.id then Sim.schedule t.sim ~delay:0.0 k
    else begin
      let { latency; bandwidth } = params t src dst in
      let pipe = pipe t src dst in
      let now = Sim.now t.sim in
      (* The transfer serializes through the source's shared egress pipe
         (when capped) and then the per-pair link pipe. *)
      let egress_done =
        match Hashtbl.find_opt t.egress src.id with
        | None -> now
        | Some (cap, state) ->
          let start = Float.max now state.busy_until in
          state.busy_until <- start +. (float_of_int size /. cap);
          state.busy_until
      in
      let start = Float.max egress_done pipe.busy_until in
      let transmit = float_of_int size /. bandwidth in
      pipe.busy_until <- start +. transmit;
      (match Hashtbl.find_opt t.sent src.id with
       | Some r -> r := !r + size
       | None -> ());
      Sim.schedule_at t.sim (start +. transmit +. latency +. extra) k
    end

let transfer_time_estimate t ~src ~dst ~size =
  if src.id = dst.id then 0.0
  else begin
    let { latency; bandwidth } = params t src dst in
    latency +. (float_of_int size /. bandwidth)
  end

let cpu_run t host ~seconds k =
  let cpu = Hashtbl.find t.cpus host.id in
  let now = Sim.now t.sim in
  let base =
    match t.faults with
    | Some plan when Nk_faults.Plan.is_down plan ~now host.name -> (
        (* Work handed to a down host waits for the restart; if it never
           restarts, the work is simply lost. *)
        match Nk_faults.Plan.restart_time plan ~now host.name with
        | Some r -> r
        | None -> Float.infinity)
    | _ -> now
  in
  if base = Float.infinity then
    Nk_telemetry.Metrics.incr t.metrics "net.lost-callbacks"
  else begin
    let start = Float.max base cpu.busy_until in
    let work = seconds /. host.cpu_speed in
    cpu.busy_until <- start +. work;
    Sim.schedule_at t.sim cpu.busy_until (guard t host k)
  end

let cpu_backlog t host =
  let cpu = Hashtbl.find t.cpus host.id in
  Float.max 0.0 (cpu.busy_until -. Sim.now t.sim)

let bytes_sent t host =
  match Hashtbl.find_opt t.sent host.id with Some r -> !r | None -> 0
