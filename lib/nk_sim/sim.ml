type event = { thunk : unit -> unit; daemon : bool }

type t = {
  mutable clock : float;
  queue : event Nk_util.Heap.t;
  rng : Nk_util.Prng.t;
  mutable live : int; (* non-daemon events pending *)
  mutable executed : int; (* events run so far; scale soaks assert on it *)
}

let create ?(seed = 1) ?(start_time = 1_136_073_600.0) () =
  { clock = start_time; queue = Nk_util.Heap.create (); rng = Nk_util.Prng.create seed;
    live = 0; executed = 0 }

let now t = t.clock

let prng t = t.rng

let schedule_at t ?(daemon = false) time thunk =
  let time = if time < t.clock then t.clock else time in
  if not daemon then t.live <- t.live + 1;
  Nk_util.Heap.push t.queue time { thunk; daemon }

let schedule t ?daemon ~delay thunk = schedule_at t ?daemon (t.clock +. delay) thunk

let step t =
  match Nk_util.Heap.pop t.queue with
  | None -> false
  | Some (time, event) ->
    t.clock <- time;
    if not event.daemon then t.live <- t.live - 1;
    t.executed <- t.executed + 1;
    event.thunk ();
    true

let run ?until t =
  match until with
  | None -> while t.live > 0 && step t do () done
  | Some deadline ->
    let continue = ref true in
    while !continue do
      match Nk_util.Heap.peek t.queue with
      | Some (time, _) when time <= deadline -> ignore (step t)
      | _ -> continue := false
    done;
    if t.clock < deadline then t.clock <- deadline

let pending t = Nk_util.Heap.size t.queue

let executed t = t.executed
