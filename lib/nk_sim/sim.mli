(** Deterministic discrete-event simulation core.

    All end-to-end experiments (§5) run on this clock: events are
    scheduled at absolute times and executed in order; ties break by
    scheduling order. The simulated clock stands in for both wall-clock
    latency and HTTP absolute expiration times. *)

type t

val create : ?seed:int -> ?start_time:float -> unit -> t
(** [start_time] is the initial clock value in epoch seconds (defaults
    to 1,136,073,600 — January 2006, the paper's era — so HTTP dates
    look plausible). *)

val now : t -> float

val prng : t -> Nk_util.Prng.t
(** The simulation-wide deterministic random stream. *)

val schedule : t -> ?daemon:bool -> delay:float -> (unit -> unit) -> unit
(** Run a thunk [delay] seconds from now (clamped to now for negative
    delays). A [daemon] event (periodic monitors, log posters) does not
    keep [run] alive: once only daemon events remain, [run] returns. *)

val schedule_at : t -> ?daemon:bool -> float -> (unit -> unit) -> unit

val run : ?until:float -> t -> unit
(** Drain the event queue until only daemon events remain; with
    [until], stop once the clock would pass it (remaining events stay
    queued). *)

val step : t -> bool
(** Execute one event; false when the queue is empty. *)

val pending : t -> int

val executed : t -> int
(** Total events executed since creation (daemons included). Scale
    soaks assert on it to prove a run really exercised the claimed
    event volume. *)
