(* Compatibility facade: the original flat sample/counter API now
   records into an [Nk_telemetry.Metrics] registry (counters and
   log-bucketed histograms), while keeping exact [Nk_util.Stats]
   collections alongside so existing percentile-based reports are
   bit-identical to the seed. *)

type t = {
  registry : Nk_telemetry.Metrics.t;
  samples : (string, Nk_util.Stats.t) Hashtbl.t;
}

let create ?registry () =
  let registry =
    match registry with Some r -> r | None -> Nk_telemetry.Metrics.create ()
  in
  { registry; samples = Hashtbl.create 16 }

let registry t = t.registry

let stats t name =
  match Hashtbl.find_opt t.samples name with
  | Some s -> s
  | None ->
    let s = Nk_util.Stats.create () in
    Hashtbl.add t.samples name s;
    s

let add t name x =
  Nk_util.Stats.add (stats t name) x;
  Nk_telemetry.Metrics.observe t.registry name x

let incr ?(by = 1) t name = Nk_telemetry.Metrics.incr t.registry ~by name

let count t name = Nk_telemetry.Metrics.counter t.registry name

let stat_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.samples [] |> List.sort compare

let counter_names t = Nk_telemetry.Metrics.counter_names t.registry
