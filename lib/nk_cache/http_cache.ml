type entry = {
  key : string;
  response : Nk_http.Message.response;
  mutable expiry : float;
  size : int;
  mutable prev : entry option;
  mutable next : entry option;
}

type t = {
  max_bytes : int;
  table : (string, entry) Hashtbl.t;
  mutable head : entry option; (* most recently used *)
  mutable tail : entry option; (* least recently used *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable metrics : Nk_telemetry.Metrics.t option;
}

(* Mirror the internal counters into an attached registry so cache
   behaviour shows up in [nakika stats] next to everything else. *)
let meter t name =
  match t.metrics with Some m -> Nk_telemetry.Metrics.incr m name | None -> ()

let meter_size t =
  match t.metrics with
  | Some m ->
    Nk_telemetry.Metrics.set_gauge m "cache.bytes" (float_of_int t.bytes);
    Nk_telemetry.Metrics.set_gauge m "cache.entries" (float_of_int (Hashtbl.length t.table))
  | None -> ()

let create ?(max_bytes = 256 * 1024 * 1024) () =
  {
    max_bytes;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    metrics = None;
  }

let set_metrics t metrics = t.metrics <- Some metrics

let unlink t e =
  (match e.prev with Some p -> p.next <- e.next | None -> t.head <- e.next);
  (match e.next with Some n -> n.prev <- e.prev | None -> t.tail <- e.prev);
  e.prev <- None;
  e.next <- None

let push_front t e =
  e.next <- t.head;
  e.prev <- None;
  (match t.head with Some h -> h.prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let drop t e =
  unlink t e;
  Hashtbl.remove t.table e.key;
  t.bytes <- t.bytes - e.size

let remove t ~key =
  match Hashtbl.find_opt t.table key with Some e -> drop t e | None -> ()

let lookup t ~now ~key =
  match Hashtbl.find_opt t.table key with
  | None ->
    t.misses <- t.misses + 1;
    meter t "cache.misses";
    None
  | Some e ->
    if e.expiry <= now then begin
      (* Stale: keep the entry for conditional revalidation. *)
      t.misses <- t.misses + 1;
      meter t "cache.misses";
      meter t "cache.stale-misses";
      None
    end
    else begin
      unlink t e;
      push_front t e;
      t.hits <- t.hits + 1;
      meter t "cache.hits";
      Some (Nk_http.Message.copy_response e.response)
    end

let lookup_stale t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e -> Some (Nk_http.Message.copy_response e.response)

let lookup_stale_entry t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> None
  | Some e -> Some (Nk_http.Message.copy_response e.response, e.expiry)

let refresh t ~key ~expiry =
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e ->
    e.expiry <- expiry;
    unlink t e;
    push_front t e

let fold_fresh t ~now ~init ~f =
  Hashtbl.fold (fun key e acc -> if e.expiry > now then f acc key e.expiry else acc) t.table init

let mem t ~now ~key =
  match Hashtbl.find_opt t.table key with
  | Some e when e.expiry > now -> true
  | _ -> false

let evict_until_fits t =
  while t.bytes > t.max_bytes do
    match t.tail with
    | Some e ->
      drop t e;
      t.evictions <- t.evictions + 1;
      meter t "cache.evictions"
    | None -> t.bytes <- 0
  done

let insert t ~now ~key ~expiry response =
  match expiry with
  | None -> ()
  | Some expiry when expiry <= now -> ()
  | Some expiry ->
    let size = Nk_http.Message.content_length response + 128 in
    if size <= t.max_bytes then begin
      remove t ~key;
      let e =
        {
          key;
          response = Nk_http.Message.copy_response response;
          expiry;
          size;
          prev = None;
          next = None;
        }
      in
      Hashtbl.replace t.table key e;
      push_front t e;
      t.bytes <- t.bytes + size;
      meter t "cache.insertions";
      evict_until_fits t;
      meter_size t
    end

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.bytes <- 0

let entry_count t = Hashtbl.length t.table

let size_bytes t = t.bytes

let hits t = t.hits

let misses t = t.misses

let evictions t = t.evictions
