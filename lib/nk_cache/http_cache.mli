(** The proxy cache: expiration-based HTTP caching with LRU eviction.

    Na Kika caches both original and processed content under the web's
    expiration-based consistency model (§2, §3.3). Time is always
    passed in explicitly so the cache runs on the simulated clock. *)

type t

val create : ?max_bytes:int -> unit -> t
(** [max_bytes] bounds the summed body sizes (default 256 MiB). *)

val set_metrics : t -> Nk_telemetry.Metrics.t -> unit
(** Mirror hit/miss/insertion/eviction counters and size gauges into
    the registry (["cache.hits"], ["cache.misses"],
    ["cache.stale-misses"], ["cache.insertions"], ["cache.evictions"],
    ["cache.bytes"], ["cache.entries"]). *)

val lookup : t -> now:float -> key:string -> Nk_http.Message.response option
(** Fresh hit or [None]. The returned response is a private copy.
    Expired entries are retained (until evicted) so they can be
    revalidated with a conditional request. *)

val lookup_stale : t -> key:string -> Nk_http.Message.response option
(** The stored entry regardless of freshness — the revalidation path's
    view. Does not count as a hit or miss. *)

val lookup_stale_entry : t -> key:string -> (Nk_http.Message.response * float) option
(** Like {!lookup_stale} but also returns the entry's expiry time, so a
    stale-if-error degradation path can bound how stale a served copy
    is. *)

val refresh : t -> key:string -> expiry:float -> unit
(** Extend a stored entry's freshness lifetime (after a 304 Not
    Modified). No-op when the key is absent. *)

val insert : t -> now:float -> key:string -> expiry:float option -> Nk_http.Message.response -> unit
(** Store a copy. [expiry = None] (no freshness lifetime) is not
    stored. Oversized entries (> max_bytes) are ignored. *)

val fold_fresh : t -> now:float -> init:'a -> f:('a -> string -> float -> 'a) -> 'a
(** Fold over fresh entries as [(key, expiry)]; drives the node's
    periodic soft-state re-announcement to the overlay. *)

val remove : t -> key:string -> unit

val mem : t -> now:float -> key:string -> bool

val clear : t -> unit

val entry_count : t -> int

val size_bytes : t -> int

val hits : t -> int

val misses : t -> int

val evictions : t -> int
