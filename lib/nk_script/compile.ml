(* Closure compilation of NKScript.

   The tree-walking evaluator in [Interp] re-dispatches on AST
   constructors and resolves every variable with a Hashtbl probe down a
   scope-chain list on every execution — the hottest path in the proxy,
   paid per handler per stage per request. This pass lowers each AST
   node exactly once into an OCaml closure and resolves variables to
   lexical slot addresses (frame arrays indexed at compile time), so
   handler invocation runs pre-compiled code.

   Two invariants shape everything below:

   1. Observable equivalence with [Interp], including *bit-identical
      fuel and heap accounting*: the resource monitor's congestion
      numbers, termination points, and every seed bench figure depend
      on the charges, so each compiled closure performs the same
      [charge_fuel]/[charge_alloc] calls, in the same order, as the
      tree-walker visiting the same nodes. Constant folding keeps this
      by recording the charge trace the tree-walker would have emitted
      and replaying it (unit fuel steps, so even exhaustion mid-fold
      raises at the identical counter value).

   2. Compiled programs are context-independent: the same [program] can
      execute in any number of scripting contexts, which is what lets
      the SHA-256-keyed cache share one compilation across every stage
      and node that loads the same script body. Context state (fuel,
      heap, globals) only enters at run time through [rt].

   Variable semantics note: NKScript scoping is function-level and
   *temporal* — [var x] shadows an outer [x] only from the moment the
   declaration executes (the tree-walker's Hashtbl entry appears then).
   Slots therefore start as a sentinel; a reference probes its static
   candidate slots innermost-first and falls through to the enclosing
   bindings — in practice a single array load and one physical-equality
   check — with true globals resolved in the defining context's table. *)

open Value
module I = Interp

(* --- runtime environment -------------------------------------------- *)

type rt = {
  ctx : Value.ctx; (* the *calling* context: fuel/heap are charged here *)
  globals : Value.scope; (* lexical globals: the defining context's table *)
  frames : Value.t array list; (* innermost first *)
  this : Value.t;
}

type cexpr = rt -> Value.t

type cstmt = rt -> unit

(* Marks a slot whose declaration has not executed yet; compared with
   physical equality and never visible to scripts. Lives in [Value] so
   the per-context frame arena can wipe recycled frames with it. *)
let undeclared = Value.undeclared

let rec frame_at frames d =
  match frames with
  | f :: rest -> if d = 0 then f else frame_at rest (d - 1)
  | [] -> assert false

(* --- inlined charge helpers ------------------------------------------ *)

(* Identical to [Interp.charge_fuel]/[charge_alloc] — same checks, same
   order, same exception payloads — but local to this unit and small
   enough for the non-flambda inliner, so the per-node charge in every
   compiled closure is straight-line code instead of a cross-module
   call. The qcheck differential holds these to the tree-walker's
   accounting bit for bit. *)
let[@inline always] charge1 (ctx : Value.ctx) =
  if ctx.killed then raise Value.Terminated;
  let f = ctx.fuel_used + 1 in
  ctx.fuel_used <- f;
  if f > ctx.max_fuel then raise (Value.Resource_exhausted "fuel limit exceeded")

(* The 4-unit function-invocation charge ([Interp.apply_fn]). *)
let[@inline always] charge4 (ctx : Value.ctx) =
  if ctx.killed then raise Value.Terminated;
  let f = ctx.fuel_used + 4 in
  ctx.fuel_used <- f;
  if f > ctx.max_fuel then raise (Value.Resource_exhausted "fuel limit exceeded")

let[@inline always] charge_allocv (ctx : Value.ctx) v =
  ctx.heap_used <- ctx.heap_used + alloc_size v;
  if ctx.heap_used > ctx.max_heap then raise (Value.Resource_exhausted "heap limit exceeded")

(* --- inline caches ---------------------------------------------------- *)

(* One mutable cache per compiled member/method site. A hit is a single
   physical shape comparison plus an array load, so monomorphic sites —
   the overwhelmingly common case — never hash a property name after
   first touch. The sentinel shape is carried by no object, so a fresh
   cache cannot spuriously hit; dictionary-mode objects are never
   cached (they share [dict_shape] but not a layout). Misses that find
   no slot don't populate the cache either: caching "absent" would need
   shape-keyed negative entries for no measured win. *)
type ic = { mutable ic_shape : Value.shape; mutable ic_slot : int }

let new_ic () = { ic_shape = ic_sentinel_shape; ic_slot = 0 }

let[@inline] obj_load_ic ic o atom =
  if o.shape == ic.ic_shape then Array.unsafe_get o.slots ic.ic_slot
  else
    match o.dict with
    | None ->
      let s = shape_find o.shape atom in
      if s >= 0 then begin
        ic.ic_shape <- o.shape;
        ic.ic_slot <- s;
        Array.unsafe_get o.slots s
      end
      else Vundefined
    | Some d -> ( match Hashtbl.find_opt d atom with Some v -> v | None -> Vundefined)

(* [Interp.member_get] with an IC on the object path and the primitive
   "length" reads answered without leaving the unit. *)
let member_get_ic rt ic atom name v =
  match v with
  | Vobj o -> obj_load_ic ic o atom
  | Vstr s ->
    if atom = Atom.length then Vnum (float_of_int (String.length s))
    else I.member_get rt.ctx v name
  | Varr a ->
    if atom = Atom.length then Vnum (float_of_int a.len) else I.member_get rt.ctx v name
  | Vbytes b ->
    if atom = Atom.length then Vnum (float_of_int b.blen) else I.member_get rt.ctx v name
  | _ -> I.member_get rt.ctx v name

(* [Interp.member_set] with an IC: a hit stores straight into the slot;
   a miss goes through the generic (possibly shape-transitioning) write
   and then caches the resulting layout. *)
let member_set_ic ic atom name obj v =
  match obj with
  | Vobj o ->
    if o.shape == ic.ic_shape then Array.unsafe_set o.slots ic.ic_slot v
    else begin
      obj_set_atom o atom v;
      match o.dict with
      | None ->
        ic.ic_shape <- o.shape;
        ic.ic_slot <- shape_find o.shape atom
      | Some _ -> ()
    end
  | v0 -> error "cannot set property '%s' on a %s" name (type_name v0)

(* Method-call site: IC lookup plus direct dispatch on the function
   representation (the common Compiled_fn/Native_fn cases stay in this
   unit); error messages and the 4-unit apply charge are exactly the
   tree-walker's [invoke_method]/[apply_fn]. *)
let invoke_ic rt ic atom name obj args =
  match obj with
  | Vobj o -> (
    match obj_load_ic ic o atom with
    | Vfun (Compiled_fn cf) ->
      charge4 rt.ctx;
      cf.code.ccall rt.ctx ~this:obj ~globals:cf.cglobals cf.captured args
    | Vfun (Native_fn nf) ->
      charge4 rt.ctx;
      nf.call (Some obj) args
    | Vfun (Script_fn _) as f -> I.apply rt.ctx ~this:obj f args
    | Vundefined -> error "object has no method '%s'" name
    | v -> error "property '%s' is not a function (%s)" name (type_name v))
  | _ -> I.invoke_method rt.ctx obj name args

(* Plain-call dispatch, same fast cases. *)
let apply_fast rt f args =
  match f with
  | Vfun (Compiled_fn cf) ->
    charge4 rt.ctx;
    cf.code.ccall rt.ctx ~this:Vundefined ~globals:cf.cglobals cf.captured args
  | Vfun (Native_fn nf) ->
    charge4 rt.ctx;
    nf.call None args
  | f -> I.apply rt.ctx f args

(* --- compile-time binop specialization -------------------------------- *)

(* Comparison and boolean results are shared immutable blocks: nothing
   in the language observes [Vbool] identity, and loop conditions
   produce one per iteration. *)
let vtrue = Vbool true

let vfalse = Vbool false

let[@inline always] vbool b = if b then vtrue else vfalse

(* Local truthiness with a first-class [Vbool] case: loop and branch
   conditions are almost always the shared booleans from [vbool]. *)
let[@inline always] truthy_v = function Vbool b -> b | v -> truthy v

(* Dispatch on the operator once, at compile time, with direct numeric
   and string fast paths; coercions and charges match
   [Interp.eval_binop] exactly ([to_number] on a [Vnum] is the
   identity, [<] on non-NaN floats agrees with the [compare]-then-test
   formulation, and IEEE comparisons on NaN are false exactly where the
   tree-walker's NaN pre-check says false). *)
let specialize_binop (op : Ast.binop) : Value.ctx -> Value.t -> Value.t -> Value.t =
  match op with
  | Ast.Add -> (
    fun ctx a b ->
      match (a, b) with
      | Vnum x, Vnum y -> Vnum (x +. y)
      | Vstr x, Vstr y ->
        let s = x ^ y in
        let h = ctx.heap_used + String.length s + 16 in
        ctx.heap_used <- h;
        if h > ctx.max_heap then raise (Value.Resource_exhausted "heap limit exceeded");
        Vstr s
      | Vstr _, _ | _, Vstr _ ->
        let v = Vstr (to_string a ^ to_string b) in
        charge_allocv ctx v;
        v
      | _ -> Vnum (to_number a +. to_number b))
  | Ast.Sub -> (
    fun _ a b ->
      match (a, b) with
      | Vnum x, Vnum y -> Vnum (x -. y)
      | _ -> Vnum (to_number a -. to_number b))
  | Ast.Mul -> (
    fun _ a b ->
      match (a, b) with
      | Vnum x, Vnum y -> Vnum (x *. y)
      | _ -> Vnum (to_number a *. to_number b))
  | Ast.Div -> (
    fun _ a b ->
      match (a, b) with
      | Vnum x, Vnum y -> Vnum (x /. y)
      | _ -> Vnum (to_number a /. to_number b))
  | Ast.Mod -> fun _ a b -> Vnum (Float.rem (to_number a) (to_number b))
  | Ast.Eq -> fun _ a b -> vbool (equal a b)
  | Ast.Neq -> fun _ a b -> vbool (not (equal a b))
  | Ast.Lt -> (
    fun _ a b ->
      match (a, b) with
      | Vnum x, Vnum y -> vbool (x < y)
      | Vstr x, Vstr y -> vbool (String.compare x y < 0)
      | _ -> vbool (to_number a < to_number b))
  | Ast.Le -> (
    fun _ a b ->
      match (a, b) with
      | Vnum x, Vnum y -> vbool (x <= y)
      | Vstr x, Vstr y -> vbool (String.compare x y <= 0)
      | _ -> vbool (to_number a <= to_number b))
  | Ast.Gt -> (
    fun _ a b ->
      match (a, b) with
      | Vnum x, Vnum y -> vbool (x > y)
      | Vstr x, Vstr y -> vbool (String.compare x y > 0)
      | _ -> vbool (to_number a > to_number b))
  | Ast.Ge -> (
    fun _ a b ->
      match (a, b) with
      | Vnum x, Vnum y -> vbool (x >= y)
      | Vstr x, Vstr y -> vbool (String.compare x y >= 0)
      | _ -> vbool (to_number a >= to_number b))
  | Ast.Band -> fun _ a b -> Vnum (float_of_int (to_int a land to_int b))
  | Ast.Bor -> fun _ a b -> Vnum (float_of_int (to_int a lor to_int b))
  | Ast.Bxor -> fun _ a b -> Vnum (float_of_int (to_int a lxor to_int b))
  | Ast.Shl -> fun _ a b -> Vnum (float_of_int (to_int a lsl (to_int b land 31)))
  | Ast.Shr -> fun _ a b -> Vnum (float_of_int (to_int a asr (to_int b land 31)))

(* --- frame escape analysis -------------------------------------------- *)

(* A call frame can be recycled iff nothing can capture it. Closures
   are the only capture vector — [Func]/[Sfunc] close over [rt.frames],
   which includes every enclosing frame — so any function node
   *syntactically* inside the body pins the frame. The scan stops at
   [Func] boundaries: a deeper literal is already inside one. *)
let rec expr_has_func (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Func _ -> true
  | Ast.Undefined | Ast.Null | Ast.Bool _ | Ast.Number _ | Ast.String _ | Ast.This
  | Ast.Ident _ ->
    false
  | Ast.Array_lit es -> List.exists expr_has_func es
  | Ast.Object_lit fs -> List.exists (fun (_, fe) -> expr_has_func fe) fs
  | Ast.Member (o, _) | Ast.Delete (o, _) -> expr_has_func o
  | Ast.Index (a, b) -> expr_has_func a || expr_has_func b
  | Ast.Call (f, args) | Ast.New (f, args) ->
    expr_has_func f || List.exists expr_has_func args
  | Ast.Assign (lv, _, e) -> lvalue_has_func lv || expr_has_func e
  | Ast.Unop (_, a) -> expr_has_func a
  | Ast.Binop (_, a, b) | Ast.Logical (_, a, b) -> expr_has_func a || expr_has_func b
  | Ast.Cond (a, b, c) -> expr_has_func a || expr_has_func b || expr_has_func c
  | Ast.Incr (_, lv) | Ast.Decr (_, lv) -> lvalue_has_func lv

and lvalue_has_func = function
  | Ast.Lident _ -> false
  | Ast.Lmember (o, _) -> expr_has_func o
  | Ast.Lindex (a, b) -> expr_has_func a || expr_has_func b

and stmt_has_func (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Sfunc _ -> true
  | Ast.Sexpr e | Ast.Sthrow e -> expr_has_func e
  | Ast.Svar bs -> List.exists (fun (_, init) -> Option.fold ~none:false ~some:expr_has_func init) bs
  | Ast.Sif (c, a, b) ->
    expr_has_func c || List.exists stmt_has_func a || List.exists stmt_has_func b
  | Ast.Swhile (c, b) | Ast.Sdo_while (b, c) -> expr_has_func c || List.exists stmt_has_func b
  | Ast.Sfor (i, c, st, b) ->
    Option.fold ~none:false ~some:stmt_has_func i
    || Option.fold ~none:false ~some:expr_has_func c
    || Option.fold ~none:false ~some:expr_has_func st
    || List.exists stmt_has_func b
  | Ast.Sfor_in (_, e, b) -> expr_has_func e || List.exists stmt_has_func b
  | Ast.Sreturn e -> Option.fold ~none:false ~some:expr_has_func e
  | Ast.Sbreak | Ast.Scontinue -> false
  | Ast.Sblock b -> List.exists stmt_has_func b
  | Ast.Stry (b, _, h) -> List.exists stmt_has_func b || List.exists stmt_has_func h

(* break/continue elision: a loop needs its Break_exc (resp. the body
   its Continue_exc) handler only if the statement appears
   *syntactically* in the body — expressions cannot contain statements
   (function literals are a boundary where both become errors), and a
   nested loop catches its own. Skipping the handler removes an
   exception-trap push per iteration. *)
let rec stmt_has_break (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Sbreak -> true
  | Ast.Sif (_, a, b) -> List.exists stmt_has_break a || List.exists stmt_has_break b
  | Ast.Sblock b -> List.exists stmt_has_break b
  | Ast.Stry (b, _, h) -> List.exists stmt_has_break b || List.exists stmt_has_break h
  | Ast.Swhile _ | Ast.Sdo_while _ | Ast.Sfor _ | Ast.Sfor_in _ (* binds inner *)
  | Ast.Sexpr _ | Ast.Svar _ | Ast.Sreturn _ | Ast.Scontinue | Ast.Sfunc _ | Ast.Sthrow _ ->
    false

let rec stmt_has_continue (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Scontinue -> true
  | Ast.Sif (_, a, b) -> List.exists stmt_has_continue a || List.exists stmt_has_continue b
  | Ast.Sblock b -> List.exists stmt_has_continue b
  | Ast.Stry (b, _, h) -> List.exists stmt_has_continue b || List.exists stmt_has_continue h
  | Ast.Swhile _ | Ast.Sdo_while _ | Ast.Sfor _ | Ast.Sfor_in _
  | Ast.Sexpr _ | Ast.Svar _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Sfunc _ | Ast.Sthrow _ ->
    false

(* Wrap a compiled loop body with its Continue handler only if needed. *)
let guard_continue body (cb : cstmt) : cstmt =
  if List.exists stmt_has_continue body then
    fun rt -> ( try cb rt with I.Continue_exc -> ())
  else cb

(* Wrap a whole compiled loop with its Break handler only if needed. *)
let guard_break body (loop : cstmt) : cstmt =
  if List.exists stmt_has_break body then
    fun rt -> ( try loop rt with I.Break_exc -> ())
  else loop

(* --- compile-time scope table ---------------------------------------- *)

type scope_info = { slots : (string, int) Hashtbl.t; mutable nslots : int }

type cenv = scope_info list
(* Innermost first; [] at toplevel, where every name is a global. *)

let slot_of si name =
  match Hashtbl.find_opt si.slots name with
  | Some s -> s
  | None ->
    let s = si.nslots in
    si.nslots <- s + 1;
    Hashtbl.add si.slots name s;
    s

(* Function-level declarations: params, [var]s, hoisted functions,
   for-in and catch variables — everywhere in the body except inside
   nested function literals (those get their own frame). *)
let rec collect_stmt si (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Svar bindings -> List.iter (fun (n, _) -> ignore (slot_of si n)) bindings
  | Ast.Sfunc (name, _, _) -> ignore (slot_of si name)
  | Ast.Sif (_, a, b) ->
    List.iter (collect_stmt si) a;
    List.iter (collect_stmt si) b
  | Ast.Swhile (_, b) | Ast.Sdo_while (b, _) -> List.iter (collect_stmt si) b
  | Ast.Sfor (init, _, _, b) ->
    Option.iter (collect_stmt si) init;
    List.iter (collect_stmt si) b
  | Ast.Sfor_in (n, _, b) ->
    ignore (slot_of si n);
    List.iter (collect_stmt si) b
  | Ast.Stry (b, n, h) ->
    List.iter (collect_stmt si) b;
    ignore (slot_of si n);
    List.iter (collect_stmt si) h
  | Ast.Sblock b -> List.iter (collect_stmt si) b
  | Ast.Sexpr _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Sthrow _ -> ()

(* Static candidates for a reference: every enclosing function scope
   that declares [name], innermost first, as (depth, slot). *)
let resolve (cenv : cenv) name =
  let rec go depth = function
    | [] -> []
    | si :: rest -> (
      match Hashtbl.find_opt si.slots name with
      | Some s -> (depth, s) :: go (depth + 1) rest
      | None -> go (depth + 1) rest)
  in
  go 0 cenv

let global_ref rt name = Hashtbl.find_opt rt.globals name

let compile_var_read cenv name ~(on_missing : rt -> Value.t) : rt -> Value.t =
  match resolve cenv name with
  | [] -> fun rt -> ( match global_ref rt name with Some r -> !r | None -> on_missing rt)
  | [ (0, s) ] -> (
    (* The common case — a local of the current function — compiles to
       one (bounds-checked-at-compile-time) array load. *)
    fun rt ->
      match rt.frames with
      | f :: _ ->
        let v = Array.unsafe_get f s in
        if v != undeclared then v
        else ( match global_ref rt name with Some r -> !r | None -> on_missing rt)
      | [] -> assert false)
  | cands ->
    let cands = Array.of_list cands in
    let n = Array.length cands in
    fun rt ->
      let rec go i =
        if i >= n then
          match global_ref rt name with Some r -> !r | None -> on_missing rt
        else begin
          let d, s = cands.(i) in
          let v = (frame_at rt.frames d).(s) in
          if v != undeclared then v else go (i + 1)
        end
      in
      go 0

(* Assignment: first live binding wins; otherwise an existing global's
   ref is mutated in place; otherwise the name springs into existence
   in the *calling* context's globals — exactly the tree-walker's
   [write_lvalue] (which looks up through the closure but creates new
   globals in [ctx.globals]). *)
let write_global rt name v =
  match global_ref rt name with
  | Some r -> r := v
  | None -> Hashtbl.replace rt.ctx.globals name (ref v)

let compile_var_write cenv name : rt -> Value.t -> unit =
  match resolve cenv name with
  | [] -> fun rt v -> write_global rt name v
  | [ (0, s) ] -> (
    (* Common case: a local of the current function — one array store
       (the inner [let rec] of the generic path would allocate a
       closure per write). *)
    fun rt v ->
      match rt.frames with
      | f :: _ ->
        if Array.unsafe_get f s != undeclared then Array.unsafe_set f s v
        else write_global rt name v
      | [] -> assert false)
  | cands ->
    let cands = Array.of_list cands in
    let n = Array.length cands in
    fun rt v ->
      let rec go i =
        if i >= n then write_global rt name v
        else begin
          let d, s = cands.(i) in
          let f = frame_at rt.frames d in
          if f.(s) != undeclared then f.(s) <- v else go (i + 1)
        end
      in
      go 0

(* The for-in loop variable rebind: like a write, but a miss everywhere
   is silently dropped (mirrors [Sfor_in]'s [bind]). *)
let compile_var_bind cenv name : rt -> Value.t -> unit =
  match resolve cenv name with
  | [ (0, s) ] -> (
    fun rt v ->
      match rt.frames with
      | f :: _ ->
        if Array.unsafe_get f s != undeclared then Array.unsafe_set f s v
        else ( match global_ref rt name with Some r -> r := v | None -> ())
      | [] -> assert false)
  | cands ->
    let cands = Array.of_list cands in
    let n = Array.length cands in
    fun rt v ->
      let rec go i =
        if i >= n then ( match global_ref rt name with Some r -> r := v | None -> ())
        else begin
          let d, s = cands.(i) in
          let f = frame_at rt.frames d in
          if f.(s) != undeclared then f.(s) <- v else go (i + 1)
        end
      in
      go 0

(* Declarations always target the innermost scope. *)
type decl = Dslot of int | Dglobal of string

let compile_decl (cenv : cenv) name =
  match cenv with si :: _ -> Dslot (slot_of si name) | [] -> Dglobal name

let run_decl decl rt v =
  match decl with
  | Dslot s -> (List.hd rt.frames).(s) <- v
  | Dglobal n -> Hashtbl.replace rt.globals n (ref v)

(* --- constant folding ------------------------------------------------ *)

(* A folded subtree must still charge what the tree-walker charges. The
   fold therefore records the exact trace — one [Cfuel] per node visit,
   one [Calloc] per allocating operation, in evaluation order — and the
   compiled closure replays it. Fuel replays as unit steps so a limit
   crossed mid-subtree raises at the identical [fuel_used]. *)
type charge = Cfuel | Calloc of Value.t

let pure_unop op v =
  match op with
  | Ast.Not -> Vbool (not (truthy v))
  | Ast.Neg -> Vnum (-.to_number v)
  | Ast.Bnot -> Vnum (float_of_int (lnot (to_int v)))
  | Ast.Typeof -> Vstr (type_name v)

let pure_compare a b test =
  match (a, b) with
  | Vstr x, Vstr y -> Vbool (test (String.compare x y))
  | _ ->
    let x = to_number a and y = to_number b in
    if Float.is_nan x || Float.is_nan y then Vbool false else Vbool (test (Float.compare x y))

(* Mirrors [Interp.eval_binop] on primitive operands, reporting the
   allocation charge instead of performing it. *)
let pure_binop op a b : Value.t * charge list =
  match op with
  | Ast.Add -> (
    match (a, b) with
    | Vstr _, _ | _, Vstr _ ->
      let v = Vstr (to_string a ^ to_string b) in
      (v, [ Calloc v ])
    | _ -> (Vnum (to_number a +. to_number b), []))
  | Ast.Sub -> (Vnum (to_number a -. to_number b), [])
  | Ast.Mul -> (Vnum (to_number a *. to_number b), [])
  | Ast.Div -> (Vnum (to_number a /. to_number b), [])
  | Ast.Mod -> (Vnum (Float.rem (to_number a) (to_number b)), [])
  | Ast.Eq -> (Vbool (equal a b), [])
  | Ast.Neq -> (Vbool (not (equal a b)), [])
  | Ast.Lt -> (pure_compare a b (fun c -> c < 0), [])
  | Ast.Le -> (pure_compare a b (fun c -> c <= 0), [])
  | Ast.Gt -> (pure_compare a b (fun c -> c > 0), [])
  | Ast.Ge -> (pure_compare a b (fun c -> c >= 0), [])
  | Ast.Band -> (Vnum (float_of_int (to_int a land to_int b)), [])
  | Ast.Bor -> (Vnum (float_of_int (to_int a lor to_int b)), [])
  | Ast.Bxor -> (Vnum (float_of_int (to_int a lxor to_int b)), [])
  | Ast.Shl -> (Vnum (float_of_int (to_int a lsl (to_int b land 31))), [])
  | Ast.Shr -> (Vnum (float_of_int (to_int a asr (to_int b land 31))), [])

let rec fold (e : Ast.expr) : (Value.t * charge list) option =
  let lit v = Some (v, [ Cfuel ]) in
  match e.Ast.desc with
  | Ast.Undefined -> lit Vundefined
  | Ast.Null -> lit Vnull
  | Ast.Bool b -> lit (Vbool b)
  | Ast.Number n -> lit (Vnum n)
  | Ast.String s -> lit (Vstr s)
  | Ast.Unop (op, a) -> Option.map (fun (va, ca) -> (pure_unop op va, Cfuel :: ca)) (fold a)
  | Ast.Binop (op, a, b) -> (
    match (fold a, fold b) with
    | Some (va, ca), Some (vb, cb) ->
      let v, extra = pure_binop op va vb in
      Some (v, (Cfuel :: ca) @ cb @ extra)
    | _ -> None)
  | Ast.Logical (Ast.And, a, b) -> (
    match fold a with
    | Some (va, ca) when truthy va ->
      Option.map (fun (vb, cb) -> (vb, (Cfuel :: ca) @ cb)) (fold b)
    | Some (va, ca) -> Some (va, Cfuel :: ca)
    | None -> None)
  | Ast.Logical (Ast.Or, a, b) -> (
    match fold a with
    | Some (va, ca) when truthy va -> Some (va, Cfuel :: ca)
    | Some (_, ca) -> Option.map (fun (vb, cb) -> (vb, (Cfuel :: ca) @ cb)) (fold b)
    | None -> None)
  | Ast.Cond (c, t, f) -> (
    match fold c with
    | Some (vc, cc) ->
      Option.map
        (fun (vb, cb) -> (vb, (Cfuel :: cc) @ cb))
        (fold (if truthy vc then t else f))
    | None -> None)
  | _ -> None

let replay_charges ctx charges =
  List.iter
    (function Cfuel -> I.charge_fuel ctx 1 | Calloc v -> I.charge_alloc ctx v)
    charges

(* --- expression compilation ------------------------------------------ *)

type clval = { lread : rt -> Value.t; lwrite : rt -> Value.t -> unit }

let rec eval_list rt = function
  | [] -> []
  | ce :: tl ->
    let v = ce rt in
    v :: eval_list rt tl

let rec compile_expr cenv (e : Ast.expr) : cexpr =
  match fold e with
  | Some (v, [ Cfuel ]) ->
    fun rt ->
      charge1 rt.ctx;
      v
  | Some (v, charges) ->
    fun rt ->
      replay_charges rt.ctx charges;
      v
  | None -> compile_node cenv e

and compile_node cenv (e : Ast.expr) : cexpr =
  match e.Ast.desc with
  (* Literals are handled by [fold]; kept for exhaustiveness. *)
  | Ast.Undefined ->
    fun rt ->
      charge1 rt.ctx;
      Vundefined
  | Ast.Null ->
    fun rt ->
      charge1 rt.ctx;
      Vnull
  | Ast.Bool b ->
    let v = Vbool b in
    fun rt ->
      charge1 rt.ctx;
      v
  | Ast.Number n ->
    let v = Vnum n in
    fun rt ->
      charge1 rt.ctx;
      v
  | Ast.String s ->
    let v = Vstr s in
    fun rt ->
      charge1 rt.ctx;
      v
  | Ast.This ->
    fun rt ->
      charge1 rt.ctx;
      rt.this
  | Ast.Ident name -> (
    match resolve cenv name with
    | [ (0, s) ] -> (
      (* Fused charge + load for the common local-variable read. *)
      fun rt ->
        charge1 rt.ctx;
        match rt.frames with
        | f :: _ ->
          let v = Array.unsafe_get f s in
          if v != undeclared then v
          else (
            match global_ref rt name with
            | Some r -> !r
            | None -> error "'%s' is not defined" name)
        | [] -> assert false)
    | _ ->
      let read =
        compile_var_read cenv name ~on_missing:(fun _ -> error "'%s' is not defined" name)
      in
      fun rt ->
        charge1 rt.ctx;
        read rt)
  | Ast.Array_lit items ->
    let citems = List.map (compile_expr cenv) items in
    fun rt ->
      charge1 rt.ctx;
      let v = Varr (new_arr (eval_list rt citems)) in
      charge_allocv rt.ctx v;
      v
  | Ast.Object_lit fields ->
    (* The insertion order is static, so the whole shape chain is
       resolved at compile time: the closure allocates an exact-sized
       slot array and stores each field by index (duplicate keys fold
       to the same slot, last write wins, evaluation order unchanged).
       The tree-walker builds the same shapes dynamically — both end at
       the same shared shape node. *)
    let atoms = List.map (fun (k, fe) -> (Atom.intern k, compile_expr cenv fe)) fields in
    let final_shape, rev_slots =
      List.fold_left
        (fun (sh, acc) (atom, _) ->
          let s = shape_find sh atom in
          if s >= 0 then (sh, s :: acc)
          else
            let sh' = shape_transition sh atom in
            (sh', sh'.sslot :: acc))
        (root_shape, []) atoms
    in
    let field_slots = Array.of_list (List.rev rev_slots) in
    let cexprs = Array.of_list (List.map snd atoms) in
    let nfields = Array.length cexprs in
    fun rt ->
      charge1 rt.ctx;
      let o = new_obj_with_shape final_shape in
      let slots = o.slots in
      for i = 0 to nfields - 1 do
        Array.unsafe_set slots
          (Array.unsafe_get field_slots i)
          ((Array.unsafe_get cexprs i) rt)
      done;
      let v = Vobj o in
      charge_allocv rt.ctx v;
      v
  | Ast.Func (params, body) ->
    let code = compile_function cenv ~fname:"<anonymous>" params body in
    fun rt ->
      charge1 rt.ctx;
      let v = Vfun (Compiled_fn { code; captured = rt.frames; cglobals = rt.globals }) in
      charge_allocv rt.ctx v;
      v
  | Ast.Member (obj_e, name) ->
    let cobj = compile_expr cenv obj_e in
    let atom = Atom.intern name in
    let ic = new_ic () in
    fun rt ->
      charge1 rt.ctx;
      member_get_ic rt ic atom name (cobj rt)
  | Ast.Index (obj_e, idx_e) ->
    let cobj = compile_expr cenv obj_e and cidx = compile_expr cenv idx_e in
    fun rt ->
      charge1 rt.ctx;
      let obj = cobj rt in
      let idx = cidx rt in
      I.index_get rt.ctx obj idx
  | Ast.Call (f_e, arg_es) -> (
    let cargs = List.map (compile_expr cenv) arg_es in
    match f_e.Ast.desc with
    | Ast.Member (obj_e, name) ->
      (* Method call: the member node itself is not evaluated (and so,
         as in the tree-walker, charges no fuel of its own). *)
      let cobj = compile_expr cenv obj_e in
      let atom = Atom.intern name in
      let ic = new_ic () in
      fun rt ->
        charge1 rt.ctx;
        let obj = cobj rt in
        let args = eval_list rt cargs in
        invoke_ic rt ic atom name obj args
    | _ ->
      let cf = compile_expr cenv f_e in
      fun rt ->
        charge1 rt.ctx;
        let f = cf rt in
        let args = eval_list rt cargs in
        apply_fast rt f args)
  | Ast.New (ctor_e, arg_es) ->
    let cctor = compile_expr cenv ctor_e in
    let cargs = List.map (compile_expr cenv) arg_es in
    fun rt ->
      charge1 rt.ctx;
      let ctor = cctor rt in
      let args = eval_list rt cargs in
      I.construct rt.ctx ctor args
  | Ast.Assign (Ast.Lident name, op, rhs_e)
    when ( match resolve cenv name with [ (0, _) ] -> true | _ -> false) -> (
    (* Fused store to a local slot — the innermost loops of real
       handlers are accumulator updates like [s += c]. The undeclared
       fallback replays the generic read/write-through-globals path. *)
    let s = match resolve cenv name with [ (0, s) ] -> s | _ -> assert false in
    let crhs = compile_expr cenv rhs_e in
    match op with
    | None -> (
      fun rt ->
        charge1 rt.ctx;
        let v = crhs rt in
        (match rt.frames with
         | f :: _ ->
           if Array.unsafe_get f s != undeclared then Array.unsafe_set f s v
           else write_global rt name v
         | [] -> assert false);
        v)
    | Some binop -> (
      let bop = specialize_binop binop in
      fun rt ->
        charge1 rt.ctx;
        let rhs = crhs rt in
        match rt.frames with
        | f :: _ ->
          let cur = Array.unsafe_get f s in
          if cur != undeclared then begin
            let v = bop rt.ctx cur rhs in
            Array.unsafe_set f s v;
            v
          end
          else begin
            let old = match global_ref rt name with Some r -> !r | None -> Vundefined in
            let v = bop rt.ctx old rhs in
            write_global rt name v;
            v
          end
        | [] -> assert false))
  | Ast.Assign (lv, op, rhs_e) -> (
    let clv = compile_lvalue cenv lv in
    let crhs = compile_expr cenv rhs_e in
    match op with
    | None ->
      fun rt ->
        charge1 rt.ctx;
        let v = crhs rt in
        clv.lwrite rt v;
        v
    | Some binop ->
      let bop = specialize_binop binop in
      fun rt ->
        charge1 rt.ctx;
        let rhs = crhs rt in
        let old = clv.lread rt in
        let v = bop rt.ctx old rhs in
        clv.lwrite rt v;
        v)
  | Ast.Unop (op, a_e) -> (
    let ca = compile_expr cenv a_e in
    match op with
    | Ast.Not ->
      fun rt ->
        charge1 rt.ctx;
        vbool (not (truthy_v (ca rt)))
    | Ast.Neg ->
      fun rt ->
        charge1 rt.ctx;
        Vnum (-.to_number (ca rt))
    | Ast.Bnot ->
      fun rt ->
        charge1 rt.ctx;
        Vnum (float_of_int (lnot (to_int (ca rt))))
    | Ast.Typeof ->
      fun rt ->
        charge1 rt.ctx;
        Vstr (type_name (ca rt)))
  | Ast.Binop (op, a_e, b_e) -> (
    (* Loop conditions and accumulator updates are dominated by
       [local <op> literal] and [local <op> local]; fuse the operand
       loads into the binop closure. Fuel charges stay one-per-node in
       tree-walker order (binop, a, b) so the differential's fuel
       accounting is unchanged even when an operand read raises. *)
    let bop = specialize_binop op in
    let slot_of e =
      match e.Ast.desc with
      | Ast.Ident name -> (
        match resolve cenv name with [ (0, s) ] -> Some (name, s) | _ -> None)
      | _ -> None
    in
    let const_of e =
      match fold e with Some (v, [ Cfuel ]) -> Some v | _ -> None
    in
    let read_fallback rt name =
      match global_ref rt name with
      | Some r -> !r
      | None -> error "'%s' is not defined" name
    in
    match (slot_of a_e, const_of b_e, slot_of b_e) with
    | Some (aname, sa), Some vb, _ ->
      fun rt -> (
        charge1 rt.ctx;
        charge1 rt.ctx;
        match rt.frames with
        | f :: _ ->
          let a = Array.unsafe_get f sa in
          let a = if a != undeclared then a else read_fallback rt aname in
          charge1 rt.ctx;
          bop rt.ctx a vb
        | [] -> assert false)
    | Some (aname, sa), None, Some (bname, sb) ->
      fun rt -> (
        charge1 rt.ctx;
        charge1 rt.ctx;
        match rt.frames with
        | f :: _ ->
          let a = Array.unsafe_get f sa in
          let a = if a != undeclared then a else read_fallback rt aname in
          charge1 rt.ctx;
          let b = Array.unsafe_get f sb in
          let b = if b != undeclared then b else read_fallback rt bname in
          bop rt.ctx a b
        | [] -> assert false)
    | _ -> (
      let ca = compile_expr cenv a_e in
      match const_of b_e with
      | Some vb ->
        fun rt ->
          charge1 rt.ctx;
          let a = ca rt in
          charge1 rt.ctx;
          bop rt.ctx a vb
      | None ->
        let cb = compile_expr cenv b_e in
        fun rt ->
          charge1 rt.ctx;
          let a = ca rt in
          let b = cb rt in
          bop rt.ctx a b))
  | Ast.Logical (Ast.And, a_e, b_e) ->
    let ca = compile_expr cenv a_e and cb = compile_expr cenv b_e in
    fun rt ->
      charge1 rt.ctx;
      let a = ca rt in
      if truthy_v a then cb rt else a
  | Ast.Logical (Ast.Or, a_e, b_e) ->
    let ca = compile_expr cenv a_e and cb = compile_expr cenv b_e in
    fun rt ->
      charge1 rt.ctx;
      let a = ca rt in
      if truthy_v a then a else cb rt
  | Ast.Cond (c_e, t_e, f_e) ->
    let cc = compile_expr cenv c_e in
    let ct = compile_expr cenv t_e and cf = compile_expr cenv f_e in
    fun rt ->
      charge1 rt.ctx;
      if truthy_v (cc rt) then ct rt else cf rt
  | Ast.Incr (prefix, lv) -> compile_step cenv lv 1.0 prefix
  | Ast.Decr (prefix, lv) -> compile_step cenv lv (-1.0) prefix
  | Ast.Delete (obj_e, field) -> (
    let cobj = compile_expr cenv obj_e in
    fun rt ->
      charge1 rt.ctx;
      match cobj rt with
      | Vobj o ->
        obj_delete o field;
        Vbool true
      | v -> error "cannot delete property '%s' of a %s" field (type_name v))

and compile_step cenv lv delta prefix : cexpr =
  match lv with
  | Ast.Lident name when ( match resolve cenv name with [ (0, _) ] -> true | _ -> false) -> (
    (* Fused loop-counter update on a local slot. *)
    let s = match resolve cenv name with [ (0, s) ] -> s | _ -> assert false in
    fun rt ->
      charge1 rt.ctx;
      match rt.frames with
      | f :: _ ->
        let cur = Array.unsafe_get f s in
        if cur != undeclared then begin
          let old = match cur with Vnum x -> x | v -> to_number v in
          let updated = old +. delta in
          Array.unsafe_set f s (Vnum updated);
          Vnum (if prefix then updated else old)
        end
        else begin
          let old =
            match global_ref rt name with
            | Some r -> ( match !r with Vnum x -> x | v -> to_number v)
            | None -> Float.nan
          in
          let updated = old +. delta in
          write_global rt name (Vnum updated);
          Vnum (if prefix then updated else old)
        end
      | [] -> assert false)
  | _ ->
    let clv = compile_lvalue cenv lv in
    fun rt ->
      charge1 rt.ctx;
      let old = match clv.lread rt with Vnum x -> x | v -> to_number v in
      let updated = old +. delta in
      clv.lwrite rt (Vnum updated);
      Vnum (if prefix then updated else old)

and compile_lvalue cenv (lv : Ast.lvalue) : clval =
  match lv with
  | Ast.Lident name ->
    {
      lread = compile_var_read cenv name ~on_missing:(fun _ -> Vundefined);
      lwrite = compile_var_write cenv name;
    }
  | Ast.Lmember (obj_e, name) ->
    let cobj = compile_expr cenv obj_e in
    let atom = Atom.intern name in
    let ric = new_ic () and wic = new_ic () in
    {
      lread = (fun rt -> member_get_ic rt ric atom name (cobj rt));
      lwrite = (fun rt v -> member_set_ic wic atom name (cobj rt) v);
    }
  | Ast.Lindex (obj_e, idx_e) ->
    let cobj = compile_expr cenv obj_e and cidx = compile_expr cenv idx_e in
    {
      lread =
        (fun rt ->
          let obj = cobj rt in
          let idx = cidx rt in
          I.index_get rt.ctx obj idx);
      lwrite =
        (fun rt v ->
          let obj = cobj rt in
          let idx = cidx rt in
          I.index_set obj idx v);
    }

(* --- statement compilation ------------------------------------------- *)

and compile_stmt cenv (s : Ast.stmt) : cstmt =
  match s.Ast.sdesc with
  | Ast.Sexpr e ->
    let ce = compile_expr cenv e in
    fun rt ->
      charge1 rt.ctx;
      ignore (ce rt)
  | Ast.Svar bindings -> (
    let cbindings =
      List.map
        (fun (name, init) -> (compile_decl cenv name, Option.map (compile_expr cenv) init))
        bindings
    in
    match cbindings with
    | [ (d, Some ce) ] ->
      fun rt ->
        charge1 rt.ctx;
        run_decl d rt (ce rt)
    | [ (d, None) ] ->
      fun rt ->
        charge1 rt.ctx;
        run_decl d rt Vundefined
    | cbindings ->
      fun rt ->
        charge1 rt.ctx;
        List.iter
          (fun (d, init) ->
            let v = match init with Some ce -> ce rt | None -> Vundefined in
            run_decl d rt v)
          cbindings)
  | Ast.Sif (cond, then_b, else_b) ->
    let cc = compile_expr cenv cond in
    let ct = compile_body cenv then_b and ce = compile_body cenv else_b in
    fun rt ->
      charge1 rt.ctx;
      if truthy_v (cc rt) then ct rt else ce rt
  | Ast.Swhile (cond, body) ->
    let cc = compile_expr cenv cond in
    let cbi = guard_continue body (compile_body cenv body) in
    let loop =
      guard_break body (fun rt ->
          while truthy_v (cc rt) do
            cbi rt
          done)
    in
    fun rt ->
      charge1 rt.ctx;
      loop rt
  | Ast.Sdo_while (body, cond) ->
    let cbi = guard_continue body (compile_body cenv body) in
    let cc = compile_expr cenv cond in
    let loop =
      guard_break body (fun rt ->
          let continue = ref true in
          while !continue do
            cbi rt;
            continue := truthy_v (cc rt)
          done)
    in
    fun rt ->
      charge1 rt.ctx;
      loop rt
  | Ast.Sfor (init, cond, step, body) -> (
    let cinit = Option.map (compile_stmt cenv) init in
    let ccond = Option.map (compile_expr cenv) cond in
    let cstep = Option.map (compile_expr cenv) step in
    let cbi = guard_continue body (compile_body cenv body) in
    (* Specialize on which clauses exist so the per-iteration path has
       no Option dispatch and no allocated [check] closure. *)
    let loop =
      match (ccond, cstep) with
      | Some cc, Some cs ->
        fun rt ->
          while truthy_v (cc rt) do
            cbi rt;
            ignore (cs rt)
          done
      | Some cc, None ->
        fun rt ->
          while truthy_v (cc rt) do
            cbi rt
          done
      | None, Some cs ->
        fun rt ->
          while true do
            cbi rt;
            ignore (cs rt)
          done
      | None, None ->
        fun rt ->
          while true do
            cbi rt
          done
    in
    let loop = guard_break body loop in
    match cinit with
    | Some ci ->
      fun rt ->
        charge1 rt.ctx;
        ci rt;
        loop rt
    | None ->
      fun rt ->
        charge1 rt.ctx;
        loop rt)
  | Ast.Sfor_in (name, subject_e, body) ->
    let csubj = compile_expr cenv subject_e in
    let decl = compile_decl cenv name in
    let bind = compile_var_bind cenv name in
    let cbi = guard_continue body (compile_body cenv body) in
    fun rt ->
      charge1 rt.ctx;
      let subject = csubj rt in
      run_decl decl rt Vundefined;
      (try
         match subject with
         | Vobj o ->
           List.iter
             (fun key ->
               bind rt (Vstr key);
               cbi rt)
             (obj_keys o)
         | Varr a ->
           for i = 0 to a.len - 1 do
             bind rt (Vnum (float_of_int i));
             cbi rt
           done
         | Vnull | Vundefined -> ()
         | v -> error "cannot enumerate a %s" (type_name v)
       with I.Break_exc -> ())
  | Ast.Sreturn e -> (
    match e with
    | Some e ->
      let ce = compile_expr cenv e in
      fun rt ->
        charge1 rt.ctx;
        raise (I.Return_exc (ce rt))
    | None ->
      fun rt ->
        charge1 rt.ctx;
        raise (I.Return_exc Vundefined))
  | Ast.Sbreak ->
    fun rt ->
      charge1 rt.ctx;
      raise I.Break_exc
  | Ast.Scontinue ->
    fun rt ->
      charge1 rt.ctx;
      raise I.Continue_exc
  | Ast.Sfunc _ ->
    (* Hoisted by [compile_body]; execution is a charged no-op. *)
    fun rt -> I.charge_fuel rt.ctx 1
  | Ast.Sblock stmts ->
    let cb = compile_body cenv stmts in
    fun rt ->
      charge1 rt.ctx;
      cb rt
  | Ast.Sthrow e ->
    let ce = compile_expr cenv e in
    fun rt ->
      charge1 rt.ctx;
      raise (I.Throw_exc (ce rt))
  | Ast.Stry (body, name, handler) ->
    let cb = compile_body cenv body in
    let decl = compile_decl cenv name in
    let ch = compile_body cenv handler in
    fun rt ->
      charge1 rt.ctx;
      (try cb rt with
      | I.Throw_exc v ->
        run_decl decl rt v;
        ch rt
      | Script_error msg ->
        run_decl decl rt (Vstr msg);
        ch rt)

(* Statement lists re-hoist their function declarations on every entry,
   like [Interp.exec_body] (fresh closure values each time, no fuel or
   alloc charge). *)
and compile_body cenv (stmts : Ast.stmt list) : cstmt =
  let hoisted =
    List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Sfunc (name, params, body) ->
          Some (compile_decl cenv name, compile_function cenv ~fname:name params body)
        | _ -> None)
      stmts
  in
  let cstmts = Array.of_list (List.map (compile_stmt cenv) stmts) in
  (* Size-specialized sequencing: loop bodies re-enter every iteration,
     and [Array.iter f] with a closure over [rt] would allocate per
     entry. *)
  let seq =
    match cstmts with
    | [||] -> fun _ -> ()
    | [| c0 |] -> c0
    | [| c0; c1 |] ->
      fun rt ->
        c0 rt;
        c1 rt
    | [| c0; c1; c2 |] ->
      fun rt ->
        c0 rt;
        c1 rt;
        c2 rt
    | _ ->
      let n = Array.length cstmts in
      fun rt ->
        for i = 0 to n - 1 do
          (Array.unsafe_get cstmts i) rt
        done
  in
  match hoisted with
  | [] -> seq
  | hoisted ->
    let hoisted = Array.of_list hoisted in
    let nh = Array.length hoisted in
    fun rt ->
      for i = 0 to nh - 1 do
        let decl, code = Array.unsafe_get hoisted i in
        run_decl decl rt
          (Vfun (Compiled_fn { code; captured = rt.frames; cglobals = rt.globals }))
      done;
      seq rt

and compile_function cenv ~fname params body : Value.compiled_code =
  let si = { slots = Hashtbl.create 16; nslots = 0 } in
  let param_slots = Array.of_list (List.map (slot_of si) params) in
  List.iter (collect_stmt si) body;
  let cbody = compile_body (si :: cenv) body in
  let nslots = si.nslots in
  let nparams = Array.length param_slots in
  let poolable = not (List.exists stmt_has_func body) in
  let ccall ctx ~this ~globals captured args =
    (* The caller ([Interp.apply_fn]) has already charged the 4-unit
       invocation fuel, for script and compiled functions alike. *)
    let frame =
      if poolable then frame_acquire ctx nslots else Array.make nslots undeclared
    in
    let argv = Array.of_list args in
    let nargs = Array.length argv in
    for i = 0 to nparams - 1 do
      frame.(param_slots.(i)) <- (if i < nargs then argv.(i) else Vundefined)
    done;
    let rt = { ctx; globals; frames = frame :: captured; this } in
    let result =
      try
        cbody rt;
        Vundefined
      with
      | I.Return_exc v -> v
      (* break/continue must not cross a function boundary *)
      | I.Break_exc -> error "'break' outside of a loop"
      | I.Continue_exc -> error "'continue' outside of a loop"
    in
    (* Only on normal exits: a propagating exception abandons the
       frame to the GC rather than risk recycling something a handler
       still reaches. *)
    if poolable then frame_release ctx frame;
    result
  in
  { cfname = fname; ccall }

(* --- whole programs --------------------------------------------------- *)

type citem = Cexpr of cexpr | Cstmt of cstmt

type program = { hoisted : (string * Value.compiled_code) array; items : citem array }

let compile (prog : Ast.program) : program =
  let cenv : cenv = [] in
  let hoisted =
    List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Sfunc (name, params, body) ->
          Some (name, compile_function cenv ~fname:name params body)
        | _ -> None)
      prog
  in
  let items =
    List.map
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Sexpr e -> Cexpr (compile_expr cenv e)
        | _ -> Cstmt (compile_stmt cenv s))
      prog
  in
  { hoisted = Array.of_list hoisted; items = Array.of_list items }

let run ctx (p : program) : Value.t =
  let rt = { ctx; globals = ctx.globals; frames = []; this = Vundefined } in
  (* Toplevel: hoist functions, then run; remember last expression
     value — mirroring [Interp.run], including its quirk of evaluating
     toplevel expression statements without the per-statement fuel
     charge. *)
  for i = 0 to Array.length p.hoisted - 1 do
    let name, code = Array.unsafe_get p.hoisted i in
    I.define_global ctx name
      (Vfun (Compiled_fn { code; captured = []; cglobals = ctx.globals }))
  done;
  let last = ref Vundefined in
  (try
     for i = 0 to Array.length p.items - 1 do
       match Array.unsafe_get p.items i with
       | Cexpr ce -> last := ce rt
       | Cstmt cs -> cs rt
     done
   with
  | I.Return_exc v -> last := v
  | I.Throw_exc v -> error "uncaught exception: %s" (to_string v)
  | I.Break_exc -> error "'break' outside of a loop"
  | I.Continue_exc -> error "'continue' outside of a loop");
  !last

(* --- the compiled-program cache --------------------------------------- *)

(* Keyed by SHA-256 of the script body: the client wall, a site script
   and the server wall are each parsed and compiled once per process,
   no matter how many stages or simulated nodes load them (§4's context
   amortization taken one step further). Only successful compilations
   are cached — failing scripts are negative-cached upstream by the
   node.

   The table is bounded with LRU eviction. Diffusion's hash-miss
   offload traffic makes unbounded growth reachable (every distinct
   script body a peer ever names lands here), and flushing the whole
   table on overflow — the previous policy — would throw away the hot
   wall scripts along with the flood. *)

type cache_stats = { hits : int; misses : int; entries : int; evictions : int }

type cache_entry = { program : program; mutable last_used : int }

let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 64

let cache_hits = ref 0

let cache_misses = ref 0

let cache_evictions = ref 0

let cache_capacity = ref 1024

(* Monotone access clock: cheaper than timestamps and immune to the
   simulated-vs-wall clock question (the cache is process-wide). *)
let cache_tick = ref 0

let touch entry =
  incr cache_tick;
  entry.last_used <- !cache_tick

let set_cache_capacity n = cache_capacity := max 1 n

let cache_stats () =
  {
    hits = !cache_hits;
    misses = !cache_misses;
    entries = Hashtbl.length cache;
    evictions = !cache_evictions;
  }

let cache_clear () = Hashtbl.reset cache

let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (key, entry))
      cache None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove cache key;
    incr cache_evictions
  | None -> ()

let cache_insert key p =
  while Hashtbl.length cache >= !cache_capacity do
    evict_lru ()
  done;
  let entry = { program = p; last_used = 0 } in
  touch entry;
  Hashtbl.replace cache key entry

let find_cached_by_hash hash =
  match Hashtbl.find_opt cache hash with
  | Some entry ->
    touch entry;
    Some entry.program
  | None -> (
    (* Disk fallthrough: a diffusion peer naming a program by hash can
       be served from the persistent registry even if this process
       never saw the source (or the LRU dropped it). *)
    match Registry.load ~hash with
    | Some ast ->
      let p = compile ast in
      cache_insert hash p;
      Some p
    | None -> None)

let get_program ?on_cache source =
  let key = Nk_crypto.Sha256.digest source in
  match Hashtbl.find_opt cache key with
  | Some entry ->
    incr cache_hits;
    touch entry;
    (match on_cache with Some f -> f `Hit | None -> ());
    entry.program
  | None ->
    incr cache_misses;
    (match on_cache with Some f -> f `Miss | None -> ());
    (* Warm start: a registry hit replaces the parse (the dominant cost
       of a first execution) with an unmarshal + compile. A miss parses
       and then persists the AST for the next process. Either way the
       callback reported [`Miss] above — the registry is a parse
       bypass, not a cache hit; [Registry.stats] accounts it. *)
    let p =
      match Registry.load ~hash:key with
      | Some ast -> compile ast
      | None ->
        let ast = Parser.parse source in
        Registry.store ~hash:key ast;
        compile ast
    in
    cache_insert key p;
    p

let run_string ?on_cache ctx source = run ctx (get_program ?on_cache source)

(* Node start: pull every valid registry entry into the in-memory cache
   so the first request for a known site pays a cache hit, not a disk
   read — let alone a parse. Invalid entries are skipped (and counted
   by [Registry.stats]); an over-full registry just cycles the LRU. *)
let preload_registry () =
  List.fold_left
    (fun loaded hash ->
      if Hashtbl.mem cache hash then loaded
      else
        match Registry.load ~hash with
        | Some ast ->
          cache_insert hash (compile ast);
          loaded + 1
        | None -> loaded)
    0 (Registry.entries ())
