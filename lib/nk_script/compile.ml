(* Closure compilation of NKScript.

   The tree-walking evaluator in [Interp] re-dispatches on AST
   constructors and resolves every variable with a Hashtbl probe down a
   scope-chain list on every execution — the hottest path in the proxy,
   paid per handler per stage per request. This pass lowers each AST
   node exactly once into an OCaml closure and resolves variables to
   lexical slot addresses (frame arrays indexed at compile time), so
   handler invocation runs pre-compiled code.

   Two invariants shape everything below:

   1. Observable equivalence with [Interp], including *bit-identical
      fuel and heap accounting*: the resource monitor's congestion
      numbers, termination points, and every seed bench figure depend
      on the charges, so each compiled closure performs the same
      [charge_fuel]/[charge_alloc] calls, in the same order, as the
      tree-walker visiting the same nodes. Constant folding keeps this
      by recording the charge trace the tree-walker would have emitted
      and replaying it (unit fuel steps, so even exhaustion mid-fold
      raises at the identical counter value).

   2. Compiled programs are context-independent: the same [program] can
      execute in any number of scripting contexts, which is what lets
      the SHA-256-keyed cache share one compilation across every stage
      and node that loads the same script body. Context state (fuel,
      heap, globals) only enters at run time through [rt].

   Variable semantics note: NKScript scoping is function-level and
   *temporal* — [var x] shadows an outer [x] only from the moment the
   declaration executes (the tree-walker's Hashtbl entry appears then).
   Slots therefore start as a sentinel; a reference probes its static
   candidate slots innermost-first and falls through to the enclosing
   bindings — in practice a single array load and one physical-equality
   check — with true globals resolved in the defining context's table. *)

open Value
module I = Interp

(* --- runtime environment -------------------------------------------- *)

type rt = {
  ctx : Value.ctx; (* the *calling* context: fuel/heap are charged here *)
  globals : Value.scope; (* lexical globals: the defining context's table *)
  frames : Value.t array list; (* innermost first *)
  this : Value.t;
}

type cexpr = rt -> Value.t

type cstmt = rt -> unit

(* Marks a slot whose declaration has not executed yet; compared with
   physical equality and never visible to scripts. *)
let undeclared : Value.t = Vstr "<nk-undeclared-slot>"

let rec frame_at frames d =
  match frames with
  | f :: rest -> if d = 0 then f else frame_at rest (d - 1)
  | [] -> assert false

(* --- compile-time scope table ---------------------------------------- *)

type scope_info = { slots : (string, int) Hashtbl.t; mutable nslots : int }

type cenv = scope_info list
(* Innermost first; [] at toplevel, where every name is a global. *)

let slot_of si name =
  match Hashtbl.find_opt si.slots name with
  | Some s -> s
  | None ->
    let s = si.nslots in
    si.nslots <- s + 1;
    Hashtbl.add si.slots name s;
    s

(* Function-level declarations: params, [var]s, hoisted functions,
   for-in and catch variables — everywhere in the body except inside
   nested function literals (those get their own frame). *)
let rec collect_stmt si (s : Ast.stmt) =
  match s.Ast.sdesc with
  | Ast.Svar bindings -> List.iter (fun (n, _) -> ignore (slot_of si n)) bindings
  | Ast.Sfunc (name, _, _) -> ignore (slot_of si name)
  | Ast.Sif (_, a, b) ->
    List.iter (collect_stmt si) a;
    List.iter (collect_stmt si) b
  | Ast.Swhile (_, b) | Ast.Sdo_while (b, _) -> List.iter (collect_stmt si) b
  | Ast.Sfor (init, _, _, b) ->
    Option.iter (collect_stmt si) init;
    List.iter (collect_stmt si) b
  | Ast.Sfor_in (n, _, b) ->
    ignore (slot_of si n);
    List.iter (collect_stmt si) b
  | Ast.Stry (b, n, h) ->
    List.iter (collect_stmt si) b;
    ignore (slot_of si n);
    List.iter (collect_stmt si) h
  | Ast.Sblock b -> List.iter (collect_stmt si) b
  | Ast.Sexpr _ | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue | Ast.Sthrow _ -> ()

(* Static candidates for a reference: every enclosing function scope
   that declares [name], innermost first, as (depth, slot). *)
let resolve (cenv : cenv) name =
  let rec go depth = function
    | [] -> []
    | si :: rest -> (
      match Hashtbl.find_opt si.slots name with
      | Some s -> (depth, s) :: go (depth + 1) rest
      | None -> go (depth + 1) rest)
  in
  go 0 cenv

let global_ref rt name = Hashtbl.find_opt rt.globals name

let compile_var_read cenv name ~(on_missing : rt -> Value.t) : rt -> Value.t =
  match resolve cenv name with
  | [] -> fun rt -> ( match global_ref rt name with Some r -> !r | None -> on_missing rt)
  | [ (0, s) ] ->
    fun rt ->
      let v = (List.hd rt.frames).(s) in
      if v != undeclared then v
      else ( match global_ref rt name with Some r -> !r | None -> on_missing rt)
  | cands ->
    let cands = Array.of_list cands in
    let n = Array.length cands in
    fun rt ->
      let rec go i =
        if i >= n then
          match global_ref rt name with Some r -> !r | None -> on_missing rt
        else begin
          let d, s = cands.(i) in
          let v = (frame_at rt.frames d).(s) in
          if v != undeclared then v else go (i + 1)
        end
      in
      go 0

(* Assignment: first live binding wins; otherwise an existing global's
   ref is mutated in place; otherwise the name springs into existence
   in the *calling* context's globals — exactly the tree-walker's
   [write_lvalue] (which looks up through the closure but creates new
   globals in [ctx.globals]). *)
let compile_var_write cenv name : rt -> Value.t -> unit =
  let cands = Array.of_list (resolve cenv name) in
  let n = Array.length cands in
  fun rt v ->
    let rec go i =
      if i >= n then
        match global_ref rt name with
        | Some r -> r := v
        | None -> Hashtbl.replace rt.ctx.globals name (ref v)
      else begin
        let d, s = cands.(i) in
        let f = frame_at rt.frames d in
        if f.(s) != undeclared then f.(s) <- v else go (i + 1)
      end
    in
    go 0

(* The for-in loop variable rebind: like a write, but a miss everywhere
   is silently dropped (mirrors [Sfor_in]'s [bind]). *)
let compile_var_bind cenv name : rt -> Value.t -> unit =
  let cands = Array.of_list (resolve cenv name) in
  let n = Array.length cands in
  fun rt v ->
    let rec go i =
      if i >= n then ( match global_ref rt name with Some r -> r := v | None -> ())
      else begin
        let d, s = cands.(i) in
        let f = frame_at rt.frames d in
        if f.(s) != undeclared then f.(s) <- v else go (i + 1)
      end
    in
    go 0

(* Declarations always target the innermost scope. *)
type decl = Dslot of int | Dglobal of string

let compile_decl (cenv : cenv) name =
  match cenv with si :: _ -> Dslot (slot_of si name) | [] -> Dglobal name

let run_decl decl rt v =
  match decl with
  | Dslot s -> (List.hd rt.frames).(s) <- v
  | Dglobal n -> Hashtbl.replace rt.globals n (ref v)

(* --- constant folding ------------------------------------------------ *)

(* A folded subtree must still charge what the tree-walker charges. The
   fold therefore records the exact trace — one [Cfuel] per node visit,
   one [Calloc] per allocating operation, in evaluation order — and the
   compiled closure replays it. Fuel replays as unit steps so a limit
   crossed mid-subtree raises at the identical [fuel_used]. *)
type charge = Cfuel | Calloc of Value.t

let pure_unop op v =
  match op with
  | Ast.Not -> Vbool (not (truthy v))
  | Ast.Neg -> Vnum (-.to_number v)
  | Ast.Bnot -> Vnum (float_of_int (lnot (to_int v)))
  | Ast.Typeof -> Vstr (type_name v)

let pure_compare a b test =
  match (a, b) with
  | Vstr x, Vstr y -> Vbool (test (compare x y))
  | _ ->
    let x = to_number a and y = to_number b in
    if Float.is_nan x || Float.is_nan y then Vbool false else Vbool (test (compare x y))

(* Mirrors [Interp.eval_binop] on primitive operands, reporting the
   allocation charge instead of performing it. *)
let pure_binop op a b : Value.t * charge list =
  match op with
  | Ast.Add -> (
    match (a, b) with
    | Vstr _, _ | _, Vstr _ ->
      let v = Vstr (to_string a ^ to_string b) in
      (v, [ Calloc v ])
    | _ -> (Vnum (to_number a +. to_number b), []))
  | Ast.Sub -> (Vnum (to_number a -. to_number b), [])
  | Ast.Mul -> (Vnum (to_number a *. to_number b), [])
  | Ast.Div -> (Vnum (to_number a /. to_number b), [])
  | Ast.Mod -> (Vnum (Float.rem (to_number a) (to_number b)), [])
  | Ast.Eq -> (Vbool (equal a b), [])
  | Ast.Neq -> (Vbool (not (equal a b)), [])
  | Ast.Lt -> (pure_compare a b (fun c -> c < 0), [])
  | Ast.Le -> (pure_compare a b (fun c -> c <= 0), [])
  | Ast.Gt -> (pure_compare a b (fun c -> c > 0), [])
  | Ast.Ge -> (pure_compare a b (fun c -> c >= 0), [])
  | Ast.Band -> (Vnum (float_of_int (to_int a land to_int b)), [])
  | Ast.Bor -> (Vnum (float_of_int (to_int a lor to_int b)), [])
  | Ast.Bxor -> (Vnum (float_of_int (to_int a lxor to_int b)), [])
  | Ast.Shl -> (Vnum (float_of_int (to_int a lsl (to_int b land 31))), [])
  | Ast.Shr -> (Vnum (float_of_int (to_int a asr (to_int b land 31))), [])

let rec fold (e : Ast.expr) : (Value.t * charge list) option =
  let lit v = Some (v, [ Cfuel ]) in
  match e.Ast.desc with
  | Ast.Undefined -> lit Vundefined
  | Ast.Null -> lit Vnull
  | Ast.Bool b -> lit (Vbool b)
  | Ast.Number n -> lit (Vnum n)
  | Ast.String s -> lit (Vstr s)
  | Ast.Unop (op, a) -> Option.map (fun (va, ca) -> (pure_unop op va, Cfuel :: ca)) (fold a)
  | Ast.Binop (op, a, b) -> (
    match (fold a, fold b) with
    | Some (va, ca), Some (vb, cb) ->
      let v, extra = pure_binop op va vb in
      Some (v, (Cfuel :: ca) @ cb @ extra)
    | _ -> None)
  | Ast.Logical (Ast.And, a, b) -> (
    match fold a with
    | Some (va, ca) when truthy va ->
      Option.map (fun (vb, cb) -> (vb, (Cfuel :: ca) @ cb)) (fold b)
    | Some (va, ca) -> Some (va, Cfuel :: ca)
    | None -> None)
  | Ast.Logical (Ast.Or, a, b) -> (
    match fold a with
    | Some (va, ca) when truthy va -> Some (va, Cfuel :: ca)
    | Some (_, ca) -> Option.map (fun (vb, cb) -> (vb, (Cfuel :: ca) @ cb)) (fold b)
    | None -> None)
  | Ast.Cond (c, t, f) -> (
    match fold c with
    | Some (vc, cc) ->
      Option.map
        (fun (vb, cb) -> (vb, (Cfuel :: cc) @ cb))
        (fold (if truthy vc then t else f))
    | None -> None)
  | _ -> None

let replay_charges ctx charges =
  List.iter
    (function Cfuel -> I.charge_fuel ctx 1 | Calloc v -> I.charge_alloc ctx v)
    charges

(* --- expression compilation ------------------------------------------ *)

type clval = { lread : rt -> Value.t; lwrite : rt -> Value.t -> unit }

let rec eval_list rt = function
  | [] -> []
  | ce :: tl ->
    let v = ce rt in
    v :: eval_list rt tl

let rec compile_expr cenv (e : Ast.expr) : cexpr =
  match fold e with
  | Some (v, [ Cfuel ]) ->
    fun rt ->
      I.charge_fuel rt.ctx 1;
      v
  | Some (v, charges) ->
    fun rt ->
      replay_charges rt.ctx charges;
      v
  | None -> compile_node cenv e

and compile_node cenv (e : Ast.expr) : cexpr =
  match e.Ast.desc with
  (* Literals are handled by [fold]; kept for exhaustiveness. *)
  | Ast.Undefined ->
    fun rt ->
      I.charge_fuel rt.ctx 1;
      Vundefined
  | Ast.Null ->
    fun rt ->
      I.charge_fuel rt.ctx 1;
      Vnull
  | Ast.Bool b ->
    let v = Vbool b in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      v
  | Ast.Number n ->
    let v = Vnum n in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      v
  | Ast.String s ->
    let v = Vstr s in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      v
  | Ast.This ->
    fun rt ->
      I.charge_fuel rt.ctx 1;
      rt.this
  | Ast.Ident name ->
    let read =
      compile_var_read cenv name ~on_missing:(fun _ -> error "'%s' is not defined" name)
    in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      read rt
  | Ast.Array_lit items ->
    let citems = List.map (compile_expr cenv) items in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      let v = Varr (new_arr (eval_list rt citems)) in
      I.charge_alloc rt.ctx v;
      v
  | Ast.Object_lit fields ->
    let cfields = List.map (fun (k, fe) -> (k, compile_expr cenv fe)) fields in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      let o = new_obj () in
      List.iter (fun (k, ce) -> obj_set o k (ce rt)) cfields;
      let v = Vobj o in
      I.charge_alloc rt.ctx v;
      v
  | Ast.Func (params, body) ->
    let code = compile_function cenv ~fname:"<anonymous>" params body in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      let v = Vfun (Compiled_fn { code; captured = rt.frames; cglobals = rt.globals }) in
      I.charge_alloc rt.ctx v;
      v
  | Ast.Member (obj_e, name) ->
    let cobj = compile_expr cenv obj_e in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      I.member_get rt.ctx (cobj rt) name
  | Ast.Index (obj_e, idx_e) ->
    let cobj = compile_expr cenv obj_e and cidx = compile_expr cenv idx_e in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      let obj = cobj rt in
      let idx = cidx rt in
      I.index_get rt.ctx obj idx
  | Ast.Call (f_e, arg_es) -> (
    let cargs = List.map (compile_expr cenv) arg_es in
    match f_e.Ast.desc with
    | Ast.Member (obj_e, name) ->
      (* Method call: the member node itself is not evaluated (and so,
         as in the tree-walker, charges no fuel of its own). *)
      let cobj = compile_expr cenv obj_e in
      fun rt ->
        I.charge_fuel rt.ctx 1;
        let obj = cobj rt in
        let args = eval_list rt cargs in
        I.invoke_method rt.ctx obj name args
    | _ ->
      let cf = compile_expr cenv f_e in
      fun rt ->
        I.charge_fuel rt.ctx 1;
        let f = cf rt in
        let args = eval_list rt cargs in
        I.apply rt.ctx f args)
  | Ast.New (ctor_e, arg_es) ->
    let cctor = compile_expr cenv ctor_e in
    let cargs = List.map (compile_expr cenv) arg_es in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      let ctor = cctor rt in
      let args = eval_list rt cargs in
      I.construct rt.ctx ctor args
  | Ast.Assign (lv, op, rhs_e) -> (
    let clv = compile_lvalue cenv lv in
    let crhs = compile_expr cenv rhs_e in
    match op with
    | None ->
      fun rt ->
        I.charge_fuel rt.ctx 1;
        let v = crhs rt in
        clv.lwrite rt v;
        v
    | Some binop ->
      fun rt ->
        I.charge_fuel rt.ctx 1;
        let rhs = crhs rt in
        let old = clv.lread rt in
        let v = I.eval_binop rt.ctx binop old rhs in
        clv.lwrite rt v;
        v)
  | Ast.Unop (op, a_e) -> (
    let ca = compile_expr cenv a_e in
    match op with
    | Ast.Not ->
      fun rt ->
        I.charge_fuel rt.ctx 1;
        Vbool (not (truthy (ca rt)))
    | Ast.Neg ->
      fun rt ->
        I.charge_fuel rt.ctx 1;
        Vnum (-.to_number (ca rt))
    | Ast.Bnot ->
      fun rt ->
        I.charge_fuel rt.ctx 1;
        Vnum (float_of_int (lnot (to_int (ca rt))))
    | Ast.Typeof ->
      fun rt ->
        I.charge_fuel rt.ctx 1;
        Vstr (type_name (ca rt)))
  | Ast.Binop (op, a_e, b_e) ->
    let ca = compile_expr cenv a_e and cb = compile_expr cenv b_e in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      let a = ca rt in
      let b = cb rt in
      I.eval_binop rt.ctx op a b
  | Ast.Logical (Ast.And, a_e, b_e) ->
    let ca = compile_expr cenv a_e and cb = compile_expr cenv b_e in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      let a = ca rt in
      if truthy a then cb rt else a
  | Ast.Logical (Ast.Or, a_e, b_e) ->
    let ca = compile_expr cenv a_e and cb = compile_expr cenv b_e in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      let a = ca rt in
      if truthy a then a else cb rt
  | Ast.Cond (c_e, t_e, f_e) ->
    let cc = compile_expr cenv c_e in
    let ct = compile_expr cenv t_e and cf = compile_expr cenv f_e in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      if truthy (cc rt) then ct rt else cf rt
  | Ast.Incr (prefix, lv) -> compile_step cenv lv 1.0 prefix
  | Ast.Decr (prefix, lv) -> compile_step cenv lv (-1.0) prefix
  | Ast.Delete (obj_e, field) -> (
    let cobj = compile_expr cenv obj_e in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      match cobj rt with
      | Vobj o ->
        Hashtbl.remove o.props field;
        Vbool true
      | v -> error "cannot delete property '%s' of a %s" field (type_name v))

and compile_step cenv lv delta prefix : cexpr =
  let clv = compile_lvalue cenv lv in
  fun rt ->
    I.charge_fuel rt.ctx 1;
    let old = to_number (clv.lread rt) in
    let updated = old +. delta in
    clv.lwrite rt (Vnum updated);
    Vnum (if prefix then updated else old)

and compile_lvalue cenv (lv : Ast.lvalue) : clval =
  match lv with
  | Ast.Lident name ->
    {
      lread = compile_var_read cenv name ~on_missing:(fun _ -> Vundefined);
      lwrite = compile_var_write cenv name;
    }
  | Ast.Lmember (obj_e, name) ->
    let cobj = compile_expr cenv obj_e in
    {
      lread = (fun rt -> I.member_get rt.ctx (cobj rt) name);
      lwrite = (fun rt v -> I.member_set (cobj rt) name v);
    }
  | Ast.Lindex (obj_e, idx_e) ->
    let cobj = compile_expr cenv obj_e and cidx = compile_expr cenv idx_e in
    {
      lread =
        (fun rt ->
          let obj = cobj rt in
          let idx = cidx rt in
          I.index_get rt.ctx obj idx);
      lwrite =
        (fun rt v ->
          let obj = cobj rt in
          let idx = cidx rt in
          I.index_set obj idx v);
    }

(* --- statement compilation ------------------------------------------- *)

and compile_stmt cenv (s : Ast.stmt) : cstmt =
  match s.Ast.sdesc with
  | Ast.Sexpr e ->
    let ce = compile_expr cenv e in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      ignore (ce rt)
  | Ast.Svar bindings ->
    let cbindings =
      List.map
        (fun (name, init) -> (compile_decl cenv name, Option.map (compile_expr cenv) init))
        bindings
    in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      List.iter
        (fun (d, init) ->
          let v = match init with Some ce -> ce rt | None -> Vundefined in
          run_decl d rt v)
        cbindings
  | Ast.Sif (cond, then_b, else_b) ->
    let cc = compile_expr cenv cond in
    let ct = compile_body cenv then_b and ce = compile_body cenv else_b in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      if truthy (cc rt) then ct rt else ce rt
  | Ast.Swhile (cond, body) ->
    let cc = compile_expr cenv cond and cb = compile_body cenv body in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      (try
         while truthy (cc rt) do
           try cb rt with I.Continue_exc -> ()
         done
       with I.Break_exc -> ())
  | Ast.Sdo_while (body, cond) ->
    let cb = compile_body cenv body and cc = compile_expr cenv cond in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      (try
         let continue = ref true in
         while !continue do
           (try cb rt with I.Continue_exc -> ());
           continue := truthy (cc rt)
         done
       with I.Break_exc -> ())
  | Ast.Sfor (init, cond, step, body) ->
    let cinit = Option.map (compile_stmt cenv) init in
    let ccond = Option.map (compile_expr cenv) cond in
    let cstep = Option.map (compile_expr cenv) step in
    let cb = compile_body cenv body in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      (match cinit with Some ci -> ci rt | None -> ());
      (try
         let check () = match ccond with None -> true | Some c -> truthy (c rt) in
         while check () do
           (try cb rt with I.Continue_exc -> ());
           match cstep with Some ce -> ignore (ce rt) | None -> ()
         done
       with I.Break_exc -> ())
  | Ast.Sfor_in (name, subject_e, body) ->
    let csubj = compile_expr cenv subject_e in
    let decl = compile_decl cenv name in
    let bind = compile_var_bind cenv name in
    let cb = compile_body cenv body in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      let subject = csubj rt in
      run_decl decl rt Vundefined;
      (try
         match subject with
         | Vobj o ->
           List.iter
             (fun key ->
               bind rt (Vstr key);
               try cb rt with I.Continue_exc -> ())
             (obj_keys o)
         | Varr a ->
           for i = 0 to a.len - 1 do
             bind rt (Vnum (float_of_int i));
             try cb rt with I.Continue_exc -> ()
           done
         | Vnull | Vundefined -> ()
         | v -> error "cannot enumerate a %s" (type_name v)
       with I.Break_exc -> ())
  | Ast.Sreturn e -> (
    match e with
    | Some e ->
      let ce = compile_expr cenv e in
      fun rt ->
        I.charge_fuel rt.ctx 1;
        raise (I.Return_exc (ce rt))
    | None ->
      fun rt ->
        I.charge_fuel rt.ctx 1;
        raise (I.Return_exc Vundefined))
  | Ast.Sbreak ->
    fun rt ->
      I.charge_fuel rt.ctx 1;
      raise I.Break_exc
  | Ast.Scontinue ->
    fun rt ->
      I.charge_fuel rt.ctx 1;
      raise I.Continue_exc
  | Ast.Sfunc _ ->
    (* Hoisted by [compile_body]; execution is a charged no-op. *)
    fun rt -> I.charge_fuel rt.ctx 1
  | Ast.Sblock stmts ->
    let cb = compile_body cenv stmts in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      cb rt
  | Ast.Sthrow e ->
    let ce = compile_expr cenv e in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      raise (I.Throw_exc (ce rt))
  | Ast.Stry (body, name, handler) ->
    let cb = compile_body cenv body in
    let decl = compile_decl cenv name in
    let ch = compile_body cenv handler in
    fun rt ->
      I.charge_fuel rt.ctx 1;
      (try cb rt with
      | I.Throw_exc v ->
        run_decl decl rt v;
        ch rt
      | Script_error msg ->
        run_decl decl rt (Vstr msg);
        ch rt)

(* Statement lists re-hoist their function declarations on every entry,
   like [Interp.exec_body] (fresh closure values each time, no fuel or
   alloc charge). *)
and compile_body cenv (stmts : Ast.stmt list) : cstmt =
  let hoisted =
    List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Sfunc (name, params, body) ->
          Some (compile_decl cenv name, compile_function cenv ~fname:name params body)
        | _ -> None)
      stmts
  in
  let cstmts = Array.of_list (List.map (compile_stmt cenv) stmts) in
  match hoisted with
  | [] -> fun rt -> Array.iter (fun cs -> cs rt) cstmts
  | hoisted ->
    let hoisted = Array.of_list hoisted in
    fun rt ->
      Array.iter
        (fun (decl, code) ->
          run_decl decl rt
            (Vfun (Compiled_fn { code; captured = rt.frames; cglobals = rt.globals })))
        hoisted;
      Array.iter (fun cs -> cs rt) cstmts

and compile_function cenv ~fname params body : Value.compiled_code =
  let si = { slots = Hashtbl.create 16; nslots = 0 } in
  let param_slots = Array.of_list (List.map (slot_of si) params) in
  List.iter (collect_stmt si) body;
  let cbody = compile_body (si :: cenv) body in
  let nslots = si.nslots in
  let nparams = Array.length param_slots in
  let ccall ctx ~this ~globals captured args =
    (* The caller ([Interp.apply_fn]) has already charged the 4-unit
       invocation fuel, for script and compiled functions alike. *)
    let frame = Array.make nslots undeclared in
    let argv = Array.of_list args in
    let nargs = Array.length argv in
    for i = 0 to nparams - 1 do
      frame.(param_slots.(i)) <- (if i < nargs then argv.(i) else Vundefined)
    done;
    let rt = { ctx; globals; frames = frame :: captured; this } in
    try
      cbody rt;
      Vundefined
    with
    | I.Return_exc v -> v
    (* break/continue must not cross a function boundary *)
    | I.Break_exc -> error "'break' outside of a loop"
    | I.Continue_exc -> error "'continue' outside of a loop"
  in
  { cfname = fname; ccall }

(* --- whole programs --------------------------------------------------- *)

type citem = Cexpr of cexpr | Cstmt of cstmt

type program = { hoisted : (string * Value.compiled_code) array; items : citem array }

let compile (prog : Ast.program) : program =
  let cenv : cenv = [] in
  let hoisted =
    List.filter_map
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Sfunc (name, params, body) ->
          Some (name, compile_function cenv ~fname:name params body)
        | _ -> None)
      prog
  in
  let items =
    List.map
      (fun (s : Ast.stmt) ->
        match s.Ast.sdesc with
        | Ast.Sexpr e -> Cexpr (compile_expr cenv e)
        | _ -> Cstmt (compile_stmt cenv s))
      prog
  in
  { hoisted = Array.of_list hoisted; items = Array.of_list items }

let run ctx (p : program) : Value.t =
  let rt = { ctx; globals = ctx.globals; frames = []; this = Vundefined } in
  (* Toplevel: hoist functions, then run; remember last expression
     value — mirroring [Interp.run], including its quirk of evaluating
     toplevel expression statements without the per-statement fuel
     charge. *)
  Array.iter
    (fun (name, code) ->
      I.define_global ctx name
        (Vfun (Compiled_fn { code; captured = []; cglobals = ctx.globals })))
    p.hoisted;
  let last = ref Vundefined in
  (try
     Array.iter
       (function Cexpr ce -> last := ce rt | Cstmt cs -> cs rt)
       p.items
   with
  | I.Return_exc v -> last := v
  | I.Throw_exc v -> error "uncaught exception: %s" (to_string v)
  | I.Break_exc -> error "'break' outside of a loop"
  | I.Continue_exc -> error "'continue' outside of a loop");
  !last

(* --- the compiled-program cache --------------------------------------- *)

(* Keyed by SHA-256 of the script body: the client wall, a site script
   and the server wall are each parsed and compiled once per process,
   no matter how many stages or simulated nodes load them (§4's context
   amortization taken one step further). Only successful compilations
   are cached — failing scripts are negative-cached upstream by the
   node.

   The table is bounded with LRU eviction. Diffusion's hash-miss
   offload traffic makes unbounded growth reachable (every distinct
   script body a peer ever names lands here), and flushing the whole
   table on overflow — the previous policy — would throw away the hot
   wall scripts along with the flood. *)

type cache_stats = { hits : int; misses : int; entries : int; evictions : int }

type cache_entry = { program : program; mutable last_used : int }

let cache : (string, cache_entry) Hashtbl.t = Hashtbl.create 64

let cache_hits = ref 0

let cache_misses = ref 0

let cache_evictions = ref 0

let cache_capacity = ref 1024

(* Monotone access clock: cheaper than timestamps and immune to the
   simulated-vs-wall clock question (the cache is process-wide). *)
let cache_tick = ref 0

let touch entry =
  incr cache_tick;
  entry.last_used <- !cache_tick

let set_cache_capacity n = cache_capacity := max 1 n

let cache_stats () =
  {
    hits = !cache_hits;
    misses = !cache_misses;
    entries = Hashtbl.length cache;
    evictions = !cache_evictions;
  }

let cache_clear () = Hashtbl.reset cache

let evict_lru () =
  let victim =
    Hashtbl.fold
      (fun key entry acc ->
        match acc with
        | Some (_, best) when best.last_used <= entry.last_used -> acc
        | _ -> Some (key, entry))
      cache None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove cache key;
    incr cache_evictions
  | None -> ()

let find_cached_by_hash hash =
  match Hashtbl.find_opt cache hash with
  | Some entry ->
    touch entry;
    Some entry.program
  | None -> None

let get_program ?on_cache source =
  let key = Nk_crypto.Sha256.digest source in
  match Hashtbl.find_opt cache key with
  | Some entry ->
    incr cache_hits;
    touch entry;
    (match on_cache with Some f -> f `Hit | None -> ());
    entry.program
  | None ->
    incr cache_misses;
    (match on_cache with Some f -> f `Miss | None -> ());
    let p = compile (Parser.parse source) in
    while Hashtbl.length cache >= !cache_capacity do
      evict_lru ()
    done;
    let entry = { program = p; last_used = 0 } in
    touch entry;
    Hashtbl.replace cache key entry;
    p

let run_string ?on_cache ctx source = run ctx (get_program ?on_cache source)
