(* Persistent program registry: marshalled ASTs keyed by script-body
   SHA-256, stored one file per entry under a configured directory.

   Entry layout:

     "NKREG1\n"            7-byte magic; doubles as the format version.
                           Any change to the AST type or the layout
                           below must bump it (NKREG2 ...), which makes
                           every old entry an automatic reject.
     checksum              8 bytes, big-endian 63-bit FNV-1a over payload.
     payload               Marshal.to_string of the Ast.program.

   Marshal is only safe on bytes we wrote ourselves, so the checksum is
   verified *before* unmarshalling: a truncated or bit-flipped entry is
   rejected without ever reaching Marshal. The checksum is FNV-1a, not
   SHA-256 — this is corruption detection on a local disk, not an
   integrity boundary (the filename already binds the entry to the
   script body's SHA-256; an attacker who can write the registry
   directory owns the node anyway), and FNV keeps validation well under
   the cost of the parse it saves. *)

let magic = "NKREG1\n"

let magic_len = String.length magic

type stats = { hits : int; misses : int; stores : int; rejects : int }

let registry_dir : string option ref = ref None

let hits = ref 0

let misses = ref 0

let stores = ref 0

let rejects = ref 0

let stats () =
  { hits = !hits; misses = !misses; stores = !stores; rejects = !rejects }

let reset_stats () =
  hits := 0;
  misses := 0;
  stores := 0;
  rejects := 0

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    (try Sys.mkdir d 0o755 with Sys_error _ -> ())
  end

let set_dir d =
  (match d with Some dir -> mkdir_p dir | None -> ());
  registry_dir := d

let dir () = !registry_dir

let entry_path ~hash =
  match !registry_dir with
  | None -> None
  | Some d -> Some (Filename.concat d (Nk_crypto.Sha256.hex hash ^ ".nkc"))

(* FNV-1a folded in native 63-bit ints (wrapping mod 2^63): boxed Int64
   arithmetic costs an allocation per operation without flambda, which
   would put the checksum on par with the parse it is meant to replace.
   Same prime and offset basis as the 64-bit variant, just truncated —
   still plenty for corruption detection, and deterministic across runs
   on any 64-bit platform. *)
let fnv1a_63 (s : string) : int64 =
  let prime = 0x100000001b3 in
  let h = ref 0x3bf29ce484222325 in
  for i = 0 to String.length s - 1 do
    h := (!h lxor Char.code (String.unsafe_get s i)) * prime
  done;
  Int64.of_int !h

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let unhex s =
  let n = String.length s in
  if n = 0 || n mod 2 <> 0 then None
  else begin
    let out = Bytes.create (n / 2) in
    let ok = ref true in
    for i = 0 to (n / 2) - 1 do
      let hi = hex_val s.[2 * i] and lo = hex_val s.[(2 * i) + 1] in
      if hi < 0 || lo < 0 then ok := false
      else Bytes.unsafe_set out i (Char.unsafe_chr ((hi lsl 4) lor lo))
    done;
    if !ok then Some (Bytes.unsafe_to_string out) else None
  end

let entries () =
  match !registry_dir with
  | None -> []
  | Some d ->
    let names = try Sys.readdir d with Sys_error _ -> [||] in
    Array.to_list names
    |> List.filter_map (fun name ->
           if Filename.check_suffix name ".nkc" then
             unhex (Filename.chop_suffix name ".nkc")
           else None)

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let load ~hash : Ast.program option =
  match entry_path ~hash with
  | None -> None
  | Some path -> (
    match read_file path with
    | None ->
      incr misses;
      None
    | Some raw ->
      let reject () =
        incr rejects;
        None
      in
      if String.length raw < magic_len + 8 then reject ()
      else if not (String.equal (String.sub raw 0 magic_len) magic) then
        reject ()
      else begin
        let stored = String.get_int64_be raw magic_len in
        let payload =
          String.sub raw (magic_len + 8) (String.length raw - magic_len - 8)
        in
        if not (Int64.equal stored (fnv1a_63 payload)) then reject ()
        else
          match (Marshal.from_string payload 0 : Ast.program) with
          | ast ->
            incr hits;
            Some ast
          | exception _ -> reject ()
      end)

let store ~hash (ast : Ast.program) : unit =
  match entry_path ~hash with
  | None -> ()
  | Some path -> (
    try
      let payload = Marshal.to_string ast [] in
      let sum = Bytes.create 8 in
      Bytes.set_int64_be sum 0 (fnv1a_63 payload);
      let tmp = path ^ ".tmp" in
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc magic;
          output_bytes oc sum;
          output_string oc payload);
      Sys.rename tmp path;
      incr stores
    with Sys_error _ -> ())
