open Value

type ctx = Value.ctx = {
  globals : Value.scope;
  max_fuel : int;
  max_heap : int;
  mutable fuel_used : int;
  mutable heap_used : int;
  mutable killed : bool;
  mutable usage_observer : (fuel:int -> heap:int -> unit) option;
  frame_pool : Value.t array list array;
  frame_pool_count : int array;
}

exception Resource_exhausted = Value.Resource_exhausted

exception Terminated = Value.Terminated

(* Non-local control flow inside the evaluator. *)
exception Return_exc of Value.t

exception Break_exc

exception Continue_exc

exception Throw_exc of Value.t

type env = { scopes : Value.scope list; this : Value.t }
(* [scopes] is innermost-first and always ends with the context globals. *)

let create ?(max_fuel = 5_000_000) ?(max_heap_bytes = 64 * 1024 * 1024) () =
  {
    globals = Hashtbl.create 64;
    max_fuel;
    max_heap = max_heap_bytes;
    fuel_used = 0;
    heap_used = 0;
    killed = false;
    usage_observer = None;
    frame_pool = Array.make Value.frame_pool_sizes [];
    frame_pool_count = Array.make Value.frame_pool_sizes 0;
  }

let define_global ctx name v = Hashtbl.replace ctx.globals name (ref v)

let get_global ctx name = Option.map (fun r -> !r) (Hashtbl.find_opt ctx.globals name)

let remove_global ctx name = Hashtbl.remove ctx.globals name

let fuel_used ctx = ctx.fuel_used

let heap_used ctx = ctx.heap_used

let set_usage_observer ctx f = ctx.usage_observer <- Some f

let reset_usage ctx =
  (* The counters are zeroed between requests, so this is the natural
     place to publish "what the last pipeline consumed" to telemetry. *)
  (match ctx.usage_observer with
   | Some f when ctx.fuel_used > 0 || ctx.heap_used > 0 ->
     f ~fuel:ctx.fuel_used ~heap:ctx.heap_used
   | _ -> ());
  ctx.fuel_used <- 0;
  ctx.heap_used <- 0

let kill ctx = ctx.killed <- true

let revive ctx = ctx.killed <- false

let charge_fuel ctx n =
  if ctx.killed then raise Terminated;
  ctx.fuel_used <- ctx.fuel_used + n;
  if ctx.fuel_used > ctx.max_fuel then raise (Resource_exhausted "fuel limit exceeded")

let consume_fuel ctx n = charge_fuel ctx (max 0 n)

let charge_alloc ctx v =
  ctx.heap_used <- ctx.heap_used + alloc_size v;
  if ctx.heap_used > ctx.max_heap then raise (Resource_exhausted "heap limit exceeded")

let lookup env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> ( match Hashtbl.find_opt scope name with Some r -> Some r | None -> go rest)
  in
  go env.scopes

let declare env name v =
  match env.scopes with
  | scope :: _ -> Hashtbl.replace scope name (ref v)
  | [] -> assert false

(* --- built-in methods on primitive values ------------------------- *)

let str_index s i = if i >= 0 && i < String.length s then Vstr (String.make 1 s.[i]) else Vundefined

let string_method ctx s name args =
  (* One-shot array view: indexed argument access is O(1) instead of a
     List.nth walk per access. *)
  let argv = Array.of_list args in
  let nargs = Array.length argv in
  let arg i = if i < nargs then argv.(i) else Vundefined in
  let iarg i = to_int (arg i) in
  let sarg i = to_string (arg i) in
  let ret v =
    charge_alloc ctx v;
    v
  in
  match name with
  | "charAt" -> ret (match str_index s (iarg 0) with Vundefined -> Vstr "" | v -> v)
  | "charCodeAt" ->
    let i = iarg 0 in
    if i >= 0 && i < String.length s then Vnum (float_of_int (Char.code s.[i])) else Vnum Float.nan
  | "indexOf" -> (
    match Nk_util.Strutil.index_sub s ~sub:(sarg 0) ~start:(iarg 1) with
    | Some i -> Vnum (float_of_int i)
    | None -> Vnum (-1.0))
  | "substring" | "slice" ->
    let len = String.length s in
    let clamp i = if i < 0 then max 0 (len + i) else min i len in
    let a = clamp (iarg 0) in
    let b = if nargs > 1 then clamp (iarg 1) else len in
    let a, b = if a <= b then (a, b) else (b, a) in
    ret (Vstr (String.sub s a (b - a)))
  | "split" ->
    let sep = sarg 0 in
    let parts =
      if sep = "" then List.init (String.length s) (fun i -> String.make 1 s.[i])
      else
        (* split on the literal separator *)
        let rec go start acc =
          match Nk_util.Strutil.index_sub s ~sub:sep ~start with
          | Some i ->
            go (i + String.length sep) (String.sub s start (i - start) :: acc)
          | None -> List.rev (String.sub s start (String.length s - start) :: acc)
        in
        go 0 []
    in
    ret (Varr (new_arr (List.map (fun p -> Vstr p) parts)))
  | "toLowerCase" -> ret (Vstr (String.lowercase_ascii s))
  | "toUpperCase" -> ret (Vstr (String.uppercase_ascii s))
  | "trim" -> ret (Vstr (String.trim s))
  | "startsWith" -> Vbool (Nk_util.Strutil.starts_with ~prefix:(sarg 0) s)
  | "endsWith" -> Vbool (Nk_util.Strutil.ends_with ~suffix:(sarg 0) s)
  | "includes" -> Vbool (Nk_util.Strutil.contains_sub s ~sub:(sarg 0))
  | "replace" -> ret (Vstr (Nk_util.Strutil.replace_all s ~sub:(sarg 0) ~by:(sarg 1)))
  | "concat" -> ret (Vstr (s ^ String.concat "" (List.map to_string args)))
  | "repeat" ->
    let n = iarg 0 in
    if n < 0 then error "repeat count must be non-negative";
    let buf = Buffer.create (String.length s * n) in
    for _ = 1 to n do
      Buffer.add_string buf s
    done;
    ret (Vstr (Buffer.contents buf))
  | "toString" -> Vstr s
  | _ -> error "string has no method '%s'" name

let bytes_method ctx b name args =
  let argv = Array.of_list args in
  let nargs = Array.length argv in
  let arg i = if i < nargs then argv.(i) else Vundefined in
  match name with
  | "append" ->
    let s =
      match arg 0 with
      | Vbytes other -> bytes_to_string other
      | v -> to_string v
    in
    ctx.heap_used <- ctx.heap_used + String.length s;
    if ctx.heap_used > ctx.max_heap then raise (Resource_exhausted "heap limit exceeded");
    bytes_append b s;
    Vundefined
  | "toString" ->
    let v = Vstr (bytes_to_string b) in
    charge_alloc ctx v;
    v
  | "slice" ->
    let len = b.blen in
    let clamp i = if i < 0 then max 0 (len + i) else min i len in
    let a = clamp (to_int (arg 0)) in
    let e = if nargs > 1 then clamp (to_int (arg 1)) else len in
    let a, e = if a <= e then (a, e) else (e, a) in
    let v = Vbytes (bytes_of_string (Bytes.sub_string b.data a (e - a))) in
    charge_alloc ctx v;
    v
  | "clear" ->
    b.blen <- 0;
    Vundefined
  | _ -> error "bytearray has no method '%s'" name

(* --- the evaluator ------------------------------------------------- *)

let rec eval ctx env (e : Ast.expr) : Value.t =
  charge_fuel ctx 1;
  match e.Ast.desc with
  | Ast.Undefined -> Vundefined
  | Ast.Null -> Vnull
  | Ast.Bool b -> Vbool b
  | Ast.Number n -> Vnum n
  | Ast.String s -> Vstr s
  | Ast.This -> env.this
  | Ast.Ident name -> (
    match lookup env name with
    | Some r -> !r
    | None -> error "'%s' is not defined" name)
  | Ast.Array_lit items ->
    let v = Varr (new_arr (List.map (eval ctx env) items)) in
    charge_alloc ctx v;
    v
  | Ast.Object_lit fields ->
    let o = new_obj () in
    List.iter (fun (k, fe) -> obj_set o k (eval ctx env fe)) fields;
    let v = Vobj o in
    charge_alloc ctx v;
    v
  | Ast.Func (params, body) ->
    let v = Vfun (Script_fn { params; body; closure = env.scopes; fname = "<anonymous>" }) in
    charge_alloc ctx v;
    v
  | Ast.Member (obj_e, name) -> member_get ctx (eval ctx env obj_e) name
  | Ast.Index (obj_e, idx_e) ->
    let obj = eval ctx env obj_e in
    let idx = eval ctx env idx_e in
    index_get ctx obj idx
  | Ast.Call (f_e, arg_es) -> eval_call ctx env f_e arg_es
  | Ast.New (ctor_e, arg_es) ->
    let ctor = eval ctx env ctor_e in
    let args = List.map (eval ctx env) arg_es in
    eval_new ctx ctor args
  | Ast.Assign (lv, op, rhs_e) ->
    let rhs = eval ctx env rhs_e in
    let value =
      match op with
      | None -> rhs
      | Some binop ->
        let old = read_lvalue ctx env lv in
        eval_binop ctx binop old rhs
    in
    write_lvalue ctx env lv value;
    value
  | Ast.Unop (op, e) -> (
    let v = eval ctx env e in
    match op with
    | Ast.Not -> Vbool (not (truthy v))
    | Ast.Neg -> Vnum (-.to_number v)
    | Ast.Bnot -> Vnum (float_of_int (lnot (to_int v)))
    | Ast.Typeof -> Vstr (type_name v))
  | Ast.Binop (op, a_e, b_e) ->
    let a = eval ctx env a_e in
    let b = eval ctx env b_e in
    eval_binop ctx op a b
  | Ast.Logical (Ast.And, a_e, b_e) ->
    let a = eval ctx env a_e in
    if truthy a then eval ctx env b_e else a
  | Ast.Logical (Ast.Or, a_e, b_e) ->
    let a = eval ctx env a_e in
    if truthy a then a else eval ctx env b_e
  | Ast.Cond (c, t, f) -> if truthy (eval ctx env c) then eval ctx env t else eval ctx env f
  | Ast.Incr (prefix, lv) -> step_lvalue ctx env lv 1.0 prefix
  | Ast.Decr (prefix, lv) -> step_lvalue ctx env lv (-1.0) prefix
  | Ast.Delete (obj_e, field) -> (
    match eval ctx env obj_e with
    | Vobj o ->
      obj_delete o field;
      Vbool true
    | v -> error "cannot delete property '%s' of a %s" field (type_name v))

and step_lvalue ctx env lv delta prefix =
  let old = to_number (read_lvalue ctx env lv) in
  let updated = old +. delta in
  write_lvalue ctx env lv (Vnum updated);
  Vnum (if prefix then updated else old)

and eval_binop ctx op a b =
  match op with
  | Ast.Add -> (
    match (a, b) with
    | (Vstr _, _ | _, Vstr _) ->
      let v = Vstr (to_string a ^ to_string b) in
      charge_alloc ctx v;
      v
    | _ -> Vnum (to_number a +. to_number b))
  | Ast.Sub -> Vnum (to_number a -. to_number b)
  | Ast.Mul -> Vnum (to_number a *. to_number b)
  | Ast.Div -> Vnum (to_number a /. to_number b)
  | Ast.Mod ->
    let x = to_number a and y = to_number b in
    Vnum (Float.rem x y)
  | Ast.Eq -> Vbool (equal a b)
  | Ast.Neq -> Vbool (not (equal a b))
  | Ast.Lt -> compare_values a b (fun c -> c < 0)
  | Ast.Le -> compare_values a b (fun c -> c <= 0)
  | Ast.Gt -> compare_values a b (fun c -> c > 0)
  | Ast.Ge -> compare_values a b (fun c -> c >= 0)
  | Ast.Band -> Vnum (float_of_int (to_int a land to_int b))
  | Ast.Bor -> Vnum (float_of_int (to_int a lor to_int b))
  | Ast.Bxor -> Vnum (float_of_int (to_int a lxor to_int b))
  | Ast.Shl -> Vnum (float_of_int (to_int a lsl (to_int b land 31)))
  | Ast.Shr -> Vnum (float_of_int (to_int a asr (to_int b land 31)))

and compare_values a b test =
  match (a, b) with
  | Vstr x, Vstr y -> Vbool (test (String.compare x y))
  | _ ->
    let x = to_number a and y = to_number b in
    if Float.is_nan x || Float.is_nan y then Vbool false else Vbool (test (Float.compare x y))

and member_get ctx obj name =
  match obj with
  | Vobj o -> obj_get o name
  | Vstr s -> (
    match name with
    | "length" -> Vnum (float_of_int (String.length s))
    | _ -> native name (fun _ args -> string_method ctx s name args))
  | Vbytes b -> (
    match name with
    | "length" -> Vnum (float_of_int b.blen)
    | _ -> native name (fun _ args -> bytes_method ctx b name args))
  | Varr a -> (
    match name with
    | "length" -> Vnum (float_of_int a.len)
    | _ -> native name (fun _ args -> array_method ctx a name args))
  | Vnull | Vundefined -> error "cannot read property '%s' of %s" name (to_string obj)
  | Vnum _ | Vbool _ | Vfun _ -> Vundefined

and array_method ctx a name args =
  let argv = Array.of_list args in
  let nargs = Array.length argv in
  let arg i = if i < nargs then argv.(i) else Vundefined in
  let ret v =
    charge_alloc ctx v;
    v
  in
  match name with
  | "push" ->
    List.iter (fun v -> arr_push a v) args;
    Vnum (float_of_int a.len)
  | "pop" ->
    if a.len = 0 then Vundefined
    else begin
      a.len <- a.len - 1;
      a.items.(a.len)
    end
  | "shift" ->
    if a.len = 0 then Vundefined
    else begin
      let first = a.items.(0) in
      Array.blit a.items 1 a.items 0 (a.len - 1);
      a.len <- a.len - 1;
      first
    end
  | "join" ->
    let sep = match arg 0 with Vundefined -> "," | v -> to_string v in
    ret (Vstr (String.concat sep (List.map to_string (arr_to_list a))))
  | "indexOf" ->
    let target = arg 0 in
    let rec go i =
      if i >= a.len then Vnum (-1.0)
      else if equal a.items.(i) target then Vnum (float_of_int i)
      else go (i + 1)
    in
    go 0
  | "includes" ->
    let target = arg 0 in
    let rec go i = i < a.len && (equal a.items.(i) target || go (i + 1)) in
    Vbool (go 0)
  | "slice" ->
    let clamp i = if i < 0 then max 0 (a.len + i) else min i a.len in
    let s = clamp (to_int (arg 0)) in
    let e = if nargs > 1 then clamp (to_int (arg 1)) else a.len in
    let e = max s e in
    ret (Varr (new_arr (Array.to_list (Array.sub a.items s (e - s)))))
  | "concat" ->
    let extra =
      List.concat_map (function Varr other -> arr_to_list other | v -> [ v ]) args
    in
    ret (Varr (new_arr (arr_to_list a @ extra)))
  | "reverse" ->
    let items = Array.sub a.items 0 a.len in
    Array.iteri (fun i v -> a.items.(a.len - 1 - i) <- v) items;
    Varr a
  | "map" ->
    let f = arg 0 in
    ret
      (Varr
         (new_arr
            (List.mapi
               (fun i v -> apply_fn ctx ~this:Vundefined f [ v; Vnum (float_of_int i) ])
               (arr_to_list a))))
  | "filter" ->
    let f = arg 0 in
    ret
      (Varr
         (new_arr
            (List.filter
               (fun v -> truthy (apply_fn ctx ~this:Vundefined f [ v ]))
               (arr_to_list a))))
  | "forEach" ->
    let f = arg 0 in
    List.iteri
      (fun i v -> ignore (apply_fn ctx ~this:Vundefined f [ v; Vnum (float_of_int i) ]))
      (arr_to_list a);
    Vundefined
  | "sort" ->
    let items = Array.sub a.items 0 a.len in
    let cmp =
      match arg 0 with
      | Vfun _ as f ->
        fun x y ->
          let r = to_number (apply_fn ctx ~this:Vundefined f [ x; y ]) in
          if r < 0.0 then -1 else if r > 0.0 then 1 else 0
      | _ -> fun x y -> String.compare (to_string x) (to_string y)
    in
    Array.sort cmp items;
    Array.blit items 0 a.items 0 a.len;
    Varr a
  | _ -> error "array has no method '%s'" name

and index_get ctx obj idx =
  match obj with
  | Varr a -> (
    match idx with
    | Vnum n when Float.is_integer n -> arr_get a (int_of_float n)
    | _ -> member_get ctx obj (to_string idx))
  | Vstr s -> (
    match idx with
    | Vnum n when Float.is_integer n -> str_index s (int_of_float n)
    | _ -> member_get ctx obj (to_string idx))
  | Vbytes b -> (
    match idx with
    | Vnum n when Float.is_integer n ->
      let i = int_of_float n in
      if i >= 0 && i < b.blen then Vnum (float_of_int (Char.code (Bytes.get b.data i)))
      else Vundefined
    | _ -> member_get ctx obj (to_string idx))
  | Vobj o -> obj_get o (to_string idx)
  | _ -> error "cannot index a %s" (type_name obj)

and member_set obj name value =
  match obj with
  | Vobj o -> obj_set o name value
  | v -> error "cannot set property '%s' on a %s" name (type_name v)

and index_set obj idx value =
  match obj with
  | Varr a -> (
    match idx with
    | Vnum n when Float.is_integer n && n >= 0.0 -> arr_set a (int_of_float n) value
    | _ -> error "bad array index %s" (to_string idx))
  | Vobj o -> obj_set o (to_string idx) value
  | Vbytes b -> (
    match idx with
    | Vnum n when Float.is_integer n ->
      let i = int_of_float n in
      if i < 0 || i >= b.blen then error "bytearray index %d out of bounds" i;
      Bytes.set b.data i (Char.chr (to_int value land 0xFF))
    | _ -> error "bad bytearray index %s" (to_string idx))
  | v -> error "cannot index-assign a %s" (type_name v)

and read_lvalue ctx env = function
  | Ast.Lident name -> (
    match lookup env name with Some r -> !r | None -> Vundefined)
  | Ast.Lmember (obj_e, name) -> member_get ctx (eval ctx env obj_e) name
  | Ast.Lindex (obj_e, idx_e) ->
    let obj = eval ctx env obj_e in
    let idx = eval ctx env idx_e in
    index_get ctx obj idx

and write_lvalue ctx env lv value =
  match lv with
  | Ast.Lident name -> (
    match lookup env name with
    | Some r -> r := value
    | None ->
      (* Assignment to an undeclared name creates a global, as in JS. *)
      Hashtbl.replace ctx.globals name (ref value))
  | Ast.Lmember (obj_e, name) -> member_set (eval ctx env obj_e) name value
  | Ast.Lindex (obj_e, idx_e) ->
    let obj = eval ctx env obj_e in
    let idx = eval ctx env idx_e in
    index_set obj idx value

and invoke_method ctx obj name args =
  (* Method call: bind [this] and route primitive builtins. *)
  match obj with
  | Vobj o -> (
    match obj_get o name with
    | Vfun _ as f -> apply_fn ctx ~this:obj f args
    | Vundefined -> error "object has no method '%s'" name
    | v -> error "property '%s' is not a function (%s)" name (type_name v))
  | Vstr s -> string_method ctx s name args
  | Vbytes b -> bytes_method ctx b name args
  | Varr a -> array_method ctx a name args
  | v -> error "cannot call method '%s' on a %s" name (type_name v)

and eval_call ctx env f_e arg_es =
  match f_e.Ast.desc with
  | Ast.Member (obj_e, name) ->
    let obj = eval ctx env obj_e in
    let args = List.map (eval ctx env) arg_es in
    invoke_method ctx obj name args
  | _ ->
    let f = eval ctx env f_e in
    let args = List.map (eval ctx env) arg_es in
    apply_fn ctx ~this:Vundefined f args

and apply_fn ctx ~this f args =
  charge_fuel ctx 4;
  match f with
  | Vfun (Native_fn nf) -> nf.call (if this = Vundefined then None else Some this) args
  | Vfun (Compiled_fn cf) -> cf.code.ccall ctx ~this ~globals:cf.cglobals cf.captured args
  | Vfun (Script_fn sf) ->
    let frame : Value.scope = Hashtbl.create 8 in
    let argv = Array.of_list args in
    let nargs = Array.length argv in
    List.iteri
      (fun i param ->
        let v = if i < nargs then argv.(i) else Vundefined in
        Hashtbl.replace frame param (ref v))
      sf.params;
    let env = { scopes = frame :: sf.closure; this } in
    (try
       exec_body ctx env sf.body;
       Vundefined
     with
    | Return_exc v -> v
    (* break/continue must not cross a function boundary *)
    | Break_exc -> error "'break' outside of a loop"
    | Continue_exc -> error "'continue' outside of a loop")
  | v -> error "%s is not a function" (type_name v)

and exec_body ctx env stmts =
  (* Hoist function declarations, as JavaScript does. *)
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.sdesc with
      | Ast.Sfunc (name, params, body) ->
        let f = Vfun (Script_fn { params; body; closure = env.scopes; fname = name }) in
        declare env name f
      | _ -> ())
    stmts;
  List.iter (exec_stmt ctx env) stmts

and exec_stmt ctx env (s : Ast.stmt) =
  charge_fuel ctx 1;
  match s.Ast.sdesc with
  | Ast.Sexpr e -> ignore (eval ctx env e)
  | Ast.Svar bindings ->
    List.iter
      (fun (name, init) ->
        let v = match init with Some e -> eval ctx env e | None -> Vundefined in
        declare env name v)
      bindings
  | Ast.Sif (cond, then_b, else_b) ->
    if truthy (eval ctx env cond) then exec_body ctx env then_b else exec_body ctx env else_b
  | Ast.Swhile (cond, body) ->
    (try
       while truthy (eval ctx env cond) do
         try exec_body ctx env body with Continue_exc -> ()
       done
     with Break_exc -> ())
  | Ast.Sdo_while (body, cond) ->
    (try
       let continue = ref true in
       while !continue do
         (try exec_body ctx env body with Continue_exc -> ());
         continue := truthy (eval ctx env cond)
       done
     with Break_exc -> ())
  | Ast.Sfor (init, cond, step, body) ->
    Option.iter (exec_stmt ctx env) init;
    (try
       let check () = match cond with None -> true | Some c -> truthy (eval ctx env c) in
       while check () do
         (try exec_body ctx env body with Continue_exc -> ());
         Option.iter (fun e -> ignore (eval ctx env e)) step
       done
     with Break_exc -> ())
  | Ast.Sfor_in (name, subject_e, body) -> (
    let subject = eval ctx env subject_e in
    declare env name Vundefined;
    let bind v = match lookup env name with Some r -> r := v | None -> () in
    try
      match subject with
      | Vobj o ->
        List.iter
          (fun key ->
            bind (Vstr key);
            try exec_body ctx env body with Continue_exc -> ())
          (obj_keys o)
      | Varr a ->
        for i = 0 to a.len - 1 do
          bind (Vnum (float_of_int i));
          try exec_body ctx env body with Continue_exc -> ()
        done
      | Vnull | Vundefined -> ()
      | v -> error "cannot enumerate a %s" (type_name v)
    with Break_exc -> ())
  | Ast.Sreturn e -> raise (Return_exc (match e with Some e -> eval ctx env e | None -> Vundefined))
  | Ast.Sbreak -> raise Break_exc
  | Ast.Scontinue -> raise Continue_exc
  | Ast.Sfunc _ -> () (* hoisted by exec_body *)
  | Ast.Sblock stmts -> exec_body ctx env stmts
  | Ast.Sthrow e -> raise (Throw_exc (eval ctx env e))
  | Ast.Stry (body, name, handler) -> (
    try exec_body ctx env body
    with
    | Throw_exc v ->
      declare env name v;
      exec_body ctx env handler
    | Script_error msg ->
      declare env name (Vstr msg);
      exec_body ctx env handler)

and eval_new ctx ctor args =
  match ctor with
  | Vfun (Native_fn nf) -> nf.call None args
  | Vfun (Script_fn _ | Compiled_fn _) -> (
    let o = new_obj () in
    charge_alloc ctx (Vobj o);
    match apply_fn ctx ~this:(Vobj o) ctor args with
    | (Vobj _ | Varr _) as result -> result
    | _ -> Vobj o)
  | v -> error "%s is not a constructor" (type_name v)

let run ctx program =
  let env = { scopes = [ ctx.globals ]; this = Vundefined } in
  (* Toplevel: hoist functions, then run; remember last expression value. *)
  List.iter
    (fun (s : Ast.stmt) ->
      match s.Ast.sdesc with
      | Ast.Sfunc (name, params, body) ->
        define_global ctx name
          (Vfun (Script_fn { params; body; closure = env.scopes; fname = name }))
      | _ -> ())
    program;
  let last = ref Vundefined in
  (try
     List.iter
       (fun (s : Ast.stmt) ->
         match s.Ast.sdesc with
         | Ast.Sexpr e -> last := eval ctx env e
         | _ -> exec_stmt ctx env s)
       program
   with
  | Return_exc v -> last := v
  | Throw_exc v -> error "uncaught exception: %s" (to_string v)
  | Break_exc -> error "'break' outside of a loop"
  | Continue_exc -> error "'continue' outside of a loop");
  !last

let run_string ctx src = run ctx (Parser.parse src)

let apply ctx ?(this = Vundefined) f args = apply_fn ctx ~this f args

let construct = eval_new
