exception Parse_error of string * Ast.pos

type state = { tokens : Lexer.lexed array; mutable pos : int }

let current st = st.tokens.(st.pos)

let peek_token st = (current st).Lexer.token

let peek_pos st = (current st).Lexer.pos

let advance st = if st.pos < Array.length st.tokens - 1 then st.pos <- st.pos + 1

let fail st msg = raise (Parse_error (msg, peek_pos st))

let is_punct st s = match peek_token st with Lexer.Tpunct p -> p = s | _ -> false

let is_keyword st s = match peek_token st with Lexer.Tkeyword k -> k = s | _ -> false

let eat_punct st s =
  if is_punct st s then advance st else fail st (Printf.sprintf "expected '%s'" s)

let eat_keyword st s =
  if is_keyword st s then advance st else fail st (Printf.sprintf "expected '%s'" s)

let eat_ident st =
  match peek_token st with
  | Lexer.Tident name ->
    advance st;
    name
  | _ -> fail st "expected identifier"

let mk pos desc = { Ast.desc; pos }

let mks pos sdesc = { Ast.sdesc; spos = pos }

let lvalue_of_expr st (e : Ast.expr) =
  match e.Ast.desc with
  | Ast.Ident name -> Ast.Lident name
  | Ast.Member (obj, field) -> Ast.Lmember (obj, field)
  | Ast.Index (obj, idx) -> Ast.Lindex (obj, idx)
  | _ -> fail st "invalid assignment target"

let assign_op = function
  | "+=" -> Some Ast.Add
  | "-=" -> Some Ast.Sub
  | "*=" -> Some Ast.Mul
  | "/=" -> Some Ast.Div
  | "%=" -> Some Ast.Mod
  | "&=" -> Some Ast.Band
  | "|=" -> Some Ast.Bor
  | "^=" -> Some Ast.Bxor
  | "<<=" -> Some Ast.Shl
  | ">>=" -> Some Ast.Shr
  | _ -> None

let rec parse_program st =
  let stmts = ref [] in
  while peek_token st <> Lexer.Teof do
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_block st =
  eat_punct st "{";
  let stmts = ref [] in
  while not (is_punct st "}") do
    if peek_token st = Lexer.Teof then fail st "unterminated block";
    stmts := parse_stmt st :: !stmts
  done;
  eat_punct st "}";
  List.rev !stmts

(* A statement body: either a block or a single statement. *)
and parse_body st = if is_punct st "{" then parse_block st else [ parse_stmt st ]

and parse_stmt st =
  let pos = peek_pos st in
  match peek_token st with
  | Lexer.Tkeyword "var" ->
    advance st;
    let rec bindings acc =
      let name = eat_ident st in
      let init =
        if is_punct st "=" then begin
          advance st;
          Some (parse_assignment st)
        end
        else None
      in
      let acc = (name, init) :: acc in
      if is_punct st "," then begin
        advance st;
        bindings acc
      end
      else List.rev acc
    in
    let bs = bindings [] in
    semicolon st;
    mks pos (Ast.Svar bs)
  | Lexer.Tkeyword "function" ->
    advance st;
    let name = eat_ident st in
    let params = parse_params st in
    let body = parse_block st in
    mks pos (Ast.Sfunc (name, params, body))
  | Lexer.Tkeyword "if" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    let then_branch = parse_body st in
    let else_branch =
      if is_keyword st "else" then begin
        advance st;
        parse_body st
      end
      else []
    in
    mks pos (Ast.Sif (cond, then_branch, else_branch))
  | Lexer.Tkeyword "while" ->
    advance st;
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    mks pos (Ast.Swhile (cond, parse_body st))
  | Lexer.Tkeyword "do" ->
    advance st;
    let body = parse_body st in
    eat_keyword st "while";
    eat_punct st "(";
    let cond = parse_expr st in
    eat_punct st ")";
    semicolon st;
    mks pos (Ast.Sdo_while (body, cond))
  | Lexer.Tkeyword "for" ->
    advance st;
    eat_punct st "(";
    (* Distinguish for-in from the three-clause form. *)
    let is_for_in =
      (match peek_token st with
       | Lexer.Tkeyword "var" -> (
         match st.tokens.(st.pos + 1).Lexer.token with
         | Lexer.Tident _ -> st.tokens.(st.pos + 2).Lexer.token = Lexer.Tkeyword "in"
         | _ -> false)
       | Lexer.Tident _ -> st.tokens.(st.pos + 1).Lexer.token = Lexer.Tkeyword "in"
       | _ -> false)
    in
    if is_for_in then begin
      if is_keyword st "var" then advance st;
      let name = eat_ident st in
      eat_keyword st "in";
      let subject = parse_expr st in
      eat_punct st ")";
      mks pos (Ast.Sfor_in (name, subject, parse_body st))
    end
    else begin
      let init =
        if is_punct st ";" then begin
          advance st;
          None
        end
        else if is_keyword st "var" then begin
          let s = parse_stmt st in
          (* parse_stmt consumed the ';' *)
          Some s
        end
        else begin
          (* Position the synthetic init statement at the expression's
             first token, not at the 'for' keyword, so diagnostics that
             anchor on the init clause point into the clause itself. *)
          let ipos = peek_pos st in
          let e = parse_expr st in
          eat_punct st ";";
          Some (mks ipos (Ast.Sexpr e))
        end
      in
      let cond =
        if is_punct st ";" then None
        else Some (parse_expr st)
      in
      eat_punct st ";";
      let step = if is_punct st ")" then None else Some (parse_expr st) in
      eat_punct st ")";
      mks pos (Ast.Sfor (init, cond, step, parse_body st))
    end
  | Lexer.Tkeyword "return" ->
    advance st;
    let value =
      if is_punct st ";" || is_punct st "}" then None else Some (parse_expr st)
    in
    semicolon st;
    mks pos (Ast.Sreturn value)
  | Lexer.Tkeyword "break" ->
    advance st;
    semicolon st;
    mks pos Ast.Sbreak
  | Lexer.Tkeyword "continue" ->
    advance st;
    semicolon st;
    mks pos Ast.Scontinue
  | Lexer.Tkeyword "throw" ->
    advance st;
    let e = parse_expr st in
    semicolon st;
    mks pos (Ast.Sthrow e)
  | Lexer.Tkeyword "try" ->
    advance st;
    let body = parse_block st in
    eat_keyword st "catch";
    eat_punct st "(";
    let name = eat_ident st in
    eat_punct st ")";
    let handler = parse_block st in
    mks pos (Ast.Stry (body, name, handler))
  | Lexer.Tpunct "{" -> mks pos (Ast.Sblock (parse_block st))
  | Lexer.Tpunct ";" ->
    advance st;
    mks pos (Ast.Sblock [])
  | _ ->
    let e = parse_expr st in
    semicolon st;
    mks pos (Ast.Sexpr e)

and semicolon st = if is_punct st ";" then advance st (* semicolons are optional *)

and parse_params st =
  eat_punct st "(";
  let params = ref [] in
  if not (is_punct st ")") then begin
    params := [ eat_ident st ];
    while is_punct st "," do
      advance st;
      params := eat_ident st :: !params
    done
  end;
  eat_punct st ")";
  List.rev !params

and parse_expr st =
  (* comma expressions are not supported; expression = assignment *)
  parse_assignment st

and parse_assignment st =
  let left = parse_conditional st in
  match peek_token st with
  | Lexer.Tpunct "=" ->
    let pos = peek_pos st in
    advance st;
    let right = parse_assignment st in
    mk pos (Ast.Assign (lvalue_of_expr st left, None, right))
  | Lexer.Tpunct p when assign_op p <> None ->
    let pos = peek_pos st in
    advance st;
    let right = parse_assignment st in
    mk pos (Ast.Assign (lvalue_of_expr st left, assign_op p, right))
  | _ -> left

and parse_conditional st =
  let cond = parse_logical_or st in
  if is_punct st "?" then begin
    let pos = peek_pos st in
    advance st;
    let t = parse_assignment st in
    eat_punct st ":";
    let f = parse_assignment st in
    mk pos (Ast.Cond (cond, t, f))
  end
  else cond

and parse_logical_or st =
  let left = ref (parse_logical_and st) in
  while is_punct st "||" do
    let pos = peek_pos st in
    advance st;
    let right = parse_logical_and st in
    left := mk pos (Ast.Logical (Ast.Or, !left, right))
  done;
  !left

and parse_logical_and st =
  let left = ref (parse_bitor st) in
  while is_punct st "&&" do
    let pos = peek_pos st in
    advance st;
    let right = parse_bitor st in
    left := mk pos (Ast.Logical (Ast.And, !left, right))
  done;
  !left

and parse_bitor st =
  let left = ref (parse_bitxor st) in
  while is_punct st "|" do
    let pos = peek_pos st in
    advance st;
    left := mk pos (Ast.Binop (Ast.Bor, !left, parse_bitxor st))
  done;
  !left

and parse_bitxor st =
  let left = ref (parse_bitand st) in
  while is_punct st "^" do
    let pos = peek_pos st in
    advance st;
    left := mk pos (Ast.Binop (Ast.Bxor, !left, parse_bitand st))
  done;
  !left

and parse_bitand st =
  let left = ref (parse_equality st) in
  while is_punct st "&" do
    let pos = peek_pos st in
    advance st;
    left := mk pos (Ast.Binop (Ast.Band, !left, parse_equality st))
  done;
  !left

and parse_equality st =
  let left = ref (parse_relational st) in
  let rec loop () =
    match peek_token st with
    | Lexer.Tpunct ("==" | "===") ->
      let pos = peek_pos st in
      advance st;
      left := mk pos (Ast.Binop (Ast.Eq, !left, parse_relational st));
      loop ()
    | Lexer.Tpunct ("!=" | "!==") ->
      let pos = peek_pos st in
      advance st;
      left := mk pos (Ast.Binop (Ast.Neq, !left, parse_relational st));
      loop ()
    | _ -> ()
  in
  loop ();
  !left

and parse_relational st =
  let left = ref (parse_shift st) in
  let rec loop () =
    match peek_token st with
    | Lexer.Tpunct "<" ->
      op Ast.Lt
    | Lexer.Tpunct "<=" ->
      op Ast.Le
    | Lexer.Tpunct ">" ->
      op Ast.Gt
    | Lexer.Tpunct ">=" ->
      op Ast.Ge
    | _ -> ()
  and op o =
    let pos = peek_pos st in
    advance st;
    left := mk pos (Ast.Binop (o, !left, parse_shift st));
    loop ()
  in
  loop ();
  !left

and parse_shift st =
  let left = ref (parse_additive st) in
  let rec loop () =
    match peek_token st with
    | Lexer.Tpunct "<<" ->
      op Ast.Shl
    | Lexer.Tpunct ">>" ->
      op Ast.Shr
    | _ -> ()
  and op o =
    let pos = peek_pos st in
    advance st;
    left := mk pos (Ast.Binop (o, !left, parse_additive st));
    loop ()
  in
  loop ();
  !left

and parse_additive st =
  let left = ref (parse_multiplicative st) in
  let rec loop () =
    match peek_token st with
    | Lexer.Tpunct "+" ->
      op Ast.Add
    | Lexer.Tpunct "-" ->
      op Ast.Sub
    | _ -> ()
  and op o =
    let pos = peek_pos st in
    advance st;
    left := mk pos (Ast.Binop (o, !left, parse_multiplicative st));
    loop ()
  in
  loop ();
  !left

and parse_multiplicative st =
  let left = ref (parse_unary st) in
  let rec loop () =
    match peek_token st with
    | Lexer.Tpunct "*" ->
      op Ast.Mul
    | Lexer.Tpunct "/" ->
      op Ast.Div
    | Lexer.Tpunct "%" ->
      op Ast.Mod
    | _ -> ()
  and op o =
    let pos = peek_pos st in
    advance st;
    left := mk pos (Ast.Binop (o, !left, parse_unary st));
    loop ()
  in
  loop ();
  !left

and parse_unary st =
  let pos = peek_pos st in
  match peek_token st with
  | Lexer.Tpunct "!" ->
    advance st;
    mk pos (Ast.Unop (Ast.Not, parse_unary st))
  | Lexer.Tpunct "-" ->
    advance st;
    mk pos (Ast.Unop (Ast.Neg, parse_unary st))
  | Lexer.Tpunct "+" ->
    advance st;
    parse_unary st
  | Lexer.Tpunct "~" ->
    advance st;
    mk pos (Ast.Unop (Ast.Bnot, parse_unary st))
  | Lexer.Tkeyword "typeof" ->
    advance st;
    mk pos (Ast.Unop (Ast.Typeof, parse_unary st))
  | Lexer.Tkeyword "delete" -> (
    advance st;
    let target = parse_unary st in
    match target.Ast.desc with
    | Ast.Member (obj, field) -> mk pos (Ast.Delete (obj, field))
    | _ -> fail st "delete expects a property access")
  | Lexer.Tpunct "++" ->
    advance st;
    let e = parse_unary st in
    mk pos (Ast.Incr (true, lvalue_of_expr st e))
  | Lexer.Tpunct "--" ->
    advance st;
    let e = parse_unary st in
    mk pos (Ast.Decr (true, lvalue_of_expr st e))
  | Lexer.Tkeyword "new" ->
    advance st;
    let ctor = parse_member_chain st (parse_primary st) ~calls:false in
    let args = if is_punct st "(" then parse_args st else [] in
    parse_postfix st (mk pos (Ast.New (ctor, args)))
  | _ -> parse_postfix st (parse_primary st)

and parse_args st =
  eat_punct st "(";
  let args = ref [] in
  if not (is_punct st ")") then begin
    args := [ parse_assignment st ];
    while is_punct st "," do
      advance st;
      args := parse_assignment st :: !args
    done
  end;
  eat_punct st ")";
  List.rev !args

(* Member/index chains, optionally consuming call parentheses. *)
and parse_member_chain st expr ~calls =
  let e = ref expr in
  let continue = ref true in
  while !continue do
    let pos = peek_pos st in
    match peek_token st with
    | Lexer.Tpunct "." ->
      advance st;
      let field = eat_ident st in
      e := mk pos (Ast.Member (!e, field))
    | Lexer.Tpunct "[" ->
      advance st;
      let idx = parse_expr st in
      eat_punct st "]";
      e := mk pos (Ast.Index (!e, idx))
    | Lexer.Tpunct "(" when calls -> e := mk pos (Ast.Call (!e, parse_args st))
    | _ -> continue := false
  done;
  !e

and parse_postfix st expr =
  let e = parse_member_chain st expr ~calls:true in
  let pos = peek_pos st in
  match peek_token st with
  | Lexer.Tpunct "++" ->
    advance st;
    mk pos (Ast.Incr (false, lvalue_of_expr st e))
  | Lexer.Tpunct "--" ->
    advance st;
    mk pos (Ast.Decr (false, lvalue_of_expr st e))
  | _ -> e

and parse_primary st =
  let pos = peek_pos st in
  match peek_token st with
  | Lexer.Tnumber n ->
    advance st;
    mk pos (Ast.Number n)
  | Lexer.Tstring s ->
    advance st;
    mk pos (Ast.String s)
  | Lexer.Tident name ->
    advance st;
    mk pos (Ast.Ident name)
  | Lexer.Tkeyword "true" ->
    advance st;
    mk pos (Ast.Bool true)
  | Lexer.Tkeyword "false" ->
    advance st;
    mk pos (Ast.Bool false)
  | Lexer.Tkeyword "null" ->
    advance st;
    mk pos Ast.Null
  | Lexer.Tkeyword "undefined" ->
    advance st;
    mk pos Ast.Undefined
  | Lexer.Tkeyword "this" ->
    advance st;
    mk pos Ast.This
  | Lexer.Tkeyword "function" ->
    advance st;
    (* Optional name is ignored: function expressions are anonymous. *)
    (match peek_token st with Lexer.Tident _ -> advance st | _ -> ());
    let params = parse_params st in
    let body = parse_block st in
    mk pos (Ast.Func (params, body))
  | Lexer.Tpunct "(" ->
    advance st;
    let e = parse_expr st in
    eat_punct st ")";
    e
  | Lexer.Tpunct "[" ->
    advance st;
    let items = ref [] in
    if not (is_punct st "]") then begin
      items := [ parse_assignment st ];
      while is_punct st "," do
        advance st;
        if not (is_punct st "]") then items := parse_assignment st :: !items
      done
    end;
    eat_punct st "]";
    mk pos (Ast.Array_lit (List.rev !items))
  | Lexer.Tpunct "{" ->
    advance st;
    let fields = ref [] in
    if not (is_punct st "}") then begin
      let parse_field () =
        let key =
          match peek_token st with
          | Lexer.Tident name | Lexer.Tkeyword name ->
            advance st;
            name
          | Lexer.Tstring s ->
            advance st;
            s
          | Lexer.Tnumber n ->
            advance st;
            if Float.is_integer n then string_of_int (int_of_float n) else string_of_float n
          | _ -> fail st "expected property name"
        in
        eat_punct st ":";
        let value = parse_assignment st in
        (key, value)
      in
      fields := [ parse_field () ];
      while is_punct st "," do
        advance st;
        if not (is_punct st "}") then fields := parse_field () :: !fields
      done
    end;
    eat_punct st "}";
    mk pos (Ast.Object_lit (List.rev !fields))
  | _ -> fail st "unexpected token"

let parse src =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let st = { tokens; pos = 0 } in
  parse_program st
