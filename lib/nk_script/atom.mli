(** Interned property names.

    A process-wide string <-> int interning table: object layouts
    ({!Value.shape}), shape transitions and the compiler's inline
    caches key properties by atom, so hot property access never hashes
    a string. Append-only and never freed; bounded by the distinct
    property names the loaded scripts and vocabularies use. *)

type t = int

val intern : string -> t
(** Idempotent: the same string always returns the same atom. *)

val to_string : t -> string

val count : unit -> int

val length : t
(** The pre-interned atom for ["length"]. *)
