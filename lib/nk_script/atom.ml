(* Interned property names ("atoms"). Every property name that crosses
   the script engine is mapped to a small dense integer exactly once;
   after that, object layout, shape transitions and inline caches
   compare ints instead of hashing strings. The table is process-wide
   (like the compiled-program cache): the same source name always maps
   to the same atom, so compiled code from one stage can probe objects
   built by another.

   Interning is append-only — atoms are never freed. The population is
   bounded by the set of distinct property names in loaded scripts plus
   the vocabulary surface, which is small; a runaway script inventing
   names dynamically pays its own fuel/heap for the strings first. *)

type t = int

let table : (string, int) Hashtbl.t = Hashtbl.create 256

let names : string array ref = ref (Array.make 256 "")

let next = ref 0

let intern (s : string) : t =
  match Hashtbl.find_opt table s with
  | Some a -> a
  | None ->
    let a = !next in
    incr next;
    if a >= Array.length !names then begin
      let grown = Array.make (2 * Array.length !names) "" in
      Array.blit !names 0 grown 0 a;
      names := grown
    end;
    !names.(a) <- s;
    Hashtbl.add table s a;
    a

let to_string (a : t) : string = !names.(a)

let count () = !next

(* Pre-interned names for the hottest fixed lookups. *)
let length = intern "length"
