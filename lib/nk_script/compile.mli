(** Closure compilation of NKScript.

    Lowers a parsed program once into OCaml closures with variables
    resolved to lexical slot addresses (frame arrays indexed at compile
    time; the globals table is consulted only for true globals), plus a
    process-wide compiled-program cache keyed by SHA-256 of the script
    body — each distinct script (client wall, site script, server wall)
    is parsed and compiled once per process no matter how many stages
    or nodes load it.

    Semantics, error messages, and — critically — fuel and heap
    accounting are identical to the reference tree-walker ({!Interp}):
    compiled closures call the same [charge_fuel]/[charge_alloc] sites
    per operation, so resource-monitor congestion numbers and
    termination points are bit-for-bit preserved. The differential test
    suite ([test_compile.ml]) enforces this over random programs. *)

type program
(** A compiled program. Context-independent: the same value may be
    executed in any number of scripting contexts (this is what the
    cache shares across stages). *)

val compile : Ast.program -> program

val run : Interp.ctx -> program -> Value.t
(** Execute a compiled program; same contract as {!Interp.run}: returns
    the value of the final toplevel expression statement, raises
    [Value.Script_error] / [Interp.Resource_exhausted] /
    [Interp.Terminated] exactly as the tree-walker would. *)

val get_program : ?on_cache:([ `Hit | `Miss ] -> unit) -> string -> program
(** Fetch from (or compile into) the process-wide cache, keyed by
    SHA-256 of [source]. [on_cache] fires before any parse work, so a
    [`Miss] that then fails to parse is still reported (the caller
    negative-caches failing sources). Raises [Parser.Parse_error] /
    [Lexer.Lex_error] on a miss for invalid sources; failures are not
    cached.

    When the persistent {!Registry} is enabled, a memory miss consults
    it before parsing: a valid entry skips the parser entirely (still
    reported as [`Miss] — the registry is a parse bypass, accounted by
    {!Registry.stats}); a full miss parses and then persists the AST
    for future processes. *)

val run_string : ?on_cache:([ `Hit | `Miss ] -> unit) -> Interp.ctx -> string -> Value.t
(** [run] ∘ [get_program]: the production entry point used by stages,
    [evalScript] and NKP. *)

type cache_stats = { hits : int; misses : int; entries : int; evictions : int }

val cache_stats : unit -> cache_stats

val cache_clear : unit -> unit
(** Drop all cached programs (tests/benchmarks). Counters are not
    reset. *)

val set_cache_capacity : int -> unit
(** Bound on cached programs (default 1024, clamped to >= 1). On
    overflow the least-recently-used entry is evicted — counted in
    [cache_stats.evictions] — so a flood of distinct script bodies
    (e.g. diffusion hash-miss traffic) cannot grow the table without
    bound or flush the hot wall scripts. *)

val preload_registry : unit -> int
(** Compile every valid persistent-{!Registry} entry into the in-memory
    cache (skipping hashes already cached). Returns the number loaded.
    No-op (0) when the registry is disabled. Called at node start so
    known sites' first requests never touch disk or the parser. *)

val find_cached_by_hash : string -> program option
(** Resolve an already-known SHA-256 digest (as produced by
    {!Nk_crypto.Sha256.digest}) against the cache without having the
    source — the diffusion receiver's lookup when an offload envelope
    names a program by hash. Counts as an LRU touch but not as a
    hit/miss (the caller accounts hash misses itself). Falls through to
    the persistent {!Registry} when enabled, so a peer-named program
    can be resolved without the source even across restarts. *)
