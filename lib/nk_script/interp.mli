(** The NKScript evaluator and its sandbox.

    Each scripting context is fully isolated: it owns its globals and is
    subject to a fuel (CPU) and heap limit, mirroring the per-pipeline
    sandboxing of §3.2/§4. The resource monitor reads [fuel_used] /
    [heap_used] for congestion accounting and calls [kill] to terminate
    a pipeline mid-execution. *)

type ctx

exception Resource_exhausted of string
(** Fuel or heap limit exceeded. *)

exception Terminated
(** The context was killed by the resource monitor. *)

val create : ?max_fuel:int -> ?max_heap_bytes:int -> unit -> ctx
(** Defaults: 5,000,000 fuel units and 64 MiB of script heap. *)

val define_global : ctx -> string -> Value.t -> unit

val get_global : ctx -> string -> Value.t option

val remove_global : ctx -> string -> unit

val run : ctx -> Ast.program -> Value.t
(** Execute a program; returns the value of the final expression
    statement ([Vundefined] when none). Raises [Value.Script_error] for
    runtime errors and the sandbox exceptions above. *)

val run_string : ctx -> string -> Value.t
(** Parse then [run]. Also raises [Parser.Parse_error] /
    [Lexer.Lex_error]. *)

val apply : ctx -> ?this:Value.t -> Value.t -> Value.t list -> Value.t
(** Call a function value (event handlers are invoked this way). *)

val consume_fuel : ctx -> int -> unit
(** Charge additional fuel from native (vocabulary) code, so
    data-proportional platform work — XML transforms, image scaling —
    counts against the sandbox and the CPU model like interpreted work
    does. Raises [Resource_exhausted] / [Terminated] like any
    evaluation step. *)

val fuel_used : ctx -> int
val heap_used : ctx -> int

val reset_usage : ctx -> unit
(** Zero the fuel/heap counters (called between requests when a context
    is reused from the pool). When a usage observer is installed, it is
    invoked with the outgoing non-zero counters first. *)

val set_usage_observer : ctx -> (fuel:int -> heap:int -> unit) -> unit
(** Publish per-pipeline fuel/heap consumption to telemetry: the
    observer fires on every {!reset_usage} that discards non-zero
    usage. *)

val kill : ctx -> unit
(** Make the next evaluation step raise [Terminated]. *)

val revive : ctx -> unit
