(** The NKScript evaluator and its sandbox.

    Each scripting context is fully isolated: it owns its globals and is
    subject to a fuel (CPU) and heap limit, mirroring the per-pipeline
    sandboxing of §3.2/§4. The resource monitor reads [fuel_used] /
    [heap_used] for congestion accounting and calls [kill] to terminate
    a pipeline mid-execution. *)

type ctx = Value.ctx
(** The concrete record lives in {!Value} so that compiled closures
    ({!Value.compiled_fn}, produced by {!Compile}) can reference the
    context without a dependency cycle. Treat it as abstract: use the
    accessors below. *)

exception Resource_exhausted of string
(** Fuel or heap limit exceeded. *)

exception Terminated
(** The context was killed by the resource monitor. *)

val create : ?max_fuel:int -> ?max_heap_bytes:int -> unit -> ctx
(** Defaults: 5,000,000 fuel units and 64 MiB of script heap. *)

val define_global : ctx -> string -> Value.t -> unit

val get_global : ctx -> string -> Value.t option

val remove_global : ctx -> string -> unit

val run : ctx -> Ast.program -> Value.t
(** Execute a program with the reference tree-walking evaluator;
    returns the value of the final expression statement ([Vundefined]
    when none). Raises [Value.Script_error] for runtime errors and the
    sandbox exceptions above.

    Production paths (stages, [evalScript], NKP) run scripts through
    {!Compile} instead, which executes pre-compiled closures with
    identical semantics and identical fuel/heap accounting; the
    tree-walker remains the executable specification the differential
    tests compare against. *)

val run_string : ctx -> string -> Value.t
(** Parse then [run]. Also raises [Parser.Parse_error] /
    [Lexer.Lex_error]. *)

val apply : ctx -> ?this:Value.t -> Value.t -> Value.t list -> Value.t
(** Call a function value (event handlers are invoked this way). *)

val consume_fuel : ctx -> int -> unit
(** Charge additional fuel from native (vocabulary) code, so
    data-proportional platform work — XML transforms, image scaling —
    counts against the sandbox and the CPU model like interpreted work
    does. Raises [Resource_exhausted] / [Terminated] like any
    evaluation step. *)

val fuel_used : ctx -> int
val heap_used : ctx -> int

val reset_usage : ctx -> unit
(** Zero the fuel/heap counters (called between requests when a context
    is reused from the pool). When a usage observer is installed, it is
    invoked with the outgoing non-zero counters first. *)

val set_usage_observer : ctx -> (fuel:int -> heap:int -> unit) -> unit
(** Publish per-pipeline fuel/heap consumption to telemetry: the
    observer fires on every {!reset_usage} that discards non-zero
    usage. *)

val kill : ctx -> unit
(** Make the next evaluation step raise [Terminated]. *)

val revive : ctx -> unit

(** {1 Shared runtime surface}

    The value-level operations of the evaluator, exposed so that
    {!Compile}'s generated closures execute the very same code (and
    therefore charge the very same fuel and heap) as the tree-walker.
    Not intended for general use. *)

exception Return_exc of Value.t
(** Non-local control flow inside the evaluator; shared with compiled
    code so [return] / [break] / [continue] / [throw] cross between
    compiled and interpreted frames transparently. *)

exception Break_exc

exception Continue_exc

exception Throw_exc of Value.t

val charge_fuel : ctx -> int -> unit
(** [consume_fuel] without the non-negativity clamp: one unit per AST
    node, exactly as the tree-walker charges. *)

val charge_alloc : ctx -> Value.t -> unit
(** Charge [Value.alloc_size v] against the heap limit. *)

val eval_binop : ctx -> Ast.binop -> Value.t -> Value.t -> Value.t

val member_get : ctx -> Value.t -> string -> Value.t

val member_set : Value.t -> string -> Value.t -> unit

val index_get : ctx -> Value.t -> Value.t -> Value.t

val index_set : Value.t -> Value.t -> Value.t -> unit

val invoke_method : ctx -> Value.t -> string -> Value.t list -> Value.t
(** Method-call dispatch: [o.m(args)] on objects, strings, byte arrays
    and arrays, with [this] bound for script functions. *)

val construct : ctx -> Value.t -> Value.t list -> Value.t
(** The [new] protocol. *)
