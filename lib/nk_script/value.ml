(* Runtime values of NKScript. Byte arrays are a core type — the paper
   added them to SpiderMonkey "to avoid unnecessarily copying data"
   (§3.1, §4) — and native functions are how vocabularies surface. *)

type t =
  | Vundefined
  | Vnull
  | Vbool of bool
  | Vnum of float
  | Vstr of string
  | Vbytes of bytebuf
  | Vobj of obj
  | Varr of arr
  | Vfun of func

and obj = { props : (string, t) Hashtbl.t; oid : int }

and arr = { mutable items : t array; mutable len : int }

and bytebuf = { mutable data : Bytes.t; mutable blen : int }

and func = Script_fn of script_fn | Native_fn of native_fn | Compiled_fn of compiled_fn

and script_fn = {
  params : string list;
  body : Ast.stmt list;
  closure : scope list;
  fname : string;
}

and native_fn = { nname : string; call : t option -> t list -> t }
(* [call this args]; raises Script_error on misuse. *)

and compiled_fn = { code : compiled_code; captured : t array list; cglobals : scope }
(* A closure produced by [Compile]: static code shared by every closure
   over the same function body, plus the enclosing frames (innermost
   first) and the *defining* context's globals — the tree-walker's
   [closure] list always ends with the defining globals, and the
   compiled form preserves that even if the value crosses contexts. *)

and compiled_code = {
  cfname : string;
  ccall : ctx -> this:t -> globals:scope -> t array list -> t list -> t;
  (* [ccall ctx ~this ~globals captured args]: fuel/heap are charged to
     [ctx] (the *calling* context, as in the tree-walker). *)
}

and scope = (string, t ref) Hashtbl.t

and ctx = {
  globals : scope;
  max_fuel : int;
  max_heap : int;
  mutable fuel_used : int;
  mutable heap_used : int;
  mutable killed : bool;
  mutable usage_observer : (fuel:int -> heap:int -> unit) option;
}
(* The sandboxed scripting context. Defined here (rather than in
   [Interp]) so compiled code in [Compile] can close over it; [Interp]
   re-exports it and owns the public API. *)

exception Script_error of string

exception Resource_exhausted of string

exception Terminated

let error fmt = Printf.ksprintf (fun msg -> raise (Script_error msg)) fmt

let next_oid = ref 0

let new_obj () =
  incr next_oid;
  { props = Hashtbl.create 8; oid = !next_oid }

let new_arr items = { items = Array.of_list items; len = List.length items }

let arr_get a i = if i >= 0 && i < a.len then a.items.(i) else Vundefined

let arr_set a i v =
  if i < 0 then error "negative array index %d" i;
  if i >= Array.length a.items then begin
    let ncap = max 8 (max (i + 1) (2 * Array.length a.items)) in
    let nitems = Array.make ncap Vundefined in
    Array.blit a.items 0 nitems 0 a.len;
    a.items <- nitems
  end;
  a.items.(i) <- v;
  if i >= a.len then a.len <- i + 1

let arr_push a v = arr_set a a.len v

let arr_to_list a = Array.to_list (Array.sub a.items 0 a.len)

let new_bytes () = { data = Bytes.create 0; blen = 0 }

let bytes_of_string s = { data = Bytes.of_string s; blen = String.length s }

let bytes_to_string b = Bytes.sub_string b.data 0 b.blen

let bytes_append b s =
  let slen = String.length s in
  if b.blen + slen > Bytes.length b.data then begin
    let ncap = max 32 (max (b.blen + slen) (2 * Bytes.length b.data)) in
    let ndata = Bytes.create ncap in
    Bytes.blit b.data 0 ndata 0 b.blen;
    b.data <- ndata
  end;
  Bytes.blit_string s 0 b.data b.blen slen;
  b.blen <- b.blen + slen

let native name call = Vfun (Native_fn { nname = name; call })

let type_name = function
  | Vundefined -> "undefined"
  | Vnull -> "object"
  | Vbool _ -> "boolean"
  | Vnum _ -> "number"
  | Vstr _ -> "string"
  | Vbytes _ -> "bytearray"
  | Vobj _ -> "object"
  | Varr _ -> "object"
  | Vfun _ -> "function"

let truthy = function
  | Vundefined | Vnull -> false
  | Vbool b -> b
  | Vnum n -> n <> 0.0 && not (Float.is_nan n)
  | Vstr s -> s <> ""
  | Vbytes _ | Vobj _ | Varr _ | Vfun _ -> true

let number_to_string n =
  if Float.is_nan n then "NaN"
  else if Float.is_integer n && Float.abs n < 1e15 then
    string_of_int (int_of_float n)
  else Printf.sprintf "%g" n

let rec to_string = function
  | Vundefined -> "undefined"
  | Vnull -> "null"
  | Vbool b -> string_of_bool b
  | Vnum n -> number_to_string n
  | Vstr s -> s
  | Vbytes b -> bytes_to_string b
  | Vobj _ -> "[object Object]"
  | Varr a -> String.concat "," (List.map to_string (arr_to_list a))
  | Vfun (Script_fn f) -> Printf.sprintf "function %s() { ... }" f.fname
  | Vfun (Compiled_fn f) -> Printf.sprintf "function %s() { ... }" f.code.cfname
  | Vfun (Native_fn f) -> Printf.sprintf "function %s() { [native code] }" f.nname

let to_number = function
  | Vundefined -> Float.nan
  | Vnull -> 0.0
  | Vbool true -> 1.0
  | Vbool false -> 0.0
  | Vnum n -> n
  | Vstr s -> (
    let s = String.trim s in
    if s = "" then 0.0 else match float_of_string_opt s with Some n -> n | None -> Float.nan)
  | Vbytes b -> float_of_int b.blen
  | Vobj _ | Varr _ | Vfun _ -> Float.nan

let to_int v =
  let n = to_number v in
  if Float.is_nan n then 0 else int_of_float n

let rec equal a b =
  match (a, b) with
  | Vundefined, Vundefined | Vnull, Vnull | Vundefined, Vnull | Vnull, Vundefined -> true
  | Vbool x, Vbool y -> x = y
  | Vnum x, Vnum y -> x = y
  | Vstr x, Vstr y -> x = y
  | Vnum _, Vstr _ -> to_number b = to_number a
  | Vstr _, Vnum _ -> to_number a = to_number b
  | Vbool _, (Vnum _ | Vstr _) -> equal (Vnum (to_number a)) b
  | (Vnum _ | Vstr _), Vbool _ -> equal a (Vnum (to_number b))
  | Vbytes x, Vbytes y -> x == y
  | Vobj x, Vobj y -> x == y
  | Varr x, Varr y -> x == y
  | Vfun x, Vfun y -> x == y
  | _ -> false

(* Approximate heap footprint of a freshly created value, in bytes; the
   sandbox charges allocations against the per-context heap limit. *)
let alloc_size = function
  | Vstr s -> String.length s + 16
  | Vbytes b -> Bytes.length b.data + 24
  | Vobj _ -> 64
  | Varr a -> (Array.length a.items * 8) + 24
  | Vfun _ -> 48
  | Vundefined | Vnull | Vbool _ | Vnum _ -> 0

let obj_get o name = match Hashtbl.find_opt o.props name with Some v -> v | None -> Vundefined

let obj_set o name v = Hashtbl.replace o.props name v

let obj_has o name = Hashtbl.mem o.props name

let obj_keys o =
  (* stable order: sort for determinism *)
  Hashtbl.fold (fun k _ acc -> k :: acc) o.props [] |> List.sort compare

let obj_of_list kvs =
  let o = new_obj () in
  List.iter (fun (k, v) -> obj_set o k v) kvs;
  o
