(* Runtime values of NKScript. Byte arrays are a core type — the paper
   added them to SpiderMonkey "to avoid unnecessarily copying data"
   (§3.1, §4) — and native functions are how vocabularies surface.

   Objects use a shape (hidden-class) representation: a shape is an
   interned-atom -> slot layout shared by every object built with the
   same property-insertion history, and values live in a compact slot
   array. Property lookup compares ints down the shape chain instead of
   hashing strings, and — the point of the exercise — gives compiled
   code a single word to compare in its inline caches: if an object's
   shape is physically the cached shape, the cached slot index is valid
   and the access is one array load. [delete] demotes the object to a
   plain atom-keyed dictionary (shapes cannot express holes cheaply);
   nothing observable changes, only the fast paths stop applying. *)

type t =
  | Vundefined
  | Vnull
  | Vbool of bool
  | Vnum of float
  | Vstr of string
  | Vbytes of bytebuf
  | Vobj of obj
  | Varr of arr
  | Vfun of func

and obj = {
  oid : int;
  mutable shape : shape;
  mutable slots : t array; (* valid for indices < shape.snslots *)
  mutable dict : (int, t) Hashtbl.t option; (* Some after a delete: dictionary mode *)
}

and shape = {
  sid : int;
  satom : int; (* atom appended at this step; -1 at the root *)
  sslot : int; (* its slot index; -1 at the root *)
  snslots : int; (* total slots an object of this shape uses *)
  sparent : shape;
  mutable stransitions : (int * shape) list;
}

and arr = { mutable items : t array; mutable len : int }

and bytebuf = { mutable data : Bytes.t; mutable blen : int }

and func = Script_fn of script_fn | Native_fn of native_fn | Compiled_fn of compiled_fn

and script_fn = {
  params : string list;
  body : Ast.stmt list;
  closure : scope list;
  fname : string;
}

and native_fn = { nname : string; call : t option -> t list -> t }
(* [call this args]; raises Script_error on misuse. *)

and compiled_fn = { code : compiled_code; captured : t array list; cglobals : scope }
(* A closure produced by [Compile]: static code shared by every closure
   over the same function body, plus the enclosing frames (innermost
   first) and the *defining* context's globals — the tree-walker's
   [closure] list always ends with the defining globals, and the
   compiled form preserves that even if the value crosses contexts. *)

and compiled_code = {
  cfname : string;
  ccall : ctx -> this:t -> globals:scope -> t array list -> t list -> t;
  (* [ccall ctx ~this ~globals captured args]: fuel/heap are charged to
     [ctx] (the *calling* context, as in the tree-walker). *)
}

and scope = (string, t ref) Hashtbl.t

and ctx = {
  globals : scope;
  max_fuel : int;
  max_heap : int;
  mutable fuel_used : int;
  mutable heap_used : int;
  mutable killed : bool;
  mutable usage_observer : (fuel:int -> heap:int -> unit) option;
  frame_pool : t array list array;
  (* Per-context arena of recycled call frames, indexed by slot count:
     compiled calls to functions whose frame provably cannot escape
     (no nested function literals or declarations capture it) draw
     from and return to these free lists instead of allocating. Frames
     are wiped to [undeclared] on reuse, so no value leaks between
     requests or sandboxes. *)
  frame_pool_count : int array;
}
(* The sandboxed scripting context. Defined here (rather than in
   [Interp]) so compiled code in [Compile] can close over it; [Interp]
   re-exports it and owns the public API. *)

exception Script_error of string

exception Resource_exhausted of string

exception Terminated

let error fmt = Printf.ksprintf (fun msg -> raise (Script_error msg)) fmt

(* --- shapes ---------------------------------------------------------- *)

let next_sid = ref 2

let rec root_shape =
  { sid = 0; satom = -1; sslot = -1; snslots = 0; sparent = root_shape; stransitions = [] }

(* Dictionary-mode objects point here; never has transitions or slots. *)
let rec dict_shape =
  { sid = 1; satom = -1; sslot = -1; snslots = 0; sparent = dict_shape; stransitions = [] }

(* A shape no object ever carries: inline caches initialize to it so a
   fresh cache can never spuriously hit (not even on an empty or
   dictionary-mode object). *)
let rec ic_sentinel_shape =
  { sid = -1; satom = -1; sslot = -1; snslots = 0; sparent = ic_sentinel_shape; stransitions = [] }

(* Slot of [atom] under [shape], or -1. Atoms are >= 0 and the root's
   [satom] is -1, so the walk terminates at the root without an extra
   depth check. *)
let shape_find shape atom =
  let rec go s = if s.satom = atom then s.sslot else if s.sslot < 0 then -1 else go s.sparent in
  go shape

let shape_transition shape atom =
  let rec find = function
    | [] -> None
    | (a, s) :: rest -> if a = atom then Some s else find rest
  in
  match find shape.stransitions with
  | Some next -> next
  | None ->
    let next =
      {
        sid =
          (incr next_sid;
           !next_sid);
        satom = atom;
        sslot = shape.snslots;
        snslots = shape.snslots + 1;
        sparent = shape;
        stransitions = [];
      }
    in
    shape.stransitions <- (atom, next) :: shape.stransitions;
    next

(* --- objects --------------------------------------------------------- *)

let next_oid = ref 0

let no_slots : t array = [||]

let new_obj () =
  incr next_oid;
  { oid = !next_oid; shape = root_shape; slots = no_slots; dict = None }

(* An object born with a precomputed shape (compiled object literals):
   the slot array is exact-sized and the shape chain was resolved at
   compile time. Slots must be fully initialized by the caller before
   the object escapes. *)
let new_obj_with_shape shape =
  incr next_oid;
  { oid = !next_oid; shape; slots = Array.make shape.snslots Vundefined; dict = None }

let obj_get_atom o atom =
  match o.dict with
  | None ->
    let i = shape_find o.shape atom in
    if i >= 0 then Array.unsafe_get o.slots i else Vundefined
  | Some d -> ( match Hashtbl.find_opt d atom with Some v -> v | None -> Vundefined)

let obj_set_atom o atom v =
  match o.dict with
  | None ->
    let i = shape_find o.shape atom in
    if i >= 0 then Array.unsafe_set o.slots i v
    else begin
      let next = shape_transition o.shape atom in
      let slot = next.sslot in
      if slot >= Array.length o.slots then begin
        let ncap = max 4 (2 * Array.length o.slots) in
        let nslots = Array.make ncap Vundefined in
        Array.blit o.slots 0 nslots 0 o.shape.snslots;
        o.slots <- nslots
      end;
      o.slots.(slot) <- v;
      o.shape <- next
    end
  | Some d -> Hashtbl.replace d atom v

let obj_has_atom o atom =
  match o.dict with None -> shape_find o.shape atom >= 0 | Some d -> Hashtbl.mem d atom

let obj_get o name = obj_get_atom o (Atom.intern name)

let obj_set o name v = obj_set_atom o (Atom.intern name) v

let obj_has o name = obj_has_atom o (Atom.intern name)

let obj_delete o name =
  let atom = Atom.intern name in
  match o.dict with
  | Some d -> Hashtbl.remove d atom
  | None ->
    (* Demote to dictionary mode; shapes cannot express holes. *)
    let d = Hashtbl.create 8 in
    let rec copy s =
      if s.sslot >= 0 then begin
        copy s.sparent;
        Hashtbl.replace d s.satom o.slots.(s.sslot)
      end
    in
    copy o.shape;
    Hashtbl.remove d atom;
    o.dict <- Some d;
    o.shape <- dict_shape;
    o.slots <- no_slots

let obj_keys o =
  (* stable order: sort for determinism *)
  let keys =
    match o.dict with
    | None ->
      let rec go s acc = if s.sslot < 0 then acc else go s.sparent (Atom.to_string s.satom :: acc) in
      go o.shape []
    | Some d -> Hashtbl.fold (fun a _ acc -> Atom.to_string a :: acc) d []
  in
  List.sort String.compare keys

let obj_of_list kvs =
  let o = new_obj () in
  List.iter (fun (k, v) -> obj_set o k v) kvs;
  o

(* --- arrays, bytes ---------------------------------------------------- *)

let new_arr items = { items = Array.of_list items; len = List.length items }

let arr_get a i = if i >= 0 && i < a.len then a.items.(i) else Vundefined

let arr_set a i v =
  if i < 0 then error "negative array index %d" i;
  if i >= Array.length a.items then begin
    let ncap = max 8 (max (i + 1) (2 * Array.length a.items)) in
    let nitems = Array.make ncap Vundefined in
    Array.blit a.items 0 nitems 0 a.len;
    a.items <- nitems
  end;
  a.items.(i) <- v;
  if i >= a.len then a.len <- i + 1

let arr_push a v = arr_set a a.len v

let arr_to_list a = Array.to_list (Array.sub a.items 0 a.len)

let new_bytes () = { data = Bytes.create 0; blen = 0 }

let bytes_of_string s = { data = Bytes.of_string s; blen = String.length s }

let bytes_of_bytes b = { data = b; blen = Bytes.length b }
(* Zero-copy adoption: the byte array takes ownership of [b] (the
   caller must not retain it) — the transcode path hands freshly
   encoded frames to scripts without a round-trip through [string]. *)

let bytes_to_string b = Bytes.sub_string b.data 0 b.blen

let bytes_append b s =
  let slen = String.length s in
  if b.blen + slen > Bytes.length b.data then begin
    let ncap = max 32 (max (b.blen + slen) (2 * Bytes.length b.data)) in
    let ndata = Bytes.create ncap in
    Bytes.blit b.data 0 ndata 0 b.blen;
    b.data <- ndata
  end;
  Bytes.blit_string s 0 b.data b.blen slen;
  b.blen <- b.blen + slen

let native name call = Vfun (Native_fn { nname = name; call })

let type_name = function
  | Vundefined -> "undefined"
  | Vnull -> "object"
  | Vbool _ -> "boolean"
  | Vnum _ -> "number"
  | Vstr _ -> "string"
  | Vbytes _ -> "bytearray"
  | Vobj _ -> "object"
  | Varr _ -> "object"
  | Vfun _ -> "function"

let truthy = function
  | Vundefined | Vnull -> false
  | Vbool b -> b
  | Vnum n -> n <> 0.0 && not (Float.is_nan n)
  | Vstr s -> s <> ""
  | Vbytes _ | Vobj _ | Varr _ | Vfun _ -> true

let number_to_string n =
  if Float.is_nan n then "NaN"
  else if Float.is_integer n && Float.abs n < 1e15 then
    string_of_int (int_of_float n)
  else Printf.sprintf "%g" n

let rec to_string = function
  | Vundefined -> "undefined"
  | Vnull -> "null"
  | Vbool b -> string_of_bool b
  | Vnum n -> number_to_string n
  | Vstr s -> s
  | Vbytes b -> bytes_to_string b
  | Vobj _ -> "[object Object]"
  | Varr a -> String.concat "," (List.map to_string (arr_to_list a))
  | Vfun (Script_fn f) -> Printf.sprintf "function %s() { ... }" f.fname
  | Vfun (Compiled_fn f) -> Printf.sprintf "function %s() { ... }" f.code.cfname
  | Vfun (Native_fn f) -> Printf.sprintf "function %s() { [native code] }" f.nname

let to_number = function
  | Vundefined -> Float.nan
  | Vnull -> 0.0
  | Vbool true -> 1.0
  | Vbool false -> 0.0
  | Vnum n -> n
  | Vstr s -> (
    let s = String.trim s in
    if s = "" then 0.0 else match float_of_string_opt s with Some n -> n | None -> Float.nan)
  | Vbytes b -> float_of_int b.blen
  | Vobj _ | Varr _ | Vfun _ -> Float.nan

let to_int v =
  let n = to_number v in
  if Float.is_nan n then 0 else int_of_float n

let rec equal a b =
  match (a, b) with
  | Vundefined, Vundefined | Vnull, Vnull | Vundefined, Vnull | Vnull, Vundefined -> true
  | Vbool x, Vbool y -> x = y
  | Vnum x, Vnum y -> x = y
  | Vstr x, Vstr y -> x = y
  | Vnum _, Vstr _ -> to_number b = to_number a
  | Vstr _, Vnum _ -> to_number a = to_number b
  | Vbool _, (Vnum _ | Vstr _) -> equal (Vnum (to_number a)) b
  | (Vnum _ | Vstr _), Vbool _ -> equal a (Vnum (to_number b))
  | Vbytes x, Vbytes y -> x == y
  | Vobj x, Vobj y -> x == y
  | Varr x, Varr y -> x == y
  | Vfun x, Vfun y -> x == y
  | _ -> false

(* Approximate heap footprint of a freshly created value, in bytes; the
   sandbox charges allocations against the per-context heap limit. *)
let alloc_size = function
  | Vstr s -> String.length s + 16
  | Vbytes b -> Bytes.length b.data + 24
  | Vobj _ -> 64
  | Varr a -> (Array.length a.items * 8) + 24
  | Vfun _ -> 48
  | Vundefined | Vnull | Vbool _ | Vnum _ -> 0

(* --- call-frame arena -------------------------------------------------- *)

(* Marks a frame slot whose declaration has not executed yet; compared
   with physical equality and never visible to scripts ([Compile]'s
   temporal-shadowing sentinel). Lives here so the per-context frame
   arena can wipe recycled frames. *)
let undeclared : t = Vstr "<nk-undeclared-slot>"

let frame_pool_sizes = 33 (* pooled frame sizes: 1 .. 32 slots *)

let frame_pool_depth = 16 (* recycled frames kept per size class *)

let frame_acquire ctx n =
  if n > 0 && n < frame_pool_sizes then
    match ctx.frame_pool.(n) with
    | f :: rest ->
      ctx.frame_pool.(n) <- rest;
      ctx.frame_pool_count.(n) <- ctx.frame_pool_count.(n) - 1;
      Array.fill f 0 n undeclared;
      f
    | [] -> Array.make n undeclared
  else Array.make n undeclared

let frame_release ctx f =
  let n = Array.length f in
  if n > 0 && n < frame_pool_sizes && ctx.frame_pool_count.(n) < frame_pool_depth then begin
    ctx.frame_pool.(n) <- f :: ctx.frame_pool.(n);
    ctx.frame_pool_count.(n) <- ctx.frame_pool_count.(n) + 1
  end
