(** Persistent program registry.

    An on-disk extension of the in-memory compiled-program cache: parsed
    ASTs are marshalled under the script body's SHA-256, so a restarted
    node (or a diffusion peer that has never seen the body) can skip the
    parser entirely and go straight to compilation. Disabled unless a
    directory is configured — with no directory every call is a cheap
    no-op and behavior is identical to a registry-less build.

    Entries are self-validating: a format-version magic plus a checksum
    over the marshalled payload. Anything that fails validation —
    truncated file, stale format version, flipped bits — is rejected
    (and counted) and the caller falls back to parsing; a corrupt
    registry can never crash the node or poison the cache. *)

type stats = {
  hits : int;  (** entries loaded and validated *)
  misses : int;  (** lookups with no entry on disk *)
  stores : int;  (** entries written *)
  rejects : int;  (** entries present but refused: bad magic/checksum/decode *)
}

val set_dir : string option -> unit
(** Enable the registry rooted at the given directory (created if
    missing), or disable it with [None]. Disabled by default. *)

val dir : unit -> string option

val load : hash:string -> Ast.program option
(** Look up the marshalled AST for a raw 32-byte script-body SHA-256.
    Returns [None] when disabled, absent, or invalid — never raises. *)

val store : hash:string -> Ast.program -> unit
(** Persist a parsed program under its body hash. Atomic (write to a
    temp file, then rename); best-effort — I/O failures are swallowed
    so a read-only or full disk never breaks request handling. *)

val entries : unit -> string list
(** The raw 32-byte hashes of every entry currently on disk (decoded
    from the hex file names; malformed names are ignored). Empty when
    disabled. Used by {!Compile.preload_registry} at node start. *)

val stats : unit -> stats

val reset_stats : unit -> unit

val entry_path : hash:string -> string option
(** The on-disk path an entry for [hash] would use (None when
    disabled). Exposed for tests and diagnostics. *)
