(** Causal request tracing on the simulated clock.

    A request acquires a trace id at node admission ({!start_trace});
    the work it causes — cache lookup, policy match, pipeline stages,
    script interpretation, DHT hops, origin fetch, revalidation,
    integrity verification — runs under child spans. Completed traces
    land in a fixed-capacity ring buffer, and {!slowest} answers "where
    did this request's time go?" for the worst offenders. *)

type span = {
  span_id : int;
  trace_id : int;
  parent_id : int option;
  name : string;
  started : float;
  mutable ended : float option;
  mutable attrs : (string * string) list;
}

type trace = {
  id : int;
  root : span;
  spans : span list;  (** every span of the trace (root included), in start order *)
}

type t

val create : ?capacity:int -> clock:(unit -> float) -> unit -> t
(** [capacity] bounds the completed-trace ring buffer (default 256;
    oldest traces are overwritten). [clock] is typically
    [fun () -> Nk_sim.Sim.now sim]. *)

val start_trace : t -> ?attrs:(string * string) list -> string -> span
(** Open a new trace; the returned span is its root. *)

val start_span : t -> parent:span -> ?attrs:(string * string) list -> string -> span

val set_attr : span -> string -> string -> unit

val finish : t -> span -> unit
(** Close a span (idempotent). Closing a root span completes its trace
    and moves it into the ring buffer. *)

val with_span :
  t -> parent:span -> ?attrs:(string * string) list -> string -> (span -> 'a) -> 'a
(** Run a thunk under a fresh child span, finishing it even on
    exceptions. *)

val duration : span -> float option
(** [ended - started]; [None] while the span is open. *)

val completed : t -> int
(** Total traces completed so far (not capped by the ring capacity). *)

val traces : t -> trace list
(** The retained traces, oldest first. *)

val slowest : t -> int -> trace list
(** The [n] retained traces with the longest root durations,
    slowest first. *)

val render : trace -> string
(** An indented span tree with durations (ms) and attributes, for the
    [nakika trace] subcommand. *)
