type event = { time : float; name : string; attrs : (string * string) list }

type t = {
  clock : unit -> float;
  ring : event option array;
  mutable next_slot : int;
  mutable count : int;
}

let create ?(capacity = 1024) ?(clock = fun () -> 0.0) () =
  { clock; ring = Array.make (max 1 capacity) None; next_slot = 0; count = 0 }

let record t ?time ?(attrs = []) name =
  let time = match time with Some time -> time | None -> t.clock () in
  t.ring.(t.next_slot) <- Some { time; name; attrs };
  t.next_slot <- (t.next_slot + 1) mod Array.length t.ring;
  t.count <- t.count + 1

let count t = t.count

let to_list t =
  let n = Array.length t.ring in
  List.filter_map (fun i -> t.ring.((t.next_slot + i) mod n)) (List.init n (fun i -> i))

let event_to_string e =
  Printf.sprintf "%10.3f %-12s %s" e.time e.name
    (String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) e.attrs))

let event_json e =
  Printf.sprintf "{\"type\":\"event\",\"time\":%.6f,\"name\":\"%s\",\"attrs\":{%s}}" e.time
    (Metrics.json_escape e.name)
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf "\"%s\":\"%s\"" (Metrics.json_escape k) (Metrics.json_escape v))
          e.attrs))

let to_json_lines t =
  match to_list t with
  | [] -> ""
  | events -> String.concat "\n" (List.map event_json events) ^ "\n"
