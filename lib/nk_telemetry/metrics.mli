(** The metrics registry: labeled counters, gauges and log-bucketed
    histograms, with exporters.

    One registry per node (or per experiment); every instrument is
    keyed by a metric name plus an optional label set, so per-site
    resource-control decisions stay auditable ("how much latency did
    site X see?"). Histograms are sparse logarithmic-bucket sketches:
    cheap to record into, mergeable across nodes, and their quantile
    estimates are within one bucket's relative error
    ({!Histogram.growth}) of the exact sample percentiles. *)

type t

type labels = (string * string) list
(** Label pairs; order does not matter (they are normalized). *)

val create : unit -> t

(** {1 Counters} *)

val incr : t -> ?labels:labels -> ?by:int -> string -> unit

val counter : t -> ?labels:labels -> string -> int
(** 0 when never incremented. *)

val counter_total : t -> string -> int
(** Sum over every label set of the named counter. *)

(** {1 Gauges} *)

val set_gauge : t -> ?labels:labels -> string -> float -> unit

val gauge : t -> ?labels:labels -> string -> float
(** 0 when never set. *)

(** {1 Histograms} *)

module Histogram : sig
  type h

  val growth : float
  (** Geometric bucket growth factor (2{^1/4} ≈ 1.19): quantile
      estimates carry at most this relative error. *)

  val create : unit -> h

  val observe : h -> float -> unit
  (** Samples [<= 0] land in a dedicated underflow bucket. *)

  val count : h -> int

  val sum : h -> float

  val min_value : h -> float

  val max_value : h -> float

  val quantile : h -> float -> float
  (** [quantile h p] with [p] in [\[0,100\]]: nearest-rank over the
      buckets (same rank convention as {!Nk_util.Stats.percentile});
      returns the containing bucket's upper bound clamped to the
      observed maximum, so the estimate is an upper bound within one
      bucket of the exact percentile. 0 when empty. *)

  val merge : h -> h -> h
  (** Pure merge: the result is indistinguishable from the histogram of
      the concatenated sample streams. *)

  val buckets : h -> (float * float * int) list
  (** Non-empty buckets as [(lower, upper, count)], ascending. The
      underflow bucket reports as [(neg_infinity, 0., n)]. *)
end

val observe : t -> ?labels:labels -> string -> float -> unit

val histogram : t -> ?labels:labels -> string -> Histogram.h option

(** {1 Registry-level operations} *)

val merge : into:t -> t -> unit
(** Fold a registry (e.g. another node's) into [into]: counters and
    histogram buckets add; gauges take the source's latest value. *)

val counter_names : t -> string list
(** Distinct counter metric names, sorted. *)

val counters : t -> (string * labels * int) list
val gauges : t -> (string * labels * float) list
val histograms : t -> (string * labels * Histogram.h) list
(** All instruments, sorted by name then labels. *)

(** {1 Exporters} *)

val to_table : t -> string
(** Human-readable aligned table (counters, gauges, then histograms
    with count/mean/p50/p90/p99/max). *)

val to_json : t -> string
(** One JSON object: [{"counters":[...],"gauges":[...],"histograms":[...]}]. *)

val to_json_lines : t -> string
(** One JSON object per instrument per line, each with a ["type"] field
    — the format the bench harness appends to BENCH_<id>.json. *)

val to_prometheus : t -> string
(** Prometheus text exposition format (counters, gauges, and histograms
    with cumulative [le] buckets, [_sum] and [_count]). *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal (exposed for
    the exporters' callers: event dumps, bench files). *)
