type cell = { mutable calls : int; mutable total : float; mutable max : float }

type t = { clock : unit -> float; cells : (string, cell) Hashtbl.t }

let create ?(clock = Sys.time) () = { clock; cells = Hashtbl.create 16 }

let cell t region =
  match Hashtbl.find_opt t.cells region with
  | Some c -> c
  | None ->
    let c = { calls = 0; total = 0.0; max = 0.0 } in
    Hashtbl.add t.cells region c;
    c

let time t region f =
  let t0 = t.clock () in
  Fun.protect
    ~finally:(fun () ->
      let elapsed = t.clock () -. t0 in
      let c = cell t region in
      c.calls <- c.calls + 1;
      c.total <- c.total +. elapsed;
      if elapsed > c.max then c.max <- elapsed)
    f

type entry = { region : string; calls : int; total : float; max : float }

let report t =
  Hashtbl.fold
    (fun region (c : cell) acc -> { region; calls = c.calls; total = c.total; max = c.max } :: acc)
    t.cells []
  |> List.sort (fun a b -> compare b.total a.total)

let to_table t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%-36s %8s %12s %12s\n" "region" "calls" "total s" "max s");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%-36s %8d %12.6f %12.6f\n" e.region e.calls e.total e.max))
    (report t);
  Buffer.contents buf
