type span = {
  span_id : int;
  trace_id : int;
  parent_id : int option;
  name : string;
  started : float;
  mutable ended : float option;
  mutable attrs : (string * string) list;
}

type trace = { id : int; root : span; spans : span list }

type t = {
  clock : unit -> float;
  ring : trace option array;
  mutable next_slot : int;
  mutable completed : int;
  mutable next_id : int;
  live : (int, span list ref) Hashtbl.t; (* trace id -> spans, newest first *)
}

let create ?(capacity = 256) ~clock () =
  {
    clock;
    ring = Array.make (max 1 capacity) None;
    next_slot = 0;
    completed = 0;
    next_id = 1;
    live = Hashtbl.create 16;
  }

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let record_live t span =
  match Hashtbl.find_opt t.live span.trace_id with
  | Some spans -> spans := span :: !spans
  | None -> Hashtbl.add t.live span.trace_id (ref [ span ])

let start_trace t ?(attrs = []) name =
  let id = fresh_id t in
  let span =
    { span_id = id; trace_id = id; parent_id = None; name; started = t.clock ();
      ended = None; attrs }
  in
  record_live t span;
  span

let start_span t ~parent ?(attrs = []) name =
  let span =
    { span_id = fresh_id t; trace_id = parent.trace_id; parent_id = Some parent.span_id;
      name; started = t.clock (); ended = None; attrs }
  in
  record_live t span;
  span

let set_attr span key value = span.attrs <- span.attrs @ [ (key, value) ]

let finish t span =
  if span.ended = None then begin
    span.ended <- Some (t.clock ());
    if span.parent_id = None then begin
      (* Root closed: the trace is complete; move it into the ring. *)
      let spans =
        match Hashtbl.find_opt t.live span.trace_id with
        | Some spans -> List.rev !spans
        | None -> [ span ]
      in
      Hashtbl.remove t.live span.trace_id;
      t.ring.(t.next_slot) <- Some { id = span.trace_id; root = span; spans };
      t.next_slot <- (t.next_slot + 1) mod Array.length t.ring;
      t.completed <- t.completed + 1
    end
  end

let with_span t ~parent ?attrs name f =
  let span = start_span t ~parent ?attrs name in
  Fun.protect ~finally:(fun () -> finish t span) (fun () -> f span)

let duration span = Option.map (fun e -> e -. span.started) span.ended

let completed t = t.completed

let traces t =
  (* Oldest first: the slot about to be overwritten holds the oldest. *)
  let n = Array.length t.ring in
  List.filter_map
    (fun i -> t.ring.((t.next_slot + i) mod n))
    (List.init n (fun i -> i))

let slowest t n =
  traces t
  |> List.sort (fun a b ->
         compare
           (Option.value ~default:0.0 (duration b.root))
           (Option.value ~default:0.0 (duration a.root)))
  |> List.filteri (fun i _ -> i < n)

let render trace =
  let buf = Buffer.create 256 in
  let attrs_str span =
    match span.attrs with
    | [] -> ""
    | attrs -> "  " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
  in
  let dur_str span =
    match duration span with
    | Some d -> Printf.sprintf "%8.2f ms" (1000.0 *. d)
    | None -> "      open"
  in
  let children parent =
    List.filter (fun s -> s.parent_id = Some parent.span_id) trace.spans
  in
  let rec emit depth span =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s%s\n" (String.make (2 * depth) ' ') (dur_str span) span.name
         (attrs_str span));
    List.iter (emit (depth + 1)) (children span)
  in
  Buffer.add_string buf (Printf.sprintf "trace %d · started %.3f\n" trace.id trace.root.started);
  emit 0 trace.root;
  Buffer.contents buf
