(** Structured telemetry events: point-in-time decisions worth auditing
    (resource-monitor throttles and terminations, integrity evictions),
    kept in a fixed-capacity ring buffer with attribute labels. *)

type event = { time : float; name : string; attrs : (string * string) list }

type t

val create : ?capacity:int -> ?clock:(unit -> float) -> unit -> t
(** [capacity] defaults to 1024 (oldest events are overwritten);
    [clock] defaults to a constant 0 — pass the simulated clock to get
    meaningful timestamps. *)

val record : t -> ?time:float -> ?attrs:(string * string) list -> string -> unit
(** [time] overrides the clock (used when copying events between
    stores). *)

val count : t -> int
(** Total events recorded (not capped by the ring capacity). *)

val to_list : t -> event list
(** Retained events, oldest first. *)

val to_json_lines : t -> string

val event_to_string : event -> string
