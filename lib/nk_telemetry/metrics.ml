type labels = (string * string) list

(* Labels are normalized (sorted by key) so ["a",1;"b",2] and
   ["b",2;"a",1] address the same instrument. *)
let normalize labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

type key = { name : string; labels : labels }

let key name labels = { name; labels = normalize labels }

(* --- histograms ----------------------------------------------------- *)

module Histogram = struct
  (* Sparse logarithmic buckets: sample x > 0 lands in bucket
     floor(log_g x), covering [g^i, g^(i+1)). Recording is O(1),
     merging adds bucket counts, and any quantile is off by at most one
     bucket, i.e. a factor of [growth]. *)

  let growth = Float.pow 2.0 0.25

  let log_growth = Float.log growth

  type h = {
    mutable count : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
    mutable underflow : int; (* samples <= 0 *)
    buckets : (int, int ref) Hashtbl.t;
  }

  let create () =
    { count = 0; sum = 0.0; minv = infinity; maxv = neg_infinity; underflow = 0;
      buckets = Hashtbl.create 16 }

  let bucket_of x = int_of_float (Float.floor (Float.log x /. log_growth))

  let lower i = Float.pow growth (float_of_int i)

  let upper i = Float.pow growth (float_of_int (i + 1))

  let observe h x =
    h.count <- h.count + 1;
    h.sum <- h.sum +. x;
    if x < h.minv then h.minv <- x;
    if x > h.maxv then h.maxv <- x;
    if x <= 0.0 then h.underflow <- h.underflow + 1
    else begin
      let i = bucket_of x in
      match Hashtbl.find_opt h.buckets i with
      | Some r -> incr r
      | None -> Hashtbl.add h.buckets i (ref 1)
    end

  let count h = h.count

  let sum h = h.sum

  let min_value h = if h.count = 0 then 0.0 else h.minv

  let max_value h = if h.count = 0 then 0.0 else h.maxv

  let sorted_buckets h =
    Hashtbl.fold (fun i r acc -> (i, !r) :: acc) h.buckets []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let quantile h p =
    if h.count = 0 then 0.0
    else begin
      let p = Float.max 0.0 (Float.min 100.0 p) in
      let rank =
        let r = int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.count)) in
        if r < 1 then 1 else if r > h.count then h.count else r
      in
      if rank <= h.underflow then Float.min 0.0 h.maxv
      else begin
        let remaining = ref (rank - h.underflow) in
        let result = ref h.maxv in
        (try
           List.iter
             (fun (i, n) ->
               if !remaining <= n then begin
                 result := Float.min (upper i) h.maxv;
                 raise Exit
               end
               else remaining := !remaining - n)
             (sorted_buckets h)
         with Exit -> ());
        !result
      end
    end

  let merge a b =
    let h = create () in
    h.count <- a.count + b.count;
    h.sum <- a.sum +. b.sum;
    h.minv <- Float.min a.minv b.minv;
    h.maxv <- Float.max a.maxv b.maxv;
    h.underflow <- a.underflow + b.underflow;
    let add (i, n) =
      match Hashtbl.find_opt h.buckets i with
      | Some r -> r := !r + n
      | None -> Hashtbl.add h.buckets i (ref n)
    in
    List.iter add (sorted_buckets a);
    List.iter add (sorted_buckets b);
    h

  let buckets h =
    let log_buckets = List.map (fun (i, n) -> (lower i, upper i, n)) (sorted_buckets h) in
    if h.underflow > 0 then (neg_infinity, 0.0, h.underflow) :: log_buckets else log_buckets
end

(* --- the registry --------------------------------------------------- *)

type t = {
  counters : (key, int ref) Hashtbl.t;
  gauges : (key, float ref) Hashtbl.t;
  histograms : (key, Histogram.h) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32; gauges = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let incr t ?(labels = []) ?(by = 1) name =
  let k = key name labels in
  match Hashtbl.find_opt t.counters k with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters k (ref by)

let counter t ?(labels = []) name =
  match Hashtbl.find_opt t.counters (key name labels) with Some r -> !r | None -> 0

let counter_total t name =
  Hashtbl.fold (fun k r acc -> if k.name = name then acc + !r else acc) t.counters 0

let set_gauge t ?(labels = []) name v =
  let k = key name labels in
  match Hashtbl.find_opt t.gauges k with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges k (ref v)

let gauge t ?(labels = []) name =
  match Hashtbl.find_opt t.gauges (key name labels) with Some r -> !r | None -> 0.0

let hist t k =
  match Hashtbl.find_opt t.histograms k with
  | Some h -> h
  | None ->
    let h = Histogram.create () in
    Hashtbl.add t.histograms k h;
    h

let observe t ?(labels = []) name x = Histogram.observe (hist t (key name labels)) x

let histogram t ?(labels = []) name = Hashtbl.find_opt t.histograms (key name labels)

let merge ~into src =
  Hashtbl.iter
    (fun k r -> incr into ~labels:k.labels ~by:!r k.name)
    src.counters;
  Hashtbl.iter (fun k r -> set_gauge into ~labels:k.labels k.name !r) src.gauges;
  Hashtbl.iter
    (fun k h ->
      let merged = Histogram.merge (hist into k) h in
      Hashtbl.replace into.histograms k merged)
    src.histograms

let sorted_entries table value =
  Hashtbl.fold (fun k v acc -> (k.name, k.labels, value v) :: acc) table []
  |> List.sort compare

let counters t = sorted_entries t.counters (fun r -> !r)

let gauges t = sorted_entries t.gauges (fun r -> !r)

let histograms t = sorted_entries t.histograms (fun h -> h)

let counter_names t =
  counters t |> List.map (fun (n, _, _) -> n) |> List.sort_uniq compare

(* --- exporters ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let labels_to_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let float_repr x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let to_table t =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (match counters t with
   | [] -> ()
   | cs ->
     line "counters:";
     List.iter (fun (n, ls, v) -> line "  %-44s %12d" (n ^ labels_to_string ls) v) cs);
  (match gauges t with
   | [] -> ()
   | gs ->
     line "gauges:";
     List.iter (fun (n, ls, v) -> line "  %-44s %12s" (n ^ labels_to_string ls) (float_repr v)) gs);
  (match histograms t with
   | [] -> ()
   | hs ->
     line "histograms:  %-31s %8s %10s %10s %10s %10s %10s" "" "count" "mean" "p50" "p90" "p99" "max";
     List.iter
       (fun (n, ls, h) ->
         let c = Histogram.count h in
         let mean = if c = 0 then 0.0 else Histogram.sum h /. float_of_int c in
         line "  %-44s %8d %10.4g %10.4g %10.4g %10.4g %10.4g" (n ^ labels_to_string ls) c mean
           (Histogram.quantile h 50.0) (Histogram.quantile h 90.0) (Histogram.quantile h 99.0)
           (Histogram.max_value h))
       hs);
  Buffer.contents buf

let labels_json labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)) labels)
  ^ "}"

let counter_json (n, ls, v) =
  Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"value\":%d}" (json_escape n) (labels_json ls) v

let gauge_json (n, ls, v) =
  Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"value\":%s}" (json_escape n) (labels_json ls)
    (float_repr v)

let histogram_json (n, ls, h) =
  let c = Histogram.count h in
  Printf.sprintf
    "{\"name\":\"%s\",\"labels\":%s,\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
    (json_escape n) (labels_json ls) c
    (float_repr (Histogram.sum h))
    (float_repr (Histogram.min_value h))
    (float_repr (Histogram.max_value h))
    (float_repr (Histogram.quantile h 50.0))
    (float_repr (Histogram.quantile h 90.0))
    (float_repr (Histogram.quantile h 99.0))

let to_json t =
  Printf.sprintf "{\"counters\":[%s],\"gauges\":[%s],\"histograms\":[%s]}"
    (String.concat "," (List.map counter_json (counters t)))
    (String.concat "," (List.map gauge_json (gauges t)))
    (String.concat "," (List.map histogram_json (histograms t)))

let with_type ty json =
  (* Splice a "type" field into an exporter-produced object. *)
  Printf.sprintf "{\"type\":\"%s\",%s" ty (String.sub json 1 (String.length json - 1))

let to_json_lines t =
  let lines =
    List.map (fun e -> with_type "counter" (counter_json e)) (counters t)
    @ List.map (fun e -> with_type "gauge" (gauge_json e)) (gauges t)
    @ List.map (fun e -> with_type "histogram" (histogram_json e)) (histograms t)
  in
  String.concat "\n" lines ^ if lines = [] then "" else "\n"

let prom_name name =
  String.map (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let prom_labels labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (prom_name k) (json_escape v)) labels)
    ^ "}"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let declare name ty =
    if not (Hashtbl.mem typed (name, ty)) then begin
      Hashtbl.add typed (name, ty) ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name ty)
    end
  in
  List.iter
    (fun (n, ls, v) ->
      let n = prom_name n in
      declare n "counter";
      Buffer.add_string buf (Printf.sprintf "%s%s %d\n" n (prom_labels ls) v))
    (counters t);
  List.iter
    (fun (n, ls, v) ->
      let n = prom_name n in
      declare n "gauge";
      Buffer.add_string buf (Printf.sprintf "%s%s %s\n" n (prom_labels ls) (float_repr v)))
    (gauges t);
  List.iter
    (fun (n, ls, h) ->
      let n = prom_name n in
      declare n "histogram";
      let cumulative = ref 0 in
      List.iter
        (fun (_, up, c) ->
          cumulative := !cumulative + c;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" n
               (prom_labels (ls @ [ ("le", float_repr up) ]))
               !cumulative))
        (Histogram.buckets h);
      Buffer.add_string buf
        (Printf.sprintf "%s_bucket%s %d\n" n (prom_labels (ls @ [ ("le", "+Inf") ]))
           (Histogram.count h));
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" n (prom_labels ls) (float_repr (Histogram.sum h)));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" n (prom_labels ls) (Histogram.count h)))
    (histograms t);
  Buffer.contents buf
