(** Scoped wall/CPU timers for hot paths.

    Unlike {!Tracer} spans (simulated time, per request), a profile
    accumulates *real* time per code region across many calls — the
    tool for "which part of the bench burned the CPU". *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] defaults to [Sys.time] (process CPU seconds). *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk, charging its elapsed clock time to the named region
    (exception-safe). Nested and repeated regions accumulate. *)

type entry = { region : string; calls : int; total : float; max : float }

val report : t -> entry list
(** Regions sorted by total time, largest first. *)

val to_table : t -> string
