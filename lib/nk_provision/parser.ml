(* Recursive-descent parser for the capacity-plan language.

     plan      := item* EOF
     item      := "node" STRING "{" section* "}"
                | "site" STRING "{" clause* "}"
     section   := IDENT "{" setting* "}"
     setting   := IDENT "=" VALUE ";"?
     clause    := "share" ">=" VALUE ";"?
                | "fuel" "<=" VALUE ";"?
                | "heap" "<=" VALUE ";"?
                | "quarantine" "base" VALUE "max" VALUE ";"?

   The parser checks shape only: any section/setting identifier and any
   value kind is accepted here, so the verifier's units pass — not a
   syntax error — reports unknown keys and unit mismatches, with
   positions preserved by this IR. Plan identity (the hash operators
   audit and [nakika stats --health] reports) is the SHA-256 of the
   exact plan text. *)

exception Parse_error of string * Ast.pos

let fail pos fmt = Printf.ksprintf (fun msg -> raise (Parse_error (msg, pos))) fmt

type state = { tokens : (Lexer.token * Ast.pos) array; mutable at : int }

let peek st = st.tokens.(st.at)

let next st =
  let tok = st.tokens.(st.at) in
  if fst tok <> Lexer.Eof then st.at <- st.at + 1;
  tok

let expect st want ~what =
  let tok, pos = next st in
  if tok <> want then
    fail pos "expected %s %s, found %s" (Lexer.token_label want) what (Lexer.token_label tok)

let expect_string st ~what =
  match next st with
  | Lexer.Str s, pos -> (s, pos)
  | tok, pos -> fail pos "expected a quoted %s, found %s" what (Lexer.token_label tok)

let expect_value st ~what =
  match next st with
  | Lexer.Value v, pos -> (v, pos)
  | tok, pos -> fail pos "expected a value for %s, found %s" what (Lexer.token_label tok)

let skip_semi st = match peek st with Lexer.Semi, _ -> ignore (next st) | _ -> ()

let parse_setting st ~key ~key_pos =
  expect st Lexer.Eq ~what:(Printf.sprintf "after setting %S" key);
  let value, value_pos = expect_value st ~what:(Printf.sprintf "setting %S" key) in
  skip_semi st;
  { Ast.key; key_pos; value; value_pos }

let parse_section st ~name ~name_pos =
  expect st Lexer.Lbrace ~what:(Printf.sprintf "to open section %S" name);
  let settings = ref [] in
  let rec loop () =
    match next st with
    | Lexer.Rbrace, _ -> ()
    | Lexer.Ident key, key_pos ->
      settings := parse_setting st ~key ~key_pos :: !settings;
      loop ()
    | tok, pos ->
      fail pos "expected a setting or '}' in section %S, found %s" name (Lexer.token_label tok)
  in
  loop ();
  { Ast.section = name; section_pos = name_pos; settings = List.rev !settings }

let parse_node st =
  let pattern, node_pos = expect_string st ~what:"node pattern" in
  expect st Lexer.Lbrace ~what:"to open the node block";
  let sections = ref [] in
  let rec loop () =
    match next st with
    | Lexer.Rbrace, _ -> ()
    | Lexer.Ident name, name_pos ->
      sections := parse_section st ~name ~name_pos :: !sections;
      loop ()
    | tok, pos ->
      fail pos "expected a section (capacity/diffusion/breaker/quarantine) or '}', found %s"
        (Lexer.token_label tok)
  in
  loop ();
  { Ast.node_pattern = pattern; node_pos; sections = List.rev !sections }

let parse_clause st ~keyword ~pos =
  match keyword with
  | "share" ->
    expect st Lexer.Ge ~what:"after 'share' (shares are lower bounds)";
    let v, _ = expect_value st ~what:"share" in
    skip_semi st;
    Ast.Share (v, pos)
  | "fuel" ->
    expect st Lexer.Le ~what:"after 'fuel' (fuel is an upper bound)";
    let v, _ = expect_value st ~what:"fuel" in
    skip_semi st;
    Ast.Fuel (v, pos)
  | "heap" ->
    expect st Lexer.Le ~what:"after 'heap' (heap is an upper bound)";
    let v, _ = expect_value st ~what:"heap" in
    skip_semi st;
    Ast.Heap (v, pos)
  | "quarantine" ->
    expect st (Lexer.Ident "base") ~what:"after 'quarantine'";
    let base, base_pos = expect_value st ~what:"quarantine base window" in
    expect st (Lexer.Ident "max") ~what:"after the quarantine base window";
    let max_, max_pos = expect_value st ~what:"quarantine max window" in
    skip_semi st;
    Ast.Quarantine_window { base; base_pos; max_; max_pos }
  | other -> fail pos "unknown site clause %S (expected share, fuel, heap or quarantine)" other

let parse_site st =
  let pattern, pattern_pos = expect_string st ~what:"site pattern" in
  expect st Lexer.Lbrace ~what:"to open the site rule";
  let clauses = ref [] in
  let rec loop () =
    match next st with
    | Lexer.Rbrace, _ -> ()
    | Lexer.Ident keyword, pos ->
      clauses := parse_clause st ~keyword ~pos :: !clauses;
      loop ()
    | tok, pos -> fail pos "expected a site clause or '}', found %s" (Lexer.token_label tok)
  in
  loop ();
  { Ast.pattern; pattern_pos; clauses = List.rev !clauses }

let parse source =
  let st = { tokens = Array.of_list (Lexer.tokenize source); at = 0 } in
  let items = ref [] in
  let rec loop () =
    match next st with
    | Lexer.Eof, _ -> ()
    | Lexer.Ident "node", _ ->
      items := Ast.Node (parse_node st) :: !items;
      loop ()
    | Lexer.Ident "site", _ ->
      items := Ast.Site (parse_site st) :: !items;
      loop ()
    | tok, pos ->
      fail pos "expected a 'node' block or 'site' rule at top level, found %s"
        (Lexer.token_label tok)
  in
  loop ();
  { Ast.items = List.rev !items; source; hash = Nk_crypto.Sha256.digest_hex source }
