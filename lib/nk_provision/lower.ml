(* Lowering: a verified plan to the [Nk_node.Config] values the nodes
   it provisions will run. Lowering is total on verified plans (every
   setting the verifier accepted has a knob here — both read the same
   [Verify.vocabulary]) and deterministic: the same plan text always
   produces the same configs, which is what makes the plan hash an
   audit handle for a deployment's resource policy. *)

module Config = Nk_node.Config

type lowered = {
  node_pattern : string; (* which nodes this config provisions *)
  node_pos : Ast.pos;
  config : Config.t;
}

(* One row per node-level knob: the same vocabulary the verifier
   checked against, interpreted as a config update. *)
let apply ~knob ~value (c : Config.t) =
  match knob with
  | "admission_capacity" -> { c with Config.admission_capacity = int_of_float value }
  | "admission_target" -> { c with Config.admission_target = value }
  | "admission_interval" -> { c with Config.admission_interval = value }
  | "script_max_fuel" -> { c with Config.script_max_fuel = int_of_float value }
  | "script_max_heap" -> { c with Config.script_max_heap = int_of_float value }
  | "cache_bytes" -> { c with Config.cache_bytes = int_of_float value }
  | "enable_diffusion" -> { c with Config.enable_diffusion = value <> 0.0 }
  | "diffusion_low_water" -> { c with Config.diffusion_low_water = value }
  | "diffusion_high_water" -> { c with Config.diffusion_high_water = value }
  | "diffusion_fanout" -> { c with Config.diffusion_fanout = int_of_float value }
  | "diffusion_offload_timeout" -> { c with Config.diffusion_offload_timeout = value }
  | "diffusion_fetch_timeout" -> { c with Config.diffusion_fetch_timeout = value }
  | "diffusion_staleness" -> { c with Config.diffusion_staleness = value }
  | "enable_hotspots" -> { c with Config.enable_hotspots = value <> 0.0 }
  | "hotspot_threshold" -> { c with Config.hotspot_threshold = value }
  | "hotspot_replicas" -> { c with Config.hotspot_replicas = int_of_float value }
  | "hotspot_ttl" -> { c with Config.hotspot_ttl = value }
  | "hotspot_halflife" -> { c with Config.hotspot_halflife = value }
  | "breaker_failures" -> { c with Config.breaker_failures = int_of_float value }
  | "breaker_error_rate" -> { c with Config.breaker_error_rate = value }
  | "breaker_window" -> { c with Config.breaker_window = value }
  | "breaker_cooldown" -> { c with Config.breaker_cooldown = value }
  | "breaker_max_cooldown" -> { c with Config.breaker_max_cooldown = value }
  | "termination_penalty" -> { c with Config.termination_penalty = value }
  | "quarantine_max" -> { c with Config.quarantine_max = value }
  | "quarantine_decay" -> { c with Config.quarantine_decay = value }
  | "request_deadline" -> { c with Config.request_deadline = value }
  | "enable_hedging" -> { c with Config.enable_hedging = value <> 0.0 }
  | "hedge_rate" -> { c with Config.hedge_rate = value }
  | "retry_budget_ratio" -> { c with Config.retry_budget_ratio = value }
  | other -> invalid_arg (Printf.sprintf "Lower.apply: unknown knob %S" other)

let apply_block (block : Ast.node_block) config =
  List.fold_left
    (fun config (sec : Ast.section) ->
      List.fold_left
        (fun config (s : Ast.setting) ->
          match Verify.kind_of ~section:sec.Ast.section ~key:s.Ast.key with
          | None -> config (* verifier already reported unknown-key *)
          | Some kind -> (
            match Verify.normalize kind s.Ast.value with
            | Error _ -> config (* verifier already reported unit-mismatch *)
            | Ok value -> (
              match Verify.knob_of ~section:sec.Ast.section ~key:s.Ast.key with
              | None -> config
              | Some knob -> apply ~knob ~value config)))
        config sec.Ast.settings)
    config block.Ast.sections

(* Site rules lower into the per-site tables, in declaration order
   (first match wins at runtime, same as in the plan). Shadowed rules
   are dropped — the verifier already warned — so the runtime tables
   contain only rules that can fire. *)
let site_tables (plan : Ast.t) =
  let rules = Verify.reachable_sites plan in
  let shares =
    List.filter_map
      (fun (r : Ast.site_rule) ->
        match Verify.declared_share r with
        | Some (percent, _) when not (String.contains r.Ast.pattern '*') ->
          Some (r.Ast.pattern, percent /. 100.0)
        | _ -> None)
      rules
  in
  let quarantine =
    List.filter_map
      (fun (r : Ast.site_rule) ->
        List.find_map
          (function
            | Ast.Quarantine_window { base; max_; _ } -> (
              match
                (Verify.normalize Verify.Duration_pos base, Verify.normalize Verify.Duration_pos max_)
              with
              | Ok b, Ok m -> Some (r.Ast.pattern, b, m)
              | _ -> None)
            | _ -> None)
          r.Ast.clauses)
      rules
  in
  let cap ~pick =
    List.filter_map
      (fun (r : Ast.site_rule) ->
        List.find_map (fun clause -> pick r.Ast.pattern clause) r.Ast.clauses)
      rules
  in
  let fuel =
    cap ~pick:(fun pattern -> function
      | Ast.Fuel (v, _) -> (
        match Verify.normalize Verify.Count v with
        | Ok f -> Some (pattern, int_of_float f)
        | Error _ -> None)
      | _ -> None)
  in
  let heap =
    cap ~pick:(fun pattern -> function
      | Ast.Heap (v, _) -> (
        match Verify.normalize Verify.Bytes v with
        | Ok b -> Some (pattern, int_of_float b)
        | Error _ -> None)
      | _ -> None)
  in
  (shares, quarantine, fuel, heap)

let lower ?(base = Config.default) (plan : Ast.t) =
  let shares, quarantine, fuel, heap = site_tables plan in
  let with_sites config =
    {
      config with
      Config.site_shares = shares;
      site_quarantine = quarantine;
      site_fuel = fuel;
      site_heap = heap;
      plan_hash = Some plan.Ast.hash;
    }
  in
  match Ast.nodes plan with
  | [] ->
    (* A plan of only site rules provisions every node off the base
       config — an implicit [node "*" {}] block. *)
    [
      {
        node_pattern = "*";
        node_pos = { Nk_script.Ast.line = 1; col = 1 };
        config = with_sites base;
      };
    ]
  | blocks ->
    List.map
      (fun (b : Ast.node_block) ->
        {
          node_pattern = b.Ast.node_pattern;
          node_pos = b.Ast.node_pos;
          config = with_sites (apply_block b base);
        })
      blocks

(* The config a named node runs: first node block whose pattern matches,
   same matcher the runtime share tables use. *)
let config_for lowered ~node =
  List.find_map
    (fun l ->
      if Nk_resource.Shares.matches ~pattern:l.node_pattern node then Some l.config else None)
    lowered

(* Human-readable lowering map for [nakika plan explain]: which plan
   field became which config knob, per node block. *)
let explain (plan : Ast.t) lowered =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "plan %s\n" (String.sub plan.Ast.hash 0 12);
  List.iter
    (fun l ->
      Printf.bprintf buf "node %S:\n" l.node_pattern;
      let c = l.config in
      List.iter
        (fun (section, key, _, knob) ->
          let shown =
            match knob with
            | "admission_capacity" -> Printf.sprintf "%d slots" c.Config.admission_capacity
            | "admission_target" -> Printf.sprintf "%gs" c.Config.admission_target
            | "admission_interval" -> Printf.sprintf "%gs" c.Config.admission_interval
            | "script_max_fuel" -> Printf.sprintf "%d" c.Config.script_max_fuel
            | "script_max_heap" -> Printf.sprintf "%d bytes" c.Config.script_max_heap
            | "cache_bytes" -> Printf.sprintf "%d bytes" c.Config.cache_bytes
            | "enable_diffusion" -> if c.Config.enable_diffusion then "on" else "off"
            | "diffusion_low_water" -> Printf.sprintf "%g" c.Config.diffusion_low_water
            | "diffusion_high_water" -> Printf.sprintf "%g" c.Config.diffusion_high_water
            | "diffusion_fanout" -> Printf.sprintf "%d" c.Config.diffusion_fanout
            | "diffusion_offload_timeout" ->
              Printf.sprintf "%gs" c.Config.diffusion_offload_timeout
            | "diffusion_fetch_timeout" -> Printf.sprintf "%gs" c.Config.diffusion_fetch_timeout
            | "diffusion_staleness" -> Printf.sprintf "%gs" c.Config.diffusion_staleness
            | "enable_hotspots" -> if c.Config.enable_hotspots then "on" else "off"
            | "hotspot_threshold" -> Printf.sprintf "%g req/s" c.Config.hotspot_threshold
            | "hotspot_replicas" -> Printf.sprintf "%d" c.Config.hotspot_replicas
            | "hotspot_ttl" -> Printf.sprintf "%gs" c.Config.hotspot_ttl
            | "hotspot_halflife" -> Printf.sprintf "%gs" c.Config.hotspot_halflife
            | "breaker_failures" -> Printf.sprintf "%d" c.Config.breaker_failures
            | "breaker_error_rate" -> Printf.sprintf "%g" c.Config.breaker_error_rate
            | "breaker_window" -> Printf.sprintf "%gs" c.Config.breaker_window
            | "breaker_cooldown" -> Printf.sprintf "%gs" c.Config.breaker_cooldown
            | "breaker_max_cooldown" -> Printf.sprintf "%gs" c.Config.breaker_max_cooldown
            | "termination_penalty" -> Printf.sprintf "%gs" c.Config.termination_penalty
            | "quarantine_max" -> Printf.sprintf "%gs" c.Config.quarantine_max
            | "quarantine_decay" -> Printf.sprintf "%gs" c.Config.quarantine_decay
            | "request_deadline" -> Printf.sprintf "%gs" c.Config.request_deadline
            | "enable_hedging" -> if c.Config.enable_hedging then "on" else "off"
            | "hedge_rate" -> Printf.sprintf "%g" c.Config.hedge_rate
            | "retry_budget_ratio" -> Printf.sprintf "%g" c.Config.retry_budget_ratio
            | _ -> "?"
          in
          Printf.bprintf buf "  %s.%s -> %s = %s\n" section key knob shown)
        Verify.vocabulary;
      List.iter
        (fun (pattern, f) ->
          Printf.bprintf buf "  site %S -> share %g%% (%d of %d slots)\n" pattern (100.0 *. f)
            (max 1 (int_of_float ((f *. float_of_int c.Config.admission_capacity) +. 0.5)))
            c.Config.admission_capacity)
        c.Config.site_shares;
      List.iter
        (fun (pattern, base, max_) ->
          Printf.bprintf buf "  site %S -> quarantine base %gs max %gs\n" pattern base max_)
        c.Config.site_quarantine;
      List.iter
        (fun (pattern, fuel) -> Printf.bprintf buf "  site %S -> fuel cap %d\n" pattern fuel)
        c.Config.site_fuel;
      List.iter
        (fun (pattern, heap) ->
          Printf.bprintf buf "  site %S -> heap cap %d bytes\n" pattern heap)
        c.Config.site_heap)
    lowered;
  Buffer.contents buf
