(* The position-carrying typed IR of the capacity-plan language.

   A plan is a flat list of items in source order:

   - [node "PATTERN" { capacity {...} diffusion {...} hotspots {...}
     breaker {...} quarantine {...} }] blocks carry node-level knob
     settings; the
     pattern selects which nodes the block configures ("*" is every
     node, "*.suffix" a name suffix, anything else an exact host).
   - [site "PATTERN" { share >= 30%; fuel <= 40000; heap <= 4mb;
     quarantine base 2s max 5m }] rules carry per-site guarantees and
     caps; like the admission share table they compile into, rules
     resolve first-match in source order.

   Values keep their written unit ([Percent], [Duration], [Size]) so
   the verifier's units pass can reject a share given in seconds with a
   message pointing at the offending token, not at a lowered float. *)

type pos = Nk_script.Ast.pos

type value =
  | Number of float (* a bare count: 64, 0.3, 40000 *)
  | Percent of float (* 30% — stored as written (30.0) *)
  | Duration of float (* 500ms / 2s / 5m / 1h — seconds *)
  | Size of float (* 4kb / 64mb / 1gb — bytes *)
  | Flag of bool (* on / off *)

let kind_label = function
  | Number _ -> "number"
  | Percent _ -> "percent"
  | Duration _ -> "duration"
  | Size _ -> "size"
  | Flag _ -> "flag"

let value_to_string = function
  | Number f -> Printf.sprintf "%g" f
  | Percent f -> Printf.sprintf "%g%%" f
  | Duration f -> Printf.sprintf "%gs" f
  | Size f -> Printf.sprintf "%gb" f
  | Flag b -> if b then "on" else "off"

type setting = { key : string; key_pos : pos; value : value; value_pos : pos }

type section = { section : string; section_pos : pos; settings : setting list }

type clause =
  | Share of value * pos
  | Fuel of value * pos
  | Heap of value * pos
  | Quarantine_window of { base : value; base_pos : pos; max_ : value; max_pos : pos }

let clause_pos = function
  | Share (_, p) | Fuel (_, p) | Heap (_, p) -> p
  | Quarantine_window { base_pos; _ } -> base_pos

type site_rule = { pattern : string; pattern_pos : pos; clauses : clause list }

type node_block = { node_pattern : string; node_pos : pos; sections : section list }

type item = Node of node_block | Site of site_rule

type t = {
  items : item list;
  source : string;
  hash : string; (* SHA-256 (hex) of the plan text, the deployment's audit handle *)
}

let nodes t = List.filter_map (function Node b -> Some b | Site _ -> None) t.items

let sites t = List.filter_map (function Site s -> Some s | Node _ -> None) t.items

(* Does [pattern] subsume [other] — is every site matched by [other]
   also matched by [pattern]? The shadowing pass calls a later rule
   unreachable exactly when an earlier one subsumes it. *)
let subsumes ~pattern ~other =
  let suffix p = String.sub p 1 (String.length p - 1) in
  let is_wild p = String.length p > 2 && String.sub p 0 2 = "*." in
  if pattern = "*" then true
  else if other = "*" then false
  else if is_wild pattern then
    if is_wild other then
      let ps = suffix pattern and os = suffix other in
      String.length os >= String.length ps
      && String.sub os (String.length os - String.length ps) (String.length ps) = ps
    else Nk_resource.Shares.matches ~pattern other
  else pattern = other
