(* The multi-pass static verifier for capacity plans, in the
   nk_analysis style: every pass walks the typed IR and reports
   position-carrying [Nk_analysis.Diagnostic]s; nothing mutates the
   plan. Passes:

   - {b units}: every setting key is known, carries the right unit
     kind, and sits in its legal range (percents in (0,100], durations
     positive, counts at least 1); site patterns are well-formed.
   - {b ordering}: effective low/high diffusion waters, breaker
     cooldown vs max, and quarantine base vs max are ordered — checked
     against the block's own settings with [Config.default] filling
     unset knobs, so [low = 0.9] alone is caught against the default
     high water.
   - {b feasibility}: per node block, the shares declared by site rules
     sum to at most 100% and each reserves at least one whole slot of
     that block's admission capacity. Share clauses must name concrete
     sites: a share on a wildcard pattern reserves capacity for
     unboundedly many tenants and no static check can make that sound.
   - {b shadowing}: a site rule (or node block) subsumed by an earlier
     pattern can never match — a warning, since the plan still has a
     well-defined meaning.

   The fifth check — that the lowered [Config] is one a node accepts —
   is [Config.validate], shared verbatim with node construction; the
   facade ([Provision.compile]) runs it after lowering. *)

module D = Nk_analysis.Diagnostic
module Config = Nk_node.Config

(* --- the knob vocabulary -------------------------------------------- *)

type kind =
  | Count (* positive integer: slots, fanout, failures, fuel *)
  | Duration_pos
  | Duration_nonneg
  | Water (* fraction of the pressure scale: 0.3 or 30% *)
  | Rate (* strictly positive fraction: 50% or 0.5 *)
  | Bytes (* 64mb or a bare byte count *)
  | Toggle

(* (section, key, kind, the Config knob it lowers to) — one row per
   node-level setting the language can express. [Lower] consumes the
   same table, so "what the verifier accepts" and "what the compiler
   lowers" cannot drift apart. *)
let vocabulary =
  [
    ("capacity", "admission", Count, "admission_capacity");
    ("capacity", "target", Duration_pos, "admission_target");
    ("capacity", "interval", Duration_pos, "admission_interval");
    ("capacity", "fuel", Count, "script_max_fuel");
    ("capacity", "heap", Bytes, "script_max_heap");
    ("capacity", "cache", Bytes, "cache_bytes");
    ("diffusion", "enabled", Toggle, "enable_diffusion");
    ("diffusion", "low", Water, "diffusion_low_water");
    ("diffusion", "high", Water, "diffusion_high_water");
    ("diffusion", "fanout", Count, "diffusion_fanout");
    ("diffusion", "timeout", Duration_pos, "diffusion_offload_timeout");
    ("diffusion", "fetch-timeout", Duration_pos, "diffusion_fetch_timeout");
    ("diffusion", "staleness", Duration_pos, "diffusion_staleness");
    ("hotspots", "enabled", Toggle, "enable_hotspots");
    ("hotspots", "threshold", Count, "hotspot_threshold");
    ("hotspots", "replicas", Count, "hotspot_replicas");
    ("hotspots", "ttl", Duration_pos, "hotspot_ttl");
    ("hotspots", "halflife", Duration_pos, "hotspot_halflife");
    ("breaker", "failures", Count, "breaker_failures");
    ("breaker", "error-rate", Rate, "breaker_error_rate");
    ("breaker", "window", Duration_pos, "breaker_window");
    ("breaker", "cooldown", Duration_pos, "breaker_cooldown");
    ("breaker", "max", Duration_pos, "breaker_max_cooldown");
    ("quarantine", "base", Duration_pos, "termination_penalty");
    ("quarantine", "max", Duration_pos, "quarantine_max");
    ("quarantine", "decay", Duration_nonneg, "quarantine_decay");
    ("deadline", "request", Duration_pos, "request_deadline");
    ("deadline", "hedge", Toggle, "enable_hedging");
    ("deadline", "hedge-rate", Rate, "hedge_rate");
    ("deadline", "retry_budget", Rate, "retry_budget_ratio");
  ]

let sections = [ "capacity"; "diffusion"; "hotspots"; "breaker"; "quarantine"; "deadline" ]

let knob_of ~section ~key =
  List.find_map
    (fun (s, k, _, knob) -> if s = section && k = key then Some knob else None)
    vocabulary

let kind_of ~section ~key =
  List.find_map
    (fun (s, k, kind, _) -> if s = section && k = key then Some kind else None)
    vocabulary

(* Normalize a written value to the float the kind lowers to (flags to
   0/1), or explain why it cannot. *)
let normalize kind (v : Ast.value) =
  let wrong expected = Error (Printf.sprintf "expected %s, got %s" expected (Ast.kind_label v)) in
  match (kind, v) with
  | Count, Ast.Number f ->
    if Float.rem f 1.0 <> 0.0 then Error "expected a whole number"
    else if f < 1.0 then Error "must be at least 1"
    else Ok f
  | Count, _ -> wrong "a bare count"
  | Duration_pos, Ast.Duration s ->
    if s <= 0.0 then Error "duration must be positive" else Ok s
  | Duration_nonneg, Ast.Duration s ->
    if s < 0.0 then Error "duration must not be negative" else Ok s
  | (Duration_pos | Duration_nonneg), _ -> wrong "a duration (e.g. 500ms, 2s, 5m)"
  | Water, Ast.Percent p ->
    if p < 0.0 || p > 100.0 then Error "percent must be between 0% and 100%" else Ok (p /. 100.0)
  | Water, Ast.Number f ->
    if f < 0.0 || f > 1.0 then Error "a bare water level must be between 0 and 1" else Ok f
  | Water, _ -> wrong "a fraction (0.3) or percent (30%)"
  | Rate, Ast.Percent p ->
    if p <= 0.0 || p > 100.0 then Error "percent must be in (0%, 100%]" else Ok (p /. 100.0)
  | Rate, Ast.Number f ->
    if f <= 0.0 || f > 1.0 then Error "a bare rate must be in (0, 1]" else Ok f
  | Rate, _ -> wrong "a rate (0.5 or 50%)"
  (* Byte caps lower through [int_of_float], so anything under a whole
     byte would truncate to 0 — a cap the node refuses. Require >= 1. *)
  | Bytes, Ast.Size b -> if b < 1.0 then Error "size must be at least one byte" else Ok b
  | Bytes, Ast.Number b ->
    if b < 1.0 then Error "byte count must be at least one byte" else Ok b
  | Bytes, _ -> wrong "a size (64mb) or byte count"
  | Toggle, Ast.Flag b -> Ok (if b then 1.0 else 0.0)
  | Toggle, _ -> wrong "on or off"

(* A site pattern is an exact host, "*", or "*.suffix". *)
let pattern_problem pattern =
  if pattern = "" then Some "site pattern is empty"
  else if pattern = "*" then None
  else if String.contains pattern '*' then
    if String.length pattern > 2 && String.sub pattern 0 2 = "*."
       && not (String.contains_from pattern 2 '*')
    then None
    else Some "wildcards must be \"*\" or \"*.suffix\""
  else None

(* --- units / ranges --------------------------------------------------- *)

let check_share_value v pos diags =
  match v with
  | Ast.Percent p ->
    if p <= 0.0 || p > 100.0 then
      diags := D.error "share-out-of-range" pos "share must be in (0%%, 100%%], got %g%%" p :: !diags
  | other ->
    diags :=
      D.error "unit-mismatch" pos "share must be a percent (e.g. 30%%), got %s"
        (Ast.kind_label other)
      :: !diags

let units_pass (plan : Ast.t) =
  let diags = ref [] in
  List.iter
    (function
      | Ast.Node block ->
        (match pattern_problem block.Ast.node_pattern with
         | Some why ->
           diags :=
             D.error "bad-pattern" block.Ast.node_pos "node pattern %S: %s"
               block.Ast.node_pattern why
             :: !diags
         | None -> ());
        List.iter
          (fun (sec : Ast.section) ->
            if not (List.mem sec.Ast.section sections) then
              diags :=
                D.error "unknown-section" sec.Ast.section_pos
                  "unknown section %S (expected %s)" sec.Ast.section
                  (String.concat ", " sections)
                :: !diags
            else
              List.iter
                (fun (s : Ast.setting) ->
                  match kind_of ~section:sec.Ast.section ~key:s.Ast.key with
                  | None ->
                    let known =
                      List.filter_map
                        (fun (sc, k, _, _) -> if sc = sec.Ast.section then Some k else None)
                        vocabulary
                    in
                    diags :=
                      D.error "unknown-key" s.Ast.key_pos "unknown %s setting %S (expected %s)"
                        sec.Ast.section s.Ast.key (String.concat ", " known)
                      :: !diags
                  | Some kind -> (
                    match normalize kind s.Ast.value with
                    | Ok _ -> ()
                    | Error why ->
                      diags :=
                        D.error "unit-mismatch" s.Ast.value_pos "%s.%s: %s" sec.Ast.section
                          s.Ast.key why
                        :: !diags))
                sec.Ast.settings)
          block.Ast.sections
      | Ast.Site rule ->
        (match pattern_problem rule.Ast.pattern with
         | Some why ->
           diags :=
             D.error "bad-pattern" rule.Ast.pattern_pos "site pattern %S: %s" rule.Ast.pattern
               why
             :: !diags
         | None -> ());
        List.iter
          (fun clause ->
            match clause with
            | Ast.Share (v, pos) -> check_share_value v pos diags
            | Ast.Fuel (v, pos) -> (
              match normalize Count v with
              | Ok _ -> ()
              | Error why -> diags := D.error "unit-mismatch" pos "fuel cap: %s" why :: !diags)
            | Ast.Heap (v, pos) -> (
              match normalize Bytes v with
              | Ok _ -> ()
              | Error why -> diags := D.error "unit-mismatch" pos "heap cap: %s" why :: !diags)
            | Ast.Quarantine_window { base; base_pos; max_; max_pos } ->
              (match normalize Duration_pos base with
               | Ok _ -> ()
               | Error why ->
                 diags := D.error "unit-mismatch" base_pos "quarantine base: %s" why :: !diags);
              (match normalize Duration_pos max_ with
               | Ok _ -> ()
               | Error why ->
                 diags := D.error "unit-mismatch" max_pos "quarantine max: %s" why :: !diags))
          rule.Ast.clauses)
    plan.Ast.items;
  !diags

(* --- ordering --------------------------------------------------------- *)

(* The normalized value of [section.key] in this block, when present
   and well-formed (malformed settings already carry a units error). *)
let setting_value (block : Ast.node_block) ~section ~key =
  List.find_map
    (fun (sec : Ast.section) ->
      if sec.Ast.section <> section then None
      else
        List.find_map
          (fun (s : Ast.setting) ->
            if s.Ast.key <> key then None
            else
              match kind_of ~section ~key with
              | None -> None
              | Some kind -> (
                match normalize kind s.Ast.value with
                | Ok f -> Some (f, s.Ast.value_pos)
                | Error _ -> None))
          sec.Ast.settings)
    block.Ast.sections

let ordering_pass (plan : Ast.t) =
  let diags = ref [] in
  let check block ~section ~low_key ~high_key ~low_default ~high_default ~code ~what =
    let low = setting_value block ~section ~key:low_key in
    let high = setting_value block ~section ~key:high_key in
    match (low, high) with
    | None, None -> ()
    | _ ->
      let lv, lpos =
        match low with Some (v, p) -> (v, Some p) | None -> (low_default, None)
      in
      let hv, hpos =
        match high with Some (v, p) -> (v, Some p) | None -> (high_default, None)
      in
      if lv >= hv && not (section = "breaker" && lv = hv) then
        (* breaker cooldown = max is legal (no backoff growth); waters
           and quarantine windows must be strictly ordered. *)
        let pos =
          match (lpos, hpos) with
          | Some p, _ -> p
          | None, Some p -> p
          | None, None -> block.Ast.node_pos
        in
        diags :=
          D.error code pos "%s: %s (%g) must be below %s (%g)%s" what low_key lv high_key hv
            (match (low, high) with
             | Some _, None -> Printf.sprintf " (the default %s)" high_key
             | None, Some _ -> Printf.sprintf " (the default %s)" low_key
             | _ -> "")
          :: !diags
  in
  let ok_or_default block ~section ~key ~default =
    match setting_value block ~section ~key with Some (v, p) -> (v, Some p) | None -> (default, None)
  in
  List.iter
    (fun (block : Ast.node_block) ->
      check block ~section:"diffusion" ~low_key:"low" ~high_key:"high"
        ~low_default:Config.default.Config.diffusion_low_water
        ~high_default:Config.default.Config.diffusion_high_water ~code:"inverted-waters"
        ~what:"diffusion waters";
      (let cooldown, cpos =
         ok_or_default block ~section:"breaker" ~key:"cooldown"
           ~default:Config.default.Config.breaker_cooldown
       in
       let max_cd, mpos =
         ok_or_default block ~section:"breaker" ~key:"max"
           ~default:Config.default.Config.breaker_max_cooldown
       in
       if (cpos <> None || mpos <> None) && cooldown > max_cd then
         let pos =
           match (cpos, mpos) with Some p, _ -> p | _, Some p -> p | _ -> block.Ast.node_pos
         in
         diags :=
           D.error "breaker-cooldown-exceeds-max" pos
             "breaker cooldown (%gs) exceeds the backoff cap (%gs)" cooldown max_cd
           :: !diags);
      let base, bpos =
        ok_or_default block ~section:"quarantine" ~key:"base"
          ~default:Config.default.Config.termination_penalty
      in
      let max_w, mpos =
        ok_or_default block ~section:"quarantine" ~key:"max"
          ~default:Config.default.Config.quarantine_max
      in
      if (bpos <> None || mpos <> None) && base > max_w then
        let pos =
          match (bpos, mpos) with Some p, _ -> p | _, Some p -> p | _ -> block.Ast.node_pos
        in
        diags :=
          D.error "quarantine-base-exceeds-max" pos
            "quarantine base window (%gs) exceeds the cap (%gs)" base max_w
          :: !diags)
    (Ast.nodes plan);
  (* Per-site quarantine windows carry both bounds in one clause. *)
  List.iter
    (fun (rule : Ast.site_rule) ->
      List.iter
        (function
          | Ast.Quarantine_window { base; base_pos; max_; max_pos = _ } -> (
            match (normalize Duration_pos base, normalize Duration_pos max_) with
            | Ok b, Ok m when b > m ->
              diags :=
                D.error "quarantine-base-exceeds-max" base_pos
                  "site %S: quarantine base window (%gs) exceeds its max (%gs)" rule.Ast.pattern
                  b m
                :: !diags
            | _ -> ())
          | _ -> ())
        rule.Ast.clauses)
    (Ast.sites plan);
  !diags

(* --- shadowing / dominance ------------------------------------------- *)

(* Which earlier rule, if any, makes this one unreachable? *)
let shadowed_by earlier pattern =
  List.find_opt (fun (p, _) -> Ast.subsumes ~pattern:p ~other:pattern) earlier

let shadow_pass (plan : Ast.t) =
  let diags = ref [] in
  let walk items ~what =
    ignore
      (List.fold_left
         (fun earlier (pattern, pos) ->
           (match shadowed_by earlier pattern with
            | Some (by, by_pos) ->
              diags :=
                D.warning "shadowed-rule" pos
                  "%s %S can never match: every site it covers is claimed by %S (line %d)"
                  what pattern by by_pos.Nk_script.Ast.line
                :: !diags
            | None -> ());
           (pattern, pos) :: earlier)
         [] items)
  in
  walk
    (List.map (fun (r : Ast.site_rule) -> (r.Ast.pattern, r.Ast.pattern_pos)) (Ast.sites plan))
    ~what:"site rule";
  walk
    (List.map (fun (b : Ast.node_block) -> (b.Ast.node_pattern, b.Ast.node_pos)) (Ast.nodes plan))
    ~what:"node block";
  !diags

(* The site rules that can actually fire (not shadowed by an earlier
   pattern) — what feasibility sums and what the compiler lowers. *)
let reachable_sites (plan : Ast.t) =
  List.rev
    (fst
       (List.fold_left
          (fun (kept, earlier) (r : Ast.site_rule) ->
            let entry = (r.Ast.pattern, r.Ast.pattern_pos) in
            if shadowed_by earlier r.Ast.pattern <> None then (kept, entry :: earlier)
            else (r :: kept, entry :: earlier))
          ([], []) (Ast.sites plan)))

(* --- feasibility ------------------------------------------------------ *)

let declared_share (rule : Ast.site_rule) =
  List.find_map
    (function
      | Ast.Share (Ast.Percent p, pos) when p > 0.0 && p <= 100.0 -> Some (p, pos)
      | _ -> None)
    rule.Ast.clauses

(* Admission capacity a block would run with: its own setting, else the
   compiled default. *)
let block_capacity (block : Ast.node_block) =
  match setting_value block ~section:"capacity" ~key:"admission" with
  | Some (f, _) -> int_of_float f
  | None -> Config.default.Config.admission_capacity

let feasibility_pass (plan : Ast.t) =
  let diags = ref [] in
  let shares =
    List.filter_map
      (fun (r : Ast.site_rule) ->
        match declared_share r with
        | None -> None
        | Some (percent, pos) ->
          if r.Ast.pattern = "*" || String.contains r.Ast.pattern '*' then begin
            diags :=
              D.error "share-on-wildcard" pos
                "site %S: a share on a wildcard pattern reserves capacity for unboundedly \
                 many tenants; name each tenant site explicitly"
                r.Ast.pattern
              :: !diags;
            None
          end
          else Some (r.Ast.pattern, percent, pos))
      (reachable_sites plan)
  in
  let total = List.fold_left (fun acc (_, p, _) -> acc +. p) 0.0 shares in
  (if total > 100.0 +. 1e-9 then
     match List.rev shares with
     | (pattern, _, pos) :: _ ->
       diags :=
         D.error "shares-infeasible" pos
           "declared shares sum to %g%% of admission capacity (over 100%%); site %S is the \
            rule that crosses the line"
           total pattern
         :: !diags
     | [] -> ());
  (* Every declared share must also land on at least one whole queue
     slot on every node block it applies to (all of them: site rules
     are not node-scoped). *)
  let blocks =
    match Ast.nodes plan with
    | [] ->
      [ ("(default)", Config.default.Config.admission_capacity) ]
      (* no node block: shares apply to default-configured nodes *)
    | blocks -> List.map (fun b -> (b.Ast.node_pattern, block_capacity b)) blocks
  in
  List.iter
    (fun (pattern, percent, pos) ->
      List.iter
        (fun (node_pattern, capacity) ->
          if percent /. 100.0 *. float_of_int capacity < 0.5 then
            diags :=
              D.error "share-rounds-to-zero" pos
                "site %S: a %g%% share of node %S's admission capacity (%d slots) rounds to \
                 zero slots"
                pattern percent node_pattern capacity
              :: !diags)
        blocks)
    shares;
  !diags

(* --- the pass pipeline ------------------------------------------------ *)

let check (plan : Ast.t) =
  List.sort D.compare
    (units_pass plan @ ordering_pass plan @ feasibility_pass plan @ shadow_pass plan)
