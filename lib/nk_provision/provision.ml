(* The front door: parse -> verify -> lower, reporting everything
   through [Nk_analysis.Diagnostic] so the CLI prints plan problems
   exactly like script lints — [line:col: severity[code]: message] —
   with the same exit-code convention (0 clean, 1 warnings, 2 errors).

   [compile] additionally runs [Nk_node.Config.validate] — the checker
   nodes themselves apply at construction — over every lowered config.
   A clean compile therefore guarantees [Nk_node.Node.create] accepts
   the result: verification and rejection share one implementation. *)

module D = Nk_analysis.Diagnostic
module Config = Nk_node.Config

type report = {
  plan : Ast.t option; (* None when the plan did not parse *)
  diagnostics : D.t list;
  lowered : Lower.lowered list; (* empty unless compiled error-free *)
}

let errors report = D.count D.Error report.diagnostics

let warnings report = D.count D.Warning report.diagnostics

let parse source =
  match Parser.parse source with
  | plan -> Ok plan
  | exception Lexer.Lex_error (msg, pos) -> Error (D.error "lex-error" pos "%s" msg)
  | exception Parser.Parse_error (msg, pos) -> Error (D.error "parse-error" pos "%s" msg)

let check source =
  match parse source with
  | Error d -> { plan = None; diagnostics = [ d ]; lowered = [] }
  | Ok plan -> { plan = Some plan; diagnostics = Verify.check plan; lowered = [] }

let compile ?base source =
  let report = check source in
  match report.plan with
  | None -> report
  | Some plan ->
    if D.count D.Error report.diagnostics > 0 then report
    else
      let lowered = Lower.lower ?base plan in
      (* Belt and braces: the node-side checker over each lowered
         config. Findings here are verifier bugs by construction, but
         surfacing them as diagnostics beats a late [Invalid_argument]
         from [Node.create]. *)
      let config_diags =
        List.concat_map
          (fun (l : Lower.lowered) ->
            List.map
              (fun problem ->
                D.error "config-invalid" l.Lower.node_pos "node %S: lowered config rejected: %s"
                  l.Lower.node_pattern problem)
              (Config.validate l.Lower.config))
          lowered
      in
      if config_diags = [] then { report with lowered }
      else { report with diagnostics = List.sort D.compare (report.diagnostics @ config_diags) }

let config_for report ~node =
  match report.lowered with [] -> None | lowered -> Lower.config_for lowered ~node

let hash report = Option.map (fun (p : Ast.t) -> p.Ast.hash) report.plan

let explain report =
  match report.plan with
  | None -> "plan did not parse\n"
  | Some plan -> Lower.explain plan report.lowered
