(* Tokenizer for the capacity-plan language. Line comments start with
   '#'; every token carries the 1-based line/column it started at, so
   downstream diagnostics point at source, not at IR. *)

type token =
  | Ident of string (* keywords and setting keys: [a-zA-Z][a-zA-Z0-9_-]* *)
  | Str of string (* "video.example" *)
  | Value of Ast.value (* 64 / 30% / 500ms / 4mb / on / off *)
  | Lbrace
  | Rbrace
  | Semi
  | Eq
  | Ge (* >= *)
  | Le (* <= *)
  | Eof

exception Lex_error of string * Ast.pos

let token_label = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Str s -> Printf.sprintf "string %S" s
  | Value v -> Printf.sprintf "%s %s" (Ast.kind_label v) (Ast.value_to_string v)
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Semi -> "';'"
  | Eq -> "'='"
  | Ge -> "'>='"
  | Le -> "'<='"
  | Eof -> "end of plan"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '_' || c = '-'

let is_digit c = c >= '0' && c <= '9'

(* The unit vocabulary. Durations and sizes normalize here; percents
   stay as written so error messages can echo the source. *)
let value_of_suffix ~pos magnitude = function
  | "" -> Ast.Number magnitude
  | "%" -> Ast.Percent magnitude
  | "ms" -> Ast.Duration (magnitude /. 1000.0)
  | "s" -> Ast.Duration magnitude
  | "m" -> Ast.Duration (magnitude *. 60.0)
  | "h" -> Ast.Duration (magnitude *. 3600.0)
  | "b" -> Ast.Size magnitude
  | "kb" -> Ast.Size (magnitude *. 1024.0)
  | "mb" -> Ast.Size (magnitude *. 1024.0 *. 1024.0)
  | "gb" -> Ast.Size (magnitude *. 1024.0 *. 1024.0 *. 1024.0)
  | unit ->
    raise
      (Lex_error
         ( Printf.sprintf "unknown unit %S (expected %%, ms, s, m, h, b, kb, mb or gb)" unit,
           pos ))

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 and i = ref 0 in
  let tokens = ref [] in
  let pos () = { Nk_script.Ast.line = !line; col = !col } in
  let advance () =
    (if src.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let emit tok p = tokens := (tok, p) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    let p = pos () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    else if c = '{' then (emit Lbrace p; advance ())
    else if c = '}' then (emit Rbrace p; advance ())
    else if c = ';' then (emit Semi p; advance ())
    else if c = '=' then (emit Eq p; advance ())
    else if c = '>' || c = '<' then begin
      advance ();
      if !i < n && src.[!i] = '=' then begin
        advance ();
        emit (if c = '>' then Ge else Le) p
      end
      else raise (Lex_error (Printf.sprintf "expected '%c='" c, p))
    end
    else if c = '"' then begin
      advance ();
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '"' then begin
          advance ();
          closed := true
        end
        else if c = '\n' then raise (Lex_error ("unterminated string", p))
        else begin
          Buffer.add_char buf c;
          advance ()
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string", p));
      emit (Str (Buffer.contents buf)) p
    end
    else if is_digit c then begin
      let buf = Buffer.create 8 in
      while !i < n && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = '_') do
        if src.[!i] <> '_' then Buffer.add_char buf src.[!i];
        advance ()
      done;
      let magnitude =
        match float_of_string_opt (Buffer.contents buf) with
        | Some f -> f
        | None -> raise (Lex_error (Printf.sprintf "bad number %S" (Buffer.contents buf), p))
      in
      let unit = Buffer.create 2 in
      if !i < n && src.[!i] = '%' then begin
        Buffer.add_char unit '%';
        advance ()
      end
      else
        while !i < n && is_ident_start src.[!i] do
          Buffer.add_char unit (Char.lowercase_ascii src.[!i]);
          advance ()
        done;
      emit (Value (value_of_suffix ~pos:p magnitude (Buffer.contents unit))) p
    end
    else if is_ident_start c then begin
      let buf = Buffer.create 12 in
      while !i < n && is_ident_char src.[!i] do
        Buffer.add_char buf src.[!i];
        advance ()
      done;
      match Buffer.contents buf with
      | "on" | "true" -> emit (Value (Ast.Flag true)) p
      | "off" | "false" -> emit (Value (Ast.Flag false)) p
      | word -> emit (Ident word) p
    end
    else raise (Lex_error (Printf.sprintf "unexpected character %C" c, p))
  done;
  emit Eof (pos ());
  List.rev !tokens
