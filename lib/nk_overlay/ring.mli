(** Membership and Chord-style greedy routing on the identifier ring.

    The architecture treats the overlay "largely as a black box" (§3.4);
    this module provides the black box's contract: nodes join and leave
    with low overhead, every key has a live successor, and lookups
    take O(log n) hops via finger tables computed against the current
    membership. *)

type t

val create : unit -> t

val join : t -> Node_id.t -> unit

val leave : t -> Node_id.t -> unit

val mem : t -> Node_id.t -> bool

val size : t -> int

val nodes : t -> Node_id.t list
(** Sorted by ring position. *)

val successor : t -> Node_id.t -> Node_id.t option
(** First node at or clockwise after the key; [None] on an empty
    ring. O(log n). *)

val successors : t -> Node_id.t -> k:int -> Node_id.t list
(** The key's owner plus its next distinct clockwise successors, at
    most [k] nodes — a key's replica set. O(k log n), so callers no
    longer materialize the whole membership per lookup. *)

val lookup_path : t -> from:Node_id.t -> key:Node_id.t -> Node_id.t list
(** The nodes visited routing greedily by fingers from [from] to the
    key's successor, successor included, [from] excluded. Empty when
    the ring is empty or [from] already owns the key. *)
