type entry = { value : string; expiry : float }

type node_store = (string, entry list) Hashtbl.t

(* Hotspot machinery (Coral-style sloppy replication, §3.4): a
   per-key exponentially-decayed request counter; keys whose decayed
   rate crosses [threshold] get their announcements copied onto nodes
   drawn from the tail of the triggering lookup's path (the
   convergence funnel near the owner, where greedy routes from many
   requesters overlap), and later lookups stop at the first live
   holder on their own path instead of routing all the way to the
   owner. Placements carry a TTL so the ring reconverges to the
   no-replica equilibrium once the crowd moves on. *)
type hotspot_config = {
  threshold : float; (* req/s of decayed rate that triggers replication *)
  hot_replicas : int; (* sloppy copies per hot key *)
  hot_ttl : float; (* placement lifetime, seconds *)
  halflife : float; (* decay halflife of the rate estimator, seconds *)
}

type rate = { mutable score : float; mutable last : float }

type placement = { holders : Node_id.t list; placed_expiry : float }

type t = {
  ring : Ring.t;
  stores : (int, node_store) Hashtbl.t; (* keyed by ring id *)
  ids : (string, Node_id.t) Hashtbl.t; (* node name -> id *)
  names : (int, string) Hashtbl.t; (* ring id -> node name *)
  values_per_key : int;
  replicas : int;
  mutable live : string -> bool;
  metrics : Nk_telemetry.Metrics.t;
  mutable hotspot : hotspot_config option; (* None = detection off *)
  rates : (string, rate) Hashtbl.t; (* key -> decayed request rate *)
  placements : (string, placement) Hashtbl.t; (* key -> sloppy copies *)
  rng : Nk_util.Prng.t; (* replica placement; seeded for determinism *)
}

let create ?(values_per_key = 16) ?(replicas = 2) ?(seed = 0x5107) () =
  { ring = Ring.create (); stores = Hashtbl.create 16; ids = Hashtbl.create 16;
    names = Hashtbl.create 16; values_per_key; replicas; live = (fun _ -> true);
    metrics = Nk_telemetry.Metrics.create (); hotspot = None;
    rates = Hashtbl.create 16; placements = Hashtbl.create 16;
    rng = Nk_util.Prng.create seed }

let ring t = t.ring

let metrics t = t.metrics

let set_liveness t f = t.live <- f

let set_hotspots t ?(halflife = 10.) ~threshold ~replicas ~ttl () =
  if threshold <= 0. then invalid_arg "Dht.set_hotspots: threshold must be > 0";
  if replicas < 1 then invalid_arg "Dht.set_hotspots: replicas must be >= 1";
  if ttl <= 0. then invalid_arg "Dht.set_hotspots: ttl must be > 0";
  if halflife <= 0. then invalid_arg "Dht.set_hotspots: halflife must be > 0";
  t.hotspot <- Some { threshold; hot_replicas = replicas; hot_ttl = ttl; halflife }

let join t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
    let id = Node_id.of_string name in
    Hashtbl.replace t.ids name id;
    Hashtbl.replace t.names (Node_id.to_int id) name;
    Hashtbl.replace t.stores (Node_id.to_int id) (Hashtbl.create 16);
    Ring.join t.ring id;
    id

let leave t name =
  match Hashtbl.find_opt t.ids name with
  | None -> ()
  | Some id ->
    Hashtbl.remove t.ids name;
    Hashtbl.remove t.names (Node_id.to_int id);
    Hashtbl.remove t.stores (Node_id.to_int id);
    Ring.leave t.ring id

let node_id t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Dht: node %s has not joined" name)

type lookup = { values : string list; hops : int; fallbacks : int; owner : Node_id.t option }

let route t ~from ~key =
  let from_id = node_id t from in
  let key_id = Node_id.of_string key in
  let path = Ring.lookup_path t.ring ~from:from_id ~key:key_id in
  let owner =
    match List.rev path with
    | last :: _ -> Some last
    | [] -> if Ring.mem t.ring from_id then Some from_id else None
  in
  (owner, List.length path)

(* The owner plus its next distinct ring successors — the replica set
   of a key, newest-responsibility first. At most [t.replicas] nodes.
   O(k log n) via the ring's ordered membership (the old version
   materialized the whole sorted membership per put/get, a linear scan
   that dominated at 1000 nodes). *)
let replica_set t owner = Ring.successors t.ring owner ~k:t.replicas

let node_live t id =
  match Hashtbl.find_opt t.names (Node_id.to_int id) with
  | None -> false
  | Some name -> t.live name

let store_entries t node key entries =
  match Hashtbl.find_opt t.stores (Node_id.to_int node) with
  | None -> ()
  | Some store -> Hashtbl.replace store key entries

let read_entries t node key =
  match Hashtbl.find_opt t.stores (Node_id.to_int node) with
  | None -> []
  | Some store -> ( match Hashtbl.find_opt store key with Some es -> es | None -> [])

(* {1 Hotspot detection and sloppy replication} *)

let decayed_score r ~now ~halflife =
  r.score *. exp (log 0.5 *. ((now -. r.last) /. halflife))

(* Steady state of the decayed counter under arrival rate λ is
   λ·halflife/ln 2, so the rate estimate inverts that. *)
let score_to_rate score ~halflife = score *. log 2. /. halflife

let note_request t cfg ~now key =
  let r =
    match Hashtbl.find_opt t.rates key with
    | Some r -> r
    | None ->
      let r = { score = 0.; last = now } in
      Hashtbl.replace t.rates key r;
      r
  in
  r.score <- decayed_score r ~now ~halflife:cfg.halflife +. 1.;
  r.last <- now;
  score_to_rate r.score ~halflife:cfg.halflife

let drop_placement t key p =
  List.iter
    (fun holder ->
      match Hashtbl.find_opt t.stores (Node_id.to_int holder) with
      | None -> ()
      | Some store -> Hashtbl.remove store key)
    p.holders;
  Hashtbl.remove t.placements key

let active_placement t ~now key =
  match Hashtbl.find_opt t.placements key with
  | None -> None
  | Some p ->
    if p.placed_expiry > now then Some p
    else begin
      drop_placement t key p;
      None
    end

(* Expire every stale placement and prune decayed rate entries; called
   opportunistically from [get] so the tables stay bounded under
   crowds that move between keys. *)
let sweep t ~now =
  match t.hotspot with
  | None -> ()
  | Some cfg ->
    let stale =
      Hashtbl.fold
        (fun key p acc -> if p.placed_expiry <= now then (key, p) :: acc else acc)
        t.placements []
    in
    List.iter (fun (key, p) -> drop_placement t key p) stale;
    let cold =
      Hashtbl.fold
        (fun key r acc ->
          if score_to_rate (decayed_score r ~now ~halflife:cfg.halflife)
               ~halflife:cfg.halflife
             < cfg.threshold /. 100.
          then key :: acc
          else acc)
        t.rates []
    in
    List.iter (Hashtbl.remove t.rates) cold;
    Nk_telemetry.Metrics.set_gauge t.metrics "dht.hotspots"
      (float_of_int (Hashtbl.length t.placements))

(* Place sloppy copies of [key]'s announcements on up to
   [cfg.hot_replicas] random live nodes drawn from the tail of the
   triggering lookup's [path] (owner excluded) — the funnel where
   greedy routes converge, so later lookups from elsewhere still pass
   a holder. *)
let place_replicas t cfg ~now ~key ~owner ~path =
  let entries = read_entries t owner key |> List.filter (fun e -> e.expiry > now) in
  if entries <> [] then begin
    let candidates =
      List.filter
        (fun n -> (not (Node_id.equal n owner)) && node_live t n)
        path
    in
    (* Favor the owner-adjacent tail: keep the last few path nodes,
       then pick replicas at random among them. *)
    let tail =
      let rev = List.rev candidates in
      List.filteri (fun i _ -> i < cfg.hot_replicas + 2) rev
    in
    let holders =
      let arr = Array.of_list tail in
      Nk_util.Prng.shuffle t.rng arr;
      Array.to_list arr |> List.filteri (fun i _ -> i < cfg.hot_replicas)
    in
    if holders <> [] then begin
      List.iter (fun holder -> store_entries t holder key entries) holders;
      Hashtbl.replace t.placements key
        { holders; placed_expiry = now +. cfg.hot_ttl };
      Nk_telemetry.Metrics.incr t.metrics "dht.hotspot_replications";
      Nk_telemetry.Metrics.set_gauge t.metrics "dht.hotspots"
        (float_of_int (Hashtbl.length t.placements))
    end
  end

let hotspots t ~now =
  match t.hotspot with
  | None -> []
  | Some cfg ->
    Hashtbl.fold
      (fun key r acc ->
        let rate =
          score_to_rate (decayed_score r ~now ~halflife:cfg.halflife)
            ~halflife:cfg.halflife
        in
        if rate >= cfg.threshold then (key, rate) :: acc else acc)
      t.rates []
    |> List.sort (fun (_, a) (_, b) -> compare b a)

let sloppy_replicas t = Hashtbl.length t.placements

let put t ~now ~from ~key ~value ~ttl =
  let owner, hops = route t ~from ~key in
  (match owner with
   | None -> ()
   | Some owner ->
     let targets =
       let base = replica_set t owner in
       (* Write through to live sloppy holders so replicated reads stay
          bit-identical to owner reads while a placement is active. *)
       match active_placement t ~now key with
       | None -> base
       | Some p -> base @ List.filter (fun h -> not (List.exists (Node_id.equal h) base)) p.holders
     in
     List.iter
       (fun node ->
         match Hashtbl.find_opt t.stores (Node_id.to_int node) with
         | None -> ()
         | Some store ->
           let live =
             (match Hashtbl.find_opt store key with Some es -> es | None -> [])
             |> List.filter (fun e -> e.expiry > now && e.value <> value)
           in
           let entries = { value; expiry = now +. ttl } :: live in
           let entries =
             if List.length entries > t.values_per_key then
               List.filteri (fun i _ -> i < t.values_per_key) entries
             else entries
           in
           Hashtbl.replace store key entries)
       targets);
  Nk_telemetry.Metrics.incr t.metrics "dht.puts";
  Nk_telemetry.Metrics.observe t.metrics "dht.hops" (float_of_int hops);
  hops

let live_values t ~now node key =
  match Hashtbl.find_opt t.stores (Node_id.to_int node) with
  | None -> None
  | Some store -> (
    match Hashtbl.find_opt store key with
    | None -> None
    | Some entries ->
      let live = List.filter (fun e -> e.expiry > now) entries in
      Hashtbl.replace store key live;
      Some (List.map (fun e -> e.value) live))

let get t ~now ~from ~key =
  let from_id = node_id t from in
  let key_id = Node_id.of_string key in
  let path = Ring.lookup_path t.ring ~from:from_id ~key:key_id in
  let owner =
    match List.rev path with
    | last :: _ -> Some last
    | [] -> if Ring.mem t.ring from_id then Some from_id else None
  in
  (* Hotspot bookkeeping: bump the key's decayed rate; trigger a sloppy
     placement when it crosses the threshold. *)
  (match t.hotspot, owner with
   | Some cfg, Some owner_id ->
     let rate = note_request t cfg ~now key in
     if rate >= cfg.threshold && active_placement t ~now key = None then
       place_replicas t cfg ~now ~key ~owner:owner_id ~path
   | _ -> ());
  (* A lookup prefers the first live sloppy holder on its own path
     (the requester included, at zero hops) over routing to the
     owner. *)
  let sloppy_hit =
    match t.hotspot with
    | None -> None
    | Some _ -> (
      match active_placement t ~now key with
      | None -> None
      | Some p ->
        let is_holder n = List.exists (Node_id.equal n) p.holders in
        let rec scan i = function
          | [] -> None
          | n :: rest ->
            if is_holder n && node_live t n then Some (n, i) else scan (i + 1) rest
        in
        if is_holder from_id && node_live t from_id then Some (from_id, 0)
        else scan 1 path)
  in
  let values, hops, fallbacks =
    match sloppy_hit with
    | Some (holder, hop_count) ->
      let vs = match live_values t ~now holder key with Some vs -> vs | None -> [] in
      Nk_telemetry.Metrics.incr t.metrics "dht.sloppy_hits";
      (vs, hop_count, 0)
    | None ->
      (* Read from the first *live* replica: owner, then its
         successors. Each skipped (crashed) replica costs one extra
         routing hop and is counted as a fallback. *)
      let hops = List.length path in
      (match owner with
       | None -> ([], hops, 0)
       | Some owner ->
         let rec first_live skipped = function
           | [] -> ([], hops + skipped, skipped)
           | node :: rest ->
             if not (node_live t node) then first_live (skipped + 1) rest
             else
               let vs =
                 match live_values t ~now node key with Some vs -> vs | None -> []
               in
               (vs, hops + skipped, skipped)
         in
         first_live 0 (replica_set t owner))
  in
  Nk_telemetry.Metrics.incr t.metrics "dht.gets";
  if fallbacks > 0 then
    Nk_telemetry.Metrics.incr t.metrics "dht.fallbacks" ~by:fallbacks;
  if values <> [] then Nk_telemetry.Metrics.incr t.metrics "dht.get-hits";
  Nk_telemetry.Metrics.observe t.metrics "dht.hops" (float_of_int hops);
  { values; hops; fallbacks; owner }

(* The live members of [key]'s replica set by node name — the owner
   and its next distinct ring successors, via {!Ring.successors}. The
   hedging layer asks for these when it needs "the next live replica"
   beyond a lookup's announced holders. *)
let replica_names t ~key =
  Ring.successors t.ring (Node_id.of_string key) ~k:t.replicas
  |> List.filter_map (fun id ->
       match Hashtbl.find_opt t.names (Node_id.to_int id) with
       | Some name when t.live name -> Some name
       | _ -> None)

let stored_keys t name =
  match Hashtbl.find_opt t.ids name with
  | None -> 0
  | Some id -> (
    match Hashtbl.find_opt t.stores (Node_id.to_int id) with
    | None -> 0
    | Some store -> Hashtbl.length store)
