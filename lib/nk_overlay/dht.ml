type entry = { value : string; expiry : float }

type node_store = (string, entry list) Hashtbl.t

type t = {
  ring : Ring.t;
  stores : (int, node_store) Hashtbl.t; (* keyed by ring id *)
  ids : (string, Node_id.t) Hashtbl.t; (* node name -> id *)
  values_per_key : int;
  metrics : Nk_telemetry.Metrics.t;
}

let create ?(values_per_key = 16) () =
  { ring = Ring.create (); stores = Hashtbl.create 16; ids = Hashtbl.create 16; values_per_key;
    metrics = Nk_telemetry.Metrics.create () }

let ring t = t.ring

let metrics t = t.metrics

let join t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
    let id = Node_id.of_string name in
    Hashtbl.replace t.ids name id;
    Hashtbl.replace t.stores (Node_id.to_int id) (Hashtbl.create 16);
    Ring.join t.ring id;
    id

let leave t name =
  match Hashtbl.find_opt t.ids name with
  | None -> ()
  | Some id ->
    Hashtbl.remove t.ids name;
    Hashtbl.remove t.stores (Node_id.to_int id);
    Ring.leave t.ring id

let node_id t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Dht: node %s has not joined" name)

type lookup = { values : string list; hops : int; owner : Node_id.t option }

let route t ~from ~key =
  let from_id = node_id t from in
  let key_id = Node_id.of_string key in
  let path = Ring.lookup_path t.ring ~from:from_id ~key:key_id in
  let owner =
    match List.rev path with
    | last :: _ -> Some last
    | [] -> if Ring.mem t.ring from_id then Some from_id else None
  in
  (owner, List.length path)

let put t ~now ~from ~key ~value ~ttl =
  let owner, hops = route t ~from ~key in
  (match owner with
   | None -> ()
   | Some owner -> (
     match Hashtbl.find_opt t.stores (Node_id.to_int owner) with
     | None -> ()
     | Some store ->
       let live =
         (match Hashtbl.find_opt store key with Some es -> es | None -> [])
         |> List.filter (fun e -> e.expiry > now && e.value <> value)
       in
       let entries = { value; expiry = now +. ttl } :: live in
       let entries =
         if List.length entries > t.values_per_key then
           List.filteri (fun i _ -> i < t.values_per_key) entries
         else entries
       in
       Hashtbl.replace store key entries));
  Nk_telemetry.Metrics.incr t.metrics "dht.puts";
  Nk_telemetry.Metrics.observe t.metrics "dht.hops" (float_of_int hops);
  hops

let get t ~now ~from ~key =
  let owner, hops = route t ~from ~key in
  let values =
    match owner with
    | None -> []
    | Some owner -> (
      match Hashtbl.find_opt t.stores (Node_id.to_int owner) with
      | None -> []
      | Some store -> (
        match Hashtbl.find_opt store key with
        | None -> []
        | Some entries ->
          let live = List.filter (fun e -> e.expiry > now) entries in
          Hashtbl.replace store key live;
          List.map (fun e -> e.value) live))
  in
  Nk_telemetry.Metrics.incr t.metrics "dht.gets";
  if values <> [] then Nk_telemetry.Metrics.incr t.metrics "dht.get-hits";
  Nk_telemetry.Metrics.observe t.metrics "dht.hops" (float_of_int hops);
  { values; hops; owner }

let stored_keys t name =
  match Hashtbl.find_opt t.ids name with
  | None -> 0
  | Some id -> (
    match Hashtbl.find_opt t.stores (Node_id.to_int id) with
    | None -> 0
    | Some store -> Hashtbl.length store)
