type entry = { value : string; expiry : float }

type node_store = (string, entry list) Hashtbl.t

type t = {
  ring : Ring.t;
  stores : (int, node_store) Hashtbl.t; (* keyed by ring id *)
  ids : (string, Node_id.t) Hashtbl.t; (* node name -> id *)
  names : (int, string) Hashtbl.t; (* ring id -> node name *)
  values_per_key : int;
  replicas : int;
  mutable live : string -> bool;
  metrics : Nk_telemetry.Metrics.t;
}

let create ?(values_per_key = 16) ?(replicas = 2) () =
  { ring = Ring.create (); stores = Hashtbl.create 16; ids = Hashtbl.create 16;
    names = Hashtbl.create 16; values_per_key; replicas; live = (fun _ -> true);
    metrics = Nk_telemetry.Metrics.create () }

let ring t = t.ring

let metrics t = t.metrics

let set_liveness t f = t.live <- f

let join t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None ->
    let id = Node_id.of_string name in
    Hashtbl.replace t.ids name id;
    Hashtbl.replace t.names (Node_id.to_int id) name;
    Hashtbl.replace t.stores (Node_id.to_int id) (Hashtbl.create 16);
    Ring.join t.ring id;
    id

let leave t name =
  match Hashtbl.find_opt t.ids name with
  | None -> ()
  | Some id ->
    Hashtbl.remove t.ids name;
    Hashtbl.remove t.names (Node_id.to_int id);
    Hashtbl.remove t.stores (Node_id.to_int id);
    Ring.leave t.ring id

let node_id t name =
  match Hashtbl.find_opt t.ids name with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Dht: node %s has not joined" name)

type lookup = { values : string list; hops : int; fallbacks : int; owner : Node_id.t option }

let route t ~from ~key =
  let from_id = node_id t from in
  let key_id = Node_id.of_string key in
  let path = Ring.lookup_path t.ring ~from:from_id ~key:key_id in
  let owner =
    match List.rev path with
    | last :: _ -> Some last
    | [] -> if Ring.mem t.ring from_id then Some from_id else None
  in
  (owner, List.length path)

(* The owner plus its next distinct ring successors — the replica set of
   a key, newest-responsibility first. At most [t.replicas] nodes. *)
let replica_set t owner =
  let sorted = Ring.nodes t.ring in
  let n = List.length sorted in
  if n = 0 then []
  else begin
    let arr = Array.of_list sorted in
    let start = ref 0 in
    Array.iteri (fun i id -> if Node_id.equal id owner then start := i) arr;
    let rec collect acc i remaining =
      if remaining = 0 then List.rev acc
      else
        let id = arr.((!start + i) mod n) in
        if List.exists (Node_id.equal id) acc then List.rev acc
        else collect (id :: acc) (i + 1) (remaining - 1)
    in
    collect [] 0 (min t.replicas n)
  end

let put t ~now ~from ~key ~value ~ttl =
  let owner, hops = route t ~from ~key in
  (match owner with
   | None -> ()
   | Some owner ->
     List.iter
       (fun node ->
         match Hashtbl.find_opt t.stores (Node_id.to_int node) with
         | None -> ()
         | Some store ->
           let live =
             (match Hashtbl.find_opt store key with Some es -> es | None -> [])
             |> List.filter (fun e -> e.expiry > now && e.value <> value)
           in
           let entries = { value; expiry = now +. ttl } :: live in
           let entries =
             if List.length entries > t.values_per_key then
               List.filteri (fun i _ -> i < t.values_per_key) entries
             else entries
           in
           Hashtbl.replace store key entries)
       (replica_set t owner));
  Nk_telemetry.Metrics.incr t.metrics "dht.puts";
  Nk_telemetry.Metrics.observe t.metrics "dht.hops" (float_of_int hops);
  hops

let node_live t id =
  match Hashtbl.find_opt t.names (Node_id.to_int id) with
  | None -> false
  | Some name -> t.live name

let get t ~now ~from ~key =
  let owner, hops = route t ~from ~key in
  (* Read from the first *live* replica: owner, then its successors.
     Each skipped (crashed) replica costs one extra routing hop and is
     counted as a fallback. *)
  let values, fallbacks, extra_hops =
    match owner with
    | None -> ([], 0, 0)
    | Some owner ->
      let rec first_live skipped = function
        | [] -> ([], skipped, skipped)
        | node :: rest ->
          if not (node_live t node) then first_live (skipped + 1) rest
          else
            let vs =
              match Hashtbl.find_opt t.stores (Node_id.to_int node) with
              | None -> []
              | Some store -> (
                match Hashtbl.find_opt store key with
                | None -> []
                | Some entries ->
                  let live = List.filter (fun e -> e.expiry > now) entries in
                  Hashtbl.replace store key live;
                  List.map (fun e -> e.value) live)
            in
            (vs, skipped, skipped)
      in
      first_live 0 (replica_set t owner)
  in
  let hops = hops + extra_hops in
  Nk_telemetry.Metrics.incr t.metrics "dht.gets";
  if fallbacks > 0 then
    Nk_telemetry.Metrics.incr t.metrics "dht.fallbacks" ~by:fallbacks;
  if values <> [] then Nk_telemetry.Metrics.incr t.metrics "dht.get-hits";
  Nk_telemetry.Metrics.observe t.metrics "dht.hops" (float_of_int hops);
  { values; hops; fallbacks; owner }

let stored_keys t name =
  match Hashtbl.find_opt t.ids name with
  | None -> 0
  | Some id -> (
    match Hashtbl.find_opt t.stores (Node_id.to_int id) with
    | None -> 0
    | Some store -> Hashtbl.length store)
