(** DNS-style redirection of clients to nearby edge nodes (§3, §3.4).

    Coral's optional DNS redirection is modeled by choosing, per client,
    the proxy with the lowest estimated transfer time; [pick ~spread]
    randomizes among the closest few for the paper's "randomly chosen,
    but close-by proxies" load balancing (§5.2).

    The redirector is additionally {e health-aware}: nodes publish load
    reports (queueing delay, shed rate, liveness incarnation) and [pick]
    skips crashed proxies entirely while weighting among the close-by
    survivors by reported headroom, so a flash crowd drains toward the
    nodes with capacity to absorb it. *)

type t

type health = {
  queue_delay : float;  (** seconds of queued work the node reported *)
  shed_rate : float;  (** fraction of recent arrivals the node shed *)
  incarnation : int;  (** liveness epoch; bumped on restart *)
  reported_at : float;  (** simulated time of the report *)
}

val create : Nk_sim.Net.t -> t

val add_proxy : t -> Nk_sim.Net.host -> unit

val remove_proxy : t -> Nk_sim.Net.host -> unit
(** Also drops any stored health report for the proxy. *)

val proxies : t -> Nk_sim.Net.host list

val report :
  t ->
  host:string ->
  ?incarnation:int ->
  queue_delay:float ->
  shed_rate:float ->
  unit ->
  unit
(** Publish a load report for [host]. Reports carrying an incarnation
    lower than the stored one are stale (sent before a crash the
    redirector already heard about) and are ignored. *)

val health : t -> host:string -> health option

val set_staleness : t -> float -> unit
(** Bound on load-report age. A proxy whose last report is older than
    the bound is scored at the recovery-probe headroom floor (0.02)
    rather than as unknown/idle, so a node that went silent — partition,
    crash the liveness filter hasn't caught, wedged reporter — stops
    attracting redirected traffic beyond a trickle. Default: [infinity]
    (reports never go stale). *)

val pick : t -> ?spread:int -> rng:Nk_util.Prng.t -> client:Nk_sim.Net.host -> unit -> Nk_sim.Net.host option
(** The nearest live proxy, or with [spread = k > 1] a headroom-weighted
    choice among the [k] nearest ([spread] is clamped to the close-by
    live candidates). Crashed proxies are never returned. [None] when no
    live proxy is registered. *)
