type health = {
  queue_delay : float;
  shed_rate : float;
  incarnation : int;
  reported_at : float;
}

type t = {
  net : Nk_sim.Net.t;
  mutable proxies : Nk_sim.Net.host list;
  reports : (string, health) Hashtbl.t;
  mutable staleness : float;
  (* Per-client proximity cache: proxies sorted by estimated transfer
     time. Transfer estimates depend only on the static topology, so
     the expensive estimate-and-sort is done once per client instead
     of once per pick — at 1000 proxies the per-request linear scan
     plus sort dominated everything else. Invalidated whenever the
     proxy set changes; liveness and health stay dynamic and are
     applied at pick time. *)
  by_client : (string, (float * Nk_sim.Net.host) list) Hashtbl.t;
}

let create net =
  { net; proxies = []; reports = Hashtbl.create 8; staleness = infinity;
    by_client = Hashtbl.create 64 }

let set_staleness t bound = t.staleness <- bound

let add_proxy t host =
  if not (List.exists (fun h -> Nk_sim.Net.host_name h = Nk_sim.Net.host_name host) t.proxies)
  then begin
    t.proxies <- host :: t.proxies;
    Hashtbl.reset t.by_client
  end

let remove_proxy t host =
  t.proxies <-
    List.filter (fun h -> Nk_sim.Net.host_name h <> Nk_sim.Net.host_name host) t.proxies;
  Hashtbl.remove t.reports (Nk_sim.Net.host_name host);
  Hashtbl.reset t.by_client

let proxies t = t.proxies

let report t ~host ?(incarnation = 0) ~queue_delay ~shed_rate () =
  let fresh =
    match Hashtbl.find_opt t.reports host with
    | Some prev -> incarnation >= prev.incarnation
    | None -> true
  in
  (* A report from a pre-crash incarnation may arrive after the node
     restarted and re-announced; never let it shadow the newer view. *)
  if fresh then
    Hashtbl.replace t.reports host
      {
        queue_delay;
        shed_rate;
        incarnation;
        reported_at = Nk_sim.Sim.now (Nk_sim.Net.sim t.net);
      }

let health t ~host = Hashtbl.find_opt t.reports host

(* An unloaded node has headroom 1.0; queueing delay and shed rate each
   scale it down, floored so a struggling node still gets a trickle of
   probes (otherwise it could never demonstrate recovery). *)
let headroom t host =
  match Hashtbl.find_opt t.reports (Nk_sim.Net.host_name host) with
  | None -> 1.0
  | Some h ->
    let age = Nk_sim.Sim.now (Nk_sim.Net.sim t.net) -. h.reported_at in
    if age > t.staleness then
      (* A node that stopped reporting is suspect, not idle: its last
         report says nothing about its load now. Dropping the report
         entirely would hand it the unknown-node headroom of 1.0 —
         attracting MORE traffic to a silent node — so instead it gets
         the recovery-probe floor until it speaks again. *)
      0.02
    else
      let delay_factor = 1.0 /. (1.0 +. (h.queue_delay /. 0.1)) in
      let shed_factor = 1.0 -. Float.min 0.95 h.shed_rate in
      Float.max 0.02 (delay_factor *. shed_factor)

let scored_for_client t client =
  let key = Nk_sim.Net.host_name client in
  match Hashtbl.find_opt t.by_client key with
  | Some scored -> scored
  | None ->
    let probe_size = 1024 in
    let scored =
      List.map
        (fun p ->
          (Nk_sim.Net.transfer_time_estimate t.net ~src:client ~dst:p ~size:probe_size, p))
        t.proxies
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    Hashtbl.replace t.by_client key scored;
    scored

let pick t ?(spread = 1) ~rng ~client () =
  (* A crashed proxy must not receive redirections, whatever its last
     load report said. *)
  let scored =
    List.filter
      (fun (_, p) -> not (Nk_sim.Net.host_down t.net p))
      (scored_for_client t client)
  in
  match scored with
  | [] -> None
  | scored ->
    (* "Close-by": only proxies comparable to the nearest count as
       spread candidates, so load balancing never sends a client across
       the world. *)
    let best = match scored with (s, _) :: _ -> s | [] -> 0.0 in
    let close = List.filter (fun (s, _) -> s <= (best *. 2.0) +. 1e-4) scored in
    (* Clamp the spread to the candidates actually registered and close
       enough — a spread of 4 over 2 proxies is a spread of 2. *)
    let k = max 1 (min spread (List.length close)) in
    let nearest = List.filteri (fun i _ -> i < k) close in
    (* Weighted choice by reported headroom: among equally close nodes,
       an idle one draws proportionally more clients than one shedding
       half its arrivals. *)
    let weighted = List.map (fun (_, p) -> (headroom t p, p)) nearest in
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
    let roll = Nk_util.Prng.float rng total in
    let rec choose acc = function
      | [] -> None
      | [ (_, p) ] -> Some p
      | (w, p) :: rest -> if roll < acc +. w then Some p else choose (acc +. w) rest
    in
    choose 0.0 weighted
