(* Membership is an ordered set, so join/leave are O(log n) instead of
   the old re-sort-the-whole-array (join) and array->list->array
   round-trip (leave) — the difference between a 1000-node churn step
   costing microseconds and milliseconds. A sorted-array snapshot is
   cached lazily for [nodes] and invalidated on membership change. *)

module S = Set.Make (Node_id)

type t = {
  mutable members : S.t;
  mutable size : int; (* tracked; Set.cardinal is O(n) *)
  mutable sorted : Node_id.t array option; (* lazy cache for [nodes] *)
}

let create () = { members = S.empty; size = 0; sorted = None }

let mem t id = S.mem id t.members

let join t id =
  if not (S.mem id t.members) then begin
    t.members <- S.add id t.members;
    t.size <- t.size + 1;
    t.sorted <- None
  end

let leave t id =
  if S.mem id t.members then begin
    t.members <- S.remove id t.members;
    t.size <- t.size - 1;
    t.sorted <- None
  end

let size t = t.size

let sorted_array t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list (S.elements t.members) in
    t.sorted <- Some a;
    a

let nodes t = Array.to_list (sorted_array t)

let successor t key =
  if t.size = 0 then None
  else
    match S.find_first_opt (fun x -> Node_id.compare x key >= 0) t.members with
    | Some _ as s -> s
    | None -> S.min_elt_opt t.members (* wrap *)

(* The member strictly clockwise after [id] (wrapping). *)
let next_after t id =
  match S.find_first_opt (fun x -> Node_id.compare x id > 0) t.members with
  | Some _ as s -> s
  | None -> S.min_elt_opt t.members

let successors t key ~k =
  match successor t key with
  | None -> []
  | Some owner ->
    let rec collect acc current remaining =
      if remaining = 0 then List.rev acc
      else
        match next_after t current with
        | None -> List.rev acc
        | Some nxt ->
          if Node_id.equal nxt owner then List.rev acc (* wrapped around *)
          else collect (nxt :: acc) nxt (remaining - 1)
    in
    collect [ owner ] owner (min k t.size - 1)

(* The finger of [node] for exponent [i]: successor(node + 2^i). *)
let finger t node i = successor t (Node_id.add_pow2 node i)

let lookup_path t ~from ~key =
  match successor t key with
  | None -> []
  | Some owner ->
    if Node_id.equal owner from then []
    else begin
      (* Greedy: repeatedly jump to the finger that gets closest to the
         key without overshooting its successor; fall back to the
         immediate successor, guaranteeing progress. *)
      let rec route current acc guard =
        if Node_id.equal current owner || guard = 0 then List.rev acc
        else begin
          let best = ref None in
          for i = 61 downto 0 do
            if !best = None then
              match finger t current i with
              | Some f
                when (not (Node_id.equal f current))
                     && Node_id.distance current f < Node_id.distance current key
                     && Node_id.distance current f > 0 ->
                best := Some f
              | _ -> ()
          done;
          let next = match !best with Some f -> f | None -> owner in
          route next (next :: acc) (guard - 1)
        end
      in
      route from [] (t.size + 64)
    end
