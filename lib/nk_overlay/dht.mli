(** Soft-state key/value storage over the ring — the Coral stand-in.

    Values are TTL'd announcements ("node X holds a copy of URL Y");
    they live on the key's successor node, several announcements can
    coexist under one key, and everything expires unless re-announced —
    exactly the soft-state discipline cooperative caching needs (§3.4).
    Lookups report the routing hop count so callers can charge overlay
    latency. *)

type t

val create : ?values_per_key:int -> ?replicas:int -> ?seed:int -> unit -> t
(** [values_per_key] caps coexisting announcements (default 16; newest
    win). [replicas] (default 2) is how many ring nodes — the key's
    owner plus its next distinct successors — hold each announcement, so
    a lookup can fall back when the owner is down. [seed] drives the
    deterministic PRNG used for sloppy replica placement. *)

val set_hotspots :
  t -> ?halflife:float -> threshold:float -> replicas:int -> ttl:float -> unit -> unit
(** Enable hotspot detection and Coral-style sloppy replication
    (off by default). Every {!get} bumps the key's exponentially
    decayed request-rate estimate ([halflife] seconds, default 10);
    when a key's rate crosses [threshold] requests/second its
    announcements are copied onto up to [replicas] random live nodes
    drawn from the tail of the triggering lookup's path, and later
    lookups stop at the first live holder on their own path. Holders
    expire after [ttl] seconds, after which the ring reconverges to
    the no-replica equilibrium. Raises [Invalid_argument] on
    non-positive parameters. *)

val hotspots : t -> now:float -> (string * float) list
(** Keys whose decayed request rate currently meets the hotspot
    threshold, hottest first, with their estimated requests/second.
    Empty when hotspot detection is off. *)

val sloppy_replicas : t -> int
(** Number of keys with an active (unexpired) sloppy placement. *)

val sweep : t -> now:float -> unit
(** Expire stale sloppy placements (removing the copies from their
    holders) and prune decayed rate entries. {!get} already expires
    the placement of the key it touches; [sweep] is for idle keys. *)

val set_liveness : t -> (string -> bool) -> unit
(** Install the liveness oracle (by node name) that {!get} consults
    before reading a replica; defaults to everyone-live. Wired to the
    fault plan's crash windows by the cluster builder. *)

val ring : t -> Ring.t

val metrics : t -> Nk_telemetry.Metrics.t
(** The overlay's own registry: ["dht.puts"], ["dht.gets"],
    ["dht.get-hits"] counters and the ["dht.hops"] routing-path-length
    histogram; with hotspots enabled also the ["dht.hotspots"] gauge
    (active sloppy placements), the ["dht.hotspot_replications"]
    counter (placements created) and the ["dht.sloppy_hits"] counter
    (lookups served by a sloppy holder). The bench harness merges it
    into per-experiment dumps. *)

val join : t -> string -> Node_id.t
(** Add a node by name; returns its ring id. *)

val leave : t -> string -> unit
(** Remove the node and drop the soft state it stored. *)

type lookup = { values : string list; hops : int; fallbacks : int; owner : Node_id.t option }

val put : t -> now:float -> from:string -> key:string -> value:string -> ttl:float -> int
(** Announce [value] under [key] at every replica; returns the routing
    hop count. Raises [Invalid_argument] if [from] never joined. *)

val get : t -> now:float -> from:string -> key:string -> lookup
(** Live values under [key] (newest first), read from the first live
    replica. [fallbacks] counts crashed replicas skipped on the way
    (each also charged as one extra routing hop and counted in the
    ["dht.fallbacks"] metric). With hotspots enabled, a lookup that
    passes a live sloppy holder on its path stops there instead —
    fewer hops, bit-identical values (puts write through to active
    holders). *)

val replica_names : t -> key:string -> string list
(** The live members of [key]'s replica set by node name — the owner
    plus its next distinct ring successors ({!Ring.successors}), in
    ring order. The hedging layer uses this to find the next live
    replica when a lookup's announced holders are exhausted. *)

val stored_keys : t -> string -> int
(** Number of keys currently stored at the named node. *)
