(** The per-request offload decision.

    Proactive, not reactive: offloading starts once the local pressure
    crosses the {e low} water mark — well before admission control would
    start shedding — and only toward neighbors measurably less loaded
    than we are. The decision is deliberately cheap (a scan of at most
    [fanout] table entries) because it sits on the request hot path. *)

type decision =
  | Local  (** execute the pipeline here *)
  | Offload of Neighbors.info list
      (** candidates worth shipping the stage to, pressure ascending *)

val margin : float
(** A neighbor qualifies only when its pressure is at least this much
    below ours — hysteresis so two equally loaded nodes never ping-pong
    work between each other. *)

val decide :
  pressure:float -> low_water:float -> candidates:Neighbors.info list -> decision
(** [Local] when [pressure < low_water] (no congestion brewing) or no
    candidate sits at least {!margin} below [pressure]. *)

val pick : rng:Nk_util.Prng.t -> Neighbors.info list -> Neighbors.info option
(** Weighted choice among candidates by headroom [(1 - pressure)], so
    the idlest neighbor absorbs proportionally more work but the rest of
    the close set still shares the diffusion (which is what spreads a
    flash crowd's execution instead of re-concentrating it). *)
