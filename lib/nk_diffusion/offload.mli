(** The computation-migration protocol (C3PO diffusion over the bus).

    What travels is the {e name} of the work, never the work's code: an
    offload request carries the SHA-256 hash of the site's pipeline
    script plus the serialized request context, and the receiving node
    resolves the hash against its own compiled-program cache — fetching
    the script from the origin only on a hash miss. The reply carries
    the serialized response plus the fuel/heap the pipeline consumed,
    so an offloaded execution is accountable (and testable) exactly
    like a local one.

    Transport, clock and timers are injected: messages ride the
    deployment's reliable message bus via [publish], each node
    subscribing to its own request and reply topics, and timeouts ride
    the simulator's daemon scheduler. This module owns the envelope
    codec and the sender-side pending table; executing the pipeline is
    the node's business.

    Crash safety is incarnation-guarded end to end, mirroring PR 4/5's
    load reports: the sender stamps the target incarnation it believes
    in (a receiver that crashed since rejects, because its queues and
    promises died with it), the receiver stamps its own incarnation on
    the reply, and a reply from a different epoch than the sender
    recorded — or arriving after the sender's own crash epoch advanced,
    or after the timeout already fell back — is discarded
    (["diffusion.stale_replies"]). Combined with the caller falling
    back to local execution on timeout or rejection, diffusion can
    never lose a request. *)

type outcome =
  | Executed of { response : Nk_http.Message.response; fuel : int; heap : int }
  | Rejected of string  (** machine-readable reason, no newlines *)

type request_envelope = {
  id : int;
  origin_node : string;
  origin_incarnation : int;
  target : string;
  target_incarnation : int;
  site : string;
  script_hash : string;
      (** SHA-256 (hex) of the site script's source; [""] when the site
          publishes no script (the pipeline is walls-only) *)
  request : Nk_http.Message.request;
}

type reply_envelope = {
  reply_id : int;
  responder : string;
  responder_incarnation : int;
  outcome : outcome;
}

val request_topic : string -> string
(** The bus topic a node receives offload requests on
    (["nk.diffusion.req.<node>"]). *)

val reply_topic : string -> string

(** {1 Envelope codec} *)

val encode_request_envelope : request_envelope -> string

val decode_request_envelope : string -> (request_envelope, string) result

val encode_reply_envelope : reply_envelope -> string

val decode_reply_envelope : string -> (reply_envelope, string) result

(** {1 Sender side} *)

type t

val create :
  name:string ->
  incarnation:(unit -> int) ->
  clock:(unit -> float) ->
  schedule:(float -> (unit -> unit) -> unit) ->
  publish:(topic:string -> payload:string -> unit) ->
  ?metrics:Nk_telemetry.Metrics.t ->
  unit ->
  t
(** [schedule delay k] must run [k] after [delay] seconds, and must do
    so even when the rest of the system has gone quiet: the timeout is
    the fallback guarantee for an in-flight request, so in a simulation
    it needs a regular (non-daemon) timer. *)

val send :
  t ->
  target:string ->
  target_incarnation:int ->
  site:string ->
  script_hash:string ->
  timeout:float ->
  request:Nk_http.Message.request ->
  on_done:(outcome option -> unit) ->
  unit
(** Publish one offload request and register [on_done], which fires
    exactly once: with the outcome if a valid reply arrives within
    [timeout], with [None] on timeout. Late, duplicate, and
    wrong-incarnation replies are discarded. *)

val handle_reply : t -> payload:string -> unit
(** Feed a payload received on our reply topic through the pending
    table. *)

val reply : t -> to_:request_envelope -> outcome -> unit
(** Receiver side: publish the outcome back to the requester's reply
    topic, stamped with our current incarnation. *)

val pending : t -> int
(** Offloads currently awaiting a reply (tests). *)

val stale_replies : t -> int
(** Replies discarded as late, duplicate, unknown, or from the wrong
    incarnation. *)
