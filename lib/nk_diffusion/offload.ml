type outcome =
  | Executed of { response : Nk_http.Message.response; fuel : int; heap : int }
  | Rejected of string

type request_envelope = {
  id : int;
  origin_node : string;
  origin_incarnation : int;
  target : string;
  target_incarnation : int;
  site : string;
  script_hash : string;
  request : Nk_http.Message.request;
}

type reply_envelope = {
  reply_id : int;
  responder : string;
  responder_incarnation : int;
  outcome : outcome;
}

let request_topic node = "nk.diffusion.req." ^ node

let reply_topic node = "nk.diffusion.rep." ^ node

(* --- envelope codec ---------------------------------------------------

   A block of [key=value] lines, a blank line, then the HTTP-encoded
   message (the same wire codec tests and trace tooling use). Values
   must be newline-free; reasons and names are. *)

let magic_request = "nk-offload-req/1"

let magic_reply = "nk-offload-rep/1"

let header_block fields =
  String.concat "\n" (List.map (fun (k, v) -> k ^ "=" ^ v) fields)

let encode_request_envelope e =
  let client = Nk_http.Ip.to_string e.request.Nk_http.Message.client.Nk_http.Ip.ip in
  magic_request ^ "\n"
  ^ header_block
      [
        ("id", string_of_int e.id);
        ("origin", e.origin_node);
        ("origin-inc", string_of_int e.origin_incarnation);
        ("target", e.target);
        ("target-inc", string_of_int e.target_incarnation);
        ("site", e.site);
        ("hash", e.script_hash);
        ("client", client);
      ]
  ^ "\n\n"
  ^ Nk_http.Codec.encode_request e.request

let encode_reply_envelope e =
  let fields =
    [
      ("id", string_of_int e.reply_id);
      ("responder", e.responder);
      ("responder-inc", string_of_int e.responder_incarnation);
    ]
    @
    match e.outcome with
    | Executed { fuel; heap; _ } ->
      [ ("outcome", "executed"); ("fuel", string_of_int fuel); ("heap", string_of_int heap) ]
    | Rejected reason -> [ ("outcome", "rejected"); ("reason", reason) ]
  in
  let body =
    match e.outcome with
    | Executed { response; _ } -> Nk_http.Codec.encode_response response
    | Rejected _ -> ""
  in
  magic_reply ^ "\n" ^ header_block fields ^ "\n\n" ^ body

let split_envelope payload =
  match Nk_util.Strutil.index_sub payload ~sub:"\n\n" ~start:0 with
  | None -> Error "missing envelope separator"
  | Some i ->
    Ok
      ( String.sub payload 0 i,
        String.sub payload (i + 2) (String.length payload - i - 2) )

let parse_fields head =
  match String.split_on_char '\n' head with
  | magic :: lines ->
    let rec go acc = function
      | [] -> Ok (magic, acc)
      | line :: rest -> (
        match Nk_util.Strutil.split_first '=' line with
        | Some (k, v) -> go ((k, v) :: acc) rest
        | None -> Error ("malformed envelope line: " ^ line))
    in
    go [] lines
  | [] -> Error "empty envelope"

let field fields k =
  match List.assoc_opt k fields with
  | Some v -> Ok v
  | None -> Error ("envelope missing field " ^ k)

let int_field fields k =
  Result.bind (field fields k) (fun v ->
      match int_of_string_opt v with
      | Some n -> Ok n
      | None -> Error ("envelope field " ^ k ^ " is not an integer"))

let ( let* ) = Result.bind

let decode_request_envelope payload =
  let* head, body = split_envelope payload in
  let* magic, fields = parse_fields head in
  if magic <> magic_request then Error ("bad envelope magic: " ^ magic)
  else
    let* id = int_field fields "id" in
    let* origin_node = field fields "origin" in
    let* origin_incarnation = int_field fields "origin-inc" in
    let* target = field fields "target" in
    let* target_incarnation = int_field fields "target-inc" in
    let* site = field fields "site" in
    let* script_hash = field fields "hash" in
    let* client = field fields "client" in
    let* request = Nk_http.Codec.decode_request body in
    (* The wire codec drops the client identity; restore it so client
       predicates (System.isLocal, client matching) behave identically
       on the executing node. *)
    (match Nk_http.Ip.of_string client with
     | Ok ip -> request.Nk_http.Message.client <- { Nk_http.Ip.ip; hostname = None }
     | Error _ -> ());
    Ok
      {
        id;
        origin_node;
        origin_incarnation;
        target;
        target_incarnation;
        site;
        script_hash;
        request;
      }

let decode_reply_envelope payload =
  let* head, body = split_envelope payload in
  let* magic, fields = parse_fields head in
  if magic <> magic_reply then Error ("bad envelope magic: " ^ magic)
  else
    let* reply_id = int_field fields "id" in
    let* responder = field fields "responder" in
    let* responder_incarnation = int_field fields "responder-inc" in
    let* kind = field fields "outcome" in
    let* outcome =
      match kind with
      | "executed" ->
        let* fuel = int_field fields "fuel" in
        let* heap = int_field fields "heap" in
        let* response = Nk_http.Codec.decode_response body in
        Ok (Executed { response; fuel; heap })
      | "rejected" ->
        let* reason = field fields "reason" in
        Ok (Rejected reason)
      | other -> Error ("unknown outcome kind: " ^ other)
    in
    Ok { reply_id; responder; responder_incarnation; outcome }

(* --- sender-side pending table ---------------------------------------- *)

type waiting = {
  w_target : string;
  w_target_incarnation : int;
  w_origin_incarnation : int;  (* our epoch when the offload left *)
  w_on_done : outcome option -> unit;
}

type t = {
  name : string;
  incarnation : unit -> int;
  clock : unit -> float;
  schedule : float -> (unit -> unit) -> unit;
  publish : topic:string -> payload:string -> unit;
  metrics : Nk_telemetry.Metrics.t option;
  waitings : (int, waiting) Hashtbl.t;
  mutable next_id : int;
  mutable stale : int;
}

let create ~name ~incarnation ~clock ~schedule ~publish ?metrics () =
  {
    name;
    incarnation;
    clock;
    schedule;
    publish;
    metrics;
    waitings = Hashtbl.create 8;
    next_id = 0;
    stale = 0;
  }

let pending t = Hashtbl.length t.waitings

let stale_replies t = t.stale

let count_stale t =
  t.stale <- t.stale + 1;
  match t.metrics with
  | Some m -> Nk_telemetry.Metrics.incr m "diffusion.stale_replies"
  | None -> ()

let send t ~target ~target_incarnation ~site ~script_hash ~timeout ~request ~on_done =
  let id = t.next_id in
  t.next_id <- id + 1;
  let envelope =
    {
      id;
      origin_node = t.name;
      origin_incarnation = t.incarnation ();
      target;
      target_incarnation;
      site;
      script_hash;
      request;
    }
  in
  Hashtbl.replace t.waitings id
    {
      w_target = target;
      w_target_incarnation = target_incarnation;
      w_origin_incarnation = envelope.origin_incarnation;
      w_on_done = on_done;
    };
  t.schedule timeout (fun () ->
      match Hashtbl.find_opt t.waitings id with
      | None -> () (* already resolved *)
      | Some w ->
        Hashtbl.remove t.waitings id;
        w.w_on_done None);
  t.publish ~topic:(request_topic target) ~payload:(encode_request_envelope envelope)

let handle_reply t ~payload =
  match decode_reply_envelope payload with
  | Error msg ->
    Logs.debug (fun m -> m "[%s] undecodable offload reply: %s" t.name msg);
    count_stale t
  | Ok reply -> (
    match Hashtbl.find_opt t.waitings reply.reply_id with
    | None -> count_stale t (* late (already timed out) or duplicate *)
    | Some w ->
      (* Three epoch guards: the responder must be the node we sent to,
         still in the incarnation we believed in, and we must not have
         crashed ourselves since sending (a restarted node must not be
         haunted by its dead incarnation's offloads). *)
      if
        reply.responder <> w.w_target
        || reply.responder_incarnation <> w.w_target_incarnation
        || t.incarnation () <> w.w_origin_incarnation
      then count_stale t
      else begin
        Hashtbl.remove t.waitings reply.reply_id;
        w.w_on_done (Some reply.outcome)
      end)

let reply t ~to_ outcome =
  let envelope =
    {
      reply_id = to_.id;
      responder = t.name;
      responder_incarnation = t.incarnation ();
      outcome;
    }
  in
  t.publish ~topic:(reply_topic to_.origin_node) ~payload:(encode_reply_envelope envelope)
