type info = {
  name : string;
  pressure : float;
  incarnation : int;
  distance : float;
  reported_at : float;
}

type t = { table : (string, info) Hashtbl.t }

let create () = { table = Hashtbl.create 8 }

let observe t ~name ~incarnation ~pressure ~distance ~now =
  let fresh =
    match Hashtbl.find_opt t.table name with
    | Some prev -> incarnation >= prev.incarnation
    | None -> true
  in
  if fresh then
    Hashtbl.replace t.table name { name; pressure; incarnation; distance; reported_at = now }

let remove t name = Hashtbl.remove t.table name

let find t name = Hashtbl.find_opt t.table name

let all t =
  Hashtbl.fold (fun _ info acc -> info :: acc) t.table []
  |> List.sort (fun a b -> compare a.name b.name)

let size t = Hashtbl.length t.table

let candidates t ~now ~staleness ~fanout =
  let fresh =
    Hashtbl.fold
      (fun _ info acc -> if now -. info.reported_at <= staleness then info :: acc else acc)
      t.table []
  in
  match fresh with
  | [] -> []
  | fresh ->
    (* Close set: work should diffuse to neighbors, not across the
       world — same 2x-nearest rule the redirector uses for clients. *)
    let nearest =
      List.fold_left (fun acc i -> Float.min acc i.distance) infinity fresh
    in
    List.filter (fun i -> i.distance <= (nearest *. 2.0) +. 1e-4) fresh
    |> List.sort (fun a b ->
           match compare a.pressure b.pressure with 0 -> compare a.name b.name | c -> c)
    |> List.filteri (fun i _ -> i < max 1 fanout)
