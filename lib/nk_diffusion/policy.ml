type decision = Local | Offload of Neighbors.info list

let margin = 0.05

let decide ~pressure ~low_water ~candidates =
  if pressure < low_water then Local
  else
    match
      List.filter (fun (c : Neighbors.info) -> c.pressure +. margin <= pressure) candidates
    with
    | [] -> Local
    | eligible -> Offload eligible

let pick ~rng = function
  | [] -> None
  | candidates ->
    let weighted =
      List.map
        (fun (c : Neighbors.info) -> (Float.max 0.05 (1.0 -. c.pressure), c))
        candidates
    in
    let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
    let roll = Nk_util.Prng.float rng total in
    let rec choose acc = function
      | [] -> None
      | [ (_, c) ] -> Some c
      | (w, c) :: rest -> if roll < acc +. w then Some c else choose (acc +. w) rest
    in
    choose 0.0 weighted
