(** The per-node neighbor pressure table.

    Each node keeps its own view of the close set's pressure, refreshed
    from the same periodic load-report gossip that feeds the DNS
    redirector (PR 5). Entries are incarnation-guarded — a report gossiped
    before a neighbor crashed must never shadow the restarted node's
    fresh view — and age-bounded: a neighbor that has gone silent (its
    reports stopped, whatever its last one claimed) drops out of the
    candidate set once its entry is older than the staleness bound, so
    diffusion never ships work to a node that may no longer exist. *)

type info = {
  name : string;  (** the neighbor's host name *)
  pressure : float;  (** its last reported pressure ({!Pressure.compute}) *)
  incarnation : int;  (** liveness epoch of the report; bumped on restart *)
  distance : float;  (** network proximity estimate (seconds for a probe) *)
  reported_at : float;  (** when the report was observed (simulated time) *)
}

type t

val create : unit -> t

val observe :
  t ->
  name:string ->
  incarnation:int ->
  pressure:float ->
  distance:float ->
  now:float ->
  unit
(** Record a load report. Reports carrying an incarnation lower than the
    stored one are from a pre-crash epoch and are ignored. *)

val remove : t -> string -> unit

val find : t -> string -> info option

val all : t -> info list
(** Every stored entry, sorted by name (stale ones included). *)

val size : t -> int

val candidates : t -> now:float -> staleness:float -> fanout:int -> info list
(** Offload candidates: entries no older than [staleness], restricted to
    the {e close set} (distance within 2x the nearest candidate, the same
    "close-by" rule the redirector applies to clients), sorted by
    pressure ascending and truncated to [fanout]. *)
