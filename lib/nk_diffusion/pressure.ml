let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

let compute ~target ~queue_delay ~shed_rate ~queue_frac =
  let target = Float.max 1e-9 target in
  let delay = Float.max 0.0 queue_delay in
  (* delay/(delay+target): 0 when idle, 0.5 at the admission target,
     asymptotically 1 — smooth and monotone, no cliff at the target. *)
  let delay_c = delay /. (delay +. target) in
  let shed_c = clamp01 shed_rate in
  let queue_c = clamp01 queue_frac in
  clamp01 (1.0 -. ((1.0 -. delay_c) *. (1.0 -. shed_c) *. (1.0 -. queue_c)))

let classify ~low ~high p =
  if p < low then `Idle else if p >= high then `Saturated else `Diffusing
