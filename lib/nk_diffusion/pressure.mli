(** The scalar pressure signal driving proactive diffusion (C3PO).

    Na Kika's monitors are reactive: they throttle and quarantine after
    congestion appears, and PR 5's admission control sheds only once the
    queueing delay has already blown through its target. C3PO argues the
    right time to move work is {e before} that point — when a cheap
    scalar "computation congestion" signal starts climbing. This module
    derives that scalar from the three gauges a node already measures
    for its health reports: the CPU queueing delay a newly admitted
    request would see, the admission shed rate, and the admission queue
    occupancy.

    The signal is a product-of-complements in [0, 1]:

    {v
      pressure = 1 - (1 - delay/(delay+target)) * (1 - shed) * (1 - occupancy)
    v}

    so it is 0 only when every component is idle, saturates toward 1 as
    any component saturates, and — crucially for the policy layer — is
    {e monotone} in each input: more delay, more shedding, or a fuller
    queue can never read as less pressure (the qcheck property in
    [test_diffusion.ml]). The delay term uses the admission delay target
    as its half-way scale, so pressure crosses ~0.5 exactly where
    admission would start shedding: a low-water threshold below 0.5 is
    what makes diffusion {e proactive}. *)

val compute :
  target:float -> queue_delay:float -> shed_rate:float -> queue_frac:float -> float
(** [compute ~target ~queue_delay ~shed_rate ~queue_frac] where [target]
    is the admission delay target (seconds, > 0), [queue_delay] the
    current CPU backlog (seconds), [shed_rate] the fraction of recent
    arrivals shed, and [queue_frac] the admitted-queue occupancy
    fraction. All inputs are clamped to their sane ranges; the result is
    in [0, 1]. *)

val classify : low:float -> high:float -> float -> [ `Idle | `Diffusing | `Saturated ]
(** Where a pressure value sits relative to the low/high water marks:
    [`Idle] below [low] (execute locally), [`Diffusing] in between
    (offload proactively), [`Saturated] at or above [high] (refuse
    incoming offloads too). *)
