examples/blacklist.mli:
