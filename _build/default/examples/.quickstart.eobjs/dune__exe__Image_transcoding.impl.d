examples/image_transcoding.ml: Core Option Printf String
