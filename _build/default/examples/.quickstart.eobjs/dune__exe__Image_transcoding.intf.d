examples/image_transcoding.mli:
