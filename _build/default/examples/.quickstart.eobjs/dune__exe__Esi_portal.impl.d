examples/esi_portal.ml: Core List Printf
