examples/medical_education.mli:
