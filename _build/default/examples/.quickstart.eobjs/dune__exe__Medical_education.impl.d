examples/medical_education.ml: Core List Printf
