examples/blacklist.ml: Core Printf
