examples/quickstart.mli:
