examples/esi_portal.mli:
