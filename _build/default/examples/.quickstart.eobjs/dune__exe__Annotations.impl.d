examples/annotations.ml: Core Printf String
