examples/annotations.mli:
