(* A miniature of the §5.2 evaluation: the SIMMs web-based medical
   education environment served (a) by a single origin server and
   (b) through Na Kika edge nodes, over a simulated wide-area network.

     dune exec examples/medical_education.exe

   Twelve client sites (US East Coast, West Coast, Asia) replay a
   student workload; the origin sits in New York. Edge proxies render
   the personalized XML to HTML close to the clients and serve the
   multimedia content from their caches. *)

let regions = [ ("east", 0.01); ("west", 0.04); ("asia", 0.09) ]

let run_deployment ~label ~use_edge =
  let cluster = Core.Node.Cluster.create ~seed:7 () in
  let sim = Core.Node.Cluster.sim cluster in
  let origin = Core.Node.Cluster.add_origin cluster ~name:Core.Workload.Simm.host () in
  Core.Workload.Simm.install_origin origin;
  let origin_host = Core.Node.Origin.host origin in

  let html_latency = Core.Util.Stats.create () in
  let video_bw = Core.Util.Stats.create () in

  let mode =
    if use_edge then Core.Workload.Simm.Edge else Core.Workload.Simm.Single_server
  in
  let make_clients region latency =
    List.init 4 (fun i ->
        let client =
          Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "%s-client%d" region i)
        in
        Core.Node.Cluster.connect cluster client origin_host ~latency ~bandwidth:1_000_000.0;
        let proxy =
          if use_edge then begin
            let p =
              Core.Node.Cluster.add_proxy cluster
                ~name:(Printf.sprintf "nk-%s%d.nakika.net" region i)
                ()
            in
            (* The proxy sits close to its clients but far from NY. *)
            Core.Node.Cluster.connect cluster client (Core.Node.Node.host p) ~latency:0.003
              ~bandwidth:10_000_000.0;
            Core.Node.Cluster.connect cluster (Core.Node.Node.host p) origin_host ~latency
              ~bandwidth:2_000_000.0;
            Some p
          end
          else None
        in
        (client, proxy))
  in
  let clients = List.concat_map (fun (region, lat) -> make_clients region lat) regions in

  let until = Core.Sim.Sim.now sim +. 120.0 in
  List.iteri
    (fun idx (client, proxy) ->
      let rng = Core.Util.Prng.create (100 + idx) in
      let student = Printf.sprintf "student%d" idx in
      let fetch req k =
        match proxy with
        | Some p -> Core.Node.Cluster.fetch cluster ~client ~proxy:p req k
        | None -> Core.Sim.Httpd.fetch (Core.Node.Cluster.web cluster) ~from:client req k
      in
      let rec session () =
        if Core.Sim.Sim.now sim < until then begin
          let req = Core.Workload.Simm.make_request ~rng ~mode ~student in
          let started = Core.Sim.Sim.now sim in
          fetch req (fun resp ->
              let elapsed = Core.Sim.Sim.now sim -. started in
              let size = Core.Http.Message.content_length resp in
              if Core.Workload.Simm.is_video req then begin
                if elapsed > 0.0 then
                  Core.Util.Stats.add video_bw (float_of_int size /. elapsed)
              end
              else Core.Util.Stats.add html_latency elapsed;
              Core.Sim.Sim.schedule sim ~delay:0.5 session)
        end
      in
      session ())
    clients;
  Core.Node.Cluster.run cluster;

  Printf.printf "%-22s html p50 %6.0f ms   p90 %6.0f ms   video >= 140Kbps: %5.1f%%   origin reqs: %d\n"
    label
    (1000.0 *. Core.Util.Stats.percentile html_latency 50.0)
    (1000.0 *. Core.Util.Stats.percentile html_latency 90.0)
    (100.0 *. Core.Util.Stats.fraction_at_least video_bw Core.Workload.Simm.video_bitrate)
    (Core.Node.Origin.request_count origin)

let () =
  print_endline "SIMMs over a simulated wide area (12 clients, origin in New York):";
  run_deployment ~label:"single server:" ~use_edge:false;
  run_deployment ~label:"Na Kika edge nodes:" ~use_edge:true
