(* The §5.4 image-transcoding extension: a service "to be published on
   the web for use by the larger community" that scales images to fit a
   Nokia cell phone's 176x208 screen (Fig. 2).

     dune exec examples/image_transcoding.exe

   The policy matches on the client's User-Agent header, so phone
   clients get scaled images while desktop clients receive the
   original. Transformed content is cached through the Cache
   vocabulary, as the paper's generalized extension does. *)

let transcoding_script =
  {|
var p = new Policy();
p.url = ["photos.example.org"];
p.headers = { "User-Agent": "Nokia" };
p.onResponse = function() {
  var type = ImageTransformer.type(Response.contentType);
  if (type == null) { return; }

  var cached = Cache.lookup("phone:" + Request.url);
  if (cached != null) {
    Response.setHeader("Content-Type", cached.contentType);
    Response.write(cached.body);
    return;
  }

  var buff = null, body = new ByteArray();
  while ((buff = Response.read()) != null) { body.append(buff); }
  var dim = ImageTransformer.dimensions(body, type);
  if (dim.x > 176 || dim.y > 208) {
    var img;
    if (dim.x / 176 > dim.y / 208) {
      img = ImageTransformer.transform(body, type, "jpeg", 176, dim.y / dim.x * 208);
    } else {
      img = ImageTransformer.transform(body, type, "jpeg", dim.x / dim.y * 176, 208);
    }
    Response.setHeader("Content-Type", "image/jpeg");
    Response.setHeader("Content-Length", img.length);
    Response.write(img);
    Cache.store("phone:" + Request.url, "image/jpeg", img, 300);
  }
}
p.register();
|}

let fetch_with_agent cluster ~client ~proxy ~agent url k =
  let req = Core.Http.Message.request ~headers:[ ("User-Agent", agent) ] url in
  Core.Node.Cluster.fetch cluster ~client ~proxy req k

let describe tag (resp : Core.Http.Message.response) =
  let body = Core.Http.Body.to_string resp.Core.Http.Message.resp_body in
  match Core.Vocab.Image.dimensions body with
  | Some (w, h) ->
    Printf.printf "%-28s %dx%d, %d bytes, %s\n" tag w h (String.length body)
      (Option.value (Core.Http.Message.content_type resp) ~default:"?")
  | None -> Printf.printf "%-28s (not an image: %d bytes)\n" tag (String.length body)

let () =
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"photos.example.org" () in

  (* A large photo in the synthetic NKI raster format. *)
  let photo = Core.Vocab.Image.synthesize ~width:800 ~height:600 ~seed:42 in
  Core.Node.Origin.set_static origin ~path:"/vacation.jpg" ~content_type:"image/jpeg"
    ~max_age:600
    (Core.Vocab.Image.encode photo Core.Vocab.Image.Rle);
  Core.Node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300 transcoding_script;

  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"client" in
  let url = "http://photos.example.org/vacation.jpg" in

  fetch_with_agent cluster ~client ~proxy ~agent:"Mozilla/5.0 (desktop)" url (fun desktop ->
      describe "desktop client:" desktop;
      fetch_with_agent cluster ~client ~proxy ~agent:"Nokia6600/2.0" url (fun phone ->
          describe "Nokia phone client:" phone;
          (* Second phone request: the transformed copy is cached. *)
          fetch_with_agent cluster ~client ~proxy ~agent:"Nokia6600/2.0" url (fun phone2 ->
              describe "Nokia phone (cached):" phone2)));
  Core.Node.Cluster.run cluster;
  Printf.printf "origin requests: %d\n" (Core.Node.Origin.request_count origin)
