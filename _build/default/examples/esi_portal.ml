(* Edge Side Includes (§3.1: ESI "can easily be supported within Na
   Kika") plus access-log replay (§5.2's methodology): a portal page is
   assembled at the edge from independently cached fragments, driven by
   a synthesized Apache Common Log Format log.

     dune exec examples/esi_portal.exe

   The portal skeleton changes rarely (max-age 600); the news fragment
   changes often (max-age 5). ESI assembly at the edge means the node
   refetches only the volatile fragment, not the whole page — watch the
   per-path origin hit counts. *)

let portal_skeleton =
  {|<html><head><title>Campus portal</title></head><body>
<h1>Campus portal</h1>
<esi:include src="http://portal.example.edu/fragments/news.html"/>
<esi:include src="http://portal.example.edu/fragments/menu.html"/>
</body></html>|}

let site_script =
  {|
var p = new Policy();
p.url = ["portal.example.edu"];
p.nextStages = ["http://nakika.net/esi.js"];
p.register();
|}

let () =
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"portal.example.edu" () in
  let news_version = ref 0 in
  (* The skeleton and menu are stable; the news fragment is volatile. *)
  Core.Node.Origin.set_static origin ~path:"/index.html" ~content_type:"text/html"
    ~max_age:600 portal_skeleton;
  Core.Node.Origin.set_static origin ~path:"/fragments/menu.html" ~content_type:"text/html"
    ~max_age:600 "<nav>home | courses | library</nav>";
  Core.Node.Origin.set_dynamic origin ~prefix:"/fragments/news.html" ~cpu:0.001 (fun _ ->
      incr news_version;
      Core.Http.Message.response
        ~headers:[ ("Content-Type", "text/html"); ("Cache-Control", "max-age=5") ]
        ~body:(Printf.sprintf "<section>breaking news #%d</section>" !news_version)
        ());
  Core.Node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300 site_script;

  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"campus" in

  (* Drive it with a synthesized access log, replayed CLF-style. *)
  let rng = Core.Util.Prng.create 12 in
  let log =
    Core.Workload.Logreplay.synthesize ~rng
      ~start:(Core.Sim.Sim.now (Core.Node.Cluster.sim cluster))
      ~duration:30.0 ~clients:6 ~paths:[| "/index.html" |]
  in
  let entries, malformed = Core.Workload.Logreplay.parse_log log in
  Printf.printf "replaying %d logged requests (%d malformed lines)\n" (List.length entries)
    malformed;
  let events =
    Core.Workload.Logreplay.to_events ~host:"portal.example.edu" ~accelerate:1.0 entries
  in
  let assembled = ref 0 and last_body = ref "" in
  Core.Workload.Driver.replay cluster ~client ~proxy ~events
    ~on_response:(fun _ resp _ ->
      let body = Core.Http.Body.to_string resp.Core.Http.Message.resp_body in
      if
        resp.Core.Http.Message.status = 200
        && Core.Util.Strutil.contains_sub body ~sub:"breaking news"
        && Core.Util.Strutil.contains_sub body ~sub:"<nav>"
      then begin
        incr assembled;
        last_body := body
      end)
    ();
  Core.Node.Cluster.run cluster;

  Printf.printf "pages fully assembled at the edge: %d\n" !assembled;
  Printf.printf "last page:\n%s\n" !last_body;
  Printf.printf "origin requests: %d total, %d to the volatile news fragment\n"
    (Core.Node.Origin.request_count origin)
    !news_version;
  print_endline
    "(the skeleton and menu were fetched once; only the 5-second news fragment refreshes)"
