(* Quickstart: bring up a one-proxy Na Kika deployment, publish a site
   script that transforms content at the edge, and fetch through it.

     dune exec examples/quickstart.exe

   What happens:
   1. An origin server (www.example.edu) publishes a page and a
      [nakika.js] site script.
   2. A Na Kika proxy mediates the exchange: it fetches the script,
      evaluates it into a pipeline stage, and runs its [onResponse]
      handler over the origin's response (Fig. 4).
   3. The second fetch is served from the proxy cache — the origin is
      not contacted again. *)

let () =
  let cluster = Core.Node.Cluster.create () in

  (* The content producer's origin server. *)
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.example.edu" () in
  Core.Node.Origin.set_static origin ~path:"/index.html" ~max_age:300
    "<html><body>Hello from the origin!</body></html>";

  (* The site script, published at the robots.txt-style location. *)
  Core.Node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300
    {|
var p = new Policy();
p.url = ["www.example.edu"];
p.onResponse = function() {
  var body = "", chunk;
  while ((chunk = Response.read()) != null) { body += chunk; }
  Response.write(body.replace("from the origin", "from the edge"));
}
p.register();
|};

  (* One edge node and one client. *)
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"laptop" in

  (* Clients reach Na Kika by appending .nakika.net to the hostname (§3). *)
  let url = "http://www.example.edu.nakika.net/index.html" in
  let show tag (resp : Core.Http.Message.response) =
    Printf.printf "%-14s %d %s\n" tag resp.Core.Http.Message.status
      (Core.Http.Body.to_string resp.Core.Http.Message.resp_body)
  in
  Core.Node.Cluster.fetch cluster ~client ~proxy (Core.Http.Message.request url) (fun resp ->
      show "first fetch:" resp;
      Core.Node.Cluster.fetch cluster ~client ~proxy (Core.Http.Message.request url)
        (fun resp2 -> show "second fetch:" resp2));
  Core.Node.Cluster.run cluster;

  Printf.printf "origin requests: %d (page + nakika.js, then silence)\n"
    (Core.Node.Origin.request_count origin);
  Printf.printf "proxy cache hits: %d\n" (Core.Cache.Http_cache.hits (Core.Node.Node.cache proxy))
