(* The §5.4 content-blocking extension: "the first new stage relies on a
   static script to dynamically generate the JavaScript code for the
   second new stage, which, in turn, blocks access to the URLs appearing
   on the blacklist."

     dune exec examples/blacklist.exe

   The blacklist lives at a preconfigured URL; the generator stage reads
   it with [fetchResource], emits one policy object per entry using
   [evalScript], and the resulting policies deny requests with 403 —
   exactly the Fig. 5 denial pattern. Updating the published blacklist
   re-generates the blocking stage once the cached copy expires. *)

let generator_script =
  {|
var blacklist = fetchResource("http://policy.nakika.net/blacklist.txt");
if (blacklist.status == 200) {
  var entries = blacklist.body.split("\n");
  for (var i = 0; i < entries.length; i++) {
    var entry = entries[i].trim();
    if (entry.length == 0) { continue; }
    var code = "var b = new Policy();" +
               "b.url = [\"" + entry + "\"];" +
               "b.onRequest = function() { Request.terminate(403); };" +
               "b.register();";
    evalScript(code);
  }
}
// Everything else passes.
var pass = new Policy();
pass.onRequest = function() { };
pass.register();
|}

let () =
  let cluster = Core.Node.Cluster.create () in

  (* The policy site hosts the blacklist and the generator stage. *)
  let policy_origin = Core.Node.Cluster.add_origin cluster ~name:"policy.nakika.net" () in
  Core.Node.Origin.set_static policy_origin ~path:"/blacklist.txt" ~content_type:"text/plain"
    ~max_age:300 "warez.example.com\nphishing.example.net/login\n";
  Core.Node.Origin.set_static policy_origin ~path:"/blocker.js" ~content_type:"text/javascript"
    ~max_age:300 generator_script;

  (* Deploy it as the network's client wall. *)
  Core.Node.Origin.set_static (Core.Node.Cluster.nakika_origin cluster) ~path:"/clientwall.js"
    ~content_type:"text/javascript" ~max_age:300
    {|
var p = new Policy();
p.nextStages = ["http://policy.nakika.net/blocker.js"];
p.register();
|};

  (* Content sites. *)
  let bad = Core.Node.Cluster.add_origin cluster ~name:"warez.example.com" () in
  Core.Node.Origin.set_static bad ~path:"/index.html" ~max_age:300 "illegal bits";
  let good = Core.Node.Cluster.add_origin cluster ~name:"news.example.org" () in
  Core.Node.Origin.set_static good ~path:"/index.html" ~max_age:300 "wholesome news";
  let phishing = Core.Node.Cluster.add_origin cluster ~name:"phishing.example.net" () in
  Core.Node.Origin.set_static phishing ~path:"/login/steal.html" ~max_age:300 "gotcha";
  Core.Node.Origin.set_static phishing ~path:"/about.html" ~max_age:300 "innocent page";

  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"client" in

  let check url =
    Core.Node.Cluster.fetch cluster ~client ~proxy (Core.Http.Message.request url)
      (fun resp ->
        Printf.printf "%-45s -> %d %s\n" url resp.Core.Http.Message.status
          (Core.Http.Status.reason resp.Core.Http.Message.status))
  in
  check "http://warez.example.com/index.html";
  check "http://news.example.org/index.html";
  check "http://phishing.example.net/login/steal.html";
  check "http://phishing.example.net/about.html";
  Core.Node.Cluster.run cluster;
  Printf.printf "blocked origin was contacted %d times (should be 0)\n"
    (Core.Node.Origin.request_count bad)
