(* The §5.4 electronic-annotations extension: "one site building on
   another site's service". A community site (notes.medcommunity.org)
   interposes itself onto the SIMMs by rewriting request URLs to the
   original content and injecting post-it notes into the returned HTML;
   the notes themselves live in the annotation site's hard state.

     dune exec examples/annotations.exe

   The pipeline has the shape the paper describes: URL rewriting,
   annotations, then the SIMMs — all within a single pipeline on the
   same node. *)

let annotation_script =
  {|
var p = new Policy();
p.url = ["notes.medcommunity.org"];
// "The new service simply adjusts the request, including the URL, and
// then schedules the original service after itself" (§3.1).
p.nextStages = ["http://simm.med.nyu.edu/nakika.js"];
p.onRequest = function() {
  // Interpose: rewrite /simm/... to the original SIMM content.
  var marker = "/simm/";
  var at = Request.url.indexOf(marker);
  if (at >= 0) {
    var rest = Request.url.substring(at + marker.length);
    Request.setUrl("http://simm.med.nyu.edu/" + rest);
  }
}
p.onResponse = function() {
  if (Response.contentType == null || Response.contentType.indexOf("text/html") < 0) { return; }
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  // Inject stored post-it notes for this resource before </body>.
  var notes = HardState.get("notes:" + Request.url);
  var widget = "<aside class=\"postit\">" + ((notes == null) ? "no notes yet" : notes) + "</aside>";
  body = body.replace("</body>", widget + "</body>");
  // Keep readers on the annotated site: links point back to us.
  body = body.replace("http://simm.med.nyu.edu/", "http://notes.medcommunity.org/simm/");
  Response.write(body);
}
p.register();

// Accept new annotations posted to /annotate?target=...&text=...
var poster = new Policy();
poster.url = ["notes.medcommunity.org/annotate"];
poster.onRequest = function() {
  var target = Request.query("target");
  var text = Request.query("text");
  var key = "notes:http://simm.med.nyu.edu/" + target;
  var existing = HardState.get(key);
  HardState.put(key, (existing == null) ? text : existing + " | " + text);
  Request.respond(200, "text/plain", "noted");
}
poster.register();
|}

let () =
  let cluster = Core.Node.Cluster.create () in

  (* The SIMMs themselves (the service being built upon). *)
  let simm_origin = Core.Node.Cluster.add_origin cluster ~name:"simm.med.nyu.edu" () in
  Core.Workload.Simm.install_origin simm_origin;

  (* The community annotation site: no content of its own, only the
     script (plus hard state on the edge). *)
  let notes_origin = Core.Node.Cluster.add_origin cluster ~name:"notes.medcommunity.org" () in
  Core.Node.Origin.set_static notes_origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300 annotation_script;

  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"student" in

  let lecture = "content/m1/lec1.xml?student=alice" in
  let annotated_url = "http://notes.medcommunity.org/simm/" ^ lecture in

  (* 1. Post two annotations. *)
  Core.Node.Cluster.fetch cluster ~client ~proxy
    (Core.Http.Message.request
       ("http://notes.medcommunity.org/annotate?target=" ^ lecture
      ^ "&text=great overview"))
    (fun r1 ->
      Printf.printf "post note 1: %d\n" r1.Core.Http.Message.status;
      Core.Node.Cluster.fetch cluster ~client ~proxy
        (Core.Http.Message.request
           ("http://notes.medcommunity.org/annotate?target=" ^ lecture
          ^ "&text=see also module 2"))
        (fun r2 ->
          Printf.printf "post note 2: %d\n" r2.Core.Http.Message.status;
          (* 2. Read the lecture through the annotation service. *)
          Core.Node.Cluster.fetch cluster ~client ~proxy
            (Core.Http.Message.request annotated_url)
            (fun resp ->
              let body = Core.Http.Body.to_string resp.Core.Http.Message.resp_body in
              Printf.printf "lecture via notes site: %d, %d bytes\n"
                resp.Core.Http.Message.status (String.length body);
              let has_notes =
                Core.Util.Strutil.contains_sub body ~sub:"great overview"
                && Core.Util.Strutil.contains_sub body ~sub:"see also module 2"
              in
              Printf.printf "annotations injected: %b\n" has_notes;
              Printf.printf "original content present: %b\n"
                (Core.Util.Strutil.contains_sub body ~sub:"appendicitis"))));
  Core.Node.Cluster.run cluster
