lib/nk_crypto/sha256.mli:
