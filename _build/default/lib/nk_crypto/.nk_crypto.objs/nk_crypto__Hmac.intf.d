lib/nk_crypto/hmac.mli:
