let block_size = 64

let normalize_key key =
  let key = if String.length key > block_size then Sha256.digest key else key in
  let padded = Bytes.make block_size '\x00' in
  Bytes.blit_string key 0 padded 0 (String.length key);
  Bytes.to_string padded

let xor_pad key byte = String.map (fun c -> Char.chr (Char.code c lxor byte)) key

let mac ~key msg =
  let key = normalize_key key in
  let inner = Sha256.digest (xor_pad key 0x36 ^ msg) in
  Sha256.digest (xor_pad key 0x5c ^ inner)

let mac_hex ~key msg = Sha256.hex (mac ~key msg)

let verify ~key ~msg ~mac:expected =
  let actual = mac ~key msg in
  if String.length actual <> String.length expected then false
  else begin
    let diff = ref 0 in
    String.iteri
      (fun i c -> diff := !diff lor (Char.code c lxor Char.code expected.[i]))
      actual;
    !diff = 0
  end
