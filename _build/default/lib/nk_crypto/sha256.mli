(** Pure-OCaml SHA-256 (FIPS 180-4).

    Backs the [X-Content-SHA256] integrity header (§6) and DHT node /
    content identifiers in the overlay. *)

type ctx

val init : unit -> ctx

val update : ctx -> string -> unit
(** Feed bytes; may be called repeatedly. *)

val finalize : ctx -> string
(** Returns the 32-byte raw digest. The context must not be reused. *)

val digest : string -> string
(** One-shot raw 32-byte digest. *)

val hex : string -> string
(** Lowercase hex encoding of arbitrary bytes (2 chars per byte). *)

val digest_hex : string -> string
(** [hex (digest s)]. *)
