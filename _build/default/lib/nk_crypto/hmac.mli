(** HMAC-SHA256 (RFC 2104).

    Models the [X-Signature] freshness signature of §6: the trusted
    registry holds the key, so a valid MAC plays the role of the
    publisher's signature over content hash + cache-control headers. *)

val mac : key:string -> string -> string
(** Raw 32-byte MAC. *)

val mac_hex : key:string -> string -> string

val verify : key:string -> msg:string -> mac:string -> bool
(** Constant-shape comparison of a raw MAC. *)
