lib/nk_policy/policy.ml: List Nk_http Nk_regex Nk_script Option Predicate
