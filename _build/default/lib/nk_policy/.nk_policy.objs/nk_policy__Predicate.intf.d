lib/nk_policy/predicate.mli: Nk_http Nk_regex
