lib/nk_policy/script_bridge.mli: Nk_script Policy
