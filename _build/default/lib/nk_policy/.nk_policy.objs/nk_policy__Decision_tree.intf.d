lib/nk_policy/decision_tree.mli: Nk_http Policy
