lib/nk_policy/policy.mli: Nk_http Nk_regex Nk_script
