lib/nk_policy/decision_tree.ml: Hashtbl List Nk_http Policy String
