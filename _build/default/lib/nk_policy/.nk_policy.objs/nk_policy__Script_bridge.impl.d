lib/nk_policy/script_bridge.ml: List Nk_regex Nk_script Policy
