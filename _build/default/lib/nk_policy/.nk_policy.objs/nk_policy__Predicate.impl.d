lib/nk_policy/predicate.ml: List Nk_http Nk_regex Nk_util String
