(** The individual predicate forms policies are built from (§3.1):
    URL prefixes, client CIDR blocks / domain suffixes, HTTP methods,
    and header regexes. Each matcher returns a specificity score —
    higher is more specific — or [None] when the value does not match;
    scores feed the closest-match selection. *)

val url : pattern:string -> Nk_http.Url.t -> int option
(** "host/pathprefix" matching; score grows with host label count and
    matched path prefix length. *)

val client : pattern:string -> Nk_http.Ip.client -> int option
(** CIDR patterns score by prefix length; domain suffixes by label
    count. *)

val meth : pattern:string -> Nk_http.Method_.t -> int option

val header : name:string -> regex:Nk_regex.Regex.t -> Nk_http.Headers.t -> int option
(** Matches when the header is present and the regex finds a match in
    its value. *)

val best : ('a -> int option) -> 'a list -> int option
(** Disjunction over a value list: best (highest) score of any match;
    [None] when nothing matches. *)
