open Nk_script.Value

type registry = { mutable items : Policy.t list; mutable next_order : int }

let create_registry () = { items = []; next_order = 0 }

let policies r = List.rev r.items

let string_list_field o name =
  match obj_get o name with
  | Vundefined | Vnull -> []
  | Vstr s -> [ s ]
  | Varr a ->
    List.map
      (function Vstr s -> s | v -> error "%s: expected string, got %s" name (type_name v))
      (arr_to_list a)
  | v -> error "%s: expected string or array, got %s" name (type_name v)

let handler_field o name =
  match obj_get o name with
  | Vundefined | Vnull -> None
  | Vfun _ as f -> Some f
  | v -> error "%s: expected function, got %s" name (type_name v)

let headers_field o =
  match obj_get o "headers" with
  | Vundefined | Vnull -> []
  | Vobj ho ->
    List.map
      (fun key ->
        match obj_get ho key with
        | Vstr pattern -> (
          ( key,
            try Nk_regex.Regex.compile pattern
            with Nk_regex.Regex.Parse_error msg ->
              error "headers.%s: bad regex: %s" key msg ))
        | v -> error "headers.%s: expected regex string, got %s" key (type_name v))
      (obj_keys ho)
  | v -> error "headers: expected object, got %s" (type_name v)

let of_object ~order o =
  {
    Policy.urls = string_list_field o "url";
    clients = string_list_field o "client";
    methods = string_list_field o "method";
    headers = headers_field o;
    on_request = handler_field o "onRequest";
    on_response = handler_field o "onResponse";
    next_stages = string_list_field o "nextStages";
    order;
  }

let install registry ctx =
  let ctor =
    native "Policy" (fun _ _ ->
        let o = new_obj () in
        let self = Vobj o in
        obj_set o "register"
          (native "register" (fun this _ ->
               let target = match this with Some (Vobj t) -> t | _ -> o in
               let policy = of_object ~order:registry.next_order target in
               registry.next_order <- registry.next_order + 1;
               registry.items <- policy :: registry.items;
               Vundefined));
        self)
  in
  Nk_script.Interp.define_global ctx "Policy" ctor
