type node = {
  children : (string, node) Hashtbl.t; (* edge label: next host label (TLD first) *)
  mutable here : Policy.t list; (* policies whose URL host pattern ends at this node *)
}

type t = { root : node; mutable count : int }

let new_node () = { children = Hashtbl.create 4; here = [] }

(* Host labels in matching order: "med.nyu.edu" -> ["edu"; "nyu"; "med"].
   A pattern placed at its label path matches every request host that has
   those labels as a suffix, which is exactly subdomain matching. *)
let rev_labels host = List.rev (String.split_on_char '.' (String.lowercase_ascii host))

let host_of_pattern pattern =
  match String.index_opt pattern '/' with
  | Some i -> String.sub pattern 0 i
  | None -> pattern

let insert root labels policy =
  let rec go node = function
    | [] -> node.here <- policy :: node.here
    | label :: rest ->
      let child =
        match Hashtbl.find_opt node.children label with
        | Some c -> c
        | None ->
          let c = new_node () in
          Hashtbl.add node.children label c;
          c
      in
      go child rest
  in
  go root labels

let build policies =
  let root = new_node () in
  List.iter
    (fun (p : Policy.t) ->
      match p.Policy.urls with
      | [] -> root.here <- p :: root.here (* wildcard: reachable from every host *)
      | urls ->
        List.iter (fun pattern -> insert root (rev_labels (host_of_pattern pattern)) p) urls)
    policies;
  { root; count = List.length policies }

let find_closest t (req : Nk_http.Message.request) =
  (* Collect candidates along the host-label path, then run the full
     predicate evaluation only on those. *)
  let labels = rev_labels req.Nk_http.Message.url.Nk_http.Url.host in
  let candidates = ref [] in
  let rec walk node = function
    | [] -> List.iter (fun p -> candidates := p :: !candidates) node.here
    | label :: rest ->
      List.iter (fun p -> candidates := p :: !candidates) node.here;
      (match Hashtbl.find_opt node.children label with
       | Some child -> walk child rest
       | None -> ())
  in
  walk t.root labels;
  Policy.closest_match !candidates req

let policy_count t = t.count

let node_count t =
  let rec count node =
    Hashtbl.fold (fun _ child acc -> acc + count child) node.children 1
  in
  count t.root
