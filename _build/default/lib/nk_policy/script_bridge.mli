(** The script-facing [Policy] vocabulary.

    Scripts instantiate policy objects and activate them with
    [register()], as in Fig. 3:
    {v
      p = new Policy();
      p.url = ["med.nyu.edu"];
      p.onResponse = function() { ... };
      p.register();
    v} *)

type registry
(** Collects the policies a script registers while it is evaluated;
    one registry per pipeline stage. *)

val create_registry : unit -> registry

val policies : registry -> Policy.t list
(** In registration order. *)

val install : registry -> Nk_script.Interp.ctx -> unit
(** Define the global [Policy] constructor in the context; every
    [register()] call lands in [registry]. *)

val of_object : order:int -> Nk_script.Value.obj -> Policy.t
(** Convert a policy script object to its OCaml form; raises
    [Nk_script.Value.Script_error] on malformed properties (e.g. a
    non-function handler or an invalid header regex). *)
