(** The predicate-matching decision tree of §4.

    The prototype "trades off space for dynamic predicate evaluation
    performance": while registering policy objects the matcher builds a
    tree indexed by the components of the resource URL's server name;
    lookup walks the request host's labels and only evaluates the
    remaining predicate components of policies reachable along that
    path. Semantics are identical to [Policy.closest_match] (a QCheck
    property in the test suite asserts the equivalence). *)

type t

val build : Policy.t list -> t

val find_closest : t -> Nk_http.Message.request -> Policy.t option

val policy_count : t -> int

val node_count : t -> int
(** Size of the host trie, for the space/time tradeoff ablation. *)
