type t = {
  urls : string list;
  clients : string list;
  methods : string list;
  headers : (string * Nk_regex.Regex.t) list;
  on_request : Nk_script.Value.t option;
  on_response : Nk_script.Value.t option;
  next_stages : string list;
  order : int;
}

let make ?(urls = []) ?(clients = []) ?(methods = []) ?(headers = []) ?on_request ?on_response
    ?(next_stages = []) ?(order = 0) () =
  {
    urls;
    clients;
    methods;
    headers = List.map (fun (name, pat) -> (name, Nk_regex.Regex.compile pat)) headers;
    on_request;
    on_response;
    next_stages;
    order;
  }

type score = int * int * int * int

let matches t (req : Nk_http.Message.request) =
  let property values f =
    match values with
    | [] -> Some 0 (* null property: treated as a truth value *)
    | _ -> Predicate.best f values
  in
  let ( let* ) = Option.bind in
  let* url_score = property t.urls (fun pattern -> Predicate.url ~pattern req.Nk_http.Message.url) in
  let* client_score =
    property t.clients (fun pattern -> Predicate.client ~pattern req.Nk_http.Message.client)
  in
  let* meth_score =
    property t.methods (fun pattern -> Predicate.meth ~pattern req.Nk_http.Message.meth)
  in
  (* Headers: conjunction over all listed headers. *)
  let* header_score =
    List.fold_left
      (fun acc (name, regex) ->
        let* acc = acc in
        let* s = Predicate.header ~name ~regex req.Nk_http.Message.headers in
        Some (acc + s))
      (Some 0) t.headers
  in
  Some (url_score, client_score, meth_score, header_score)

let compare_candidates (score_a, order_a) (score_b, order_b) =
  match compare (score_a : score) score_b with 0 -> compare order_a order_b | c -> c

let closest_match policies req =
  List.fold_left
    (fun best policy ->
      match matches policy req with
      | None -> best
      | Some score -> (
        match best with
        | Some (best_score, best_order, _) when
            compare_candidates (best_score, best_order) (score, policy.order) >= 0 ->
          best
        | _ -> Some (score, policy.order, policy)))
    None policies
  |> Option.map (fun (_, _, p) -> p)
