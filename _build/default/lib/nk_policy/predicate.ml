let count_labels host = List.length (String.split_on_char '.' host)

let url ~pattern u =
  let pattern = String.lowercase_ascii pattern in
  let phost, ppath =
    match String.index_opt pattern '/' with
    | Some i -> (String.sub pattern 0 i, String.sub pattern i (String.length pattern - i))
    | None -> (pattern, "/")
  in
  let host = u.Nk_http.Url.host in
  let host_ok =
    phost = host || Nk_util.Strutil.ends_with ~suffix:("." ^ phost) host
  in
  if host_ok && Nk_util.Strutil.starts_with ~prefix:ppath u.Nk_http.Url.path then
    Some ((count_labels phost * 1024) + String.length ppath)
  else None

let client ~pattern (c : Nk_http.Ip.client) =
  if pattern = "" then None
  else if pattern.[0] >= '0' && pattern.[0] <= '9' then
    match Nk_http.Ip.cidr_of_string pattern with
    | Ok cidr when Nk_http.Ip.cidr_contains cidr c.Nk_http.Ip.ip ->
      (* Score by prefix length so /32 beats /8. *)
      let bits =
        match Nk_util.Strutil.split_first '/' pattern with
        | Some (_, b) -> ( match int_of_string_opt b with Some v -> v | None -> 32)
        | None -> 32
      in
      Some bits
    | _ -> None
  else
    match c.Nk_http.Ip.hostname with
    | None -> None
    | Some host ->
      let host = String.lowercase_ascii host in
      let pattern = String.lowercase_ascii pattern in
      if host = pattern || Nk_util.Strutil.ends_with ~suffix:("." ^ pattern) host then
        Some (count_labels pattern * 8)
      else None

let meth ~pattern m =
  if Nk_http.Method_.equal (Nk_http.Method_.of_string pattern) m then Some 1 else None

let header ~name ~regex headers =
  match Nk_http.Headers.get headers name with
  | None -> None
  | Some value -> if Nk_regex.Regex.matches regex value then Some 1 else None

let best f values =
  List.fold_left
    (fun acc v ->
      match (acc, f v) with
      | None, s -> s
      | s, None -> s
      | Some a, Some b -> Some (max a b))
    None values
