(** Policy objects: predicates paired with event handlers (§3.1).

    A policy matches a request when every non-empty predicate property
    matches (conjunction); within a property, any listed value may match
    (disjunction); empty properties are treated as truth values. The
    closest valid match is selected with precedence "resource URLs,
    followed by client addresses, then HTTP methods, and finally
    arbitrary headers". *)

type t = {
  urls : string list; (** URL prefixes ("host/path") *)
  clients : string list; (** CIDR blocks or domain suffixes *)
  methods : string list;
  headers : (string * Nk_regex.Regex.t) list; (** name, value regex *)
  on_request : Nk_script.Value.t option; (** function value or [None] (no-op) *)
  on_response : Nk_script.Value.t option;
  next_stages : string list; (** script URLs to schedule after this stage *)
  order : int; (** registration order; later registrations win ties *)
}

val make :
  ?urls:string list ->
  ?clients:string list ->
  ?methods:string list ->
  ?headers:(string * string) list ->
  ?on_request:Nk_script.Value.t ->
  ?on_response:Nk_script.Value.t ->
  ?next_stages:string list ->
  ?order:int ->
  unit ->
  t
(** Header regexes are compiled here; raises [Nk_regex.Regex.Parse_error]
    on a bad pattern. *)

type score = int * int * int * int
(** Specificity as (url, client, method, headers) — compared
    lexicographically, mirroring the paper's precedence order. *)

val matches : t -> Nk_http.Message.request -> score option
(** [None] when some non-empty property fails to match. *)

val closest_match : t list -> Nk_http.Message.request -> t option
(** Reference (brute force) selection: highest score; ties go to the
    latest registration. [None] when no policy is valid. *)

val compare_candidates : (score * int) -> (score * int) -> int
(** Ordering used by both the reference matcher and the decision tree:
    score first, then registration order. *)
