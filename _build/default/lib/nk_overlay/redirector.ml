type t = { net : Nk_sim.Net.t; mutable proxies : Nk_sim.Net.host list }

let create net = { net; proxies = [] }

let add_proxy t host =
  if not (List.exists (fun h -> Nk_sim.Net.host_name h = Nk_sim.Net.host_name host) t.proxies)
  then t.proxies <- host :: t.proxies

let remove_proxy t host =
  t.proxies <-
    List.filter (fun h -> Nk_sim.Net.host_name h <> Nk_sim.Net.host_name host) t.proxies

let proxies t = t.proxies

let pick t ?(spread = 1) ~rng ~client () =
  match t.proxies with
  | [] -> None
  | proxies ->
    let probe_size = 1024 in
    let scored =
      List.map
        (fun p ->
          (Nk_sim.Net.transfer_time_estimate t.net ~src:client ~dst:p ~size:probe_size, p))
        proxies
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    (* "Close-by": only proxies comparable to the nearest count as
       spread candidates, so load balancing never sends a client across
       the world. *)
    let best = match scored with (s, _) :: _ -> s | [] -> 0.0 in
    let close = List.filter (fun (s, _) -> s <= (best *. 2.0) +. 1e-4) scored in
    let k = max 1 (min spread (List.length close)) in
    let nearest = List.filteri (fun i _ -> i < k) close in
    let _, choice = List.nth nearest (Nk_util.Prng.int rng (List.length nearest)) in
    Some choice
