(** DNS-style redirection of clients to nearby edge nodes (§3, §3.4).

    Coral's optional DNS redirection is modeled by choosing, per client,
    the proxy with the lowest estimated transfer time; [pick ~spread]
    randomizes among the closest few for the paper's "randomly chosen,
    but close-by proxies" load balancing (§5.2). *)

type t

val create : Nk_sim.Net.t -> t

val add_proxy : t -> Nk_sim.Net.host -> unit

val remove_proxy : t -> Nk_sim.Net.host -> unit

val proxies : t -> Nk_sim.Net.host list

val pick : t -> ?spread:int -> rng:Nk_util.Prng.t -> client:Nk_sim.Net.host -> unit -> Nk_sim.Net.host option
(** The nearest proxy, or with [spread = k > 1] a uniform choice among
    the [k] nearest. [None] when no proxies are registered. *)
