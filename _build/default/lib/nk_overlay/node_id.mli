(** Identifiers on the overlay's circular key space.

    Both node names and content URLs hash onto the same 63-bit ring
    (the top bits of their SHA-256 digest), as in consistent-hashing
    DHTs. *)

type t

val of_string : string -> t
(** Hash arbitrary bytes (a node name or a URL) onto the ring. *)

val of_int : int -> t
(** For tests: a raw ring position (non-negative). *)

val to_int : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val to_hex : t -> string

val distance : t -> t -> int
(** Clockwise distance from the first id to the second. *)

val add_pow2 : t -> int -> t
(** [add_pow2 id i] is [id + 2^i] on the ring — finger-table targets. *)

val in_interval : t -> left:t -> right:t -> bool
(** True when the id lies in the clockwise-open interval (left, right]. *)
