lib/nk_overlay/ring.ml: Array List Node_id
