lib/nk_overlay/node_id.ml: Char Int Nk_crypto Printf String
