lib/nk_overlay/redirector.ml: List Nk_sim Nk_util
