lib/nk_overlay/redirector.mli: Nk_sim Nk_util
