lib/nk_overlay/ring.mli: Node_id
