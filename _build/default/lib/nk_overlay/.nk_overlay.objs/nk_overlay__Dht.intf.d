lib/nk_overlay/dht.mli: Node_id Ring
