lib/nk_overlay/dht.ml: Hashtbl List Node_id Printf Ring
