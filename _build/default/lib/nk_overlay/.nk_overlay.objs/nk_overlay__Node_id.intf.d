lib/nk_overlay/node_id.mli:
