type t = int (* 63-bit, non-negative *)

let ring_bits = 62

let ring_size = 1 lsl ring_bits

let mask = ring_size - 1

let of_string s =
  let digest = Nk_crypto.Sha256.digest s in
  let acc = ref 0 in
  for i = 0 to 7 do
    acc := (!acc lsl 8) lor Char.code digest.[i]
  done;
  !acc land mask

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative";
  i land mask

let to_int t = t

let compare = Int.compare

let equal = Int.equal

let to_hex t = Printf.sprintf "%016x" t

let distance a b = (b - a) land mask

let add_pow2 t i =
  if i < 0 || i >= ring_bits then invalid_arg "Node_id.add_pow2: bad exponent";
  (t + (1 lsl i)) land mask

let in_interval x ~left ~right =
  if left = right then true (* full circle *)
  else distance left x > 0 && distance left x <= distance left right
