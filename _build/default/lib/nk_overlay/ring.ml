type t = { mutable members : Node_id.t array (* sorted *) }

let create () = { members = [||] }

let mem t id = Array.exists (Node_id.equal id) t.members

let join t id =
  if not (mem t id) then begin
    let members = Array.append t.members [| id |] in
    Array.sort Node_id.compare members;
    t.members <- members
  end

let leave t id =
  t.members <- Array.of_list (List.filter (fun x -> not (Node_id.equal x id)) (Array.to_list t.members))

let size t = Array.length t.members

let nodes t = Array.to_list t.members

let successor t key =
  let n = Array.length t.members in
  if n = 0 then None
  else begin
    (* binary search: first member >= key, else wrap to members.(0) *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Node_id.compare t.members.(mid) key < 0 then lo := mid + 1 else hi := mid
    done;
    Some (if !lo = n then t.members.(0) else t.members.(!lo))
  end

(* The finger of [node] for exponent [i]: successor(node + 2^i). *)
let finger t node i = successor t (Node_id.add_pow2 node i)

let lookup_path t ~from ~key =
  match successor t key with
  | None -> []
  | Some owner ->
    if Node_id.equal owner from then []
    else begin
      (* Greedy: repeatedly jump to the finger that gets closest to the
         key without overshooting its successor; fall back to the
         immediate successor, guaranteeing progress. *)
      let rec route current acc guard =
        if Node_id.equal current owner || guard = 0 then List.rev acc
        else begin
          let best = ref None in
          for i = 61 downto 0 do
            if !best = None then
              match finger t current i with
              | Some f
                when (not (Node_id.equal f current))
                     && Node_id.distance current f < Node_id.distance current key
                     && Node_id.distance current f > 0 ->
                best := Some f
              | _ -> ()
          done;
          let next = match !best with Some f -> f | None -> owner in
          route next (next :: acc) (guard - 1)
        end
      in
      route from [] (Array.length t.members + 64)
    end
