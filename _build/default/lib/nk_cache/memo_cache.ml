type 'a t = {
  table : (string, float * 'a) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 32; hits = 0; misses = 0 }

let find t ~now key =
  match Hashtbl.find_opt t.table key with
  | Some (expiry, v) when expiry > now ->
    t.hits <- t.hits + 1;
    Some v
  | Some _ ->
    Hashtbl.remove t.table key;
    t.misses <- t.misses + 1;
    None
  | None ->
    t.misses <- t.misses + 1;
    None

let put t ~key ~expiry v = Hashtbl.replace t.table key (expiry, v)

let remove t key = Hashtbl.remove t.table key

let clear t = Hashtbl.reset t.table

let size t = Hashtbl.length t.table

let hits t = t.hits

let misses t = t.misses
