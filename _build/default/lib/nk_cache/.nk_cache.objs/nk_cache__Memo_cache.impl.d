lib/nk_cache/memo_cache.ml: Hashtbl
