lib/nk_cache/http_cache.ml: Hashtbl Nk_http
