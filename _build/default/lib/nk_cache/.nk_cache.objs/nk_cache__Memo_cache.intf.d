lib/nk_cache/memo_cache.mli:
