lib/nk_cache/http_cache.mli: Nk_http
