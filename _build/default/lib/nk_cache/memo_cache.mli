(** Generic TTL'd memo cache.

    Backs the in-memory decision-tree cache of §4 ("decision trees are
    cached in a dedicated in-memory cache") and the negative cache for
    sites that publish no [nakika.js]. *)

type 'a t

val create : unit -> 'a t

val find : 'a t -> now:float -> string -> 'a option

val put : 'a t -> key:string -> expiry:float -> 'a -> unit

val remove : 'a t -> string -> unit

val clear : 'a t -> unit

val size : 'a t -> int

val hits : 'a t -> int

val misses : 'a t -> int
