(** The §5.1 resource-control experiments: a flash crowd hammering a
    well-behaved Match-1 site in a tight loop, optionally joined by a
    misbehaving site whose script "consumes all available memory by
    repeatedly doubling a string". *)

val good_host : string

val bomb_host : string

val install_good_site : Nk_node.Origin.t -> unit
(** The 2,096-byte static page plus a Match-1 site script. *)

val install_bomb_site : Nk_node.Origin.t -> unit
(** A page whose site script is the memory bomb. *)

val memory_bomb_script : string

val good_request : unit -> Nk_http.Message.request

val bomb_request : unit -> Nk_http.Message.request
