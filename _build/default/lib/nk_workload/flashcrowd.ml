let good_host = "popular.example.org"

let bomb_host = "bomb.example.org"

let memory_bomb_script =
  Printf.sprintf
    {|
var p = new Policy();
p.url = ["%s"];
p.onResponse = function() {
  var s = "xxxxxxxxxxxxxxxx";
  while (true) { s = s + s; }
}
p.register();
|}
    bomb_host

let install_good_site origin =
  Static_page.install origin;
  Nk_node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300
    (Static_page.pred_script ~host:good_host ~n:0 ~matching:true)

let install_bomb_site origin =
  Nk_node.Origin.set_static origin ~path:"/index.html" ~content_type:"text/html" ~max_age:300
    "<html>pay no attention to the script behind the curtain</html>";
  Nk_node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300 memory_bomb_script

let good_request () = Nk_http.Message.request (Printf.sprintf "http://%s/index.html" good_host)

let bomb_request () = Nk_http.Message.request (Printf.sprintf "http://%s/index.html" bomb_host)
