type mode = Single_server | Edge

let host = "simm.med.nyu.edu"

let modules = 5

let lectures_per_module = 20

let videos = 25

let video_bytes = 350_000

let video_bitrate = 140_000.0 /. 8.0

let conditions =
  [| "appendicitis"; "cholecystitis"; "diverticulitis"; "pancreatitis"; "hernia" |]

let section_names =
  [| "presentation"; "workup"; "imaging"; "pathology"; "treatment"; "followup" |]

let lecture_xml ~module_ ~lecture ~student =
  let buf = Buffer.create 8192 in
  let condition = conditions.((module_ - 1) mod Array.length conditions) in
  Buffer.add_string buf
    (Printf.sprintf "<lecture module=\"%d\" number=\"%d\" condition=\"%s\">" module_ lecture
       condition);
  Buffer.add_string buf
    (Printf.sprintf "<title>Module %d, Lecture %d: %s</title>" module_ lecture condition);
  Buffer.add_string buf (Printf.sprintf "<student>%s</student>" student);
  Array.iteri
    (fun si section ->
      Buffer.add_string buf (Printf.sprintf "<section name=\"%s\">" section);
      for para = 1 to 5 do
        Buffer.add_string buf
          (Printf.sprintf
             "<para>In the %s phase of %s (module %d, lecture %d, part %d.%d), the \
              clinical narrative continues with findings, annotated imaging studies, and \
              guidance tailored to the learner's progress through the curriculum. Review \
              the attached materials before proceeding to the assessment.</para>"
             section condition module_ lecture si para)
      done;
      Buffer.add_string buf (Printf.sprintf "<assessment section=\"%s\" questions=\"4\"/>" section);
      Buffer.add_string buf "</section>")
    section_names;
  Buffer.add_string buf "</lecture>";
  Buffer.contents buf

let stylesheet =
  [
    { Nk_vocab.Xml.tag = "lecture"; html_tag = "article"; html_class = Some "lecture" };
    { Nk_vocab.Xml.tag = "title"; html_tag = "h1"; html_class = None };
    { Nk_vocab.Xml.tag = "student"; html_tag = "p"; html_class = Some "student" };
    { Nk_vocab.Xml.tag = "section"; html_tag = "section"; html_class = None };
    { Nk_vocab.Xml.tag = "para"; html_tag = "p"; html_class = None };
    { Nk_vocab.Xml.tag = "assessment"; html_tag = "aside"; html_class = Some "assessment" };
  ]

let render_html ~module_ ~lecture ~student =
  Nk_vocab.Xml.to_html stylesheet (Nk_vocab.Xml.parse_exn (lecture_xml ~module_ ~lecture ~student))

let video_body k =
  (* Deterministic pseudo-media bytes. *)
  let buf = Buffer.create video_bytes in
  let rng = Nk_util.Prng.create (1000 + k) in
  while Buffer.length buf < video_bytes do
    Buffer.add_char buf (Char.chr (Nk_util.Prng.int rng 256))
  done;
  Buffer.contents buf

let query_param (req : Nk_http.Message.request) name =
  Nk_http.Url.query_get req.Nk_http.Message.url name

let parse_lecture_path path =
  (* "/content/m3/lec7.xml" or "/rendered/m3/lec7.html" *)
  match String.split_on_char '/' path with
  | [ ""; _kind; m; lec ] -> (
    let parse_num prefix s suffix =
      if
        Nk_util.Strutil.starts_with ~prefix s
        && Nk_util.Strutil.ends_with ~suffix s
        && String.length s > String.length prefix + String.length suffix
      then
        int_of_string_opt
          (String.sub s (String.length prefix)
             (String.length s - String.length prefix - String.length suffix))
      else None
    in
    match (parse_num "m" m "", parse_num "lec" lec ".xml", parse_num "lec" lec ".html") with
    | Some m, Some k, None -> Some (m, k)
    | Some m, None, Some k -> Some (m, k)
    | _ -> None)
  | _ -> None

let nakika_js =
  Printf.sprintf
    {|
var p = new Policy();
p.url = ["%s/content/"];
p.onResponse = function() {
  if (Response.contentType != "text/xml") { return; }
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  var sheet = { lecture: "article.lecture", title: "h1", student: "p.student",
                section: "section", para: "p", assessment: "aside.assessment" };
  var html = Xml.toHtml(body, sheet);
  Response.setHeader("Content-Type", "text/html");
  Response.write(html);
}
p.register();
|}
    host

let install_origin origin =
  (* Personalized XML: what the edge deployment fetches. *)
  Nk_node.Origin.set_dynamic origin ~prefix:"/content/" ~cpu:0.002 (fun req ->
      match parse_lecture_path req.Nk_http.Message.url.Nk_http.Url.path with
      | None -> Nk_http.Message.error_response 404
      | Some (m, k) ->
        let student = Option.value (query_param req "student") ~default:"anonymous" in
        Nk_http.Message.response
          ~headers:
            [ ("Content-Type", "text/xml"); ("Cache-Control", "max-age=120") ]
          ~body:(lecture_xml ~module_:m ~lecture:k ~student)
          ());
  (* Personalized + rendered HTML: the single-server deployment. *)
  Nk_node.Origin.set_dynamic origin ~prefix:"/rendered/" ~cpu:0.008 (fun req ->
      match parse_lecture_path req.Nk_http.Message.url.Nk_http.Url.path with
      | None -> Nk_http.Message.error_response 404
      | Some (m, k) ->
        let student = Option.value (query_param req "student") ~default:"anonymous" in
        Nk_http.Message.response
          ~headers:
            [ ("Content-Type", "text/html"); ("Cache-Control", "max-age=120") ]
          ~body:(render_html ~module_:m ~lecture:k ~student)
          ());
  for k = 1 to videos do
    Nk_node.Origin.set_static origin
      ~path:(Printf.sprintf "/media/v%d.nkv" k)
      ~content_type:"video/nkv" ~max_age:3600 (video_body k)
  done;
  Nk_node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300 nakika_js


let make_request ~rng ~mode ~student =
  if Nk_util.Prng.int rng 100 < 15 then
    Nk_http.Message.request
      (Printf.sprintf "http://%s/media/v%d.nkv" host (1 + Nk_util.Prng.int rng videos))
  else begin
    let m = 1 + Nk_util.Prng.int rng modules in
    let k = 1 + Nk_util.Prng.int rng lectures_per_module in
    match mode with
    | Single_server ->
      Nk_http.Message.request
        (Printf.sprintf "http://%s/rendered/m%d/lec%d.html?student=%s" host m k student)
    | Edge ->
      Nk_http.Message.request
        (Printf.sprintf "http://%s/content/m%d/lec%d.xml?student=%s" host m k student)
  end

let is_video (req : Nk_http.Message.request) =
  Nk_util.Strutil.starts_with ~prefix:"/media/" req.Nk_http.Message.url.Nk_http.Url.path
