type mode = Php | Nakika

let host = "www.spec99.org"

let users = 100

let static_files = 30

let static_body i =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf (Printf.sprintf "<html><head><title>File %d</title></head><body>" i);
  for line = 1 to 80 do
    Buffer.add_string buf
      (Printf.sprintf "<p>SPECweb99 class file %d line %d: static workload content.</p>" i line)
  done;
  Buffer.add_string buf "</body></html>";
  Buffer.contents buf

let profile_of user =
  Printf.sprintf "age=%d;plan=standard;mail=%s@example.org" (20 + (Hashtbl.hash user mod 50)) user

(* What the dynamic pages compute, shared by both variants so the PHP
   origin and the edge NKP produce comparable content. *)
let register_page ~user ~registered =
  Printf.sprintf "<html><body><h1>Registration</h1><p>%s: %s</p></body></html>" user
    (if registered then "registered" else "already registered")

let profile_page ~user ~profile =
  Printf.sprintf "<html><body><h1>Profile %s</h1><p>%s</p></body></html>" user
    (Option.value profile ~default:"unknown user")

(* SPECweb99 dynamic scripts do real per-request work (ad rotation,
   custom-GET processing); model it with a deterministic compute loop
   so the edge pays CPU comparable to the PHP origin. *)
let dynamic_work =
  {|var acc = 0;
for (var w = 0; w < 10000; w++) { acc = (acc * 31 + w) - ((acc * 31 + w) / 65521) * 65521; }|}

let register_nkp =
  Printf.sprintf
    {|<html><body><h1>Registration</h1><p><?nkp
%s
var user = Request.query("user");
var profile = Request.query("profile");
var key = "user:" + user;
var existing = HardState.get(key);
var message = user + ": already registered";
if (existing == null) {
  HardState.put(key, profile);
  message = user + ": registered";
}
message
?></p></body></html>|}
    dynamic_work

let profile_nkp =
  Printf.sprintf
    {|<html><body><h1>Profile <?nkp Request.query("user") ?></h1><p><?nkp
%s
var prof = HardState.get("user:" + Request.query("user"));
(prof == null) ? "unknown user" : prof
?></p></body></html>|}
    dynamic_work

let nakika_js =
  Printf.sprintf
    {|
var p = new Policy();
p.url = ["%s/nkp/"];
p.nextStages = ["http://nakika.net/nkp.js"];
p.register();
|}
    host

let install_origin origin =
  (* PHP-style dynamic handlers: origin CPU per request, uncacheable. *)
  let registered : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let q (req : Nk_http.Message.request) name =
    Option.value (Nk_http.Url.query_get req.Nk_http.Message.url name) ~default:""
  in
  let dynamic_response body =
    Nk_http.Message.response
      ~headers:[ ("Content-Type", "text/html"); ("Cache-Control", "no-store") ]
      ~body ()
  in
  Nk_node.Origin.set_dynamic origin ~prefix:"/cgi/register" ~cpu:0.03 (fun req ->
      let user = q req "user" in
      let fresh = not (Hashtbl.mem registered user) in
      if fresh then Hashtbl.replace registered user (q req "profile");
      dynamic_response (register_page ~user ~registered:fresh));
  Nk_node.Origin.set_dynamic origin ~prefix:"/cgi/profile" ~cpu:0.03 (fun req ->
      let user = q req "user" in
      dynamic_response (profile_page ~user ~profile:(Hashtbl.find_opt registered user)));
  (* Na Kika Pages sources: static, cacheable; the edge executes them. *)
  Nk_node.Origin.set_static origin ~path:"/nkp/register.nkp" ~content_type:"text/nkp"
    ~max_age:300 register_nkp;
  Nk_node.Origin.set_static origin ~path:"/nkp/profile.nkp" ~content_type:"text/nkp"
    ~max_age:300 profile_nkp;
  Nk_node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300 nakika_js;
  for i = 1 to static_files do
    Nk_node.Origin.set_static origin
      ~path:(Printf.sprintf "/files/f%d.html" i)
      ~content_type:"text/html" ~max_age:600 (static_body i)
  done

let make_request ~rng ~mode =
  let r = Nk_util.Prng.int rng 100 in
  if r < 20 then
    Nk_http.Message.request
      (Printf.sprintf "http://%s/files/f%d.html" host (1 + Nk_util.Prng.int rng static_files))
  else begin
    let user = Printf.sprintf "u%d" (Nk_util.Prng.int rng users) in
    let register = r < 36 (* 20% of the dynamic requests are registrations *) in
    match (mode, register) with
    | Php, true ->
      Nk_http.Message.request
        (Printf.sprintf "http://%s/cgi/register?user=%s&profile=%s" host user (profile_of user))
    | Php, false ->
      Nk_http.Message.request (Printf.sprintf "http://%s/cgi/profile?user=%s" host user)
    | Nakika, true ->
      Nk_http.Message.request
        (Printf.sprintf "http://%s/nkp/register.nkp?user=%s&profile=%s" host user
           (profile_of user))
    | Nakika, false ->
      Nk_http.Message.request (Printf.sprintf "http://%s/nkp/profile.nkp?user=%s" host user)
  end

let is_dynamic (req : Nk_http.Message.request) =
  let path = req.Nk_http.Message.url.Nk_http.Url.path in
  Nk_util.Strutil.starts_with ~prefix:"/cgi/" path
  || Nk_util.Strutil.starts_with ~prefix:"/nkp/" path
