let page_bytes = 2096

let page_path = "/index.html"

let page_body =
  let skeleton_head =
    "<html><head><title>Search</title><meta charset=\"utf-8\"></head><body>"
  in
  let skeleton_tail = "</body></html>"
  in
  let filler_needed = page_bytes - String.length skeleton_head - String.length skeleton_tail in
  let filler = Buffer.create filler_needed in
  let words = [| "search"; "images"; "news"; "maps"; "mail"; "about"; "links"; "more" |] in
  let i = ref 0 in
  while Buffer.length filler < filler_needed do
    let w = words.(!i mod Array.length words) in
    let item = Printf.sprintf "<a href=\"/%s%d\">%s</a> " w !i w in
    if Buffer.length filler + String.length item <= filler_needed then Buffer.add_string filler item
    else Buffer.add_char filler '.';
    incr i
  done;
  let body = skeleton_head ^ Buffer.contents filler ^ skeleton_tail in
  assert (String.length body = page_bytes);
  body

let install origin =
  Nk_node.Origin.set_static origin ~path:page_path ~content_type:"text/html" ~max_age:300
    page_body

let pred_script ~host ~n ~matching =
  let buf = Buffer.create (n * 160) in
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         {|
var p%d = new Policy();
p%d.url = ["other%d.example.org/some/path"];
p%d.onRequest = function() { };
p%d.onResponse = function() { };
p%d.register();
|}
         i i i i i i)
  done;
  if matching then
    Buffer.add_string buf
      (Printf.sprintf
         {|
var pm = new Policy();
pm.url = ["%s"];
pm.onRequest = function() { };
pm.onResponse = function() { };
pm.register();
|}
         host);
  Buffer.contents buf
