(** The modified SPECweb99 workload of §5.3.

    80% dynamic / 20% static requests against either
    - [Php]: a single Apache+PHP-style origin that runs the dynamic
      scripts itself (expensive origin CPU, uncacheable responses), or
    - [Nakika]: the same content as Na Kika Pages — the origin serves
      cacheable [.nkp] sources and the edge executes them, managing
      user registrations and profiles in replicated hard state.

    The Na Kika version relies on the [nkp.js] stage hosted at
    nakika.net and on the [HardState] vocabulary. *)

type mode = Php | Nakika

val host : string
(** "www.spec99.org" *)

val users : int
(** Size of the simulated user population (registrations + lookups). *)

val static_files : int

val install_origin : Nk_node.Origin.t -> unit
(** Install both variants: [/cgi/...] dynamic handlers (PHP mode),
    [/nkp/...] page sources and [/nakika.js] (Na Kika mode), and the
    static file set. *)

val make_request : rng:Nk_util.Prng.t -> mode:mode -> Nk_http.Message.request
(** The 80/20 dynamic/static mix: dynamic requests register a user or
    look up a profile. *)

val is_dynamic : Nk_http.Message.request -> bool
