let image_transcoding =
  {|
var p = new Policy();
p.headers = { "User-Agent": "Nokia" };
p.onResponse = function() {
  var type = ImageTransformer.type(Response.contentType);
  if (type == null) { return; }
  var cached = Cache.lookup("phone:" + Request.url);
  if (cached != null) {
    Response.setHeader("Content-Type", cached.contentType);
    Response.write(cached.body);
    return;
  }
  var buff = null, body = new ByteArray();
  while ((buff = Response.read()) != null) { body.append(buff); }
  var dim = ImageTransformer.dimensions(body, type);
  if (dim.x > 176 || dim.y > 208) {
    var img;
    if (dim.x / 176 > dim.y / 208) {
      img = ImageTransformer.transform(body, type, "jpeg", 176, dim.y / dim.x * 208);
    } else {
      img = ImageTransformer.transform(body, type, "jpeg", dim.x / dim.y * 176, 208);
    }
    Response.setHeader("Content-Type", "image/jpeg");
    Response.setHeader("Content-Length", img.length);
    Response.write(img);
    Cache.store("phone:" + Request.url, "image/jpeg", img, 300);
  }
}
p.register();
|}

let blacklist_generator ~url =
  Printf.sprintf
    {|
var blacklist = fetchResource("%s");
if (blacklist.status == 200) {
  var entries = blacklist.body.split("\n");
  for (var i = 0; i < entries.length; i++) {
    var entry = entries[i].trim();
    if (entry.length == 0) { continue; }
    var code = "var b = new Policy();" +
               "b.url = [\"" + entry + "\"];" +
               "b.onRequest = function() { Request.terminate(403); };" +
               "b.register();";
    evalScript(code);
  }
}
var pass = new Policy();
pass.onRequest = function() { };
pass.register();
|}
    url

let annotations ~site ~target_site =
  Printf.sprintf
    {|
var p = new Policy();
p.url = ["%s"];
p.nextStages = ["http://%s/nakika.js"];
p.onRequest = function() {
  var marker = "/simm/";
  var at = Request.url.indexOf(marker);
  if (at >= 0) {
    Request.setUrl("http://%s/" + Request.url.substring(at + marker.length));
  }
}
p.onResponse = function() {
  if (Response.contentType == null || Response.contentType.indexOf("text/html") < 0) { return; }
  var body = "", c;
  while ((c = Response.read()) != null) { body += c; }
  var notes = HardState.get("notes:" + Request.url);
  var widget = "<aside class=\"postit\">" + ((notes == null) ? "no notes yet" : notes) + "</aside>";
  body = body.replace("</body>", widget + "</body>");
  body = body.replace("http://%s/", "http://%s/simm/");
  Response.write(body);
}
p.register();

var poster = new Policy();
poster.url = ["%s/annotate"];
poster.onRequest = function() {
  var key = "notes:http://%s/" + Request.query("target");
  var existing = HardState.get(key);
  var text = Request.query("text");
  HardState.put(key, (existing == null) ? text : existing + " | " + text);
  Request.respond(200, "text/plain", "noted");
}
poster.register();
|}
    site target_site target_site target_site site site target_site

let nkp = Nk_pipeline.Nkp.script

let loc source =
  String.split_on_char '\n' source
  |> List.filter (fun line -> String.trim line <> "")
  |> List.length

let all =
  [
    ("Na Kika Pages", nkp, 60);
    ("electronic annotations", annotations ~site:"notes.medcommunity.org" ~target_site:"simm.med.nyu.edu", 230);
    ("image transcoding", image_transcoding, 80);
    ("blacklist blocking", blacklist_generator ~url:"http://policy.nakika.net/blacklist.txt", 70);
  ]
