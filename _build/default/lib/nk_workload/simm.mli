(** The SIMMs: the web-based medical-education workload of §5.2.

    Synthetic stand-in for NYU's Surgical Interactive Multimedia
    Modules: five modules of personalized XML lectures (rendered to
    HTML by a stylesheet that is the same for all students) plus large
    multimedia objects streamed at a 140 Kbps bitrate.

    Two deployments are compared:
    - [Single_server]: the origin personalizes *and* renders
      (Tomcat/MySQL-style; the expensive path).
    - [Edge]: the origin only personalizes XML; rendering and media
      distribution are offloaded to Na Kika via [nakika_js]. *)

type mode = Single_server | Edge

val host : string
(** "simm.med.nyu.edu" *)

val modules : int
(** 5 modules (as deployed at NYU). *)

val lectures_per_module : int

val videos : int

val video_bytes : int
(** ~350 KB per media object. *)

val video_bitrate : float
(** 140 Kbps in bytes/second — the SIMMs' video bitrate; playback is
    uninterrupted when achieved bandwidth is at least this. *)

val lecture_xml : module_:int -> lecture:int -> student:string -> string
(** The personalized XML document the origin generates. *)

val stylesheet : Nk_vocab.Xml.stylesheet
(** The (student-independent) rendering rules. *)

val render_html : module_:int -> lecture:int -> student:string -> string
(** What the single-server deployment returns: personalize + render. *)

val install_origin : Nk_node.Origin.t -> unit
(** Install both deployments' resources: [/content/...] (personalized
    XML), [/rendered/...] (personalized + rendered HTML), [/media/...]
    (video), and [/nakika.js]. *)

val nakika_js : string
(** The site script: renders [text/xml] lecture responses to HTML at
    the edge with the [Xml] vocabulary. *)

val make_request : rng:Nk_util.Prng.t -> mode:mode -> student:string -> Nk_http.Message.request
(** 85% lecture page, 15% video, uniform over the catalog. *)

val is_video : Nk_http.Message.request -> bool
