type entry = {
  client : Nk_http.Ip.t;
  time : float;
  meth : Nk_http.Method_.t;
  path : string;
  status : int;
  bytes : int;
}

(* "10/Oct/2000:13:55:36 -0700" *)
let parse_clf_time s =
  match String.split_on_char ' ' s with
  | [ datetime; zone ] -> (
    match String.split_on_char ':' datetime with
    | [ date; hh; mm; ss ] -> (
      match String.split_on_char '/' date with
      | [ dd; mon; yyyy ] -> (
        match
          ( int_of_string_opt dd,
            Nk_http.Http_date.month_of_abbrev mon,
            int_of_string_opt yyyy,
            int_of_string_opt hh,
            int_of_string_opt mm,
            int_of_string_opt ss )
        with
        | Some d, Some month, Some y, Some hh, Some mm, Some ss ->
          let base = Nk_http.Http_date.of_civil ~y ~month ~d ~hh ~mm ~ss in
          (* zone: +hhmm / -hhmm; local = UTC + offset, so UTC = local - offset *)
          if String.length zone = 5 && (zone.[0] = '+' || zone.[0] = '-') then begin
            match
              ( int_of_string_opt (String.sub zone 1 2),
                int_of_string_opt (String.sub zone 3 2) )
            with
            | Some zh, Some zm ->
              let offset = float_of_int ((zh * 3600) + (zm * 60)) in
              Some (if zone.[0] = '+' then base -. offset else base +. offset)
            | _ -> None
          end
          else None
        | _ -> None)
      | _ -> None)
    | _ -> None)
  | _ -> None

let parse_line line =
  (* host ident user [time] "request" status bytes *)
  let ( let* ) r f = Result.bind r f in
  let* host, rest =
    match Nk_util.Strutil.split_first ' ' line with
    | Some x -> Ok x
    | None -> Error "missing fields"
  in
  let* time_str, rest =
    match
      ( Nk_util.Strutil.index_sub rest ~sub:"[" ~start:0,
        Nk_util.Strutil.index_sub rest ~sub:"]" ~start:0 )
    with
    | Some i, Some j when j > i ->
      Ok (String.sub rest (i + 1) (j - i - 1), String.sub rest (j + 1) (String.length rest - j - 1))
    | _ -> Error "missing [time]"
  in
  let* request_str, rest =
    match
      ( Nk_util.Strutil.index_sub rest ~sub:"\"" ~start:0,
        Option.bind
          (Nk_util.Strutil.index_sub rest ~sub:"\"" ~start:0)
          (fun i -> Nk_util.Strutil.index_sub rest ~sub:"\"" ~start:(i + 1)) )
    with
    | Some i, Some j when j > i ->
      Ok (String.sub rest (i + 1) (j - i - 1), String.sub rest (j + 1) (String.length rest - j - 1))
    | _ -> Error "missing \"request\""
  in
  let* client =
    match Nk_http.Ip.of_string host with
    | Ok ip -> Ok ip
    | Error _ -> Ok (Nk_http.Ip.of_int32 0l) (* hostnames in logs: keep anonymous *)
  in
  let* time =
    match parse_clf_time time_str with Some t -> Ok t | None -> Error "bad timestamp"
  in
  let* meth, path =
    match String.split_on_char ' ' request_str with
    | [ m; p; _ ] | [ m; p ] -> Ok (Nk_http.Method_.of_string m, p)
    | _ -> Error "bad request line"
  in
  let* status, bytes =
    match
      String.split_on_char ' ' (String.trim rest) |> List.filter (fun s -> s <> "")
    with
    | status :: bytes :: _ -> (
      match (int_of_string_opt status, int_of_string_opt bytes) with
      | Some s, Some b -> Ok (s, b)
      | Some s, None when bytes = "-" -> Ok (s, 0)
      | _ -> Error "bad status/bytes")
    | [ status ] -> (
      match int_of_string_opt status with
      | Some s -> Ok (s, 0)
      | None -> Error "bad status")
    | [] -> Error "missing status"
  in
  Ok { client; time; meth; path; status; bytes }

let parse_log text =
  let lines = String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "") in
  List.fold_left
    (fun (entries, errors) line ->
      match parse_line line with
      | Ok e -> (e :: entries, errors)
      | Error _ -> (entries, errors + 1))
    ([], 0) lines
  |> fun (entries, errors) -> (List.rev entries, errors)

let to_events ~host ?(accelerate = 4.0) entries =
  match entries with
  | [] -> []
  | first :: _ ->
    List.map
      (fun e ->
        let url = Printf.sprintf "http://%s%s" host e.path in
        let req =
          Nk_http.Message.request ~meth:e.meth
            ~client:{ Nk_http.Ip.ip = e.client; hostname = None }
            url
        in
        ((e.time -. first.time) /. accelerate, req))
      entries

let synthesize ~rng ~start ~duration ~clients ~paths =
  if Array.length paths = 0 then invalid_arg "Logreplay.synthesize: no paths";
  let buf = Buffer.create 4096 in
  let events = ref [] in
  for c = 1 to clients do
    let t = ref (start +. Nk_util.Prng.float rng 2.0) in
    while !t < start +. duration do
      events := (!t, c) :: !events;
      t := !t +. 1.0 +. Nk_util.Prng.float rng 2.0
    done
  done;
  let events = List.sort compare !events in
  List.iter
    (fun (t, c) ->
      let secs = int_of_float t in
      let days = secs / 86400 in
      let rem = secs - (days * 86400) in
      (* Render the timestamp via the RFC 1123 formatter's fields. *)
      let rfc = Nk_http.Http_date.format t in
      (* "Thu, 01 Jan 1970 00:00:00 GMT" -> "01/Jan/1970:00:00:00 +0000" *)
      let dd = String.sub rfc 5 2
      and mon = String.sub rfc 8 3
      and yyyy = String.sub rfc 12 4 in
      ignore rem;
      Buffer.add_string buf
        (Printf.sprintf "10.0.%d.%d - - [%s/%s/%s:%02d:%02d:%02d +0000] \"GET %s HTTP/1.1\" 200 %d\n"
           (c / 250) (c mod 250) dd mon yyyy
           (secs mod 86400 / 3600)
           (secs mod 3600 / 60)
           (secs mod 60)
           (Nk_util.Prng.pick rng paths)
           (1000 + Nk_util.Prng.int rng 9000)))
    events;
  Buffer.contents buf
