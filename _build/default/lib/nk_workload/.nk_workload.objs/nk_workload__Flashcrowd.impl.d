lib/nk_workload/flashcrowd.ml: Nk_http Nk_node Printf Static_page
