lib/nk_workload/driver.ml: List Nk_node Nk_sim
