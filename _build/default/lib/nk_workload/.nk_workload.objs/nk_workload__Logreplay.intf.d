lib/nk_workload/logreplay.mli: Nk_http Nk_util
