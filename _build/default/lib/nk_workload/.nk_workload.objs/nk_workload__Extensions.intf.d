lib/nk_workload/extensions.mli:
