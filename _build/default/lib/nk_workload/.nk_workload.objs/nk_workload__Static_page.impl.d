lib/nk_workload/static_page.ml: Array Buffer Nk_node Printf String
