lib/nk_workload/simm.mli: Nk_http Nk_node Nk_util Nk_vocab
