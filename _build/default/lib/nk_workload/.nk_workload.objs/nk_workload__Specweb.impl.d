lib/nk_workload/specweb.ml: Buffer Hashtbl Nk_http Nk_node Nk_util Option Printf
