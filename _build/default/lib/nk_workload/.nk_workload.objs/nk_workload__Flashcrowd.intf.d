lib/nk_workload/flashcrowd.mli: Nk_http Nk_node
