lib/nk_workload/simm.ml: Array Buffer Char Nk_http Nk_node Nk_util Nk_vocab Option Printf String
