lib/nk_workload/static_page.mli: Nk_node
