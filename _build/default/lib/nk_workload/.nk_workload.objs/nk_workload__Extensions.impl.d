lib/nk_workload/extensions.ml: List Nk_pipeline Printf String
