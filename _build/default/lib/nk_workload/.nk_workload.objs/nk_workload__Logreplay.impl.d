lib/nk_workload/logreplay.ml: Array Buffer List Nk_http Nk_util Option Printf Result String
