lib/nk_workload/driver.mli: Nk_http Nk_node Nk_sim
