lib/nk_workload/specweb.mli: Nk_http Nk_node Nk_util
