(** Access-log replay: Apache Common Log Format to request schedules.

    The SIMM experiments "replay access logs for the SIMMs collected by
    NYU's medical school; log replay is accelerated 4x" (§5.2). This
    module parses CLF, converts entries into timed request events for
    {!Driver.replay}, and can synthesize plausible logs for tests and
    benches. *)

type entry = {
  client : Nk_http.Ip.t;
  time : float; (** epoch seconds (timezone offsets are honored) *)
  meth : Nk_http.Method_.t;
  path : string; (** request target, may include a query *)
  status : int;
  bytes : int;
}

val parse_line : string -> (entry, string) result
(** One CLF line:
    [host ident user [day/Mon/year:hh:mm:ss +zzzz] "METHOD /path HTTP/1.x" status bytes]. *)

val parse_log : string -> entry list * int
(** All well-formed entries in order, plus the count of malformed
    lines. *)

val to_events :
  host:string -> ?accelerate:float -> entry list -> (float * Nk_http.Message.request) list
(** Timed events for {!Driver.replay}: offsets are relative to the
    first entry and divided by [accelerate] (default 4.0, the paper's
    factor). Each request carries its log entry's client address. *)

val synthesize :
  rng:Nk_util.Prng.t ->
  start:float ->
  duration:float ->
  clients:int ->
  paths:string array ->
  string
(** A deterministic CLF log: each client requests a random path roughly
    every two seconds. *)
