(** The four §5.4 extensions as NKScript sources, with the paper's
    line-of-code accounting. The examples directory demonstrates each
    interactively; the bench harness runs them headlessly and reports
    size against the paper's numbers (annotations 50+180 LoC, image
    transcoding 80 LoC, blacklist blocking 70 LoC, Na Kika Pages
    ~60 LoC). *)

val image_transcoding : string
(** Fig. 2 generalized: device detection by User-Agent plus caching of
    transformed content. *)

val blacklist_generator : url:string -> string
(** The stage that reads a blacklist from [url] and generates the
    blocking policies. *)

val annotations : site:string -> target_site:string -> string
(** The electronic post-it-notes service: [site] interposes on
    [target_site]. *)

val nkp : string
(** Na Kika Pages ([Nk_pipeline.Nkp.script]), listed here for the LoC
    table. *)

val loc : string -> int
(** Non-blank lines of code, the paper's counting unit. *)

val all : (string * string * int) list
(** (name, source, paper's reported LoC). *)
