(** The §5.1 micro-benchmark workload: a single static 2,096-byte
    document (Google's home page without inline images) plus the
    Pred-n / Match-1 site-script generators of Table 1. *)

val page_bytes : int
(** 2096 *)

val page_body : string
(** Exactly [page_bytes] bytes of plausible HTML. *)

val page_path : string
(** "/index.html" *)

val install : Nk_node.Origin.t -> unit
(** Serve the page (max-age 300). *)

val pred_script : host:string -> n:int -> matching:bool -> string
(** A site script registering [n] policy objects whose URL predicates
    never match requests to [host] plus, when [matching], one policy
    for [host] with empty event handlers. [pred_script ~n:0
    ~matching:false] yields a script registering nothing — the Pred-0
    configuration. *)
