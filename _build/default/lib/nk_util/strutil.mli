(** Small string helpers shared across the HTTP and scripting layers. *)

val starts_with : prefix:string -> string -> bool

val ends_with : suffix:string -> string -> bool

val lowercase : string -> string

val split_char : char -> string -> string list
(** Split on every occurrence of the character; no empty-trimming. *)

val split_first : char -> string -> (string * string) option
(** [split_first c s] splits at the first occurrence of [c], excluding
    it, or [None] when absent. *)

val trim : string -> string

val contains_sub : string -> sub:string -> bool

val index_sub : string -> sub:string -> start:int -> int option
(** First index [>= start] where [sub] occurs. *)

val replace_all : string -> sub:string -> by:string -> string

val join : string -> string list -> string
