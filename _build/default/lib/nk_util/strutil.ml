let starts_with ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let lowercase = String.lowercase_ascii

let split_char c s = String.split_on_char c s

let split_first c s =
  match String.index_opt s c with
  | None -> None
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let trim = String.trim

let index_sub s ~sub ~start =
  let ls = String.length s and lsub = String.length sub in
  if lsub = 0 then Some start
  else begin
    let rec scan i =
      if i + lsub > ls then None
      else if String.sub s i lsub = sub then Some i
      else scan (i + 1)
    in
    if start < 0 then scan 0 else scan start
  end

let contains_sub s ~sub = index_sub s ~sub ~start:0 <> None

let replace_all s ~sub ~by =
  if sub = "" then s
  else begin
    let buf = Buffer.create (String.length s) in
    let lsub = String.length sub in
    let rec go i =
      match index_sub s ~sub ~start:i with
      | None -> Buffer.add_substring buf s i (String.length s - i)
      | Some j ->
        Buffer.add_substring buf s i (j - i);
        Buffer.add_string buf by;
        go (j + lsub)
    in
    go 0;
    Buffer.contents buf
  end

let join = String.concat
