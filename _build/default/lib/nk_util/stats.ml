type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : float array option;
}

let create () = { samples = [||]; len = 0; sorted = None }

let add t x =
  let cap = Array.length t.samples in
  if t.len = cap then begin
    let ncap = if cap = 0 then 64 else cap * 2 in
    let ndata = Array.make ncap 0.0 in
    Array.blit t.samples 0 ndata 0 t.len;
    t.samples <- ndata
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sorted <- None

let count t = t.len

let total t =
  let s = ref 0.0 in
  for i = 0 to t.len - 1 do
    s := !s +. t.samples.(i)
  done;
  !s

let mean t = if t.len = 0 then 0.0 else total t /. float_of_int t.len

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.sub t.samples 0 t.len in
    Array.sort compare a;
    t.sorted <- Some a;
    a

let min_value t =
  let a = sorted t in
  if Array.length a = 0 then 0.0 else a.(0)

let max_value t =
  let a = sorted t in
  if Array.length a = 0 then 0.0 else a.(Array.length a - 1)

let percentile t p =
  let a = sorted t in
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 100.0 then 100.0 else p in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = if rank <= 0 then 0 else if rank > n then n - 1 else rank - 1 in
    a.(idx)
  end

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let m = mean t in
    let s = ref 0.0 in
    for i = 0 to t.len - 1 do
      let d = t.samples.(i) -. m in
      s := !s +. (d *. d)
    done;
    sqrt (!s /. float_of_int (t.len - 1))
  end

let cdf t ~points =
  let a = sorted t in
  let n = Array.length a in
  if n = 0 || points <= 0 then []
  else
    List.init points (fun i ->
        let frac = float_of_int (i + 1) /. float_of_int points in
        let idx = int_of_float (frac *. float_of_int n) - 1 in
        let idx = if idx < 0 then 0 else if idx >= n then n - 1 else idx in
        (a.(idx), frac))

let fraction_at_least t threshold =
  if t.len = 0 then 0.0
  else begin
    let c = ref 0 in
    for i = 0 to t.len - 1 do
      if t.samples.(i) >= threshold then incr c
    done;
    float_of_int !c /. float_of_int t.len
  end

let to_list t = Array.to_list (Array.sub t.samples 0 t.len)
