(** Binary min-heap keyed by float priority.

    Used by the discrete-event simulator ([Nk_sim.Sim]) for its event
    queue and by the resource monitor for offender ranking. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push t priority value] inserts. Smaller priorities pop first; ties
    pop in insertion order (stable). *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum, or [None] if empty. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
