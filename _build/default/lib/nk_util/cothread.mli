(** Per-script user-level threads via OCaml effects.

    The prototype runs each script in its own user-level thread so that
    scripts see run-to-completion semantics while the proxy processes
    HTTP piecemeal (§4). Here a script (or pipeline) runs inside
    [spawn]; whenever it needs an asynchronous result — a sub-fetch, a
    cache fill — it calls [await register], which suspends the thread,
    hands the registration function a resume callback, and continues
    when that callback fires (typically from a simulator event). *)

val await : (('a -> unit) -> unit) -> 'a
(** Suspend the current cothread until the resume callback is invoked.
    Must be called from within [spawn]. The callback must be invoked at
    most once. *)

exception Not_in_cothread
(** [await] was called outside [spawn]. *)

val spawn : (unit -> 'a) -> on_done:('a -> unit) -> on_error:(exn -> unit) -> unit
(** Run a computation as a cothread. [on_done] fires with the result
    when it finishes; exceptions (including those raised after a
    resume) go to [on_error]. A suspended cothread whose resume
    callback is dropped simply never completes — that is how a
    terminated pipeline dies silently. *)
