lib/nk_util/stats.mli:
