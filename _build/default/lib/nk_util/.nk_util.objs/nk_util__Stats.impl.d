lib/nk_util/stats.ml: Array List
