lib/nk_util/strutil.mli:
