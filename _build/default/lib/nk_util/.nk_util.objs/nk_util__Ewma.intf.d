lib/nk_util/ewma.mli:
