lib/nk_util/heap.ml: Array
