lib/nk_util/heap.mli:
