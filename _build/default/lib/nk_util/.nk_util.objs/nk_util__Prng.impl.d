lib/nk_util/prng.ml: Array Int64
