lib/nk_util/strutil.ml: Buffer String
