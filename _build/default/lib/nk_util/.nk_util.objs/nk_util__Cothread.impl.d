lib/nk_util/cothread.ml: Effect
