lib/nk_util/cothread.mli:
