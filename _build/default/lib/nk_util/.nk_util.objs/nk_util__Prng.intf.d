lib/nk_util/prng.mli:
