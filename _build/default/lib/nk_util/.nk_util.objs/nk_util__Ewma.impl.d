lib/nk_util/ewma.ml:
