type t = { alpha : float; mutable avg : float; mutable initialized : bool }

let create ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha out of (0,1]";
  { alpha; avg = 0.0; initialized = false }

let update t x =
  if t.initialized then t.avg <- (t.alpha *. x) +. ((1.0 -. t.alpha) *. t.avg)
  else begin
    t.avg <- x;
    t.initialized <- true
  end;
  t.avg

let value t = t.avg

let reset t =
  t.avg <- 0.0;
  t.initialized <- false
