(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction draws from an explicit
    [Prng.t] so that simulations are replayable from a seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy continuing from the current state. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> float -> float
(** [exponential t mean] samples an exponential with the given mean;
    used for arrival processes. *)

val pareto : t -> alpha:float -> xmin:float -> float
(** Heavy-tailed sample; used for web object sizes. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** Derive an independent generator (for per-entity streams). *)
