type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pareto t ~alpha ~xmin =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  xmin /. (u ** (1.0 /. alpha))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = next_int64 t }
