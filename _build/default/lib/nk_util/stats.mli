(** Sample statistics: mean, percentiles, CDFs, histograms.

    Used by the benchmark harness to report the paper's latency
    percentiles (Table 2, Figure 7) and throughput summaries. *)

type t
(** A mutable collection of float samples. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0 when empty. *)

val min_value : t -> float

val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]]; nearest-rank on the sorted
    samples. 0 when empty. *)

val stddev : t -> float

val cdf : t -> points:int -> (float * float) list
(** [cdf t ~points] returns [(value, fraction <= value)] pairs at evenly
    spaced cumulative fractions, suitable for plotting Figure-7-style
    curves. *)

val fraction_at_least : t -> float -> float
(** Fraction of samples [>= threshold]; used for "fraction of accesses
    seeing at least 140 Kbps". *)

val to_list : t -> float list
(** Samples in insertion order. *)
