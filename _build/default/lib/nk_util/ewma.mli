(** Exponentially weighted moving average.

    The paper's resource manager exposes "the weighted average of past
    and present consumption" to scripts (§3.2); this is that average. *)

type t

val create : alpha:float -> t
(** [alpha] in (0,1]: weight of the newest observation. *)

val update : t -> float -> float
(** Feed an observation; returns the new average. *)

val value : t -> float
(** Current average (0 before any observation). *)

val reset : t -> unit
