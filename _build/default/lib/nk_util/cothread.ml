type _ Effect.t += Await : (('a -> unit) -> unit) -> 'a Effect.t

exception Not_in_cothread

let await register = Effect.perform (Await register)

let spawn f ~on_done ~on_error =
  let open Effect.Deep in
  match_with f ()
    {
      retc = on_done;
      exnc = on_error;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Await register ->
            Some
              (fun (k : (a, _) continuation) ->
                let resumed = ref false in
                register (fun v ->
                    if not !resumed then begin
                      resumed := true;
                      (* Exceptions raised by the rest of the cothread
                         surface here and must go to on_error, not leak
                         into the resumer's stack. *)
                      try continue k v with exn -> on_error exn
                    end))
          | _ -> None);
    }
