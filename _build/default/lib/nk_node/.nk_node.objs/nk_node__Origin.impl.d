lib/nk_node/origin.ml: Hashtbl List Nk_crypto Nk_http Nk_integrity Nk_sim Nk_util Option Printf String
