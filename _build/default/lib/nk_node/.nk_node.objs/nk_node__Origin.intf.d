lib/nk_node/origin.mli: Nk_http Nk_sim
