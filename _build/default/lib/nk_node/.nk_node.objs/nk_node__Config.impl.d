lib/nk_node/config.ml:
