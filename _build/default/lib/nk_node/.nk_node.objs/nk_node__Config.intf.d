lib/nk_node/config.mli:
