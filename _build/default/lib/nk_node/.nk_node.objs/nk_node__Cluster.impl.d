lib/nk_node/cluster.ml: List Nk_overlay Nk_pipeline Nk_replication Nk_sim Nk_util Node Option Origin
