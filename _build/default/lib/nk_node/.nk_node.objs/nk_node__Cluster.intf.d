lib/nk_node/cluster.mli: Config Nk_http Nk_overlay Nk_replication Nk_sim Node Origin
