lib/nk_node/node.mli: Config Nk_cache Nk_overlay Nk_replication Nk_resource Nk_sim
