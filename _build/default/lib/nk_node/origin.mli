(** A simulated origin web server.

    Serves a mix of static resources (with Cache-Control lifetimes) and
    dynamic handlers (which cost CPU per request, the way the SIMMs'
    Tomcat or the SPECweb PHP server does). Used both for content sites
    and for [nakika.net] itself, which hosts the administrative-control
    scripts at their well-known locations (§3.1). *)

type t

val create :
  web:Nk_sim.Httpd.t ->
  host:Nk_sim.Net.host ->
  ?extra_hostnames:string list ->
  ?static_cpu:float ->
  ?sign_key:string ->
  unit ->
  t
(** [static_cpu] is the origin CPU charged per static request
    (default 0.9 ms — an Apache request cycle on the reference
    machine). With [sign_key], cacheable static responses carry the §6
    integrity headers (X-Content-SHA256 and X-Signature over an
    absolute Expires). *)

val host : t -> Nk_sim.Net.host

val set_static :
  t -> path:string -> ?content_type:string -> ?max_age:int -> ?status:int -> string -> unit
(** Install or replace a static resource; [max_age] (default 300 s)
    controls proxy cacheability, [max_age = 0] makes it uncacheable. *)

val remove : t -> path:string -> unit

val set_dynamic :
  t ->
  prefix:string ->
  cpu:float ->
  (Nk_http.Message.request -> Nk_http.Message.response) ->
  unit
(** Route requests whose path starts with [prefix] to a handler that
    costs [cpu] seconds of origin CPU per request. Longest prefix
    wins; static resources take precedence. *)

val request_count : t -> int

val bytes_served : t -> int
