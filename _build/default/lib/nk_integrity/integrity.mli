(** Static content integrity (§6).

    Two response headers protect original content cached inside the
    network: [X-Content-SHA256] carries the content hash (integrity,
    precomputable) and [X-Signature] a signature over the hash *and*
    the cache-control headers (freshness). Expiration must be absolute
    — untrusted nodes cannot be trusted to decrement relative ages — so
    signing requires an [Expires] header and refuses [max-age]. The
    signature is HMAC under a publisher key held by the trusted
    registry. *)

val content_hash_header : string
val signature_header : string

type violation = Missing_headers | Relative_expiry | Hash_mismatch | Bad_signature | Stale

val violation_to_string : violation -> string

val sign : key:string -> Nk_http.Message.response -> (unit, violation) result
(** Set both headers. Fails with [Relative_expiry] when the response
    carries Cache-Control max-age/s-maxage or lacks an absolute
    [Expires]. *)

val verify : key:string -> now:float -> Nk_http.Message.response -> (unit, violation) result
(** Check hash, signature, and freshness against the (simulated)
    clock. *)

val strip : Nk_http.Message.response -> unit
(** Remove the integrity headers (what a tampering node would do). *)
