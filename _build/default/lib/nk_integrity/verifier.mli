(** The probabilistic verification model for *processed* content (§6).

    Hashes cannot protect content generated on untrusted nodes, so
    clients forward a sampled fraction of received content to another
    proxy, which repeats the processing; mismatches are reported to a
    trusted registry that evicts nodes past a report threshold. *)

type t

val create : ?sample_fraction:float -> ?eviction_threshold:int -> unit -> t
(** Defaults: sample 5% of responses; evict after 3 corroborated
    reports. *)

val sample_fraction : t -> float

val should_sample : t -> rng:Nk_util.Prng.t -> bool

val register_node : t -> string -> unit

val is_member : t -> string -> bool

val check :
  t -> node:string -> original:string -> reexecuted:string -> [ `Match | `Mismatch_reported ]
(** Compare the content a node served against an independent
    re-execution; a mismatch files a report and may evict. *)

val reports : t -> node:string -> int

val evicted : t -> string list
(** Nodes evicted so far, sorted. *)
