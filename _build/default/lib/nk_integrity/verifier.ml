type t = {
  sample_fraction : float;
  eviction_threshold : int;
  members : (string, int) Hashtbl.t; (* node -> report count *)
  mutable evicted_nodes : string list;
}

let create ?(sample_fraction = 0.05) ?(eviction_threshold = 3) () =
  if sample_fraction < 0.0 || sample_fraction > 1.0 then
    invalid_arg "Verifier.create: sample_fraction out of [0,1]";
  { sample_fraction; eviction_threshold; members = Hashtbl.create 16; evicted_nodes = [] }

let sample_fraction t = t.sample_fraction

let should_sample t ~rng = Nk_util.Prng.float rng 1.0 < t.sample_fraction

let register_node t node = if not (Hashtbl.mem t.members node) then Hashtbl.add t.members node 0

let is_member t node = Hashtbl.mem t.members node

let reports t ~node = match Hashtbl.find_opt t.members node with Some n -> n | None -> 0

let check t ~node ~original ~reexecuted =
  if String.equal original reexecuted then `Match
  else begin
    (match Hashtbl.find_opt t.members node with
     | Some count ->
       let count = count + 1 in
       Hashtbl.replace t.members node count;
       if count >= t.eviction_threshold then begin
         Hashtbl.remove t.members node;
         t.evicted_nodes <- List.sort compare (node :: t.evicted_nodes)
       end
     | None -> ());
    `Mismatch_reported
  end

let evicted t = t.evicted_nodes
