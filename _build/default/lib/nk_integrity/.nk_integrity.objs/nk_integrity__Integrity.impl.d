lib/nk_integrity/integrity.ml: Nk_crypto Nk_http
