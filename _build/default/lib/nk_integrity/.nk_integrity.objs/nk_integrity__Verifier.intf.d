lib/nk_integrity/verifier.mli: Nk_util
