lib/nk_integrity/integrity.mli: Nk_http
