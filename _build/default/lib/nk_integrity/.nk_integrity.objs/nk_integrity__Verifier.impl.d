lib/nk_integrity/verifier.ml: Hashtbl List Nk_util String
