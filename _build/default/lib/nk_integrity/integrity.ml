let content_hash_header = "X-Content-SHA256"

let signature_header = "X-Signature"

type violation = Missing_headers | Relative_expiry | Hash_mismatch | Bad_signature | Stale

let violation_to_string = function
  | Missing_headers -> "missing integrity headers"
  | Relative_expiry -> "relative cache expiry (absolute Expires required)"
  | Hash_mismatch -> "content hash mismatch"
  | Bad_signature -> "bad signature"
  | Stale -> "content past its signed expiration"

(* The signed string binds the hash to the freshness metadata. *)
let signing_payload ~hash ~expires = hash ^ "|" ^ expires

let absolute_expires resp =
  let relative =
    match Nk_http.Message.resp_header resp "Cache-Control" with
    | Some cc ->
      let parsed = Nk_http.Cache_control.parse cc in
      parsed.Nk_http.Cache_control.max_age <> None
      || parsed.Nk_http.Cache_control.s_maxage <> None
    | None -> false
  in
  if relative then Error Relative_expiry
  else
    match Nk_http.Message.resp_header resp "Expires" with
    | Some e -> (
      match Nk_http.Http_date.parse e with
      | Some _ -> Ok e
      | None -> Error Relative_expiry)
    | None -> Error Relative_expiry

let sign ~key resp =
  match absolute_expires resp with
  | Error v -> Error v
  | Ok expires ->
    let hash =
      Nk_crypto.Sha256.digest_hex (Nk_http.Body.to_string resp.Nk_http.Message.resp_body)
    in
    Nk_http.Message.set_resp_header resp content_hash_header hash;
    Nk_http.Message.set_resp_header resp signature_header
      (Nk_crypto.Hmac.mac_hex ~key (signing_payload ~hash ~expires));
    Ok ()

let verify ~key ~now resp =
  match
    ( Nk_http.Message.resp_header resp content_hash_header,
      Nk_http.Message.resp_header resp signature_header )
  with
  | None, _ | _, None -> Error Missing_headers
  | Some hash, Some signature -> (
    match absolute_expires resp with
    | Error v -> Error v
    | Ok expires ->
      let actual =
        Nk_crypto.Sha256.digest_hex (Nk_http.Body.to_string resp.Nk_http.Message.resp_body)
      in
      if actual <> hash then Error Hash_mismatch
      else if
        Nk_crypto.Hmac.mac_hex ~key (signing_payload ~hash ~expires) <> signature
      then Error Bad_signature
      else begin
        match Nk_http.Http_date.parse expires with
        | Some expiry when expiry > now -> Ok ()
        | _ -> Error Stale
      end)

let strip resp =
  Nk_http.Message.remove_resp_header resp content_hash_header;
  Nk_http.Message.remove_resp_header resp signature_header
