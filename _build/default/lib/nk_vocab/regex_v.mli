(** The [Regex] vocabulary ("processing regular expressions", §3.1).
    Patterns are compiled once per context and memoized. *)

val install : Nk_script.Interp.ctx -> unit
