type node = Element of string * (string * string) list * node list | Text of string

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      let entity_end = try Some (String.index_from s i ';') with Not_found -> None in
      match entity_end with
      | Some j when j - i <= 6 ->
        let name = String.sub s (i + 1) (j - i - 1) in
        let repl =
          match name with
          | "lt" -> "<"
          | "gt" -> ">"
          | "amp" -> "&"
          | "quot" -> "\""
          | "apos" -> "'"
          | _ -> "&" ^ name ^ ";"
        in
        Buffer.add_string buf repl;
        go (j + 1)
      | _ ->
        Buffer.add_char buf '&';
        go (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf

exception Xml_error of string

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-'
  || c = '_' || c = ':' || c = '.'

let read_name st =
  let start = st.pos in
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then raise (Xml_error (Printf.sprintf "expected name at %d" st.pos));
  String.sub st.src start (st.pos - start)

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> raise (Xml_error (Printf.sprintf "expected '%c' at %d" c st.pos))

let skip_until st marker =
  match Nk_util.Strutil.index_sub st.src ~sub:marker ~start:st.pos with
  | Some i -> st.pos <- i + String.length marker
  | None -> raise (Xml_error ("unterminated " ^ marker))

let read_attributes st =
  let attrs = ref [] in
  let continue = ref true in
  while !continue do
    skip_spaces st;
    match peek st with
    | Some c when is_name_char c ->
      let name = read_name st in
      skip_spaces st;
      expect st '=';
      skip_spaces st;
      let quote =
        match peek st with
        | Some (('"' | '\'') as q) ->
          st.pos <- st.pos + 1;
          q
        | _ -> raise (Xml_error "expected quoted attribute value")
      in
      let start = st.pos in
      while (match peek st with Some c when c <> quote -> true | _ -> false) do
        st.pos <- st.pos + 1
      done;
      expect st quote;
      attrs := (name, unescape (String.sub st.src start (st.pos - 1 - start))) :: !attrs
    | _ -> continue := false
  done;
  List.rev !attrs

let rec parse_element st =
  expect st '<';
  let name = read_name st in
  let attrs = read_attributes st in
  skip_spaces st;
  match peek st with
  | Some '/' ->
    st.pos <- st.pos + 1;
    expect st '>';
    Element (name, attrs, [])
  | Some '>' ->
    st.pos <- st.pos + 1;
    let children = parse_children st name in
    Element (name, attrs, children)
  | _ -> raise (Xml_error (Printf.sprintf "malformed tag <%s> at %d" name st.pos))

and parse_children st parent =
  let children = ref [] in
  let rec go () =
    match peek st with
    | None -> raise (Xml_error (Printf.sprintf "unterminated element <%s>" parent))
    | Some '<' ->
      if st.pos + 1 < String.length st.src then begin
        match st.src.[st.pos + 1] with
        | '/' ->
          st.pos <- st.pos + 2;
          let name = read_name st in
          skip_spaces st;
          expect st '>';
          if name <> parent then
            raise (Xml_error (Printf.sprintf "mismatched </%s>, expected </%s>" name parent))
        | '!' ->
          if st.pos + 3 < String.length st.src && String.sub st.src st.pos 4 = "<!--" then
            skip_until st "-->"
          else if
            st.pos + 8 < String.length st.src && String.sub st.src st.pos 9 = "<![CDATA["
          then begin
            (* CDATA: verbatim text, no entity processing *)
            let start = st.pos + 9 in
            skip_until st "]]>";
            let text = String.sub st.src start (st.pos - 3 - start) in
            if text <> "" then children := Text text :: !children
          end
          else skip_until st ">";
          go ()
        | '?' ->
          skip_until st "?>";
          go ()
        | _ ->
          children := parse_element st :: !children;
          go ()
      end
      else raise (Xml_error "stray '<' at end of input")
    | Some _ ->
      let start = st.pos in
      while (match peek st with Some c when c <> '<' -> true | _ -> false) do
        st.pos <- st.pos + 1
      done;
      let text = unescape (String.sub st.src start (st.pos - start)) in
      if String.trim text <> "" then children := Text text :: !children;
      go ()
  in
  go ();
  List.rev !children

let parse src =
  let st = { src; pos = 0 } in
  try
    skip_spaces st;
    (* leading declaration / comments *)
    let rec skip_prolog () =
      if st.pos + 1 < String.length src && src.[st.pos] = '<' then
        match src.[st.pos + 1] with
        | '?' ->
          skip_until st "?>";
          skip_spaces st;
          skip_prolog ()
        | '!' ->
          if st.pos + 3 < String.length src && String.sub src st.pos 4 = "<!--" then begin
            skip_until st "-->";
            skip_spaces st;
            skip_prolog ()
          end
          else begin
            skip_until st ">";
            skip_spaces st;
            skip_prolog ()
          end
        | _ -> ()
    in
    skip_prolog ();
    let root = parse_element st in
    skip_spaces st;
    if st.pos <> String.length src then Error "trailing content after root element"
    else Ok root
  with Xml_error msg -> Error msg

let parse_exn src =
  match parse src with Ok n -> n | Error e -> invalid_arg ("Xml.parse_exn: " ^ e)

let rec serialize = function
  | Text t -> escape t
  | Element (name, attrs, children) ->
    let attr_str =
      String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape v)) attrs)
    in
    if children = [] then Printf.sprintf "<%s%s/>" name attr_str
    else
      Printf.sprintf "<%s%s>%s</%s>" name attr_str
        (String.concat "" (List.map serialize children))
        name

let rec text_content = function
  | Text t -> t
  | Element (_, _, children) -> String.concat "" (List.map text_content children)

let find_all node tag =
  let rec go acc node =
    match node with
    | Text _ -> acc
    | Element (name, _, children) ->
      let acc = if name = tag then node :: acc else acc in
      List.fold_left go acc children
  in
  List.rev (go [] node)

type rule = { tag : string; html_tag : string; html_class : string option }

type stylesheet = rule list

let rec transform sheet node =
  match node with
  | Text _ -> node
  | Element (name, _attrs, children) ->
    let children = List.map (transform sheet) children in
    (match List.find_opt (fun r -> r.tag = name) sheet with
     | Some rule ->
       let attrs = match rule.html_class with Some c -> [ ("class", c) ] | None -> [] in
       Element (rule.html_tag, attrs, children)
     | None -> Element ("div", [ ("class", name) ], children))

let to_html sheet node =
  "<html><body>" ^ serialize (transform sheet node) ^ "</body></html>"
