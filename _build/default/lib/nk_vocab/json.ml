type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Json_error of string

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let fail st msg = raise (Json_error (Printf.sprintf "%s at offset %d" msg st.pos))

let skip_ws st =
  while (match peek st with Some (' ' | '\t' | '\n' | '\r') -> true | _ -> false) do
    advance st
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_string_body st =
  (* called after the opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> fail st "trailing escape"
      | Some c ->
        advance st;
        (match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           (* \uXXXX: decode BMP code points to UTF-8 *)
           if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
           let hex = String.sub st.src st.pos 4 in
           st.pos <- st.pos + 4;
           (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail st "bad \\u escape"
            | Some code ->
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end)
         | c -> fail st (Printf.sprintf "bad escape '\\%c'" c));
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c when is_num_char c -> true | _ -> false) do
    advance st
  done;
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some n -> Num n
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' ->
    advance st;
    Str (parse_string_body st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        expect st '"';
        let key = parse_string_body st in
        skip_ws st;
        expect st ':';
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, value) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, value) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec items acc =
        let value = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (value :: acc)
        | Some ']' ->
          advance st;
          List.rev (value :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      Arr (items [])
    end
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character '%c'" c)

let parse src =
  let st = { src; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length src then Error "trailing content"
    else Ok v
  with Json_error msg -> Error msg

let parse_exn src =
  match parse src with Ok v -> v | Error e -> invalid_arg ("Json.parse_exn: " ^ e)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let print t =
  let buf = Buffer.create 64 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num n ->
      if Float.is_integer n && Float.abs n < 1e15 then
        Buffer.add_string buf (string_of_int (int_of_float n))
      else Buffer.add_string buf (Printf.sprintf "%.17g" n)
    | Str s -> escape_string buf s
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go t;
  Buffer.contents buf

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y
  | Str x, Str y -> x = y
  | Arr x, Arr y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && equal v1 v2) x y
  | _ -> false
