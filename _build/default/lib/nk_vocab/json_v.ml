open Nk_script.Value

let value_to_json ?(max_depth = 64) value =
  let rec go depth v =
    if depth > max_depth then error "JSON.stringify: structure too deep (cycle?)";
    match v with
    | Vundefined | Vnull -> Json.Null
    | Vbool b -> Json.Bool b
    | Vnum n -> Json.Num n
    | Vstr s -> Json.Str s
    | Vbytes b -> Json.Str (bytes_to_string b)
    | Varr a -> Json.Arr (List.map (go (depth + 1)) (arr_to_list a))
    | Vobj o -> Json.Obj (List.map (fun k -> (k, go (depth + 1) (obj_get o k))) (obj_keys o))
    | Vfun _ -> Json.Null
  in
  go 0 value

let rec json_to_value = function
  | Json.Null -> Vnull
  | Json.Bool b -> Vbool b
  | Json.Num n -> Vnum n
  | Json.Str s -> Vstr s
  | Json.Arr items -> Varr (new_arr (List.map json_to_value items))
  | Json.Obj fields ->
    let o = new_obj () in
    List.iter (fun (k, v) -> obj_set o k (json_to_value v)) fields;
    Vobj o

let install ctx =
  let o = new_obj () in
  let arg i args = match List.nth_opt args i with Some v -> v | None -> Vundefined in
  obj_set o "stringify"
    (native "stringify" (fun _ args ->
         let out = Json.print (value_to_json (arg 0 args)) in
         Nk_script.Interp.consume_fuel ctx (String.length out);
         Vstr out));
  obj_set o "parse"
    (native "parse" (fun _ args ->
         let src = to_string (arg 0 args) in
         Nk_script.Interp.consume_fuel ctx (String.length src);
         match Json.parse src with Ok j -> json_to_value j | Error _ -> Vnull));
  Nk_script.Interp.define_global ctx "JSON" (Vobj o)
