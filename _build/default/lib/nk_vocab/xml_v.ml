open Nk_script.Value

let arg i args = match List.nth_opt args i with Some v -> v | None -> Vundefined

let rec node_to_value = function
  | Xml.Text t -> Vstr t
  | Xml.Element (name, attrs, children) ->
    let o = new_obj () in
    obj_set o "name" (Vstr name);
    let attrs_obj = new_obj () in
    List.iter (fun (k, v) -> obj_set attrs_obj k (Vstr v)) attrs;
    obj_set o "attrs" (Vobj attrs_obj);
    obj_set o "children" (Varr (new_arr (List.map node_to_value children)));
    Vobj o

let rec value_to_node = function
  | Vstr s -> Xml.Text s
  | Vobj o ->
    let name = match obj_get o "name" with Vstr s -> s | _ -> error "Xml: node needs a name" in
    let attrs =
      match obj_get o "attrs" with
      | Vobj a -> List.map (fun k -> (k, to_string (obj_get a k))) (obj_keys a)
      | Vundefined | Vnull -> []
      | v -> error "Xml: attrs must be an object, got %s" (type_name v)
    in
    let children =
      match obj_get o "children" with
      | Varr a -> List.map value_to_node (arr_to_list a)
      | Vundefined | Vnull -> []
      | v -> error "Xml: children must be an array, got %s" (type_name v)
    in
    Xml.Element (name, attrs, children)
  | v -> error "Xml: expected node object or string, got %s" (type_name v)

let stylesheet_of_value v =
  (* { lecture: "section.lecture", title: "h1" } *)
  match v with
  | Vobj o ->
    List.map
      (fun tag ->
        let spec = to_string (obj_get o tag) in
        match Nk_util.Strutil.split_first '.' spec with
        | Some (html_tag, cls) -> { Xml.tag; html_tag; html_class = Some cls }
        | None -> { Xml.tag; html_tag = spec; html_class = None })
      (obj_keys o)
  | Vundefined | Vnull -> []
  | v -> error "Xml: stylesheet must be an object, got %s" (type_name v)

let install ctx =
  let o = new_obj () in
  (* Platform XML work is data-proportional CPU; charge it as fuel so
     it counts against the sandbox and resource accounting. *)
  let charge_bytes s = Nk_script.Interp.consume_fuel ctx (String.length s) in
  obj_set o "parse"
    (native "parse" (fun _ args ->
         let src = to_string (arg 0 args) in
         charge_bytes src;
         match Xml.parse src with
         | Ok node -> node_to_value node
         | Error _ -> Vnull));
  obj_set o "serialize"
    (native "serialize" (fun _ args ->
         let out = Xml.serialize (value_to_node (arg 0 args)) in
         charge_bytes out;
         Vstr out));
  obj_set o "text"
    (native "text" (fun _ args -> Vstr (Xml.text_content (value_to_node (arg 0 args)))));
  obj_set o "findAll"
    (native "findAll" (fun _ args ->
         let node = value_to_node (arg 0 args) in
         let tag = to_string (arg 1 args) in
         Varr (new_arr (List.map node_to_value (Xml.find_all node tag)))));
  obj_set o "toHtml"
    (native "toHtml" (fun _ args ->
         let src = to_string (arg 0 args) in
         (* parse + transform + serialize *)
         Nk_script.Interp.consume_fuel ctx (2 * String.length src);
         let sheet = stylesheet_of_value (arg 1 args) in
         match Xml.parse src with
         | Ok node -> Vstr (Xml.to_html sheet node)
         | Error e -> error "Xml.toHtml: %s" e));
  obj_set o "escape" (native "escape" (fun _ args -> Vstr (Xml.escape (to_string (arg 0 args)))));
  Nk_script.Interp.define_global ctx "Xml" (Vobj o)
