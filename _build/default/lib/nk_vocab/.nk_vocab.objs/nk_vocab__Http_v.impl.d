lib/nk_vocab/http_v.ml: Buffer List Nk_http Nk_script String
