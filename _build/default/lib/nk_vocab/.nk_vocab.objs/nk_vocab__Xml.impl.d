lib/nk_vocab/xml.ml: Buffer List Nk_util Printf String
