lib/nk_vocab/json_v.ml: Json List Nk_script String
