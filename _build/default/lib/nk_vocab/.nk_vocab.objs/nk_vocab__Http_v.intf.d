lib/nk_vocab/http_v.mli: Nk_http Nk_script
