lib/nk_vocab/eval_v.mli: Nk_script
