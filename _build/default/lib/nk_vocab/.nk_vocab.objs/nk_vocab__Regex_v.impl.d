lib/nk_vocab/regex_v.ml: Hashtbl List Nk_regex Nk_script String
