lib/nk_vocab/movie_v.mli: Nk_script
