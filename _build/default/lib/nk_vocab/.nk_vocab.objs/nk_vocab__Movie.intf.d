lib/nk_vocab/movie.mli: Image
