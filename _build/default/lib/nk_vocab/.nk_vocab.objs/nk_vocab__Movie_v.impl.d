lib/nk_vocab/movie_v.ml: List Movie Nk_script
