lib/nk_vocab/image.ml: Buffer Bytes Char Nk_util Printf String
