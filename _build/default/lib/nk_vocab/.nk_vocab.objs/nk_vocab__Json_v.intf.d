lib/nk_vocab/json_v.mli: Json Nk_script
