lib/nk_vocab/movie.ml: Buffer Char Image List Option String
