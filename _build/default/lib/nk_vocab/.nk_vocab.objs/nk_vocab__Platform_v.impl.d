lib/nk_vocab/platform_v.ml: Float Hostcall Http_v Image_v Json_v List Movie_v Nk_crypto Nk_http Nk_script Regex_v Xml_v
