lib/nk_vocab/xml_v.mli: Nk_script Xml
