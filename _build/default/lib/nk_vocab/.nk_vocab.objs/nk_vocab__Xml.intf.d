lib/nk_vocab/xml.mli:
