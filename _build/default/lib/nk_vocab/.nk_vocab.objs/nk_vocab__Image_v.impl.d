lib/nk_vocab/image_v.ml: Image List Nk_script String
