lib/nk_vocab/hostcall.ml: Hashtbl List Nk_http Nk_util
