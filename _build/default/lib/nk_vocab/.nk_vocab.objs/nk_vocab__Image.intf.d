lib/nk_vocab/image.mli: Bytes
