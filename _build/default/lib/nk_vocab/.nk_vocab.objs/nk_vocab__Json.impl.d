lib/nk_vocab/json.ml: Buffer Char Float List Printf String
