lib/nk_vocab/xml_v.ml: List Nk_script Nk_util String Xml
