lib/nk_vocab/hostcall.mli: Nk_http
