lib/nk_vocab/platform_v.mli: Hostcall Nk_script
