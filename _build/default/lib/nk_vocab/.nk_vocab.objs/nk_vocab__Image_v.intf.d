lib/nk_vocab/image_v.mli: Nk_script
