lib/nk_vocab/json.mli:
