lib/nk_vocab/regex_v.mli: Nk_script
