lib/nk_vocab/eval_v.ml: Nk_script
