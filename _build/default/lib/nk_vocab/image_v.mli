(** The [ImageTransformer] vocabulary of Fig. 2: [type(contentType)],
    [dimensions(body, type)] and
    [transform(body, fromType, toType, width, height)]. *)

val install : Nk_script.Interp.ctx -> unit
