open Nk_script.Value

let arg i args = match List.nth_opt args i with Some v -> v | None -> Vundefined

let body_string = function
  | Vbytes b -> bytes_to_string b
  | v -> to_string v

let install ctx =
  let o = new_obj () in
  (* Frame decode/re-encode is pixel-proportional CPU. *)
  let charge n = Nk_script.Interp.consume_fuel ctx (n / 8) in
  obj_set o "info"
    (native "info" (fun _ args ->
         match Movie.info (body_string (arg 0 args)) with
         | None -> Vnull
         | Some (frames, fps, w, h) ->
           let r = new_obj () in
           obj_set r "frames" (Vnum (float_of_int frames));
           obj_set r "fps" (Vnum (float_of_int fps));
           obj_set r "x" (Vnum (float_of_int w));
           obj_set r "y" (Vnum (float_of_int h));
           Vobj r));
  obj_set o "duration"
    (native "duration" (fun _ args ->
         match Movie.decode (body_string (arg 0 args)) with
         | Ok m -> Vnum (Movie.duration m)
         | Error _ -> Vnull));
  obj_set o "bitrate"
    (native "bitrate" (fun _ args -> Vnum (Movie.bitrate (body_string (arg 0 args)))));
  obj_set o "transcode"
    (native "transcode" (fun _ args ->
         let data = body_string (arg 0 args) in
         match Movie.decode data with
         | Error e -> error "MovieTranscoder.transcode: %s" e
         | Ok movie ->
           let pick i = match to_int (arg i args) with n when n > 0 -> Some n | _ -> None in
           let fps = pick 1 and width = pick 2 and height = pick 3 in
           (match Movie.info data with
            | Some (frames, _, w, h) -> charge (frames * w * h)
            | None -> ());
           (match Movie.transcode movie ?fps ?width ?height () with
            | transcoded -> Vbytes (bytes_of_string (Movie.encode transcoded))
            | exception Invalid_argument msg -> error "MovieTranscoder.transcode: %s" msg)));
  Nk_script.Interp.define_global ctx "MovieTranscoder" (Vobj o)
