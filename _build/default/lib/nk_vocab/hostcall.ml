type t = {
  now : unit -> float;
  site : string;
  fetch : Nk_http.Message.request -> Nk_http.Message.response;
  cache_lookup : string -> Nk_http.Message.response option;
  cache_store : key:string -> ttl:float -> Nk_http.Message.response -> unit;
  log : string -> unit;
  is_local : string -> bool;
  congestion : string -> float;
  hard_state_get : key:string -> string option;
  hard_state_put : key:string -> string -> bool;
  hard_state_delete : key:string -> unit;
  hard_state_keys : prefix:string -> string list;
  publish : topic:string -> string -> unit;
  enable_access_log : url:string -> unit;
}

let stub ?(site = "test.example") () =
  let store : (string, string) Hashtbl.t = Hashtbl.create 16 in
  {
    now = (fun () -> 0.0);
    site;
    fetch = (fun _ -> Nk_http.Message.error_response 502);
    cache_lookup = (fun _ -> None);
    cache_store = (fun ~key:_ ~ttl:_ _ -> ());
    log = (fun _ -> ());
    is_local = (fun _ -> false);
    congestion = (fun _ -> 0.0);
    hard_state_get = (fun ~key -> Hashtbl.find_opt store key);
    hard_state_put =
      (fun ~key value ->
        Hashtbl.replace store key value;
        true);
    hard_state_delete = (fun ~key -> Hashtbl.remove store key);
    hard_state_keys =
      (fun ~prefix ->
        Hashtbl.fold
          (fun k _ acc -> if Nk_util.Strutil.starts_with ~prefix k then k :: acc else acc)
          store []
        |> List.sort compare);
    publish = (fun ~topic:_ _ -> ());
    enable_access_log = (fun ~url:_ -> ());
  }
