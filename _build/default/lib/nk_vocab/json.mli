(** A small JSON codec (RFC 8259 subset: no unicode escapes beyond
    BMP pass-through).

    Hard-state values and inter-stage messages are strings; scripts use
    the [JSON] vocabulary to round-trip structured data through them. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

val parse_exn : string -> t

val print : t -> string
(** Compact output; object fields keep their order. *)

val equal : t -> t -> bool
