open Nk_script.Value

exception Terminate_request of Nk_http.Message.response

let arg i args = match List.nth_opt args i with Some v -> v | None -> Vundefined

let sarg i args = to_string (arg i args)

let response_to_value (resp : Nk_http.Message.response) =
  let o = new_obj () in
  obj_set o "status" (Vnum (float_of_int resp.Nk_http.Message.status));
  obj_set o "contentType"
    (match Nk_http.Message.content_type resp with Some ct -> Vstr ct | None -> Vnull);
  obj_set o "body" (Vstr (Nk_http.Body.to_string resp.Nk_http.Message.resp_body));
  obj_set o "header"
    (native "header" (fun _ args ->
         match Nk_http.Message.resp_header resp (sarg 0 args) with
         | Some v -> Vstr v
         | None -> Vnull));
  Vobj o

let install_request ctx (req : Nk_http.Message.request) =
  let o = new_obj () in
  let refresh () =
    obj_set o "url" (Vstr (Nk_http.Url.to_string req.Nk_http.Message.url));
    obj_set o "host" (Vstr req.Nk_http.Message.url.Nk_http.Url.host);
    obj_set o "path" (Vstr req.Nk_http.Message.url.Nk_http.Url.path);
    obj_set o "method" (Vstr (Nk_http.Method_.to_string req.Nk_http.Message.meth));
    obj_set o "clientIP" (Vstr (Nk_http.Ip.to_string req.Nk_http.Message.client.Nk_http.Ip.ip))
  in
  refresh ();
  obj_set o "header"
    (native "header" (fun _ args ->
         match Nk_http.Message.req_header req (sarg 0 args) with
         | Some v -> Vstr v
         | None -> Vnull));
  obj_set o "setHeader"
    (native "setHeader" (fun _ args ->
         Nk_http.Message.set_req_header req (sarg 0 args) (sarg 1 args);
         Vundefined));
  obj_set o "setUrl"
    (native "setUrl" (fun _ args ->
         (match Nk_http.Url.parse (sarg 0 args) with
          | Ok url -> req.Nk_http.Message.url <- url
          | Error e -> error "setUrl: %s" e);
         refresh ();
         Vundefined));
  obj_set o "setMethod"
    (native "setMethod" (fun _ args ->
         req.Nk_http.Message.meth <- Nk_http.Method_.of_string (sarg 0 args);
         refresh ();
         Vundefined));
  obj_set o "cookie"
    (native "cookie" (fun _ args ->
         match Nk_http.Message.req_header req "Cookie" with
         | None -> Vnull
         | Some header -> (
           match List.assoc_opt (sarg 0 args) (Nk_http.Cookie.parse header) with
           | Some v -> Vstr v
           | None -> Vnull)));
  obj_set o "query"
    (native "query" (fun _ args ->
         match Nk_http.Url.query_get req.Nk_http.Message.url (sarg 0 args) with
         | Some v -> Vstr v
         | None -> Vnull));
  obj_set o "terminate"
    (native "terminate" (fun _ args ->
         let status = match arg 0 args with Vundefined -> 403 | v -> to_int v in
         raise (Terminate_request (Nk_http.Message.error_response status))));
  obj_set o "redirect"
    (native "redirect" (fun _ args ->
         let target = sarg 0 args in
         let resp =
           Nk_http.Message.response ~status:302 ~headers:[ ("Location", target) ] ()
         in
         raise (Terminate_request resp)));
  obj_set o "respond"
    (native "respond" (fun _ args ->
         let status = to_int (arg 0 args) in
         let content_type = sarg 1 args in
         let body = match arg 2 args with Vbytes b -> bytes_to_string b | v -> to_string v in
         let resp =
           Nk_http.Message.response ~status
             ~headers:[ ("Content-Type", content_type) ]
             ~body ()
         in
         raise (Terminate_request resp)));
  Nk_script.Interp.define_global ctx "Request" (Vobj o)

type response_sink = { written : Buffer.t; mutable wrote : bool }

let install_response ctx (resp : Nk_http.Message.response) =
  let sink = { written = Buffer.create 256; wrote = false } in
  let o = new_obj () in
  let reader = ref (Nk_http.Body.reader resp.Nk_http.Message.resp_body) in
  obj_set o "status" (Vnum (float_of_int resp.Nk_http.Message.status));
  obj_set o "contentType"
    (match Nk_http.Message.content_type resp with Some ct -> Vstr ct | None -> Vnull);
  obj_set o "contentLength" (Vnum (float_of_int (Nk_http.Message.content_length resp)));
  obj_set o "read"
    (native "read" (fun _ _ ->
         match Nk_http.Body.read !reader with Some chunk -> Vstr chunk | None -> Vnull));
  obj_set o "rewind"
    (native "rewind" (fun _ _ ->
         reader := Nk_http.Body.reader resp.Nk_http.Message.resp_body;
         Vundefined));
  obj_set o "write"
    (native "write" (fun _ args ->
         (match arg 0 args with
          | Vbytes b -> Buffer.add_string sink.written (bytes_to_string b)
          | v -> Buffer.add_string sink.written (to_string v));
         sink.wrote <- true;
         Vundefined));
  obj_set o "getHeader"
    (native "getHeader" (fun _ args ->
         match Nk_http.Message.resp_header resp (sarg 0 args) with
         | Some v -> Vstr v
         | None -> Vnull));
  obj_set o "setHeader"
    (native "setHeader" (fun _ args ->
         Nk_http.Message.set_resp_header resp (sarg 0 args) (sarg 1 args);
         (* Keep the snapshot property coherent for subsequent reads. *)
         if String.lowercase_ascii (sarg 0 args) = "content-type" then
           obj_set o "contentType" (Vstr (sarg 1 args));
         Vundefined));
  obj_set o "setStatus"
    (native "setStatus" (fun _ args ->
         resp.Nk_http.Message.status <- to_int (arg 0 args);
         obj_set o "status" (Vnum (float_of_int resp.Nk_http.Message.status));
         Vundefined));
  Nk_script.Interp.define_global ctx "Response" (Vobj o);
  sink

let apply_writes sink (resp : Nk_http.Message.response) =
  if sink.wrote then begin
    let body = Buffer.contents sink.written in
    resp.Nk_http.Message.resp_body <- Nk_http.Body.of_string body;
    Nk_http.Message.set_resp_header resp "Content-Length" (string_of_int (String.length body))
  end

let clear_message_globals ctx =
  Nk_script.Interp.remove_global ctx "Request";
  Nk_script.Interp.remove_global ctx "Response"
