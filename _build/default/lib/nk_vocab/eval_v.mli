(** [evalScript(code)] — evaluate NKScript source inside the calling
    context and return its final expression value.

    This powers Na Kika Pages (§3.1): the 60-line [nkp.js] script splits
    a page on [<?nkp ... ?>] and evaluates each chunk. It also powers
    the blacklist extension's dynamically generated policy code (§5.4).
    Evaluated code runs in the same sandbox, so it shares the context's
    fuel and heap limits. *)

val install : Nk_script.Interp.ctx -> unit
