(** The host-bound vocabularies: [System], [Cache], [HardState],
    [Messages], [Crypto], [Log] and the global [fetchResource]
    (§3.1, §3.3). All close over a {!Hostcall.t}. *)

val install : Hostcall.t -> Nk_script.Interp.ctx -> unit

val install_all : Hostcall.t -> ?seed:int -> Nk_script.Interp.ctx -> unit
(** Everything a pipeline context needs besides the per-request
    [Request]/[Response] globals: base builtins, [ImageTransformer],
    [Xml], [Regex], [JSON], [MovieTranscoder], and the host-bound set. *)
