(** The [Request] and [Response] globals (§3.1).

    Like ASP.NET/JSP, messages are not passed as arguments but exposed
    as global script objects. [Request.terminate(status)] (Fig. 5) and
    [Request.respond(...)] abort request processing with a response —
    they raise [Terminate_request], which the pipeline catches. *)

exception Terminate_request of Nk_http.Message.response

val install_request : Nk_script.Interp.ctx -> Nk_http.Message.request -> unit
(** Define the [Request] global. Mutators ([setUrl], [setHeader],
    [setMethod]) write through to the underlying message. *)

type response_sink
(** Buffered script writes to the response body. *)

val install_response : Nk_script.Interp.ctx -> Nk_http.Message.response -> response_sink
(** Define the [Response] global: [read()] yields body chunks,
    [write(data)] buffers replacement content. *)

val apply_writes : response_sink -> Nk_http.Message.response -> unit
(** After the handler returns: when the script wrote anything, replace
    the body with the written bytes (Content-Length is updated; the
    script's Content-Type header is respected). *)

val clear_message_globals : Nk_script.Interp.ctx -> unit
(** Remove [Request]/[Response] before returning a context to the
    pool. *)

val response_to_value : Nk_http.Message.response -> Nk_script.Value.t
(** [{status, contentType, body}] — the shape [fetchResource] and
    [Cache.lookup] return. *)
