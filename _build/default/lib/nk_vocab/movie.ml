type t = { fps : int; frames : Image.t list }

let magic = "NKV1"

let synthesize ~width ~height ~fps ~seconds ~seed =
  if width <= 0 || height <= 0 || fps <= 0 || seconds <= 0 then
    invalid_arg "Movie.synthesize: non-positive parameter";
  let total = fps * seconds in
  let frames =
    List.init total (fun i ->
        (* A base pattern that shifts per frame: consecutive frames
           differ, so frame-dropping genuinely changes the content. *)
        Image.synthesize ~width ~height ~seed:(seed + (i * 31)))
  in
  { fps; frames }

let u16 n = String.init 2 (fun i -> Char.chr ((n lsr (8 * (1 - i))) land 0xFF))

let read_u16 s off = (Char.code s.[off] lsl 8) lor Char.code s.[off + 1]

let u32 n =
  String.init 4 (fun i -> Char.chr ((n lsr (8 * (3 - i))) land 0xFF))

let read_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let geometry t =
  match t.frames with
  | [] -> (0, 0)
  | f :: _ -> (f.Image.width, f.Image.height)

let encode t =
  let w, h = geometry t in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_string buf (u16 (List.length t.frames));
  Buffer.add_string buf (u16 t.fps);
  Buffer.add_string buf (u16 w);
  Buffer.add_string buf (u16 h);
  List.iter
    (fun frame ->
      let payload = Image.encode frame Image.Rle in
      Buffer.add_string buf (u32 (String.length payload));
      Buffer.add_string buf payload)
    t.frames;
  Buffer.contents buf

let info s =
  if String.length s >= 12 && String.sub s 0 4 = magic then
    Some (read_u16 s 4, read_u16 s 6, read_u16 s 8, read_u16 s 10)
  else None

let decode s =
  match info s with
  | None -> Error "bad NKV header"
  | Some (count, fps, w, h) ->
    if fps <= 0 then Error "bad NKV frame rate"
    else begin
      let rec read_frames acc off remaining =
        if remaining = 0 then
          if off = String.length s then Ok (List.rev acc) else Error "trailing NKV bytes"
        else if off + 4 > String.length s then Error "truncated NKV frame table"
        else begin
          let len = read_u32 s off in
          if off + 4 + len > String.length s then Error "truncated NKV frame"
          else
            match Image.decode (String.sub s (off + 4) len) with
            | Error e -> Error ("NKV frame: " ^ e)
            | Ok (frame, _) ->
              if frame.Image.width <> w || frame.Image.height <> h then
                Error "NKV frame geometry mismatch"
              else read_frames (frame :: acc) (off + 4 + len) (remaining - 1)
        end
      in
      match read_frames [] 12 count with
      | Ok frames -> Ok { fps; frames }
      | Error e -> Error e
    end

let duration t = float_of_int (List.length t.frames) /. float_of_int t.fps

let transcode t ?fps ?width ?height () =
  let target_fps = Option.value fps ~default:t.fps in
  let src_w, src_h = geometry t in
  let target_w = Option.value width ~default:src_w in
  let target_h = Option.value height ~default:src_h in
  if target_fps <= 0 || target_w <= 0 || target_h <= 0 then
    invalid_arg "Movie.transcode: non-positive target";
  if target_fps > t.fps then invalid_arg "Movie.transcode: cannot raise the frame rate";
  (* Keep every (fps/target)-th frame: uniform frame dropping. *)
  let keep_every = float_of_int t.fps /. float_of_int target_fps in
  let frames =
    List.filteri
      (fun i _ ->
        int_of_float (float_of_int i /. keep_every)
        <> int_of_float (float_of_int (i - 1) /. keep_every)
        || i = 0)
      t.frames
  in
  let frames =
    if target_w = src_w && target_h = src_h then frames
    else List.map (fun f -> Image.scale f ~width:target_w ~height:target_h) frames
  in
  { fps = target_fps; frames }

let bitrate s =
  match info s with
  | Some (count, fps, _, _) when count > 0 && fps > 0 ->
    float_of_int (String.length s) /. (float_of_int count /. float_of_int fps)
  | _ -> 0.0
