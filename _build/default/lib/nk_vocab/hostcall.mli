(** The capability surface a Na Kika node hands to vocabularies.

    "The only resources besides computing power and memory accessible by
    scripts are the services provided by Na Kika's vocabularies" (§3.2)
    — this record is that boundary. Every native function closes over
    one of these; a stub instance (all-defaults) supports testing
    vocabularies without a node. [fetch] is synchronous from the
    script's point of view: the node implements it with
    [Nk_util.Cothread.await] over the simulator. *)

type t = {
  now : unit -> float;
  site : string; (** the site this pipeline runs for (accounting domain) *)
  fetch : Nk_http.Message.request -> Nk_http.Message.response;
  cache_lookup : string -> Nk_http.Message.response option;
  cache_store : key:string -> ttl:float -> Nk_http.Message.response -> unit;
  log : string -> unit;
  is_local : string -> bool; (** dotted-quad IP inside the hosting org? *)
  congestion : string -> float; (** resource name -> this site's usage average *)
  hard_state_get : key:string -> string option;
  hard_state_put : key:string -> string -> bool; (** false: storage quota hit *)
  hard_state_delete : key:string -> unit;
  hard_state_keys : prefix:string -> string list;
  publish : topic:string -> string -> unit; (** reliable messaging send *)
  enable_access_log : url:string -> unit;
}

val stub : ?site:string -> unit -> t
(** Inert host: fetches answer 502, the cache is empty and forgetful,
    hard state is an in-memory table, logs are dropped. *)
