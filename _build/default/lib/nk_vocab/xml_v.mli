(** The [Xml] vocabulary: parsing, serialization and stylesheet
    transformation of XML documents (§3.1 lists "parsing and
    transforming XML documents" among the platform vocabularies). *)

val install : Nk_script.Interp.ctx -> unit

val node_to_value : Xml.node -> Nk_script.Value.t
(** Elements become [{name, attrs, children}]; text becomes strings. *)

val value_to_node : Nk_script.Value.t -> Xml.node
(** Inverse of [node_to_value]; raises [Nk_script.Value.Script_error]
    on malformed shapes. *)
