open Nk_script.Value

let arg i args = match List.nth_opt args i with Some v -> v | None -> Vundefined

let install ctx =
  let compiled : (string, Nk_regex.Regex.t) Hashtbl.t = Hashtbl.create 16 in
  let get_regex pattern =
    match Hashtbl.find_opt compiled pattern with
    | Some r -> r
    | None -> (
      try
        let r = Nk_regex.Regex.compile pattern in
        Hashtbl.add compiled pattern r;
        r
      with Nk_regex.Regex.Parse_error msg -> error "Regex: bad pattern %S: %s" pattern msg)
  in
  let o = new_obj () in
  obj_set o "test"
    (native "test" (fun _ args ->
         Vbool (Nk_regex.Regex.matches (get_regex (to_string (arg 0 args))) (to_string (arg 1 args)))));
  obj_set o "find"
    (native "find" (fun _ args ->
         let s = to_string (arg 1 args) in
         match Nk_regex.Regex.find (get_regex (to_string (arg 0 args))) s with
         | Some (i, j) -> Vstr (String.sub s i (j - i))
         | None -> Vnull));
  obj_set o "replace"
    (native "replace" (fun _ args ->
         Vstr
           (Nk_regex.Regex.replace
              (get_regex (to_string (arg 0 args)))
              ~by:(to_string (arg 1 args))
              (to_string (arg 2 args)))));
  obj_set o "split"
    (native "split" (fun _ args ->
         let parts =
           Nk_regex.Regex.split (get_regex (to_string (arg 0 args))) (to_string (arg 1 args))
         in
         Varr (new_arr (List.map (fun p -> Vstr p) parts))));
  Nk_script.Interp.define_global ctx "Regex" (Vobj o)
