open Nk_script.Value

let arg i args = match List.nth_opt args i with Some v -> v | None -> Vundefined

let sarg i args = to_string (arg i args)

let system_object (host : Hostcall.t) =
  let o = new_obj () in
  obj_set o "isLocal" (native "isLocal" (fun _ args -> Vbool (host.is_local (sarg 0 args))));
  obj_set o "time" (native "time" (fun _ _ -> Vnum (host.now ())));
  obj_set o "site" (Vstr host.site);
  obj_set o "congestion"
    (native "congestion" (fun _ args -> Vnum (host.congestion (sarg 0 args))));
  obj_set o "log"
    (native "log" (fun _ args ->
         host.log (sarg 0 args);
         Vundefined));
  Vobj o

let cache_object (host : Hostcall.t) =
  let o = new_obj () in
  obj_set o "lookup"
    (native "lookup" (fun _ args ->
         match host.cache_lookup (sarg 0 args) with
         | Some resp -> Http_v.response_to_value resp
         | None -> Vnull));
  obj_set o "store"
    (native "store" (fun _ args ->
         let key = sarg 0 args in
         let content_type = sarg 1 args in
         let body = match arg 2 args with Vbytes b -> bytes_to_string b | v -> to_string v in
         let ttl = to_number (arg 3 args) in
         let ttl = if Float.is_nan ttl || ttl <= 0.0 then 60.0 else ttl in
         let resp =
           Nk_http.Message.response ~headers:[ ("Content-Type", content_type) ] ~body ()
         in
         host.cache_store ~key ~ttl resp;
         Vundefined));
  Vobj o

let hard_state_object (host : Hostcall.t) =
  let o = new_obj () in
  obj_set o "get"
    (native "get" (fun _ args ->
         match host.hard_state_get ~key:(sarg 0 args) with Some v -> Vstr v | None -> Vnull));
  obj_set o "put"
    (native "put" (fun _ args -> Vbool (host.hard_state_put ~key:(sarg 0 args) (sarg 1 args))));
  obj_set o "remove"
    (native "remove" (fun _ args ->
         host.hard_state_delete ~key:(sarg 0 args);
         Vundefined));
  obj_set o "keys"
    (native "keys" (fun _ args ->
         let prefix = match arg 0 args with Vundefined -> "" | v -> to_string v in
         Varr (new_arr (List.map (fun k -> Vstr k) (host.hard_state_keys ~prefix)))));
  Vobj o

let messages_object (host : Hostcall.t) =
  let o = new_obj () in
  obj_set o "publish"
    (native "publish" (fun _ args ->
         host.publish ~topic:(sarg 0 args) (sarg 1 args);
         Vundefined));
  Vobj o

let crypto_object () =
  let o = new_obj () in
  obj_set o "sha256"
    (native "sha256" (fun _ args -> Vstr (Nk_crypto.Sha256.digest_hex (sarg 0 args))));
  obj_set o "hmac"
    (native "hmac" (fun _ args ->
         Vstr (Nk_crypto.Hmac.mac_hex ~key:(sarg 0 args) (sarg 1 args))));
  Vobj o

let log_object (host : Hostcall.t) =
  let o = new_obj () in
  obj_set o "enable"
    (native "enable" (fun _ args ->
         host.enable_access_log ~url:(sarg 0 args);
         Vundefined));
  Vobj o

let install (host : Hostcall.t) ctx =
  Nk_script.Interp.define_global ctx "System" (system_object host);
  Nk_script.Interp.define_global ctx "Cache" (cache_object host);
  Nk_script.Interp.define_global ctx "HardState" (hard_state_object host);
  Nk_script.Interp.define_global ctx "Messages" (messages_object host);
  Nk_script.Interp.define_global ctx "Crypto" (crypto_object ());
  Nk_script.Interp.define_global ctx "Log" (log_object host);
  Nk_script.Interp.define_global ctx "fetchResource"
    (native "fetchResource" (fun _ args ->
         let url = sarg 0 args in
         match Nk_http.Url.parse url with
         | Error e -> error "fetchResource: %s" e
         | Ok _ ->
           let meth =
             match arg 1 args with
             | Vundefined -> Nk_http.Method_.GET
             | v -> Nk_http.Method_.of_string (to_string v)
           in
           let body = match arg 2 args with Vundefined -> "" | v -> to_string v in
           let req = Nk_http.Message.request ~meth ~body url in
           Http_v.response_to_value (host.fetch req)))

let install_all host ?seed ctx =
  Nk_script.Builtins.install ?seed ctx;
  Image_v.install ctx;
  Xml_v.install ctx;
  Regex_v.install ctx;
  Json_v.install ctx;
  Movie_v.install ctx;
  install host ctx
