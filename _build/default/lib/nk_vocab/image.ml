type format = Raw | Rle

type t = { width : int; height : int; pixels : Bytes.t }

let magic = "NKI1"

let synthesize ~width ~height ~seed =
  if width <= 0 || height <= 0 then invalid_arg "Image.synthesize: non-positive dimensions";
  let pixels = Bytes.create (width * height) in
  let rng = Nk_util.Prng.create seed in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      (* Smooth gradient with occasional noise: compresses well under
         RLE but not trivially. *)
      let base = (x * 255 / width) + (y * 255 / height) in
      let v = if Nk_util.Prng.int rng 16 = 0 then Nk_util.Prng.int rng 256 else base / 2 in
      Bytes.set pixels ((y * width) + x) (Char.chr (v land 0xFF))
    done
  done;
  { width; height; pixels }

let rle_compress s =
  let buf = Buffer.create (String.length s / 2) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let run = ref 1 in
    while !i + !run < n && s.[!i + !run] = c && !run < 255 do
      incr run
    done;
    Buffer.add_char buf (Char.chr !run);
    Buffer.add_char buf c;
    i := !i + !run
  done;
  Buffer.contents buf

let rle_decompress s =
  if String.length s mod 2 <> 0 then Error "RLE payload has odd length"
  else begin
    let buf = Buffer.create (String.length s * 2) in
    let rec go i =
      if i >= String.length s then Ok (Buffer.contents buf)
      else begin
        let run = Char.code s.[i] in
        if run = 0 then Error "zero-length RLE run"
        else begin
          for _ = 1 to run do
            Buffer.add_char buf s.[i + 1]
          done;
          go (i + 2)
        end
      end
    in
    go 0
  end

let encode t format =
  let buf = Buffer.create (16 + Bytes.length t.pixels) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr ((t.width lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (t.width land 0xFF));
  Buffer.add_char buf (Char.chr ((t.height lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (t.height land 0xFF));
  (match format with
   | Raw ->
     Buffer.add_char buf '\x00';
     Buffer.add_bytes buf t.pixels
   | Rle ->
     Buffer.add_char buf '\x01';
     Buffer.add_string buf (rle_compress (Bytes.to_string t.pixels)));
  Buffer.contents buf

let dimensions s =
  if String.length s >= 9 && String.sub s 0 4 = magic then
    let w = (Char.code s.[4] lsl 8) lor Char.code s.[5] in
    let h = (Char.code s.[6] lsl 8) lor Char.code s.[7] in
    Some (w, h)
  else None

let decode s =
  if String.length s < 9 then Error "truncated NKI image"
  else if String.sub s 0 4 <> magic then Error "bad NKI magic"
  else begin
    let w = (Char.code s.[4] lsl 8) lor Char.code s.[5] in
    let h = (Char.code s.[6] lsl 8) lor Char.code s.[7] in
    if w <= 0 || h <= 0 then Error "bad NKI dimensions"
    else begin
      let payload = String.sub s 9 (String.length s - 9) in
      match s.[8] with
      | '\x00' ->
        if String.length payload <> w * h then Error "raw payload size mismatch"
        else Ok ({ width = w; height = h; pixels = Bytes.of_string payload }, Raw)
      | '\x01' -> (
        match rle_decompress payload with
        | Error e -> Error e
        | Ok raw ->
          if String.length raw <> w * h then Error "RLE payload size mismatch"
          else Ok ({ width = w; height = h; pixels = Bytes.of_string raw }, Rle))
      | c -> Error (Printf.sprintf "unknown NKI format byte %d" (Char.code c))
    end
  end

let scale t ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Image.scale: non-positive dimensions";
  let pixels = Bytes.create (width * height) in
  for y = 0 to height - 1 do
    let sy = y * t.height / height in
    for x = 0 to width - 1 do
      let sx = x * t.width / width in
      Bytes.set pixels ((y * width) + x) (Bytes.get t.pixels ((sy * t.width) + sx))
    done
  done;
  { width; height; pixels }

let format_of_mime mime =
  match String.lowercase_ascii (String.trim mime) with
  | "image/nki" -> Some Raw
  | "image/jpeg" | "image/nki-rle" | "image/gif" | "image/png" -> Some Rle
  | _ -> None

let mime_of_format = function Raw -> "image/nki" | Rle -> "image/jpeg"
