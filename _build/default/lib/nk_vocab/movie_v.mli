(** The [MovieTranscoder] script vocabulary (§3.1's anticipated movie
    transcoding): [info(body)], [duration(body)], [bitrate(body)] and
    [transcode(body, fps, width, height)] — the last three arguments
    may be 0 to keep the source value. *)

val install : Nk_script.Interp.ctx -> unit
