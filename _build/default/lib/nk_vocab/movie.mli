(** NKV — the synthetic movie format behind the movie-transcoder
    vocabulary.

    §3.1 lists movie transcoding among the vocabularies the authors
    "expect to add"; this implements it over a self-contained container:
    a header (magic "NKV1", frame count, frames-per-second, width,
    height) followed by that many RLE-compressed NKI frames, each
    length-prefixed. Transcoding does real work: decoding every frame,
    dropping frames to reduce the rate, rescaling, and re-encoding. *)

type t = {
  fps : int;
  frames : Image.t list; (** all frames share one geometry *)
}

val synthesize : width:int -> height:int -> fps:int -> seconds:int -> seed:int -> t
(** A deterministic test clip (a moving gradient). *)

val encode : t -> string

val decode : string -> (t, string) result

val info : string -> (int * int * int * int) option
(** Header-only peek: [(frames, fps, width, height)]. *)

val duration : t -> float
(** Seconds of playback. *)

val transcode : t -> ?fps:int -> ?width:int -> ?height:int -> unit -> t
(** Drop frames down to [fps] (must not exceed the source rate) and
    rescale to [width]x[height]; omitted parameters keep the source
    values. Raises [Invalid_argument] on a zero/negative target or an
    fps increase. *)

val bitrate : string -> float
(** Encoded bytes per second of playback (0 for malformed input) —
    what a device policy compares against its link capacity. *)
