(** The [JSON] script vocabulary: [JSON.stringify(value)] and
    [JSON.parse(text)] (returning [null] on malformed input), for
    structured data in hard state and messages. *)

val install : Nk_script.Interp.ctx -> unit

val value_to_json : ?max_depth:int -> Nk_script.Value.t -> Json.t
(** Functions become [null]; byte arrays become strings. Raises
    [Nk_script.Value.Script_error] past [max_depth] (default 64,
    guarding against cyclic objects). *)

val json_to_value : Json.t -> Nk_script.Value.t
