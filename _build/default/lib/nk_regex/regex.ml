exception Parse_error of string

type node =
  | Empty
  | Char of char
  | Any
  | Class of (char * char) list * bool (* ranges, negated *)
  | Seq of node list
  | Alt of node * node
  | Star of node
  | Plus of node
  | Opt of node
  | Repeat of node * int * int option (* {m}, {m,n}; None = unbounded *)
  | Bol
  | Eol

type t = { pattern : string; node : node }

(* --- parser: recursive descent over the pattern string --- *)

type parser_state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> raise (Parse_error (Printf.sprintf "expected '%c' at %d" c st.pos))

let parse_escape st =
  match peek st with
  | None -> raise (Parse_error "trailing backslash")
  | Some c ->
    advance st;
    (match c with
     | 'd' -> Class ([ ('0', '9') ], false)
     | 'D' -> Class ([ ('0', '9') ], true)
     | 'w' -> Class ([ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ], false)
     | 'W' -> Class ([ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ], true)
     | 's' -> Class ([ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ], false)
     | 'S' -> Class ([ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r') ], true)
     | 'n' -> Char '\n'
     | 't' -> Char '\t'
     | 'r' -> Char '\r'
     | c -> Char c)

let parse_class st =
  (* called after '[' consumed *)
  let negated =
    match peek st with
    | Some '^' ->
      advance st;
      true
    | _ -> false
  in
  let ranges = ref [] in
  let rec loop first =
    match peek st with
    | None -> raise (Parse_error "unterminated character class")
    | Some ']' when not first -> advance st
    | Some c ->
      advance st;
      let c =
        if c = '\\' then
          match peek st with
          | None -> raise (Parse_error "trailing backslash in class")
          | Some e ->
            advance st;
            (match e with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | e -> e)
        else c
      in
      (match peek st with
       | Some '-' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] <> ']' ->
         advance st;
         (match peek st with
          | None -> raise (Parse_error "unterminated range")
          | Some hi ->
            advance st;
            if hi < c then raise (Parse_error "reversed range");
            ranges := (c, hi) :: !ranges)
       | _ -> ranges := (c, c) :: !ranges);
      loop false
  in
  loop true;
  Class (List.rev !ranges, negated)

let parse_int st =
  let start = st.pos in
  while (match peek st with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then raise (Parse_error "expected integer in repetition");
  int_of_string (String.sub st.src start (st.pos - start))

let rec parse_alt st =
  let left = parse_seq st in
  match peek st with
  | Some '|' ->
    advance st;
    Alt (left, parse_alt st)
  | _ -> left

and parse_seq st =
  let items = ref [] in
  let rec loop () =
    match peek st with
    | None | Some '|' | Some ')' -> ()
    | Some _ ->
      items := parse_postfix st :: !items;
      loop ()
  in
  loop ();
  match List.rev !items with [] -> Empty | [ x ] -> x | xs -> Seq xs

and parse_postfix st =
  let atom = parse_atom st in
  let rec apply atom =
    match peek st with
    | Some '*' ->
      advance st;
      apply (Star atom)
    | Some '+' ->
      advance st;
      apply (Plus atom)
    | Some '?' ->
      advance st;
      apply (Opt atom)
    | Some '{' ->
      advance st;
      let m = parse_int st in
      let n =
        match peek st with
        | Some ',' ->
          advance st;
          (match peek st with
           | Some '}' -> None
           | _ -> Some (parse_int st))
        | _ -> Some m
      in
      expect st '}';
      (match n with
       | Some n when n < m -> raise (Parse_error "reversed repetition bounds")
       | _ -> ());
      apply (Repeat (atom, m, n))
    | _ -> atom
  in
  apply atom

and parse_atom st =
  match peek st with
  | None -> raise (Parse_error "unexpected end of pattern")
  | Some '(' ->
    advance st;
    let inner = parse_alt st in
    expect st ')';
    inner
  | Some '[' ->
    advance st;
    parse_class st
  | Some '.' ->
    advance st;
    Any
  | Some '^' ->
    advance st;
    Bol
  | Some '$' ->
    advance st;
    Eol
  | Some '\\' ->
    advance st;
    parse_escape st
  | Some ('*' | '+' | '?') -> raise (Parse_error "quantifier with nothing to repeat")
  | Some c ->
    advance st;
    Char c

let compile pattern =
  let st = { src = pattern; pos = 0 } in
  let node = parse_alt st in
  if st.pos <> String.length pattern then
    raise (Parse_error (Printf.sprintf "unexpected ')' at %d" st.pos));
  { pattern; node }

(* --- matcher: CPS backtracking --- *)

let class_matches ranges negated c =
  let inside = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
  if negated then not inside else inside

let rec mtch node s i (k : int -> bool) =
  match node with
  | Empty -> k i
  | Char c -> i < String.length s && s.[i] = c && k (i + 1)
  | Any -> i < String.length s && k (i + 1)
  | Class (ranges, neg) -> i < String.length s && class_matches ranges neg s.[i] && k (i + 1)
  | Bol -> i = 0 && k i
  | Eol -> i = String.length s && k i
  | Seq nodes ->
    let rec go nodes i =
      match nodes with
      | [] -> k i
      | n :: rest -> mtch n s i (fun j -> go rest j)
    in
    go nodes i
  | Alt (a, b) -> mtch a s i k || mtch b s i k
  | Opt n -> mtch n s i k || k i
  | Star n ->
    (* greedy; guard against zero-width loops by requiring progress *)
    let rec star i = mtch n s i (fun j -> j > i && star j) || k i in
    star i
  | Plus n -> mtch n s i (fun j -> mtch (Star n) s j k)
  | Repeat (n, m, bound) ->
    let rec must count i =
      if count = 0 then may 0 i else mtch n s i (fun j -> must (count - 1) j)
    and may used i =
      match bound with
      | Some n_max when m + used >= n_max -> k i
      | _ -> mtch n s i (fun j -> j > i && may (used + 1) j) || k i
    in
    must m i

let match_at t s i =
  let result = ref None in
  let ok =
    mtch t.node s i (fun j ->
        result := Some j;
        true)
  in
  if ok then !result else None

let find t s =
  let n = String.length s in
  let rec scan i =
    if i > n then None
    else
      match match_at t s i with
      | Some j -> Some (i, j)
      | None -> scan (i + 1)
  in
  scan 0

let matches t s = find t s <> None

let matches_full t s = match match_at t s 0 with Some j -> j = String.length s | None -> false

let find_all t s =
  let n = String.length s in
  let rec scan i acc =
    if i > n then List.rev acc
    else
      match match_at t s i with
      | Some j when j > i -> scan j ((i, j) :: acc)
      | Some j -> scan (j + 1) ((i, j) :: acc) (* zero-width: force progress *)
      | None -> scan (i + 1) acc
  in
  scan 0 []

let replace t ~by s =
  let parts = find_all t s in
  let buf = Buffer.create (String.length s) in
  let last = ref 0 in
  List.iter
    (fun (i, j) ->
      Buffer.add_substring buf s !last (i - !last);
      Buffer.add_string buf by;
      last := j)
    parts;
  Buffer.add_substring buf s !last (String.length s - !last);
  Buffer.contents buf

let split t s =
  let parts = find_all t s in
  let segments = ref [] in
  let last = ref 0 in
  List.iter
    (fun (i, j) ->
      segments := String.sub s !last (i - !last) :: !segments;
      last := j)
    parts;
  segments := String.sub s !last (String.length s - !last) :: !segments;
  List.rev !segments

let source t = t.pattern
