(** A small backtracking regular-expression engine.

    Supports the subset needed by Na Kika's header predicates and the
    script-level regex vocabulary: literals, [.], character classes
    ([\[a-z\]], negation), escapes ([\d \w \s] and escaped
    metacharacters), alternation ([|]), grouping [( )], the quantifiers
    [* + ?] and bounded [{m}] / [{m,n}], plus anchors [^] and [$]. *)

type t

exception Parse_error of string

val compile : string -> t
(** Raises [Parse_error] on malformed patterns. *)

val matches : t -> string -> bool
(** Unanchored search: true when the pattern matches anywhere. *)

val matches_full : t -> string -> bool
(** True when the pattern matches the entire string. *)

val find : t -> string -> (int * int) option
(** Leftmost match as [(start, end_exclusive)]. *)

val find_all : t -> string -> (int * int) list
(** Non-overlapping leftmost matches. *)

val replace : t -> by:string -> string -> string
(** Replace every non-overlapping match. *)

val split : t -> string -> string list
(** Split the string on matches. *)

val source : t -> string
(** The pattern the regex was compiled from. *)
