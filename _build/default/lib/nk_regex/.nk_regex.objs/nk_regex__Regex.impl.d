lib/nk_regex/regex.ml: Buffer List Printf String
