lib/nk_regex/regex.mli:
