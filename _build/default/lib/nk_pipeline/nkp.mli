(** Na Kika Pages (§3.1): markup-style content creation for developers
    versed in PHP/JSP/ASP.NET.

    Resources with the [.nkp] extension or [text/nkp] MIME type are
    processed edge-side: text between [<?nkp] and [?>] is evaluated as
    NKScript and replaced by the result. As in the paper, the feature
    is implemented *on top of* the event-based model by a short script
    ([script] below) that sites schedule as a pipeline stage. *)

val script : string
(** The nkp processor as an NKScript pipeline-stage script (the paper's
    "simple, 60 line script"). Requires the [evalScript] vocabulary. *)

val render : Nk_script.Interp.ctx -> string -> string
(** Direct OCaml-side rendering of an nkp page in a given context;
    used by tests to pin the script's semantics. *)
