(** Edge Side Includes, supported "within the Na Kika architecture"
    via the same technique as Na Kika Pages (§3.1): a stage script that
    replaces [<esi:include src="..."/>] tags with the fetched
    fragments. *)

val script : string
(** The ESI processor as an NKScript pipeline-stage script; applies to
    [text/html] responses containing include tags. *)
