lib/nk_pipeline/walls.ml: List Printf String
