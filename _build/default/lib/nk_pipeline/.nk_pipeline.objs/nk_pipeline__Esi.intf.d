lib/nk_pipeline/esi.mli:
