lib/nk_pipeline/esi.ml:
