lib/nk_pipeline/nkp.mli: Nk_script
