lib/nk_pipeline/nkp.ml: Buffer Nk_script Nk_util String
