lib/nk_pipeline/stage.mli: Nk_http Nk_policy Nk_script Nk_vocab
