lib/nk_pipeline/stage.ml: Nk_policy Nk_script Nk_util Nk_vocab Printf Queue
