lib/nk_pipeline/pipeline.mli: Nk_http Nk_script Stage
