lib/nk_pipeline/walls.mli:
