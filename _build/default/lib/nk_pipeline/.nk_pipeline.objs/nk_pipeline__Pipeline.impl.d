lib/nk_pipeline/pipeline.ml: Nk_http Nk_policy Nk_script Nk_vocab Option Printf Stage
