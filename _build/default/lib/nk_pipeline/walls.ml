let default_client_wall =
  {|
var p = new Policy();
p.onRequest = function() { };
p.register();
|}

let default_server_wall =
  {|
var p = new Policy();
p.onResponse = function() { };
p.register();
|}

let js_string_list urls =
  "[" ^ String.concat ", " (List.map (fun u -> Printf.sprintf "%S" u) urls) ^ "]"

let deny_urls_wall ~urls ~status =
  Printf.sprintf
    {|
var p = new Policy();
p.url = %s;
p.onRequest = function() {
  Request.terminate(%d);
}
p.register();

var q = new Policy();
q.onRequest = function() { };
q.register();
|}
    (js_string_list urls) status

let local_only_wall ~urls =
  Printf.sprintf
    {|
var p = new Policy();
p.url = %s;
p.onRequest = function() {
  if (!System.isLocal(Request.clientIP)) {
    Request.terminate(401);
  }
}
p.register();

var q = new Policy();
q.onRequest = function() { };
q.register();
|}
    (js_string_list urls)

let rate_limit_wall ~max_per_client =
  Printf.sprintf
    {|
var p = new Policy();
p.onRequest = function() {
  var key = "ratelimit:" + Request.clientIP;
  var seen = HardState.get(key);
  var count = (seen == null) ? 0 : parseInt(seen);
  if (count >= %d) {
    Request.terminate(429);
  }
  HardState.put(key, String(count + 1));
}
p.register();
|}
    max_per_client
