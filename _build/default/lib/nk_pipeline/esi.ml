let script =
  {|
var p = new Policy();
p.onResponse = function() {
  var ct = Response.contentType;
  if (ct == null || ct.indexOf("text/html") < 0) { return; }
  var body = "";
  var chunk;
  while ((chunk = Response.read()) != null) { body += chunk; }
  if (body.indexOf("<esi:include") < 0) { return; }
  var out = "";
  var i = 0;
  while (i < body.length) {
    var start = body.indexOf("<esi:include", i);
    if (start < 0) { out += body.substring(i); break; }
    out += body.substring(i, start);
    var stop = body.indexOf("/>", start);
    if (stop < 0) { break; }
    var tag = body.substring(start, stop);
    var srcAt = tag.indexOf("src=\"");
    if (srcAt >= 0) {
      var rest = tag.substring(srcAt + 5);
      var quote = rest.indexOf("\"");
      var src = rest.substring(0, quote);
      var fragment = fetchResource(src);
      if (fragment.status == 200) { out += fragment.body; }
    }
    i = stop + 2;
  }
  Response.write(out);
}
p.register();
|}
