(** Administrative-control scripts (§3.1, §3.2).

    The client-side wall performs admission control over clients'
    access to the network; the server-side wall performs emission
    control over hosted scripts' access to web resources. Defaults are
    permissive (one matching predicate, empty handlers — the paper's
    Admin configuration); deployments override them with real policy
    scripts like the ones produced by the helpers below. *)

val default_client_wall : string
(** Matches everything, runs an empty [onRequest]. *)

val default_server_wall : string
(** Matches everything, runs an empty [onResponse]. *)

val deny_urls_wall : urls:string list -> status:int -> string
(** A wall script that terminates requests for the given URL prefixes
    (Fig. 5's digital-library policy is [deny_urls_wall] plus a
    [System.isLocal] guard). *)

val local_only_wall : urls:string list -> string
(** Fig. 5 verbatim: reject access to the listed URL prefixes unless
    the client is local to the hosting organization (401). *)

val rate_limit_wall : max_per_client:int -> string
(** Admission control that rejects a client's requests beyond a count
    budget tracked in hard state (429). *)
