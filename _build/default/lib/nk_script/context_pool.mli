(** Reusable scripting contexts.

    The prototype "reuses scripting contexts to amortize the overhead of
    context creation across several event handler executions" (§4);
    reuse is safe because scripts cannot forge pointers and usage
    counters are reset between requests. The pool records creation vs
    reuse counts so the micro-benchmarks can report both costs. *)

type t

val create : ?capacity:int -> make:(unit -> Interp.ctx) -> unit -> t
(** [make] builds a fresh context (typically [Interp.create] followed by
    [Builtins.install] and vocabulary setup). *)

val acquire : t -> Interp.ctx
(** A pooled context (usage counters reset) or a fresh one. *)

val release : t -> Interp.ctx -> unit
(** Return a context to the pool; dropped when the pool is full. *)

val created : t -> int
(** Number of fresh contexts built so far. *)

val reused : t -> int
