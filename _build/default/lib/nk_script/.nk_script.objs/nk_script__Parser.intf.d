lib/nk_script/parser.mli: Ast
