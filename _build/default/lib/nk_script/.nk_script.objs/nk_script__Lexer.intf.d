lib/nk_script/lexer.mli: Ast
