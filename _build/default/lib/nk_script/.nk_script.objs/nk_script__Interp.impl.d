lib/nk_script/interp.ml: Array Ast Buffer Bytes Char Float Hashtbl List Nk_util Option Parser String Value
