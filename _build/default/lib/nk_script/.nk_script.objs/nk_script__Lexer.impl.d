lib/nk_script/lexer.ml: Ast Buffer List Printf String
