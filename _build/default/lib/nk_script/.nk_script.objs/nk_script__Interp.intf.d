lib/nk_script/interp.mli: Ast Value
