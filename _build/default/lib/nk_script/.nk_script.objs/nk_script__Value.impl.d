lib/nk_script/value.ml: Array Ast Bytes Float Hashtbl List Printf String
