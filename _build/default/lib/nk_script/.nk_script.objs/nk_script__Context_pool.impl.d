lib/nk_script/context_pool.ml: Interp
