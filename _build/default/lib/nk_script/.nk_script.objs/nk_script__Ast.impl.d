lib/nk_script/ast.ml:
