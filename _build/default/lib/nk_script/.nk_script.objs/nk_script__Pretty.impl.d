lib/nk_script/pretty.ml: Ast Buffer Char Float Lexer List Parser Printf String
