lib/nk_script/context_pool.mli: Interp
