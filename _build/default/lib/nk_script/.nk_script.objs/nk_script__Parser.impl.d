lib/nk_script/parser.ml: Array Ast Float Lexer List Printf
