lib/nk_script/builtins.ml: Float Interp List Nk_util String Value
