lib/nk_script/builtins.mli: Interp
