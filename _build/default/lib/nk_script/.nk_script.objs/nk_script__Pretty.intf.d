lib/nk_script/pretty.mli: Ast
