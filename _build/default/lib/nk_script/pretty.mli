(** NKScript pretty-printer: AST back to canonical source.

    Used by the [nakika fmt] developer tool and by tests that check the
    parser via parse/print/parse fixpoints. The output parses back to a
    structurally identical AST (positions aside). *)

val program : Ast.program -> string

val stmt : ?indent:int -> Ast.stmt -> string

val expr : Ast.expr -> string

val format : string -> (string, string) result
(** Parse then print; [Error] carries the parse/lex diagnostic. *)
