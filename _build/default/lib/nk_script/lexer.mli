(** NKScript tokenizer. *)

type token =
  | Tnumber of float
  | Tstring of string
  | Tident of string
  | Tkeyword of string
  | Tpunct of string
  | Teof

type lexed = { token : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

val tokenize : string -> lexed list
(** Raises [Lex_error] on malformed input (unterminated strings or
    comments, stray characters). *)
