(* Precedence levels mirror the parser's grammar; an operand is
   parenthesized when its level is looser than its context requires. *)

let binop_token = function
  | Ast.Add -> "+"
  | Ast.Sub -> "-"
  | Ast.Mul -> "*"
  | Ast.Div -> "/"
  | Ast.Mod -> "%"
  | Ast.Eq -> "=="
  | Ast.Neq -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="
  | Ast.Band -> "&"
  | Ast.Bor -> "|"
  | Ast.Bxor -> "^"
  | Ast.Shl -> "<<"
  | Ast.Shr -> ">>"

let binop_level = function
  | Ast.Mul | Ast.Div | Ast.Mod -> 11
  | Ast.Add | Ast.Sub -> 10
  | Ast.Shl | Ast.Shr -> 9
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 8
  | Ast.Eq | Ast.Neq -> 7
  | Ast.Band -> 6
  | Ast.Bxor -> 5
  | Ast.Bor -> 4

let level_and = 3

let level_or = 2

let level_cond = 1

let level_assign = 0

let string_literal s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number_literal n =
  if Float.is_integer n && Float.abs n < 1e15 then string_of_int (int_of_float n)
  else Printf.sprintf "%.12g" n

let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s

let indent_unit = "  "

let rec expr_prec level (e : Ast.expr) =
  (* [level] is the loosest precedence the context accepts; an operand
     printing at a tighter-or-equal level needs no parentheses. *)
  let wrap needed text = if needed >= level then text else "(" ^ text ^ ")" in
  match e.Ast.desc with
  | Ast.Undefined -> "undefined"
  | Ast.Null -> "null"
  | Ast.Bool b -> string_of_bool b
  | Ast.Number n -> number_literal n
  | Ast.String s -> string_literal s
  | Ast.Ident name -> name
  | Ast.This -> "this"
  | Ast.Array_lit items -> "[" ^ String.concat ", " (List.map (expr_prec level_assign) items) ^ "]"
  | Ast.Object_lit fields ->
    if fields = [] then "{}"
    else
      "{ "
      ^ String.concat ", "
          (List.map
             (fun (k, v) ->
               let key = if is_plain_ident k then k else string_literal k in
               key ^ ": " ^ expr_prec level_assign v)
             fields)
      ^ " }"
  | Ast.Func (params, body) ->
    Printf.sprintf "function(%s) %s" (String.concat ", " params) (block 0 body)
  | Ast.Member (obj, field) -> expr_prec 13 obj ^ "." ^ field
  | Ast.Index (obj, idx) -> expr_prec 13 obj ^ "[" ^ expr_prec level_assign idx ^ "]"
  | Ast.Call (f, args) ->
    expr_prec 13 f ^ "(" ^ String.concat ", " (List.map (expr_prec level_assign) args) ^ ")"
  | Ast.New (ctor, args) ->
    "new " ^ expr_prec 13 ctor ^ "("
    ^ String.concat ", " (List.map (expr_prec level_assign) args)
    ^ ")"
  | Ast.Assign (lv, op, rhs) ->
    let operator = match op with None -> "=" | Some o -> binop_token o ^ "=" in
    wrap level_assign
      (Printf.sprintf "%s %s %s" (lvalue lv) operator (expr_prec level_assign rhs))
  | Ast.Unop (op, operand) ->
    let token = match op with Ast.Neg -> "-" | Ast.Not -> "!" | Ast.Bnot -> "~" | Ast.Typeof -> "typeof " in
    let printed = expr_prec 12 operand in
    (* "- -x" must not fuse into the "--" decrement token. *)
    let sep = if token = "-" && printed <> "" && printed.[0] = '-' then " " else "" in
    wrap 12 (token ^ sep ^ printed)
  | Ast.Binop (op, a, b) ->
    let lv = binop_level op in
    wrap lv (Printf.sprintf "%s %s %s" (expr_prec lv a) (binop_token op) (expr_prec (lv + 1) b))
  | Ast.Logical (Ast.And, a, b) ->
    wrap level_and
      (Printf.sprintf "%s && %s" (expr_prec level_and a) (expr_prec (level_and + 1) b))
  | Ast.Logical (Ast.Or, a, b) ->
    wrap level_or (Printf.sprintf "%s || %s" (expr_prec level_or a) (expr_prec (level_or + 1) b))
  | Ast.Cond (c, t, f) ->
    wrap level_cond
      (Printf.sprintf "%s ? %s : %s"
         (expr_prec (level_cond + 1) c)
         (expr_prec level_assign t) (expr_prec level_assign f))
  | Ast.Incr (prefix, lv) -> if prefix then "++" ^ lvalue lv else lvalue lv ^ "++"
  | Ast.Decr (prefix, lv) -> if prefix then "--" ^ lvalue lv else lvalue lv ^ "--"
  | Ast.Delete (obj, field) -> wrap 12 ("delete " ^ expr_prec 13 obj ^ "." ^ field)

and lvalue = function
  | Ast.Lident name -> name
  | Ast.Lmember (obj, field) -> expr_prec 13 obj ^ "." ^ field
  | Ast.Lindex (obj, idx) -> expr_prec 13 obj ^ "[" ^ expr_prec level_assign idx ^ "]"

and block depth stmts =
  if stmts = [] then "{ }"
  else begin
    let inner =
      String.concat "" (List.map (fun s -> stmt_at (depth + 1) s ^ "\n") stmts)
    in
    let pad = String.concat "" (List.init depth (fun _ -> indent_unit)) in
    "{\n" ^ inner ^ pad ^ "}"
  end

and stmt_at depth (s : Ast.stmt) =
  let pad = String.concat "" (List.init depth (fun _ -> indent_unit)) in
  let line text = pad ^ text in
  match s.Ast.sdesc with
  | Ast.Sexpr e -> line (expr_prec level_assign e ^ ";")
  | Ast.Svar bindings ->
    line
      ("var "
      ^ String.concat ", "
          (List.map
             (fun (name, init) ->
               match init with
               | None -> name
               | Some e -> name ^ " = " ^ expr_prec level_assign e)
             bindings)
      ^ ";")
  | Ast.Sif (cond, then_b, []) ->
    line (Printf.sprintf "if (%s) %s" (expr_prec level_assign cond) (block depth then_b))
  | Ast.Sif (cond, then_b, else_b) ->
    line
      (Printf.sprintf "if (%s) %s else %s" (expr_prec level_assign cond) (block depth then_b)
         (block depth else_b))
  | Ast.Swhile (cond, body) ->
    line (Printf.sprintf "while (%s) %s" (expr_prec level_assign cond) (block depth body))
  | Ast.Sdo_while (body, cond) ->
    line (Printf.sprintf "do %s while (%s);" (block depth body) (expr_prec level_assign cond))
  | Ast.Sfor (init, cond, step, body) ->
    let init_text =
      match init with
      | None -> ""
      | Some s -> (
        (* reuse statement printing without the pad/semicolon shape *)
        match s.Ast.sdesc with
        | Ast.Svar _ | Ast.Sexpr _ ->
          let printed = String.trim (stmt_at 0 s) in
          String.sub printed 0 (String.length printed - 1) (* drop ';' *)
        | _ -> String.trim (stmt_at 0 s))
    in
    line
      (Printf.sprintf "for (%s; %s; %s) %s" init_text
         (match cond with None -> "" | Some e -> expr_prec level_assign e)
         (match step with None -> "" | Some e -> expr_prec level_assign e)
         (block depth body))
  | Ast.Sfor_in (name, subject, body) ->
    line
      (Printf.sprintf "for (var %s in %s) %s" name (expr_prec level_assign subject)
         (block depth body))
  | Ast.Sreturn None -> line "return;"
  | Ast.Sreturn (Some e) -> line ("return " ^ expr_prec level_assign e ^ ";")
  | Ast.Sbreak -> line "break;"
  | Ast.Scontinue -> line "continue;"
  | Ast.Sfunc (name, params, body) ->
    line (Printf.sprintf "function %s(%s) %s" name (String.concat ", " params) (block depth body))
  | Ast.Sblock stmts -> line (block depth stmts)
  | Ast.Sthrow e -> line ("throw " ^ expr_prec level_assign e ^ ";")
  | Ast.Stry (body, name, handler) ->
    line (Printf.sprintf "try %s catch (%s) %s" (block depth body) name (block depth handler))

let stmt ?(indent = 0) s = stmt_at indent s

let expr e = expr_prec level_assign e

let program stmts = String.concat "" (List.map (fun s -> stmt_at 0 s ^ "\n") stmts)

let format src =
  match Parser.parse src with
  | ast -> Ok (program ast)
  | exception Parser.Parse_error (msg, pos) ->
    Error (Printf.sprintf "parse error at %d:%d: %s" pos.Ast.line pos.Ast.col msg)
  | exception Lexer.Lex_error (msg, pos) ->
    Error (Printf.sprintf "lex error at %d:%d: %s" pos.Ast.line pos.Ast.col msg)
