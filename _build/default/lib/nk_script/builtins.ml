open Value

let arg i args = match List.nth_opt args i with Some v -> v | None -> Vundefined

let num1 f = fun _ args -> Vnum (f (to_number (arg 0 args)))

let math_object prng =
  let o = new_obj () in
  let def name f = obj_set o name (native name f) in
  def "floor" (num1 Float.floor);
  def "ceil" (num1 Float.ceil);
  def "round" (num1 Float.round);
  def "abs" (num1 Float.abs);
  def "sqrt" (num1 Float.sqrt);
  def "log" (num1 Float.log);
  def "exp" (num1 Float.exp);
  def "pow" (fun _ args -> Vnum (Float.pow (to_number (arg 0 args)) (to_number (arg 1 args))));
  def "min" (fun _ args ->
      match args with
      | [] -> Vnum Float.infinity
      | _ -> Vnum (List.fold_left (fun acc v -> Float.min acc (to_number v)) Float.infinity args));
  def "max" (fun _ args ->
      match args with
      | [] -> Vnum Float.neg_infinity
      | _ ->
        Vnum (List.fold_left (fun acc v -> Float.max acc (to_number v)) Float.neg_infinity args));
  def "random" (fun _ _ -> Vnum (Nk_util.Prng.float prng 1.0));
  obj_set o "PI" (Vnum Float.pi);
  obj_set o "E" (Vnum (Float.exp 1.0));
  Vobj o

let install ?(seed = 42) ctx =
  let prng = Nk_util.Prng.create seed in
  let def name v = Interp.define_global ctx name v in
  def "Math" (math_object prng);
  def "String" (native "String" (fun _ args -> Vstr (to_string (arg 0 args))));
  def "Number" (native "Number" (fun _ args -> Vnum (to_number (arg 0 args))));
  def "Boolean" (native "Boolean" (fun _ args -> Vbool (truthy (arg 0 args))));
  def "parseInt" (native "parseInt" (fun _ args ->
      let s = String.trim (to_string (arg 0 args)) in
      (* Take the longest numeric prefix, as JS does. *)
      let n = String.length s in
      let stop = ref 0 in
      let i = ref 0 in
      if !i < n && (s.[!i] = '-' || s.[!i] = '+') then incr i;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i;
        stop := !i
      done;
      if !stop = 0 then Vnum Float.nan
      else
        match int_of_string_opt (String.sub s 0 !stop) with
        | Some v -> Vnum (float_of_int v)
        | None -> Vnum Float.nan));
  def "parseFloat" (native "parseFloat" (fun _ args ->
      match float_of_string_opt (String.trim (to_string (arg 0 args))) with
      | Some v -> Vnum v
      | None -> Vnum Float.nan));
  def "isNaN" (native "isNaN" (fun _ args -> Vbool (Float.is_nan (to_number (arg 0 args)))));
  def "ByteArray" (native "ByteArray" (fun _ args ->
      match args with
      | [] -> Vbytes (new_bytes ())
      | [ Vstr s ] -> Vbytes (bytes_of_string s)
      | [ Vbytes b ] -> Vbytes (bytes_of_string (bytes_to_string b))
      | _ -> error "ByteArray: expected no argument or a string"))
