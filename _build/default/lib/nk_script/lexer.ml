type token =
  | Tnumber of float
  | Tstring of string
  | Tident of string
  | Tkeyword of string
  | Tpunct of string
  | Teof

type lexed = { token : token; pos : Ast.pos }

exception Lex_error of string * Ast.pos

let keywords =
  [ "var"; "function"; "if"; "else"; "while"; "do"; "for"; "in"; "return"; "break";
    "continue"; "true"; "false"; "null"; "undefined"; "new"; "this"; "typeof"; "throw";
    "try"; "catch"; "delete" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* Multi-character punctuation, longest first. *)
let puncts =
  [ "==="; "!=="; "<<="; ">>="; "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--"; "+=";
    "-="; "*="; "/="; "%="; "&="; "|="; "^="; "<<"; ">>"; "{"; "}"; "("; ")"; "["; "]";
    ";"; ","; "."; "?"; ":"; "="; "+"; "-"; "*"; "/"; "%"; "<"; ">"; "!"; "&"; "|"; "^";
    "~" ]

let tokenize src =
  let n = String.length src in
  let line = ref 1 and col = ref 1 in
  let pos () = { Ast.line = !line; col = !col } in
  let tokens = ref [] in
  let i = ref 0 in
  let advance k =
    for j = !i to !i + k - 1 do
      if j < n && src.[j] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col
    done;
    i := !i + k
  in
  let emit tok p = tokens := { token = tok; pos = p } :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance 1
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        advance 1
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let p = pos () in
      advance 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = '/' then begin
          advance 2;
          closed := true
        end
        else advance 1
      done;
      if not !closed then raise (Lex_error ("unterminated comment", p))
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let p = pos () in
      let start = !i in
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X') then begin
        advance 2;
        while
          !i < n
          &&
          let h = src.[!i] in
          is_digit h || (h >= 'a' && h <= 'f') || (h >= 'A' && h <= 'F')
        do
          advance 1
        done;
        let text = String.sub src start (!i - start) in
        match int_of_string_opt text with
        | Some v -> emit (Tnumber (float_of_int v)) p
        | None -> raise (Lex_error ("bad hex literal " ^ text, p))
      end
      else begin
        while !i < n && is_digit src.[!i] do
          advance 1
        done;
        if !i < n && src.[!i] = '.' then begin
          advance 1;
          while !i < n && is_digit src.[!i] do
            advance 1
          done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          advance 1;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then advance 1;
          while !i < n && is_digit src.[!i] do
            advance 1
          done
        end;
        let text = String.sub src start (!i - start) in
        match float_of_string_opt text with
        | Some v -> emit (Tnumber v) p
        | None -> raise (Lex_error ("bad number literal " ^ text, p))
      end
    end
    else if is_ident_start c then begin
      let p = pos () in
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance 1
      done;
      let text = String.sub src start (!i - start) in
      if List.mem text keywords then emit (Tkeyword text) p else emit (Tident text) p
    end
    else if c = '"' || c = '\'' then begin
      let p = pos () in
      let quote = c in
      advance 1;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = quote then begin
          advance 1;
          closed := true
        end
        else if c = '\\' && !i + 1 < n then begin
          let e = src.[!i + 1] in
          let ch =
            match e with
            | 'n' -> '\n'
            | 't' -> '\t'
            | 'r' -> '\r'
            | '0' -> '\x00'
            | '\\' -> '\\'
            | '\'' -> '\''
            | '"' -> '"'
            | c -> c
          in
          Buffer.add_char buf ch;
          advance 2
        end
        else if c = '\n' then raise (Lex_error ("newline in string literal", p))
        else begin
          Buffer.add_char buf c;
          advance 1
        end
      done;
      if not !closed then raise (Lex_error ("unterminated string literal", p));
      emit (Tstring (Buffer.contents buf)) p
    end
    else begin
      let p = pos () in
      let matched =
        List.find_opt
          (fun punct ->
            let lp = String.length punct in
            !i + lp <= n && String.sub src !i lp = punct)
          puncts
      in
      match matched with
      | Some punct ->
        advance (String.length punct);
        emit (Tpunct punct) p
      | None -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, p))
    end
  done;
  emit Teof (pos ());
  List.rev !tokens
