(* Abstract syntax of NKScript, the JavaScript-like language hosted
   services are written in (§3.1). The subset covers everything the
   paper's figures use: functions and closures, object and array
   literals, member/index access, the usual operators, exceptions, and
   [new] for vocabulary constructors such as [Policy] and [ByteArray]. *)

type pos = { line : int; col : int }

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Band
  | Bor
  | Bxor
  | Shl
  | Shr

type unop = Neg | Not | Bnot | Typeof

type logical = And | Or

type expr = { desc : expr_desc; pos : pos }

and expr_desc =
  | Undefined
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Ident of string
  | This
  | Array_lit of expr list
  | Object_lit of (string * expr) list
  | Func of string list * stmt list (* anonymous function expression *)
  | Member of expr * string
  | Index of expr * expr
  | Call of expr * expr list
  | New of expr * expr list
  | Assign of lvalue * binop option * expr (* x = e; x += e; o.f -= e; ... *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Logical of logical * expr * expr
  | Cond of expr * expr * expr
  | Incr of bool * lvalue (* prefix?, ++ *)
  | Decr of bool * lvalue
  | Delete of expr * string (* delete obj.prop *)

and lvalue = Lident of string | Lmember of expr * string | Lindex of expr * expr

and stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Sexpr of expr
  | Svar of (string * expr option) list
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo_while of stmt list * expr
  | Sfor of stmt option * expr option * expr option * stmt list
  | Sfor_in of string * expr * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sfunc of string * string list * stmt list
  | Sblock of stmt list
  | Sthrow of expr
  | Stry of stmt list * string * stmt list

type program = stmt list
