type t = {
  capacity : int;
  make : unit -> Interp.ctx;
  mutable free : Interp.ctx list;
  mutable free_count : int;
  mutable created : int;
  mutable reused : int;
}

let create ?(capacity = 32) ~make () =
  { capacity; make; free = []; free_count = 0; created = 0; reused = 0 }

let acquire t =
  match t.free with
  | ctx :: rest ->
    t.free <- rest;
    t.free_count <- t.free_count - 1;
    t.reused <- t.reused + 1;
    Interp.reset_usage ctx;
    Interp.revive ctx;
    ctx
  | [] ->
    t.created <- t.created + 1;
    t.make ()

let release t ctx =
  if t.free_count < t.capacity then begin
    t.free <- ctx :: t.free;
    t.free_count <- t.free_count + 1
  end

let created t = t.created

let reused t = t.reused
