(** NKScript parser: token stream to [Ast.program]. *)

exception Parse_error of string * Ast.pos

val parse : string -> Ast.program
(** Raises [Parse_error] or [Lexer.Lex_error] on malformed source. *)
