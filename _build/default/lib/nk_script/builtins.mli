(** The base globals installed into every fresh scripting context:
    [Math], [String], [Number], [parseInt], [parseFloat], [isNaN] and
    the [ByteArray] constructor (§3.1/§4). Vocabularies add the rest. *)

val install : ?seed:int -> Interp.ctx -> unit
(** [seed] feeds the deterministic [Math.random]. *)
