(** The user-registration vocabulary required by the SPECweb99 port
    (§4: the prototype "exposes a vocabulary for managing user
    registrations, as required by the SPECweb99 benchmark"). A thin,
    typed layer over a replication node. *)

type t

val create : Replication.node -> t

val register : t -> user:string -> profile:string -> bool
(** False when the user already exists or storage is over quota. *)

val lookup : t -> user:string -> string option

val update_profile : t -> user:string -> profile:string -> bool
(** False when the user does not exist locally. *)

val user_count : t -> int
