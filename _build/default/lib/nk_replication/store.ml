type site_state = { table : (string, string) Hashtbl.t; mutable bytes : int }

type t = { quota : int; sites : (string, site_state) Hashtbl.t }

let create ?(quota_bytes = 16 * 1024 * 1024) () = { quota = quota_bytes; sites = Hashtbl.create 8 }

let site_state t site =
  match Hashtbl.find_opt t.sites site with
  | Some s -> s
  | None ->
    let s = { table = Hashtbl.create 16; bytes = 0 } in
    Hashtbl.add t.sites site s;
    s

let entry_size key value = String.length key + String.length value + 32

let get t ~site ~key =
  match Hashtbl.find_opt t.sites site with
  | None -> None
  | Some s -> Hashtbl.find_opt s.table key

let put t ~site ~key value =
  let s = site_state t site in
  let old_size =
    match Hashtbl.find_opt s.table key with
    | Some old -> entry_size key old
    | None -> 0
  in
  let new_bytes = s.bytes - old_size + entry_size key value in
  if new_bytes > t.quota then false
  else begin
    Hashtbl.replace s.table key value;
    s.bytes <- new_bytes;
    true
  end

let delete t ~site ~key =
  match Hashtbl.find_opt t.sites site with
  | None -> ()
  | Some s -> (
    match Hashtbl.find_opt s.table key with
    | None -> ()
    | Some old ->
      Hashtbl.remove s.table key;
      s.bytes <- s.bytes - entry_size key old)

let keys t ~site ~prefix =
  match Hashtbl.find_opt t.sites site with
  | None -> []
  | Some s ->
    Hashtbl.fold
      (fun k _ acc -> if Nk_util.Strutil.starts_with ~prefix k then k :: acc else acc)
      s.table []
    |> List.sort compare

let site_bytes t ~site =
  match Hashtbl.find_opt t.sites site with Some s -> s.bytes | None -> 0

let sites t = Hashtbl.fold (fun k _ acc -> k :: acc) t.sites [] |> List.sort compare
