type t = { node : Replication.node }

let key user = "user:" ^ user

let create node = { node }

let register t ~user ~profile =
  match Replication.read t.node ~key:(key user) with
  | Some _ -> false
  | None -> Replication.update t.node ~key:(key user) ~value:profile

let lookup t ~user = Replication.read t.node ~key:(key user)

let update_profile t ~user ~profile =
  match Replication.read t.node ~key:(key user) with
  | None -> false
  | Some _ -> Replication.update t.node ~key:(key user) ~value:profile

let user_count t = List.length (Replication.keys t.node ~prefix:"user:")
