(** Per-site partitioned local storage for hard state (§3.3).

    "Na Kika partitions hard state amongst sites and enforces resource
    constraints on persistent storage" — each site owns a keyspace with
    a byte quota; writes that would exceed it are refused. *)

type t

val create : ?quota_bytes:int -> unit -> t
(** [quota_bytes] is per site (default 16 MiB). *)

val get : t -> site:string -> key:string -> string option

val put : t -> site:string -> key:string -> string -> bool
(** False (and no change) when the write would push the site over
    quota. Overwrites account only the size delta. *)

val delete : t -> site:string -> key:string -> unit

val keys : t -> site:string -> prefix:string -> string list
(** Sorted. *)

val site_bytes : t -> site:string -> int

val sites : t -> string list
