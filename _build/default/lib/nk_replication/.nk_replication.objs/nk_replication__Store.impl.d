lib/nk_replication/store.ml: Hashtbl List Nk_util String
