lib/nk_replication/registration.ml: List Replication
