lib/nk_replication/replication.mli: Message_bus Nk_sim Store
