lib/nk_replication/store.mli:
