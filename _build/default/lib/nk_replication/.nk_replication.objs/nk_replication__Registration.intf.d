lib/nk_replication/registration.mli: Replication
