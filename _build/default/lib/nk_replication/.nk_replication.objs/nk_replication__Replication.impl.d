lib/nk_replication/replication.ml: Hashtbl List Message_bus Printf Store String
