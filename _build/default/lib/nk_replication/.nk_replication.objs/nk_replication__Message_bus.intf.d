lib/nk_replication/message_bus.mli: Nk_sim
