lib/nk_replication/message_bus.ml: Hashtbl List Nk_sim Printf String
