(** Per-site resource accounting.

    Sites accumulate consumption in the current control interval; when
    the interval closes, UPDATE folds it into a weighted average of past
    and present consumption — the value "exposed to scripts, thus
    allowing scripts to adapt to system congestion and recover from past
    penalization" (§3.2). Renewable resources only fold in while the
    resource is congested. *)

type t

val create : ?alpha:float -> unit -> t
(** [alpha] is the EWMA weight of the newest interval (default 0.3). *)

val charge : t -> site:string -> Resource.t -> float -> unit
(** Add consumption for the current interval (seconds of CPU, bytes of
    memory/bandwidth, ...). *)

val interval_consumption : t -> site:string -> Resource.t -> float

val usage : t -> site:string -> Resource.t -> float
(** The weighted average (the paper's [site.usage]). *)

val contribution : t -> site:string -> Resource.t -> float
(** This site's share of the summed usage over all active sites, in
    [0, 1]; 0 when nothing is recorded. Drives proportional
    throttling. *)

val active_sites : t -> string list
(** Sites with any recorded activity, sorted. *)

val close_interval : t -> congested:(Resource.t -> bool) -> unit
(** Fold the interval counters into the averages per the Fig. 6 rules
    and reset them. *)

val close_resource_interval : t -> Resource.t -> congested:bool -> unit
(** Same, for a single resource — CONTROL runs per tracked resource. *)

val total_interval : t -> Resource.t -> float
(** Summed current-interval consumption across sites (the node-wide
    view used by congestion detection). *)

val forget : t -> site:string -> unit
