(** The resources Na Kika tracks per site (§3.2): CPU, memory and
    bandwidth are renewable — consumption only counts against a site
    while the node is congested; running time and total bytes
    transferred are nonrenewable — all consumption counts. *)

type t = Cpu | Memory | Bandwidth | Running_time | Bytes_transferred

val all : t list

val is_renewable : t -> bool

val to_string : t -> string

val equal : t -> t -> bool
