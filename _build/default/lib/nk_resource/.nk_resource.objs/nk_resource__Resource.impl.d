lib/nk_resource/resource.ml:
