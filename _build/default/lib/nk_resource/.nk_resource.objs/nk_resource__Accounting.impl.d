lib/nk_resource/accounting.ml: Hashtbl List Nk_util Resource
