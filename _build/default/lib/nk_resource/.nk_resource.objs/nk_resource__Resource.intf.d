lib/nk_resource/resource.mli:
