lib/nk_resource/monitor.mli: Accounting Resource
