lib/nk_resource/monitor.ml: Accounting Hashtbl List Resource
