lib/nk_resource/accounting.mli: Resource
