type t = Cpu | Memory | Bandwidth | Running_time | Bytes_transferred

let all = [ Cpu; Memory; Bandwidth; Running_time; Bytes_transferred ]

let is_renewable = function
  | Cpu | Memory | Bandwidth -> true
  | Running_time | Bytes_transferred -> false

let to_string = function
  | Cpu -> "cpu"
  | Memory -> "memory"
  | Bandwidth -> "bandwidth"
  | Running_time -> "running-time"
  | Bytes_transferred -> "bytes-transferred"

let equal a b = a = b
