type site_state = {
  interval : (Resource.t, float ref) Hashtbl.t;
  average : (Resource.t, Nk_util.Ewma.t) Hashtbl.t;
}

type t = { alpha : float; sites : (string, site_state) Hashtbl.t }

let create ?(alpha = 0.3) () = { alpha; sites = Hashtbl.create 16 }

let site_state t site =
  match Hashtbl.find_opt t.sites site with
  | Some s -> s
  | None ->
    let s = { interval = Hashtbl.create 8; average = Hashtbl.create 8 } in
    Hashtbl.add t.sites site s;
    s

let counter state resource =
  match Hashtbl.find_opt state.interval resource with
  | Some r -> r
  | None ->
    let r = ref 0.0 in
    Hashtbl.add state.interval resource r;
    r

let ewma t state resource =
  match Hashtbl.find_opt state.average resource with
  | Some e -> e
  | None ->
    let e = Nk_util.Ewma.create ~alpha:t.alpha in
    Hashtbl.add state.average resource e;
    e

let charge t ~site resource amount =
  let state = site_state t site in
  let r = counter state resource in
  r := !r +. amount

let interval_consumption t ~site resource =
  match Hashtbl.find_opt t.sites site with
  | None -> 0.0
  | Some state -> ( match Hashtbl.find_opt state.interval resource with Some r -> !r | None -> 0.0)

let usage t ~site resource =
  match Hashtbl.find_opt t.sites site with
  | None -> 0.0
  | Some state -> (
    match Hashtbl.find_opt state.average resource with
    | Some e -> Nk_util.Ewma.value e
    | None -> 0.0)

let active_sites t = Hashtbl.fold (fun k _ acc -> k :: acc) t.sites [] |> List.sort compare

let contribution t ~site resource =
  let mine = usage t ~site resource in
  if mine <= 0.0 then 0.0
  else begin
    let total =
      List.fold_left (fun acc s -> acc +. usage t ~site:s resource) 0.0 (active_sites t)
    in
    if total <= 0.0 then 0.0 else mine /. total
  end

let fold_one t state resource r ~congested =
  let counts = (not (Resource.is_renewable resource)) || congested in
  if counts then ignore (Nk_util.Ewma.update (ewma t state resource) !r)
  else
    (* Renewable and uncongested: the average still decays so past
       penalization is forgotten. *)
    ignore (Nk_util.Ewma.update (ewma t state resource) 0.0);
  r := 0.0

let close_interval t ~congested =
  Hashtbl.iter
    (fun _site state ->
      Hashtbl.iter (fun resource r -> fold_one t state resource r ~congested:(congested resource)) state.interval)
    t.sites

let close_resource_interval t resource ~congested =
  Hashtbl.iter
    (fun _site state ->
      match Hashtbl.find_opt state.interval resource with
      | Some r -> fold_one t state resource r ~congested
      | None -> ())
    t.sites

let total_interval t resource =
  Hashtbl.fold
    (fun _ state acc ->
      acc +. (match Hashtbl.find_opt state.interval resource with Some r -> !r | None -> 0.0))
    t.sites 0.0

let forget t ~site = Hashtbl.remove t.sites site
