(** Experiment instrumentation: named sample collections and counters.

    Experiments record client-perceived latency, achieved bandwidth,
    rejects, drops, etc., under well-known keys; the bench harness then
    prints paper-style tables from the same trace. *)

type t

val create : unit -> t

val stats : t -> string -> Nk_util.Stats.t
(** Get-or-create the named sample collection. *)

val add : t -> string -> float -> unit

val incr : ?by:int -> t -> string -> unit

val count : t -> string -> int

val stat_names : t -> string list

val counter_names : t -> string list
