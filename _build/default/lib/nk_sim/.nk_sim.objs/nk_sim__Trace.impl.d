lib/nk_sim/trace.ml: Hashtbl List Nk_util
