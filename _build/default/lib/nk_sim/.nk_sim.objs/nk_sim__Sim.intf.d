lib/nk_sim/sim.mli: Nk_util
