lib/nk_sim/httpd.ml: Hashtbl List Net Nk_http Sim String
