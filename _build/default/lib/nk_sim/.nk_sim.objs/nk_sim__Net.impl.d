lib/nk_sim/net.ml: Float Hashtbl Sim
