lib/nk_sim/sim.ml: Nk_util
