lib/nk_sim/net.mli: Sim
