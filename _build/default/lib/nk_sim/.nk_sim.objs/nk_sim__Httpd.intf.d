lib/nk_sim/httpd.mli: Net Nk_http Sim
