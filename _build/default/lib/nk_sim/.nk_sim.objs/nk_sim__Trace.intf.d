lib/nk_sim/trace.mli: Nk_util
