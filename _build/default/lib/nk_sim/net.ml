type host = { id : int; name : string; cpu_speed : float }

type link_state = { mutable busy_until : float }

type link_params = { latency : float; bandwidth : float }

type t = {
  sim : Sim.t;
  default : link_params;
  links : (int * int, link_params) Hashtbl.t;
  pipes : (int * int, link_state) Hashtbl.t;
  cpus : (int, link_state) Hashtbl.t;
  sent : (int, int ref) Hashtbl.t;
  egress : (int, float * link_state) Hashtbl.t; (* bandwidth cap + shared pipe *)
  mutable next_id : int;
}

let create sim ?(default_latency = 0.0002) ?(default_bandwidth = 12_500_000.0) () =
  {
    sim;
    default = { latency = default_latency; bandwidth = default_bandwidth };
    links = Hashtbl.create 16;
    pipes = Hashtbl.create 16;
    cpus = Hashtbl.create 16;
    sent = Hashtbl.create 16;
    egress = Hashtbl.create 4;
    next_id = 0;
  }

let sim t = t.sim

let add_host t ~name ?(cpu_speed = 1.0) () =
  let host = { id = t.next_id; name; cpu_speed } in
  t.next_id <- t.next_id + 1;
  Hashtbl.replace t.cpus host.id { busy_until = 0.0 };
  Hashtbl.replace t.sent host.id (ref 0);
  host

let host_name h = h.name

let connect t a b ~latency ~bandwidth =
  let params = { latency; bandwidth } in
  Hashtbl.replace t.links (a.id, b.id) params;
  Hashtbl.replace t.links (b.id, a.id) params

let params t src dst =
  match Hashtbl.find_opt t.links (src.id, dst.id) with
  | Some p -> p
  | None -> t.default

let pipe t src dst =
  let key = (src.id, dst.id) in
  match Hashtbl.find_opt t.pipes key with
  | Some s -> s
  | None ->
    let s = { busy_until = 0.0 } in
    Hashtbl.add t.pipes key s;
    s

let set_egress_limit t host bandwidth =
  Hashtbl.replace t.egress host.id (bandwidth, { busy_until = 0.0 })

let send t ~src ~dst ~size k =
  if src.id = dst.id then Sim.schedule t.sim ~delay:0.0 k
  else begin
    let { latency; bandwidth } = params t src dst in
    let pipe = pipe t src dst in
    let now = Sim.now t.sim in
    (* The transfer serializes through the source's shared egress pipe
       (when capped) and then the per-pair link pipe. *)
    let egress_done =
      match Hashtbl.find_opt t.egress src.id with
      | None -> now
      | Some (cap, state) ->
        let start = Float.max now state.busy_until in
        state.busy_until <- start +. (float_of_int size /. cap);
        state.busy_until
    in
    let start = Float.max egress_done pipe.busy_until in
    let transmit = float_of_int size /. bandwidth in
    pipe.busy_until <- start +. transmit;
    (match Hashtbl.find_opt t.sent src.id with
     | Some r -> r := !r + size
     | None -> ());
    Sim.schedule_at t.sim (start +. transmit +. latency) k
  end

let transfer_time_estimate t ~src ~dst ~size =
  if src.id = dst.id then 0.0
  else begin
    let { latency; bandwidth } = params t src dst in
    latency +. (float_of_int size /. bandwidth)
  end

let cpu_run t host ~seconds k =
  let cpu = Hashtbl.find t.cpus host.id in
  let now = Sim.now t.sim in
  let start = Float.max now cpu.busy_until in
  let work = seconds /. host.cpu_speed in
  cpu.busy_until <- start +. work;
  Sim.schedule_at t.sim cpu.busy_until k

let cpu_backlog t host =
  let cpu = Hashtbl.find t.cpus host.id in
  Float.max 0.0 (cpu.busy_until -. Sim.now t.sim)

let bytes_sent t host =
  match Hashtbl.find_opt t.sent host.id with Some r -> !r | None -> 0
