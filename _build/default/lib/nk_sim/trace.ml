type t = {
  samples : (string, Nk_util.Stats.t) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
}

let create () = { samples = Hashtbl.create 16; counters = Hashtbl.create 16 }

let stats t name =
  match Hashtbl.find_opt t.samples name with
  | Some s -> s
  | None ->
    let s = Nk_util.Stats.create () in
    Hashtbl.add t.samples name s;
    s

let add t name x = Nk_util.Stats.add (stats t name) x

let incr ?(by = 1) t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let count t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let stat_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.samples [] |> List.sort compare

let counter_names t = Hashtbl.fold (fun k _ acc -> k :: acc) t.counters [] |> List.sort compare
