type handler = Nk_http.Message.request -> (Nk_http.Message.response -> unit) -> unit

type t = {
  network : Net.t;
  by_hostname : (string, Net.host) Hashtbl.t;
  by_host : (string, handler) Hashtbl.t; (* keyed by host name *)
}

let create network = { network; by_hostname = Hashtbl.create 16; by_host = Hashtbl.create 16 }

let net t = t.network

let sim t = Net.sim t.network

let serve t ~host ~hostnames handler =
  Hashtbl.replace t.by_host (Net.host_name host) handler;
  List.iter
    (fun name -> Hashtbl.replace t.by_hostname (String.lowercase_ascii name) host)
    hostnames

let resolve t name = Hashtbl.find_opt t.by_hostname (String.lowercase_ascii name)

let fetch_via t ~from ~via request k =
  match Hashtbl.find_opt t.by_host (Net.host_name via) with
  | None ->
    Sim.schedule (sim t) ~delay:0.0 (fun () -> k (Nk_http.Message.error_response 502))
  | Some handler ->
    let req_size = Nk_http.Codec.request_wire_size request in
    (* Handlers receive their own copy so concurrent processing of the
       same logical request cannot alias. *)
    let request = Nk_http.Message.copy_request request in
    Net.send t.network ~src:from ~dst:via ~size:req_size (fun () ->
        handler request (fun response ->
            let resp_size = Nk_http.Codec.response_wire_size response in
            Net.send t.network ~src:via ~dst:from ~size:resp_size (fun () ->
                k (Nk_http.Message.copy_response response))))

let fetch t ~from request k =
  match resolve t request.Nk_http.Message.url.Nk_http.Url.host with
  | Some via -> fetch_via t ~from ~via request k
  | None ->
    Sim.schedule (sim t) ~delay:0.0 (fun () -> k (Nk_http.Message.error_response 502))
