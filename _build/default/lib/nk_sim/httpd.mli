(** The simulated web: HTTP request/response exchange over [Net].

    Servers attach to hosts and claim hostnames; [fetch] resolves the
    request URL's hostname, ships the encoded request across the
    network, runs the server's handler (which may itself fetch, charge
    CPU, etc.), and ships the response back. [fetch_via] directs the
    exchange at an explicit host instead — that is how clients reach a
    Na Kika edge proxy after DNS redirection. *)

type t

type handler = Nk_http.Message.request -> (Nk_http.Message.response -> unit) -> unit

val create : Net.t -> t

val net : t -> Net.t

val sim : t -> Sim.t

val serve : t -> host:Net.host -> hostnames:string list -> handler -> unit
(** Attach a handler to a host and bind the given hostnames to it. A
    host has at most one handler; later [serve] calls replace it and
    add hostnames. *)

val resolve : t -> string -> Net.host option

val fetch : t -> from:Net.host -> Nk_http.Message.request -> (Nk_http.Message.response -> unit) -> unit
(** Resolve by URL hostname; responds 502 Bad Gateway when no server
    claims the name. The callback receives a private copy of the
    response. *)

val fetch_via :
  t -> from:Net.host -> via:Net.host -> Nk_http.Message.request -> (Nk_http.Message.response -> unit) -> unit
(** Ship the request to [via]'s handler regardless of the URL host. *)
