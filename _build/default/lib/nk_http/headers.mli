(** Ordered, case-insensitive HTTP header collection.

    Field names compare case-insensitively (RFC 2616 §4.2); insertion
    order of distinct fields is preserved for wire output. *)

type t

val empty : t

val of_list : (string * string) list -> t

val to_list : t -> (string * string) list
(** In insertion order; names are returned as originally written. *)

val get : t -> string -> string option
(** First value for the field, case-insensitive. *)

val get_all : t -> string -> string list

val set : t -> string -> string -> t
(** Replace all existing values for the field with the single value,
    keeping the original position of the first occurrence. *)

val add : t -> string -> string -> t
(** Append an additional value. *)

val remove : t -> string -> t

val mem : t -> string -> bool

val fold : (string -> string -> 'a -> 'a) -> t -> 'a -> 'a

val length : t -> int

val equal : t -> t -> bool
(** Same fields and values after name normalization, order-sensitive. *)
