(** HTTP/1.1 wire encoding and decoding.

    Used by tests and the trace tooling; inside the simulator messages
    travel as structured values and only their sizes matter. *)

val encode_request : Message.request -> string

val encode_response : Message.response -> string

val decode_request : string -> (Message.request, string) result
(** Expects an absolute URL on the request line (proxy-style). *)

val decode_response : string -> (Message.response, string) result

val request_wire_size : Message.request -> int
(** Bytes on the wire; drives the simulator's bandwidth model. *)

val response_wire_size : Message.response -> int
