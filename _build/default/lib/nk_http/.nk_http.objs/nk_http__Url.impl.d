lib/nk_http/url.ml: List Nk_util Printf String
