lib/nk_http/ip.ml: Int32 Nk_util Printf String
