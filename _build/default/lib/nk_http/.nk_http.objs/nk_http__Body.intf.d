lib/nk_http/body.mli:
