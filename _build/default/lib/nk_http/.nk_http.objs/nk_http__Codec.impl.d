lib/nk_http/codec.ml: Body Buffer Headers Ip List Message Method_ Nk_util Printf Status String Url
