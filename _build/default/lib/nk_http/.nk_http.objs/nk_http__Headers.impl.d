lib/nk_http/headers.ml: List String
