lib/nk_http/message.mli: Body Headers Ip Method_ Status Url
