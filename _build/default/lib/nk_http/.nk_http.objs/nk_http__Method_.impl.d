lib/nk_http/method_.ml: String
