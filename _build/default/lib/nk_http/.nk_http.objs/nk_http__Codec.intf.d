lib/nk_http/codec.mli: Message
