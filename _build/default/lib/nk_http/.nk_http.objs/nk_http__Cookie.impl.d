lib/nk_http/cookie.ml: Buffer List Nk_util Option Printf String
