lib/nk_http/http_date.ml: Array Printf String
