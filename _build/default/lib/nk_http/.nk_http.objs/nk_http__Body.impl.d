lib/nk_http/body.ml: List String
