lib/nk_http/status.ml:
