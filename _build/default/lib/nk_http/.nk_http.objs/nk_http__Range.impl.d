lib/nk_http/range.ml: Body Message Nk_util Printf String
