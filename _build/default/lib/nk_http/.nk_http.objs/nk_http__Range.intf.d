lib/nk_http/range.mli: Message
