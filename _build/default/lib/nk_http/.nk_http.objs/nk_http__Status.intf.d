lib/nk_http/status.mli:
