lib/nk_http/url.mli:
