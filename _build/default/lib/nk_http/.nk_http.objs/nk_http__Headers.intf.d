lib/nk_http/headers.mli:
