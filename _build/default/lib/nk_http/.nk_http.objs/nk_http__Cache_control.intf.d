lib/nk_http/cache_control.mli:
