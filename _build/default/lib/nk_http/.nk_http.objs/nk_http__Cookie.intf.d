lib/nk_http/cookie.mli:
