lib/nk_http/http_date.mli:
