lib/nk_http/cache_control.ml: List Nk_util Option Printf String
