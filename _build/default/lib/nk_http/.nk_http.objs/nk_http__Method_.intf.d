lib/nk_http/method_.mli:
