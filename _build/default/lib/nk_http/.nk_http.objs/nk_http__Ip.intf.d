lib/nk_http/ip.mli:
