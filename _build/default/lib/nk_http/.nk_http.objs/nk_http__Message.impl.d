lib/nk_http/message.ml: Body Cache_control Headers Http_date Ip Method_ Option Printf Status String Url
