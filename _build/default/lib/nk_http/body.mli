(** Message bodies as chunk sequences.

    Mirrors Apache's bucket brigades: a body is a sequence of byte
    chunks; scripts read it chunk by chunk ("the response body is
    accessed in chunks to enable cut-through routing", Fig. 2) while the
    platform can still view the entire instance (§3.1). *)

type t

val empty : t

val of_string : string -> t

val of_chunks : string list -> t

val to_string : t -> string
(** Concatenation of all chunks (the full HTTP instance). *)

val length : t -> int

val is_empty : t -> bool

val chunks : t -> string list

val append : t -> t -> t

type reader
(** A cursor over the chunk sequence. *)

val reader : t -> reader

val read : reader -> string option
(** Next chunk, [None] at end of body. *)

val read_size : reader -> int -> string option
(** Next at most [n] bytes (re-chunking as needed). *)
