(** IPv4 addresses, CIDR blocks, and the client matching used by policy
    predicates (lists of allowable values "support CIDR notation for IP
    addresses" and domain names, §3.1). *)

type t
(** An IPv4 address. *)

val of_string : string -> (t, string) result
(** Dotted quad, e.g. "192.168.0.1". *)

val of_string_exn : string -> t

val to_string : t -> string

val of_int32 : int32 -> t

val to_int32 : t -> int32

val equal : t -> t -> bool

type cidr
(** A CIDR block such as "10.0.0.0/8". *)

val cidr_of_string : string -> (cidr, string) result
(** A bare address parses as a /32 block. *)

val cidr_contains : cidr -> t -> bool

val cidr_to_string : cidr -> string

type client = { ip : t; hostname : string option }
(** What a predicate sees about a client: the address plus the reverse
    name when the deployment resolves one. *)

val client_matches : pattern:string -> client -> bool
(** [pattern] is either CIDR/dotted-quad notation (matched against the
    address) or a domain suffix such as "nyu.edu" (matched against the
    hostname: equal or a subdomain). *)
