(** Cookie header parsing and Set-Cookie construction, as exposed to
    scripts through the cookie vocabulary (§3.1). *)

val parse : string -> (string * string) list
(** Parse a [Cookie:] request header ("k=v; k2=v2"). *)

val to_header : (string * string) list -> string
(** Render pairs back into [Cookie:] form. *)

val set_cookie :
  ?path:string -> ?max_age:int -> ?http_only:bool -> name:string -> value:string -> unit -> string
(** Render a [Set-Cookie:] response header value. *)

val parse_set_cookie : string -> (string * string) option
(** Extract the name/value pair of a [Set-Cookie:] header, ignoring
    attributes. *)
