(** HTTP status codes and reason phrases. *)

type t = int

val reason : t -> string
(** RFC 2616 reason phrase, or ["Unknown"] for unassigned codes. *)

val is_success : t -> bool
val is_redirect : t -> bool
val is_client_error : t -> bool
val is_server_error : t -> bool

val ok : t
val not_modified : t
val moved_permanently : t
val found : t
val bad_request : t
val unauthorized : t
val forbidden : t
val not_found : t
val request_timeout : t
val internal_server_error : t
val service_unavailable : t
val gateway_timeout : t
