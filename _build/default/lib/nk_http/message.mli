(** HTTP requests and responses as mutated by pipeline stages.

    Event handlers modify messages in place — the paper represents both
    as global script objects (§3.1) — so the fields are mutable. *)

type request = {
  mutable meth : Method_.t;
  mutable url : Url.t;
  mutable headers : Headers.t;
  mutable body : Body.t;
  mutable client : Ip.client;
}

type response = {
  mutable status : Status.t;
  mutable resp_headers : Headers.t;
  mutable resp_body : Body.t;
}

val request :
  ?meth:Method_.t ->
  ?headers:(string * string) list ->
  ?body:string ->
  ?client:Ip.client ->
  string ->
  request
(** [request url] builds a GET request from an anonymous client
    (0.0.0.0). Raises [Invalid_argument] on a malformed URL. *)

val response :
  ?status:Status.t -> ?headers:(string * string) list -> ?body:string -> unit -> response

val error_response : Status.t -> response
(** Status line plus a small explanatory text/plain body. *)

val copy_request : request -> request
val copy_response : response -> response

(* Header conveniences. *)

val req_header : request -> string -> string option
val set_req_header : request -> string -> string -> unit
val resp_header : response -> string -> string option
val set_resp_header : response -> string -> string -> unit
val remove_resp_header : response -> string -> unit

val content_type : response -> string option
val content_length : response -> int
(** Physical body length (kept consistent by [set_body]). *)

val set_body : response -> ?content_type:string -> string -> unit
(** Replace the body and update Content-Length (and Content-Type when
    given). *)

val host : request -> string
(** The site the request targets (from the URL). *)

(* Caching semantics. *)

val response_expiry : now:float -> response -> float option
(** Absolute freshness deadline per Cache-Control/Expires/Date; [None]
    when uncacheable or no lifetime given. *)

val cacheable : request -> response -> bool
(** Safe method, 200 status, and cacheable response directives. *)
