let parse s =
  String.split_on_char ';' s
  |> List.filter_map (fun part ->
         let part = String.trim part in
         if part = "" then None
         else
           match Nk_util.Strutil.split_first '=' part with
           | Some (k, v) -> Some (String.trim k, String.trim v)
           | None -> Some (part, ""))

let to_header pairs = String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) pairs)

let set_cookie ?path ?max_age ?(http_only = false) ~name ~value () =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (name ^ "=" ^ value);
  Option.iter (fun p -> Buffer.add_string buf ("; Path=" ^ p)) path;
  Option.iter (fun a -> Buffer.add_string buf (Printf.sprintf "; Max-Age=%d" a)) max_age;
  if http_only then Buffer.add_string buf "; HttpOnly";
  Buffer.contents buf

let parse_set_cookie s =
  match String.split_on_char ';' s with
  | [] -> None
  | first :: _ -> (
    match Nk_util.Strutil.split_first '=' (String.trim first) with
    | Some (k, v) -> Some (String.trim k, String.trim v)
    | None -> None)
