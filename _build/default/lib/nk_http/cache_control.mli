(** Cache-Control directive parsing and expiry computation.

    Implements the expiration-based consistency model Na Kika inherits
    from HTTP (§3.3): max-age / s-maxage, no-cache, no-store, private,
    plus the Expires fallback. *)

type t = {
  max_age : int option;
  s_maxage : int option;
  no_cache : bool;
  no_store : bool;
  private_ : bool;
  public : bool;
  must_revalidate : bool;
}

val empty : t

val parse : string -> t
(** Parse a Cache-Control header value; unknown directives are ignored. *)

val to_string : t -> string

val cacheable : t -> bool
(** False for no-store / private / no-cache (a shared proxy cache may
    not reuse such responses without revalidation, which we fold into
    non-cacheability). *)

val expiry :
  now:float -> date:float option -> cache_control:t -> expires:float option -> float option
(** Absolute expiry time for a response received at [now]:
    s-maxage wins over max-age wins over Expires. [None] means the
    response carries no freshness lifetime (treated as immediately
    stale). *)
