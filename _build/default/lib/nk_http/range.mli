(** HTTP byte ranges (RFC 2616 §14.35, single-range subset).

    §3.1: "the body always represents the entire instance of the HTTP
    resource, so that the resource can be correctly transcoded"; a Na
    Kika node therefore processes the full instance through the
    pipeline and slices the requested range out only when responding to
    the client. *)

type t = {
  first : int option; (** [bytes=first-...] *)
  last : int option; (** [bytes=...-last] (inclusive) or a suffix length *)
}

val parse : string -> t option
(** ["bytes=0-499"], ["bytes=500-"], ["bytes=-200"] (final 200 bytes).
    Multi-range requests are not supported and parse to [None]. *)

val resolve : t -> length:int -> (int * int) option
(** Inclusive byte offsets within an instance of [length] bytes;
    [None] when the range is unsatisfiable. *)

val content_range : first:int -> last:int -> length:int -> string
(** ["bytes first-last/length"]. *)

val apply : t -> Message.response -> bool
(** Slice a 200 response in place into a 206 partial response (body,
    Content-Length, Content-Range). Returns false — leaving the
    response untouched — when it is not a 200 or the range is
    unsatisfiable. *)
