(** URLs and the rewriting rules Na Kika applies to them.

    The paper's deployment appends ".nakika.net" to a URL's hostname so
    the system's name servers can redirect clients to edge nodes (§3);
    [to_nakika] / [of_nakika] implement that rewriting. *)

type t = {
  scheme : string; (** "http" unless stated otherwise *)
  host : string; (** lowercase *)
  port : int; (** 80 when absent *)
  path : string; (** always starts with '/' *)
  query : (string * string) list; (** decoded key/value pairs, in order *)
}

val make : ?scheme:string -> ?port:int -> ?query:(string * string) list -> host:string -> path:string -> unit -> t

val parse : string -> (t, string) result
(** Accepts absolute ("http://host:port/path?k=v") and scheme-less
    ("host/path") forms. *)

val parse_exn : string -> t
(** Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string

val query_get : t -> string -> string option

val with_query : t -> (string * string) list -> t

val with_path : t -> string -> t

val with_host : t -> string -> t

val site : t -> string
(** The site identifier used for per-site accounting and the
    [nakika.js] lookup: "host" or "host:port" for non-default ports. *)

val matches_prefix : t -> string -> bool
(** Predicate-list URL matching (§3.1): the pattern "host/pathprefix"
    (no scheme) matches when the URL's host equals the pattern host, or
    is a subdomain of it, and the URL path extends the pattern path. *)

val nakika_suffix : string
(** ".nakika.net" *)

val to_nakika : t -> t
(** Append the Na Kika suffix to the hostname (idempotent). *)

val of_nakika : t -> t option
(** Strip the suffix, returning the origin URL; [None] when the host is
    not a Na Kika name. *)

val is_nakika : t -> bool

val path_segments : t -> string list
(** Path split on '/', without empty leading segment. *)

val equal : t -> t -> bool
