(** HTTP request methods. *)

type t =
  | GET
  | HEAD
  | POST
  | PUT
  | DELETE
  | OPTIONS
  | TRACE
  | Other of string

val of_string : string -> t
(** Case-insensitive for the known methods; unknown verbs are preserved
    verbatim in [Other]. *)

val to_string : t -> string

val equal : t -> t -> bool

val is_safe : t -> bool
(** GET/HEAD/OPTIONS/TRACE per RFC 2616 §9.1.1 — only safe responses are
    cacheable by the proxy cache. *)
