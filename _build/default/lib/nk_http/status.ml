type t = int

let reason = function
  | 100 -> "Continue"
  | 101 -> "Switching Protocols"
  | 200 -> "OK"
  | 201 -> "Created"
  | 202 -> "Accepted"
  | 204 -> "No Content"
  | 206 -> "Partial Content"
  | 301 -> "Moved Permanently"
  | 302 -> "Found"
  | 303 -> "See Other"
  | 304 -> "Not Modified"
  | 307 -> "Temporary Redirect"
  | 400 -> "Bad Request"
  | 401 -> "Unauthorized"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 410 -> "Gone"
  | 413 -> "Request Entity Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 502 -> "Bad Gateway"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let is_success c = c >= 200 && c < 300
let is_redirect c = c >= 300 && c < 400
let is_client_error c = c >= 400 && c < 500
let is_server_error c = c >= 500 && c < 600

let ok = 200
let not_modified = 304
let moved_permanently = 301
let found = 302
let bad_request = 400
let unauthorized = 401
let forbidden = 403
let not_found = 404
let request_timeout = 408
let internal_server_error = 500
let service_unavailable = 503
let gateway_timeout = 504
