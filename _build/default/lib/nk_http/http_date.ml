let day_names = [| "Sun"; "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat" |]

let month_names =
  [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]

(* Howard Hinnant's civil-from-days algorithm. *)
let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  let y = if m <= 2 then y + 1 else y in
  (y, m, d)

let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = if m > 2 then m - 3 else m + 9 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (365 * yoe) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let format t =
  let secs = int_of_float (floor t) in
  let days = if secs >= 0 then secs / 86400 else (secs - 86399) / 86400 in
  let rem = secs - (days * 86400) in
  let y, m, d = civil_from_days days in
  let dow = (((days mod 7) + 7) mod 7 + 4) mod 7 in
  Printf.sprintf "%s, %02d %s %04d %02d:%02d:%02d GMT" day_names.(dow) d
    month_names.(m - 1) y (rem / 3600) (rem / 60 mod 60) (rem mod 60)

let of_civil ~y ~month ~d ~hh ~mm ~ss =
  float_of_int ((days_from_civil y month d * 86400) + (hh * 3600) + (mm * 60) + ss)

let month_of_abbrev name =
  let rec go i =
    if i >= 12 then None else if month_names.(i) = name then Some (i + 1) else go (i + 1)
  in
  go 0

let month_index name =
  let rec go i = if i >= 12 then None else if month_names.(i) = name then Some (i + 1) else go (i + 1) in
  go 0

let parse s =
  (* "Thu, 01 Jan 1970 00:00:00 GMT" *)
  match String.split_on_char ' ' (String.trim s) with
  | [ _dow; dd; mon; yyyy; time; "GMT" ] -> (
    match
      ( int_of_string_opt dd,
        month_index mon,
        int_of_string_opt yyyy,
        String.split_on_char ':' time )
    with
    | Some d, Some m, Some y, [ hh; mm; ss ] -> (
      match (int_of_string_opt hh, int_of_string_opt mm, int_of_string_opt ss) with
      | Some h, Some mi, Some sec when h < 24 && mi < 60 && sec < 61 ->
        let days = days_from_civil y m d in
        Some (float_of_int ((days * 86400) + (h * 3600) + (mi * 60) + sec))
      | _ -> None)
    | _ -> None)
  | _ -> None
