let crlf = "\r\n"

let encode_headers buf headers =
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_string buf ": ";
      Buffer.add_string buf v;
      Buffer.add_string buf crlf)
    (Headers.to_list headers)

let encode_request (r : Message.request) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%s %s HTTP/1.1%s" (Method_.to_string r.meth) (Url.to_string r.url) crlf);
  encode_headers buf r.headers;
  Buffer.add_string buf crlf;
  Buffer.add_string buf (Body.to_string r.body);
  Buffer.contents buf

let encode_response (r : Message.response) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s%s" r.status (Status.reason r.status) crlf);
  encode_headers buf r.resp_headers;
  Buffer.add_string buf crlf;
  Buffer.add_string buf (Body.to_string r.resp_body);
  Buffer.contents buf

let split_head s =
  match Nk_util.Strutil.index_sub s ~sub:"\r\n\r\n" ~start:0 with
  | None -> Error "missing header terminator"
  | Some i -> Ok (String.sub s 0 i, String.sub s (i + 4) (String.length s - i - 4))

let parse_header_lines lines =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Nk_util.Strutil.split_first ':' line with
      | Some (k, v) -> go ((String.trim k, String.trim v) :: acc) rest
      | None -> Error ("malformed header line: " ^ line))
  in
  go [] lines

let decode_request s =
  match split_head s with
  | Error e -> Error e
  | Ok (head, body) -> (
    match String.split_on_char '\r' head |> List.map (fun l -> Nk_util.Strutil.replace_all l ~sub:"\n" ~by:"") with
    | [] -> Error "empty request"
    | request_line :: header_lines -> (
      match String.split_on_char ' ' request_line with
      | [ meth; target; _version ] -> (
        match (Url.parse target, parse_header_lines header_lines) with
        | Ok url, Ok headers ->
          Ok
            {
              Message.meth = Method_.of_string meth;
              url;
              headers = Headers.of_list headers;
              body = Body.of_string body;
              client = { Ip.ip = Ip.of_int32 0l; hostname = None };
            }
        | Error e, _ -> Error e
        | _, Error e -> Error e)
      | _ -> Error ("malformed request line: " ^ request_line)))

let decode_response s =
  match split_head s with
  | Error e -> Error e
  | Ok (head, body) -> (
    match String.split_on_char '\r' head |> List.map (fun l -> Nk_util.Strutil.replace_all l ~sub:"\n" ~by:"") with
    | [] -> Error "empty response"
    | status_line :: header_lines -> (
      match String.split_on_char ' ' status_line with
      | _version :: code :: _reason -> (
        match (int_of_string_opt code, parse_header_lines header_lines) with
        | Some status, Ok headers ->
          Ok
            {
              Message.status;
              resp_headers = Headers.of_list headers;
              resp_body = Body.of_string body;
            }
        | None, _ -> Error ("bad status code: " ^ code)
        | _, Error e -> Error e)
      | _ -> Error ("malformed status line: " ^ status_line)))

let request_wire_size r = String.length (encode_request r)

let response_wire_size r = String.length (encode_response r)
