type t = {
  max_age : int option;
  s_maxage : int option;
  no_cache : bool;
  no_store : bool;
  private_ : bool;
  public : bool;
  must_revalidate : bool;
}

let empty =
  {
    max_age = None;
    s_maxage = None;
    no_cache = false;
    no_store = false;
    private_ = false;
    public = false;
    must_revalidate = false;
  }

let parse s =
  let directives =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun d -> d <> "")
  in
  List.fold_left
    (fun acc d ->
      let key, value =
        match Nk_util.Strutil.split_first '=' d with
        | Some (k, v) -> (String.lowercase_ascii k, Some (String.trim v))
        | None -> (String.lowercase_ascii d, None)
      in
      let int_value () = Option.bind value int_of_string_opt in
      match key with
      | "max-age" -> { acc with max_age = int_value () }
      | "s-maxage" -> { acc with s_maxage = int_value () }
      | "no-cache" -> { acc with no_cache = true }
      | "no-store" -> { acc with no_store = true }
      | "private" -> { acc with private_ = true }
      | "public" -> { acc with public = true }
      | "must-revalidate" -> { acc with must_revalidate = true }
      | _ -> acc)
    empty directives

let to_string t =
  let parts = ref [] in
  let push s = parts := s :: !parts in
  Option.iter (fun v -> push (Printf.sprintf "max-age=%d" v)) t.max_age;
  Option.iter (fun v -> push (Printf.sprintf "s-maxage=%d" v)) t.s_maxage;
  if t.no_cache then push "no-cache";
  if t.no_store then push "no-store";
  if t.private_ then push "private";
  if t.public then push "public";
  if t.must_revalidate then push "must-revalidate";
  String.concat ", " (List.rev !parts)

let cacheable t = not (t.no_store || t.private_ || t.no_cache)

let expiry ~now ~date ~cache_control:cc ~expires =
  if not (cacheable cc) then None
  else
    match cc.s_maxage with
    | Some age -> Some (now +. float_of_int age)
    | None -> (
      match cc.max_age with
      | Some age -> Some (now +. float_of_int age)
      | None -> (
        match expires with
        | Some exp ->
          (* Expires is absolute; interpret relative to the response Date
             when present so clock skew between origin and proxy cancels. *)
          let base = Option.value date ~default:now in
          Some (now +. (exp -. base))
        | None -> None))
