type t = (string * string) list (* insertion order *)

let norm = String.lowercase_ascii

let empty = []

let of_list l = l

let to_list t = t

let get t name =
  let name = norm name in
  let rec go = function
    | [] -> None
    | (k, v) :: rest -> if norm k = name then Some v else go rest
  in
  go t

let get_all t name =
  let name = norm name in
  List.filter_map (fun (k, v) -> if norm k = name then Some v else None) t

let mem t name = get t name <> None

let remove t name =
  let name = norm name in
  List.filter (fun (k, _) -> norm k <> name) t

let set t name value =
  let nname = norm name in
  let replaced = ref false in
  let t' =
    List.filter_map
      (fun (k, v) ->
        if norm k = nname then
          if !replaced then None
          else begin
            replaced := true;
            Some (k, value)
          end
        else Some (k, v))
      t
  in
  if !replaced then t' else t @ [ (name, value) ]

let add t name value = t @ [ (name, value) ]

let fold f t init = List.fold_left (fun acc (k, v) -> f k v acc) init t

let length = List.length

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun (k1, v1) (k2, v2) -> norm k1 = norm k2 && v1 = v2) a b
