type t =
  | GET
  | HEAD
  | POST
  | PUT
  | DELETE
  | OPTIONS
  | TRACE
  | Other of string

let of_string s =
  match String.uppercase_ascii s with
  | "GET" -> GET
  | "HEAD" -> HEAD
  | "POST" -> POST
  | "PUT" -> PUT
  | "DELETE" -> DELETE
  | "OPTIONS" -> OPTIONS
  | "TRACE" -> TRACE
  | _ -> Other s

let to_string = function
  | GET -> "GET"
  | HEAD -> "HEAD"
  | POST -> "POST"
  | PUT -> "PUT"
  | DELETE -> "DELETE"
  | OPTIONS -> "OPTIONS"
  | TRACE -> "TRACE"
  | Other s -> s

let equal a b =
  match (a, b) with
  | Other x, Other y -> String.uppercase_ascii x = String.uppercase_ascii y
  | _ -> a = b

let is_safe = function GET | HEAD | OPTIONS | TRACE -> true | POST | PUT | DELETE | Other _ -> false
