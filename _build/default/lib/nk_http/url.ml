type t = {
  scheme : string;
  host : string;
  port : int;
  path : string;
  query : (string * string) list;
}

let make ?(scheme = "http") ?(port = 80) ?(query = []) ~host ~path () =
  let path = if path = "" then "/" else if path.[0] = '/' then path else "/" ^ path in
  { scheme; host = String.lowercase_ascii host; port; path; query }

let parse_query qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match Nk_util.Strutil.split_first '=' kv with
             | Some (k, v) -> Some (k, v)
             | None -> Some (kv, ""))

let parse s =
  let s, scheme =
    match Nk_util.Strutil.index_sub s ~sub:"://" ~start:0 with
    | Some i -> (String.sub s (i + 3) (String.length s - i - 3), String.sub s 0 i)
    | None -> (s, "http")
  in
  if s = "" then Error "empty URL"
  else begin
    let hostport, rest =
      match String.index_opt s '/' with
      | Some i -> (String.sub s 0 i, String.sub s i (String.length s - i))
      | None -> (s, "/")
    in
    let path, query =
      match Nk_util.Strutil.split_first '?' rest with
      | Some (p, q) -> (p, parse_query q)
      | None -> (rest, [])
    in
    let host, port =
      match Nk_util.Strutil.split_first ':' hostport with
      | Some (h, p) -> (
        match int_of_string_opt p with
        | Some port when port > 0 && port < 65536 -> (h, port)
        | _ -> (hostport, -1))
      | None -> (hostport, 80)
    in
    if port = -1 then Error ("bad port in URL: " ^ hostport)
    else if host = "" then Error "empty host"
    else Ok { scheme; host = String.lowercase_ascii host; port; path; query }
  end

let parse_exn s =
  match parse s with Ok u -> u | Error e -> invalid_arg ("Url.parse_exn: " ^ e)

let query_string query =
  if query = [] then ""
  else "?" ^ String.concat "&" (List.map (fun (k, v) -> if v = "" then k else k ^ "=" ^ v) query)

let to_string t =
  let port = if t.port = 80 then "" else ":" ^ string_of_int t.port in
  Printf.sprintf "%s://%s%s%s%s" t.scheme t.host port t.path (query_string t.query)

let query_get t k = List.assoc_opt k t.query

let with_query t query = { t with query }

let with_path t path =
  let path = if path = "" then "/" else if path.[0] = '/' then path else "/" ^ path in
  { t with path }

let with_host t host = { t with host = String.lowercase_ascii host }

let site t = if t.port = 80 then t.host else Printf.sprintf "%s:%d" t.host t.port

let host_matches ~pattern host =
  pattern = host || Nk_util.Strutil.ends_with ~suffix:("." ^ pattern) host

let matches_prefix t pattern =
  let pattern = String.lowercase_ascii pattern in
  let phost, ppath =
    match String.index_opt pattern '/' with
    | Some i -> (String.sub pattern 0 i, String.sub pattern i (String.length pattern - i))
    | None -> (pattern, "/")
  in
  host_matches ~pattern:phost t.host && Nk_util.Strutil.starts_with ~prefix:ppath t.path

let nakika_suffix = ".nakika.net"

let is_nakika t = Nk_util.Strutil.ends_with ~suffix:nakika_suffix t.host

let to_nakika t = if is_nakika t then t else { t with host = t.host ^ nakika_suffix }

let of_nakika t =
  if is_nakika t then
    Some { t with host = String.sub t.host 0 (String.length t.host - String.length nakika_suffix) }
  else None

let path_segments t =
  String.split_on_char '/' t.path |> List.filter (fun s -> s <> "")

let equal a b =
  a.scheme = b.scheme && a.host = b.host && a.port = b.port && a.path = b.path
  && a.query = b.query
