type t = { first : int option; last : int option }

let parse s =
  let s = String.trim s in
  if not (Nk_util.Strutil.starts_with ~prefix:"bytes=" s) then None
  else begin
    let spec = String.sub s 6 (String.length s - 6) in
    if String.contains spec ',' then None (* multi-range unsupported *)
    else
      match Nk_util.Strutil.split_first '-' spec with
      | None -> None
      | Some (first, last) -> (
        let parse_opt part =
          if part = "" then Some None
          else
            match int_of_string_opt part with
            | Some n when n >= 0 -> Some (Some n)
            | _ -> None
        in
        match (parse_opt first, parse_opt last) with
        | Some None, Some None -> None (* "bytes=-" is meaningless *)
        | Some first, Some last -> Some { first; last }
        | _ -> None)
  end

let resolve t ~length =
  if length <= 0 then None
  else
    match (t.first, t.last) with
    | Some first, Some last ->
      if first > last || first >= length then None else Some (first, min last (length - 1))
    | Some first, None -> if first >= length then None else Some (first, length - 1)
    | None, Some suffix ->
      if suffix = 0 then None else Some (max 0 (length - suffix), length - 1)
    | None, None -> None

let content_range ~first ~last ~length = Printf.sprintf "bytes %d-%d/%d" first last length

let apply t (resp : Message.response) =
  if resp.Message.status <> 200 then false
  else begin
    let body = Body.to_string resp.Message.resp_body in
    match resolve t ~length:(String.length body) with
    | None -> false
    | Some (first, last) ->
      let slice = String.sub body first (last - first + 1) in
      resp.Message.status <- 206;
      resp.Message.resp_body <- Body.of_string slice;
      Message.set_resp_header resp "Content-Length" (string_of_int (String.length slice));
      Message.set_resp_header resp "Content-Range"
        (content_range ~first ~last ~length:(String.length body));
      true
  end
