type request = {
  mutable meth : Method_.t;
  mutable url : Url.t;
  mutable headers : Headers.t;
  mutable body : Body.t;
  mutable client : Ip.client;
}

type response = {
  mutable status : Status.t;
  mutable resp_headers : Headers.t;
  mutable resp_body : Body.t;
}

let anonymous_client : Ip.client = { ip = Ip.of_int32 0l; hostname = None }

let request ?(meth = Method_.GET) ?(headers = []) ?(body = "") ?(client = anonymous_client) url =
  {
    meth;
    url = Url.parse_exn url;
    headers = Headers.of_list headers;
    body = Body.of_string body;
    client;
  }

let response ?(status = Status.ok) ?(headers = []) ?(body = "") () =
  let headers = Headers.of_list headers in
  let headers =
    if body <> "" && not (Headers.mem headers "Content-Length") then
      Headers.set headers "Content-Length" (string_of_int (String.length body))
    else headers
  in
  { status; resp_headers = headers; resp_body = Body.of_string body }

let error_response status =
  let body = Printf.sprintf "%d %s" status (Status.reason status) in
  response ~status
    ~headers:
      [ ("Content-Type", "text/plain"); ("Content-Length", string_of_int (String.length body)) ]
    ~body ()

let copy_request r =
  { meth = r.meth; url = r.url; headers = r.headers; body = r.body; client = r.client }

let copy_response r =
  { status = r.status; resp_headers = r.resp_headers; resp_body = r.resp_body }

let req_header r name = Headers.get r.headers name

let set_req_header r name value = r.headers <- Headers.set r.headers name value

let resp_header r name = Headers.get r.resp_headers name

let set_resp_header r name value = r.resp_headers <- Headers.set r.resp_headers name value

let remove_resp_header r name = r.resp_headers <- Headers.remove r.resp_headers name

let content_type r = resp_header r "Content-Type"

let content_length r = Body.length r.resp_body

let set_body r ?content_type body =
  r.resp_body <- Body.of_string body;
  set_resp_header r "Content-Length" (string_of_int (String.length body));
  Option.iter (fun ct -> set_resp_header r "Content-Type" ct) content_type

let host r = r.url.Url.host

let response_expiry ~now r =
  let cache_control =
    match resp_header r "Cache-Control" with
    | Some v -> Cache_control.parse v
    | None -> Cache_control.empty
  in
  let date = Option.bind (resp_header r "Date") Http_date.parse in
  let expires = Option.bind (resp_header r "Expires") Http_date.parse in
  Cache_control.expiry ~now ~date ~cache_control ~expires

let cacheable req resp =
  Method_.is_safe req.meth
  && resp.status = Status.ok
  &&
  let cc =
    match resp_header resp "Cache-Control" with
    | Some v -> Cache_control.parse v
    | None -> Cache_control.empty
  in
  Cache_control.cacheable cc
