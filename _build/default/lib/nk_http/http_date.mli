(** RFC 1123 date formatting over simulated epoch seconds.

    The simulator's clock is a float of seconds since the Unix epoch;
    these functions render and parse the HTTP wire format. §6 requires
    absolute expiration times (untrusted nodes cannot be trusted to
    decrement relative ages), so dates appear throughout the cache and
    integrity layers. *)

val format : float -> string
(** e.g. [format 0. = "Thu, 01 Jan 1970 00:00:00 GMT"]. Fractional
    seconds are truncated. *)

val parse : string -> float option
(** Parses the RFC 1123 format produced by [format]. *)

val of_civil : y:int -> month:int -> d:int -> hh:int -> mm:int -> ss:int -> float
(** Epoch seconds for a UTC civil time ([month] is 1-12). Used by the
    access-log parser, whose timestamp format differs from HTTP's. *)

val month_of_abbrev : string -> int option
(** "Jan" -> 1 ... "Dec" -> 12. *)
