type t = int32

let of_string s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] -> (
    let parse x =
      match int_of_string_opt x with Some v when v >= 0 && v <= 255 -> Some v | _ -> None
    in
    match (parse a, parse b, parse c, parse d) with
    | Some a, Some b, Some c, Some d ->
      Ok
        (Int32.logor
           (Int32.shift_left (Int32.of_int a) 24)
           (Int32.of_int ((b lsl 16) lor (c lsl 8) lor d)))
    | _ -> Error ("bad IPv4 octet in " ^ s))
  | _ -> Error ("bad IPv4 address: " ^ s)

let of_string_exn s =
  match of_string s with Ok t -> t | Error e -> invalid_arg ("Ip.of_string_exn: " ^ e)

let to_string t =
  let b i = Int32.to_int (Int32.logand (Int32.shift_right_logical t i) 0xFFl) in
  Printf.sprintf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)

let of_int32 x = x
let to_int32 x = x
let equal = Int32.equal

type cidr = { base : int32; bits : int }

let cidr_of_string s =
  let addr_str, bits =
    match Nk_util.Strutil.split_first '/' s with
    | Some (a, b) -> (a, int_of_string_opt b)
    | None -> (s, Some 32)
  in
  match (of_string addr_str, bits) with
  | Ok base, Some bits when bits >= 0 && bits <= 32 -> Ok { base; bits }
  | Ok _, _ -> Error ("bad prefix length in " ^ s)
  | Error e, _ -> Error e

let mask bits =
  if bits = 0 then 0l else Int32.shift_left (-1l) (32 - bits)

let cidr_contains { base; bits } addr =
  let m = mask bits in
  Int32.logand base m = Int32.logand addr m

let cidr_to_string { base; bits } = Printf.sprintf "%s/%d" (to_string base) bits

type client = { ip : t; hostname : string option }

let looks_like_address pattern =
  pattern <> "" && (pattern.[0] >= '0' && pattern.[0] <= '9')

let client_matches ~pattern client =
  if looks_like_address pattern then
    match cidr_of_string pattern with
    | Ok c -> cidr_contains c client.ip
    | Error _ -> false
  else
    match client.hostname with
    | None -> false
    | Some host ->
      let pattern = String.lowercase_ascii pattern in
      let host = String.lowercase_ascii host in
      host = pattern || Nk_util.Strutil.ends_with ~suffix:("." ^ pattern) host
