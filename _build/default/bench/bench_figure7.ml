(* Figure 7 + the §5.2 local experiments: the SIMMs under the
   single-server and Na Kika configurations.

   Wide area (Figure 7): 12 load-generating client sites across the US
   East Coast, West Coast and Asia; the origin is a PlanetLab-class
   machine in New York with a capped uplink. 120/180/240 clients replay
   the student access logs open-loop (the paper's 4x-accelerated
   replay), so an overloaded server falls behind rather than slowing
   the offered load. Reported: the latency CDF for HTML accesses, the
   fraction of video accesses achieving the 140 Kbps bitrate, and the
   video failure rate.

   Local (§5.2 first half): 160 clients on a LAN (closed loop — the
   stable regime), then with an emulated WAN between the server and
   everything else (80 ms delay, 8 Mbps shared uplink; open loop). *)

type deployment = Single_server | Nk_cold | Nk_warm

let deployment_name = function
  | Single_server -> "single server"
  | Nk_cold -> "Na Kika cold"
  | Nk_warm -> "Na Kika warm"

type region = { rname : string; latency : float }

let regions =
  [
    { rname = "east"; latency = 0.012 };
    { rname = "west"; latency = 0.040 };
    { rname = "asia"; latency = 0.095 };
  ]

(* A video "sees sufficient bandwidth" when it arrives at least as fast
   as its 140 Kbps playback rate; it fails outright past the timeout. *)
let video_deadline =
  float_of_int Core.Workload.Simm.video_bytes /. Core.Workload.Simm.video_bitrate

let video_timeout = 60.0

(* No misbehaving sites in these runs; resource controls stay out of
   the way, as in the paper's application experiments. *)
let nk_config =
  { Core.Node.Config.default with Core.Node.Config.enable_resource_controls = false }

type result = {
  html : Core.Util.Stats.t;
  video_ok : int ref;
  video_slow : int ref;
  video_failed : int ref;
}

let new_result () =
  { html = Core.Util.Stats.create (); video_ok = ref 0; video_slow = ref 0; video_failed = ref 0 }

let video_fraction r =
  let total = !(r.video_ok) + !(r.video_slow) + !(r.video_failed) in
  if total = 0 then 0.0 else 100.0 *. float_of_int !(r.video_ok) /. float_of_int total

let video_failure_rate r =
  let total = !(r.video_ok) + !(r.video_slow) + !(r.video_failed) in
  if total = 0 then 0.0 else 100.0 *. float_of_int !(r.video_failed) /. float_of_int total

let record_sample result req (resp : Core.Http.Message.response) elapsed =
  if Core.Workload.Simm.is_video req then begin
    if resp.Core.Http.Message.status <> 200 || elapsed > video_timeout then
      incr result.video_failed
    else if elapsed <= video_deadline then incr result.video_ok
    else incr result.video_slow
  end
  else if resp.Core.Http.Message.status = 200 then Core.Util.Stats.add result.html elapsed

(* Open-loop session: one simulated student issuing requests on a fixed
   schedule (the 4x-accelerated log replay). *)
let replay_session cluster ~client ~proxy ~rng ~mode ~student ~start ~duration ~rate ~on_response =
  let sim = Core.Node.Cluster.sim cluster in
  let interval = 1.0 /. rate in
  let n = int_of_float (duration /. interval) in
  for k = 0 to n - 1 do
    let jitter = Core.Util.Prng.float rng (interval /. 2.0) in
    Core.Sim.Sim.schedule_at sim
      (start +. (float_of_int k *. interval) +. jitter)
      (fun () ->
        let req = Core.Workload.Simm.make_request ~rng ~mode ~student in
        let t0 = Core.Sim.Sim.now sim in
        let finish resp = on_response req resp (Core.Sim.Sim.now sim -. t0) in
        match proxy with
        | Some p -> Core.Node.Cluster.fetch cluster ~client ~proxy:p req finish
        | None -> Core.Sim.Httpd.fetch (Core.Node.Cluster.web cluster) ~from:client req finish)
  done

(* --- Figure 7: wide area ------------------------------------------------ *)

let wide_area_run ~deployment ~total_clients =
  let cluster = Core.Node.Cluster.create ~seed:23 () in
  let sim = Core.Node.Cluster.sim cluster in
  let net = Core.Node.Cluster.net cluster in
  let origin = Core.Node.Cluster.add_origin cluster ~name:Core.Workload.Simm.host () in
  Core.Workload.Simm.install_origin origin;
  let origin_host = Core.Node.Origin.host origin in
  (* PlanetLab limits each node's bandwidth; the origin's uplink is the
     single-server bottleneck. *)
  Core.Sim.Net.set_egress_limit net origin_host 1_500_000.0;
  let use_edge = deployment <> Single_server in
  let mode = if use_edge then Core.Workload.Simm.Edge else Core.Workload.Simm.Single_server in
  let machines =
    List.concat_map
      (fun region ->
        List.init 4 (fun i ->
            let client =
              Core.Node.Cluster.add_client cluster
                ~name:(Printf.sprintf "%s-lg%d" region.rname i)
            in
            Core.Node.Cluster.connect cluster client origin_host ~latency:region.latency
              ~bandwidth:5_000_000.0;
            let proxy =
              if use_edge then begin
                let p =
                  Core.Node.Cluster.add_proxy cluster
                    ~name:(Printf.sprintf "nk-%s%d.nakika.net" region.rname i)
                    ~config:nk_config ()
                in
                Core.Sim.Net.set_egress_limit net (Core.Node.Node.host p) 700_000.0;
                Core.Node.Cluster.connect cluster client (Core.Node.Node.host p)
                  ~latency:0.004 ~bandwidth:10_000_000.0;
                Core.Node.Cluster.connect cluster (Core.Node.Node.host p) origin_host
                  ~latency:region.latency ~bandwidth:5_000_000.0;
                Some p
              end
              else None
            in
            (client, proxy)))
      regions
  in
  let per_machine = total_clients / List.length machines in
  let result = new_result () in
  let run_phase ~live ~duration =
    let start = Core.Sim.Sim.now sim in
    List.iteri
      (fun mi (client, proxy) ->
        for s = 0 to per_machine - 1 do
          let rng = Core.Util.Prng.create ((mi * 100) + s) in
          replay_session cluster ~client ~proxy ~rng ~mode
            ~student:(Printf.sprintf "stu%d-%d" mi s)
            ~start ~duration ~rate:0.3
            ~on_response:(fun req resp elapsed ->
              if live then record_sample result req resp elapsed)
        done)
      machines;
    Core.Node.Cluster.run cluster
  in
  (match deployment with
   | Nk_warm ->
     run_phase ~live:false ~duration:60.0;
     run_phase ~live:true ~duration:60.0
   | Single_server | Nk_cold -> run_phase ~live:true ~duration:60.0);
  result

let print_cdf label (stats : Core.Util.Stats.t) =
  let points = Core.Util.Stats.cdf stats ~points:10 in
  Printf.printf "  %-16s" label;
  List.iter (fun (v, f) -> Printf.printf " %3.0f%%:%6.1fs" (100.0 *. f) v) points;
  print_newline ()

let figure7 () =
  Harness.header "Figure 7: SIMMs wide-area latency CDF (HTML accesses)";
  print_endline
    "  12 client machines (East Coast / West Coast / Asia), origin in New York,";
  print_endline "  4x-accelerated open-loop log replay; columns are cumulative fractions.";
  List.iter
    (fun total_clients ->
      Printf.printf "\n  -- %d clients --\n" total_clients;
      List.iter
        (fun deployment ->
          let r = wide_area_run ~deployment ~total_clients in
          print_cdf (deployment_name deployment) r.html;
          Printf.printf "  %-16s p90 %.1f s   video>=140Kbps %.1f%%   video failures %.1f%%\n"
            "" (Core.Util.Stats.percentile r.html 90.0) (video_fraction r) (video_failure_rate r))
        [ Single_server; Nk_cold; Nk_warm ])
    [ 120; 180; 240 ];
  print_endline "";
  print_endline "  paper @240 clients: p90 60.1s (server) / 31.6s (cold) / 9.7s (warm);";
  print_endline "  video ok 0% / 11.5% / 80.3%; failures 60.0% / 5.6% / 1.9%";
  print_endline "  shape check: single server >> NK cold > NK warm; video ordering reversed"

(* --- §5.2 local experiments ------------------------------------------- *)

let local_lan_run ~use_edge ~clients:total =
  let cluster = Core.Node.Cluster.create ~seed:29 () in
  let sim = Core.Node.Cluster.sim cluster in
  let origin = Core.Node.Cluster.add_origin cluster ~name:Core.Workload.Simm.host () in
  Core.Workload.Simm.install_origin origin;
  let mode = if use_edge then Core.Workload.Simm.Edge else Core.Workload.Simm.Single_server in
  let proxy =
    if use_edge then
      Some (Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config:nk_config ())
    else None
  in
  let machines =
    List.init 4 (fun i -> Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "lg%d" i))
  in
  let result = new_result () in
  let until = Core.Sim.Sim.now sim +. 60.0 in
  List.iteri
    (fun mi machine ->
      for s = 0 to (total / 4) - 1 do
        let rng = Core.Util.Prng.create ((mi * 1000) + s) in
        let student = Printf.sprintf "s%d-%d" mi s in
        Core.Workload.Driver.closed_loop cluster ~client:machine ?proxy ~think:0.5 ~until
          ~make_request:(fun _ -> Core.Workload.Simm.make_request ~rng ~mode ~student)
          ~on_response:(fun _ req resp elapsed -> record_sample result req resp elapsed)
          ()
      done)
    machines;
  Core.Node.Cluster.run cluster;
  result

let local_wan_run ~use_edge ~clients:total =
  let cluster = Core.Node.Cluster.create ~seed:29 () in
  let sim = Core.Node.Cluster.sim cluster in
  let net = Core.Node.Cluster.net cluster in
  let origin = Core.Node.Cluster.add_origin cluster ~name:Core.Workload.Simm.host () in
  Core.Workload.Simm.install_origin origin;
  let origin_host = Core.Node.Origin.host origin in
  (* 80 ms delay and an 8 Mbps shared uplink at the server (§5.2). *)
  Core.Sim.Net.set_egress_limit net origin_host 1_000_000.0;
  let mode = if use_edge then Core.Workload.Simm.Edge else Core.Workload.Simm.Single_server in
  let proxy =
    if use_edge then begin
      let p = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config:nk_config () in
      Core.Node.Cluster.connect cluster (Core.Node.Node.host p) origin_host ~latency:0.08
        ~bandwidth:10_000_000.0;
      Some p
    end
    else None
  in
  let machines =
    List.init 4 (fun i ->
        let m = Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "lg%d" i) in
        Core.Node.Cluster.connect cluster m origin_host ~latency:0.08 ~bandwidth:10_000_000.0;
        m)
  in
  let result = new_result () in
  let start = Core.Sim.Sim.now sim in
  List.iteri
    (fun mi machine ->
      for s = 0 to (total / 4) - 1 do
        let rng = Core.Util.Prng.create ((mi * 1000) + s) in
        replay_session cluster ~client:machine ~proxy ~rng ~mode
          ~student:(Printf.sprintf "s%d-%d" mi s)
          ~start ~duration:60.0 ~rate:0.13
          ~on_response:(fun req resp elapsed -> record_sample result req resp elapsed)
      done)
    machines;
  Core.Node.Cluster.run cluster;
  result

let simm_local () =
  Harness.header "SIMMs local experiments (§5.2): 160 clients";
  let report label paper_p90 r =
    Printf.printf "  %-40s paper p90 %8s   measured p90 %6.0f ms   video ok %5.1f%%\n" label
      paper_p90
      (1000.0 *. Core.Util.Stats.percentile r.html 90.0)
      (video_fraction r)
  in
  Harness.section "switched LAN (closed loop)";
  report "single server" "904 ms" (local_lan_run ~use_edge:false ~clients:160);
  report "Na Kika proxy" "964 ms" (local_lan_run ~use_edge:true ~clients:160);
  Harness.section "emulated WAN to the server (80 ms, 8 Mbps; open loop)";
  report "single server" "8.88 s" (local_wan_run ~use_edge:false ~clients:160);
  report "Na Kika proxy" "1.21 s" (local_wan_run ~use_edge:true ~clients:160);
  print_endline
    "  shape check: on the LAN the single server edges out the proxy; across the WAN\n\
    \  the proxy wins decisively and video bandwidth collapses for the single server"
