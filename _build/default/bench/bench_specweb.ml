(* §5.3: the modified SPECweb99 benchmark over replicated hard state.

   A single Apache+PHP-style server on the US East Coast versus the same
   content as Na Kika Pages served by five nodes on the West Coast,
   with user registrations and profiles in replicated hard state. The
   clients are on the West Coast; 160 simultaneous connections, 80%
   dynamic requests. PlanetLab-class machines: every server runs at a
   fraction of the reference CPU speed. *)

let connections = 160

let duration = 60.0

let warmup = 10.0

let coast_latency = 0.04 (* West Coast clients <-> East Coast origin *)

let planetlab_speed = 0.25

(* No misbehaving sites; resource controls out of the way. *)
let nk_config =
  { Core.Node.Config.default with Core.Node.Config.enable_resource_controls = false }

type result = { mean_response : float; throughput : float }

let run_php () =
  let cluster = Core.Node.Cluster.create ~seed:31 () in
  let sim = Core.Node.Cluster.sim cluster in
  let origin =
    Core.Node.Cluster.add_origin cluster ~name:Core.Workload.Specweb.host
      ~cpu_speed:planetlab_speed ()
  in
  Core.Workload.Specweb.install_origin origin;
  let origin_host = Core.Node.Origin.host origin in
  let clients =
    List.init 8 (fun i -> Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "wc%d" i))
  in
  List.iter
    (fun c ->
      Core.Node.Cluster.connect cluster c origin_host ~latency:coast_latency
        ~bandwidth:2_000_000.0)
    clients;
  let responses = ref 0 in
  let latency = Core.Util.Stats.create () in
  let t0 = Core.Sim.Sim.now sim in
  let until = t0 +. warmup +. duration in
  List.iteri
    (fun ci client ->
      for s = 0 to (connections / 8) - 1 do
        let rng = Core.Util.Prng.create ((ci * 50) + s) in
        Core.Workload.Driver.closed_loop cluster ~client ~until
          ~make_request:(fun _ ->
            Core.Workload.Specweb.make_request ~rng ~mode:Core.Workload.Specweb.Php)
          ~on_response:(fun _ _ resp elapsed ->
            if Core.Sim.Sim.now sim >= t0 +. warmup && resp.Core.Http.Message.status = 200
            then begin
              incr responses;
              Core.Util.Stats.add latency elapsed
            end)
          ()
      done)
    clients;
  Core.Node.Cluster.run cluster;
  {
    mean_response = Core.Util.Stats.mean latency;
    throughput = float_of_int !responses /. duration;
  }

let run_nakika () =
  let cluster = Core.Node.Cluster.create ~seed:31 () in
  let sim = Core.Node.Cluster.sim cluster in
  let origin =
    Core.Node.Cluster.add_origin cluster ~name:Core.Workload.Specweb.host
      ~cpu_speed:planetlab_speed ()
  in
  Core.Workload.Specweb.install_origin origin;
  let origin_host = Core.Node.Origin.host origin in
  (* Five Na Kika nodes on the West Coast, PlanetLab-class CPUs. *)
  let proxies =
    List.init 5 (fun i ->
        let p =
          Core.Node.Cluster.add_proxy cluster
            ~name:(Printf.sprintf "nk%d.nakika.net" i)
            ~cpu_speed:planetlab_speed ~config:nk_config ()
        in
        Core.Node.Cluster.connect cluster (Core.Node.Node.host p) origin_host
          ~latency:coast_latency ~bandwidth:2_000_000.0;
        p)
  in
  let clients =
    List.init 8 (fun i -> Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "wc%d" i))
  in
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          Core.Node.Cluster.connect cluster c (Core.Node.Node.host p) ~latency:0.005
            ~bandwidth:5_000_000.0)
        proxies;
      Core.Node.Cluster.connect cluster c origin_host ~latency:coast_latency
        ~bandwidth:2_000_000.0)
    clients;
  let responses = ref 0 in
  let latency = Core.Util.Stats.create () in
  let t0 = Core.Sim.Sim.now sim in
  let until = t0 +. warmup +. duration in
  let proxy_array = Array.of_list proxies in
  List.iteri
    (fun ci client ->
      for s = 0 to (connections / 8) - 1 do
        let rng = Core.Util.Prng.create ((ci * 50) + s) in
        let proxy = proxy_array.(((ci * 50) + s) mod Array.length proxy_array) in
        Core.Workload.Driver.closed_loop cluster ~client ~proxy ~until
          ~make_request:(fun _ ->
            Core.Workload.Specweb.make_request ~rng ~mode:Core.Workload.Specweb.Nakika)
          ~on_response:(fun _ _ resp elapsed ->
            if Core.Sim.Sim.now sim >= t0 +. warmup && resp.Core.Http.Message.status = 200
            then begin
              incr responses;
              Core.Util.Stats.add latency elapsed
            end)
          ()
      done)
    clients;
  Core.Node.Cluster.run cluster;
  {
    mean_response = Core.Util.Stats.mean latency;
    throughput = float_of_int !responses /. duration;
  }

let specweb () =
  Harness.header "SPECweb99 (§5.3): PHP single server vs Na Kika Pages + hard state";
  Printf.printf
    "  %d connections, 80%% dynamic, West Coast clients, East Coast origin,\n" connections;
  print_endline "  5 West Coast Na Kika nodes, PlanetLab-class CPUs";
  let php = run_php () in
  let nk = run_nakika () in
  Harness.paper_vs_measured ~label:"PHP: mean response time" ~paper:"13.7 s"
    ~measured:(Printf.sprintf "%.2f s" php.mean_response) ~unit_:"";
  Harness.paper_vs_measured ~label:"PHP: throughput" ~paper:"10.8 rps"
    ~measured:(Printf.sprintf "%.1f rps" php.throughput) ~unit_:"";
  Harness.paper_vs_measured ~label:"Na Kika: mean response time" ~paper:"4.3 s"
    ~measured:(Printf.sprintf "%.2f s" nk.mean_response) ~unit_:"";
  Harness.paper_vs_measured ~label:"Na Kika: throughput" ~paper:"34.3 rps"
    ~measured:(Printf.sprintf "%.1f rps" nk.throughput) ~unit_:"";
  Printf.printf "  speedup: %.1fx response time, %.1fx throughput (paper: 3.2x / 3.2x)\n"
    (php.mean_response /. nk.mean_response)
    (nk.throughput /. php.throughput);
  print_endline
    "  shape check: Na Kika wins ~3x on both metrics; the benefit is the extra CPU\n\
    \  capacity of the five edge nodes executing the dynamic pages"
