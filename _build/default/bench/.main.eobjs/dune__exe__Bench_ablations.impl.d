bench/bench_ablations.ml: Array Core Harness List Printf Sys
