bench/bench_specweb.ml: Array Core Harness List Printf
