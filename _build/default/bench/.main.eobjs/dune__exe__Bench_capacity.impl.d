bench/bench_capacity.ml: Core Harness List Printf
