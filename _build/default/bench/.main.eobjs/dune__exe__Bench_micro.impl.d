bench/bench_micro.ml: Analyze Bechamel Benchmark Char Core Harness Hashtbl Instance List Measure Option Printf Staged String Test Time Toolkit
