bench/bench_integrity.ml: Core Harness List Printf
