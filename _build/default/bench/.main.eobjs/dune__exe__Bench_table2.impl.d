bench/bench_table2.ml: Core Harness List Option Printf
