bench/bench_extensions.ml: Core Harness List Printf
