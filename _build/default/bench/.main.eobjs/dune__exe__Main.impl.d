bench/main.ml: Array Bench_ablations Bench_capacity Bench_extensions Bench_figure7 Bench_integrity Bench_micro Bench_specweb Bench_table2 List Printf String Sys
