bench/harness.ml: Core List Printf
