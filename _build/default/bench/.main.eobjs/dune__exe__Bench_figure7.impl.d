bench/bench_figure7.ml: Core Harness List Printf
