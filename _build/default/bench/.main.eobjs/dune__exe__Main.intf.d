bench/main.mli:
