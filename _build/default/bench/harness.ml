(* Shared experiment plumbing: synchronous fetches over the simulator,
   table printing, and the paper-vs-measured report format. *)

let fetch_sync cluster ~client ?proxy req =
  let result = ref None in
  Core.Node.Cluster.fetch cluster ~client ?proxy req (fun resp -> result := Some resp);
  Core.Node.Cluster.run cluster;
  match !result with
  | Some r -> r
  | None -> failwith "harness: request never completed"

let ms x = x *. 1000.0

let header title =
  Printf.printf "\n=== %s ===\n" title

let row fmt = Printf.printf fmt

let section title = Printf.printf "\n--- %s ---\n" title

(* Run a closed-loop load phase and report achieved throughput over the
   measurement window. *)
type load_result = {
  responses : int; (* 200s inside the window *)
  rejected : int; (* 503s inside the window *)
  errors : int; (* other non-200s *)
  duration : float;
  latency : Core.Util.Stats.t;
}

let throughput r = float_of_int r.responses /. r.duration

let run_load cluster ~clients ~proxy ~duration ~warmup ~make_request () =
  let sim = Core.Node.Cluster.sim cluster in
  let t0 = Core.Sim.Sim.now sim in
  let measure_start = t0 +. warmup in
  let until = measure_start +. duration in
  let responses = ref 0 and rejected = ref 0 and errors = ref 0 in
  let latency = Core.Util.Stats.create () in
  List.iteri
    (fun idx client ->
      Core.Workload.Driver.closed_loop cluster ~client ~proxy ~until
        ~make_request:(fun i -> make_request idx i)
        ~on_response:(fun _ _ resp elapsed ->
          if Core.Sim.Sim.now sim >= measure_start then begin
            match resp.Core.Http.Message.status with
            | 200 ->
              incr responses;
              Core.Util.Stats.add latency elapsed
            | 503 -> incr rejected
            | _ -> incr errors
          end)
        ())
    clients;
  Core.Node.Cluster.run cluster;
  { responses = !responses; rejected = !rejected; errors = !errors; duration; latency }

let paper_vs_measured ~label ~paper ~measured ~unit_ =
  Printf.printf "  %-42s paper %10s   measured %10s %s\n" label paper measured unit_
