(* Table 1 + Table 2: the micro-benchmark configurations and their
   cold/warm latency for a single static 2,096-byte document on a
   switched 100 Mbit LAN. *)

type kind = Proxy | Dht | Admin | Pred of int | Match1

let kind_name = function
  | Proxy -> "Proxy"
  | Dht -> "DHT"
  | Admin -> "Admin"
  | Pred n -> Printf.sprintf "Pred-%d" n
  | Match1 -> "Match-1"

let kind_description = function
  | Proxy -> "a regular Apache-style proxy"
  | Dht -> "the proxy with an integrated DHT"
  | Admin -> "Na Kika: two admin stages, matching predicates, empty handlers"
  | Pred n -> Printf.sprintf "Admin plus a site stage with %d non-matching policies" n
  | Match1 -> "Admin plus a site stage with one matching policy, empty handlers"

let configs = [ Proxy; Dht; Admin; Pred 0; Pred 1; Match1; Pred 10; Pred 50; Pred 100 ]

let paper_cold = function
  | Proxy -> 3.0
  | Dht -> 5.0
  | Admin -> 16.0
  | Pred 0 -> 19.0
  | Pred 1 -> 20.0
  | Match1 -> 21.0
  | Pred 10 -> 22.0
  | Pred 50 -> 30.0
  | Pred 100 -> 41.0
  | Pred _ -> nan

let paper_warm = function Proxy | Dht -> 1.0 | _ -> 2.0

let host = "www.google.com"

let node_config = function
  | Proxy -> Core.Node.Config.plain_proxy
  | Dht -> { Core.Node.Config.plain_proxy with Core.Node.Config.enable_dht = true }
  | Admin | Pred _ | Match1 ->
    (* Resource control is disabled for these experiments (§5.1). *)
    { Core.Node.Config.default with Core.Node.Config.enable_resource_controls = false }

let site_script = function
  | Proxy | Dht | Admin -> None
  | Pred n -> Some (Core.Workload.Static_page.pred_script ~host ~n ~matching:false)
  | Match1 -> Some (Core.Workload.Static_page.pred_script ~host ~n:0 ~matching:true)

let build kind =
  let cluster = Core.Node.Cluster.create ~seed:3 () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:host () in
  Core.Workload.Static_page.install origin;
  Option.iter
    (fun script ->
      Core.Node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
        ~max_age:300 script)
    (site_script kind);
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" ~config:(node_config kind) () in
  let client = Core.Node.Cluster.add_client cluster ~name:"client" in
  (cluster, proxy, client)

let measure kind =
  let cluster, proxy, client = build kind in
  let sim = Core.Node.Cluster.sim cluster in
  let request () =
    Core.Http.Message.request (Printf.sprintf "http://%s%s" host Core.Workload.Static_page.page_path)
  in
  let timed () =
    let t0 = Core.Sim.Sim.now sim in
    let resp = Harness.fetch_sync cluster ~client ~proxy (request ()) in
    assert (resp.Core.Http.Message.status = 200);
    Core.Sim.Sim.now sim -. t0
  in
  let cold = timed () in
  (* Warm: average several cache-hot accesses. *)
  let warm_samples = List.init 10 (fun _ -> timed ()) in
  let warm = List.fold_left ( +. ) 0.0 warm_samples /. 10.0 in
  (cold, warm)

let table1 () =
  Harness.header "Table 1: micro-benchmark configurations";
  List.iter
    (fun kind -> Printf.printf "  %-9s %s\n" (kind_name kind) (kind_description kind))
    configs

let table2 () =
  Harness.header
    "Table 2: latency (ms) for a static 2,096-byte page, cold vs warm cache";
  Printf.printf "  %-9s  %24s  %24s\n" "" "cold (paper / measured)" "warm (paper / measured)";
  List.iter
    (fun kind ->
      let cold, warm = measure kind in
      Printf.printf "  %-9s  %10.0f / %9.2f  %10.0f / %9.2f\n" (kind_name kind)
        (paper_cold kind) (Harness.ms cold) (paper_warm kind) (Harness.ms warm))
    configs;
  print_endline
    "  shape check: cold grows Proxy < DHT < Admin < Pred-0 .. Pred-100; warm stays flat"
