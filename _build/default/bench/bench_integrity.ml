(* §6 (X1): content integrity. Static content: hash + signature
   round-trips and tamper detection through a misbehaving cache.
   Processed content: the probabilistic verification model — clients
   sample a fraction of responses for re-execution on another proxy;
   tampering nodes are reported and evicted. *)

let static_integrity () =
  Harness.section "static content: X-Content-SHA256 / X-Signature";
  let key = "publisher-signing-key" in
  let make_signed body =
    let resp =
      Core.Http.Message.response
        ~headers:
          [ ("Content-Type", "text/html"); ("Expires", Core.Http.Http_date.format 5000.0) ]
        ~body ()
    in
    (match Core.Integrity.Integrity.sign ~key resp with
     | Ok () -> ()
     | Error v -> failwith (Core.Integrity.Integrity.violation_to_string v));
    resp
  in
  let n = 1000 in
  let ok = ref 0 and caught = ref 0 in
  let rng = Core.Util.Prng.create 77 in
  for i = 0 to n - 1 do
    let resp = make_signed (Printf.sprintf "<html>medical study %d</html>" i) in
    (* A third of the copies pass through a node that falsifies them. *)
    let tampered = i mod 3 = 0 in
    if tampered then
      Core.Http.Message.set_body resp
        (Printf.sprintf "<html>falsified study %d</html>" (Core.Util.Prng.int rng 1000));
    match Core.Integrity.Integrity.verify ~key ~now:100.0 resp with
    | Ok () -> if not tampered then incr ok else failwith "tampering missed!"
    | Error _ -> if tampered then incr caught else failwith "false positive!"
  done;
  Printf.printf "  %d objects: %d verified clean, %d falsifications caught, 0 misses\n" n !ok
    !caught;
  (* Freshness: a node may not serve content past its signed Expires. *)
  let stale = make_signed "<html>old</html>" in
  Printf.printf "  stale copy rejected after signed Expires: %b\n"
    (Core.Integrity.Integrity.verify ~key ~now:6000.0 stale = Error Core.Integrity.Integrity.Stale)

let probabilistic_verification () =
  Harness.section "processed content: probabilistic re-execution";
  List.iter
    (fun fraction ->
      let verifier = Core.Integrity.Verifier.create ~sample_fraction:fraction ~eviction_threshold:3 () in
      Core.Integrity.Verifier.register_node verifier "honest";
      Core.Integrity.Verifier.register_node verifier "tamperer";
      let rng = Core.Util.Prng.create 13 in
      let observations = ref 0 in
      while Core.Integrity.Verifier.is_member verifier "tamperer" && !observations < 100_000 do
        incr observations;
        (* every response: the honest node's re-execution matches ... *)
        if Core.Integrity.Verifier.should_sample verifier ~rng then begin
          ignore
            (Core.Integrity.Verifier.check verifier ~node:"honest" ~original:"page"
               ~reexecuted:"page");
          (* ... the tamperer's never does. *)
          ignore
            (Core.Integrity.Verifier.check verifier ~node:"tamperer" ~original:"page"
               ~reexecuted:"defaced page")
        end
      done;
      Printf.printf
        "  sampling %4.1f%%: tamperer evicted after %6d responses (expected ~%.0f); honest node untouched: %b\n"
        (100.0 *. fraction) !observations
        (3.0 /. fraction)
        (Core.Integrity.Verifier.is_member verifier "honest"))
    [ 0.01; 0.05; 0.20 ]

let integrity () =
  Harness.header "Content integrity (§6)";
  static_integrity ();
  probabilistic_verification ()
