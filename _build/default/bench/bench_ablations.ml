(* Ablations for the design choices DESIGN.md calls out:
   - the decision-tree matcher vs a brute-force predicate scan,
   - scripting-context reuse vs a fresh context per request,
   - congestion-based resource control vs an a-priori quota,
   - cooperative (DHT) caching vs isolated per-node caches. *)

let time_per_op f iterations =
  let t0 = Sys.time () in
  for _ = 1 to iterations do
    f ()
  done;
  (Sys.time () -. t0) /. float_of_int iterations *. 1e6 (* microseconds *)

let matcher () =
  Harness.section "ablation: decision tree vs brute-force matching";
  let req = Core.Http.Message.request "http://site500.org/some/path" in
  List.iter
    (fun n ->
      let policies =
        List.init n (fun i ->
            Core.Policy.Policy.make
              ~urls:[ Printf.sprintf "site%d.org" i ]
              ~order:i ())
      in
      let tree = Core.Policy.Decision_tree.build policies in
      let iterations = 2000 in
      let tree_us =
        time_per_op (fun () -> ignore (Core.Policy.Decision_tree.find_closest tree req)) iterations
      in
      let brute_us =
        time_per_op (fun () -> ignore (Core.Policy.Policy.closest_match policies req)) iterations
      in
      Printf.printf
        "  %5d policies: tree %8.2f us/lookup   brute force %8.2f us/lookup   (%.0fx)\n" n
        tree_us brute_us (brute_us /. tree_us))
    [ 10; 100; 1000 ]

let context_reuse () =
  Harness.section "ablation: scripting-context reuse vs fresh context per request";
  let host = Core.Vocab.Hostcall.stub () in
  let make () =
    let ctx = Core.Script.Interp.create () in
    Core.Vocab.Platform_v.install_all host ctx;
    ctx
  in
  let fresh_us = time_per_op (fun () -> ignore (make ())) 500 in
  let pool = Core.Script.Context_pool.create ~make () in
  let reuse_us =
    time_per_op
      (fun () ->
        let ctx = Core.Script.Context_pool.acquire pool in
        Core.Script.Context_pool.release pool ctx)
      5000
  in
  Printf.printf "  fresh context+vocabularies: %8.1f us    pooled reuse: %8.2f us   (%.0fx)\n"
    fresh_us reuse_us (fresh_us /. reuse_us);
  print_endline "  (the paper measured 1.5 ms create vs 3 us reuse on 2006 hardware)"

let quota_vs_congestion () =
  Harness.section "ablation: congestion-based control vs a-priori quota";
  (* A legitimate burst: 40 clients hammering one site for 10 s. An
     a-priori per-client quota (the rate-limit wall) set for "normal"
     traffic rejects the burst tail; congestion-based control admits
     everything the node can actually handle. *)
  let run ~wall =
    let cluster = Core.Node.Cluster.create ?client_wall:wall ~seed:41 () in
    let origin = Core.Node.Cluster.add_origin cluster ~name:"event.example.org" () in
    Core.Node.Origin.set_static origin ~path:"/live.html" ~max_age:60 "<html>scores</html>";
    let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
    let clients =
      List.init 40 (fun i -> Core.Node.Cluster.add_client cluster ~name:(Printf.sprintf "c%d" i))
    in
    let sim = Core.Node.Cluster.sim cluster in
    let ok = ref 0 and rejected = ref 0 in
    List.iteri
      (fun i client ->
        (* Each load generator is a distinct client address. *)
        let addr =
          { Core.Http.Ip.ip = Core.Http.Ip.of_string_exn (Printf.sprintf "10.0.0.%d" (i + 1));
            hostname = None }
        in
        Core.Workload.Driver.closed_loop cluster ~client ~proxy ~think:0.05
          ~until:(Core.Sim.Sim.now sim +. 10.0)
          ~make_request:(fun _ ->
            Core.Http.Message.request ~client:addr "http://event.example.org/live.html")
          ~on_response:(fun _ _ resp _ ->
            if resp.Core.Http.Message.status = 200 then incr ok else incr rejected)
          ())
      clients;
    Core.Node.Cluster.run cluster;
    (!ok, !rejected)
  in
  let q_ok, q_rej = run ~wall:(Some (Core.Pipeline.Walls.rate_limit_wall ~max_per_client:60)) in
  let c_ok, c_rej = run ~wall:None in
  Printf.printf "  a-priori quota (60 req/client):  %5d served, %5d rejected (%.0f%% lost)\n"
    q_ok q_rej
    (100.0 *. float_of_int q_rej /. float_of_int (q_ok + q_rej));
  Printf.printf "  congestion-based control:        %5d served, %5d rejected\n" c_ok c_rej;
  print_endline
    "  the quota needs an administrator to guess the right constant (§3.2); congestion\n\
    \  control admits everything while the node is uncongested"

let dht_cooperation () =
  Harness.section "ablation: cooperative (DHT) caching vs isolated caches";
  let run ~enable_dht =
    let config = { Core.Node.Config.default with Core.Node.Config.enable_dht } in
    let cluster = Core.Node.Cluster.create ~seed:43 () in
    let origin = Core.Node.Cluster.add_origin cluster ~name:"content.example.org" () in
    for i = 0 to 199 do
      Core.Node.Origin.set_static origin
        ~path:(Printf.sprintf "/object%d.html" i)
        ~max_age:600
        (Printf.sprintf "<html>object %d</html>" i)
    done;
    Core.Node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
      ~max_age:600 "var p = new Policy(); p.onResponse = function() { }; p.register();";
    let proxies =
      List.init 8 (fun i ->
          Core.Node.Cluster.add_proxy cluster ~name:(Printf.sprintf "nk%d.nakika.net" i) ~config ())
    in
    let client = Core.Node.Cluster.add_client cluster ~name:"c" in
    let rng = Core.Util.Prng.create 9 in
    let proxies = Array.of_list proxies in
    let sim = Core.Node.Cluster.sim cluster in
    (* 2000 requests for 200 objects spread over 8 proxies. *)
    let remaining = ref 2000 in
    let rec next () =
      if !remaining > 0 then begin
        decr remaining;
        let obj = Core.Util.Prng.int rng 200 in
        let proxy = proxies.(Core.Util.Prng.int rng 8) in
        Core.Node.Cluster.fetch cluster ~client ~proxy
          (Core.Http.Message.request
             (Printf.sprintf "http://content.example.org/object%d.html" obj))
          (fun _ -> Core.Sim.Sim.schedule sim ~delay:0.01 next)
      end
    in
    next ();
    Core.Node.Cluster.run cluster;
    Core.Node.Origin.request_count origin
  in
  let isolated = run ~enable_dht:false in
  let cooperative = run ~enable_dht:true in
  Printf.printf
    "  2000 requests, 200 objects, 8 nodes: origin fetches %d isolated vs %d cooperative (%.1fx fewer)\n"
    isolated cooperative
    (float_of_int isolated /. float_of_int cooperative);
  print_endline "  one cached copy in the network suffices to avoid origin accesses (§1)"


let replication_strategies () =
  Harness.section "ablation: optimistic vs primary-serialized hard state";
  (* Gao-style tradeoff (§3.3): optimistic replication applies writes
     locally at once (fast, convergent, last-writer-wins); routing
     through a primary serializes all updates (one authoritative order)
     at the cost of a round trip before the write is visible. *)
  let run strategy =
    let sim = Core.Sim.Sim.create () in
    let net = Core.Sim.Net.create sim () in
    let bus = Core.Replication.Message_bus.create net in
    let nodes =
      List.init 5 (fun i ->
          let name = Printf.sprintf "edge%d" i in
          let host = Core.Sim.Net.add_host net ~name () in
          Core.Replication.Replication.attach ~bus ~name ~host
            ~store:(Core.Replication.Store.create ()) ~site:"a.org" strategy)
    in
    let writer = List.nth nodes 4 in
    let t0 = Core.Sim.Sim.now sim in
    ignore (Core.Replication.Replication.update writer ~key:"k" ~value:"v");
    let local_visible = Core.Replication.Replication.read writer ~key:"k" = Some "v" in
    Core.Sim.Sim.run sim;
    let converged =
      List.for_all (fun n -> Core.Replication.Replication.read n ~key:"k" = Some "v") nodes
    in
    (local_visible, converged, Core.Sim.Sim.now sim -. t0)
  in
  let o_local, o_conv, o_time = run Core.Replication.Replication.Optimistic in
  let p_local, p_conv, p_time = run (Core.Replication.Replication.Primary "edge0") in
  Printf.printf
    "  optimistic:          write visible locally at once: %b   all converged: %b (%.0f us)\n"
    o_local o_conv (1e6 *. o_time);
  Printf.printf
    "  primary-serialized:  write visible locally at once: %b   all converged: %b (%.0f us)\n"
    p_local p_conv (1e6 *. p_time);
  print_endline
    "  sites pick their trade-off per §3.3: availability (optimistic) vs\n\
    \  serializability (route updates through a primary)"

let ablations () =
  Harness.header "Ablations";
  matcher ();
  context_reuse ();
  quota_vs_congestion ();
  dht_cooperation ();
  replication_strategies ()
