(* §5.4: the four extensions — run each headlessly to confirm it works,
   and report lines of code against the paper's development-effort
   table. *)

let fetch cluster ~client ~proxy req = Harness.fetch_sync cluster ~client ~proxy req

let check name ok = Printf.printf "  %-24s %s\n" name (if ok then "works" else "BROKEN")

let run_nkp () =
  (* A .nkp page executed at the edge. *)
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"www.spec99.org" () in
  Core.Workload.Specweb.install_origin origin;
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"c" in
  let resp =
    fetch cluster ~client ~proxy
      (Core.Http.Message.request
         "http://www.spec99.org/nkp/register.nkp?user=eve&profile=p9")
  in
  Core.Util.Strutil.contains_sub
    (Core.Http.Body.to_string resp.Core.Http.Message.resp_body)
    ~sub:"eve: registered"

let run_annotations () =
  let cluster = Core.Node.Cluster.create () in
  let simm = Core.Node.Cluster.add_origin cluster ~name:"simm.med.nyu.edu" () in
  Core.Workload.Simm.install_origin simm;
  let notes = Core.Node.Cluster.add_origin cluster ~name:"notes.medcommunity.org" () in
  Core.Node.Origin.set_static notes ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300
    (Core.Workload.Extensions.annotations ~site:"notes.medcommunity.org"
       ~target_site:"simm.med.nyu.edu");
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"c" in
  ignore
    (fetch cluster ~client ~proxy
       (Core.Http.Message.request
          "http://notes.medcommunity.org/annotate?target=content/m1/lec1.xml&text=note-1"));
  let resp =
    fetch cluster ~client ~proxy
      (Core.Http.Message.request "http://notes.medcommunity.org/simm/content/m1/lec1.xml")
  in
  Core.Util.Strutil.contains_sub
    (Core.Http.Body.to_string resp.Core.Http.Message.resp_body)
    ~sub:"note-1"

let run_transcoding () =
  let cluster = Core.Node.Cluster.create () in
  let origin = Core.Node.Cluster.add_origin cluster ~name:"photos.example.org" () in
  let img = Core.Vocab.Image.synthesize ~width:640 ~height:480 ~seed:4 in
  Core.Node.Origin.set_static origin ~path:"/p.jpg" ~content_type:"image/jpeg" ~max_age:300
    (Core.Vocab.Image.encode img Core.Vocab.Image.Rle);
  Core.Node.Origin.set_static origin ~path:"/nakika.js" ~content_type:"text/javascript"
    ~max_age:300 Core.Workload.Extensions.image_transcoding;
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"c" in
  let resp =
    fetch cluster ~client ~proxy
      (Core.Http.Message.request
         ~headers:[ ("User-Agent", "Nokia6600") ]
         "http://photos.example.org/p.jpg")
  in
  match
    Core.Vocab.Image.dimensions (Core.Http.Body.to_string resp.Core.Http.Message.resp_body)
  with
  | Some (w, h) -> w <= 176 && h <= 208
  | None -> false

let run_blacklist () =
  let cluster = Core.Node.Cluster.create () in
  let policy = Core.Node.Cluster.add_origin cluster ~name:"policy.nakika.net" () in
  Core.Node.Origin.set_static policy ~path:"/blacklist.txt" ~content_type:"text/plain"
    ~max_age:300 "bad.example.com\n";
  Core.Node.Origin.set_static policy ~path:"/blocker.js" ~content_type:"text/javascript"
    ~max_age:300
    (Core.Workload.Extensions.blacklist_generator
       ~url:"http://policy.nakika.net/blacklist.txt");
  Core.Node.Origin.set_static (Core.Node.Cluster.nakika_origin cluster) ~path:"/clientwall.js"
    ~content_type:"text/javascript" ~max_age:300
    {| var p = new Policy(); p.nextStages = ["http://policy.nakika.net/blocker.js"]; p.register(); |};
  let bad = Core.Node.Cluster.add_origin cluster ~name:"bad.example.com" () in
  Core.Node.Origin.set_static bad ~path:"/x" ~max_age:300 "nope";
  let proxy = Core.Node.Cluster.add_proxy cluster ~name:"nk1.nakika.net" () in
  let client = Core.Node.Cluster.add_client cluster ~name:"c" in
  let blocked = fetch cluster ~client ~proxy (Core.Http.Message.request "http://bad.example.com/x") in
  blocked.Core.Http.Message.status = 403

let extensions () =
  Harness.header "Extensions (§5.4): functionality and lines of code";
  check "Na Kika Pages" (run_nkp ());
  check "annotations" (run_annotations ());
  check "image transcoding" (run_transcoding ());
  check "blacklist blocking" (run_blacklist ());
  print_endline "";
  Printf.printf "  %-24s %18s %14s\n" "" "paper LoC" "our LoC";
  List.iter
    (fun (name, source, paper_loc) ->
      Printf.printf "  %-24s %18d %14d\n" name paper_loc
        (Core.Workload.Extensions.loc source))
    Core.Workload.Extensions.all;
  print_endline
    "  (paper: nkp 60; annotations 50 new + 180 reused; transcoding 80; blacklist 70)"
