(* The proxy cache: freshness, LRU eviction, size accounting; and the
   TTL'd memo cache. *)

open Core.Cache
open Core.Http

let resp ?(body = "content") ?(headers = []) () = Message.response ~headers ~body ()

let test_miss_then_hit () =
  let c = Http_cache.create () in
  Alcotest.(check bool) "miss" true (Http_cache.lookup c ~now:0.0 ~key:"k" = None);
  Http_cache.insert c ~now:0.0 ~key:"k" ~expiry:(Some 100.0) (resp ());
  (match Http_cache.lookup c ~now:1.0 ~key:"k" with
   | Some r -> Alcotest.(check string) "body" "content" (Body.to_string r.Message.resp_body)
   | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "hits" 1 (Http_cache.hits c);
  Alcotest.(check int) "misses" 1 (Http_cache.misses c)

let test_expiry () =
  let c = Http_cache.create () in
  Http_cache.insert c ~now:0.0 ~key:"k" ~expiry:(Some 10.0) (resp ());
  Alcotest.(check bool) "fresh" true (Http_cache.lookup c ~now:9.9 ~key:"k" <> None);
  Alcotest.(check bool) "expired" true (Http_cache.lookup c ~now:10.0 ~key:"k" = None);
  (* Stale entries are retained for revalidation. *)
  Alcotest.(check int) "stale entry retained" 1 (Http_cache.entry_count c);
  Alcotest.(check bool) "stale lookup sees it" true (Http_cache.lookup_stale c ~key:"k" <> None)

let test_refresh_revives_stale () =
  let c = Http_cache.create () in
  Http_cache.insert c ~now:0.0 ~key:"k" ~expiry:(Some 10.0) (resp ());
  Alcotest.(check bool) "stale" true (Http_cache.lookup c ~now:20.0 ~key:"k" = None);
  Http_cache.refresh c ~key:"k" ~expiry:30.0;
  Alcotest.(check bool) "fresh again after 304" true
    (Http_cache.lookup c ~now:20.0 ~key:"k" <> None);
  (* Refreshing an absent key is a no-op. *)
  Http_cache.refresh c ~key:"ghost" ~expiry:99.0;
  Alcotest.(check bool) "ghost absent" true (Http_cache.lookup c ~now:20.0 ~key:"ghost" = None)

let test_no_expiry_not_stored () =
  let c = Http_cache.create () in
  Http_cache.insert c ~now:0.0 ~key:"k" ~expiry:None (resp ());
  Alcotest.(check int) "not stored" 0 (Http_cache.entry_count c);
  Http_cache.insert c ~now:50.0 ~key:"k2" ~expiry:(Some 10.0) (resp ());
  Alcotest.(check int) "already-stale not stored" 0 (Http_cache.entry_count c)

let test_returned_copy_isolated () =
  let c = Http_cache.create () in
  Http_cache.insert c ~now:0.0 ~key:"k" ~expiry:(Some 100.0) (resp ~body:"original" ());
  let r1 = Option.get (Http_cache.lookup c ~now:1.0 ~key:"k") in
  Message.set_body r1 "mutated";
  let r2 = Option.get (Http_cache.lookup c ~now:2.0 ~key:"k") in
  Alcotest.(check string) "unaffected" "original" (Body.to_string r2.Message.resp_body)

let test_insert_copy_isolated () =
  let c = Http_cache.create () in
  let original = resp ~body:"original" () in
  Http_cache.insert c ~now:0.0 ~key:"k" ~expiry:(Some 100.0) original;
  Message.set_body original "mutated after insert";
  let r = Option.get (Http_cache.lookup c ~now:1.0 ~key:"k") in
  Alcotest.(check string) "snapshot at insert" "original" (Body.to_string r.Message.resp_body)

let test_lru_eviction () =
  (* Three ~1KB entries in a cache sized for two. *)
  let body = String.make 1000 'x' in
  let c = Http_cache.create ~max_bytes:2500 () in
  Http_cache.insert c ~now:0.0 ~key:"a" ~expiry:(Some 100.0) (resp ~body ());
  Http_cache.insert c ~now:0.0 ~key:"b" ~expiry:(Some 100.0) (resp ~body ());
  (* touch a so b becomes LRU *)
  ignore (Http_cache.lookup c ~now:1.0 ~key:"a");
  Http_cache.insert c ~now:2.0 ~key:"c" ~expiry:(Some 100.0) (resp ~body ());
  Alcotest.(check bool) "a kept" true (Http_cache.lookup c ~now:3.0 ~key:"a" <> None);
  Alcotest.(check bool) "b evicted" true (Http_cache.lookup c ~now:3.0 ~key:"b" = None);
  Alcotest.(check bool) "c kept" true (Http_cache.lookup c ~now:3.0 ~key:"c" <> None);
  Alcotest.(check int) "one eviction" 1 (Http_cache.evictions c)

let test_oversized_entry_ignored () =
  let c = Http_cache.create ~max_bytes:100 () in
  Http_cache.insert c ~now:0.0 ~key:"big" ~expiry:(Some 100.0) (resp ~body:(String.make 1000 'x') ());
  Alcotest.(check int) "ignored" 0 (Http_cache.entry_count c)

let test_replace_updates_size () =
  let c = Http_cache.create () in
  Http_cache.insert c ~now:0.0 ~key:"k" ~expiry:(Some 100.0) (resp ~body:(String.make 1000 'x') ());
  let size1 = Http_cache.size_bytes c in
  Http_cache.insert c ~now:0.0 ~key:"k" ~expiry:(Some 100.0) (resp ~body:"tiny" ());
  Alcotest.(check bool) "size shrank" true (Http_cache.size_bytes c < size1);
  Alcotest.(check int) "one entry" 1 (Http_cache.entry_count c)

let test_remove_and_clear () =
  let c = Http_cache.create () in
  Http_cache.insert c ~now:0.0 ~key:"a" ~expiry:(Some 100.0) (resp ());
  Http_cache.insert c ~now:0.0 ~key:"b" ~expiry:(Some 100.0) (resp ());
  Http_cache.remove c ~key:"a";
  Alcotest.(check int) "one left" 1 (Http_cache.entry_count c);
  Http_cache.clear c;
  Alcotest.(check int) "empty" 0 (Http_cache.entry_count c);
  Alcotest.(check int) "no bytes" 0 (Http_cache.size_bytes c)

let test_mem () =
  let c = Http_cache.create () in
  Http_cache.insert c ~now:0.0 ~key:"k" ~expiry:(Some 10.0) (resp ());
  Alcotest.(check bool) "mem fresh" true (Http_cache.mem c ~now:5.0 ~key:"k");
  Alcotest.(check bool) "mem stale" false (Http_cache.mem c ~now:15.0 ~key:"k")

let lru_never_exceeds_budget_prop =
  QCheck.Test.make ~name:"http cache never exceeds its byte budget" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (int_range 1 2000))
    (fun sizes ->
      let c = Http_cache.create ~max_bytes:5000 () in
      List.iteri
        (fun i n ->
          Http_cache.insert c ~now:0.0
            ~key:(string_of_int i)
            ~expiry:(Some 100.0)
            (resp ~body:(String.make n 'x') ()))
        sizes;
      Http_cache.size_bytes c <= 5000)

let test_memo_cache () =
  let m : string Memo_cache.t = Memo_cache.create () in
  Alcotest.(check (option string)) "miss" None (Memo_cache.find m ~now:0.0 "k");
  Memo_cache.put m ~key:"k" ~expiry:10.0 "value";
  Alcotest.(check (option string)) "hit" (Some "value") (Memo_cache.find m ~now:5.0 "k");
  Alcotest.(check (option string)) "expired" None (Memo_cache.find m ~now:10.0 "k");
  Alcotest.(check int) "expired entry dropped" 0 (Memo_cache.size m);
  Alcotest.(check int) "hits" 1 (Memo_cache.hits m);
  Alcotest.(check int) "misses" 2 (Memo_cache.misses m)

let test_memo_cache_replace () =
  let m : int Memo_cache.t = Memo_cache.create () in
  Memo_cache.put m ~key:"k" ~expiry:10.0 1;
  Memo_cache.put m ~key:"k" ~expiry:20.0 2;
  Alcotest.(check (option int)) "replaced" (Some 2) (Memo_cache.find m ~now:15.0 "k");
  Memo_cache.remove m "k";
  Alcotest.(check (option int)) "removed" None (Memo_cache.find m ~now:15.0 "k")

let suite =
  [
    Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
    Alcotest.test_case "entries expire" `Quick test_expiry;
    Alcotest.test_case "refresh revives stale entries (304 path)" `Quick
      test_refresh_revives_stale;
    Alcotest.test_case "lifetimeless responses are not stored" `Quick
      test_no_expiry_not_stored;
    Alcotest.test_case "lookups return isolated copies" `Quick test_returned_copy_isolated;
    Alcotest.test_case "inserts snapshot the response" `Quick test_insert_copy_isolated;
    Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction;
    Alcotest.test_case "oversized entries ignored" `Quick test_oversized_entry_ignored;
    Alcotest.test_case "replacement updates size accounting" `Quick test_replace_updates_size;
    Alcotest.test_case "remove and clear" `Quick test_remove_and_clear;
    Alcotest.test_case "mem respects freshness" `Quick test_mem;
    QCheck_alcotest.to_alcotest lru_never_exceeds_budget_prop;
    Alcotest.test_case "memo cache TTL" `Quick test_memo_cache;
    Alcotest.test_case "memo cache replace/remove" `Quick test_memo_cache_replace;
  ]
