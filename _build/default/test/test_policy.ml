(* Policies, predicate semantics (§3.1), and the decision tree (§4) —
   including a QCheck equivalence proof between the tree and the
   brute-force reference matcher. *)

open Core.Policy
open Core.Http

let req ?(meth = Method_.GET) ?(client = "1.2.3.4") ?(hostname = None) ?(headers = []) url =
  Message.request ~meth ~headers
    ~client:{ Ip.ip = Ip.of_string_exn client; hostname }
    url

let handler = Core.Script.Value.native "h" (fun _ _ -> Core.Script.Value.Vundefined)

let test_empty_policy_matches_everything () =
  let p = Policy.make () in
  Alcotest.(check bool) "wildcard" true (Policy.matches p (req "http://anything.org/x") <> None)

let test_url_predicate () =
  let p = Policy.make ~urls:[ "med.nyu.edu" ] () in
  Alcotest.(check bool) "match" true (Policy.matches p (req "http://med.nyu.edu/a") <> None);
  Alcotest.(check bool) "subdomain" true
    (Policy.matches p (req "http://www.med.nyu.edu/a") <> None);
  Alcotest.(check bool) "other host" true (Policy.matches p (req "http://pitt.edu/a") = None)

let test_url_disjunction () =
  (* Fig. 3: two URLs, either may match. *)
  let p = Policy.make ~urls:[ "med.nyu.edu"; "medschool.pitt.edu" ] () in
  Alcotest.(check bool) "first" true (Policy.matches p (req "http://med.nyu.edu/") <> None);
  Alcotest.(check bool) "second" true
    (Policy.matches p (req "http://medschool.pitt.edu/") <> None);
  Alcotest.(check bool) "neither" true (Policy.matches p (req "http://mit.edu/") = None)

let test_property_conjunction () =
  (* Fig. 3: url AND client must both match. *)
  let p = Policy.make ~urls:[ "med.nyu.edu" ] ~clients:[ "10.0.0.0/8" ] () in
  Alcotest.(check bool) "both match" true
    (Policy.matches p (req ~client:"10.1.1.1" "http://med.nyu.edu/") <> None);
  Alcotest.(check bool) "client fails" true
    (Policy.matches p (req ~client:"11.1.1.1" "http://med.nyu.edu/") = None);
  Alcotest.(check bool) "url fails" true
    (Policy.matches p (req ~client:"10.1.1.1" "http://other.org/") = None)

let test_method_predicate () =
  let p = Policy.make ~methods:[ "POST"; "PUT" ] () in
  Alcotest.(check bool) "post" true (Policy.matches p (req ~meth:Method_.POST "http://a.org/") <> None);
  Alcotest.(check bool) "get" true (Policy.matches p (req "http://a.org/") = None)

let test_header_predicate () =
  let p = Policy.make ~headers:[ ("User-Agent", "Nokia") ] () in
  Alcotest.(check bool) "match" true
    (Policy.matches p (req ~headers:[ ("User-Agent", "Nokia6600/2.0") ] "http://a.org/") <> None);
  Alcotest.(check bool) "different agent" true
    (Policy.matches p (req ~headers:[ ("User-Agent", "Mozilla") ] "http://a.org/") = None);
  Alcotest.(check bool) "absent header" true (Policy.matches p (req "http://a.org/") = None)

let test_header_conjunction () =
  let p = Policy.make ~headers:[ ("A", "1"); ("B", "2") ] () in
  Alcotest.(check bool) "both" true
    (Policy.matches p (req ~headers:[ ("A", "x1x"); ("B", "y2y") ] "http://a.org/") <> None);
  Alcotest.(check bool) "one missing" true
    (Policy.matches p (req ~headers:[ ("A", "1") ] "http://a.org/") = None)

let test_client_hostname_predicate () =
  (* Fig. 3's client lists are domain names. *)
  let p = Policy.make ~clients:[ "nyu.edu"; "pitt.edu" ] () in
  Alcotest.(check bool) "nyu client" true
    (Policy.matches p (req ~hostname:(Some "dialup.cs.nyu.edu") "http://a.org/") <> None);
  Alcotest.(check bool) "unknown client" true
    (Policy.matches p (req ~hostname:(Some "example.com") "http://a.org/") = None)

let test_closest_match_url_specificity () =
  let general = Policy.make ~urls:[ "nyu.edu" ] ~order:0 () in
  let specific = Policy.make ~urls:[ "med.nyu.edu/library" ] ~order:1 () in
  let chosen =
    Policy.closest_match [ general; specific ] (req "http://med.nyu.edu/library/x")
  in
  Alcotest.(check (option int)) "specific wins" (Some 1)
    (Option.map (fun p -> p.Policy.order) chosen);
  let chosen2 = Policy.closest_match [ general; specific ] (req "http://med.nyu.edu/other") in
  Alcotest.(check (option int)) "general for other path" (Some 0)
    (Option.map (fun p -> p.Policy.order) chosen2)

let test_precedence_url_over_client () =
  (* URL specificity takes precedence over client specificity. *)
  let url_specific = Policy.make ~urls:[ "a.org/path" ] ~order:0 () in
  let client_specific =
    Policy.make ~urls:[ "a.org" ] ~clients:[ "1.2.3.4" ] ~order:1 ()
  in
  let chosen =
    Policy.closest_match [ url_specific; client_specific ]
      (req ~client:"1.2.3.4" "http://a.org/path/x")
  in
  Alcotest.(check (option int)) "url precedence" (Some 0)
    (Option.map (fun p -> p.Policy.order) chosen)

let test_ties_go_to_later_registration () =
  let p0 = Policy.make ~urls:[ "a.org" ] ~order:0 () in
  let p1 = Policy.make ~urls:[ "a.org" ] ~order:1 () in
  let chosen = Policy.closest_match [ p0; p1 ] (req "http://a.org/") in
  Alcotest.(check (option int)) "later registration" (Some 1)
    (Option.map (fun p -> p.Policy.order) chosen)

let test_no_match () =
  let p = Policy.make ~urls:[ "only.example.org" ] () in
  Alcotest.(check bool) "none" true (Policy.closest_match [ p ] (req "http://other.org/") = None)

let test_cidr_specificity () =
  let broad = Policy.make ~clients:[ "10.0.0.0/8" ] ~order:0 () in
  let narrow = Policy.make ~clients:[ "10.1.0.0/16" ] ~order:1 () in
  let chosen = Policy.closest_match [ broad; narrow ] (req ~client:"10.1.2.3" "http://a.org/") in
  Alcotest.(check (option int)) "narrow CIDR wins" (Some 1)
    (Option.map (fun p -> p.Policy.order) chosen)

let test_bad_header_regex_rejected () =
  match Policy.make ~headers:[ ("A", "(unclosed") ] () with
  | exception Core.Regex.Regex.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected regex parse error"

(* --- decision tree ---------------------------------------------------- *)

let tree_find policies request =
  Decision_tree.find_closest (Decision_tree.build policies) request

let test_tree_basic () =
  let p = Policy.make ~urls:[ "med.nyu.edu" ] ~on_request:handler () in
  Alcotest.(check bool) "hit" true (tree_find [ p ] (req "http://med.nyu.edu/x") <> None);
  Alcotest.(check bool) "miss" true (tree_find [ p ] (req "http://mit.edu/x") = None)

let test_tree_wildcard_reachable () =
  let wild = Policy.make ~order:0 () in
  Alcotest.(check bool) "wildcard found from any host" true
    (tree_find [ wild ] (req "http://whatever.example/x") <> None)

let test_tree_subdomain () =
  let p = Policy.make ~urls:[ "nyu.edu" ] () in
  Alcotest.(check bool) "deep subdomain" true
    (tree_find [ p ] (req "http://a.b.c.nyu.edu/x") <> None)

let test_tree_many_policies () =
  let policies =
    List.init 200 (fun i -> Policy.make ~urls:[ Printf.sprintf "site%d.org" i ] ~order:i ())
  in
  let t = Decision_tree.build policies in
  Alcotest.(check int) "policy count" 200 (Decision_tree.policy_count t);
  Alcotest.(check bool) "tree has nodes" true (Decision_tree.node_count t > 200);
  (match Decision_tree.find_closest t (req "http://site42.org/x") with
   | Some p -> Alcotest.(check int) "right policy" 42 p.Policy.order
   | None -> Alcotest.fail "no match")

(* Random policy/request generators for the equivalence property. *)
let hosts = [| "a.org"; "b.a.org"; "c.org"; "d.c.org"; "e.net" |]

let gen_policy =
  QCheck.Gen.(
    let* n_urls = int_bound 2 in
    let* urls = list_size (return n_urls) (oneofl (Array.to_list hosts)) in
    let* use_client = bool in
    let clients = if use_client then [ "10.0.0.0/8" ] else [] in
    let* use_method = bool in
    let methods = if use_method then [ "GET" ] else [] in
    return (urls, clients, methods))

let gen_request =
  QCheck.Gen.(
    let* host = oneofl (Array.to_list hosts) in
    let* local = bool in
    let client = if local then "10.1.1.1" else "192.168.0.1" in
    let* post = bool in
    return (host, client, post))

let tree_equivalence_prop =
  QCheck.Test.make ~name:"decision tree selects the same policy as brute force" ~count:300
    (QCheck.make
       QCheck.Gen.(pair (list_size (int_bound 12) gen_policy) gen_request))
    (fun (policy_specs, (host, client, post)) ->
      let policies =
        List.mapi
          (fun i (urls, clients, methods) -> Policy.make ~urls ~clients ~methods ~order:i ())
          policy_specs
      in
      let request =
        req ~client
          ~meth:(if post then Method_.POST else Method_.GET)
          (Printf.sprintf "http://%s/path" host)
      in
      let reference = Policy.closest_match policies request in
      let via_tree = tree_find policies request in
      Option.map (fun p -> p.Policy.order) reference
      = Option.map (fun p -> p.Policy.order) via_tree)

(* --- script bridge ----------------------------------------------------- *)

let eval_policies src =
  let ctx = Core.Script.Interp.create () in
  Core.Script.Builtins.install ctx;
  let registry = Script_bridge.create_registry () in
  Script_bridge.install registry ctx;
  ignore (Core.Script.Interp.run_string ctx src);
  Script_bridge.policies registry

let test_bridge_figure3 () =
  let policies =
    eval_policies
      {|
p = new Policy();
p.url = [ "med.nyu.edu", "medschool.pitt.edu" ];
p.client = [ "nyu.edu", "pitt.edu" ];
p.onResponse = function() { };
p.register();
|}
  in
  match policies with
  | [ p ] ->
    Alcotest.(check (list string)) "urls" [ "med.nyu.edu"; "medschool.pitt.edu" ] p.Policy.urls;
    Alcotest.(check (list string)) "clients" [ "nyu.edu"; "pitt.edu" ] p.Policy.clients;
    Alcotest.(check bool) "onResponse" true (p.Policy.on_response <> None);
    Alcotest.(check bool) "onRequest null" true (p.Policy.on_request = None)
  | ps -> Alcotest.failf "expected 1 policy, got %d" (List.length ps)

let test_bridge_registration_order () =
  let policies =
    eval_policies
      {|
var a = new Policy(); a.url = ["a.org"]; a.register();
var b = new Policy(); b.url = ["b.org"]; b.register();
var c = new Policy(); c.url = ["c.org"]; c.register();
|}
  in
  Alcotest.(check (list int)) "orders" [ 0; 1; 2 ]
    (List.map (fun p -> p.Policy.order) policies)

let test_bridge_next_stages () =
  let policies =
    eval_policies
      {|
p = new Policy();
p.nextStages = ["http://nakika.net/nkp.js", "http://svc.org/extra.js"];
p.register();
|}
  in
  match policies with
  | [ p ] ->
    Alcotest.(check (list string)) "stages"
      [ "http://nakika.net/nkp.js"; "http://svc.org/extra.js" ]
      p.Policy.next_stages
  | _ -> Alcotest.fail "expected 1 policy"

let test_bridge_headers () =
  let policies =
    eval_policies
      {|
p = new Policy();
p.headers = { "User-Agent": "Nokia" };
p.register();
|}
  in
  match policies with
  | [ p ] ->
    Alcotest.(check int) "one header" 1 (List.length p.Policy.headers);
    Alcotest.(check bool) "matches" true
      (Policy.matches p (req ~headers:[ ("User-Agent", "a Nokia phone") ] "http://x.org/")
       <> None)
  | _ -> Alcotest.fail "expected 1 policy"

let test_bridge_rejects_bad_handler () =
  match eval_policies {| p = new Policy(); p.onRequest = 42; p.register(); |} with
  | exception Core.Script.Value.Script_error _ -> ()
  | _ -> Alcotest.fail "expected error for non-function handler"

let test_bridge_unregistered_ignored () =
  let policies = eval_policies {| p = new Policy(); p.url = ["a.org"]; |} in
  Alcotest.(check int) "nothing registered" 0 (List.length policies)

let suite =
  [
    Alcotest.test_case "null properties are truth values" `Quick
      test_empty_policy_matches_everything;
    Alcotest.test_case "url predicate" `Quick test_url_predicate;
    Alcotest.test_case "url list is a disjunction" `Quick test_url_disjunction;
    Alcotest.test_case "properties are a conjunction" `Quick test_property_conjunction;
    Alcotest.test_case "method predicate" `Quick test_method_predicate;
    Alcotest.test_case "header regex predicate" `Quick test_header_predicate;
    Alcotest.test_case "multiple headers conjoin" `Quick test_header_conjunction;
    Alcotest.test_case "client domain predicate (Fig. 3)" `Quick
      test_client_hostname_predicate;
    Alcotest.test_case "closest match: url specificity" `Quick
      test_closest_match_url_specificity;
    Alcotest.test_case "precedence: url over client" `Quick test_precedence_url_over_client;
    Alcotest.test_case "ties: later registration wins" `Quick
      test_ties_go_to_later_registration;
    Alcotest.test_case "no valid match" `Quick test_no_match;
    Alcotest.test_case "CIDR specificity" `Quick test_cidr_specificity;
    Alcotest.test_case "bad header regex rejected at make" `Quick
      test_bad_header_regex_rejected;
    Alcotest.test_case "tree: basic match" `Quick test_tree_basic;
    Alcotest.test_case "tree: wildcard policies reachable" `Quick test_tree_wildcard_reachable;
    Alcotest.test_case "tree: subdomain paths" `Quick test_tree_subdomain;
    Alcotest.test_case "tree: 200 sites" `Quick test_tree_many_policies;
    QCheck_alcotest.to_alcotest tree_equivalence_prop;
    Alcotest.test_case "bridge: Fig. 3 policy object" `Quick test_bridge_figure3;
    Alcotest.test_case "bridge: registration order" `Quick test_bridge_registration_order;
    Alcotest.test_case "bridge: nextStages" `Quick test_bridge_next_stages;
    Alcotest.test_case "bridge: header object" `Quick test_bridge_headers;
    Alcotest.test_case "bridge: non-function handler rejected" `Quick
      test_bridge_rejects_bad_handler;
    Alcotest.test_case "bridge: unregistered policies ignored" `Quick
      test_bridge_unregistered_ignored;
  ]
