(* The §5.4 extension scripts as a regression suite (the bench also
   exercises them; these pin their behaviour). *)

open Core.Workload

let eval_stage ?(host = Core.Vocab.Hostcall.stub ()) source =
  match Core.Pipeline.Stage.of_script ~url:"http://x.org/ext.js" ~host ~source () with
  | Ok stage -> stage
  | Error e -> Alcotest.failf "stage: %s" e

let test_loc_counter () =
  Alcotest.(check int) "empty" 0 (Extensions.loc "");
  Alcotest.(check int) "blank lines skipped" 2 (Extensions.loc "a\n\n  \nb\n");
  List.iter
    (fun (name, source, _) ->
      Alcotest.(check bool) (name ^ " nonempty") true (Extensions.loc source > 5))
    Extensions.all

let test_all_extensions_evaluate () =
  List.iter
    (fun (name, source, _) ->
      let stage = eval_stage source in
      Alcotest.(check bool) (name ^ " registers policies") true
        (List.length (Core.Pipeline.Stage.policies stage) >= 1))
    Extensions.all

let test_transcoding_policy_targets_phones () =
  let stage = eval_stage Extensions.image_transcoding in
  let req headers =
    Core.Http.Message.request ~headers "http://photos.example.org/p.jpg"
  in
  Alcotest.(check bool) "Nokia matches" true
    (Core.Pipeline.Stage.select stage (req [ ("User-Agent", "Nokia6600") ]) <> None);
  Alcotest.(check bool) "desktop does not" true
    (Core.Pipeline.Stage.select stage (req [ ("User-Agent", "Mozilla/5.0") ]) = None);
  Alcotest.(check bool) "no agent does not" true
    (Core.Pipeline.Stage.select stage (req []) = None)

let test_blacklist_generator_builds_policies () =
  (* The generator fetches a blacklist and evalScripts one blocking
     policy per entry plus a pass-through. *)
  let base = Core.Vocab.Hostcall.stub () in
  let host =
    { base with
      Core.Vocab.Hostcall.fetch =
        (fun _ ->
          Core.Http.Message.response
            ~headers:[ ("Content-Type", "text/plain") ]
            ~body:"warez.example.com\n\nphishing.example.net/login\n" ());
    }
  in
  let stage =
    eval_stage ~host (Extensions.blacklist_generator ~url:"http://p.org/blacklist.txt")
  in
  (* 2 entries + the pass-through. *)
  Alcotest.(check int) "three policies" 3 (List.length (Core.Pipeline.Stage.policies stage));
  let pick url = Core.Pipeline.Stage.select stage (Core.Http.Message.request url) in
  (match pick "http://warez.example.com/x" with
   | Some p -> Alcotest.(check bool) "blocker has onRequest" true (p.Core.Policy.Policy.on_request <> None)
   | None -> Alcotest.fail "no match for blocked site");
  (match pick "http://fine.example.org/x" with
   | Some p ->
     Alcotest.(check (list string)) "pass-through is the wildcard" [] p.Core.Policy.Policy.urls
   | None -> Alcotest.fail "pass-through should match")

let test_blacklist_generator_empty_list () =
  let base = Core.Vocab.Hostcall.stub () in
  let host =
    { base with
      Core.Vocab.Hostcall.fetch =
        (fun _ ->
          Core.Http.Message.response ~headers:[ ("Content-Type", "text/plain") ] ~body:"" ());
    }
  in
  let stage = eval_stage ~host (Extensions.blacklist_generator ~url:"http://p.org/bl.txt") in
  Alcotest.(check int) "only pass-through" 1 (List.length (Core.Pipeline.Stage.policies stage))

let test_blacklist_generator_fetch_failure_fails_open () =
  (* The stub host answers 502: nothing gets blocked, traffic passes. *)
  let stage = eval_stage (Extensions.blacklist_generator ~url:"http://p.org/bl.txt") in
  match Core.Pipeline.Stage.select stage (Core.Http.Message.request "http://any.org/") with
  | Some p -> Alcotest.(check bool) "pass-through" true (p.Core.Policy.Policy.urls = [])
  | None -> Alcotest.fail "expected pass-through"

let test_annotations_policies () =
  let stage =
    eval_stage (Extensions.annotations ~site:"notes.org" ~target_site:"simm.org")
  in
  let policies = Core.Pipeline.Stage.policies stage in
  Alcotest.(check int) "interposer + poster" 2 (List.length policies);
  (* The interposer schedules the original service after itself. *)
  let interposer = List.hd policies in
  Alcotest.(check (list string)) "nextStages" [ "http://simm.org/nakika.js" ]
    interposer.Core.Policy.Policy.next_stages;
  (* The poster is the more specific match for /annotate. *)
  match
    Core.Pipeline.Stage.select stage (Core.Http.Message.request "http://notes.org/annotate?t=x")
  with
  | Some p -> Alcotest.(check int) "poster wins" 1 p.Core.Policy.Policy.order
  | None -> Alcotest.fail "no match"

let test_nkp_source_is_the_pipeline_one () =
  Alcotest.(check string) "shared source" Core.Pipeline.Nkp.script Extensions.nkp

let suite =
  [
    Alcotest.test_case "LoC counter" `Quick test_loc_counter;
    Alcotest.test_case "all extensions evaluate" `Quick test_all_extensions_evaluate;
    Alcotest.test_case "transcoding targets phone user-agents" `Quick
      test_transcoding_policy_targets_phones;
    Alcotest.test_case "blacklist generator builds blocking policies" `Quick
      test_blacklist_generator_builds_policies;
    Alcotest.test_case "blacklist generator with empty list" `Quick
      test_blacklist_generator_empty_list;
    Alcotest.test_case "blacklist generator fails open on fetch error" `Quick
      test_blacklist_generator_fetch_failure_fails_open;
    Alcotest.test_case "annotations policy structure" `Quick test_annotations_policies;
    Alcotest.test_case "nkp source shared with the pipeline" `Quick
      test_nkp_source_is_the_pipeline_one;
  ]
