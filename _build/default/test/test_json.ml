(* The JSON codec and its script vocabulary. *)

open Core.Vocab

let parse_ok s =
  match Json.parse s with Ok v -> v | Error e -> Alcotest.failf "parse %S: %s" s e

let test_scalars () =
  Alcotest.(check bool) "null" true (parse_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (parse_ok "false" = Json.Bool false);
  Alcotest.(check bool) "int" true (parse_ok "42" = Json.Num 42.0);
  Alcotest.(check bool) "negative" true (parse_ok "-7" = Json.Num (-7.0));
  Alcotest.(check bool) "float" true (parse_ok "3.25" = Json.Num 3.25);
  Alcotest.(check bool) "exponent" true (parse_ok "1e3" = Json.Num 1000.0);
  Alcotest.(check bool) "string" true (parse_ok "\"hi\"" = Json.Str "hi")

let test_structures () =
  Alcotest.(check bool) "empty array" true (parse_ok "[]" = Json.Arr []);
  Alcotest.(check bool) "array" true
    (parse_ok "[1, 2, 3]" = Json.Arr [ Json.Num 1.0; Json.Num 2.0; Json.Num 3.0 ]);
  Alcotest.(check bool) "empty object" true (parse_ok "{}" = Json.Obj []);
  Alcotest.(check bool) "object" true
    (parse_ok {|{"a": 1, "b": [true, null]}|}
    = Json.Obj
        [ ("a", Json.Num 1.0); ("b", Json.Arr [ Json.Bool true; Json.Null ]) ]);
  Alcotest.(check bool) "nested" true
    (Json.equal (parse_ok {|{"x":{"y":{"z":[{"w":0}]}}}|})
       (parse_ok {| { "x" : { "y" : { "z" : [ { "w" : 0 } ] } } } |}))

let test_string_escapes () =
  Alcotest.(check bool) "escapes" true
    (parse_ok {|"a\"b\\c\nd\te"|} = Json.Str "a\"b\\c\nd\te");
  Alcotest.(check bool) "unicode bmp" true (parse_ok {|"A"|} = Json.Str "A");
  Alcotest.(check bool) "unicode two-byte" true (parse_ok {|"é"|} = Json.Str "\xc3\xa9")

let test_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" s)
    [ ""; "{"; "[1,"; "{\"a\"}"; "nul"; "\"unterminated"; "[1] trailing"; "{'single':1}" ]

let test_print_roundtrip () =
  List.iter
    (fun s ->
      let v = parse_ok s in
      Alcotest.(check bool) s true (Json.equal v (parse_ok (Json.print v))))
    [
      "null";
      "[1,2.5,-3]";
      {|{"name":"na kika","nodes":[{"id":1},{"id":2}],"open":true}|};
      {|"with \"quotes\" and \n newlines"|};
    ]

let json_roundtrip_prop =
  (* Generate random Json.t and check print/parse roundtrip. *)
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if n <= 0 then
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Num (float_of_int i)) (int_range (-1000) 1000);
                map
                  (fun s -> Json.Str s)
                  (string_size ~gen:(char_range 'a' 'z') (int_bound 12));
              ]
          else
            oneof
              [
                map (fun items -> Json.Arr items) (list_size (int_bound 4) (self (n / 2)));
                map
                  (fun fields ->
                    Json.Obj (List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) fields))
                  (list_size (int_bound 4) (self (n / 2)));
              ]))
  in
  QCheck.Test.make ~name:"json: print/parse roundtrip" ~count:200 (QCheck.make gen)
    (fun v -> match Json.parse (Json.print v) with Ok v' -> Json.equal v v' | Error _ -> false)

let make_ctx () =
  let ctx = Core.Script.Interp.create () in
  Platform_v.install_all (Hostcall.stub ()) ctx;
  ctx

let run ctx src = Core.Script.Interp.run_string ctx src

let test_vocab_stringify () =
  let ctx = make_ctx () in
  Alcotest.(check string) "object" {|{"a":1,"b":[true,null],"c":"x"}|}
    (Core.Script.Value.to_string (run ctx "JSON.stringify({a: 1, b: [true, null], c: \"x\"})"));
  Alcotest.(check string) "nested function dropped" {|{"f":null}|}
    (Core.Script.Value.to_string (run ctx "JSON.stringify({f: function() { }})"))

let test_vocab_parse () =
  let ctx = make_ctx () in
  Alcotest.(check (float 1e-9)) "field" 7.0
    (Core.Script.Value.to_number (run ctx "JSON.parse(\"{\\\"n\\\": 7}\").n"));
  Alcotest.(check bool) "malformed is null" true
    (run ctx "JSON.parse(\"{broken\")" = Core.Script.Value.Vnull)

let test_vocab_roundtrip_hardstate () =
  (* The intended use: structured values through string-typed hard state. *)
  let ctx = make_ctx () in
  ignore
    (run ctx
       {| var profile = { user: "alice", visits: 3, tags: ["a", "b"] };
          HardState.put("profile", JSON.stringify(profile)); |});
  Alcotest.(check (float 1e-9)) "restored" 3.0
    (Core.Script.Value.to_number (run ctx "JSON.parse(HardState.get(\"profile\")).visits"));
  Alcotest.(check string) "array restored" "a,b"
    (Core.Script.Value.to_string
       (run ctx "JSON.parse(HardState.get(\"profile\")).tags.join(\",\")"))

let suite =
  [
    Alcotest.test_case "scalars" `Quick test_scalars;
    Alcotest.test_case "arrays and objects" `Quick test_structures;
    Alcotest.test_case "string escapes" `Quick test_string_escapes;
    Alcotest.test_case "malformed input" `Quick test_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_print_roundtrip;
    QCheck_alcotest.to_alcotest json_roundtrip_prop;
    Alcotest.test_case "vocab: stringify" `Quick test_vocab_stringify;
    Alcotest.test_case "vocab: parse" `Quick test_vocab_parse;
    Alcotest.test_case "vocab: hard-state roundtrip" `Quick test_vocab_roundtrip_hardstate;
  ]
