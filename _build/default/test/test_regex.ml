(* The regex engine: parsing, matching semantics, pathological inputs. *)

open Core.Regex

let matches pattern s = Regex.matches (Regex.compile pattern) s

let full pattern s = Regex.matches_full (Regex.compile pattern) s

let test_literals () =
  Alcotest.(check bool) "substring" true (matches "cat" "concatenate");
  Alcotest.(check bool) "missing" false (matches "dog" "concatenate");
  Alcotest.(check bool) "empty pattern matches" true (matches "" "anything");
  Alcotest.(check bool) "full literal" true (full "abc" "abc");
  Alcotest.(check bool) "full mismatch" false (full "abc" "abcd")

let test_any_and_classes () =
  Alcotest.(check bool) "dot" true (full "a.c" "axc");
  Alcotest.(check bool) "dot needs char" false (full "a.c" "ac");
  Alcotest.(check bool) "class" true (full "[abc]+" "cab");
  Alcotest.(check bool) "class negated" true (full "[^0-9]+" "abc");
  Alcotest.(check bool) "class negated rejects" false (full "[^0-9]+" "a1c");
  Alcotest.(check bool) "range" true (full "[a-f0-3]+" "be02");
  Alcotest.(check bool) "literal ] first" true (full "[]]" "]");
  Alcotest.(check bool) "dash at end" true (full "[a-]+" "a-a")

let test_escapes () =
  Alcotest.(check bool) "digit" true (full "\\d+" "12345");
  Alcotest.(check bool) "digit rejects" false (full "\\d+" "12a45");
  Alcotest.(check bool) "word" true (full "\\w+" "foo_Bar9");
  Alcotest.(check bool) "space" true (full "a\\s+b" "a \t b");
  Alcotest.(check bool) "escaped dot" true (full "a\\.b" "a.b");
  Alcotest.(check bool) "escaped dot rejects" false (full "a\\.b" "axb");
  Alcotest.(check bool) "non-digit" true (full "\\D+" "abc")

let test_quantifiers () =
  Alcotest.(check bool) "star zero" true (full "ab*c" "ac");
  Alcotest.(check bool) "star many" true (full "ab*c" "abbbbc");
  Alcotest.(check bool) "plus needs one" false (full "ab+c" "ac");
  Alcotest.(check bool) "plus many" true (full "ab+c" "abbc");
  Alcotest.(check bool) "opt present" true (full "colou?r" "colour");
  Alcotest.(check bool) "opt absent" true (full "colou?r" "color");
  Alcotest.(check bool) "exact bound" true (full "a{3}" "aaa");
  Alcotest.(check bool) "exact bound rejects" false (full "a{3}" "aa");
  Alcotest.(check bool) "range bound" true (full "a{2,4}" "aaa");
  Alcotest.(check bool) "range bound max" false (full "a{2,4}" "aaaaa");
  Alcotest.(check bool) "open bound" true (full "a{2,}" "aaaaaa")

let test_alternation_groups () =
  Alcotest.(check bool) "alt left" true (full "cat|dog" "cat");
  Alcotest.(check bool) "alt right" true (full "cat|dog" "dog");
  Alcotest.(check bool) "group star" true (full "(ab)+" "ababab");
  Alcotest.(check bool) "group star rejects partial" false (full "(ab)+" "aba");
  Alcotest.(check bool) "nested" true (full "a(b(c|d))*e" "abcbde")

let test_anchors () =
  Alcotest.(check bool) "bol" true (matches "^start" "start of line");
  Alcotest.(check bool) "bol rejects" false (matches "^line" "start of line");
  Alcotest.(check bool) "eol" true (matches "line$" "start of line");
  Alcotest.(check bool) "eol rejects" false (matches "start$" "start of line");
  Alcotest.(check bool) "both" true (matches "^exact$" "exact")

let test_find () =
  let r = Regex.compile "o+" in
  Alcotest.(check (option (pair int int))) "leftmost longest-ish" (Some (1, 3))
    (Regex.find r "foooba" |> Option.map (fun (i, j) -> (i, min j 3)));
  Alcotest.(check (option (pair int int))) "absent" None (Regex.find r "xyz")

let test_find_all_and_replace () =
  let r = Regex.compile "\\d+" in
  Alcotest.(check int) "three numbers" 3 (List.length (Regex.find_all r "a1b22c333"));
  Alcotest.(check string) "replace" "aNbNcN" (Regex.replace r ~by:"N" "a1b22c333");
  Alcotest.(check string) "replace none" "abc" (Regex.replace r ~by:"N" "abc")

let test_split () =
  let r = Regex.compile ",\\s*" in
  Alcotest.(check (list string)) "split list" [ "a"; "b"; "c" ] (Regex.split r "a, b,c");
  Alcotest.(check (list string)) "no separator" [ "abc" ] (Regex.split r "abc")

let test_parse_errors () =
  List.iter
    (fun pattern ->
      match Regex.compile pattern with
      | exception Regex.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" pattern)
    [ "("; ")"; "a)"; "[abc"; "*a"; "+"; "a{2"; "a{4,2}"; "\\"; "[z-a]" ]

let test_zero_width_star_terminates () =
  (* Nested empty-repetition patterns must not loop forever. *)
  Alcotest.(check bool) "empty-star" true (matches "(a*)*b" "aaab");
  Alcotest.(check bool) "empty-star no match terminates" false (matches "(a*)*b" "ccc")

let test_backtracking_correctness () =
  Alcotest.(check bool) "needs backtracking" true (full "a*a" "aaa");
  Alcotest.(check bool) "alternation backtrack" true (full "(ab|a)b" "ab");
  Alcotest.(check bool) "greedy star then tail" true (full ".*b" "aaab")

let test_header_patterns () =
  (* The kinds of patterns policies actually use on headers. *)
  Alcotest.(check bool) "user-agent" true
    (matches "Nokia" "Mozilla/4.0 (compatible; Nokia6600)");
  Alcotest.(check bool) "mime" true (matches "^image/(jpeg|gif|png)$" "image/png");
  Alcotest.(check bool) "mime rejects" false (matches "^image/(jpeg|gif|png)$" "text/html")

let find_all_nonoverlapping_prop =
  QCheck.Test.make ~name:"regex: find_all spans are disjoint and ordered" ~count:200
    QCheck.(string_of_size Gen.(0 -- 60))
    (fun s ->
      let r = Regex.compile "ab?" in
      let spans = Regex.find_all r s in
      let rec ok = function
        | (_, j1) :: (((i2, _) :: _) as rest) -> j1 <= i2 && ok rest
        | _ -> true
      in
      ok spans)

let replace_idempotent_prop =
  QCheck.Test.make ~name:"regex: replacing all digits leaves no digits" ~count:200
    QCheck.(string_of_size Gen.(0 -- 80))
    (fun s ->
      let r = Regex.compile "\\d" in
      let cleaned = Regex.replace r ~by:"" s in
      not (Regex.matches r cleaned))

let suite =
  [
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "dot and character classes" `Quick test_any_and_classes;
    Alcotest.test_case "escape classes" `Quick test_escapes;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "alternation and groups" `Quick test_alternation_groups;
    Alcotest.test_case "anchors" `Quick test_anchors;
    Alcotest.test_case "find" `Quick test_find;
    Alcotest.test_case "find_all and replace" `Quick test_find_all_and_replace;
    Alcotest.test_case "split" `Quick test_split;
    Alcotest.test_case "malformed patterns raise" `Quick test_parse_errors;
    Alcotest.test_case "zero-width repetition terminates" `Quick
      test_zero_width_star_terminates;
    Alcotest.test_case "backtracking correctness" `Quick test_backtracking_correctness;
    Alcotest.test_case "realistic header patterns" `Quick test_header_patterns;
    QCheck_alcotest.to_alcotest find_all_nonoverlapping_prop;
    QCheck_alcotest.to_alcotest replace_idempotent_prop;
  ]
