(* The NKScript pretty-printer: canonical-form fixpoint and semantic
   preservation on the paper's scripts. *)

open Core.Script

let reformat src =
  match Pretty.format src with Ok s -> s | Error e -> Alcotest.failf "format: %s" e

(* print (parse s) must be a fixpoint: formatting formatted output
   changes nothing. *)
let check_fixpoint name src =
  let once = reformat src in
  let twice = reformat once in
  Alcotest.(check string) (name ^ ": canonical form is stable") once twice

(* The formatted program must evaluate to the same value. *)
let check_semantics name src =
  let eval s =
    let ctx = Interp.create () in
    Builtins.install ctx;
    Value.to_string (Interp.run_string ctx s)
  in
  Alcotest.(check string) (name ^ ": evaluation preserved") (eval src) (eval (reformat src))

let test_expressions () =
  List.iter
    (fun (src, expected) -> Alcotest.(check string) src expected (String.trim (reformat src)))
    [
      ("1+2*3", "1 + 2 * 3;");
      ("(1+2)*3", "(1 + 2) * 3;");
      ("a.b.c(1)[2]", "a.b.c(1)[2];");
      ("x=y=3", "x = y = 3;");
      ("!(a&&b)||c", "!(a && b) || c;");
      ("typeof x == \"number\"", "typeof x == \"number\";");
      ("a?b:c", "a ? b : c;");
      ("-x+-y", "-x + -y;");
      ("new Policy()", "new Policy();");
      ("[1, [2, 3], {k: 4}]", "[1, [2, 3], { k: 4 }];");
      ("s.replace(\"a\\nb\", \"c\")", "s.replace(\"a\\nb\", \"c\");");
    ]

let test_statement_forms () =
  let formatted =
    reformat
      {|
var a = 1, b;
if (a > 0) { b = 1; } else { b = 2; }
while (a < 10) { a++; }
do { a--; } while (a > 0);
for (var i = 0; i < 3; i++) { b += i; }
for (k in { x: 1 }) { b++; }
function f(x, y) { return x + y; }
try { throw "x"; } catch (e) { b = 0; }
|}
  in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (Core.Util.Strutil.contains_sub formatted ~sub:fragment))
    [
      "var a = 1, b;";
      "if (a > 0) {";
      "} else {";
      "while (a < 10) {";
      "do {";
      "for (var i = 0; i < 3; i++) {";
      "for (var k in { x: 1 }) {";
      "function f(x, y) {";
      "try {";
      "catch (e) {";
    ]

let paper_scripts =
  [
    ("Fig. 3 policy", {|
p = new Policy();
p.url = [ "med.nyu.edu", "medschool.pitt.edu" ];
p.client = [ "nyu.edu", "pitt.edu" ];
p.onResponse = function() { var x = 1; }
p.register();
|});
    ("Fig. 5 digital libraries", {|
bmj = "bmj.bmjjournals.com/cgi/reprint";
nejm = "content.nejm.org/cgi/reprint";
p = new Policy();
p.url = [ bmj, nejm ];
p.onRequest = function() {
  if (! System.isLocal(Request.clientIP)) {
    Request.terminate(401);
  }
}
p.register();
|});
    ("nkp.js", Core.Pipeline.Nkp.script);
    ("esi.js", Core.Pipeline.Esi.script);
    ("memory bomb", Core.Workload.Flashcrowd.memory_bomb_script);
    ("image transcoding", Core.Workload.Extensions.image_transcoding);
    ("annotations",
     Core.Workload.Extensions.annotations ~site:"notes.org" ~target_site:"simm.org");
  ]

let test_paper_scripts_fixpoint () =
  List.iter (fun (name, src) -> check_fixpoint name src) paper_scripts

let test_semantics_preserved () =
  List.iter
    (fun (name, src) -> check_semantics name src)
    [
      ("arith", "var s = 0; for (var i = 0; i < 10; i++) { s += i * i; } s");
      ("strings", "var a = [\"c\", \"a\"]; a.sort().join(\"-\") + \"!\"");
      ("closures", "function mk(n) { return function() { return n * 2; }; } mk(21)()");
      ("exceptions", "var r; try { throw {code: 7}; } catch (e) { r = e.code; } r");
      ("ternary chain", "var x = 5; x > 3 ? (x > 4 ? \"big\" : \"mid\") : \"small\"");
      ("bitwise", "(0xff & 0x0f) | (1 << 4)");
    ]

let test_formatted_policies_register_identically () =
  (* The formatted site script must register the same policies. *)
  let policies src =
    let ctx = Interp.create () in
    Builtins.install ctx;
    let registry = Core.Policy.Script_bridge.create_registry () in
    Core.Policy.Script_bridge.install registry ctx;
    ignore (Interp.run_string ctx src);
    List.map
      (fun p -> (p.Core.Policy.Policy.urls, p.Core.Policy.Policy.next_stages))
      (Core.Policy.Script_bridge.policies registry)
  in
  let src = Core.Workload.Static_page.pred_script ~host:"h.org" ~n:5 ~matching:true in
  Alcotest.(check bool) "same registrations" true (policies src = policies (reformat src))

let test_format_reports_errors () =
  match Pretty.format "var = ;" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected format error"


(* Differential testing: a random expression AST is (a) evaluated by a
   direct reference evaluator over the AST and (b) pretty-printed,
   re-parsed and run through the full interpreter. Any disagreement is
   a bug in the printer, the parser, or the evaluator. *)

let pos = { Ast.line = 0; col = 0 }

let mk desc = { Ast.desc; pos }

let rec reference_eval (e : Ast.expr) : float =
  match e.Ast.desc with
  | Ast.Number n -> n
  | Ast.Bool b -> if b then 1.0 else 0.0
  | Ast.Unop (Ast.Neg, x) -> -.reference_eval x
  | Ast.Unop (Ast.Not, x) -> if reference_eval x <> 0.0 then 0.0 else 1.0
  | Ast.Binop (op, a, b) -> (
    let x = reference_eval a and y = reference_eval b in
    match op with
    | Ast.Add -> x +. y
    | Ast.Sub -> x -. y
    | Ast.Mul -> x *. y
    | Ast.Lt -> if x < y then 1.0 else 0.0
    | Ast.Le -> if x <= y then 1.0 else 0.0
    | Ast.Gt -> if x > y then 1.0 else 0.0
    | Ast.Ge -> if x >= y then 1.0 else 0.0
    | Ast.Eq -> if x = y then 1.0 else 0.0
    | Ast.Neq -> if x <> y then 1.0 else 0.0
    | _ -> assert false)
  | Ast.Logical (Ast.And, a, b) ->
    let x = reference_eval a in
    if x <> 0.0 then reference_eval b else x
  | Ast.Logical (Ast.Or, a, b) ->
    let x = reference_eval a in
    if x <> 0.0 then x else reference_eval b
  | Ast.Cond (c, t, f) ->
    if reference_eval c <> 0.0 then reference_eval t else reference_eval f
  | _ -> assert false

let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then map (fun i -> mk (Ast.Number (float_of_int i))) (int_range (-20) 20)
        else
          let sub = self (n / 2) in
          oneof
            [
              map (fun i -> mk (Ast.Number (float_of_int i))) (int_range (-20) 20);
              map2
                (fun op (a, b) -> mk (Ast.Binop (op, a, b)))
                (oneofl
                   [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Lt; Ast.Le; Ast.Gt; Ast.Ge; Ast.Eq; Ast.Neq ])
                (pair sub sub);
              map (fun x -> mk (Ast.Unop (Ast.Neg, x))) sub;
              map (fun x -> mk (Ast.Unop (Ast.Not, x))) sub;
              map2
                (fun l (a, b) -> mk (Ast.Logical (l, a, b)))
                (oneofl [ Ast.And; Ast.Or ])
                (pair sub sub);
              map (fun (c, (t, f)) -> mk (Ast.Cond (c, t, f))) (pair sub (pair sub sub));
            ]))

let differential_prop =
  QCheck.Test.make ~name:"interpreter agrees with the reference on random expressions"
    ~count:400 (QCheck.make gen_expr)
    (fun e ->
      let source = Pretty.expr e in
      let ctx = Interp.create () in
      Builtins.install ctx;
      let interpreted =
        match Interp.run_string ctx source with
        | Value.Vbool b -> if b then 1.0 else 0.0
        | v -> Value.to_number v
      in
      let expected = reference_eval e in
      interpreted = expected
      ||
      (* booleans surface as 0/1 in the reference; comparisons of
         booleans to numbers coerce identically, so any mismatch is
         real — report it. *)
      QCheck.Test.fail_reportf "source %S: interp %f, reference %f" source interpreted
        expected)

let suite =
  [
    Alcotest.test_case "expression forms" `Quick test_expressions;
    Alcotest.test_case "statement forms" `Quick test_statement_forms;
    Alcotest.test_case "paper scripts reach a fixpoint" `Quick test_paper_scripts_fixpoint;
    Alcotest.test_case "formatting preserves evaluation" `Quick test_semantics_preserved;
    Alcotest.test_case "formatted policies register identically" `Quick
      test_formatted_policies_register_identically;
    Alcotest.test_case "malformed input reported" `Quick test_format_reports_errors;
    QCheck_alcotest.to_alcotest differential_prop;
  ]
